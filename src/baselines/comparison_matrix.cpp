#include "baselines/comparison_matrix.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "control/controller.hpp"
#include "control/recovery_latency.hpp"
#include "cost/cost_model.hpp"
#include "routing/backup_rules.hpp"
#include "routing/ecmp.hpp"
#include "routing/f10.hpp"
#include "routing/global_reroute.hpp"
#include "routing/spider.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/fluid_sim.hpp"
#include "sweep/sweep.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "workload/coflow_gen.hpp"

namespace sbk::baselines {

namespace {

constexpr std::size_t kStrategyCount = kAllStrategies.size();

/// The paper's experiment topology: rack-aggregate hosts, 10:1
/// oversubscribed edges (bench_workload.hpp's paper_fat_tree).
topo::FatTreeParams matrix_fat_tree(int k, topo::Wiring wiring) {
  topo::FatTreeParams p{.k = k, .wiring = wiring};
  p.hosts_per_edge = 1;
  p.host_link_capacity = 10.0 * (k / 2);
  return p;
}

// --- fault draws ------------------------------------------------------------
// Victims are drawn as *structural descriptors* and resolved per
// topology, so the plain and AB fat-trees (whose agg-core link ids
// differ) and the ShareBackup fabric all see the same logical faults.

struct SwitchVictim {
  int layer = 0;  // 0 edge, 1 agg, 2 core
  int pod = 0;
  int idx = 0;
  int core = 0;
};

struct LinkVictim {
  int lclass = 0;  // 0 host link, 1 edge-agg, 2 agg-core
  int host = 0;
  int pod = 0;
  int edge = 0;
  int agg = 0;
  int core = 0;
};

SwitchVictim draw_switch(Rng& rng, int k) {
  SwitchVictim v;
  v.layer = static_cast<int>(rng.uniform_index(3));
  v.pod = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k)));
  v.idx = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
  v.core = static_cast<int>(
      rng.uniform_index(static_cast<std::size_t>(k * k / 4)));
  return v;
}

LinkVictim draw_link(Rng& rng, int k, int hosts) {
  LinkVictim v;
  v.lclass = static_cast<int>(rng.uniform_index(3));
  v.host = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(hosts)));
  v.pod = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k)));
  v.edge = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
  v.agg = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
  v.core = static_cast<int>(
      rng.uniform_index(static_cast<std::size_t>(k * k / 4)));
  return v;
}

net::NodeId resolve_switch(const topo::FatTree& ft, const SwitchVictim& v) {
  switch (v.layer) {
    case 0: return ft.edge(v.pod, v.idx);
    case 1: return ft.agg(v.pod, v.idx);
    default: return ft.core(v.core);
  }
}

net::LinkId resolve_link(const topo::FatTree& ft, const LinkVictim& v) {
  switch (v.lclass) {
    case 0: return ft.host_link(ft.host(v.host));
    case 1:
      return *ft.network().find_link(ft.edge(v.pod, v.edge),
                                     ft.agg(v.pod, v.agg));
    default:
      return *ft.network().find_link(ft.core(v.core),
                                     ft.agg_for_core(v.core, v.pod));
  }
}

topo::SwitchPosition position_of(const SwitchVictim& v) {
  switch (v.layer) {
    case 0: return {topo::Layer::kEdge, v.pod, v.idx};
    case 1: return {topo::Layer::kAgg, v.pod, v.idx};
    default: return {topo::Layer::kCore, -1, v.core};
  }
}

/// Per-scenario churn tallies; merged in scenario order after the sweep
/// (operator== backs the bit-identity acceptance test).
struct ChurnBatch {
  std::array<std::size_t, kStrategyCount> probed{};
  std::array<std::size_t, kStrategyCount> lost{};
  std::size_t backup_hits = 0;
  std::size_t backup_fallbacks = 0;
  std::size_t spider_failovers = 0;
  std::size_t spider_detour_misses = 0;
  std::size_t violations = 0;

  friend bool operator==(const ChurnBatch&, const ChurnBatch&) = default;
};

ChurnBatch churn_scenario(const MatrixConfig& cfg,
                          const sweep::ScenarioSpec& spec) {
  Rng rng = spec.rng();
  const int k = cfg.k;

  std::vector<SwitchVictim> switch_victims;
  for (int i = 0; i < cfg.switch_failures; ++i) {
    switch_victims.push_back(draw_switch(rng, k));
  }
  topo::FatTree plain(matrix_fat_tree(k, topo::Wiring::kPlain));
  topo::FatTree ab(matrix_fat_tree(k, topo::Wiring::kAb));
  const int hosts = plain.host_count();
  std::vector<LinkVictim> link_victims;
  for (int i = 0; i < cfg.link_failures; ++i) {
    link_victims.push_back(draw_link(rng, k, hosts));
  }

  // Probes are stored as global host indices and resolved per topology:
  // node ids happen to coincide across the plain/AB/fabric builds, but
  // the matrix should not depend on that accident.
  struct Probe {
    int src = 0, dst = 0;
  };
  std::vector<Probe> probes;
  probes.reserve(cfg.flows_per_scenario);
  for (std::size_t f = 0; f < cfg.flows_per_scenario; ++f) {
    const auto s = rng.uniform_index(static_cast<std::size_t>(hosts));
    auto d = rng.uniform_index(static_cast<std::size_t>(hosts - 1));
    if (d >= s) ++d;  // distinct hosts, uniform over the rest
    probes.push_back({static_cast<int>(s), static_cast<int>(d)});
  }

  // Fail the same logical victims everywhere (idempotent on repeats).
  for (topo::FatTree* ft : {&plain, &ab}) {
    for (const SwitchVictim& v : switch_victims) {
      ft->network().fail_node(resolve_switch(*ft, v));
    }
    for (const LinkVictim& v : link_victims) {
      ft->network().fail_link(resolve_link(*ft, v));
    }
  }

  ChurnBatch out;
  routing::EcmpWithGlobalRerouteRouter ecmp_gr(plain, spec.seed);
  routing::F10Router f10(ab, spec.seed);
  routing::SpiderProtectRouter spider(plain, spec.seed);
  routing::BackupRulesRouter backup(plain, spec.seed);

  auto tally = [&out](std::size_t strategy, const net::Network& net,
                      const net::Path& p) {
    ++out.probed[strategy];
    if (p.empty()) {
      ++out.lost[strategy];
    } else if (!net::is_valid_path(net, p) || !net::is_live_path(net, p)) {
      ++out.violations;
    }
  };

  for (std::size_t f = 0; f < probes.size(); ++f) {
    const Probe& pr = probes[f];
    tally(1, ab.network(),
          f10.route(ab.network(), ab.host(pr.src), ab.host(pr.dst), f,
                    nullptr));
    const net::NodeId ps = plain.host(pr.src);
    const net::NodeId pd = plain.host(pr.dst);
    tally(2, plain.network(), ecmp_gr.route(plain.network(), ps, pd, f,
                                            nullptr));
    tally(3, plain.network(), spider.route(plain.network(), ps, pd, f,
                                           nullptr));
    tally(4, plain.network(), backup.route(plain.network(), ps, pd, f,
                                           nullptr));
  }
  out.backup_hits = backup.backup_hits();
  out.backup_fallbacks = backup.global_fallbacks();
  out.spider_failovers = spider.failovers();
  out.spider_detour_misses = spider.detour_misses();

  // ShareBackup: the same faults land on a fabric whose controller
  // swaps in backup hardware; residual loss is what replacement cannot
  // fix (host links, exhausted pools).
  sharebackup::FabricParams fp;
  fp.fat_tree = matrix_fat_tree(k, topo::Wiring::kPlain);
  fp.backups_per_group = cfg.backups_per_group;
  sharebackup::Fabric fabric(fp);
  control::Controller ctrl(fabric, control::ControllerConfig{});
  const topo::FatTree& sb_ft = fabric.fat_tree();
  for (const LinkVictim& v : link_victims) {
    const net::LinkId link = resolve_link(sb_ft, v);
    if (fabric.network().link_failed(link)) continue;
    fabric.network().fail_link(link);
    (void)ctrl.on_link_failure(link);
  }
  for (const SwitchVictim& v : switch_victims) {
    const net::NodeId node = resolve_switch(sb_ft, v);
    if (fabric.network().node_failed(node)) continue;
    fabric.network().fail_node(node);
    (void)ctrl.on_switch_failure(position_of(v));
  }
  routing::EcmpRouter sb_router(sb_ft, spec.seed);
  for (std::size_t f = 0; f < probes.size(); ++f) {
    tally(0, fabric.network(),
          sb_router.route(fabric.network(), sb_ft.host(probes[f].src),
                          sb_ft.host(probes[f].dst), f, nullptr));
  }
  return out;
}

// --- CCT probe --------------------------------------------------------------

std::map<sim::CoflowId, double> coflow_ccts(
    const std::vector<sim::FlowResult>& results) {
  std::map<sim::CoflowId, double> ccts;
  for (const auto& c : sim::aggregate_coflows(results)) {
    if (c.all_completed && c.cct() > 0.0) ccts[c.id] = c.cct();
  }
  return ccts;
}

/// Mean slowdown over affected coflows; 1.0 when none are affected.
double mean_affected_slowdown(const std::map<sim::CoflowId, double>& healthy,
                              const std::map<sim::CoflowId, double>& failed,
                              const std::set<sim::CoflowId>& affected) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, base] : healthy) {
    if (!affected.contains(id)) continue;
    auto it = failed.find(id);
    if (it == failed.end()) continue;  // unfinished under failure
    sum += it->second / base;
    ++n;
  }
  return n == 0 ? 1.0 : sum / static_cast<double>(n);
}

struct CctProbe {
  std::array<double, kStrategyCount> slowdown{1.0, 1.0, 1.0, 1.0, 1.0};
};

CctProbe run_cct_probe(const MatrixConfig& cfg) {
  CctProbe out;
  const Seconds duration = cfg.cct_duration;

  topo::FatTree wl_ft(matrix_fat_tree(cfg.k, topo::Wiring::kPlain));
  workload::CoflowWorkloadParams wp;
  wp.racks = wl_ft.host_count();
  wp.coflows = cfg.cct_coflows;
  wp.duration = duration;
  Rng wl_rng(20170003);
  const std::vector<sim::FlowSpec> flows =
      workload::expand_to_flows(wl_ft, workload::generate_coflows(wp, wl_rng));

  sim::SimConfig sim_cfg;
  sim_cfg.unit_bytes_per_second = cfg.unit_bytes_per_second;
  sim_cfg.allocation = sim::AllocationModel::kPerLinkEqualShare;

  // The representative failure: agg (0,0) dies at t=0 and is repaired at
  // the end of the partition (fig1c's failure model). Rerouting
  // strategies route around it and congest the survivors.
  auto run_strategy = [&](std::size_t strategy, topo::Wiring wiring,
                          auto make_router) {
    topo::FatTree healthy_ft(matrix_fat_tree(cfg.k, wiring));
    auto healthy_router = make_router(healthy_ft);
    sim::FluidSimulator healthy_sim(healthy_ft.network(), healthy_router,
                                    sim_cfg);
    healthy_sim.add_flows(flows);
    const auto healthy = coflow_ccts(healthy_sim.run());

    // Affected set: coflows with a flow whose healthy path uses the
    // victim (router state is epoch-cached, so these route calls are
    // cheap and leave the simulation unperturbed).
    const net::NodeId victim = healthy_ft.agg(0, 0);
    std::set<sim::CoflowId> affected;
    for (const auto& f : flows) {
      if (f.src == f.dst) continue;
      const net::Path p = healthy_router.route(healthy_ft.network(), f.src,
                                               f.dst, f.id, nullptr);
      if (net::path_uses_node(p, victim)) affected.insert(f.coflow);
    }

    topo::FatTree failed_ft(matrix_fat_tree(cfg.k, wiring));
    auto failed_router = make_router(failed_ft);
    sim::FluidSimulator failed_sim(failed_ft.network(), failed_router,
                                   sim_cfg);
    failed_sim.add_flows(flows);
    const net::NodeId failed_victim = failed_ft.agg(0, 0);
    failed_sim.at(0.0, [failed_victim](net::Network& n) {
      n.fail_node(failed_victim);
    });
    failed_sim.at(duration, [failed_victim](net::Network& n) {
      n.restore_node(failed_victim);
    });
    const auto failed = coflow_ccts(failed_sim.run());
    out.slowdown[strategy] = mean_affected_slowdown(healthy, failed, affected);
  };

  run_strategy(1, topo::Wiring::kAb, [](topo::FatTree& ft) {
    return routing::F10Router(ft, 1);
  });
  run_strategy(2, topo::Wiring::kPlain, [](topo::FatTree& ft) {
    return routing::EcmpWithGlobalRerouteRouter(ft, 1);
  });
  run_strategy(3, topo::Wiring::kPlain, [](topo::FatTree& ft) {
    return routing::SpiderProtectRouter(ft, 1);
  });
  run_strategy(4, topo::Wiring::kPlain, [](topo::FatTree& ft) {
    return routing::BackupRulesRouter(ft, 1);
  });

  // ShareBackup: paths pinned, hardware replaced mid-run. The healthy
  // reference is the same router on the healthy fabric.
  {
    sharebackup::FabricParams fp;
    fp.fat_tree = matrix_fat_tree(cfg.k, topo::Wiring::kPlain);
    fp.backups_per_group = cfg.backups_per_group;

    sharebackup::Fabric healthy_fabric(fp);
    routing::EcmpWithGlobalRerouteRouter healthy_router(
        healthy_fabric.fat_tree(), 1);
    sim::SimConfig pinned = sim_cfg;
    pinned.reroute_on_path_failure = false;
    sim::FluidSimulator healthy_sim(healthy_fabric.network(), healthy_router,
                                    pinned);
    healthy_sim.add_flows(flows);
    const auto healthy = coflow_ccts(healthy_sim.run());

    const net::NodeId victim =
        healthy_fabric.node_at({topo::Layer::kAgg, 0, 0});
    std::set<sim::CoflowId> affected;
    for (const auto& f : flows) {
      if (f.src == f.dst) continue;
      const net::Path p = healthy_router.route(healthy_fabric.network(),
                                               f.src, f.dst, f.id, nullptr);
      if (net::path_uses_node(p, victim)) affected.insert(f.coflow);
    }

    sharebackup::Fabric fabric(fp);
    control::Controller ctrl(fabric, control::ControllerConfig{});
    routing::EcmpWithGlobalRerouteRouter router(fabric.fat_tree(), 1);
    sim::FluidSimulator failed_sim(fabric.network(), router, pinned);
    failed_sim.add_flows(flows);
    const net::NodeId fv = fabric.node_at({topo::Layer::kAgg, 0, 0});
    const Seconds recover = ctrl.end_to_end_recovery_latency();
    failed_sim.at(duration / 2, [fv](net::Network& n) { n.fail_node(fv); });
    failed_sim.at(duration / 2 + recover, [&ctrl](net::Network&) {
      (void)ctrl.on_switch_failure({topo::Layer::kAgg, 0, 0});
    });
    const auto failed = coflow_ccts(failed_sim.run());
    out.slowdown[0] = mean_affected_slowdown(healthy, failed, affected);
  }
  return out;
}

}  // namespace

const char* to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kShareBackup: return "sharebackup";
    case Strategy::kF10: return "f10";
    case Strategy::kEcmpGlobalReroute: return "ecmp+global-reroute";
    case Strategy::kSpiderProtect: return "spider-protect";
    case Strategy::kBackupRules: return "backup-rules";
  }
  return "?";
}

ComparisonMatrix run_comparison_matrix(const MatrixConfig& cfg) {
  SBK_EXPECTS_MSG(cfg.k >= 4 && cfg.k % 2 == 0, "k must be even and >= 4");
  SBK_EXPECTS(cfg.scenarios > 0 && cfg.flows_per_scenario > 0);

  sweep::SweepConfig sc;
  sc.master_seed = cfg.master_seed;
  sc.threads = cfg.threads;
  sweep::SweepRunner runner(sc);
  const std::vector<ChurnBatch> batches =
      runner.run(cfg.scenarios, [&cfg](const sweep::ScenarioSpec& spec) {
        return churn_scenario(cfg, spec);
      });

  ChurnBatch total;
  for (const ChurnBatch& b : batches) {
    for (std::size_t s = 0; s < kStrategyCount; ++s) {
      total.probed[s] += b.probed[s];
      total.lost[s] += b.lost[s];
    }
    total.backup_hits += b.backup_hits;
    total.backup_fallbacks += b.backup_fallbacks;
    total.spider_failovers += b.spider_failovers;
    total.spider_detour_misses += b.spider_detour_misses;
    total.violations += b.violations;
  }

  const CctProbe cct = run_cct_probe(cfg);

  const std::size_t backup_affected =
      total.backup_hits + total.backup_fallbacks;
  const double fallback_frac =
      backup_affected == 0
          ? 0.0
          : static_cast<double>(total.backup_fallbacks) /
                static_cast<double>(backup_affected);

  const control::LatencyModelParams lp;
  const std::array<double, kStrategyCount> latency = {
      control::sharebackup_latency(
          lp, sharebackup::CircuitTechnology::kElectricalCrosspoint)
          .total(),
      control::local_reroute_latency(lp, "f10-local").total(),
      control::global_reroute_latency(lp, cfg.global_rule_updates).total(),
      control::spider_protect_latency(lp).total(),
      control::backup_rules_latency(lp, fallback_frac,
                                    cfg.global_rule_updates)
          .total(),
  };

  const std::array<cost::ProtectionTableFootprint, kStrategyCount> tables = {
      cost::sharebackup_table_footprint(cfg.k, cfg.backups_per_group),
      cost::reactive_table_footprint("f10"),
      cost::reactive_table_footprint("ecmp+global-reroute"),
      cost::spider_table_footprint(cfg.k),
      cost::backup_rules_table_footprint(cfg.k),
  };

  ComparisonMatrix m;
  m.violations = total.violations;
  for (std::size_t s = 0; s < kStrategyCount; ++s) {
    StrategyRow row;
    row.strategy = to_string(kAllStrategies[s]);
    row.recovery_latency = latency[s];
    row.flows_probed = total.probed[s];
    row.flows_lost = total.lost[s];
    row.packet_loss = total.probed[s] == 0
                          ? 0.0
                          : static_cast<double>(total.lost[s]) /
                                static_cast<double>(total.probed[s]);
    row.cct_slowdown = cct.slowdown[s];
    row.table_entries = tables[s].protection_entries;
    row.table_per_switch = tables[s].per_switch_max;
    if (kAllStrategies[s] == Strategy::kBackupRules) {
      row.backup_fallback_frac = fallback_frac;
    }
    m.rows.push_back(std::move(row));
  }
  return m;
}

void write_matrix_csv(const ComparisonMatrix& m, std::ostream& out) {
  CsvWriter csv(out);
  csv.row({"strategy", "recovery_latency_s", "packet_loss", "cct_slowdown",
           "table_entries", "table_per_switch", "flows_probed", "flows_lost",
           "backup_fallback_frac"});
  for (const StrategyRow& r : m.rows) {
    csv.row({r.strategy, CsvWriter::num_exact(r.recovery_latency),
             CsvWriter::num_exact(r.packet_loss),
             CsvWriter::num_exact(r.cct_slowdown),
             CsvWriter::num(static_cast<long long>(r.table_entries)),
             CsvWriter::num(static_cast<long long>(r.table_per_switch)),
             CsvWriter::num(r.flows_probed), CsvWriter::num(r.flows_lost),
             CsvWriter::num_exact(r.backup_fallback_frac)});
  }
}

std::string matrix_summary(const ComparisonMatrix& m) {
  std::ostringstream os;
  os << "strategy              latency(ms)   loss      cct-slow  "
        "table(fabric/switch)\n";
  for (const StrategyRow& r : m.rows) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-20s %10.3f %8.4f %11.3f   %lld / %lld\n",
                  r.strategy.c_str(), r.recovery_latency * 1e3,
                  r.packet_loss, r.cct_slowdown, r.table_entries,
                  r.table_per_switch);
    os << line;
  }
  if (m.violations != 0) {
    os << "VIOLATIONS: " << m.violations << " routed paths failed the "
       << "live/valid invariants\n";
  }
  return os.str();
}

}  // namespace sbk::baselines
