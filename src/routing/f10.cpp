#include "routing/f10.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::routing {

namespace {

using net::LinkId;
using net::Network;
using net::NodeId;
using net::Path;

bool link_live(NeighborLinkCache& cache, const Network& net, NodeId a,
               NodeId b) {
  auto l = cache.find(net, a, b);
  return l.has_value() && net.usable(*l);
}

bool append(NeighborLinkCache& cache, const Network& net, Path& p,
            NodeId next) {
  auto l = cache.find(net, p.nodes.back(), next);
  if (!l.has_value() || !net.usable(*l)) return false;
  if (std::find(p.nodes.begin(), p.nodes.end(), next) != p.nodes.end()) {
    return false;  // would create a loop
  }
  p.nodes.push_back(next);
  p.links.push_back(*l);
  return true;
}

/// Deterministic pick of index i in [0, n) by hash; callers iterate
/// (h + t) % n over t to probe alternatives in a stable order.
std::size_t pick(std::uint64_t h, std::size_t t, std::size_t n) {
  return static_cast<std::size_t>((h + t) % n);
}

}  // namespace

net::Path F10Router::route(const Network& net, NodeId src, NodeId dst,
                           std::uint64_t flow_id, const LinkLoads* /*loads*/) {
  SBK_EXPECTS_MSG(&net == &ft_->network(),
                  "router is bound to a different network instance");
  const topo::FatTree& ft = *ft_;
  const int half = ft.half_k();

  if (src == dst) return Path{{src}, {}};
  if (net.node_failed(src) || net.node_failed(dst)) return {};

  const NodeId es = ft.edge_of_host(src);
  const NodeId ed = ft.edge_of_host(dst);
  if (net.node_failed(es) || net.node_failed(ed)) return {};

  Path p{{src}, {}};
  if (!append(links_, net, p, es)) return {};

  if (es == ed) {
    if (!append(links_, net, p, dst)) return {};
    return p;
  }

  const int src_pod = ft.pod_of(es);
  const int dst_pod = ft.pod_of(ed);
  const std::uint64_t h = mix64(flow_id ^ mix64(salt_));

  if (src_pod == dst_pod) {
    // Up to some agg with a live link down to ed (local information: the
    // edge switch learns broken agg->edge links from its pod neighbors).
    for (std::size_t t = 0; t < static_cast<std::size_t>(half); ++t) {
      NodeId agg = ft.agg(src_pod, static_cast<int>(pick(h, t, half)));
      if (net.node_failed(agg)) continue;
      if (!link_live(links_, net, es, agg)) continue;
      if (link_live(links_, net, agg, ed)) {
        Path q = p;
        if (append(links_, net, q, agg) && append(links_, net, q, ed) &&
            append(links_, net, q, dst)) {
          return q;
        }
      }
      // 3-hop detour inside the pod: agg -> e' -> agg' -> ed.
      for (std::size_t u = 0; u < static_cast<std::size_t>(half); ++u) {
        NodeId e2 = ft.edge(src_pod, static_cast<int>(pick(h >> 8, u, half)));
        if (e2 == es || e2 == ed || net.node_failed(e2)) continue;
        if (!link_live(links_, net, agg, e2)) continue;
        for (std::size_t v = 0; v < static_cast<std::size_t>(half); ++v) {
          NodeId a2 = ft.agg(src_pod, static_cast<int>(pick(h >> 16, v, half)));
          if (a2 == agg || net.node_failed(a2)) continue;
          if (!link_live(links_, net, e2, a2) ||
              !link_live(links_, net, a2, ed)) {
            continue;
          }
          Path q = p;
          if (append(links_, net, q, agg) && append(links_, net, q, e2) &&
              append(links_, net, q, a2) && append(links_, net, q, ed) &&
              append(links_, net, q, dst)) {
            return q;
          }
        }
      }
    }
    return {};
  }

  // Inter-pod. Choose the up agg and core locally among live uplinks.
  for (std::size_t t = 0; t < static_cast<std::size_t>(half); ++t) {
    NodeId agg_up = ft.agg(src_pod, static_cast<int>(pick(h, t, half)));
    if (net.node_failed(agg_up) || !link_live(links_, net, es, agg_up)) {
      continue;
    }
    const std::vector<int> core_choices =
        ft.cores_of_agg(src_pod, ft.index_of(agg_up));
    for (std::size_t u = 0; u < core_choices.size(); ++u) {
      int c = core_choices[pick(h >> 8, u, core_choices.size())];
      NodeId core = ft.core(c);
      if (net.node_failed(core) || !link_live(links_, net, agg_up, core)) {
        continue;
      }

      NodeId agg_down = ft.agg_for_core(c, dst_pod);
      if (!net.node_failed(agg_down) &&
          link_live(links_, net, core, agg_down) &&
          link_live(links_, net, agg_down, ed)) {
        Path q = p;
        if (append(links_, net, q, agg_up) && append(links_, net, q, core) &&
            append(links_, net, q, agg_down) && append(links_, net, q, ed) &&
            append(links_, net, q, dst)) {
          return q;
        }
      }

      // F10 3-hop detour at the core level: core -> agg B in a third pod
      // -> alternate core c' -> live agg in dst pod -> ed.
      for (std::size_t w = 0; w < static_cast<std::size_t>(ft.pods()); ++w) {
        int q_pod = static_cast<int>(pick(h >> 16, w, ft.pods()));
        if (q_pod == dst_pod || q_pod == src_pod) continue;
        NodeId b = ft.agg_for_core(c, q_pod);
        if (net.node_failed(b) || !link_live(links_, net, core, b)) {
          continue;
        }
        const std::vector<int> alt_cores =
            ft.cores_of_agg(q_pod, ft.index_of(b));
        for (std::size_t x = 0; x < alt_cores.size(); ++x) {
          int c2 = alt_cores[pick(h >> 24, x, alt_cores.size())];
          if (c2 == c) continue;
          NodeId core2 = ft.core(c2);
          if (net.node_failed(core2) || !link_live(links_, net, b, core2)) {
            continue;
          }
          NodeId agg_down2 = ft.agg_for_core(c2, dst_pod);
          if (net.node_failed(agg_down2)) continue;
          if (!link_live(links_, net, core2, agg_down2) ||
              !link_live(links_, net, agg_down2, ed)) {
            continue;
          }
          Path q = p;
          if (append(links_, net, q, agg_up) && append(links_, net, q, core) &&
              append(links_, net, q, b) && append(links_, net, q, core2) &&
              append(links_, net, q, agg_down2) && append(links_, net, q, ed) &&
              append(links_, net, q, dst)) {
            return q;
          }
        }
      }

      // Detour at the pod level: agg_down is reachable but its link to ed
      // is broken -> route inside dst pod via another edge/agg pair.
      if (!net.node_failed(agg_down) &&
          link_live(links_, net, core, agg_down)) {
        for (std::size_t u2 = 0; u2 < static_cast<std::size_t>(half); ++u2) {
          NodeId e2 = ft.edge(dst_pod, static_cast<int>(pick(h >> 32, u2, half)));
          if (e2 == ed || net.node_failed(e2)) continue;
          if (!link_live(links_, net, agg_down, e2)) continue;
          for (std::size_t v = 0; v < static_cast<std::size_t>(half); ++v) {
            NodeId a2 = ft.agg(dst_pod, static_cast<int>(pick(h >> 40, v, half)));
            if (a2 == agg_down || net.node_failed(a2)) continue;
            if (!link_live(links_, net, e2, a2) ||
                !link_live(links_, net, a2, ed)) {
              continue;
            }
            Path q = p;
            if (append(links_, net, q, agg_up) && append(links_, net, q, core) &&
                append(links_, net, q, agg_down) && append(links_, net, q, e2) &&
                append(links_, net, q, a2) && append(links_, net, q, ed) &&
                append(links_, net, q, dst)) {
              return q;
            }
          }
        }
      }
    }
  }
  return {};
}

}  // namespace sbk::routing
