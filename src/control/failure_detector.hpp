// Discrete-event failure detection (§4.1): switches send keep-alive
// messages to the controller every probe interval; adjacent devices probe
// their links the same way (the F10 rapid-detection mechanism the paper
// adopts). A failure is declared after `miss_threshold` consecutive
// missed probes, and the registered callback fires with the detection
// timestamp — which the recovery-latency experiments compare against the
// injection timestamp.
//
// Probe-chain contract:
//   * watch_node/watch_link arm at most ONE probe chain per element.
//     Re-watching a watched element resets its miss counter and
//     reported flag and moves its horizon; it never starts a second
//     chain (a duplicate chain would double-count misses and halve the
//     effective detection time).
//   * A chain expires when the next probe would land past the horizon.
//   * rearm_node/rearm_link reset the counters for a recovered element
//     and, if its chain has expired but the clock has not passed the
//     horizon (e.g. the first probe was pushed past it by a large
//     phase), reschedule probing so the element is watched again. Once
//     now + probe_interval exceeds the horizon, re-arming keeps the
//     element unwatched — extend coverage with a fresh watch_* call.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_tracer.hpp"
#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace sbk::control {

struct DetectorConfig {
  Seconds probe_interval = milliseconds(1);
  int miss_threshold = 3;
  /// Phase offset of the first probe (probes at phase, phase+interval, ...).
  Seconds phase = 0.0;
  /// Re-report a still-failed element every this many seconds after the
  /// first report (0 = report once, the historical behavior). Re-reports
  /// are what lets the control plane survive a lost failure report: the
  /// controller's stale-report guard makes duplicates harmless.
  Seconds report_retry_interval = 0.0;
};

/// Watches nodes (keep-alives) and links (pairwise probes) of a Network
/// and reports failures. The Network's failure flags are the ground
/// truth a probe observes.
class FailureDetector {
 public:
  FailureDetector(sim::EventQueue& queue, const net::Network& net,
                  DetectorConfig config);

  /// Starts watching a node / link. Probing events are scheduled up to
  /// `horizon`. Watching an already-watched element resets its counters
  /// and retargets its horizon without starting a second probe chain.
  void watch_node(net::NodeId node, Seconds horizon);
  void watch_link(net::LinkId link, Seconds horizon);

  using NodeCallback = std::function<void(net::NodeId, Seconds)>;
  using LinkCallback = std::function<void(net::LinkId, Seconds)>;
  void on_node_failure(NodeCallback cb) { node_cb_ = std::move(cb); }
  void on_link_failure(LinkCallback cb) { link_cb_ = std::move(cb); }

  /// A recovered element is re-armed for future detections; if its probe
  /// chain expired while the horizon is still ahead, probing resumes
  /// (see the probe-chain contract above).
  void rearm_node(net::NodeId node);
  void rearm_link(net::LinkId link);

  /// Counters: detector.node_probes / link_probes / misses /
  /// node_failures_reported / link_failures_reported. Pass nullptr to
  /// detach. The registry must outlive the detector.
  void attach_metrics(obs::MetricsRegistry* metrics);
  /// Detection spans per incident ("detection": first miss -> report,
  /// anchored at the incident's injection time when the injector
  /// announced it). Pass nullptr to detach; must outlive the detector.
  void attach_tracer(obs::RecoveryTracer* tracer) noexcept {
    tracer_ = tracer;
  }

 private:
  struct WatchState {
    int misses = 0;
    bool reported = false;
    /// A probe event for this element is pending in the queue.
    bool chain_scheduled = false;
    Seconds horizon = 0.0;
    /// Timestamp of the first miss of the current streak (span start).
    Seconds first_miss = 0.0;
    /// Timestamp of the last report (for report_retry_interval).
    Seconds last_report = 0.0;
  };

  [[nodiscard]] bool report_due(const WatchState& w) const;

  void probe_node(net::NodeId node);
  void probe_link(net::LinkId link);
  void trace_detection(const std::string& element, Seconds first_miss,
                       Seconds detected_at);

  sim::EventQueue* queue_;
  const net::Network* net_;
  DetectorConfig config_;
  std::unordered_map<net::NodeId, WatchState> node_watch_;
  std::unordered_map<net::LinkId, WatchState> link_watch_;
  NodeCallback node_cb_;
  LinkCallback link_cb_;
  obs::RecoveryTracer* tracer_ = nullptr;
  obs::Counter* m_node_probes_ = nullptr;
  obs::Counter* m_link_probes_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_node_reports_ = nullptr;
  obs::Counter* m_link_reports_ = nullptr;
};

}  // namespace sbk::control
