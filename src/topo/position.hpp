// Logical switch positions and ShareBackup failure-group geometry (§3).
// A *position* is a slot in the fat-tree wiring (edge (pod,j), agg
// (pod,j), or core c). Positions never fail; the physical devices serving
// them do, and ShareBackup swaps devices under positions.
//
// Failure groups (Table 1):
//   * FG_{1,pod}: the k/2 edge switches of a pod;
//   * FG_{2,pod}: the k/2 aggregation switches of a pod;
//   * FG_{3,u}:  the k/2 core switches with index ≡ u (mod k/2) — they
//     share circuit switches because agg j connects to cores
//     j*k/2 .. j*k/2+k/2-1 in consecutive order, and the m-th layer-3
//     circuit switch of every pod serves the cores ≡ m (mod k/2).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace sbk::topo {

/// Switch layer, mirroring the paper's circuit-switch layers l = 1,2,3
/// (below the named layer).
enum class Layer : std::uint8_t { kEdge, kAgg, kCore };

[[nodiscard]] constexpr const char* to_string(Layer l) noexcept {
  switch (l) {
    case Layer::kEdge: return "edge";
    case Layer::kAgg: return "agg";
    case Layer::kCore: return "core";
  }
  return "?";
}

/// A logical switch position in a k-ary fat-tree.
struct SwitchPosition {
  Layer layer = Layer::kEdge;
  int pod = -1;   ///< pod for edge/agg; -1 for core
  int index = 0;  ///< in-pod index for edge/agg; global index for core

  friend constexpr bool operator==(SwitchPosition,
                                   SwitchPosition) noexcept = default;
};

/// Failure-group id of a position: the pod for edge/agg groups, the core
/// index mod k/2 for core groups.
[[nodiscard]] inline int failure_group_of(int k, SwitchPosition pos) {
  switch (pos.layer) {
    case Layer::kEdge:
    case Layer::kAgg:
      SBK_EXPECTS(pos.pod >= 0 && pos.pod < k);
      return pos.pod;
    case Layer::kCore:
      SBK_EXPECTS(pos.index >= 0 && pos.index < (k / 2) * (k / 2));
      return pos.index % (k / 2);
  }
  SBK_UNREACHABLE("bad layer");
}

/// Slot of a position within its failure group, in [0, k/2).
[[nodiscard]] inline int group_slot_of(int k, SwitchPosition pos) {
  switch (pos.layer) {
    case Layer::kEdge:
    case Layer::kAgg:
      SBK_EXPECTS(pos.index >= 0 && pos.index < k / 2);
      return pos.index;
    case Layer::kCore:
      return pos.index / (k / 2);
  }
  SBK_UNREACHABLE("bad layer");
}

/// Number of failure groups on a layer: k pods for edge/agg, k/2 for
/// core. Total = 5k/2 (paper §5.2).
[[nodiscard]] inline int failure_group_count(int k, Layer layer) {
  return layer == Layer::kCore ? k / 2 : k;
}

}  // namespace sbk::topo
