// Offline failure diagnosis (§4.2). After a link failure both endpoint
// switches are replaced immediately; this engine later determines which
// "suspect interface" actually caused the failure, using circuit
// reconfiguration only among devices that are out of service — the
// production network is never touched (asserted).
//
// Per Figure 4, each suspect interface is tested under up to three
// circuit configurations connecting it to three different interfaces:
//   (1) the other suspect's interface on the same circuit switch;
//   (2) an idle backup switch's interface on the same circuit switch;
//   (3) the suspect device's *own* interface on a neighboring circuit
//       switch, reached through the side-port ring.
// An interface with connectivity in at least one configuration is
// redressed healthy, and so is its switch. If no configuration can even
// be built (no testable peer), the switch is conservatively considered
// faulty — the paper's "both sides need at least one healthy interface"
// condition.
#pragma once

#include <cstddef>
#include <vector>

#include "sharebackup/fabric.hpp"

namespace sbk::control {

using sharebackup::DeviceUid;
using sharebackup::Fabric;
using sharebackup::InterfaceRef;

/// Verdict for one suspect switch.
struct SuspectVerdict {
  DeviceUid device = sharebackup::kNoDeviceUid;
  bool healthy = false;
  int configurations_built = 0;
  int configurations_passed = 0;
};

/// Outcome of diagnosing one failed link.
struct DiagnosisResult {
  SuspectVerdict first;
  SuspectVerdict second;  ///< unset (kNoDeviceUid) for host-side failures
  std::size_t circuit_operations = 0;  ///< connect/disconnect ops used
};

class DiagnosisEngine {
 public:
  explicit DiagnosisEngine(Fabric& fabric) : fabric_(&fabric) {}

  /// Diagnoses the failed link whose circuit lived on `cs`, between the
  /// two now-offline devices `a` and `b`. Preconditions: both devices are
  /// kOut; their ports are idle.
  [[nodiscard]] DiagnosisResult diagnose_link(DeviceUid a, DeviceUid b,
                                              std::size_t cs);

  /// Diagnoses a single offline device's interface on `cs` against
  /// whatever idle peers exist (used for host-link suspects, where the
  /// host side cannot be probed).
  [[nodiscard]] SuspectVerdict diagnose_interface(DeviceUid dev,
                                                  std::size_t cs);

 private:
  /// Builds a circuit from `suspect`'s port on its switch to `target`,
  /// probes, tears the circuit down, and returns the probe result.
  /// Targets may live on the same switch or one ring hop away.
  struct TestTarget {
    std::size_t cs;
    int port;
  };
  [[nodiscard]] bool run_configuration(InterfaceRef suspect,
                                       const TestTarget& target,
                                       std::size_t* ops);
  [[nodiscard]] std::vector<TestTarget> enumerate_targets(
      InterfaceRef suspect, DeviceUid other_suspect);
  [[nodiscard]] bool port_is_testable(std::size_t cs, int port) const;

  Fabric* fabric_;
};

}  // namespace sbk::control
