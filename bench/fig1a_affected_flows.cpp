// Experiment E1 — Figure 1(a): percentage of *flows* affected by node and
// link failures, versus the number of concurrent failures, on a k=16
// rack-level fat-tree (128 racks, 10:1 oversubscribed) with ECMP routing.
// A flow is affected if its path traverses a failed switch or link.
#include <cstdio>

#include "bench_util.hpp"
#include "bench_workload.hpp"
#include "routing/ecmp.hpp"
#include "sim/failure_analysis.hpp"
#include "util/stats.hpp"

using namespace sbk;

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 16));
  const auto coflows =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "coflows", 250));
  const auto trials =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "trials", 30));

  bench::banner(
      "E1 / Figure 1(a) — % of flows affected by failures",
      "k=" + std::to_string(k) + " rack-level fat-tree, 10:1 oversubscribed, "
      "ECMP; mean over " + std::to_string(trials) + " random failure draws.");

  topo::FatTree ft(bench::paper_fat_tree(k));
  routing::EcmpRouter router(ft, /*salt=*/1);
  auto flows = bench::make_flows(ft, coflows, 300.0, /*seed=*/20170001);
  auto snapshot = sim::route_snapshot(ft.network(), router, flows);
  std::printf("workload: %zu coflows -> %zu flows on %d racks\n\n", coflows,
              snapshot.size(), ft.host_count());

  std::printf("%-10s %18s %18s\n", "failures", "node-failure %flows",
              "link-failure %flows");
  Rng rng(99);
  for (std::size_t f : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Summary node_frac, link_frac;
    for (std::size_t t = 0; t < trials; ++t) {
      auto nodes = sim::random_switch_failures(ft.network(), f, rng);
      node_frac.add(sim::measure_impact(snapshot, nodes).flow_fraction());
      auto links = sim::random_fabric_link_failures(ft.network(), f, rng);
      link_frac.add(sim::measure_impact(snapshot, links).flow_fraction());
    }
    std::printf("%-10zu %18s %18s\n", f,
                bench::fmt_pct(node_frac.mean()).c_str(),
                bench::fmt_pct(link_frac.mean()).c_str());
    bench::csv_row({std::to_string(f), bench::fmt(node_frac.mean()),
                    bench::fmt(link_frac.mean())});
  }
  std::printf("\nPaper's shape: single-failure flow impact is small (a few "
              "percent),\ngrowing roughly linearly with failure count; node "
              "failures hit more\nflows than link failures.\n");
  return 0;
}
