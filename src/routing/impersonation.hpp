// Live impersonation of failed switches (§4.3): every physical switch in
// a failure group preloads the group's routing state, so a backup brought
// online by circuit reconfiguration forwards correctly immediately — no
// rule installation on the critical path.
//
//   * Edge failure group (a pod's k/2 edges): the *combined* table —
//     the k/2 shared in-bound entries plus the k^2/4 VLAN-tagged
//     out-bound entries of all edges in the pod.
//   * Aggregation failure group (a pod's k/2 aggs): the pod's common
//     aggregation table.
//   * Core failure group: the common core table.
//
// This module tracks which physical device currently serves each logical
// switch position, hands out the preloaded table of any device, and — via
// ForwardingSim — walks packets through logical positions consulting the
// table of the device *currently* at each position. Tests verify that
// forwarding is invariant under arbitrary sequences of failovers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/two_level.hpp"
#include "topo/position.hpp"

namespace sbk::routing {

using topo::Layer;
using topo::SwitchPosition;

/// Opaque physical device handle (unique across the fabric).
using DeviceUid = std::uint32_t;
inline constexpr DeviceUid kNoDevice = static_cast<DeviceUid>(-1);

/// Tracks device<->position assignment and preloaded tables for every
/// failure group of a k-ary fat-tree with n backups per group.
class ImpersonationStore {
 public:
  ImpersonationStore(int k, int n_backups);

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int backups_per_group() const noexcept { return n_; }

  /// Failure groups: per pod one edge group and one agg group; core
  /// groups by core index mod k/2. Group key below is (layer, group_id).
  [[nodiscard]] int group_of(SwitchPosition pos) const;
  [[nodiscard]] int group_count(Layer layer) const;

  /// Device currently serving a position.
  [[nodiscard]] DeviceUid device_at(SwitchPosition pos) const;
  /// Idle spare devices of a group (initially the n backups).
  [[nodiscard]] std::vector<DeviceUid> spares(Layer layer, int group) const;

  /// Replaces the device at `pos` with an idle spare of its group.
  /// Returns {failed_device, new_device} or nullopt if the group's pool
  /// is exhausted. The failed device leaves service (not a spare).
  struct Failover {
    DeviceUid failed;
    DeviceUid replacement;
  };
  [[nodiscard]] std::optional<Failover> fail_over(SwitchPosition pos);

  /// Returns a previously failed-over (or exonerated) device to its
  /// group's spare pool — the paper's "repaired switches become backups".
  void return_to_pool(DeviceUid dev);

  /// Preloaded routing table of a device (the group-wide table described
  /// above). Identical for all devices of one group by construction.
  [[nodiscard]] const TwoLevelTable& table_of(DeviceUid dev) const;

  [[nodiscard]] Layer layer_of(DeviceUid dev) const;
  [[nodiscard]] std::size_t device_count() const noexcept {
    return device_layer_.size();
  }

 private:
  struct Group {
    std::vector<DeviceUid> assigned;  ///< by position-in-group index
    std::vector<DeviceUid> spare;
    std::vector<DeviceUid> out;       ///< failed, awaiting repair
    TwoLevelTable table;
  };

  [[nodiscard]] Group& group(Layer layer, int id);
  [[nodiscard]] const Group& group(Layer layer, int id) const;
  [[nodiscard]] int position_slot(SwitchPosition pos) const;

  int k_;
  int n_;
  std::vector<Group> edge_groups_;  // by pod
  std::vector<Group> agg_groups_;   // by pod
  std::vector<Group> core_groups_;  // by core index mod k/2
  std::vector<Layer> device_layer_;
  std::vector<int> device_group_;
};

/// Result of walking one packet through the fabric.
struct ForwardingTrace {
  bool delivered = false;
  /// Positions visited, edge ingress to edge egress (switch hops only).
  std::vector<SwitchPosition> positions;
  /// Devices that served each position at walk time.
  std::vector<DeviceUid> devices;

  [[nodiscard]] std::size_t switch_hops() const noexcept {
    return positions.size();
  }
};

/// Packet walker over logical positions + current device tables. Uses the
/// plain-wiring adjacency (edge j <-> every agg; agg a <-> cores
/// a*k/2..a*k/2+k/2-1; core row r <-> agg r of every pod).
class ForwardingSim {
 public:
  explicit ForwardingSim(const ImpersonationStore& store) : store_(&store) {}

  /// Walks a packet from src to dst. Hosts tag packets with their edge
  /// position's VLAN (the position index, not the device).
  [[nodiscard]] ForwardingTrace walk(HostAddr src, HostAddr dst) const;

 private:
  const ImpersonationStore* store_;
};

}  // namespace sbk::routing
