#include "control/failure_detector.hpp"

#include "util/assert.hpp"

namespace sbk::control {

FailureDetector::FailureDetector(sim::EventQueue& queue,
                                 const net::Network& net,
                                 DetectorConfig config)
    : queue_(&queue), net_(&net), config_(config) {
  SBK_EXPECTS(config_.probe_interval > 0.0);
  SBK_EXPECTS(config_.miss_threshold >= 1);
  SBK_EXPECTS(config_.phase >= 0.0);
  SBK_EXPECTS(config_.report_retry_interval >= 0.0);
}

bool FailureDetector::report_due(const WatchState& w) const {
  if (w.misses < config_.miss_threshold) return false;
  if (!w.reported) return true;
  // Already reported: re-report a still-failed element periodically so a
  // lost report does not strand the failure forever.
  return config_.report_retry_interval > 0.0 &&
         queue_->now() - w.last_report >=
             config_.report_retry_interval - 1e-12;
}

void FailureDetector::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_node_probes_ = m_link_probes_ = m_misses_ = nullptr;
    m_node_reports_ = m_link_reports_ = nullptr;
    return;
  }
  m_node_probes_ = &metrics->counter("detector.node_probes");
  m_link_probes_ = &metrics->counter("detector.link_probes");
  m_misses_ = &metrics->counter("detector.misses");
  m_node_reports_ = &metrics->counter("detector.node_failures_reported");
  m_link_reports_ = &metrics->counter("detector.link_failures_reported");
}

void FailureDetector::trace_detection(const std::string& element,
                                      Seconds first_miss,
                                      Seconds detected_at) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  std::size_t inc = tracer_->ensure_incident(element, first_miss);
  // Anchor at the injection time when the injector announced itself (it
  // precedes the first miss); otherwise the miss streak is the best
  // observable start of the detection window.
  Seconds start = std::min(tracer_->injected_at(inc), first_miss);
  tracer_->add_span(inc, "detection", start, detected_at);
}

void FailureDetector::watch_node(net::NodeId node, Seconds horizon) {
  WatchState& w = node_watch_[node];
  w.misses = 0;
  w.reported = false;
  w.horizon = horizon;
  if (w.chain_scheduled) return;  // reuse the existing probe chain
  Seconds first = queue_->now() + config_.phase + config_.probe_interval;
  if (first <= horizon) {
    w.chain_scheduled = true;
    queue_->schedule_at(first, [this, node] { probe_node(node); });
  }
}

void FailureDetector::watch_link(net::LinkId link, Seconds horizon) {
  WatchState& w = link_watch_[link];
  w.misses = 0;
  w.reported = false;
  w.horizon = horizon;
  if (w.chain_scheduled) return;  // reuse the existing probe chain
  Seconds first = queue_->now() + config_.phase + config_.probe_interval;
  if (first <= horizon) {
    w.chain_scheduled = true;
    queue_->schedule_at(first, [this, link] { probe_link(link); });
  }
}

void FailureDetector::probe_node(net::NodeId node) {
  WatchState& w = node_watch_[node];
  if (m_node_probes_) m_node_probes_->add();
  // The keep-alive arrives iff the node is up.
  if (net_->node_failed(node)) {
    if (w.misses == 0) w.first_miss = queue_->now();
    ++w.misses;
    if (m_misses_) m_misses_->add();
    if (report_due(w)) {
      bool first_report = !w.reported;
      w.reported = true;
      w.last_report = queue_->now();
      if (m_node_reports_) m_node_reports_->add();
      if (first_report) {
        trace_detection(obs::element_for_node(net_->node(node).name),
                        w.first_miss, queue_->now());
      }
      if (node_cb_) node_cb_(node, queue_->now());
    }
  } else {
    w.misses = 0;
  }
  // Re-read the state: the callback may have re-watched or re-armed.
  WatchState& w2 = node_watch_[node];
  Seconds next = queue_->now() + config_.probe_interval;
  if (next <= w2.horizon) {
    queue_->schedule_at(next, [this, node] { probe_node(node); });
  } else {
    w2.chain_scheduled = false;
  }
}

void FailureDetector::probe_link(net::LinkId link) {
  WatchState& w = link_watch_[link];
  if (m_link_probes_) m_link_probes_->add();
  // A link probe succeeds iff the link and both endpoints are up. A dead
  // endpoint is detected by the node keep-alives; the link path still
  // fails its probes, but a node-failure report takes precedence at the
  // controller, so we only report when both endpoints are alive.
  const net::Link& l = net_->link(link);
  bool endpoints_up = !net_->node_failed(l.a) && !net_->node_failed(l.b);
  if (net_->link_failed(link) && endpoints_up) {
    if (w.misses == 0) w.first_miss = queue_->now();
    ++w.misses;
    if (m_misses_) m_misses_->add();
    if (report_due(w)) {
      bool first_report = !w.reported;
      w.reported = true;
      w.last_report = queue_->now();
      if (m_link_reports_) m_link_reports_->add();
      if (first_report) {
        trace_detection(obs::element_for_link(net_->node(l.a).name,
                                              net_->node(l.b).name),
                        w.first_miss, queue_->now());
      }
      if (link_cb_) link_cb_(link, queue_->now());
    }
  } else if (!net_->link_failed(link)) {
    w.misses = 0;
  }
  WatchState& w2 = link_watch_[link];
  Seconds next = queue_->now() + config_.probe_interval;
  if (next <= w2.horizon) {
    queue_->schedule_at(next, [this, link] { probe_link(link); });
  } else {
    w2.chain_scheduled = false;
  }
}

void FailureDetector::rearm_node(net::NodeId node) {
  auto it = node_watch_.find(node);
  if (it == node_watch_.end()) return;  // never watched: nothing to re-arm
  WatchState& w = it->second;
  w.misses = 0;
  w.reported = false;
  if (!w.chain_scheduled) {
    Seconds next = queue_->now() + config_.probe_interval;
    if (next <= w.horizon) {
      w.chain_scheduled = true;
      queue_->schedule_at(next, [this, node] { probe_node(node); });
    }
  }
}

void FailureDetector::rearm_link(net::LinkId link) {
  auto it = link_watch_.find(link);
  if (it == link_watch_.end()) return;  // never watched: nothing to re-arm
  WatchState& w = it->second;
  w.misses = 0;
  w.reported = false;
  if (!w.chain_scheduled) {
    Seconds next = queue_->now() + config_.probe_interval;
    if (next <= w.horizon) {
      w.chain_scheduled = true;
      queue_->schedule_at(next, [this, link] { probe_link(link); });
    }
  }
}

}  // namespace sbk::control
