// Tests for the always-on controller service (ROADMAP item 2): the
// bounded-ingress queueing model (overflow, backpressure hysteresis,
// batch formation, decision latency) and the ControllerService
// determinism contract — drain exactly-once, and bit-identical stats
// across producer-thread counts.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "control/controller_cluster.hpp"
#include "faultinject/fault_plan.hpp"
#include "faultinject/report_stream.hpp"
#include "service/controller_service.hpp"
#include "service/ingress_queue.hpp"
#include "service/message.hpp"
#include "service/replicated_service.hpp"
#include "sharebackup/fabric.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::service {
namespace {

namespace fi = sbk::faultinject;

ServiceMessage report_at(Seconds at, std::uint64_t seq) {
  ServiceMessage m;
  m.kind = MessageKind::kNodeFailureReport;
  m.at = at;
  m.seq = seq;
  return m;
}

ServiceMessage probe_at(Seconds at, std::uint64_t seq, bool healthy = true) {
  ServiceMessage m;
  m.kind = MessageKind::kProbeResult;
  m.at = at;
  m.seq = seq;
  m.healthy = healthy;
  return m;
}

/// A queue whose server is slow enough that same-instant arrivals pile
/// up: batch of 1, one virtual second per batch.
IngressConfig slow_server(std::size_t capacity, std::size_t high,
                          std::size_t low) {
  IngressConfig c;
  c.capacity = capacity;
  c.high_water = high;
  c.low_water = low;
  c.max_batch = 1;
  c.batch_overhead = 0.5;
  c.per_message_cost = 0.5;
  return c;
}

TEST(IngressQueue, OverflowDropsAreExplicitAndDeterministic) {
  std::size_t dispatched = 0;
  std::vector<bool> reject_overflow;
  IngressQueue q(slow_server(/*capacity=*/4, /*high=*/3, /*low=*/1),
                 [&](const std::vector<ServiceMessage>& batch, Seconds,
                     Seconds) { dispatched += batch.size(); });
  q.set_reject_hook([&](const ServiceMessage&, bool overflow) {
    reject_overflow.push_back(overflow);
  });

  // Ten same-instant failure reports against a capacity-4 queue whose
  // server takes 1s per message: the first is dispatched immediately
  // (server idle at t=0), four are queued, five find the queue full.
  for (std::uint64_t s = 1; s <= 10; ++s) q.offer(report_at(0.0, s));
  EXPECT_EQ(q.stats().offered, 10u);
  EXPECT_EQ(q.stats().accepted, 5u);
  EXPECT_EQ(q.stats().dropped_overflow, 5u);
  EXPECT_EQ(q.stats().peak_depth, 4u);
  ASSERT_EQ(reject_overflow.size(), 5u);
  for (bool overflow : reject_overflow) EXPECT_TRUE(overflow);

  q.drain();
  EXPECT_EQ(q.stats().processed, q.stats().accepted);
  EXPECT_EQ(dispatched, 5u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngressQueue, BackpressureHysteresisShedsOnlyHealthyProbes) {
  std::vector<std::pair<bool, Seconds>> edges;
  IngressQueue q(slow_server(/*capacity=*/16, /*high=*/4, /*low=*/2),
                 [](const std::vector<ServiceMessage>&, Seconds, Seconds) {});
  q.set_backpressure_hook(
      [&](bool asserted, Seconds at) { edges.emplace_back(asserted, at); });

  // Build the queue to the high-water mark with failure reports (the
  // first arrival is served immediately; occupancy then climbs 1..4).
  for (std::uint64_t s = 1; s <= 5; ++s) q.offer(report_at(0.0, s));
  ASSERT_TRUE(q.backpressure());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].first);
  EXPECT_EQ(edges[0].second, 0.0);

  // Under backpressure: healthy probes are shed, sick probes and
  // failure reports are still admitted.
  q.offer(probe_at(0.0, 6, /*healthy=*/true));
  EXPECT_EQ(q.stats().shed_probes, 1u);
  q.offer(probe_at(0.0, 7, /*healthy=*/false));
  q.offer(report_at(0.0, 8));
  EXPECT_EQ(q.stats().accepted, 7u);
  EXPECT_EQ(q.stats().shed_probes, 1u);

  // Let the server work the queue down: by t=5 it has finished five
  // messages (one per second), occupancy 6 -> 2 <= low_water, so the
  // release edge fires mid-drain — and a healthy probe is admitted
  // again.
  q.offer(probe_at(5.0, 9, /*healthy=*/true));
  ASSERT_FALSE(q.backpressure());
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges[1].first);
  EXPECT_EQ(q.stats().shed_probes, 1u);
  EXPECT_EQ(q.stats().backpressure_engaged, 1u);
  EXPECT_GT(q.stats().backpressure_time, 0.0);

  q.drain();
  EXPECT_EQ(q.stats().processed, q.stats().accepted);
}

TEST(IngressQueue, BatchesFormFromArrivedPrefixAndRespectCap) {
  std::vector<std::size_t> batch_sizes;
  std::vector<Seconds> batch_starts;
  IngressConfig c;
  c.capacity = 64;
  c.high_water = 63;
  c.low_water = 1;
  c.max_batch = 3;
  c.batch_overhead = 0.0;
  c.per_message_cost = 1.0;
  IngressQueue q(c, [&](const std::vector<ServiceMessage>& batch,
                        Seconds start, Seconds) {
    batch_sizes.push_back(batch.size());
    batch_starts.push_back(start);
  });

  // Seven messages at t=0: the first batch starts at t=0 with only the
  // queued prefix (1 message, offered one at a time); the rest wait for
  // the server and then leave in max_batch groups.
  for (std::uint64_t s = 1; s <= 7; ++s) q.offer(report_at(0.0, s));
  q.drain();
  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[0], 1u);  // server idle: dispatched on arrival
  EXPECT_EQ(batch_sizes[1], 3u);  // formed while server busy, capped
  EXPECT_EQ(batch_sizes[2], 3u);
  EXPECT_EQ(batch_starts[0], 0.0);
  EXPECT_EQ(batch_starts[1], 1.0);  // when the server freed up
  EXPECT_EQ(batch_starts[2], 4.0);
  EXPECT_EQ(q.stats().max_batch_seen, 3u);
  EXPECT_EQ(q.stats().batches, 3u);
}

TEST(IngressQueue, RejectsUnsortedArrivals) {
  IngressQueue q(slow_server(8, 7, 1),
                 [](const std::vector<ServiceMessage>&, Seconds, Seconds) {});
  q.offer(report_at(1.0, 5));
  EXPECT_THROW(q.offer(report_at(0.5, 6)), ContractViolation);  // time back
  EXPECT_THROW(q.offer(report_at(1.0, 5)), ContractViolation);  // seq tie
}

/// A small but representative stream: failures, resends, probes, and
/// operator cadences over a k=6 fabric, time-compressed enough that
/// queueing actually happens.
std::vector<ServiceMessage> small_stream(const sharebackup::Fabric& fabric) {
  fi::FaultPlanConfig pcfg;
  pcfg.switch_failures = 6;
  pcfg.link_failures = 9;
  pcfg.bursts = 2;
  pcfg.burst_size = 3;
  const fi::FaultPlan plan = fi::FaultPlan::generate(fabric, pcfg, /*seed=*/7);
  fi::ReportStreamConfig scfg;
  scfg.repeats = 6;
  scfg.resends = 2;
  // Dense telemetry: backpressure windows around report bursts are
  // short, so probes must be frequent enough that some land inside one
  // (that is what the shed counter test pins).
  scfg.background_probes = 512;
  scfg.time_scale = 0.02;
  return fi::build_report_stream(plan, scfg);
}

ServiceConfig burst_sized_service() {
  ServiceConfig c;
  // Watermarks sized below the stream's natural burst peak (~8 queued)
  // so backpressure genuinely engages in a test-sized run.
  c.ingress.high_water = 6;
  c.ingress.low_water = 2;
  return c;
}

struct PassOutput {
  std::string fingerprint;
  ServiceStats stats;
  IngressStats ingress;
};

/// One full lifecycle against a fresh fabric/controller; threads <= 0
/// runs inline.
PassOutput run_pass(const std::vector<ServiceMessage>& stream, int threads) {
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  control::Controller controller(fabric, control::ControllerConfig{});
  controller.set_audit_limit(1000);
  ControllerService service(fabric, controller, burst_sized_service());
  if (threads <= 0) {
    service.run_inline(stream);
  } else {
    std::vector<int> ids;
    for (int p = 0; p < threads; ++p) ids.push_back(service.add_producer());
    service.start();
    std::vector<std::thread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < stream.size();
             i += static_cast<std::size_t>(threads)) {
          service.submit(ids[static_cast<std::size_t>(p)], stream[i]);
        }
        service.finish_producer(ids[static_cast<std::size_t>(p)]);
      });
    }
    for (auto& w : workers) w.join();
    service.drain_and_stop();
  }
  return {service.fingerprint(), service.stats(), service.ingress_stats()};
}

TEST(ControllerService, DrainProcessesEveryAcceptedMessageExactlyOnce) {
  Log::set_level(LogLevel::kError);  // watchdog churn is expected here
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);
  ASSERT_GT(stream.size(), 1000u);

  const PassOutput out = run_pass(stream, /*threads=*/0);
  // Exactly-once: everything admitted was dispatched, nothing remains.
  EXPECT_EQ(out.ingress.processed, out.ingress.accepted);
  EXPECT_EQ(out.ingress.offered, stream.size());
  EXPECT_EQ(out.ingress.accepted + out.ingress.dropped_overflow +
                out.ingress.shed_probes,
            out.ingress.offered);
  // The per-kind dispatch counts partition the processed total.
  EXPECT_EQ(out.stats.node_reports + out.stats.link_reports +
                out.stats.probe_results + out.stats.sick_probes +
                out.stats.operator_commands + out.stats.cluster_events,
            out.ingress.processed);
  EXPECT_EQ(out.stats.submitted, stream.size());
}

TEST(ControllerService, StatsBitIdenticalAcrossThreadCounts) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);

  const PassOutput inline_pass = run_pass(stream, 0);
  for (int threads : {1, 4, 8}) {
    const PassOutput threaded = run_pass(stream, threads);
    EXPECT_EQ(threaded.fingerprint, inline_pass.fingerprint)
        << "divergence at " << threads << " producer threads";
  }
}

TEST(ControllerService, BackpressureEngagesUnderCompressedBursts) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);
  const PassOutput out = run_pass(stream, 0);
  // The burst-sized watermarks must actually exercise: backpressure
  // engaged, healthy probes were shed, and failure reports never were
  // (sheds + drops stayed below the probe population).
  EXPECT_GT(out.ingress.backpressure_engaged, 0u)
      << "peak depth " << out.ingress.peak_depth;
  EXPECT_GT(out.ingress.shed_probes, 0u);
  EXPECT_EQ(out.ingress.dropped_overflow, 0u);
  EXPECT_EQ(out.stats.node_reports + out.stats.link_reports,
            [&] {
              const auto b = fi::breakdown(stream);
              return static_cast<std::uint64_t>(b.failure_reports);
            }());
}

// ---------------------------------------------------------------------------
// ReplicatedControllerService: live controller-cluster failover.

/// Cluster timings in *scaled* virtual time, matched to the streams'
/// time_scale = 0.02: heartbeat 0.2 ms, 3 misses, 0.1 ms election —
/// election_bound() = 0.9 ms, i.e. 45 ms of plan time (the
/// FaultPlanConfig::cluster_election_bound default).
ReplicatedServiceConfig replicated_config() {
  ReplicatedServiceConfig c;
  c.service = burst_sized_service();
  c.cluster.members = 3;
  c.cluster.heartbeat_interval = 0.0002;
  c.cluster.miss_threshold = 3;
  c.cluster.election_duration = 0.0001;
  c.audit_limit = 1000;
  return c;
}

std::vector<ServiceMessage> scenario_stream(const sharebackup::Fabric& fabric,
                                            fi::ClusterScenario scenario) {
  fi::FaultPlanConfig pcfg;
  pcfg.switch_failures = 6;
  pcfg.link_failures = 9;
  pcfg.bursts = 2;
  pcfg.burst_size = 3;
  pcfg.cluster_scenario = scenario;
  const fi::FaultPlan plan = fi::FaultPlan::generate(fabric, pcfg, /*seed=*/7);
  fi::ReportStreamConfig scfg;
  scfg.repeats = 6;
  scfg.resends = 2;
  scfg.background_probes = 512;
  scfg.time_scale = 0.02;
  return fi::build_report_stream(plan, scfg);
}

struct ReplicatedPassOutput {
  std::string fingerprint;
  ServiceStats stats;
  IngressStats ingress;
  std::size_t backlog = 0;
  std::size_t term = 0;
  Seconds bound = 0.0;
};

ReplicatedPassOutput run_replicated_pass(
    const std::vector<ServiceMessage>& stream, int threads) {
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  ReplicatedControllerService service(fabric, replicated_config());
  if (threads <= 0) {
    service.run_inline(stream);
  } else {
    std::vector<int> ids;
    for (int p = 0; p < threads; ++p) ids.push_back(service.add_producer());
    service.start();
    std::vector<std::thread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < stream.size();
             i += static_cast<std::size_t>(threads)) {
          service.submit(ids[static_cast<std::size_t>(p)], stream[i]);
        }
        service.finish_producer(ids[static_cast<std::size_t>(p)]);
      });
    }
    for (auto& w : workers) w.join();
    service.drain_and_stop();
  }
  return {service.fingerprint(),     service.stats(),
          service.ingress_stats(),   service.headless_backlog(),
          service.cluster().term(),  service.election_bound()};
}

/// Zero lost accepted reports, headless bound, and the kind partition —
/// the tentpole's end-of-run invariants — for one scenario stream.
void expect_failover_invariants(const std::vector<ServiceMessage>& stream,
                                const ReplicatedPassOutput& out) {
  EXPECT_EQ(out.ingress.processed, out.ingress.accepted);
  // Every dispatched message is counted exactly once by kind; the
  // headless backlog is empty because every scenario revives the
  // cluster before the stream ends.
  EXPECT_EQ(out.backlog, 0u);
  EXPECT_EQ(out.stats.node_reports + out.stats.link_reports +
                out.stats.probe_results + out.stats.sick_probes +
                out.stats.operator_commands + out.stats.cluster_events,
            out.ingress.processed);
  // Failure reports are never shed or dropped, so none may be lost to a
  // failover either: the dispatch counts equal the stream's population.
  const auto b = fi::breakdown(stream);
  EXPECT_EQ(out.stats.node_reports, b.node_reports);
  EXPECT_EQ(out.stats.link_reports, b.link_reports);
  EXPECT_EQ(out.stats.operator_commands, b.operator_commands);
  EXPECT_EQ(out.stats.cluster_events, b.cluster_events);
  // Bounded headless windows respect the configured election bound.
  EXPECT_LE(out.stats.max_headless_window, out.bound + 1e-12)
      << "headless window exceeded the election bound";
}

TEST(ReplicatedService, PrimaryCrashFailsOverReplaysAndStaysBounded) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream =
      scenario_stream(fabric, fi::ClusterScenario::kPrimaryCrash);
  const ReplicatedPassOutput out = run_replicated_pass(stream, 0);
  expect_failover_invariants(stream, out);
  // One crash per repeat: every repeat fails over and replays what
  // buffered during its headless window.
  EXPECT_GE(out.stats.failovers, 6u);
  EXPECT_GT(out.stats.replayed_reports, 0u);
  EXPECT_GT(out.stats.headless_seconds, 0.0);
  EXPECT_EQ(out.stats.total_death_windows, 0u);
  EXPECT_GE(out.term, 6u);
}

TEST(ReplicatedService, CrashDuringElectionStillSeatsAPrimary) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream =
      scenario_stream(fabric, fi::ClusterScenario::kCrashDuringElection);
  const ReplicatedPassOutput out = run_replicated_pass(stream, 0);
  expect_failover_invariants(stream, out);
  // Two kills per repeat (primary, then the imminent winner): the
  // surviving member is elected anyway and the stream drains.
  EXPECT_GE(out.stats.failovers, 6u);
  EXPECT_GT(out.stats.replayed_reports, 0u);
}

TEST(ReplicatedService, TotalClusterDeathRevivalLosesNothing) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream =
      scenario_stream(fabric, fi::ClusterScenario::kTotalDeath);
  const ReplicatedPassOutput out = run_replicated_pass(stream, 0);
  expect_failover_invariants(stream, out);
  // Every repeat walks the whole cluster into the ground; the windows
  // are excused from the bound but everything buffered replays after
  // the revival.
  EXPECT_GE(out.stats.total_death_windows, 6u);
  EXPECT_GT(out.stats.replayed_reports, 0u);
  EXPECT_GT(out.stats.headless_seconds, 0.0);
}

TEST(ReplicatedService, FingerprintBitIdenticalAcrossThreadCounts) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  for (fi::ClusterScenario scenario :
       {fi::ClusterScenario::kPrimaryCrash,
        fi::ClusterScenario::kCrashDuringElection,
        fi::ClusterScenario::kTotalDeath}) {
    const auto stream = scenario_stream(fabric, scenario);
    const ReplicatedPassOutput inline_pass = run_replicated_pass(stream, 0);
    for (int threads : {1, 4, 8}) {
      const ReplicatedPassOutput threaded =
          run_replicated_pass(stream, threads);
      EXPECT_EQ(threaded.fingerprint, inline_pass.fingerprint)
          << "divergence at " << threads << " producer threads, scenario "
          << static_cast<int>(scenario);
    }
  }
}

TEST(ReplicatedService, MidBatchCrashTermGuardRejectsThenReplays) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const net::NodeId victim_a =
      fabric.node_at({topo::Layer::kEdge, 0, 0});
  const net::NodeId victim_b =
      fabric.node_at({topo::Layer::kEdge, 1, 0});

  // One warmup report at t=0 occupies the server (batch overhead +
  // message cost = 70 us), so the crash and the two reports behind it
  // all land in the *same* second batch — the mid-batch case.
  std::vector<ServiceMessage> stream;
  ServiceMessage warm;
  warm.kind = MessageKind::kNodeFailureReport;
  warm.node = victim_a;
  warm.inject = true;
  warm.at = 0.0;
  stream.push_back(warm);
  ServiceMessage crash;
  crash.kind = MessageKind::kControllerCrash;
  crash.member = kClusterPrimary;
  crash.at = 10e-6;
  stream.push_back(crash);
  ServiceMessage report;
  report.kind = MessageKind::kNodeFailureReport;
  report.node = victim_b;
  report.inject = true;
  report.at = 20e-6;
  stream.push_back(report);
  ServiceMessage resend = report;
  resend.inject = false;
  resend.at = 30e-6;
  stream.push_back(resend);
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i].seq = i;

  sharebackup::Fabric pass_fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  ReplicatedControllerService service(pass_fabric, replicated_config());
  service.run_inline(stream);

  const ServiceStats& stats = service.stats();
  // The lease captured at batch start died mid-batch: both reports
  // behind the crash were refused by the term guard, buffered, and
  // replayed once the election seated member 1.
  EXPECT_EQ(stats.cluster_events, 1u);
  EXPECT_EQ(stats.stale_rejections, 2u);
  EXPECT_EQ(stats.replayed_reports, 2u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.node_reports, 3u);
  EXPECT_EQ(service.acting_member(), 1u);
  EXPECT_EQ(service.cluster().term(), 1u);
  EXPECT_EQ(service.headless_backlog(), 0u);
  // The headless window (crash dispatch -> election) obeys the bound.
  EXPECT_GT(stats.headless_seconds, 0.0);
  EXPECT_LE(stats.max_headless_window, service.election_bound() + 1e-12);
  // Both grounded failures were actually recovered by the cluster.
  EXPECT_FALSE(pass_fabric.network().node_failed(victim_a));
  EXPECT_FALSE(pass_fabric.network().node_failed(victim_b));
}

TEST(ReplicatedService, PrimaryBlipRepairReplaysWithoutFailover) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const net::NodeId victim = fabric.node_at({topo::Layer::kEdge, 2, 1});

  // Crash the primary and repair it within the same batch, with one
  // report in between: the stale primary blips back before any misses
  // accrue, so the buffer replays into the *same* controller and no
  // election happens.
  std::vector<ServiceMessage> stream;
  ServiceMessage warm;
  warm.kind = MessageKind::kProbeResult;
  warm.healthy = true;
  warm.link = net::LinkId{0};
  warm.at = 0.0;
  stream.push_back(warm);
  ServiceMessage crash;
  crash.kind = MessageKind::kControllerCrash;
  crash.member = kClusterPrimary;
  crash.at = 10e-6;
  stream.push_back(crash);
  ServiceMessage report;
  report.kind = MessageKind::kNodeFailureReport;
  report.node = victim;
  report.inject = true;
  report.at = 20e-6;
  stream.push_back(report);
  ServiceMessage repair;
  repair.kind = MessageKind::kControllerRepair;
  repair.member = kClusterPrimary;
  repair.at = 30e-6;
  stream.push_back(repair);
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i].seq = i;

  sharebackup::Fabric pass_fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  ReplicatedControllerService service(pass_fabric, replicated_config());
  service.run_inline(stream);

  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.cluster_events, 2u);
  EXPECT_EQ(stats.stale_rejections, 1u);
  EXPECT_EQ(stats.replayed_reports, 1u);
  EXPECT_EQ(stats.failovers, 0u);  // same member, leadership intact
  EXPECT_EQ(service.cluster().term(), 0u);
  EXPECT_EQ(service.acting_member(), 2u);
  EXPECT_EQ(service.headless_backlog(), 0u);
  // Crash and repair dispatched at the same batch start: the headless
  // window exists (the report in between was buffered) but has zero
  // width in virtual time.
  EXPECT_EQ(stats.headless_seconds, 0.0);
  EXPECT_FALSE(pass_fabric.network().node_failed(victim));
}

}  // namespace
}  // namespace sbk::service
