// Al-Fares Two-Level Routing tables (§4.3 of the paper), modeled at the
// level of logical switch positions and logical ports so that
// ShareBackup's live impersonation can be expressed and verified exactly:
// a backup switch preloaded with the failure group's combined table must
// forward identically to the switch it replaces.
//
// Addressing follows the fat-tree convention: a host address is the
// triple (pod, edge, host) — think 10.pod.edge.host.
//
// Logical port conventions (position-relative, survive device swaps):
//   * edge switch (pod, e):   down port h in [0,k/2) -> host h;
//                             up   port k/2+a        -> agg (pod, a).
//   * agg switch (pod, a):    down port e in [0,k/2) -> edge (pod, e);
//                             up   port k/2+i        -> core a*k/2+i
//                             (plain wiring).
//   * core switch c:          port p in [0,k)        -> its agg in pod p.
//
// VLAN scheme (paper §4.3): every edge switch of a pod has a unique VLAN
// id (its in-pod index). Hosts tag all outgoing packets with their edge
// switch's VLAN. Edge switches consult the VLAN-tagged out-bound entries
// for packets arriving on host-facing ports and the shared untagged
// in-bound entries for packets arriving on aggregation-facing ports —
// which is what makes one combined table correct for every edge position
// in the failure group.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace sbk::routing {

/// A fat-tree host address.
struct HostAddr {
  int pod = 0;
  int edge = 0;
  int host = 0;

  friend constexpr bool operator==(HostAddr, HostAddr) noexcept = default;
};

/// VLAN id carried by packets. kNoVlan marks untagged entries (match any
/// packet) and untagged lookups.
inline constexpr int kNoVlan = -1;

/// Role of a table entry, mirroring the two-level scheme.
enum class EntryKind : std::uint8_t {
  kPrefix,  ///< matches (pod[, edge[, host]]) — downward routing
  kSuffix,  ///< matches host id suffix — upward spreading / local delivery
};

/// One TCAM entry. Prefix entries use pod/edge/host with -1 as wildcard;
/// suffix entries use `suffix`.
struct TableEntry {
  EntryKind kind = EntryKind::kPrefix;
  int vlan = kNoVlan;
  int pod = -1;
  int edge = -1;
  int host = -1;
  int suffix = -1;
  int egress_port = -1;

  /// `require_tag_match`: skip untagged entries (used for lookups on
  /// host-facing ingress, where only the VLAN-selected out-bound set
  /// applies).
  [[nodiscard]] bool matches(HostAddr dst, int packet_vlan,
                             bool require_tag_match) const noexcept;
};

/// A two-level routing table: prefix entries take precedence over suffix
/// entries (the suffix table hangs off the prefix table's fall-through).
class TwoLevelTable {
 public:
  void add_prefix(int vlan, int pod, int edge, int host, int egress_port);
  void add_suffix(int vlan, int suffix, int egress_port);

  /// Longest-match lookup: most specific matching prefix entry first,
  /// then suffix entries in insertion order. Returns the egress port.
  [[nodiscard]] std::optional<int> lookup(
      HostAddr dst, int packet_vlan,
      bool require_tag_match = false) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return prefix_.size() + suffix_.size();
  }
  [[nodiscard]] std::size_t prefix_entries() const noexcept {
    return prefix_.size();
  }
  [[nodiscard]] std::size_t suffix_entries() const noexcept {
    return suffix_.size();
  }
  [[nodiscard]] const std::vector<TableEntry>& prefix() const noexcept {
    return prefix_;
  }
  [[nodiscard]] const std::vector<TableEntry>& suffix() const noexcept {
    return suffix_;
  }

  /// Merges another table's entries, dropping exact duplicates (used to
  /// build combined failure-group tables).
  void merge(const TwoLevelTable& other);

 private:
  std::vector<TableEntry> prefix_;
  std::vector<TableEntry> suffix_;
};

/// Builds the canonical per-position tables for a k-ary fat-tree with
/// plain wiring (ShareBackup's base network).
class TwoLevelTableBuilder {
 public:
  explicit TwoLevelTableBuilder(int k);

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Edge switch (pod, e): k/2 shared untagged in-bound suffix entries
  /// (suffix h -> host port h) plus k/2 out-bound suffix entries tagged
  /// with VLAN e (suffix h -> uplink (h+e) mod k/2).
  [[nodiscard]] TwoLevelTable edge_table(int pod, int e) const;
  /// Aggregation switch in `pod` (identical for every agg of the pod):
  /// k/2 in-pod prefix entries plus k/2 suffix entries to core uplinks.
  [[nodiscard]] TwoLevelTable agg_table(int pod) const;
  /// Core switch (identical for all cores): k pod prefix entries.
  [[nodiscard]] TwoLevelTable core_table() const;

  /// Combined table stored on every member of an edge failure group
  /// (§4.3): k/2 shared in-bound entries + k^2/4 VLAN-tagged out-bound
  /// entries (= 1056 total at k = 64).
  [[nodiscard]] TwoLevelTable combined_edge_table(int pod) const;

 private:
  int k_;
};

/// Upward egress chosen by the canonical tables: edge (pod,e) sends
/// suffix h to agg (h+e) mod k/2; every agg sends suffix h to its h-th
/// core uplink.
[[nodiscard]] int edge_uplink_for(int k, int e, int host_suffix);
[[nodiscard]] int agg_uplink_for(int k, int host_suffix);

}  // namespace sbk::routing
