#include "routing/global_reroute.hpp"

#include <limits>

#include "routing/fat_tree_paths.hpp"
#include "util/assert.hpp"

namespace sbk::routing {

net::Path MinCongestionRouter::route(const net::Network& net, net::NodeId src,
                                     net::NodeId dst, std::uint64_t flow_id,
                                     const LinkLoads* loads) {
  SBK_EXPECTS_MSG(&net == &ft_->network(),
                  "router is bound to a different network instance");
  const EpochPathCache::Ref entry = cache_.lookup(net, src, dst, [&] {
    return candidate_paths(*ft_, src, dst, /*live_only=*/true);
  });
  const std::vector<net::Path>& candidates = *entry;
  if (candidates.empty()) return {};
  if (loads == nullptr) {
    std::uint64_t h = mix64(flow_id ^ mix64(salt_));
    return candidates[h % candidates.size()];
  }

  double best_max = std::numeric_limits<double>::infinity();
  double best_sum = std::numeric_limits<double>::infinity();
  std::uint64_t best_hash = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double max_load = 0.0;
    double sum_load = 0.0;
    for (net::DirectedLink dl : candidates[i].directed_links(net)) {
      // Normalize by capacity so a loaded thin link counts as more
      // congested than an equally loaded fat one.
      double u = loads->get(dl) / net.link(dl.link).capacity;
      max_load = std::max(max_load, u);
      sum_load += u;
    }
    std::uint64_t h = mix64(flow_id ^ mix64(salt_ + i));
    bool better = max_load < best_max ||
                  (max_load == best_max && sum_load < best_sum) ||
                  (max_load == best_max && sum_load == best_sum &&
                   h < best_hash);
    if (i == 0 || better) {
      best_max = max_load;
      best_sum = sum_load;
      best_hash = h;
      best = i;
    }
  }
  return candidates[best];
}

net::Path EcmpWithGlobalRerouteRouter::route(const net::Network& net,
                                             net::NodeId src, net::NodeId dst,
                                             std::uint64_t flow_id,
                                             const LinkLoads* loads) {
  SBK_EXPECTS_MSG(&net == &ft_->network(),
                  "router is bound to a different network instance");
  // Hash over the *structural* candidate set, so the choice of an
  // unaffected flow is identical to what it would be with no failures.
  const EpochPathCache::Ref entry = structural_.lookup(net, src, dst, [&] {
    return candidate_paths(*ft_, src, dst, /*live_only=*/false);
  });
  const std::vector<net::Path>& structural = *entry;
  if (!structural.empty()) {
    std::uint64_t h = mix64(flow_id ^ mix64(salt_));
    const net::Path& chosen = structural[h % structural.size()];
    if (net::is_live_path(net, chosen)) return chosen;
  }
  // The flow is affected: centrally re-place it on the least congested
  // surviving shortest path.
  return optimizer_.route(net, src, dst, flow_id, loads);
}

}  // namespace sbk::routing
