// Router abstraction used by the flow-level simulator. A Router maps a
// flow (src host, dst host, flow id) to a Path under the network's current
// failure state. Different subclasses realize the paper's compared
// policies:
//   * EcmpRouter            — hash-based ECMP over live shortest paths
//                             (fat-tree / F10 in normal operation);
//   * MinCongestionRouter   — the paper's "global optimal rerouting"
//                             baseline for fat-tree under failures;
//   * F10Router             — F10's local rerouting with 3-hop detours;
//   * ShareBackup           — needs no router changes: the fabric swaps
//                             hardware and paths are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/path.hpp"

namespace sbk::routing {

/// Current traffic intensity per directed link, maintained by the
/// simulator: index = link.index()*2 + (forward ? 0 : 1). The unit is
/// "number of flows" — sufficient for congestion-aware path choice.
class LinkLoads {
 public:
  explicit LinkLoads(std::size_t link_count) : load_(link_count * 2, 0.0) {}

  [[nodiscard]] double get(net::DirectedLink dl) const {
    return load_[slot(dl)];
  }
  void add(net::DirectedLink dl, double amount) { load_[slot(dl)] += amount; }
  [[nodiscard]] std::size_t size() const noexcept { return load_.size() / 2; }

 private:
  [[nodiscard]] static std::size_t slot(net::DirectedLink dl) {
    return dl.link.index() * 2 + (dl.forward ? 0 : 1);
  }
  std::vector<double> load_;
};

/// Stateless-per-flow routing policy. Implementations must be
/// deterministic in (network state, flow id) so experiments reproduce.
class Router {
 public:
  virtual ~Router() = default;

  /// Returns a live path from src to dst for the given flow, or an empty
  /// path if the destination is unreachable under this policy. `loads`
  /// may be null; congestion-aware routers fall back to hashing then.
  [[nodiscard]] virtual net::Path route(const net::Network& net,
                                        net::NodeId src, net::NodeId dst,
                                        std::uint64_t flow_id,
                                        const LinkLoads* loads) = 0;

  /// Policy name for reports.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// 64-bit mix used for ECMP-style deterministic hashing (splitmix64
/// finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace sbk::routing
