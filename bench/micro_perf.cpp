// Experiment E10 — google-benchmark micro-benchmarks of the library's
// hot paths: max-min allocation, path enumeration and routing, fabric
// failover, offline diagnosis, table lookups, and whole fluid-sim runs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "control/controller.hpp"
#include "control/diagnosis.hpp"
#include "faultinject/fault_plan.hpp"
#include "faultinject/report_stream.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo/health_snapshot.hpp"
#include "obs/slo/log_histogram.hpp"
#include "obs/timeseries.hpp"
#include "pktsim/packet_sim.hpp"
#include "routing/ecmp.hpp"
#include "routing/global_reroute.hpp"
#include "routing/impersonation.hpp"
#include "service/controller_service.hpp"
#include "sharebackup/fabric.hpp"
#include "sharebackup/leaf_spine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/incremental_max_min.hpp"
#include "sim/max_min.hpp"
#include "topo/fat_tree.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "workload/coflow_gen.hpp"

using namespace sbk;

namespace {

void BM_FatTreeBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::FatTree ft(topo::FatTreeParams{.k = k});
    benchmark::DoNotOptimize(ft.network().link_count());
  }
}
BENCHMARK(BM_FatTreeBuild)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)   // 27,648 hosts — the paper's datacenter scale
    ->Arg(64)   // 65,536 hosts
    ->Unit(benchmark::kMillisecond);

void BM_FabricBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sharebackup::FabricParams p;
    p.fat_tree.k = k;
    p.backups_per_group = 1;
    sharebackup::Fabric fabric(p);
    benchmark::DoNotOptimize(fabric.circuit_switch_count());
  }
}
BENCHMARK(BM_FabricBuild)->Arg(8)->Arg(16);

void BM_EcmpRoute(benchmark::State& state) {
  topo::FatTree ft(topo::FatTreeParams{.k = static_cast<int>(state.range(0))});
  routing::EcmpRouter router(ft);
  std::uint64_t id = 0;
  for (auto _ : state) {
    net::Path p = router.route(ft.network(), ft.host(0),
                               ft.host(ft.host_count() / 2), id++, nullptr);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_EcmpRoute)->Arg(8)->Arg(16)->Arg(32);

void BM_EcmpRouteCached(benchmark::State& state) {
  // Warm-cache routing across a spread of (src, dst) pairs: after the
  // first visit each pair costs a hash probe plus an indexed path copy.
  // Contrast with BM_EcmpRoute, whose first iteration pays enumeration.
  topo::FatTree ft(topo::FatTreeParams{.k = static_cast<int>(state.range(0))});
  routing::EcmpRouter router(ft);
  constexpr std::size_t kPairs = 64;
  const int hosts = ft.host_count();
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  pairs.reserve(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    int a = static_cast<int>((i * 37) % static_cast<std::size_t>(hosts));
    int b = static_cast<int>((i * 61 + hosts / 2) %
                             static_cast<std::size_t>(hosts));
    if (a == b) b = (b + 1) % hosts;
    pairs.emplace_back(ft.host(a), ft.host(b));
    (void)router.route(ft.network(), ft.host(a), ft.host(b), i, nullptr);
  }
  std::uint64_t id = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[id % kPairs];
    net::Path p = router.route(ft.network(), src, dst, id++, nullptr);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_EcmpRouteCached)->Arg(8)->Arg(16)->Arg(32);

void BM_GlobalRerouteAffected(benchmark::State& state) {
  topo::FatTree ft(topo::FatTreeParams{.k = 16});
  routing::EcmpWithGlobalRerouteRouter router(ft);
  routing::LinkLoads loads(ft.network().link_count());
  ft.network().fail_node(ft.core(0));
  std::uint64_t id = 0;
  for (auto _ : state) {
    net::Path p = router.route(ft.network(), ft.host(0),
                               ft.host(ft.host_count() - 1), id++, &loads);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_GlobalRerouteAffected);

void BM_MaxMinAllocation(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  topo::FatTree ft(topo::FatTreeParams{.k = 16});
  routing::EcmpRouter router(ft);
  Rng rng(1);
  std::vector<sim::Demand> demands;
  for (std::size_t f = 0; f < flows; ++f) {
    net::NodeId src = ft.host(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(ft.host_count()))));
    net::NodeId dst = ft.host(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(ft.host_count()))));
    if (src == dst) continue;
    net::Path p = router.route(ft.network(), src, dst, f, nullptr);
    demands.push_back(sim::Demand{p.directed_links(ft.network())});
  }
  // Hot-path idiom: one solver instance, scratch reused across calls —
  // exactly how FluidSimulator drives it.
  sim::MaxMinSolver solver;
  std::vector<double> rates;
  for (auto _ : state) {
    solver.begin(ft.network(), demands.size());
    for (const sim::Demand& d : demands) solver.add_demand(d.links);
    solver.solve_into(rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(demands.size()));
}
BENCHMARK(BM_MaxMinAllocation)->Arg(64)->Arg(256)->Arg(1024);

// Pod-local hotspot population for the incremental-vs-full comparison:
// `per_pod` flows per pod, all sourced from the pod's first host, so
// every pod's flows share that host's directed uplink and each pod is
// exactly one allocation component. (Flows that only share a cable in
// *opposite* directions occupy different directed slots and are not
// coupled — a scattered ring of pairs would decompose into singleton
// components and make the incremental numbers meaninglessly fast.)
std::vector<std::vector<net::DirectedLink>> pod_hotspot_flows(
    topo::FatTree& ft, routing::EcmpRouter& router, int per_pod) {
  std::vector<std::vector<net::DirectedLink>> links;
  links.reserve(static_cast<std::size_t>(ft.pods()) *
                static_cast<std::size_t>(per_pod));
  const int hosts_per_pod = ft.host_count() / ft.pods();
  std::uint64_t id = 0;
  for (int p = 0; p < ft.pods(); ++p) {
    const int base = p * hosts_per_pod;
    for (int f = 0; f < per_pod; ++f) {
      const int dst = base + 1 + f % (hosts_per_pod - 1);
      net::Path path = router.route(ft.network(), ft.host(base),
                                    ft.host(dst), id++, nullptr);
      links.push_back(path.directed_links(ft.network()));
    }
  }
  return links;
}

void BM_MaxMinIncremental(benchmark::State& state) {
  // Single-failure-group churn at k=32: 32 pods x 64 pod-local flows
  // (2048 total). Each iteration removes one flow, re-adds it, and
  // re-solves; only the victim pod's ~64-flow component is recomputed.
  // BM_MaxMinFullResolve drives the identical churn through a monolithic
  // solve of all 2048 flows — the ratio of the two is the incremental
  // speedup for event-local churn.
  topo::FatTree ft(topo::FatTreeParams{.k = 32});
  routing::EcmpRouter router(ft);
  const auto links = pod_hotspot_flows(ft, router, /*per_pod=*/64);
  sim::IncrementalMaxMin inc;
  inc.bind(ft.network());
  std::vector<sim::IncrementalMaxMin::FlowSlot> slots;
  slots.reserve(links.size());
  for (const auto& l : links) slots.push_back(inc.add_flow(l));
  inc.solve();
  const std::size_t resolved_at_start = inc.total_resolved_flows();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t victim = (i * 997) % slots.size();  // rotates pods
    inc.remove_flow(slots[victim]);
    slots[victim] = inc.add_flow(links[victim]);
    inc.solve();
    benchmark::DoNotOptimize(inc.rate(slots[victim]));
    ++i;
  }
  state.counters["flows"] = static_cast<double>(links.size());
  state.counters["resolved_per_event"] =
      i == 0 ? 0.0
             : static_cast<double>(inc.total_resolved_flows() -
                                   resolved_at_start) /
                   static_cast<double>(i);
}
BENCHMARK(BM_MaxMinIncremental);

void BM_MaxMinFullResolve(benchmark::State& state) {
  // Denominator for BM_MaxMinIncremental: the same k=32 pod-local
  // population, every event re-solved from scratch the way the
  // pre-incremental FluidSimulator did.
  topo::FatTree ft(topo::FatTreeParams{.k = 32});
  routing::EcmpRouter router(ft);
  const auto links = pod_hotspot_flows(ft, router, /*per_pod=*/64);
  sim::MaxMinSolver solver;
  std::vector<double> rates;
  for (auto _ : state) {
    solver.begin(ft.network(), links.size());
    for (const auto& l : links) solver.add_demand(l);
    solver.solve_into(rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.counters["flows"] = static_cast<double>(links.size());
}
BENCHMARK(BM_MaxMinFullResolve);

void BM_FabricFailover(benchmark::State& state) {
  sharebackup::FabricParams p;
  p.fat_tree.k = 16;
  p.backups_per_group = 1;
  sharebackup::Fabric fabric(p);
  topo::SwitchPosition pos{topo::Layer::kAgg, 0, 0};
  for (auto _ : state) {
    auto r = fabric.fail_over(pos);
    benchmark::DoNotOptimize(r->circuit_switches_touched);
    // Undo so the pool never exhausts: the replaced device is "repaired".
    fabric.return_to_pool(r->failed_device);
  }
}
BENCHMARK(BM_FabricFailover);

void BM_OfflineDiagnosis(benchmark::State& state) {
  sharebackup::FabricParams p;
  p.fat_tree.k = 8;
  p.backups_per_group = 2;
  sharebackup::Fabric fabric(p);
  control::DiagnosisEngine engine(fabric);
  // Take an edge/agg pair offline once; diagnose repeatedly.
  auto fe = fabric.fail_over({topo::Layer::kEdge, 0, 0});
  auto fa = fabric.fail_over({topo::Layer::kAgg, 0, 0});
  std::size_t cs = fabric.cs_index(2, 0, 0);
  for (auto _ : state) {
    auto r = engine.diagnose_link(fe->failed_device, fa->failed_device, cs);
    benchmark::DoNotOptimize(r.circuit_operations);
  }
}
BENCHMARK(BM_OfflineDiagnosis);

void BM_ServiceIngest(benchmark::State& state) {
  // One full ControllerService lifecycle per iteration: the prebuilt
  // report stream (failures with resends, probes, operator cadences)
  // runs inline through the bounded ingress model, the controller
  // dispatch, and the shutdown settle sweep. Stream construction is
  // hoisted — it is deterministic and identical every iteration.
  Log::set_level(LogLevel::kError);  // watchdog churn is part of the run
  sharebackup::FabricParams p;
  p.fat_tree.k = 6;
  p.backups_per_group = 2;
  sharebackup::Fabric plan_fabric(p);
  faultinject::FaultPlanConfig pcfg;
  pcfg.switch_failures = 6;
  pcfg.link_failures = 9;
  const faultinject::FaultPlan plan =
      faultinject::FaultPlan::generate(plan_fabric, pcfg, /*seed=*/11);
  faultinject::ReportStreamConfig scfg;
  scfg.repeats = 3;
  scfg.time_scale = 0.02;
  const std::vector<service::ServiceMessage> stream =
      faultinject::build_report_stream(plan, scfg);
  for (auto _ : state) {
    sharebackup::Fabric fabric(p);
    control::Controller controller(fabric, control::ControllerConfig{});
    controller.set_audit_limit(1000);
    service::ControllerService svc(fabric, controller);
    svc.run_inline(stream);
    benchmark::DoNotOptimize(svc.stats().submitted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ServiceIngest);

void BM_ServiceIngestSloEnabled(benchmark::State& state) {
  // BM_ServiceIngest with the live SLO engine on: streaming histogram
  // records, burn-rate window advances at batch boundaries, and health
  // snapshots on the virtual-time cadence. bench.sh gates this against
  // BM_ServiceIngest — a disabled engine costs one branch per message,
  // and the enabled engine must stay within the ingest noise floor.
  Log::set_level(LogLevel::kError);
  sharebackup::FabricParams p;
  p.fat_tree.k = 6;
  p.backups_per_group = 2;
  sharebackup::Fabric plan_fabric(p);
  faultinject::FaultPlanConfig pcfg;
  pcfg.switch_failures = 6;
  pcfg.link_failures = 9;
  const faultinject::FaultPlan plan =
      faultinject::FaultPlan::generate(plan_fabric, pcfg, /*seed=*/11);
  faultinject::ReportStreamConfig scfg;
  scfg.repeats = 3;
  scfg.time_scale = 0.02;
  const std::vector<service::ServiceMessage> stream =
      faultinject::build_report_stream(plan, scfg);
  service::ServiceConfig svc_cfg;
  svc_cfg.slo.enabled = true;
  for (auto _ : state) {
    sharebackup::Fabric fabric(p);
    control::Controller controller(fabric, control::ControllerConfig{});
    controller.set_audit_limit(1000);
    service::ControllerService svc(fabric, controller, svc_cfg);
    svc.run_inline(stream);
    benchmark::DoNotOptimize(svc.stats().submitted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ServiceIngestSloEnabled);

void BM_LogHistogramRecord(benchmark::State& state) {
  // The SLO engine's hot-path primitive: O(1) frexp bucketing into a
  // fixed array. Pre-drawn latencies so the rng is out of the loop.
  Rng rng(17);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.lognormal(-6.0, 1.2);
  obs::slo::LogHistogram hist;
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(values[i++ & 4095]);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogHistogramRecord);

void BM_HealthSnapshot(benchmark::State& state) {
  // Cost of cutting one health snapshot from a populated histogram
  // (four quantile queries walk the bucket array) plus its JSON
  // rendering — the per-interval cost of the snapshot timeline.
  Rng rng(23);
  obs::slo::LogHistogram hist;
  for (int i = 0; i < 100000; ++i) hist.record(rng.lognormal(-6.0, 1.2));
  for (auto _ : state) {
    obs::slo::HealthSnapshot snap;
    snap.at = 1.0;
    snap.processed = hist.count();
    obs::slo::HealthHistogramStat hs;
    hs.name = "decision_latency";
    hs.count = hist.count();
    hs.p50 = hist.quantile(0.5);
    hs.p99 = hist.quantile(0.99);
    hs.p999 = hist.quantile(0.999);
    hs.max = hist.max();
    snap.histograms.push_back(hs);
    std::ostringstream os;
    obs::slo::write_health_json(os, snap);
    benchmark::DoNotOptimize(os);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HealthSnapshot);

void BM_CombinedTableLookup(benchmark::State& state) {
  routing::TwoLevelTableBuilder builder(64);
  routing::TwoLevelTable table = builder.combined_edge_table(0);
  int h = 0;
  for (auto _ : state) {
    auto port = table.lookup(routing::HostAddr{5, 3, h++ % 32}, h % 32,
                             /*require_tag_match=*/true);
    benchmark::DoNotOptimize(port);
  }
}
BENCHMARK(BM_CombinedTableLookup);

void BM_ForwardingWalk(benchmark::State& state) {
  routing::ImpersonationStore store(16, 1);
  routing::ForwardingSim sim(store);
  int i = 0;
  for (auto _ : state) {
    auto t = sim.walk(routing::HostAddr{0, 0, i % 8},
                      routing::HostAddr{15, 7, (i + 3) % 8});
    benchmark::DoNotOptimize(t.delivered);
    ++i;
  }
}
BENCHMARK(BM_ForwardingWalk);

void BM_EventQueueDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    Rng rng(7);
    auto& eng = rng.engine();
    std::uint64_t sink = 0;
    // The payload pushes the callback past the small-buffer size of
    // std::function, so each heap sift moves (or, before the fix,
    // copied) a heap allocation.
    struct Payload {
      std::uint64_t a, b, c, d, e, f;
    };
    for (std::size_t i = 0; i < n; ++i) {
      Payload p{eng(), eng(), eng(), eng(), eng(), eng()};
      Seconds at = static_cast<double>(eng() % 1000000) * 1e-6;
      q.schedule_at(at, [&sink, p] { sink += p.a ^ p.f; });
    }
    state.ResumeTiming();
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueDrain)->Arg(1024)->Arg(16384);

void BM_FluidSimCoflowTrace(benchmark::State& state) {
  // Setup (topology, router, trace expansion) is hoisted out of the loop:
  // the old per-iteration PauseTiming()/ResumeTiming() pair costs ~100ns
  // of timer overhead per iteration and distorts sub-millisecond numbers.
  // The trace is deterministic (fixed seed), so one pre-built trace is
  // what every iteration would have rebuilt anyway. Simulator
  // construction stays inside the timed region — it is part of the cost
  // of running a scenario, and simulators are single-shot.
  const auto coflows = static_cast<std::size_t>(state.range(0));
  topo::FatTreeParams ftp{.k = 8};
  ftp.hosts_per_edge = 1;
  ftp.host_link_capacity = 40.0;
  topo::FatTree ft(ftp);
  routing::EcmpRouter router(ft);
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 60.0;
  Rng rng(5);
  const auto flows =
      workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
  for (auto _ : state) {
    sim::FluidSimulator simulator(ft.network(), router, sim::SimConfig{});
    simulator.add_flows(flows);
    auto results = simulator.run();
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_FluidSimCoflowTrace)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FlightRecorderDisabled(benchmark::State& state) {
  // The flight recorder's disabled-mode contract: a simulation with a
  // disabled recorder and sampler ATTACHED must run at the speed of one
  // that never heard of them (every hook is a single branch). This is
  // the same workload as BM_FluidSimCoflowTrace(60); bench.sh asserts
  // the two stay within the regression tolerance of each other.
  const auto coflows = static_cast<std::size_t>(state.range(0));
  topo::FatTreeParams ftp{.k = 8};
  ftp.hosts_per_edge = 1;
  ftp.host_link_capacity = 40.0;
  topo::FatTree ft(ftp);
  routing::EcmpRouter router(ft);
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 60.0;
  Rng rng(5);
  const auto flows =
      workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
  obs::FlightRecorder recorder(/*enabled=*/false);
  obs::TelemetrySampler sampler(0.01, /*enabled=*/false);
  for (auto _ : state) {
    sim::FluidSimulator simulator(ft.network(), router, sim::SimConfig{});
    simulator.attach_recorder(&recorder);
    simulator.attach_telemetry(&sampler);
    simulator.add_flows(flows);
    auto results = simulator.run();
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_FlightRecorderDisabled)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FluidSimFailureStorm(benchmark::State& state) {
  // Datacenter-scale end-to-end: a k=48 fat-tree (27,648 hosts; hoisted
  // — building it is BM_FatTreeBuild/48's job) carrying pod-local
  // hotspot traffic through a storm of capacity drain/restore pairs.
  // Every storm event dirties exactly one pod's component, so the
  // default incremental allocator re-solves a few dozen flows per event
  // where a full resolve would redo the whole population. Each drain is
  // paired with a restore to the original capacity, leaving the hoisted
  // network pristine between iterations.
  topo::FatTree ft(topo::FatTreeParams{.k = 48});
  routing::EcmpRouter router(ft);
  constexpr int kStormPods = 12;
  constexpr int kPerPod = 32;
  const int hosts_per_pod = ft.host_count() / ft.pods();
  std::vector<sim::FlowSpec> flows;
  std::vector<net::LinkId> uplinks;  // each storm pod's hotspot uplink
  std::uint64_t id = 0;
  for (int p = 0; p < kStormPods; ++p) {
    const net::NodeId src = ft.host(p * hosts_per_pod);
    uplinks.push_back(*ft.network().find_link(src, ft.edge_of_host(src)));
    for (int f = 0; f < kPerPod; ++f) {
      sim::FlowSpec fs;
      fs.id = id++;
      fs.src = src;
      fs.dst = ft.host(p * hosts_per_pod + 1 + f);
      fs.bytes = 1.0;
      fs.start = 0.0;
      flows.push_back(fs);
    }
  }
  for (auto _ : state) {
    sim::FluidSimulator simulator(ft.network(), router, sim::SimConfig{});
    simulator.add_flows(flows);
    for (int p = 0; p < kStormPods; ++p) {
      const net::LinkId l = uplinks[static_cast<std::size_t>(p)];
      const double cap = ft.network().link(l).capacity;
      simulator.at(1.0 + p, [l](net::Network& n) {
        n.set_link_capacity(l, 0.25);
      });
      simulator.at(1.5 + p, [l, cap](net::Network& n) {
        n.set_link_capacity(l, cap);
      });
    }
    auto results = simulator.run();
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows.size()));
}
BENCHMARK(BM_FluidSimFailureStorm)->Unit(benchmark::kMillisecond);

void BM_PacketSimThroughput(benchmark::State& state) {
  // Packets simulated per second of wall time for one bulk transfer.
  // Router and config are hoisted; the simulator itself is single-shot
  // and constructed inside the timed region (no Pause/Resume overhead).
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  pktsim::PktSimConfig cfg;
  cfg.unit_bytes_per_second = 1.25e8;
  cfg.min_rto = milliseconds(10);
  std::int64_t packets = 0;
  for (auto _ : state) {
    pktsim::PacketSimulator sim(ft.network(), router, cfg);
    sim.add_flow(sim::FlowSpec{1, ft.host(0), ft.host(8), 4e6, 0.0});
    auto results = sim.run();
    benchmark::DoNotOptimize(results.size());
    packets += static_cast<std::int64_t>(sim.stats().data_packets_sent +
                                         sim.stats().acks_sent);
  }
  state.SetItemsProcessed(packets);  // simulated packets per wall second
}
BENCHMARK(BM_PacketSimThroughput)->Unit(benchmark::kMillisecond);

void BM_LeafSpineFailover(benchmark::State& state) {
  sharebackup::LeafSpineParams p;
  p.leaves = 16;
  p.spines = 8;
  p.hosts_per_leaf = 8;
  p.group_size = 8;
  p.backups_per_group = 1;
  sharebackup::LeafSpineFabric fabric(p);
  sharebackup::LsPosition pos{sharebackup::LsTier::kLeaf, 3};
  for (auto _ : state) {
    auto r = fabric.fail_over(pos);
    benchmark::DoNotOptimize(r->circuit_switches_touched);
    fabric.return_to_pool(r->failed_device);
  }
}
BENCHMARK(BM_LeafSpineFailover);

}  // namespace

BENCHMARK_MAIN();
