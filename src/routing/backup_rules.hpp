// Precomputed per-destination backup rules (van Adrichem et al., see
// PAPERS.md): every switch holds, next to its primary next-hop for each
// destination, a backup next-hop that is activated locally the moment
// the primary fails — no controller round-trip on the fast path. Only
// when primary AND backup are both dead does the scheme fall back to
// reactive global rerouting (a full controller cycle, modeled by
// MinCongestionRouter and charged global-reroute latency).
//
// Modeled here at path granularity: the primary is the hash-selected
// structural shortest path (identical selection to the ECMP front-end,
// so unaffected flows are bit-identical to the reactive baseline); the
// backup at the detecting switch is the first alternative structural
// candidate that shares the already-traversed prefix and whose suffix
// is alive — exactly what a precomputed per-destination backup next-hop
// reaches. Exhaustion (no prefix-compatible live alternative, e.g. a
// dead host link or a severed downstream edge switch) triggers the
// global fallback; if even that fails, the flow is lost.
//
// The structural candidate sets live in a structure-epoch
// EpochPathCache and survive failure churn untouched.
#pragma once

#include <cstdint>

#include "routing/global_reroute.hpp"
#include "routing/path_cache.hpp"
#include "routing/router.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

class BackupRulesRouter final : public Router {
 public:
  explicit BackupRulesRouter(const topo::FatTree& ft, std::uint64_t salt = 0)
      : ft_(&ft),
        salt_(salt),
        optimizer_(ft, salt),
        structural_(EpochSource::kStructure) {}

  [[nodiscard]] net::Path route(const net::Network& net, net::NodeId src,
                                net::NodeId dst, std::uint64_t flow_id,
                                const LinkLoads* loads) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "backup-rules";
  }

  /// Flows rescued by a pre-installed backup next-hop (fast path).
  [[nodiscard]] std::size_t backup_hits() const noexcept {
    return backup_hits_;
  }
  /// Flows whose primary and backup were both dead — sent through the
  /// reactive global-reroute fallback (slow path).
  [[nodiscard]] std::size_t global_fallbacks() const noexcept {
    return global_fallbacks_;
  }

 private:
  const topo::FatTree* ft_;
  std::uint64_t salt_;
  MinCongestionRouter optimizer_;
  EpochPathCache structural_;
  std::size_t backup_hits_ = 0;
  std::size_t global_fallbacks_ = 0;
};

}  // namespace sbk::routing
