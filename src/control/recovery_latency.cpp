#include "control/recovery_latency.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::control {

namespace {
Seconds detection_time(const LatencyModelParams& p) {
  return static_cast<double>(p.miss_threshold) * p.probe_interval;
}
}  // namespace

LatencyBreakdown sharebackup_latency(const LatencyModelParams& p,
                                     sharebackup::CircuitTechnology tech) {
  LatencyBreakdown b;
  b.scheme = tech == sharebackup::CircuitTechnology::kElectricalCrosspoint
                 ? "sharebackup-crosspoint"
                 : "sharebackup-mems";
  b.detection = detection_time(p);
  // Report to the controller, then command to the circuit switches.
  b.notification = 2.0 * p.control_channel_one_way;
  b.decision = p.controller_processing;
  b.reconfiguration = sharebackup::reconfiguration_latency(tech);
  return b;
}

LatencyBreakdown local_reroute_latency(const LatencyModelParams& p,
                                       const std::string& scheme) {
  LatencyBreakdown b;
  b.scheme = scheme;
  b.detection = detection_time(p);
  b.notification = 0.0;  // the adjacent switch acts on its own
  b.decision = p.local_decision;
  b.reconfiguration = p.sdn_rule_update;  // >= 1 rule change
  return b;
}

LatencyBreakdown global_reroute_latency(const LatencyModelParams& p,
                                        int rule_updates) {
  SBK_EXPECTS_MSG(rule_updates >= 0,
                  "negative rule-update counts are meaningless");
  // Recovering by rerouting always rewrites at least one forwarding rule;
  // a 0 request would otherwise credit the scheme with a reconfiguration
  // *cheaper* than a single SDN update (negative per-extra-switch term).
  rule_updates = std::max(rule_updates, 1);
  LatencyBreakdown b;
  b.scheme = "fat-tree-global";
  b.detection = detection_time(p);
  b.notification = 2.0 * p.control_channel_one_way;
  b.decision = p.controller_processing;
  // Upstream repair: rules must change at several switches; installs
  // proceed in parallel across switches but the controller issues them
  // sequentially per switch — we charge one SDN update end-to-end plus a
  // per-extra-switch issuing overhead.
  b.reconfiguration = p.sdn_rule_update +
                      static_cast<double>(rule_updates - 1) *
                          (p.sdn_rule_update * 0.1);
  return b;
}

LatencyBreakdown spider_protect_latency(const LatencyModelParams& p) {
  LatencyBreakdown b;
  b.scheme = "spider-protect";
  b.detection = detection_time(p);
  b.notification = 0.0;       // stateful failover at the detecting switch
  b.decision = p.local_decision;
  b.reconfiguration = 0.0;    // detour rules pre-installed: 0 rule updates
  return b;
}

LatencyBreakdown backup_rules_latency(const LatencyModelParams& p,
                                      double fallback_fraction,
                                      int fallback_rule_updates) {
  SBK_EXPECTS_MSG(fallback_fraction >= 0.0 && fallback_fraction <= 1.0,
                  "fallback_fraction is a probability");
  LatencyBreakdown fast;
  fast.scheme = "backup-rules";
  fast.detection = detection_time(p);
  fast.notification = 0.0;    // backup next-hop already in the table
  fast.decision = p.local_decision;
  fast.reconfiguration = 0.0;
  if (fallback_fraction == 0.0) return fast;
  const LatencyBreakdown slow =
      global_reroute_latency(p, fallback_rule_updates);
  const double keep = 1.0 - fallback_fraction;
  LatencyBreakdown b;
  b.scheme = "backup-rules";
  b.detection = fast.detection;  // both paths pay the same detection
  b.notification = fallback_fraction * slow.notification;
  b.decision = keep * fast.decision + fallback_fraction * slow.decision;
  b.reconfiguration = fallback_fraction * slow.reconfiguration;
  return b;
}

std::vector<LatencyBreakdown> latency_comparison(
    const LatencyModelParams& p) {
  return {
      sharebackup_latency(p,
                          sharebackup::CircuitTechnology::kElectricalCrosspoint),
      sharebackup_latency(p, sharebackup::CircuitTechnology::kOpticalMems2D),
      local_reroute_latency(p, "f10-local"),
      local_reroute_latency(p, "aspen-local"),
      global_reroute_latency(p, /*rule_updates=*/4),
      spider_protect_latency(p),
      backup_rules_latency(p),
  };
}

}  // namespace sbk::control
