// Paths through a Network as alternating node/link sequences, plus
// validation helpers used as invariants by routing tests.
#pragma once

#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"

namespace sbk::net {

/// A simple path: nodes.size() == links.size() + 1, links[i] joins
/// nodes[i] and nodes[i+1]. An empty path (no nodes) is the "no route"
/// sentinel.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  /// Number of links (hops). 0 for empty or single-node paths.
  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
  [[nodiscard]] NodeId src() const;
  [[nodiscard]] NodeId dst() const;

  /// Directed traversal of each hop, in order.
  [[nodiscard]] std::vector<DirectedLink> directed_links(
      const Network& net) const;

  friend bool operator==(const Path&, const Path&) = default;
};

/// True iff the path is structurally consistent with `net`: sizes match,
/// each link joins its adjacent nodes, and no node repeats.
[[nodiscard]] bool is_valid_path(const Network& net, const Path& path);

/// Like is_valid_path but permits node revisits — a *walk*. Table-driven
/// forwarding legitimately produces one such case: intra-edge traffic
/// bounces host -> edge -> agg -> edge -> host under the §4.3 combined
/// tables, revisiting the edge switch.
[[nodiscard]] bool is_valid_walk(const Network& net, const Path& path);

/// True iff every node and link on the path is currently up.
[[nodiscard]] bool is_live_path(const Network& net, const Path& path);

/// True iff the path traverses the given node / link.
[[nodiscard]] bool path_uses_node(const Path& path, NodeId node);
[[nodiscard]] bool path_uses_link(const Path& path, LinkId link);

/// Human-readable rendering, e.g. "H0 -> E[0,0] -> A[0,1] -> ...".
[[nodiscard]] std::string to_string(const Network& net, const Path& path);

}  // namespace sbk::net
