// Tests for the flow-level simulator stack: event queue, max-min fair
// allocation (with its optimality properties), the fluid simulator on
// analytically solvable scenarios, and the static failure-impact
// analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "net/algo.hpp"
#include "routing/ecmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/failure_analysis.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/max_min.hpp"
#include "topo/fat_tree.hpp"
#include "util/assert.hpp"

namespace sbk::sim {
namespace {

using net::DirectedLink;
using net::Network;
using net::NodeId;
using net::NodeKind;

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(2.0, [&] { fired.push_back(2); });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(1.0, [&] { fired.push_back(11); });  // same time, later insert
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(5.0, [&] { ++count; });
  q.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_THROW(q.schedule_at(1.5, [] {}), ContractViolation);
}

TEST(EventQueue, ManyEqualTimestampsFireInInsertionOrder) {
  // The heap breaks time ties on the insertion sequence number; a large
  // batch at one timestamp must drain strictly FIFO (a plain binary
  // heap without the tie-break would interleave them arbitrarily).
  EventQueue q;
  std::vector<int> fired;
  constexpr int kBatch = 500;
  for (int i = 0; i < kBatch; ++i) {
    q.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
    q.schedule_at(2.0, [&fired, i] { fired.push_back(kBatch + i); });
  }
  q.run();
  ASSERT_EQ(fired.size(), 2u * kBatch);
  for (int i = 0; i < 2 * kBatch; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, HandlerSchedulingAtCurrentTimestampRunsAfterPeers) {
  // A handler may push work at the *current* timestamp (e.g. a retried
  // recovery re-queueing diagnosis the instant it succeeds). The new
  // event must run in this same pass — after every event already queued
  // at that time (FIFO seq tie-break), but before anything later.
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(1.0, [&] {
    fired.push_back(0);
    q.schedule_at(q.now(), [&] { fired.push_back(3); });
    q.schedule_at(2.0, [&] { fired.push_back(4); });
  });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(1.0, [&] { fired.push_back(2); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, ZeroDelayChainsTerminateWithTimeUnchanged) {
  // schedule_in(0) from inside a handler keeps the clock still while the
  // chain drains — time never moves backward or forward spuriously.
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
    if (++depth < 50) q.schedule_in(0.0, chain);
  };
  q.schedule_at(5.0, chain);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

// --- max-min ----------------------------------------------------------------

Network two_link_line(double c1, double c2) {
  Network net;
  NodeId a = net.add_node(NodeKind::kEdgeSwitch, "a");
  NodeId b = net.add_node(NodeKind::kEdgeSwitch, "b");
  NodeId c = net.add_node(NodeKind::kEdgeSwitch, "c");
  net.add_link(a, b, c1);
  net.add_link(b, c, c2);
  return net;
}

TEST(MaxMin, SingleBottleneckSharedEqually) {
  Network net = two_link_line(9.0, 100.0);
  DirectedLink l0{net::LinkId(0), true};
  std::vector<Demand> demands(3, Demand{{l0}});
  auto rates = max_min_rates(net, demands);
  for (double r : rates) EXPECT_NEAR(r, 3.0, 1e-9);
}

TEST(MaxMin, ClassicTwoBottleneckExample) {
  // Flows: A on link0 only, B on link1 only, C on both.
  // link0 cap 1, link1 cap 2 => C = 0.5 (link0), A = 0.5, B = 1.5.
  Network net = two_link_line(1.0, 2.0);
  DirectedLink l0{net::LinkId(0), true};
  DirectedLink l1{net::LinkId(1), true};
  std::vector<Demand> demands{{{l0}}, {{l1}}, {{l0, l1}}};
  auto rates = max_min_rates(net, demands);
  EXPECT_NEAR(rates[0], 0.5, 1e-9);
  EXPECT_NEAR(rates[1], 1.5, 1e-9);
  EXPECT_NEAR(rates[2], 0.5, 1e-9);
}

TEST(MaxMin, ZeroCapacityLinkFreezesItsFlowsAtZero) {
  // Regression: a demand crossing a failed/drained (capacity-0) link
  // used to trip SBK_EXPECTS(residual > 0) and abort the allocation.
  // It must be frozen at rate 0 while other flows share normally — and
  // reclaim the bandwidth the dead flow cannot use.
  Network net = two_link_line(1.0, 2.0);
  net.set_link_capacity(net::LinkId(0), 0.0);  // drain the first hop
  DirectedLink dead{net::LinkId(0), true};
  DirectedLink live{net::LinkId(1), true};
  std::vector<Demand> demands{{{dead, live}}, {{live}}};
  auto rates = max_min_rates(net, demands);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], 2.0, 1e-9);
}

TEST(MaxMin, OppositeDirectionsDoNotContend) {
  Network net = two_link_line(1.0, 1.0);
  DirectedLink fwd{net::LinkId(0), true};
  DirectedLink rev{net::LinkId(0), false};
  std::vector<Demand> demands{{{fwd}}, {{rev}}};
  auto rates = max_min_rates(net, demands);
  EXPECT_NEAR(rates[0], 1.0, 1e-9);
  EXPECT_NEAR(rates[1], 1.0, 1e-9);
}

TEST(MaxMin, PropertyNoOversubscriptionAndBottleneckJustification) {
  // Random demands over a k=4 fat-tree; verify the two defining max-min
  // properties.
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  Network& net = ft.network();

  std::vector<Demand> demands;
  std::vector<std::vector<DirectedLink>> paths;
  for (std::uint64_t f = 0; f < 60; ++f) {
    NodeId src = ft.host(static_cast<int>(f * 7 % ft.host_count()));
    NodeId dst = ft.host(static_cast<int>((f * 13 + 5) % ft.host_count()));
    if (src == dst) continue;
    net::Path p = router.route(net, src, dst, f, nullptr);
    ASSERT_FALSE(p.empty());
    demands.push_back(Demand{p.directed_links(net)});
  }
  auto rates = max_min_rates(net, demands);

  // Property 1: no directed link above capacity.
  std::map<std::pair<std::uint32_t, bool>, double> usage;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (DirectedLink dl : demands[i].links) {
      usage[{dl.link.value(), dl.forward}] += rates[i];
    }
  }
  for (const auto& [key, total] : usage) {
    EXPECT_LE(total, net.link(net::LinkId(key.first)).capacity + 1e-6);
  }

  // Property 2 (max-min): every flow has a bottleneck link that is
  // saturated and on which it has a maximal rate.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    bool justified = false;
    for (DirectedLink dl : demands[i].links) {
      double cap = net.link(dl.link).capacity;
      double total = usage[{dl.link.value(), dl.forward}];
      if (total < cap - 1e-6) continue;  // not saturated
      bool maximal = true;
      for (std::size_t j = 0; j < demands.size(); ++j) {
        if (j == i) continue;
        bool shares = false;
        for (DirectedLink o : demands[j].links) {
          if (o == dl) shares = true;
        }
        if (shares && rates[j] > rates[i] + 1e-6) maximal = false;
      }
      if (maximal) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "flow " << i << " has no bottleneck";
  }
}

// --- fluid simulator ---------------------------------------------------------

struct FixedRouter final : routing::Router {
  net::Path route(const Network& net, NodeId src, NodeId dst,
                  std::uint64_t, const routing::LinkLoads*) override {
    return net::shortest_path(net, src, dst);
  }
  const char* name() const noexcept override { return "fixed"; }
};

TEST(FluidSim, SingleFlowFinishesAtSizeOverRate) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1e6;  // 1 unit = 1 MB/s
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(8), 5e6, 0.0, 0});
  auto results = sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(results[0].finish, 5.0, 1e-6);  // 5 MB at 1 MB/s
}

TEST(FluidSim, TwoFlowsShareThenSpeedUp) {
  // Two equal flows share a host NIC (capacity 1 unit): the first half
  // runs at 0.5 each; when one finishes the other speeds to 1.0.
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;  // sizes are in unit-seconds
  FluidSimulator sim(ft.network(), router, cfg);
  // Same src host => both flows traverse the single host-edge link.
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(8), 10.0, 0.0});
  sim.add_flow(FlowSpec{2, ft.host(0), ft.host(12), 5.0, 0.0});
  auto results = sim.run();
  // Flow 2: shares at 0.5 until t=10 (transfers 5) -> done at exactly 10.
  // Flow 1: 5 transferred by t=10, then full rate -> done at 15.
  EXPECT_NEAR(results[1].finish, 10.0, 1e-6);
  EXPECT_NEAR(results[0].finish, 15.0, 1e-6);
}

TEST(FluidSim, LateArrivalPreemptsBandwidthFairly) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(8), 10.0, 0.0});
  sim.add_flow(FlowSpec{2, ft.host(0), ft.host(12), 4.0, 2.0});
  auto results = sim.run();
  // Flow 1 alone until t=2 (8 left), shares 0.5 until flow 2 done at
  // t = 2 + 4/0.5 = 10 (flow 1 has 4 left), finishes at 14.
  EXPECT_NEAR(results[1].finish, 10.0, 1e-6);
  EXPECT_NEAR(results[0].finish, 14.0, 1e-6);
}

TEST(FluidSim, ZeroByteAndLocalFlowsCompleteInstantly) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  FluidSimulator sim(ft.network(), router, SimConfig{});
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(0), 100.0, 3.0});  // local
  sim.add_flow(FlowSpec{2, ft.host(0), ft.host(1), 0.0, 4.0});    // empty
  auto results = sim.run();
  EXPECT_EQ(results[0].outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(results[0].finish, 3.0, 1e-9);
  EXPECT_EQ(results[1].outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(results[1].finish, 4.0, 1e-9);
}

TEST(FluidSim, FailureMidFlowTriggersReroute) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{7, ft.host(0, 0, 0), ft.host(1, 0, 0), 10.0, 0.0});

  // Find which core flow 7 uses, then kill it mid-transfer.
  net::Path p = routing::EcmpRouter(ft).route(ft.network(), ft.host(0, 0, 0),
                                              ft.host(1, 0, 0), 7, nullptr);
  NodeId core = p.nodes[3];
  sim.at(4.0, [core](Network& net) { net.fail_node(core); });

  auto results = sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, FlowOutcome::kCompleted);
  EXPECT_EQ(results[0].reroutes, 1u);
  // Bandwidth unchanged after reroute (other cores idle): finish ~ 10.
  EXPECT_NEAR(results[0].finish, 10.0, 1e-6);
}

TEST(FluidSim, NoRerouteMeansStallUntilRepair) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  cfg.reroute_on_path_failure = false;
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{1, ft.host(0, 0, 0), ft.host(0, 0, 1), 10.0, 0.0});
  net::NodeId edge = ft.edge(0, 0);
  sim.at(2.0, [edge](Network& net) { net.fail_node(edge); });
  sim.at(6.0, [edge](Network& net) { net.restore_node(edge); });
  auto results = sim.run();
  // 2s of transfer, 4s stalled, 8 more seconds: finish at 10+4 = 14.
  // (Host-edge-host path: bottleneck is the edge links at capacity 1.)
  EXPECT_EQ(results[0].outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(results[0].finish, 14.0, 1e-6);
}

TEST(FluidSim, PermanentlyUnreachableFlowsReportStalled) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  FluidSimulator sim(ft.network(), router, cfg);
  ft.network().fail_node(ft.edge(0, 0));
  sim.add_flow(FlowSpec{1, ft.host(0, 0, 0), ft.host(1, 0, 0), 10.0, 0.0});
  auto results = sim.run();
  EXPECT_EQ(results[0].outcome, FlowOutcome::kStalledForever);
  EXPECT_GT(results[0].bytes_remaining, 0.0);
}

TEST(FluidSim, HorizonCutsOffUnfinishedFlows) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  cfg.horizon = 3.0;
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(8), 10.0, 0.0});
  auto results = sim.run();
  EXPECT_EQ(results[0].outcome, FlowOutcome::kUnfinished);
  EXPECT_NEAR(results[0].bytes_remaining, 7.0, 1e-6);
}

TEST(FluidSim, CompletionExactlyAtHorizonReportsCompleted) {
  // Regression: a flow whose remaining volume drains at precisely the
  // horizon used to be cut off as kUnfinished because the horizon break
  // ran before the completion pass.
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  FixedRouter router;
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  cfg.horizon = 10.0;  // flow of 10 units at rate 1 drains at t = 10
  FluidSimulator sim(ft.network(), router, cfg);
  sim.add_flow(FlowSpec{1, ft.host(0), ft.host(8), 10.0, 0.0});
  auto results = sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(results[0].finish, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(results[0].bytes_remaining, 0.0);
}

TEST(FluidSim, ZeroCapacityLinkDoesNotAbortMaxMinRun) {
  // Regression: routing a flow across a zero-capacity (failed/drained)
  // link used to hard-assert inside max_min_rates and kill the whole
  // simulation; the flow must instead sit frozen at rate 0.
  Network net;
  NodeId a = net.add_node(NodeKind::kEdgeSwitch, "a");
  NodeId b = net.add_node(NodeKind::kEdgeSwitch, "b");
  net::LinkId l = net.add_link(a, b, 1.0);
  net.set_link_capacity(l, 0.0);  // drained link
  FixedRouter router;
  SimConfig cfg;
  cfg.allocation = AllocationModel::kMaxMinFair;
  cfg.unit_bytes_per_second = 1.0;
  cfg.horizon = 5.0;
  FluidSimulator sim(net, router, cfg);
  sim.add_flow(FlowSpec{1, a, b, 4.0, 0.0});
  auto results = sim.run();  // must not throw
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, FlowOutcome::kUnfinished);
  EXPECT_DOUBLE_EQ(results[0].bytes_remaining, 4.0);
}

TEST(Coflow, AggregationComputesCct) {
  std::vector<FlowResult> flows(3);
  flows[0].spec = FlowSpec{1, NodeId(0), NodeId(1), 1, 0.0, 42};
  flows[0].outcome = FlowOutcome::kCompleted;
  flows[0].finish = 5.0;
  flows[1].spec = FlowSpec{2, NodeId(0), NodeId(1), 1, 1.0, 42};
  flows[1].outcome = FlowOutcome::kCompleted;
  flows[1].finish = 9.0;
  flows[2].spec = FlowSpec{3, NodeId(0), NodeId(1), 1, 0.0, kNoCoflow};
  flows[2].outcome = FlowOutcome::kCompleted;
  flows[2].finish = 1.0;

  auto coflows = aggregate_coflows(flows);
  ASSERT_EQ(coflows.size(), 1u);
  EXPECT_EQ(coflows[0].id, 42u);
  EXPECT_EQ(coflows[0].flow_count, 2u);
  EXPECT_TRUE(coflows[0].all_completed);
  EXPECT_DOUBLE_EQ(coflows[0].cct(), 9.0);
}

TEST(Coflow, IncompleteCoflowFlagged) {
  std::vector<FlowResult> flows(2);
  flows[0].spec = FlowSpec{1, NodeId(0), NodeId(1), 1, 0.0, 7};
  flows[0].outcome = FlowOutcome::kCompleted;
  flows[0].finish = 2.0;
  flows[1].spec = FlowSpec{2, NodeId(0), NodeId(1), 1, 0.0, 7};
  flows[1].outcome = FlowOutcome::kStalledForever;
  auto coflows = aggregate_coflows(flows);
  ASSERT_EQ(coflows.size(), 1u);
  EXPECT_FALSE(coflows[0].all_completed);
}

TEST(FluidSim, PerLinkEqualShareDoesNotReclaimResidual) {
  // Flow A crosses links L0 (with B) and L1 (alone); B is bottlenecked at
  // a slow host link. Under max-min, A reclaims B's unused share of L0;
  // under per-link equal share it does not.
  net::Network net;
  auto s0 = net.add_node(net::NodeKind::kEdgeSwitch, "s0");
  auto s1 = net.add_node(net::NodeKind::kEdgeSwitch, "s1");
  auto s2 = net.add_node(net::NodeKind::kEdgeSwitch, "s2");
  auto ha = net.add_node(net::NodeKind::kHost, "ha");
  auto hb = net.add_node(net::NodeKind::kHost, "hb");
  auto hx = net.add_node(net::NodeKind::kHost, "hx");  // A's source
  auto hy = net.add_node(net::NodeKind::kHost, "hy");  // B's source
  net.add_link(hx, s0, 10.0);
  net.add_link(hy, s0, 0.1);  // B's slow source NIC
  net.add_link(s0, s1, 1.0);  // L0: shared
  net.add_link(s1, s2, 1.0);  // L1
  net.add_link(ha, s2, 10.0);
  net.add_link(hb, s1, 10.0);

  struct FixedRouter2 final : routing::Router {
    net::Path route(const net::Network& n, net::NodeId s, net::NodeId d,
                    std::uint64_t, const routing::LinkLoads*) override {
      return net::shortest_path(n, s, d);
    }
    const char* name() const noexcept override { return "fixed"; }
  };

  auto run = [&](AllocationModel model) {
    FixedRouter2 router;
    SimConfig cfg;
    cfg.unit_bytes_per_second = 1.0;
    cfg.completion_epsilon_bytes = 1e-6;
    cfg.allocation = model;
    FluidSimulator sim(net, router, cfg);
    sim.add_flow(FlowSpec{1, hx, ha, 9.0, 0.0});  // A
    sim.add_flow(FlowSpec{2, hy, hb, 1.0, 0.0});  // B (rate-capped at 0.1)
    return sim.run();
  };

  auto maxmin = run(AllocationModel::kMaxMinFair);
  // Max-min: B is capped at 0.1 by its NIC, A reclaims 0.9 of L0 and
  // finishes its 9 bytes at t = 10 (as does B).
  EXPECT_NEAR(maxmin[0].finish, 10.0, 1e-6);
  EXPECT_NEAR(maxmin[1].finish, 10.0, 1e-6);

  auto equal = run(AllocationModel::kPerLinkEqualShare);
  // Equal share: A gets only 0.5 on L0 while B is active (B still runs
  // at 0.1, done at t = 10 with A at 5 transferred), then full rate:
  // 5 + 4 more at rate 1 -> t = 14.
  EXPECT_NEAR(equal[1].finish, 10.0, 1e-6);
  EXPECT_NEAR(equal[0].finish, 14.0, 1e-6);
  EXPECT_GT(equal[0].finish, maxmin[0].finish);
}

TEST(FluidSim, EqualShareNeverExceedsLinkCapacity) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  cfg.allocation = AllocationModel::kPerLinkEqualShare;
  FluidSimulator sim(ft.network(), router, cfg);
  for (std::uint64_t f = 0; f < 40; ++f) {
    sim.add_flow(FlowSpec{f, ft.host(static_cast<int>(f % 16)),
                          ft.host(static_cast<int>((f * 5 + 3) % 16)), 4.0,
                          0.0});
  }
  auto results = sim.run();
  for (const auto& r : results) {
    if (r.spec.src == r.spec.dst) continue;
    EXPECT_EQ(r.outcome, FlowOutcome::kCompleted);
    // With unit capacities, no flow can beat 1 unit of rate.
    EXPECT_GE(r.fct(), 4.0 - 1e-9);
  }
}

// --- failure impact analysis -------------------------------------------------

TEST(FailureAnalysis, CoflowAmplification) {
  // One coflow of many flows: failing anything on any flow's path affects
  // the whole coflow — the paper's §2.2 amplification effect.
  topo::FatTree ft(topo::FatTreeParams{.k = 8});
  routing::EcmpRouter router(ft);

  std::vector<FlowSpec> flows;
  std::uint64_t id = 0;
  for (int i = 0; i < 32; ++i) {
    // Coflow 0: fan-in to host 0; plus 32 singleton coflows elsewhere.
    flows.push_back(FlowSpec{id++, ft.host(i + 1), ft.host(0), 1e6, 0.0, 0});
    flows.push_back(FlowSpec{id++, ft.host(40 + i), ft.host(90 + i), 1e6,
                             0.0, 1 + static_cast<CoflowId>(i)});
  }
  auto snapshot = route_snapshot(ft.network(), router, flows);

  FailureSet fs;
  fs.nodes.push_back(ft.edge_of_host(ft.host(0)));
  ImpactResult r = measure_impact(snapshot, fs);
  // All 32 fan-in flows die with the edge, so coflow 0 is affected.
  EXPECT_GE(r.affected_flows, 32u);
  EXPECT_GE(r.affected_coflows, 1u);

  // Amplification: fail the host link of ONE fan-in source (host 21 is
  // used only by coflow 0). Exactly one flow is affected, but the whole
  // wide coflow stalls — so the coflow fraction strictly exceeds the
  // flow fraction (the §2.2 effect).
  FailureSet single_link;
  single_link.links.push_back(ft.host_link(ft.host(21)));
  ImpactResult r2 = measure_impact(snapshot, single_link);
  EXPECT_EQ(r2.affected_flows, 1u);
  EXPECT_EQ(r2.affected_coflows, 1u);
  EXPECT_GT(r2.coflow_fraction(), r2.flow_fraction());
}

TEST(FailureAnalysis, RandomFailureSetsRespectBounds) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  Rng rng(5);
  auto nodes = random_switch_failures(ft.network(), 3, rng);
  EXPECT_EQ(nodes.nodes.size(), 3u);
  for (NodeId n : nodes.nodes) {
    EXPECT_NE(ft.network().node(n).kind, NodeKind::kHost);
  }
  auto links = random_fabric_link_failures(ft.network(), 5, rng);
  EXPECT_EQ(links.links.size(), 5u);
  for (net::LinkId l : links.links) {
    const net::Link& link = ft.network().link(l);
    EXPECT_NE(ft.network().node(link.a).kind, NodeKind::kHost);
    EXPECT_NE(ft.network().node(link.b).kind, NodeKind::kHost);
  }
}

TEST(FailureAnalysis, UnaffectedWhenFailureOffPath) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  std::vector<FlowSpec> flows{
      FlowSpec{1, ft.host(0, 0, 0), ft.host(0, 0, 1), 1.0, 0.0, 0}};
  auto snapshot = route_snapshot(ft.network(), router, flows);
  FailureSet fs;
  fs.nodes.push_back(ft.core(0));  // same-edge flow never touches cores
  ImpactResult r = measure_impact(snapshot, fs);
  EXPECT_EQ(r.affected_flows, 0u);
  EXPECT_EQ(r.affected_coflows, 0u);
}

}  // namespace
}  // namespace sbk::sim
