// Shared helpers for the experiment harnesses: consistent banner /
// row printing so every binary emits both a human-readable table and
// machine-readable CSV rows (prefixed "csv,") that plotting scripts can
// grep out.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sbk::bench {

inline void banner(const std::string& experiment, const std::string& what) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==================================================================\n");
}

inline void csv_row(const std::vector<std::string>& fields) {
  std::printf("csv");
  for (const std::string& f : fields) std::printf(",%s", f.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

inline std::string fmt_pct(double fraction, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

/// Parses "--key=value" style overrides; returns value or fallback.
inline long long arg_int(int argc, char** argv, const std::string& key,
                         long long fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

}  // namespace sbk::bench
