// Experiment E3 — Figure 1(c): CDF of coflow-completion-time (CCT)
// slowdown under a single node or link failure, on 5-minute trace
// partitions over a k=16 rack-level fat-tree (10:1 oversubscribed).
//
// Architectures, as in §2.2, plus the two proactive-protection
// baselines from the comparison matrix:
//   * fat-tree: ECMP normally; affected flows rerouted globally
//     optimally (EcmpWithGlobalRerouteRouter);
//   * F10: AB-wired fat-tree with local 3-hop rerouting (F10Router);
//   * SPIDER: pre-installed local detours, zero controller involvement;
//     flows whose failure its 4-hop detour budget cannot cover (e.g. a
//     downstream agg death) stall until repair (SpiderProtectRouter);
//   * backup rules: precomputed per-destination backup next-hops with
//     reactive global fallback (BackupRulesRouter);
//   * ShareBackup: hardware replacement — the failure is repaired within
//     ~ms, so the final state equals the healthy network (slowdown 1).
//
// Failure model: one element fails at t=0 and is repaired at the end of
// the 5-minute partition ("most failures last for less than 5 minutes",
// §2.2). Failures are sampled over every location class: edge, agg, and
// core switches; host, edge-agg, and agg-core links. Under the rerouting
// baselines, an edge-switch or host-link failure disconnects its rack
// for the whole failure duration — flows stall until repair — which is
// what produces the paper's several-hundred-fold slowdown tail.
//
// Slowdown of a coflow = CCT with the failure / CCT in the healthy
// network under the same architecture's routing; the CDF is reported
// over the *affected* coflows (those with a flow whose healthy path
// traverses the failed element), as the paper's §2.2 does.
//
// The failure scenarios are independent (seed, scenario) Monte-Carlo
// draws, so they run through sweep::SweepRunner: one task per scenario,
// each with a private topology pair + routers (the simulator mutates the
// Network) and a deterministic RNG stream derived from the master seed.
// Results are bit-identical to --threads=1. Override parallelism with
// --threads=N or the SBK_THREADS environment variable.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "bench_workload.hpp"
#include "control/controller.hpp"
#include "routing/backup_rules.hpp"
#include "routing/ecmp.hpp"
#include "routing/f10.hpp"
#include "routing/global_reroute.hpp"
#include "routing/spider.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/fluid_sim.hpp"
#include "sweep/sweep.hpp"
#include "util/stats.hpp"

using namespace sbk;

namespace {

// 1 capacity unit = 2.5 Gbps. The trace's byte volumes are fixed, so the
// unit size sets the utilization level; 2.5 Gbps links put the fabric
// under sustained load comparable to the paper's busy production trace.
constexpr double kUnitBps = 3.125e8;

// The paper's packet-level simulators capture TCP-under-ECMP behavior:
// a flow hashed onto a congested link does not reclaim bandwidth that
// other flows leave unused elsewhere. kPerLinkEqualShare is the
// flow-level analogue (see sim::AllocationModel); pass --maxmin=1 for
// the idealized max-min variant, which compresses the slowdown tail.
bool g_use_maxmin = false;

sim::SimConfig sim_config() {
  sim::SimConfig cfg;
  cfg.unit_bytes_per_second = kUnitBps;
  cfg.allocation = g_use_maxmin ? sim::AllocationModel::kMaxMinFair
                                : sim::AllocationModel::kPerLinkEqualShare;
  return cfg;
}

double g_xm = 1e9;  // per-reducer volume scale (--xm= override, bytes)

std::vector<sim::FlowSpec> heavy_flows(const topo::FatTree& ft,
                                       std::size_t coflows,
                                       Seconds duration) {
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = duration;
  wp.width_lognorm_mu = 1.2;       // wider shuffles than the default
  wp.reducer_bytes_xm = g_xm;
  wp.reducer_bytes_cap = 1e11;     // 100 GB elephants
  Rng rng(20170003);
  return workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
}

std::map<sim::CoflowId, double> run_ccts(
    topo::FatTree& ft, routing::Router& router,
    const std::vector<sim::FlowSpec>& flows,
    std::function<void(sim::FluidSimulator&)> scenario = {}) {
  sim::FluidSimulator simulator(ft.network(), router, sim_config());
  simulator.add_flows(flows);
  if (scenario) scenario(simulator);
  auto results = simulator.run();
  std::map<sim::CoflowId, double> ccts;
  for (const auto& c : sim::aggregate_coflows(results)) {
    if (c.all_completed && c.cct() > 0.0) ccts[c.id] = c.cct();
  }
  return ccts;
}

/// Healthy-network path of every flow under `router`, for affected-set
/// computation.
std::vector<net::Path> healthy_paths(topo::FatTree& ft,
                                     routing::Router& router,
                                     const std::vector<sim::FlowSpec>& flows) {
  std::vector<net::Path> out;
  out.reserve(flows.size());
  for (const auto& f : flows) {
    out.push_back(f.src == f.dst
                      ? net::Path{{f.src}, {}}
                      : router.route(ft.network(), f.src, f.dst, f.id,
                                     nullptr));
  }
  return out;
}

std::set<sim::CoflowId> affected_coflows(
    const std::vector<sim::FlowSpec>& flows,
    const std::vector<net::Path>& paths, net::NodeId failed_node,
    std::optional<net::LinkId> failed_link) {
  std::set<sim::CoflowId> out;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    bool hit = failed_link.has_value()
                   ? net::path_uses_link(paths[i], *failed_link)
                   : net::path_uses_node(paths[i], failed_node);
    if (hit) out.insert(flows[i].coflow);
  }
  return out;
}

/// Raw per-scenario slowdown samples for one (architecture, failure
/// class) series — the thread-local accumulation unit; batches are
/// merged into SlowdownStats in scenario order after the sweep.
struct SeriesBatch {
  std::vector<double> affected;
  std::vector<double> all;
  std::size_t unfinished = 0;

  bool operator==(const SeriesBatch&) const = default;
};

/// Everything one failure scenario produces.
struct ScenarioBatch {
  SeriesBatch ft_node, ft_link, f10_node, f10_link;
  SeriesBatch spider_node, spider_link, bkup_node, bkup_link;

  bool operator==(const ScenarioBatch&) const = default;
};

struct SlowdownStats {
  Summary affected;
  Summary all;
  std::size_t unfinished = 0;

  void merge(const SeriesBatch& batch) {
    affected.add_all(batch.affected);
    all.add_all(batch.all);
    unfinished += batch.unfinished;
  }
};

void collect(const std::map<sim::CoflowId, double>& healthy,
             const std::map<sim::CoflowId, double>& failed,
             const std::set<sim::CoflowId>& affected, SeriesBatch& out) {
  for (const auto& [id, base] : healthy) {
    auto it = failed.find(id);
    if (it == failed.end()) {
      ++out.unfinished;
      continue;
    }
    double slowdown = it->second / base;
    out.all.push_back(slowdown);
    if (affected.contains(id)) out.affected.push_back(slowdown);
  }
}

void print_series(const char* label, SlowdownStats& s) {
  if (s.affected.empty()) {
    std::printf("%-22s (no affected coflows)\n", label);
    return;
  }
  const Summary& a = s.affected;
  std::printf("%-22s affected=%5zu  p50=%7.2f p90=%8.2f p99=%9.2f "
              "max=%10.2f  unfinished=%zu\n",
              label, a.count(), a.percentile(50), a.percentile(90),
              a.percentile(99), a.max(), s.unfinished);
  for (double p : {25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    bench::csv_row({label, bench::fmt(p), bench::fmt(a.percentile(p), 6),
                    bench::fmt(s.all.percentile(p), 6)});
  }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 16));
  const auto coflows =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "coflows", 200));
  const auto scenarios =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "scenarios", 3));
  g_use_maxmin = bench::arg_int(argc, argv, "maxmin", 0) != 0;
  g_xm = static_cast<double>(bench::arg_int(argc, argv, "xm", 1000000000LL));
  const auto threads =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "threads", 0));
  const Seconds duration = 300.0;

  bench::banner(
      "E3 / Figure 1(c) — CCT slowdown under a single failure",
      "k=" + std::to_string(k) + " rack fat-tree, 10:1 oversubscription, "
      "5-minute partitions; " + std::to_string(scenarios) +
      " node + " + std::to_string(scenarios) + " link scenarios per "
      "architecture; slowdowns over affected coflows.");

  topo::FatTree plain(bench::paper_fat_tree(k));
  topo::FatTree ab(bench::paper_fat_tree(k, topo::Wiring::kAb));
  auto flows = heavy_flows(plain, coflows, duration);
  std::printf("workload: %zu coflows -> %zu flows\n", coflows, flows.size());

  routing::EcmpWithGlobalRerouteRouter ft_router(plain, 1);
  routing::F10Router f10_router(ab, 1);
  auto healthy_ft = run_ccts(plain, ft_router, flows);
  auto healthy_f10 = run_ccts(ab, f10_router, flows);
  auto paths_ft = healthy_paths(plain, ft_router, flows);
  auto paths_f10 = healthy_paths(ab, f10_router, flows);
  // SPIDER and backup rules hash the same structural candidate sets as
  // the reactive fat-tree front-end (same salt), so their healthy CCTs,
  // paths, and affected sets are the fat-tree ones.
  std::printf("healthy CCTs: fat-tree %zu coflows, F10 %zu coflows\n\n",
              healthy_ft.size(), healthy_f10.size());

  // A failure lasts the trace partition and is repaired at its end
  // ("most failures last for less than 5 minutes", §2.2): the element
  // fails at t=0 and is restored at t=300. Rerouting architectures route
  // around it where possible; traffic with no surviving path (an edge
  // switch or host link takes its whole rack down) stalls until repair —
  // exactly the case ShareBackup fixes in milliseconds.
  auto node_scenario = [duration](net::NodeId victim) {
    return [victim, duration](sim::FluidSimulator& s) {
      s.at(0.0, [victim](net::Network& n) { n.fail_node(victim); });
      s.at(duration, [victim](net::Network& n) { n.restore_node(victim); });
    };
  };
  auto link_scenario = [duration](net::LinkId victim) {
    return [victim, duration](sim::FluidSimulator& s) {
      s.at(0.0, [victim](net::Network& n) { n.fail_link(victim); });
      s.at(duration, [victim](net::Network& n) { n.restore_link(victim); });
    };
  };

  // One sweep scenario: stratified failure draws — one node failure per
  // switch layer and one link failure per link class, each simulated on
  // every rerouting/protection architecture (24 fluid simulations; the
  // plain-wired victims are also replayed under SPIDER-protect and
  // backup-rules routing). The topologies
  // and routers are scenario-private because the simulator mutates the
  // Network via the scheduled failure/repair actions; node and link ids
  // are identical across copies (construction is deterministic), so the
  // precomputed healthy CCTs, paths, and affected sets stay valid.
  auto scenario_fn = [&](const sweep::ScenarioSpec& spec) {
    Rng rng = spec.rng();
    topo::FatTree my_plain(bench::paper_fat_tree(k));
    topo::FatTree my_ab(bench::paper_fat_tree(k, topo::Wiring::kAb));
    routing::EcmpWithGlobalRerouteRouter my_ft_router(my_plain, 1);
    routing::F10Router my_f10_router(my_ab, 1);
    routing::SpiderProtectRouter my_spider(my_plain, 1);
    routing::BackupRulesRouter my_bkup(my_plain, 1);
    ScenarioBatch out;

    int pod = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k)));
    int idx =
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
    int core_idx = static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(k * k / 4)));

    for (int layer = 0; layer < 3; ++layer) {
      auto victim_in = [&](topo::FatTree& ft) {
        switch (layer) {
          case 0: return ft.edge(pod, idx);
          case 1: return ft.agg(pod, idx);
          default: return ft.core(core_idx);
        }
      };
      {
        net::NodeId victim = victim_in(my_plain);
        auto aff = affected_coflows(flows, paths_ft, victim, std::nullopt);
        collect(healthy_ft,
                run_ccts(my_plain, my_ft_router, flows, node_scenario(victim)),
                aff, out.ft_node);
        collect(healthy_ft,
                run_ccts(my_plain, my_spider, flows, node_scenario(victim)),
                aff, out.spider_node);
        collect(healthy_ft,
                run_ccts(my_plain, my_bkup, flows, node_scenario(victim)),
                aff, out.bkup_node);
      }
      {
        net::NodeId victim = victim_in(my_ab);
        auto aff = affected_coflows(flows, paths_f10, victim, std::nullopt);
        collect(healthy_f10,
                run_ccts(my_ab, my_f10_router, flows, node_scenario(victim)),
                aff, out.f10_node);
      }
    }

    int p2 = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k)));
    int e2 =
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
    int a2 =
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
    int c2 = static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(k * k / 4)));
    int h2 = static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(my_plain.host_count())));

    for (int lclass = 0; lclass < 3; ++lclass) {
      auto link_in = [&](topo::FatTree& ft) {
        switch (lclass) {
          case 0: return ft.host_link(ft.host(h2));
          case 1:
            return *ft.network().find_link(ft.edge(p2, e2), ft.agg(p2, a2));
          default:
            return *ft.network().find_link(ft.core(c2),
                                           ft.agg_for_core(c2, p2));
        }
      };
      {
        net::LinkId victim = link_in(my_plain);
        auto aff = affected_coflows(flows, paths_ft, net::NodeId{}, victim);
        collect(healthy_ft,
                run_ccts(my_plain, my_ft_router, flows, link_scenario(victim)),
                aff, out.ft_link);
        collect(healthy_ft,
                run_ccts(my_plain, my_spider, flows, link_scenario(victim)),
                aff, out.spider_link);
        collect(healthy_ft,
                run_ccts(my_plain, my_bkup, flows, link_scenario(victim)),
                aff, out.bkup_link);
      }
      {
        net::LinkId victim = link_in(my_ab);
        auto aff = affected_coflows(flows, paths_f10, net::NodeId{}, victim);
        collect(healthy_f10,
                run_ccts(my_ab, my_f10_router, flows, link_scenario(victim)),
                aff, out.f10_link);
      }
    }
    return out;
  };

  sweep::SweepRunner runner({.master_seed = 7, .threads = threads});
  auto t0 = std::chrono::steady_clock::now();
  auto batches = runner.run(scenarios, scenario_fn);
  double parallel_s = seconds_since(t0);

  if (runner.threads() > 1) {
    // Serial reference pass: proves the parallel sweep is bit-identical
    // and measures the fan-out speedup.
    sweep::SweepRunner reference({.master_seed = 7, .threads = 1});
    t0 = std::chrono::steady_clock::now();
    auto ref_batches = reference.run(scenarios, scenario_fn);
    double serial_s = seconds_since(t0);
    std::printf("sweep: %zu scenarios x 24 sims, threads=%zu: %.2fs; "
                "threads=1: %.2fs; speedup %.2fx; parallel==serial: %s\n\n",
                scenarios, runner.threads(), parallel_s, serial_s,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
                batches == ref_batches ? "yes" : "NO (determinism bug)");
    bench::csv_row({"sweep-speedup", std::to_string(runner.threads()),
                    bench::fmt(serial_s), bench::fmt(parallel_s),
                    bench::fmt(parallel_s > 0.0 ? serial_s / parallel_s : 0.0)});
  } else {
    std::printf("sweep: %zu scenarios x 24 sims, threads=1: %.2fs\n\n",
                scenarios, parallel_s);
  }

  SlowdownStats ft_node, ft_link, f10_node, f10_link, sb_node, sb_edge;
  SlowdownStats spider_node, spider_link, bkup_node, bkup_link;
  for (const ScenarioBatch& b : batches) {
    ft_node.merge(b.ft_node);
    ft_link.merge(b.ft_link);
    f10_node.merge(b.f10_node);
    f10_link.merge(b.f10_link);
    spider_node.merge(b.spider_node);
    spider_link.merge(b.spider_link);
    bkup_node.merge(b.bkup_node);
    bkup_link.merge(b.bkup_link);
  }

  // --- ShareBackup: the same failures, repaired in ~ms by failover ------
  auto run_sharebackup = [&](topo::SwitchPosition pos, SlowdownStats& out) {
    sharebackup::FabricParams fp;
    fp.fat_tree = bench::paper_fat_tree(k);
    sharebackup::Fabric fabric(fp);
    control::Controller ctrl(fabric, control::ControllerConfig{});
    routing::EcmpWithGlobalRerouteRouter router(fabric.fat_tree(), 1);
    sim::SimConfig cfg = sim_config();
    cfg.reroute_on_path_failure = false;  // paths pinned; fabric repairs
    sim::FluidSimulator simulator(fabric.network(), router, cfg);
    simulator.add_flows(flows);
    net::NodeId victim = fabric.node_at(pos);
    Seconds recover = ctrl.end_to_end_recovery_latency();
    simulator.at(duration / 2,
                 [victim](net::Network& n) { n.fail_node(victim); });
    simulator.at(duration / 2 + recover, [&](net::Network&) {
      (void)ctrl.on_switch_failure(pos);
    });
    auto results = simulator.run();
    std::map<sim::CoflowId, double> ccts;
    for (const auto& c : sim::aggregate_coflows(results)) {
      if (c.all_completed && c.cct() > 0.0) ccts[c.id] = c.cct();
    }
    auto aff = affected_coflows(flows, paths_ft, victim, std::nullopt);
    SeriesBatch batch;
    collect(healthy_ft, ccts, aff, batch);
    out.merge(batch);
  };
  run_sharebackup({topo::Layer::kAgg, 0, 0}, sb_node);
  // The rack-killing case rerouting cannot touch: an edge switch failure,
  // recovered by a backup in milliseconds.
  run_sharebackup({topo::Layer::kEdge, 0, 0}, sb_edge);

  std::printf("CCT slowdown over affected coflows (failed / healthy):\n");
  print_series("fat-tree, node", ft_node);
  print_series("fat-tree, link", ft_link);
  print_series("F10, node", f10_node);
  print_series("F10, link", f10_link);
  print_series("SPIDER, node", spider_node);
  print_series("SPIDER, link", spider_link);
  print_series("backup-rules, node", bkup_node);
  print_series("backup-rules, link", bkup_link);
  print_series("ShareBackup, agg", sb_node);
  print_series("ShareBackup, edge", sb_edge);

  std::printf(
      "\nPaper's shape, reproduced: affected coflows suffer CCT slowdowns\n"
      "of several hundred times under rerouting. Two mechanisms: (i)\n"
      "congestion — rerouted traffic squeezes onto surviving paths (the\n"
      "p50-p90 region); (ii) rack disconnection — an edge switch or host\n"
      "link failure has NO alternative path, so its coflows stall for the\n"
      "few-minute failure duration (the p99+ region, slowdown ~ failure\n"
      "duration / healthy CCT). Rerouting cannot touch (ii) at all.\n"
      "ShareBackup repairs both — including dead edge switches — within\n"
      "milliseconds, keeping every slowdown at 1.0.\n");
  return 0;
}
