#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::net {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kEdgeSwitch: return "edge";
    case NodeKind::kAggSwitch: return "agg";
    case NodeKind::kCoreSwitch: return "core";
  }
  return "?";
}

bool is_switch(NodeKind kind) noexcept { return kind != NodeKind::kHost; }

void Network::reserve(std::size_t nodes, std::size_t links) {
  nodes_.reserve(nodes);
  adj_blocks_.reserve(nodes);
  links_.reserve(links);
  // Each link contributes two adjacency entries; builders that also call
  // reserve_degree() never grow past this, and incremental builds waste
  // at most the doubling slack on top.
  adj_arena_.reserve(links * 2);
}

void Network::reserve_degree(NodeId id, std::uint32_t degree) {
  SBK_EXPECTS(id.valid() && id.index() < nodes_.size());
  AdjBlock& b = adj_blocks_[id.index()];
  if (b.capacity >= degree) return;
  const auto new_off = static_cast<std::uint32_t>(adj_arena_.size());
  adj_arena_.resize(adj_arena_.size() + degree);
  std::copy_n(adj_arena_.begin() + b.offset, b.count,
              adj_arena_.begin() + new_off);
  b.offset = new_off;
  b.capacity = degree;
}

void Network::adj_append(NodeId id, Adjacency entry) {
  AdjBlock& b = adj_blocks_[id.index()];
  if (b.count == b.capacity) {
    const std::uint32_t new_cap = b.capacity == 0 ? 4 : b.capacity * 2;
    const auto new_off = static_cast<std::uint32_t>(adj_arena_.size());
    adj_arena_.resize(adj_arena_.size() + new_cap);
    std::copy_n(adj_arena_.begin() + b.offset, b.count,
                adj_arena_.begin() + new_off);
    b.offset = new_off;
    b.capacity = new_cap;
  }
  adj_arena_[b.offset + b.count++] = entry;
}

void Network::adj_erase_link(NodeId id, LinkId link) {
  AdjBlock& b = adj_blocks_[id.index()];
  Adjacency* begin = adj_arena_.data() + b.offset;
  Adjacency* end = begin + b.count;
  Adjacency* it = std::find_if(
      begin, end, [link](const Adjacency& a) { return a.link == link; });
  SBK_ASSERT(it != end);
  std::copy(it + 1, end, it);
  --b.count;
}

NodeId Network::add_node(NodeKind kind, std::string name, std::int32_t pod,
                         std::int32_t index) {
  nodes_.push_back(Node{kind, std::move(name), pod, index, false});
  adj_blocks_.emplace_back();
  auto id = NodeId(static_cast<NodeId::value_type>(nodes_.size() - 1));
  by_kind_[static_cast<std::size_t>(kind)].push_back(id);
  return id;
}

LinkId Network::add_link(NodeId a, NodeId b, double capacity) {
  SBK_EXPECTS(a.valid() && a.index() < nodes_.size());
  SBK_EXPECTS(b.valid() && b.index() < nodes_.size());
  SBK_EXPECTS_MSG(a != b, "self-loops are not meaningful links");
  SBK_EXPECTS(capacity > 0.0);
  links_.push_back(Link{a, b, capacity, false});
  auto id = LinkId(static_cast<LinkId::value_type>(links_.size() - 1));
  adj_append(a, {id, b});
  adj_append(b, {id, a});
  ++topo_version_;
  ++structure_version_;
  return id;
}

void Network::set_link_capacity(LinkId id, double capacity) {
  SBK_EXPECTS(capacity >= 0.0);
  Link& l = mutable_link(id);
  if (l.capacity != capacity) {
    l.capacity = capacity;
    ++topo_version_;
  }
}

const Node& Network::node(NodeId id) const {
  SBK_EXPECTS(id.valid() && id.index() < nodes_.size());
  return nodes_[id.index()];
}

const Link& Network::link(LinkId id) const {
  SBK_EXPECTS(id.valid() && id.index() < links_.size());
  return links_[id.index()];
}

Node& Network::mutable_node(NodeId id) {
  SBK_EXPECTS(id.valid() && id.index() < nodes_.size());
  return nodes_[id.index()];
}

Link& Network::mutable_link(LinkId id) {
  SBK_EXPECTS(id.valid() && id.index() < links_.size());
  return links_[id.index()];
}

std::span<const Adjacency> Network::adjacent(NodeId id) const {
  SBK_EXPECTS(id.valid() && id.index() < adj_blocks_.size());
  const AdjBlock& b = adj_blocks_[id.index()];
  return {adj_arena_.data() + b.offset, b.count};
}

NodeId Network::head(DirectedLink dl) const {
  const Link& l = link(dl.link);
  return dl.forward ? l.b : l.a;
}

NodeId Network::tail(DirectedLink dl) const {
  const Link& l = link(dl.link);
  return dl.forward ? l.a : l.b;
}

std::optional<LinkId> Network::find_link(NodeId a, NodeId b) const {
  for (const Adjacency& adj : adjacent(a)) {
    if (adj.peer == b) return adj.link;
  }
  return std::nullopt;
}

DirectedLink Network::directed(LinkId id, NodeId from) const {
  const Link& l = link(id);
  SBK_EXPECTS_MSG(from == l.a || from == l.b,
                  "`from` must be an endpoint of the link");
  return DirectedLink{id, from == l.a};
}

std::span<const NodeId> Network::nodes_of_kind(NodeKind kind) const {
  return by_kind_[static_cast<std::size_t>(kind)];
}

std::size_t Network::count_of_kind(NodeKind kind) const {
  return by_kind_[static_cast<std::size_t>(kind)].size();
}

void Network::fail_node(NodeId id) {
  Node& n = mutable_node(id);
  if (!n.failed) {
    n.failed = true;
    ++failed_nodes_;
    ++topo_version_;
  }
}

void Network::restore_node(NodeId id) {
  Node& n = mutable_node(id);
  if (n.failed) {
    n.failed = false;
    --failed_nodes_;
    ++topo_version_;
  }
}

void Network::fail_link(LinkId id) {
  Link& l = mutable_link(id);
  if (!l.failed) {
    l.failed = true;
    ++failed_links_;
    ++topo_version_;
  }
}

void Network::restore_link(LinkId id) {
  Link& l = mutable_link(id);
  if (l.failed) {
    l.failed = false;
    --failed_links_;
    ++topo_version_;
  }
}

bool Network::usable(LinkId id) const {
  const Link& l = link(id);
  return !l.failed && !node(l.a).failed && !node(l.b).failed;
}

void Network::clear_failures() {
  if (failed_nodes_ > 0 || failed_links_ > 0) ++topo_version_;
  for (Node& n : nodes_) n.failed = false;
  for (Link& l : links_) l.failed = false;
  failed_nodes_ = 0;
  failed_links_ = 0;
}

void Network::retarget_link(LinkId id, NodeId from, NodeId to) {
  Link& l = mutable_link(id);
  SBK_EXPECTS_MSG(from == l.a || from == l.b,
                  "`from` must be a current endpoint");
  SBK_EXPECTS_MSG(to != l.a && to != l.b, "`to` is already an endpoint");
  SBK_EXPECTS(to.valid() && to.index() < nodes_.size());

  // Remove the adjacency entry at `from`, add one at `to`.
  NodeId other = (l.a == from) ? l.b : l.a;
  adj_erase_link(from, id);
  adj_append(to, {id, other});

  // Fix the peer's adjacency entry to point at the new endpoint.
  const AdjBlock& ob = adj_blocks_[other.index()];
  Adjacency* obegin = adj_arena_.data() + ob.offset;
  Adjacency* oend = obegin + ob.count;
  Adjacency* oit = std::find_if(
      obegin, oend, [id](const Adjacency& a) { return a.link == id; });
  SBK_ASSERT(oit != oend);
  oit->peer = to;

  if (l.a == from) l.a = to; else l.b = to;
  ++topo_version_;
  ++structure_version_;
}

}  // namespace sbk::net
