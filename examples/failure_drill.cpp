// Failure drill: a narrated end-to-end operational scenario against the
// full control plane — keep-alive detection, link probing, dual
// replacement, offline diagnosis over the circuit-switch side rings,
// exoneration, host troubleshooting, watchdog, and controller failover.
// Every incident's recovery timeline is traced and exported as CSV, then
// validated against the §5.3 component latency model.
//
//   $ ./build/examples/failure_drill [timeline.csv] [trace.json]
//
// The optional second argument records the whole drill into a flight
// recorder and writes a Chrome/Perfetto trace_event JSON (inspect with
// chrome://tracing, ui.perfetto.dev, or the sbk_trace CLI).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "control/controller.hpp"
#include "control/controller_cluster.hpp"
#include "control/failure_detector.hpp"
#include "control/recovery_latency.hpp"
#include "net/algo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_tracer.hpp"
#include "sharebackup/fabric.hpp"

using namespace sbk;

namespace {
void say(const char* msg) { std::printf("%s\n", msg); }
}  // namespace

int main(int argc, char** argv) {
  const std::string csv_path = argc > 1 ? argv[1] : "recovery_timeline.csv";
  const std::string trace_path = argc > 2 ? argv[2] : "";
  sharebackup::FabricParams params;
  params.fat_tree.k = 6;
  params.backups_per_group = 2;
  sharebackup::Fabric fabric(params);
  control::Controller controller(fabric, control::ControllerConfig{});
  sim::EventQueue queue;
  control::FailureDetector detector(queue, fabric.network(),
                                    control::DetectorConfig{});
  control::ControllerCluster cluster(queue, control::ClusterConfig{});

  obs::RecoveryTracer tracer;
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(/*enabled=*/!trace_path.empty());
  detector.attach_tracer(&tracer);
  detector.attach_metrics(&metrics);
  controller.attach_tracer(&tracer);
  controller.attach_metrics(&metrics);
  fabric.attach_metrics(&metrics);
  if (recorder.enabled()) {
    queue.attach_recorder(&recorder);
    controller.attach_recorder(&recorder);
    fabric.attach_recorder(&recorder);
  }

  auto link_element = [&](net::LinkId lid) {
    const net::Link& l = fabric.network().link(lid);
    return obs::element_for_link(fabric.network().node(l.a).name,
                                 fabric.network().node(l.b).name);
  };

  std::printf("=== ShareBackup failure drill (k=6, n=2) ===\n\n");

  // Wire detection into the controller, gated on cluster availability.
  detector.on_node_failure([&](net::NodeId node, Seconds t) {
    if (!cluster.available()) return;
    auto pos = fabric.position_of_node(node);
    controller.set_time(t);
    auto out = controller.on_switch_failure(*pos);
    std::printf("[%7.4fs] node failure at %s -> %s\n", t,
                fabric.network().node(node).name.c_str(),
                out.detail.c_str());
  });
  detector.on_link_failure([&](net::LinkId link, Seconds t) {
    if (!cluster.available()) return;
    controller.set_time(t);
    auto out = controller.on_link_failure(link);
    std::printf("[%7.4fs] link failure report -> %s\n", t,
                out.detail.c_str());
  });

  const Seconds horizon = 1.0;
  for (net::NodeId sw : fabric.fat_tree().all_switches()) {
    detector.watch_node(sw, horizon);
  }
  for (std::size_t i = 0; i < fabric.network().link_count(); ++i) {
    detector.watch_link(net::LinkId(static_cast<net::LinkId::value_type>(i)),
                        horizon);
  }
  cluster.start(horizon);

  say("Act 1 — a core switch dies (keep-alive detection).");
  net::NodeId core = fabric.fat_tree().core(4);
  queue.schedule_at(0.010, [&] {
    tracer.note_injection(
        obs::element_for_node(fabric.network().node(core).name),
        queue.now());
    fabric.network().fail_node(core);
  });

  say("Act 2 — an edge-agg link fails; the faulty side is the edge "
      "switch's\n         interface. Both sides are replaced instantly; "
      "diagnosis runs offline.");
  net::NodeId edge = fabric.fat_tree().edge(1, 0);
  net::NodeId agg = fabric.fat_tree().agg(1, 2);
  net::LinkId link = *fabric.network().find_link(edge, agg);
  queue.schedule_at(0.100, [&] {
    tracer.note_injection(link_element(link), queue.now());
    auto dev = fabric.device_at(*fabric.position_of_node(edge));
    fabric.set_interface_health({dev, fabric.cs_of_link(link)}, false);
    fabric.network().fail_link(link);
  });

  say("Act 3 — a host NIC dies; per policy the edge switch is replaced "
      "first,\n         then redressed when the failure persists.");
  net::NodeId host = fabric.fat_tree().host(3, 1, 2);
  net::LinkId host_link = fabric.fat_tree().host_link(host);
  queue.schedule_at(0.200, [&] {
    tracer.note_injection(link_element(host_link), queue.now());
    auto hdev = fabric.device_of_host(host);
    fabric.set_interface_health({hdev, fabric.cs_of_link(host_link)}, false);
    fabric.network().fail_link(host_link);
  });

  say("Act 4 — the primary controller crashes; a replica takes over.\n");
  queue.schedule_at(0.300, [&] { cluster.fail_member(*cluster.primary()); });
  cluster.on_election([](std::size_t id, std::size_t term, Seconds t) {
    std::printf("[%7.4fs] controller %zu elected primary (term %zu)\n", t,
                id, term);
  });

  queue.run();

  std::printf("\n--- background diagnosis ---\n");
  controller.set_time(queue.now());  // diagnosis is stamped post-drill
  std::size_t jobs = controller.run_pending_diagnosis();
  std::printf("ran %zu diagnosis job(s): %zu switch(es) exonerated, %zu "
              "confirmed faulty\n",
              jobs, controller.stats().switches_exonerated,
              controller.stats().switches_confirmed_faulty);
  for (net::NodeId h : controller.flagged_hosts()) {
    std::printf("host flagged for troubleshooting: %s\n",
                fabric.network().node(h).name.c_str());
  }

  std::printf("\n--- end state ---\n");
  std::printf("failovers: %zu | node failures handled: %zu | link: %zu | "
              "host-link: %zu\n",
              controller.stats().failovers,
              controller.stats().node_failures_handled,
              controller.stats().link_failures_handled,
              controller.stats().host_link_failures_handled);
  std::printf("network connected: %s (failed links remaining: %zu — the "
              "broken host NIC)\n",
              net::live_component_count(fabric.network()) == 1 ? "yes" : "no",
              fabric.network().failed_link_count());
  fabric.check_invariants();
  std::printf("fabric invariants: OK\n");

  // Technicians repair the pulled hardware; it rejoins as backups.
  std::printf("\n--- repair crew ---\n");
  for (sharebackup::DeviceUid dev = 0;
       dev < fabric.switch_device_count(); ++dev) {
    if (fabric.device_state(dev) == sharebackup::DeviceState::kOut) {
      controller.on_device_repaired(dev);
      std::printf("repaired %s -> returned to its group's backup pool\n",
                  fabric.device(dev).name.c_str());
    }
  }
  fabric.check_invariants();
  std::printf("all groups back to full backup strength.\n");

  std::printf("\n--- controller audit trail ---\n");
  for (const auto& entry : controller.audit_log()) {
    std::printf("[%7.4fs] %-13s %s\n", entry.at, entry.event.c_str(),
                entry.detail.c_str());
  }

  // --- recovery timelines ----------------------------------------------------
  std::printf("\n--- recovery timelines ---\n");
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("VALIDATION FAILED: %s\n", what);
      ++failures;
    }
  };

  {
    std::ofstream out(csv_path);
    tracer.write_csv(out);
    expect(out.good(), "timeline CSV written");
  }
  std::printf("wrote %zu incident(s) to %s\n", tracer.incidents().size(),
              csv_path.c_str());

  expect(tracer.incidents().size() == 3, "one incident per injected failure");
  for (const auto& inc : tracer.incidents()) {
    expect(obs::RecoveryTracer::spans_monotone(inc),
           "incident spans are monotone");
    if (inc.closed) {
      std::printf("incident %zu %-28s injected %.4fs  recovered in %.4f ms\n",
                  inc.id, inc.element.c_str(), inc.injected_at,
                  (inc.recovered_at - inc.injected_at) * 1e3);
    } else {
      std::printf("incident %zu %-28s injected %.4fs  still open\n", inc.id,
                  inc.element.c_str(), inc.injected_at);
    }
  }

  // Cross-check the traced core-switch timeline against the §5.3
  // component model: the measured control path must equal the modeled
  // notification + decision, the circuit reset must match the
  // technology's latency, and detection must not exceed the worst case.
  control::LatencyModelParams model_params;
  control::LatencyBreakdown model =
      control::sharebackup_latency(model_params, fabric.technology());
  const obs::RecoveryIncident* core_inc = nullptr;
  std::string core_elem =
      obs::element_for_node(fabric.network().node(core).name);
  for (const auto& inc : tracer.incidents()) {
    if (inc.element == core_elem) core_inc = &inc;
  }
  expect(core_inc != nullptr, "core-switch incident traced");
  if (core_inc != nullptr) {
    auto duration = [&](const char* stage) {
      const obs::RecoverySpan* s = core_inc->span(stage);
      return s != nullptr ? s->duration() : -1.0;
    };
    const double detection = duration("detection");
    const double control_path =
        duration("notification") + duration("decision") + duration("command");
    const double reconf = duration("reconfiguration");
    std::printf("core-switch timeline vs §5.3 model (ms):\n");
    std::printf("  detection       %.4f (model worst case %.4f)\n",
                detection * 1e3, model.detection * 1e3);
    std::printf("  control path    %.4f (model %.4f)\n", control_path * 1e3,
                (model.notification + model.decision) * 1e3);
    std::printf("  reconfiguration %.6f (model %.6f)\n", reconf * 1e3,
                model.reconfiguration * 1e3);
    expect(detection >= 0.0 && detection <= model.detection + 1e-9,
           "measured detection within the model's worst case");
    expect(std::abs(control_path - (model.notification + model.decision)) <
               1e-9,
           "control path matches the model");
    expect(std::abs(reconf - model.reconfiguration) < 1e-12,
           "circuit reset matches the technology latency");
    expect(core_inc->closed &&
               std::abs((core_inc->recovered_at - core_inc->injected_at) -
                        (detection + control_path + reconf)) < 1e-9,
           "end-to-end recovery is the sum of its stages");
  }

  std::printf("\n--- metrics ---\n");
  auto show = [&](const char* name) {
    const obs::Counter* c = metrics.find_counter(name);
    if (c != nullptr) std::printf("%-36s %llu\n", name,
                                  static_cast<unsigned long long>(c->value()));
  };
  show("detector.node_probes");
  show("detector.link_probes");
  show("detector.misses");
  show("detector.node_failures_reported");
  show("detector.link_failures_reported");
  show("controller.failovers");
  show("controller.diagnoses");
  show("fabric.circuit_reconfigurations");
  if (const obs::Gauge* g = metrics.find_gauge("fabric.spare_pool")) {
    std::printf("%-36s %.0f\n", "fabric.spare_pool", g->value());
  }

  if (recorder.enabled()) {
    export_recovery_spans(tracer, recorder);
    std::ofstream out(trace_path);
    recorder.write_trace_json(out);
    expect(out.good(), "trace JSON written");
    std::printf("\nwrote %zu trace event(s) to %s\n",
                recorder.events().size(), trace_path.c_str());
  }

  if (failures == 0) std::printf("\ntimeline validation: OK\n");
  return failures == 0 ? 0 : 1;
}
