// Tests for the 1:1 backup baseline: construction census, shadow
// activation semantics, and the "no bandwidth loss / no dilation" claims
// it shares with ShareBackup (at many times the cost).
#include <gtest/gtest.h>

#include "net/algo.hpp"
#include "routing/generic_ecmp.hpp"
#include "topo/one_to_one.hpp"
#include "util/assert.hpp"

namespace sbk::topo {
namespace {

class OneToOneStructure : public ::testing::TestWithParam<int> {};

TEST_P(OneToOneStructure, CensusMatchesConstruction) {
  const int k = GetParam();
  OneToOneBackup arch(FatTreeParams{.k = k});
  auto c = arch.census();
  const long long k3 = static_cast<long long>(k) * k * k;
  // One shadow per switch: 5k^2/4.
  EXPECT_EQ(c.extra_switches, static_cast<std::size_t>(5 * k * k / 4));
  // Mesh triples each of the k^3/2 fabric links.
  EXPECT_EQ(c.extra_fabric_links, static_cast<std::size_t>(3 * k3 / 2));
  // Host dual-homing adds one link per host.
  EXPECT_EQ(c.extra_host_links, static_cast<std::size_t>(k3 / 4));
  // Construction-exact port growth: 13/4 k^3 (the paper rounds this to
  // 15/4 k^3 by pricing "twice the switches at twice the ports").
  EXPECT_EQ(c.extra_switch_ports, static_cast<std::size_t>(13 * k3 / 4));
}

TEST_P(OneToOneStructure, ShadowsArePoweredOffAndInvisible) {
  const int k = GetParam();
  OneToOneBackup arch(FatTreeParams{.k = k});
  const FatTree& ft = arch.fat_tree();
  // Despite shadows and mesh, healthy routing sees plain fat-tree paths.
  auto paths = net::all_shortest_paths(arch.network(), ft.host(0),
                                       ft.host(ft.host_count() - 1));
  EXPECT_EQ(paths.size(), static_cast<std::size_t>((k / 2) * (k / 2)));
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 6u);
    for (net::NodeId n : p.nodes) EXPECT_FALSE(arch.is_shadow(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, OneToOneStructure, ::testing::Values(4, 6));

TEST(OneToOne, ActivationRestoresBandwidthWithoutDilation) {
  OneToOneBackup arch(FatTreeParams{.k = 4});
  const FatTree& ft = arch.fat_tree();
  net::NodeId agg = ft.agg(0, 0);

  auto count_paths = [&] {
    return net::all_shortest_paths(arch.network(), ft.host(0, 0, 0),
                                   ft.host(1, 0, 0))
        .size();
  };
  std::size_t healthy_paths = count_paths();

  arch.network().fail_node(agg);
  EXPECT_LT(count_paths(), healthy_paths);  // capacity lost while down

  net::NodeId shadow = arch.activate_shadow(agg);
  EXPECT_EQ(arch.active_of(agg), shadow);
  auto paths = net::all_shortest_paths(arch.network(), ft.host(0, 0, 0),
                                       ft.host(1, 0, 0));
  EXPECT_EQ(paths.size(), healthy_paths);  // fully restored
  for (const auto& p : paths) EXPECT_EQ(p.hops(), 6u);  // no dilation
}

TEST(OneToOne, RolesSwapWithoutSwitchBack) {
  OneToOneBackup arch(FatTreeParams{.k = 4});
  net::NodeId core = arch.fat_tree().core(2);
  arch.network().fail_node(core);
  net::NodeId shadow = arch.activate_shadow(core);
  // The repaired primary becomes the standby...
  arch.stand_down(core);
  EXPECT_EQ(arch.active_of(core), shadow);
  // ...and takes over when the shadow later dies.
  arch.network().fail_node(shadow);
  EXPECT_EQ(arch.activate_shadow(core), core);
  EXPECT_FALSE(arch.network().node_failed(core));
}

TEST(OneToOne, ActivationPreconditions) {
  OneToOneBackup arch(FatTreeParams{.k = 4});
  net::NodeId edge = arch.fat_tree().edge(0, 0);
  // Cannot activate while the active switch is alive.
  EXPECT_THROW((void)arch.activate_shadow(edge), sbk::ContractViolation);
  // Must be addressed by primary id.
  arch.network().fail_node(edge);
  EXPECT_THROW((void)arch.activate_shadow(arch.shadow_of(edge)),
               sbk::ContractViolation);
  EXPECT_NO_THROW((void)arch.activate_shadow(edge));
}

TEST(OneToOne, EdgeFailureKeepsRackAliveUnlikePlainFatTree) {
  // The whole point of paying for 1:1: dual-homed hosts survive an edge
  // switch failure.
  OneToOneBackup arch(FatTreeParams{.k = 4});
  const FatTree& ft = arch.fat_tree();
  net::NodeId edge = ft.edge(0, 0);
  net::NodeId h = ft.host(0, 0, 0);
  arch.network().fail_node(edge);
  EXPECT_FALSE(net::reachable(arch.network(), h, ft.host(1, 0, 0)));
  arch.activate_shadow(edge);
  EXPECT_TRUE(net::reachable(arch.network(), h, ft.host(1, 0, 0)));
}

TEST(OneToOne, GenericEcmpRoutesThroughActivatedShadows) {
  OneToOneBackup arch(FatTreeParams{.k = 4});
  const FatTree& ft = arch.fat_tree();
  routing::GenericEcmpRouter router(3);
  net::NodeId agg = ft.agg(1, 1);
  arch.network().fail_node(agg);
  arch.activate_shadow(agg);
  bool used_shadow = false;
  for (std::uint64_t f = 0; f < 32; ++f) {
    net::Path p = router.route(arch.network(), ft.host(1, 0, 0),
                               ft.host(2, 1, 1), f, nullptr);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.hops(), 6u);
    EXPECT_TRUE(net::is_live_path(arch.network(), p));
    if (net::path_uses_node(p, arch.shadow_of(agg))) used_shadow = true;
  }
  EXPECT_TRUE(used_shadow);
}

}  // namespace
}  // namespace sbk::topo
