// Epoch-validated routing caches. Routers keep candidate-path sets (and
// neighbor-link lookups) keyed by (src, dst) and stamped with the
// Network epoch they were computed under; a cached entry is served only
// while the network still reports that epoch, so cached results are
// bit-identical to a fresh computation by construction.
//
// Which epoch to key on:
//   * net::Network::topology_version() — changes on failures, repairs,
//     capacity edits, and rewiring. Use for live-filtered results
//     (candidate_paths with live_only = true).
//   * net::Network::structure_version() — changes only on rewiring
//     (add_link / retarget_link). Use for structural results
//     (live_only = false candidate sets, neighbor-link lookups), which
//     then survive failure churn untouched.
//
// Each cache is bound to one EpochSource at construction and reads that
// counter itself on every lookup. The earlier API took a raw epoch value
// from the caller, which let one instance be keyed on topology_version()
// in one call and structure_version() in another; because the counters
// are independent they can momentarily hold equal values, at which point
// the cache would serve a live-filtered set as if it were structural (or
// vice versa). Binding the source at construction makes that mix-up
// unrepresentable.
//
// Caches are per-router-instance and unsynchronized: the sweep engine's
// contract already requires routers to be scenario-private (see
// sweep::SweepRunner), so no locking is needed on the hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "net/path.hpp"
#include "util/flat_map.hpp"
#include "util/keys.hpp"

namespace sbk::routing {

/// Which Network version counter validates a cache's entries.
enum class EpochSource {
  kTopology,   ///< topology_version(): failures, repairs, capacity, rewiring
  kStructure,  ///< structure_version(): rewiring only
};

/// Reads the counter an EpochSource names.
[[nodiscard]] inline std::uint64_t epoch_of(const net::Network& net,
                                            EpochSource source) noexcept {
  return source == EpochSource::kTopology ? net.topology_version()
                                          : net.structure_version();
}

/// Cache of candidate-path sets per (src, dst) host pair, invalidated as
/// a whole when the bound epoch counter moves. The fill callback runs on
/// miss and its result is stored verbatim — element order included, so
/// hash selection over the cached vector equals hash selection over a
/// fresh enumeration.
///
/// Storage is a util::FlatKeyMap, so the returned entry is valid only
/// until the next lookup() on this cache (table growth relocates
/// values). lookup() returns a checked FlatKeyMap Ref that asserts on
/// dereference after such a relocation, so "consume the candidate set
/// before routing the next flow" is enforced at run time instead of by
/// comment.
class EpochPathCache {
 public:
  using Ref = util::FlatKeyMap<std::vector<net::Path>>::Ref;

  explicit EpochPathCache(EpochSource source) noexcept : source_(source) {}

  template <typename Fill>
  [[nodiscard]] Ref lookup(const net::Network& net, net::NodeId src,
                           net::NodeId dst, Fill&& fill) {
    const std::uint64_t epoch = epoch_of(net, source_);
    if (epoch != epoch_ || !valid_) {
      paths_.clear();
      epoch_ = epoch;
      valid_ = true;
    }
    const std::uint64_t key = util::pack_pair_key(src.value(), dst.value());
    return paths_.find_or_emplace_ref(key, std::forward<Fill>(fill));
  }

  /// Counter this cache validates against (fixed for its lifetime).
  [[nodiscard]] EpochSource source() const noexcept { return source_; }

  /// Entries currently held (exposed for tests pinning invalidation).
  [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }

 private:
  EpochSource source_;
  std::uint64_t epoch_ = 0;
  bool valid_ = false;  // first lookup always fills
  util::FlatKeyMap<std::vector<net::Path>> paths_;
};

/// Memoized Network::find_link, keyed on structure_version(): the
/// node-pair -> link mapping only changes when wiring changes, never on
/// failure flips, so greedy routers (F10) can resolve neighbor links in
/// O(1) during reroute storms instead of scanning adjacency lists.
/// Liveness (usable()) must still be checked by the caller per call.
class NeighborLinkCache {
 public:
  [[nodiscard]] std::optional<net::LinkId> find(const net::Network& net,
                                                net::NodeId a, net::NodeId b) {
    const std::uint64_t epoch = net.structure_version();
    if (epoch != epoch_ || !valid_) {
      links_.clear();
      epoch_ = epoch;
      valid_ = true;
    }
    const std::uint64_t key = util::pack_pair_key(a.value(), b.value());
    // Audited against FlatKeyMap's reference-validity contract: the
    // entry is copied into the optional return value before this call
    // returns, so no reference outlives a future rehash.
    return links_.find_or_emplace(key,
                                  [&net, a, b] { return net.find_link(a, b); });
  }

 private:
  std::uint64_t epoch_ = 0;
  bool valid_ = false;
  util::FlatKeyMap<std::optional<net::LinkId>> links_;
};

}  // namespace sbk::routing
