#include "faultinject/report_stream.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::faultinject {

using service::MessageKind;
using service::OperatorOp;
using service::ServiceMessage;

std::vector<ServiceMessage> build_report_stream(
    const FaultPlan& plan, const ReportStreamConfig& config) {
  SBK_EXPECTS(config.repeats >= 1);
  SBK_EXPECTS(config.resends >= 1);
  SBK_EXPECTS(config.resend_gap >= 0.0);
  SBK_EXPECTS(config.background_probes >= 0);
  SBK_EXPECTS(config.time_scale > 0.0);

  const Seconds horizon = plan.config.horizon;
  const Seconds spacing =
      config.repeat_spacing > 0.0 ? config.repeat_spacing : horizon;
  SBK_EXPECTS_MSG(spacing > 0.0, "repeat spacing must be positive");

  std::vector<ServiceMessage> out;
  auto emit = [&out, &config](ServiceMessage msg, Seconds at) {
    msg.at = at * config.time_scale;
    out.push_back(msg);
  };

  for (int r = 0; r < config.repeats; ++r) {
    const Seconds base = static_cast<Seconds>(r) * spacing;

    for (const SwitchFailureEvent& ev : plan.switch_failures) {
      for (int i = 0; i < config.resends; ++i) {
        ServiceMessage msg;
        msg.kind = MessageKind::kNodeFailureReport;
        msg.node = ev.node;
        msg.inject = i == 0;
        emit(msg, base + ev.at + static_cast<Seconds>(i) * config.resend_gap);
      }
    }

    for (const LinkFailureEvent& ev : plan.link_failures) {
      for (int i = 0; i < config.resends; ++i) {
        ServiceMessage msg;
        msg.kind = MessageKind::kLinkFailureReport;
        msg.link = ev.link;
        msg.bad_side = ev.bad_side;
        msg.inject = i == 0;
        emit(msg, base + ev.at + static_cast<Seconds>(i) * config.resend_gap);
      }
      if (config.sick_probe_followup) {
        ServiceMessage msg;
        msg.kind = MessageKind::kProbeResult;
        msg.link = ev.link;
        msg.healthy = false;
        emit(msg, base + ev.at +
                      static_cast<Seconds>(config.resends) *
                          config.resend_gap +
                      config.resend_gap);
      }
    }

    // Healthy background probes: telemetry spread evenly over the
    // window, probing the plan's own links round-robin.
    if (config.background_probes > 0 && !plan.link_failures.empty()) {
      const Seconds step =
          horizon / static_cast<Seconds>(config.background_probes);
      for (int i = 0; i < config.background_probes; ++i) {
        ServiceMessage msg;
        msg.kind = MessageKind::kProbeResult;
        msg.link =
            plan.link_failures[static_cast<std::size_t>(i) %
                               plan.link_failures.size()]
                .link;
        msg.healthy = true;
        emit(msg, base + (static_cast<Seconds>(i) + 0.5) * step);
      }
    }

    // Operator / repair-crew cadences.
    auto cadence = [&](Seconds interval, OperatorOp op) {
      if (interval <= 0.0) return;
      for (Seconds t = interval; t <= horizon; t += interval) {
        ServiceMessage msg;
        msg.kind = MessageKind::kOperatorCommand;
        msg.op = op;
        emit(msg, base + t);
      }
    };
    cadence(config.repair_interval, OperatorOp::kRepairAll);
    cadence(config.watchdog_interval, OperatorOp::kAckWatchdog);
    cadence(config.diagnosis_interval, OperatorOp::kRunDiagnosis);
    cadence(config.retry_interval, OperatorOp::kRetryParked);

    // Controller-cluster chaos: each planned crash becomes a crash
    // message at its event time and a repair message at its repair
    // time, every repeat — so failovers recur throughout the soak.
    if (config.cluster_events) {
      const std::size_t members =
          std::max<std::size_t>(plan.config.cluster_members, 1);
      for (const ControllerCrashEvent& ev : plan.controller_crashes) {
        const std::uint32_t target =
            ev.member == kPrimaryMember
                ? service::kClusterPrimary
                : static_cast<std::uint32_t>(ev.member % members);
        ServiceMessage crash;
        crash.kind = MessageKind::kControllerCrash;
        crash.member = target;
        emit(crash, base + ev.at);
        ServiceMessage repair;
        repair.kind = MessageKind::kControllerRepair;
        repair.member = target;
        emit(repair, base + ev.repair_at);
      }
    }
  }

  // Total admission order: arrival time, ties broken by generation
  // order (stable sort), then densely numbered seqs.
  std::stable_sort(out.begin(), out.end(),
                   [](const ServiceMessage& a, const ServiceMessage& b) {
                     return a.at < b.at;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].seq = static_cast<std::uint64_t>(i);
  }
  return out;
}

ReportStreamBreakdown breakdown(const std::vector<ServiceMessage>& stream) {
  ReportStreamBreakdown b;
  b.total = stream.size();
  for (const ServiceMessage& msg : stream) {
    switch (msg.kind) {
      case MessageKind::kNodeFailureReport:
        ++b.node_reports;
        break;
      case MessageKind::kLinkFailureReport:
        ++b.link_reports;
        break;
      case MessageKind::kProbeResult:
        ++b.probe_results;
        break;
      case MessageKind::kOperatorCommand:
        ++b.operator_commands;
        break;
      case MessageKind::kControllerCrash:
      case MessageKind::kControllerRepair:
        ++b.cluster_events;
        break;
    }
  }
  b.failure_reports = b.node_reports + b.link_reports;
  if (!stream.empty()) b.span = stream.back().at;
  return b;
}

}  // namespace sbk::faultinject
