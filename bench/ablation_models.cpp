// Ablation A1 — simulation-model sensitivity: the same single-failure
// scenario evaluated under three network models:
//
//   * fluid, global max-min fairness (ideal congestion control);
//   * fluid, per-link equal share (TCP-under-ECMP approximation);
//   * packet-level with the TCP-Reno-like transport (the paper's class
//     of simulator; 200 ms RTO floor).
//
// The paper's orders-of-magnitude CCT slowdowns come from transport
// dynamics (timeouts during blackholes and congestion), which fluid
// models compress. This bench quantifies that: who shows how much
// slowdown for the *same* failure.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "pktsim/packet_sim.hpp"
#include "routing/global_reroute.hpp"
#include "sim/fluid_sim.hpp"
#include "topo/fat_tree.hpp"
#include "util/stats.hpp"
#include "workload/coflow_gen.hpp"

using namespace sbk;

namespace {

constexpr double kUnitBps = 1.25e8;  // 1 unit = 1 Gbps (small testbed)

topo::FatTreeParams testbed(int k) {
  topo::FatTreeParams p{.k = k};
  p.hosts_per_edge = 1;
  p.host_link_capacity = 4.0 * (k / 2);
  return p;
}

std::vector<sim::FlowSpec> burst_workload(const topo::FatTree& ft) {
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = 60;
  wp.duration = 2.0;             // a dense 2-second burst window
  wp.reducer_bytes_xm = 2e5;     // 200 KB scale: many latency-bound coflows
  wp.reducer_bytes_cap = 2e7;    // 20 MB elephants
  Rng rng(515);
  return workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
}

std::map<sim::CoflowId, double> ccts_of(
    const std::vector<sim::FlowResult>& results) {
  std::map<sim::CoflowId, double> out;
  for (const auto& c : sim::aggregate_coflows(results)) {
    if (c.all_completed && c.cct() > 0.0) out[c.id] = c.cct();
  }
  return out;
}

struct ModelRow {
  const char* model;
  Summary slowdown;
  std::size_t unfinished = 0;
};

void print_row(const ModelRow& r) {
  std::printf("%-28s n=%4zu  p50=%7.2f  p90=%7.2f  p99=%8.2f  max=%9.2f  "
              "unfinished=%zu\n",
              r.model, r.slowdown.count(), r.slowdown.percentile(50),
              r.slowdown.percentile(90), r.slowdown.percentile(99),
              r.slowdown.max(), r.unfinished);
  bench::csv_row({r.model, bench::fmt(r.slowdown.percentile(50)),
                  bench::fmt(r.slowdown.percentile(90)),
                  bench::fmt(r.slowdown.percentile(99)),
                  bench::fmt(r.slowdown.max())});
}

void collect(const std::map<sim::CoflowId, double>& healthy,
             const std::map<sim::CoflowId, double>& failed, ModelRow& row) {
  for (const auto& [id, base] : healthy) {
    auto it = failed.find(id);
    if (it == failed.end()) {
      ++row.unfinished;
    } else {
      row.slowdown.add(it->second / base);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 4));
  bench::banner("A1 / ablation — fluid vs packet-level failure impact",
                "Identical trace + single edge-switch failure (100 ms "
                "outage) under three network models.");

  // The failure: an edge switch (one rack) down for 100 ms mid-burst —
  // short enough that every model completes, long enough to bite.
  const Seconds fail_at = 0.5;
  const Seconds repair_at = 0.6;

  auto scenario = [&](auto& simulator, net::NodeId victim) {
    simulator.at(fail_at, [victim](net::Network& n) { n.fail_node(victim); });
    simulator.at(repair_at,
                 [victim](net::Network& n) { n.restore_node(victim); });
  };

  ModelRow maxmin{"fluid max-min", {}, 0};
  ModelRow equal{"fluid equal-share", {}, 0};
  ModelRow packet{"packet-level (RTO 200ms)", {}, 0};

  // --- fluid runs ----------------------------------------------------------
  for (ModelRow* row : {&maxmin, &equal}) {
    sim::SimConfig cfg;
    cfg.unit_bytes_per_second = kUnitBps;
    cfg.allocation = row == &maxmin
                         ? sim::AllocationModel::kMaxMinFair
                         : sim::AllocationModel::kPerLinkEqualShare;
    topo::FatTree ft(testbed(k));
    auto flows = burst_workload(ft);
    routing::EcmpWithGlobalRerouteRouter router(ft, 1);
    std::map<sim::CoflowId, double> healthy, failed;
    {
      sim::FluidSimulator s(ft.network(), router, cfg);
      s.add_flows(flows);
      healthy = ccts_of(s.run());
    }
    {
      sim::FluidSimulator s(ft.network(), router, cfg);
      s.add_flows(flows);
      scenario(s, ft.edge(0, 0));
      failed = ccts_of(s.run());
    }
    collect(healthy, failed, *row);
  }

  // --- packet-level run ------------------------------------------------------
  {
    pktsim::PktSimConfig cfg;
    cfg.unit_bytes_per_second = kUnitBps;
    topo::FatTree ft(testbed(k));
    auto flows = burst_workload(ft);
    routing::EcmpWithGlobalRerouteRouter router(ft, 1);
    std::map<sim::CoflowId, double> healthy, failed;
    {
      pktsim::PacketSimulator s(ft.network(), router, cfg);
      s.add_flows(flows);
      healthy = ccts_of(s.run());
    }
    {
      pktsim::PacketSimulator s(ft.network(), router, cfg);
      s.add_flows(flows);
      scenario(s, ft.edge(0, 0));
      failed = ccts_of(s.run());
      std::printf("packet-level transport during failure: %zu timeouts, "
                  "%zu fast retransmits, %zu dead-element drops\n\n",
                  s.stats().timeouts, s.stats().fast_retransmits,
                  s.stats().drops_dead_element);
    }
    collect(healthy, failed, packet);
  }

  std::printf("CCT slowdown (failed / healthy), all coflows:\n");
  print_row(maxmin);
  print_row(equal);
  print_row(packet);
  std::printf(
      "\nReading: the fluid models bound the slowdown by the lost capacity\n"
      "ratio; the packet model adds RTO stalls — affected small coflows\n"
      "pay >= 200 ms against ~ms baselines, reproducing the paper's\n"
      "orders-of-magnitude tail even for sub-partition outages.\n");
  return 0;
}
