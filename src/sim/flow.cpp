#include "sim/flow.hpp"

#include <algorithm>
#include <unordered_map>

namespace sbk::sim {

std::vector<CoflowResult> aggregate_coflows(
    const std::vector<FlowResult>& flows) {
  std::unordered_map<CoflowId, CoflowResult> by_id;
  for (const FlowResult& f : flows) {
    if (f.spec.coflow == kNoCoflow) continue;
    CoflowResult& c = by_id[f.spec.coflow];
    if (c.flow_count == 0) {
      c.id = f.spec.coflow;
      c.arrival = f.spec.start;
    }
    ++c.flow_count;
    c.arrival = std::min(c.arrival, f.spec.start);
    if (f.outcome == FlowOutcome::kCompleted) {
      ++c.completed;
      c.finish = std::max(c.finish, f.finish);
    }
  }
  std::vector<CoflowResult> out;
  out.reserve(by_id.size());
  for (auto& [id, c] : by_id) {
    c.all_completed = (c.completed == c.flow_count);
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const CoflowResult& a, const CoflowResult& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace sbk::sim
