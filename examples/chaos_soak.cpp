// Chaos soak driver: randomized control-plane fault schedules across
// many seeds, with end-of-run robustness invariants checked per
// scenario. Exits non-zero when any invariant is violated, so CI can
// gate on it.
//
//   chaos_soak [scenarios] [master_seed] [k] [backups] [threads]
//              [--trace=out.json] [--telemetry=out.csv]
//
// Defaults: 200 scenarios, seed 1, k=4 fat-tree, 1 backup per group,
// auto threads. A failing seed reproduces exactly with
// run_chaos_scenario (see src/faultinject/chaos_soak.hpp).
//
// --trace records a flight-recorder trace of every scenario (one
// Perfetto track per scenario index) viewable in chrome://tracing or
// ui.perfetto.dev, and implies per-scenario telemetry sampling;
// --telemetry additionally writes the merged time-series CSV.
//
// --slo evaluates a recovery-latency SLO per scenario (paper target:
// sub-millisecond recovery) with burn-rate alerting, prints the merged
// attainment/alert totals, and --health=FILE dumps the end-state
// health snapshots as a JSON array. --slo is exclusive with --trace /
// --telemetry (the soak overloads are separate).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "faultinject/chaos_soak.hpp"
#include "util/cli.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "chaos_soak: %s\n", error.c_str());
  std::fprintf(stderr,
               "usage: chaos_soak [scenarios] [master_seed] [k] [backups]"
               " [threads]\n"
               "                  [--trace=out.json] [--telemetry=out.csv]\n"
               "                  [--slo] [--health=out.json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const sbk::cli::ParseResult args = sbk::cli::parse_args(
      argc, argv,
      {{"trace", true}, {"telemetry", true}, {"slo", false},
       {"health", true}},
      /*max_positional=*/5);
  if (!args.ok()) return usage(args.error);

  sbk::faultinject::ChaosSoakConfig cfg;
  const std::string trace_path = args.value_of("trace").value_or("");
  const std::string telemetry_path = args.value_of("telemetry").value_or("");
  const bool slo = args.has("slo") || args.has("health");
  const std::string health_path = args.value_of("health").value_or("");
  auto arg = [&args](std::size_t i, long long fallback,
                     std::optional<long long>& slot) {
    if (args.positional.size() <= i) { slot = fallback; return; }
    slot = sbk::cli::parse_int(args.positional[i]);
  };
  std::optional<long long> scenarios, seed, k, backups, threads;
  arg(0, 200, scenarios);
  arg(1, 1, seed);
  arg(2, 4, k);
  arg(3, 1, backups);
  arg(4, 0, threads);
  if (!scenarios || !seed || !k || !backups || !threads) {
    return usage("positional arguments must be integers");
  }
  cfg.scenarios = static_cast<std::size_t>(*scenarios);
  cfg.master_seed = static_cast<std::uint64_t>(*seed);
  cfg.k = static_cast<int>(*k);
  cfg.backups_per_group = static_cast<int>(*backups);
  cfg.threads = static_cast<std::size_t>(*threads);
  cfg.obs.trace = !trace_path.empty() || !telemetry_path.empty();
  cfg.obs.slo = slo;
  if (cfg.obs.trace && cfg.obs.slo) {
    return usage("--slo/--health cannot be combined with --trace/--telemetry");
  }

  std::cout << "running " << cfg.scenarios << " chaos scenarios (seed "
            << cfg.master_seed << ", k=" << cfg.k << ", n="
            << cfg.backups_per_group << ")...\n";
  sbk::faultinject::ChaosSoakReport report;
  if (cfg.obs.trace) {
    // Merged recorder: big enough to keep every scenario's events (the
    // per-scenario rings already bound each contribution).
    sbk::obs::FlightRecorder trace(
        /*enabled=*/true, cfg.obs.trace_capacity * cfg.scenarios);
    sbk::obs::TelemetryTable telemetry(/*enabled=*/true);
    report = sbk::faultinject::run_chaos_soak(cfg, trace, telemetry);
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      trace.write_trace_json(out);
      if (!out.good()) {
        std::cerr << "failed to write trace to " << trace_path << "\n";
        return 2;
      }
      std::cout << "wrote " << trace.events().size() << " trace events to "
                << trace_path << " (load in chrome://tracing)\n";
    }
    if (!telemetry_path.empty()) {
      std::ofstream out(telemetry_path);
      telemetry.write_csv(out);
      if (!out.good()) {
        std::cerr << "failed to write telemetry to " << telemetry_path
                  << "\n";
        return 2;
      }
      std::cout << "wrote " << telemetry.rows() << " telemetry rows to "
                << telemetry_path << "\n";
    }
  } else if (cfg.obs.slo) {
    sbk::obs::slo::SloMonitor monitor = sbk::faultinject::make_chaos_slo(cfg);
    sbk::obs::slo::HealthLog health;
    report = sbk::faultinject::run_chaos_soak(cfg, monitor, health);
    std::cout << "slo: recovery_latency p99 < "
              << cfg.obs.recovery_latency_bound * 1e3 << " ms-equivalent"
              << " (budget " << cfg.obs.recovery_budget << "): attainment "
              << monitor.attainment(0) << " over "
              << monitor.good_total(0) + monitor.bad_total(0)
              << " recoveries, " << monitor.breach_count(0) << " breaches, "
              << monitor.clear_count(0) << " clears, "
              << monitor.alerts().size() << " alert events\n";
    if (!health_path.empty()) {
      std::ofstream out(health_path);
      health.write_json(out);
      if (!out.good()) {
        std::cerr << "failed to write health snapshots to " << health_path
                  << "\n";
        return 2;
      }
      std::cout << "wrote " << health.size() << " health snapshots to "
                << health_path << "\n";
    }
  } else {
    report = sbk::faultinject::run_chaos_soak(cfg);
  }
  std::cout << report.summary();
  return report.clean() ? 0 : 1;
}
