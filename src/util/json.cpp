#include "util/json.hpp"

#include <cstdio>

namespace sbk {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sbk
