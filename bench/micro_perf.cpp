// Experiment E10 — google-benchmark micro-benchmarks of the library's
// hot paths: max-min allocation, path enumeration and routing, fabric
// failover, offline diagnosis, table lookups, and whole fluid-sim runs.
#include <benchmark/benchmark.h>

#include "control/diagnosis.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"
#include "pktsim/packet_sim.hpp"
#include "routing/ecmp.hpp"
#include "routing/global_reroute.hpp"
#include "routing/impersonation.hpp"
#include "sharebackup/fabric.hpp"
#include "sharebackup/leaf_spine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/max_min.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"
#include "workload/coflow_gen.hpp"

using namespace sbk;

namespace {

void BM_FatTreeBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topo::FatTree ft(topo::FatTreeParams{.k = k});
    benchmark::DoNotOptimize(ft.network().link_count());
  }
}
BENCHMARK(BM_FatTreeBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_FabricBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sharebackup::FabricParams p;
    p.fat_tree.k = k;
    p.backups_per_group = 1;
    sharebackup::Fabric fabric(p);
    benchmark::DoNotOptimize(fabric.circuit_switch_count());
  }
}
BENCHMARK(BM_FabricBuild)->Arg(8)->Arg(16);

void BM_EcmpRoute(benchmark::State& state) {
  topo::FatTree ft(topo::FatTreeParams{.k = static_cast<int>(state.range(0))});
  routing::EcmpRouter router(ft);
  std::uint64_t id = 0;
  for (auto _ : state) {
    net::Path p = router.route(ft.network(), ft.host(0),
                               ft.host(ft.host_count() / 2), id++, nullptr);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_EcmpRoute)->Arg(8)->Arg(16)->Arg(32);

void BM_EcmpRouteCached(benchmark::State& state) {
  // Warm-cache routing across a spread of (src, dst) pairs: after the
  // first visit each pair costs a hash probe plus an indexed path copy.
  // Contrast with BM_EcmpRoute, whose first iteration pays enumeration.
  topo::FatTree ft(topo::FatTreeParams{.k = static_cast<int>(state.range(0))});
  routing::EcmpRouter router(ft);
  constexpr std::size_t kPairs = 64;
  const int hosts = ft.host_count();
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  pairs.reserve(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    int a = static_cast<int>((i * 37) % static_cast<std::size_t>(hosts));
    int b = static_cast<int>((i * 61 + hosts / 2) %
                             static_cast<std::size_t>(hosts));
    if (a == b) b = (b + 1) % hosts;
    pairs.emplace_back(ft.host(a), ft.host(b));
    (void)router.route(ft.network(), ft.host(a), ft.host(b), i, nullptr);
  }
  std::uint64_t id = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[id % kPairs];
    net::Path p = router.route(ft.network(), src, dst, id++, nullptr);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_EcmpRouteCached)->Arg(8)->Arg(16)->Arg(32);

void BM_GlobalRerouteAffected(benchmark::State& state) {
  topo::FatTree ft(topo::FatTreeParams{.k = 16});
  routing::EcmpWithGlobalRerouteRouter router(ft);
  routing::LinkLoads loads(ft.network().link_count());
  ft.network().fail_node(ft.core(0));
  std::uint64_t id = 0;
  for (auto _ : state) {
    net::Path p = router.route(ft.network(), ft.host(0),
                               ft.host(ft.host_count() - 1), id++, &loads);
    benchmark::DoNotOptimize(p.hops());
  }
}
BENCHMARK(BM_GlobalRerouteAffected);

void BM_MaxMinAllocation(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  topo::FatTree ft(topo::FatTreeParams{.k = 16});
  routing::EcmpRouter router(ft);
  Rng rng(1);
  std::vector<sim::Demand> demands;
  for (std::size_t f = 0; f < flows; ++f) {
    net::NodeId src = ft.host(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(ft.host_count()))));
    net::NodeId dst = ft.host(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(ft.host_count()))));
    if (src == dst) continue;
    net::Path p = router.route(ft.network(), src, dst, f, nullptr);
    demands.push_back(sim::Demand{p.directed_links(ft.network())});
  }
  // Hot-path idiom: one solver instance, scratch reused across calls —
  // exactly how FluidSimulator drives it.
  sim::MaxMinSolver solver;
  std::vector<double> rates;
  for (auto _ : state) {
    solver.begin(ft.network(), demands.size());
    for (const sim::Demand& d : demands) solver.add_demand(d.links);
    solver.solve_into(rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(demands.size()));
}
BENCHMARK(BM_MaxMinAllocation)->Arg(64)->Arg(256)->Arg(1024);

void BM_FabricFailover(benchmark::State& state) {
  sharebackup::FabricParams p;
  p.fat_tree.k = 16;
  p.backups_per_group = 1;
  sharebackup::Fabric fabric(p);
  topo::SwitchPosition pos{topo::Layer::kAgg, 0, 0};
  for (auto _ : state) {
    auto r = fabric.fail_over(pos);
    benchmark::DoNotOptimize(r->circuit_switches_touched);
    // Undo so the pool never exhausts: the replaced device is "repaired".
    fabric.return_to_pool(r->failed_device);
  }
}
BENCHMARK(BM_FabricFailover);

void BM_OfflineDiagnosis(benchmark::State& state) {
  sharebackup::FabricParams p;
  p.fat_tree.k = 8;
  p.backups_per_group = 2;
  sharebackup::Fabric fabric(p);
  control::DiagnosisEngine engine(fabric);
  // Take an edge/agg pair offline once; diagnose repeatedly.
  auto fe = fabric.fail_over({topo::Layer::kEdge, 0, 0});
  auto fa = fabric.fail_over({topo::Layer::kAgg, 0, 0});
  std::size_t cs = fabric.cs_index(2, 0, 0);
  for (auto _ : state) {
    auto r = engine.diagnose_link(fe->failed_device, fa->failed_device, cs);
    benchmark::DoNotOptimize(r.circuit_operations);
  }
}
BENCHMARK(BM_OfflineDiagnosis);

void BM_CombinedTableLookup(benchmark::State& state) {
  routing::TwoLevelTableBuilder builder(64);
  routing::TwoLevelTable table = builder.combined_edge_table(0);
  int h = 0;
  for (auto _ : state) {
    auto port = table.lookup(routing::HostAddr{5, 3, h++ % 32}, h % 32,
                             /*require_tag_match=*/true);
    benchmark::DoNotOptimize(port);
  }
}
BENCHMARK(BM_CombinedTableLookup);

void BM_ForwardingWalk(benchmark::State& state) {
  routing::ImpersonationStore store(16, 1);
  routing::ForwardingSim sim(store);
  int i = 0;
  for (auto _ : state) {
    auto t = sim.walk(routing::HostAddr{0, 0, i % 8},
                      routing::HostAddr{15, 7, (i + 3) % 8});
    benchmark::DoNotOptimize(t.delivered);
    ++i;
  }
}
BENCHMARK(BM_ForwardingWalk);

void BM_EventQueueDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    Rng rng(7);
    auto& eng = rng.engine();
    std::uint64_t sink = 0;
    // The payload pushes the callback past the small-buffer size of
    // std::function, so each heap sift moves (or, before the fix,
    // copied) a heap allocation.
    struct Payload {
      std::uint64_t a, b, c, d, e, f;
    };
    for (std::size_t i = 0; i < n; ++i) {
      Payload p{eng(), eng(), eng(), eng(), eng(), eng()};
      Seconds at = static_cast<double>(eng() % 1000000) * 1e-6;
      q.schedule_at(at, [&sink, p] { sink += p.a ^ p.f; });
    }
    state.ResumeTiming();
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueDrain)->Arg(1024)->Arg(16384);

void BM_FluidSimCoflowTrace(benchmark::State& state) {
  // Setup (topology, router, trace expansion) is hoisted out of the loop:
  // the old per-iteration PauseTiming()/ResumeTiming() pair costs ~100ns
  // of timer overhead per iteration and distorts sub-millisecond numbers.
  // The trace is deterministic (fixed seed), so one pre-built trace is
  // what every iteration would have rebuilt anyway. Simulator
  // construction stays inside the timed region — it is part of the cost
  // of running a scenario, and simulators are single-shot.
  const auto coflows = static_cast<std::size_t>(state.range(0));
  topo::FatTreeParams ftp{.k = 8};
  ftp.hosts_per_edge = 1;
  ftp.host_link_capacity = 40.0;
  topo::FatTree ft(ftp);
  routing::EcmpRouter router(ft);
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 60.0;
  Rng rng(5);
  const auto flows =
      workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
  for (auto _ : state) {
    sim::FluidSimulator simulator(ft.network(), router, sim::SimConfig{});
    simulator.add_flows(flows);
    auto results = simulator.run();
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_FluidSimCoflowTrace)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FlightRecorderDisabled(benchmark::State& state) {
  // The flight recorder's disabled-mode contract: a simulation with a
  // disabled recorder and sampler ATTACHED must run at the speed of one
  // that never heard of them (every hook is a single branch). This is
  // the same workload as BM_FluidSimCoflowTrace(60); bench.sh asserts
  // the two stay within the regression tolerance of each other.
  const auto coflows = static_cast<std::size_t>(state.range(0));
  topo::FatTreeParams ftp{.k = 8};
  ftp.hosts_per_edge = 1;
  ftp.host_link_capacity = 40.0;
  topo::FatTree ft(ftp);
  routing::EcmpRouter router(ft);
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 60.0;
  Rng rng(5);
  const auto flows =
      workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
  obs::FlightRecorder recorder(/*enabled=*/false);
  obs::TelemetrySampler sampler(0.01, /*enabled=*/false);
  for (auto _ : state) {
    sim::FluidSimulator simulator(ft.network(), router, sim::SimConfig{});
    simulator.attach_recorder(&recorder);
    simulator.attach_telemetry(&sampler);
    simulator.add_flows(flows);
    auto results = simulator.run();
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_FlightRecorderDisabled)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_PacketSimThroughput(benchmark::State& state) {
  // Packets simulated per second of wall time for one bulk transfer.
  // Router and config are hoisted; the simulator itself is single-shot
  // and constructed inside the timed region (no Pause/Resume overhead).
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft);
  pktsim::PktSimConfig cfg;
  cfg.unit_bytes_per_second = 1.25e8;
  cfg.min_rto = milliseconds(10);
  std::int64_t packets = 0;
  for (auto _ : state) {
    pktsim::PacketSimulator sim(ft.network(), router, cfg);
    sim.add_flow(sim::FlowSpec{1, ft.host(0), ft.host(8), 4e6, 0.0});
    auto results = sim.run();
    benchmark::DoNotOptimize(results.size());
    packets += static_cast<std::int64_t>(sim.stats().data_packets_sent +
                                         sim.stats().acks_sent);
  }
  state.SetItemsProcessed(packets);  // simulated packets per wall second
}
BENCHMARK(BM_PacketSimThroughput)->Unit(benchmark::kMillisecond);

void BM_LeafSpineFailover(benchmark::State& state) {
  sharebackup::LeafSpineParams p;
  p.leaves = 16;
  p.spines = 8;
  p.hosts_per_leaf = 8;
  p.group_size = 8;
  p.backups_per_group = 1;
  sharebackup::LeafSpineFabric fabric(p);
  sharebackup::LsPosition pos{sharebackup::LsTier::kLeaf, 3};
  for (auto _ : state) {
    auto r = fabric.fail_over(pos);
    benchmark::DoNotOptimize(r->circuit_switches_touched);
    fabric.return_to_pool(r->failed_device);
  }
}
BENCHMARK(BM_LeafSpineFailover);

}  // namespace

BENCHMARK_MAIN();
