// Experiment E8 — §5.3: recovery-latency comparison. Two parts:
//   1. the analytic component model (detection + notification + decision
//      + reconfiguration) for ShareBackup (crosspoint / 2D-MEMS), F10 /
//      Aspen local rerouting, and fat-tree global rerouting;
//   2. a discrete-event measurement: crash a switch at random phases
//      against the keep-alive detector and measure injected-to-recovered
//      time through the actual controller.
#include <cstdio>

#include "bench_util.hpp"
#include "control/controller.hpp"
#include "control/failure_detector.hpp"
#include "control/recovery_latency.hpp"
#include "sharebackup/fabric.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace sbk;

int main(int argc, char** argv) {
  const auto samples =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "samples", 200));
  bench::banner("E8 / §5.3 — recovery latency",
                "Component model + DES measurement (1 ms probes, 3-miss "
                "detection, sub-ms control channels).");

  control::LatencyModelParams p;
  std::printf("%-24s %12s %12s %12s %14s %12s\n", "scheme", "detect",
              "notify", "decide", "reconfigure", "total");
  for (const auto& b : control::latency_comparison(p)) {
    std::printf("%-24s %9.3f ms %9.3f ms %9.3f ms %11.6f ms %9.3f ms\n",
                b.scheme.c_str(), b.detection * 1e3, b.notification * 1e3,
                b.decision * 1e3, b.reconfiguration * 1e3, b.total() * 1e3);
    bench::csv_row({b.scheme, bench::fmt(b.detection, 6),
                    bench::fmt(b.notification, 6), bench::fmt(b.decision, 6),
                    bench::fmt(b.reconfiguration, 6),
                    bench::fmt(b.total(), 6)});
  }

  // --- DES measurement ----------------------------------------------------
  std::printf("\nMeasured end-to-end (crash -> keep-alive misses -> "
              "controller -> circuits), %zu random crash phases:\n",
              samples);
  Summary measured;
  Rng rng(3);
  for (std::size_t s = 0; s < samples; ++s) {
    sharebackup::FabricParams fp;
    fp.fat_tree.k = 4;
    fp.backups_per_group = 1;
    sharebackup::Fabric fabric(fp);
    control::Controller ctrl(fabric, control::ControllerConfig{});
    sim::EventQueue q;
    control::FailureDetector det(q, fabric.network(),
                                 control::DetectorConfig{});
    topo::SwitchPosition pos{topo::Layer::kCore, -1,
                             static_cast<int>(rng.uniform_index(4))};
    net::NodeId victim = fabric.node_at(pos);
    Seconds crash = rng.uniform_real(0.001, 0.002);
    Seconds recovered_at = -1.0;
    det.on_node_failure([&](net::NodeId, Seconds t) {
      auto out = ctrl.on_switch_failure(pos);
      if (out.recovered) recovered_at = t + out.control_latency;
    });
    det.watch_node(victim, 0.05);
    q.schedule_at(crash, [&] { fabric.network().fail_node(victim); });
    q.run();
    if (recovered_at > 0) measured.add((recovered_at - crash) * 1e3);
  }
  std::printf("  recovery time: mean %.3f ms, p50 %.3f ms, p99 %.3f ms, "
              "max %.3f ms\n",
              measured.mean(), measured.median(), measured.percentile(99),
              measured.max());
  bench::csv_row({"measured-ms", bench::fmt(measured.mean()),
                  bench::fmt(measured.median()),
                  bench::fmt(measured.percentile(99)),
                  bench::fmt(measured.max())});
  std::printf(
      "\nPaper's claim: detection dominates for every scheme (same probing\n"
      "interval), and ShareBackup's post-detection work (sub-ms control\n"
      "messages + 70 ns / 40 us circuit reset) keeps it as fast as F10 and\n"
      "Aspen Tree local rerouting, which must install a ~1 ms SDN rule.\n");
  return 0;
}
