#include "obs/slo/slo_monitor.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace sbk::obs::slo {

namespace {

[[nodiscard]] double burn_rate(std::uint64_t good, std::uint64_t bad,
                               double budget) noexcept {
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  const double frac = static_cast<double>(bad) / static_cast<double>(total);
  return frac / budget;
}

}  // namespace

std::size_t SloMonitor::add_objective(SloObjectiveConfig cfg) {
  SBK_EXPECTS(!cfg.name.empty());
  SBK_EXPECTS(cfg.budget > 0.0);
  SBK_EXPECTS(cfg.window > 0.0);
  SBK_EXPECTS(cfg.steps >= 1);
  SBK_EXPECTS(cfg.short_steps >= 1 && cfg.short_steps <= cfg.steps);
  SBK_EXPECTS(cfg.burn_factor > 0.0);
  SBK_EXPECTS(cfg.clear_factor > 0.0);
  Objective o;
  o.step_len = cfg.window / static_cast<double>(cfg.steps);
  o.ring.assign(cfg.steps, StepCell{});
  o.cfg = std::move(cfg);
  objectives_.push_back(std::move(o));
  return objectives_.size() - 1;
}

SloMonitor::Objective& SloMonitor::open_step(std::size_t obj, Seconds at) {
  SBK_EXPECTS(obj < objectives_.size());
  Objective& o = objectives_[obj];
  const auto step = static_cast<std::int64_t>(std::floor(at / o.step_len));
  if (o.cur_step == kNoStep) {
    o.cur_step = step;
  } else if (step > o.cur_step) {
    roll_to(obj, step);
  }
  // Timestamps at or before the open step (replays stamped at a seat
  // time inside the current batch) fold into the open cell.
  return o;
}

void SloMonitor::roll_to(std::size_t idx, std::int64_t target_step) {
  Objective& o = objectives_[idx];
  const auto steps = static_cast<std::int64_t>(o.cfg.steps);
  // Beyond steps+1 boundaries with no new events the ring is empty and
  // the alert state is settled (a pending clear fires within
  // short_steps+1 empty boundaries), so further evaluations are no-ops:
  // evaluate the first steps+1, then jump. This keeps long idle gaps
  // O(steps) while producing the exact alert sequence full iteration
  // would.
  std::int64_t bounded = target_step;
  const bool jump = target_step - o.cur_step > steps + 1;
  if (jump) bounded = o.cur_step + steps + 1;
  while (o.cur_step < bounded) {
    evaluate_boundary(idx, o.cur_step);
    ++o.cur_step;
    StepCell& cell =
        o.ring[static_cast<std::size_t>(o.cur_step % steps)];
    o.win_good -= cell.good;
    o.win_bad -= cell.bad;
    cell = StepCell{};
  }
  if (jump) o.cur_step = target_step;  // ring is known-empty here
}

void SloMonitor::record_good(std::size_t obj, Seconds at, std::uint64_t n) {
  if (n == 0) return;
  Objective& o = open_step(obj, at);
  o.ring[static_cast<std::size_t>(o.cur_step %
                                  static_cast<std::int64_t>(o.cfg.steps))]
      .good += n;
  o.win_good += n;
  o.total_good += n;
}

void SloMonitor::record_bad(std::size_t obj, Seconds at, std::uint64_t n) {
  if (n == 0) return;
  Objective& o = open_step(obj, at);
  o.ring[static_cast<std::size_t>(o.cur_step %
                                  static_cast<std::int64_t>(o.cfg.steps))]
      .bad += n;
  o.win_bad += n;
  o.total_bad += n;
}

void SloMonitor::record_latency(std::size_t obj, Seconds at, Seconds value) {
  SBK_EXPECTS(obj < objectives_.size());
  SBK_EXPECTS(objectives_[obj].cfg.kind == ObjectiveKind::kLatency);
  if (value > objectives_[obj].cfg.threshold) {
    record_bad(obj, at);
  } else {
    record_good(obj, at);
  }
}

void SloMonitor::advance_to(Seconds at) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    Objective& o = objectives_[i];
    if (o.cur_step == kNoStep) continue;  // no events yet: nothing to evaluate
    const auto step = static_cast<std::int64_t>(std::floor(at / o.step_len));
    if (step > o.cur_step) roll_to(i, step);
  }
}

void SloMonitor::finish(Seconds at) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    Objective& o = objectives_[i];
    advance_to(at + o.cfg.window + o.step_len);
    if (recorder_ != nullptr) {
      std::ostringstream detail;
      detail << std::setprecision(17) << "objective=" << o.cfg.name
             << ";good=" << o.total_good << ";bad=" << o.total_bad
             << ";attainment=" << attainment(i)
             << ";breaches=" << o.breach_count
             << ";clears=" << o.clear_count;
      recorder_->instant("slo", "slo_attainment", at, detail.str());
    }
  }
}

void SloMonitor::evaluate_boundary(std::size_t idx, std::int64_t closed_step) {
  Objective& o = objectives_[idx];
  const SloObjectiveConfig& cfg = o.cfg;
  const Seconds at = static_cast<double>(closed_step + 1) * o.step_len;
  std::uint64_t short_good = 0;
  std::uint64_t short_bad = 0;
  for (std::uint32_t i = 0; i < cfg.short_steps; ++i) {
    const std::int64_t s = closed_step - static_cast<std::int64_t>(i);
    if (s < 0) break;
    const StepCell& cell =
        o.ring[static_cast<std::size_t>(s % static_cast<std::int64_t>(cfg.steps))];
    short_good += cell.good;
    short_bad += cell.bad;
  }
  const double burn_long = burn_rate(o.win_good, o.win_bad, cfg.budget);
  const double burn_short = burn_rate(short_good, short_bad, cfg.budget);

  bool fire = false;
  bool breach = false;
  if (!o.breached) {
    if (o.win_good + o.win_bad >= cfg.min_events &&
        burn_long >= cfg.burn_factor && burn_short >= cfg.burn_factor) {
      fire = true;
      breach = true;
      o.breached = true;
      ++o.breach_count;
    }
  } else if (burn_short < cfg.clear_factor) {
    fire = true;
    o.breached = false;
    ++o.clear_count;
  }
  if (!fire) return;

  SloAlert alert;
  alert.objective = idx;
  alert.breach = breach;
  alert.at = at;
  alert.burn_long = burn_long;
  alert.burn_short = burn_short;
  if (breach && tracer_ != nullptr) {
    alert.incidents = overlapping_incidents(at - cfg.window, at);
  }
  if (recorder_ != nullptr) {
    std::ostringstream detail;
    detail << std::setprecision(6) << "objective=" << cfg.name
           << ";burn_long=" << burn_long << ";burn_short=" << burn_short;
    if (!alert.incidents.empty()) {
      detail << ";incidents=";
      for (std::size_t i = 0; i < alert.incidents.size(); ++i) {
        if (i != 0) detail << '+';
        detail << alert.incidents[i];
      }
    }
    recorder_->instant("slo", breach ? "slo_breach" : "slo_clear", at,
                       detail.str());
  }
  alerts_.push_back(std::move(alert));
}

std::vector<std::size_t> SloMonitor::overlapping_incidents(
    Seconds window_start, Seconds window_end) const {
  std::vector<std::size_t> ids;
  for (const RecoveryIncident& inc : tracer_->incidents()) {
    if (inc.injected_at > window_end) continue;
    if (inc.closed && inc.recovered_at < window_start) continue;
    ids.push_back(inc.id);
  }
  return ids;
}

double SloMonitor::attainment(std::size_t obj) const {
  const Objective& o = objectives_[obj];
  const std::uint64_t total = o.total_good + o.total_bad;
  if (total == 0) return 1.0;
  return static_cast<double>(o.total_good) / static_cast<double>(total);
}

SloMonitor SloMonitor::clone_config() const {
  SloMonitor fresh;
  for (const Objective& o : objectives_) fresh.add_objective(o.cfg);
  return fresh;
}

void SloMonitor::merge(const SloMonitor& other, std::uint32_t track) {
  SBK_EXPECTS_MSG(objectives_.size() == other.objectives_.size(),
                  "SloMonitor::merge requires identical objective sets");
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    Objective& mine = objectives_[i];
    const Objective& theirs = other.objectives_[i];
    SBK_EXPECTS_MSG(mine.cfg.name == theirs.cfg.name,
                    "SloMonitor::merge requires identical objective sets");
    mine.total_good += theirs.total_good;
    mine.total_bad += theirs.total_bad;
    mine.breach_count += theirs.breach_count;
    mine.clear_count += theirs.clear_count;
    mine.breached = mine.breached || theirs.breached;
  }
  for (const SloAlert& alert : other.alerts_) {
    alerts_.push_back(alert);
    alerts_.back().track = track;
  }
}

std::string SloMonitor::fingerprint() const {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const Objective& o = objectives_[i];
    os << o.cfg.name << ":good=" << o.total_good << ",bad=" << o.total_bad
       << ",breaches=" << o.breach_count << ",clears=" << o.clear_count
       << ",open=" << (o.breached ? 1 : 0) << ";";
  }
  os << "alerts=" << alerts_.size();
  for (const SloAlert& a : alerts_) {
    os << ";" << a.track << ":" << a.objective << ":"
       << (a.breach ? 'B' : 'C') << "@" << a.at << "/" << a.burn_long << "/"
       << a.burn_short;
  }
  return os.str();
}

}  // namespace sbk::obs::slo
