// Network-bound two-level forwarding: walks packets hop by hop over the
// *physical* Network, at each switch consulting the two-level table of
// the failure group that owns its position and mapping the table's
// logical egress port onto the concrete adjacent link.
//
// This closes the loop that the position-level ForwardingSim leaves
// open: it proves that the §4.3 tables — including the VLAN-disambiguated
// combined edge tables — steer packets along real fat-tree links, that
// the walked paths are exactly members of the structural ECMP candidate
// set, and that a ShareBackup failover (which swaps devices under
// positions without touching the Network) leaves every walked path
// byte-for-byte identical.
#pragma once

#include "net/path.hpp"
#include "routing/two_level.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

/// Walks packets over a plain-wired fat-tree using canonical two-level
/// tables. Stateless with respect to failures: tables never change (the
/// whole point of ShareBackup), so walking a network with failed nodes
/// simply reports the blackhole.
class TableForwarding {
 public:
  /// Requires plain wiring (two-level tables assume it).
  explicit TableForwarding(const topo::FatTree& ft);

  struct WalkResult {
    bool delivered = false;
    net::Path path;  ///< host-to-host path actually taken (when delivered,
                     ///< also the partial path up to a blackhole)
  };

  /// Sends one packet from `src` to `dst` (host nodes). The packet is
  /// tagged with the source edge position's VLAN, per §4.3.
  [[nodiscard]] WalkResult walk(net::NodeId src, net::NodeId dst) const;

 private:
  [[nodiscard]] HostAddr addr_of_host(net::NodeId host) const;

  const topo::FatTree* ft_;
  TwoLevelTableBuilder builder_;
  std::vector<TwoLevelTable> edge_tables_;  ///< combined, by pod
  std::vector<TwoLevelTable> agg_tables_;   ///< by pod
  TwoLevelTable core_table_;
};

}  // namespace sbk::routing
