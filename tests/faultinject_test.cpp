// Tests for the fault-injection module: deterministic fault plans,
// control-channel fault hooks (report loss/delay, command NACK /
// timeout / lost-ack), retry + degraded-mode recovery, dead-on-arrival
// backup cascades, and the chaos soak harness (clean at small scale and
// bit-identical across thread counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "control/control_plane.hpp"
#include "faultinject/chaos_injector.hpp"
#include "faultinject/chaos_soak.hpp"
#include "faultinject/fault_plan.hpp"
#include "faultinject/report_stream.hpp"
#include "service/message.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace sbk::faultinject {
namespace {

using control::CommandStatus;
using control::Controller;
using control::ControllerConfig;
using control::RecoveryOutcome;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using topo::Layer;
using topo::SwitchPosition;

FabricParams fp(int k, int n) {
  FabricParams p;
  p.fat_tree.k = k;
  p.backups_per_group = n;
  return p;
}

// --- fault plans ------------------------------------------------------------

TEST(FaultPlan, DeterministicFromSeed) {
  Fabric fabric(fp(4, 1));
  FaultPlanConfig cfg;
  FaultPlan a = FaultPlan::generate(fabric, cfg, 42);
  FaultPlan b = FaultPlan::generate(fabric, cfg, 42);
  ASSERT_EQ(a.switch_failures.size(), b.switch_failures.size());
  for (std::size_t i = 0; i < a.switch_failures.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.switch_failures[i].at, b.switch_failures[i].at);
    EXPECT_EQ(a.switch_failures[i].node, b.switch_failures[i].node);
  }
  ASSERT_EQ(a.link_failures.size(), b.link_failures.size());
  for (std::size_t i = 0; i < a.link_failures.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.link_failures[i].at, b.link_failures[i].at);
    EXPECT_EQ(a.link_failures[i].link, b.link_failures[i].link);
    EXPECT_EQ(a.link_failures[i].bad_side, b.link_failures[i].bad_side);
  }
  EXPECT_EQ(a.doa_spares, b.doa_spares);
  EXPECT_EQ(a.controller_crashes.size(), b.controller_crashes.size());

  // A different seed must change the schedule somewhere.
  FaultPlan c = FaultPlan::generate(fabric, cfg, 43);
  bool differs = c.switch_failures.size() != a.switch_failures.size();
  for (std::size_t i = 0; !differs && i < a.switch_failures.size(); ++i) {
    differs = a.switch_failures[i].node != c.switch_failures[i].node ||
              a.switch_failures[i].at != c.switch_failures[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, FailuresStayInsideFaultWindow) {
  Fabric fabric(fp(4, 2));
  FaultPlanConfig cfg;
  FaultPlan plan = FaultPlan::generate(fabric, cfg, 7);
  EXPECT_DOUBLE_EQ(plan.settle_at, cfg.injection_window * cfg.horizon);
  for (const auto& ev : plan.switch_failures) {
    EXPECT_GE(ev.at, 0.0);
    EXPECT_LT(ev.at, plan.settle_at);
  }
  for (const auto& ev : plan.link_failures) {
    EXPECT_LT(ev.at, plan.settle_at);
  }
  // Sorted so the injector can schedule them in order.
  EXPECT_TRUE(std::is_sorted(
      plan.link_failures.begin(), plan.link_failures.end(),
      [](const LinkFailureEvent& a, const LinkFailureEvent& b) {
        return a.at < b.at;
      }));
  // Bursts were requested, so some link failures must be correlated.
  EXPECT_TRUE(std::any_of(plan.link_failures.begin(),
                          plan.link_failures.end(),
                          [](const LinkFailureEvent& e) { return e.burst; }));
}

TEST(FaultPlan, ClusterScenariosProduceScriptedCrashSchedules) {
  Fabric fabric(fp(4, 2));
  FaultPlanConfig cfg;
  cfg.cluster_members = 3;

  cfg.cluster_scenario = ClusterScenario::kPrimaryCrash;
  FaultPlan primary = FaultPlan::generate(fabric, cfg, 11);
  ASSERT_EQ(primary.controller_crashes.size(), 1u);
  EXPECT_EQ(primary.controller_crashes[0].member, kPrimaryMember);
  EXPECT_DOUBLE_EQ(primary.controller_crashes[0].repair_at,
                   primary.controller_crashes[0].at +
                       cfg.controller_repair_delay);

  cfg.cluster_scenario = ClusterScenario::kCrashDuringElection;
  FaultPlan during = FaultPlan::generate(fabric, cfg, 11);
  ASSERT_EQ(during.controller_crashes.size(), 2u);
  // The second kill lands strictly inside the first's election bound.
  EXPECT_GT(during.controller_crashes[1].at, during.controller_crashes[0].at);
  EXPECT_LT(during.controller_crashes[1].at,
            during.controller_crashes[0].at + cfg.cluster_election_bound);

  cfg.cluster_scenario = ClusterScenario::kTotalDeath;
  FaultPlan death = FaultPlan::generate(fabric, cfg, 11);
  ASSERT_EQ(death.controller_crashes.size(), cfg.cluster_members);
  for (const ControllerCrashEvent& ev : death.controller_crashes) {
    EXPECT_EQ(ev.member, kPrimaryMember);
    EXPECT_DOUBLE_EQ(ev.repair_at, death.controller_crashes[0].at +
                                       cfg.controller_repair_delay);
  }
}

// --- report-stream edge cases -----------------------------------------------

TEST(ReportStream, ZeroRepeatsViolatesTheContract) {
  Fabric fabric(fp(4, 1));
  FaultPlan plan = FaultPlan::generate(fabric, FaultPlanConfig{}, 3);
  ReportStreamConfig cfg;
  cfg.repeats = 0;
  EXPECT_THROW(build_report_stream(plan, cfg), ContractViolation);
  cfg.repeats = 1;
  cfg.time_scale = 0.0;  // and virtual time cannot stand still
  EXPECT_THROW(build_report_stream(plan, cfg), ContractViolation);
}

TEST(ReportStream, ExtremeTimeScalesKeepTheScheduleWellFormed) {
  Fabric fabric(fp(4, 1));
  FaultPlanConfig pcfg;
  pcfg.controller_crash_prob = 1.0;  // force a crash/repair pair
  FaultPlan plan = FaultPlan::generate(fabric, pcfg, 3);
  for (double scale : {1e-12, 1e12}) {
    ReportStreamConfig cfg;
    cfg.repeats = 2;
    cfg.time_scale = scale;
    const auto stream = build_report_stream(plan, cfg);
    ASSERT_FALSE(stream.empty());
    // Saturated or stretched, the admission order must stay intact:
    // finite nonnegative times, nondecreasing, dense unique seqs.
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_TRUE(std::isfinite(stream[i].at));
      EXPECT_GE(stream[i].at, 0.0);
      EXPECT_EQ(stream[i].seq, i);
      if (i > 0) {
        EXPECT_GE(stream[i].at, stream[i - 1].at);
      }
    }
    const auto b = breakdown(stream);
    EXPECT_EQ(b.total, stream.size());
    EXPECT_GT(b.cluster_events, 0u);
  }
}

TEST(ReportStream, LeadingControllerCrashComesOutFirstAndMapsToPrimary) {
  Fabric fabric(fp(4, 1));
  // Hand-built plan whose very first event is the controller crash —
  // before any failure report exists to warm the service up.
  FaultPlan plan;
  plan.config.horizon = 1.0;
  plan.settle_at = 0.6;
  ControllerCrashEvent ev;
  ev.at = 0.0;
  ev.member = kPrimaryMember;
  ev.repair_at = 0.3;
  plan.controller_crashes.push_back(ev);
  SwitchFailureEvent sw;
  sw.at = 0.1;
  sw.node = fabric.fat_tree().all_switches()[0];
  plan.switch_failures.push_back(sw);

  ReportStreamConfig cfg;
  cfg.background_probes = 0;  // keep the head of the stream bare
  const auto stream = build_report_stream(plan, cfg);
  ASSERT_GE(stream.size(), 4u);  // crash, reports, repair, cadences
  EXPECT_EQ(stream[0].kind, service::MessageKind::kControllerCrash);
  EXPECT_EQ(stream[0].at, 0.0);
  EXPECT_EQ(stream[0].member, service::kClusterPrimary);
  // The paired repair is present and later.
  const auto repair = std::find_if(
      stream.begin(), stream.end(), [](const service::ServiceMessage& m) {
        return m.kind == service::MessageKind::kControllerRepair;
      });
  ASSERT_NE(repair, stream.end());
  EXPECT_GT(repair->at, stream[0].at);
  EXPECT_EQ(repair->member, service::kClusterPrimary);
  // Disabling cluster events strips them (and only them).
  cfg.cluster_events = false;
  const auto bare = build_report_stream(plan, cfg);
  EXPECT_EQ(bare.size(), stream.size() - 2);
  EXPECT_EQ(breakdown(bare).cluster_events, 0u);
}

// --- command-channel faults -------------------------------------------------

TEST(Controller, CommandNackRetriesUntilAck) {
  Fabric fabric(fp(6, 1));
  Controller clean(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kAgg, 0, 1};

  // Baseline latency from an identical, fault-free recovery.
  fabric.network().fail_node(fabric.node_at(pos));
  Seconds base = clean.on_switch_failure(pos).control_latency;

  Fabric fabric2(fp(6, 1));
  Controller ctrl(fabric2, ControllerConfig{});
  int calls = 0;
  ctrl.set_command_fault_hook([&](SwitchPosition, int attempt) {
    ++calls;
    return attempt == 0 ? CommandStatus::kNack : CommandStatus::kAck;
  });
  fabric2.network().fail_node(fabric2.node_at(pos));
  RecoveryOutcome out = ctrl.on_switch_failure(pos);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(ctrl.stats().retries, 1u);
  // The NACK round-trip plus one backoff step is charged to the
  // recovery's control latency.
  EXPECT_GT(out.control_latency, base);
  fabric2.check_invariants();
}

TEST(Controller, LostAckIsIdempotentAndBurnsOneSpare) {
  Fabric fabric(fp(6, 2));
  Controller ctrl(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kEdge, 2, 1};
  std::size_t group = 2;  // edge failure groups are per-pod
  std::size_t spares_before = fabric.spares(Layer::kEdge, group).size();
  ctrl.set_command_fault_hook([](SwitchPosition, int attempt) {
    // Applied but the ack is lost; the re-send is acked without a second
    // reconfiguration (commands are idempotent).
    return attempt == 0 ? CommandStatus::kTimeoutApplied : CommandStatus::kAck;
  });
  fabric.network().fail_node(fabric.node_at(pos));
  RecoveryOutcome out = ctrl.on_switch_failure(pos);
  EXPECT_TRUE(out.recovered);
  ASSERT_EQ(out.failovers.size(), 1u);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(fabric.spares(Layer::kEdge, group).size(), spares_before - 1);
  EXPECT_FALSE(fabric.network().node_failed(fabric.node_at(pos)));
  fabric.check_invariants();
}

TEST(Controller, RetriesExhaustedDegradesParksAndRequeues) {
  Fabric fabric(fp(6, 1));
  Controller ctrl(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kAgg, 3, 0};
  std::size_t spares_before = fabric.spares(Layer::kAgg, 3).size();
  ctrl.set_command_fault_hook(
      [](SwitchPosition, int) { return CommandStatus::kNack; });
  fabric.network().fail_node(fabric.node_at(pos));
  RecoveryOutcome out = ctrl.on_switch_failure(pos);
  EXPECT_FALSE(out.recovered);
  EXPECT_TRUE(out.degraded);
  EXPECT_GT(out.degraded_latency, 0.0);
  // NACKed commands never reach the circuit switches: no spare burned.
  EXPECT_EQ(fabric.spares(Layer::kAgg, 3).size(), spares_before);
  EXPECT_TRUE(fabric.network().node_failed(fabric.node_at(pos)));
  EXPECT_EQ(ctrl.stats().retries_exhausted, 1u);
  EXPECT_EQ(ctrl.stats().degraded_reroutes, 1u);
  ASSERT_EQ(ctrl.pending_node_recoveries().size(), 1u);
  EXPECT_EQ(ctrl.pending_node_recoveries().front(), pos);

  // Channel heals; the parked failure is re-attempted and recovers.
  ctrl.set_command_fault_hook(nullptr);
  ctrl.retry_parked();
  EXPECT_EQ(ctrl.pending_recoveries(), 0u);
  EXPECT_FALSE(fabric.network().node_failed(fabric.node_at(pos)));
  EXPECT_GE(ctrl.stats().requeued, 1u);
  fabric.check_invariants();
}

TEST(Controller, DeadOnArrivalBackupCascadesToNextSpare) {
  Fabric fabric(fp(6, 2));
  Controller ctrl(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kAgg, 1, 1};
  auto spares = fabric.spares(Layer::kAgg, 1);
  ASSERT_EQ(spares.size(), 2u);
  // First spare in allocation order is dead on arrival: break one of its
  // real circuit-switch interfaces.
  const auto& ports = fabric.ports_of_device(spares.front());
  ASSERT_FALSE(ports.empty());
  fabric.set_interface_health({spares.front(), ports.front().cs}, false);

  fabric.network().fail_node(fabric.node_at(pos));
  RecoveryOutcome out = ctrl.on_switch_failure(pos);
  EXPECT_TRUE(out.recovered);
  // Two failovers: the DOA swap-in plus the cascade onto the healthy
  // spare; one retry charged for the cascade.
  EXPECT_EQ(out.failovers.size(), 2u);
  EXPECT_GE(out.retries, 1u);
  EXPECT_EQ(ctrl.stats().doa_backups, 1u);
  EXPECT_FALSE(fabric.network().node_failed(fabric.node_at(pos)));
  EXPECT_TRUE(fabric.spares(Layer::kAgg, 1).empty());
  fabric.check_invariants();
}

// --- report-channel faults --------------------------------------------------

TEST(ControlPlane, LostReportsAreResentAndRecover) {
  Fabric fabric(fp(4, 1));
  sim::EventQueue queue;
  control::ControlPlaneConfig cfg;
  cfg.cluster_members = 0;  // single controller, isolate the report path
  cfg.diagnosis_delay = milliseconds(25);
  cfg.detector.report_retry_interval = milliseconds(5);
  control::ControlPlane plane(fabric, queue, cfg);

  int seen = 0;
  plane.set_report_fault_hook(
      [&](bool, std::uint64_t, Seconds) -> std::optional<Seconds> {
        // First two transmissions vanish; the detector's re-send gets
        // through on the third.
        return ++seen <= 2 ? std::nullopt : std::optional<Seconds>(0.0);
      });

  SwitchPosition pos{Layer::kEdge, 1, 0};
  net::NodeId victim = fabric.node_at(pos);
  plane.start(0.5);
  queue.schedule_at(0.01, [&] { fabric.network().fail_node(victim); });
  queue.run();

  EXPECT_EQ(plane.reports_lost(), 2u);
  EXPECT_GE(seen, 3);
  EXPECT_FALSE(fabric.network().node_failed(victim));
  EXPECT_EQ(plane.controller().stats().node_failures_handled, 1u);
  fabric.check_invariants();
}

TEST(ControlPlane, DelayedReportStillRecovers) {
  Fabric fabric(fp(4, 1));
  sim::EventQueue queue;
  control::ControlPlaneConfig cfg;
  cfg.cluster_members = 0;
  cfg.diagnosis_delay = milliseconds(25);
  control::ControlPlane plane(fabric, queue, cfg);

  Seconds recovered_at = -1.0;
  plane.on_recovery([&](const RecoveryOutcome& out, Seconds t) {
    if (out.recovered && recovered_at < 0.0) recovered_at = t;
  });
  plane.set_report_fault_hook(
      [&](bool, std::uint64_t, Seconds) -> std::optional<Seconds> {
        return milliseconds(2);  // every report held back 2ms
      });

  SwitchPosition pos{Layer::kEdge, 0, 1};
  net::NodeId victim = fabric.node_at(pos);
  plane.start(0.5);
  queue.schedule_at(0.01, [&] { fabric.network().fail_node(victim); });
  queue.run();

  EXPECT_FALSE(fabric.network().node_failed(victim));
  // Detection needs miss_threshold probes; the injected delay lands on
  // top of that, so recovery happens at detection + 2ms or later.
  EXPECT_GE(recovered_at, 0.01 + milliseconds(2));
}

// --- chaos scenarios --------------------------------------------------------

ChaosSoakConfig small_soak(std::size_t scenarios, std::size_t threads) {
  ChaosSoakConfig cfg;
  cfg.scenarios = scenarios;
  cfg.master_seed = 99;
  cfg.threads = threads;
  cfg.plan.horizon = 1.0;
  cfg.plan.switch_failures = 2;
  cfg.plan.link_failures = 2;
  cfg.plan.bursts = 1;
  return cfg;
}

TEST(ChaosScenario, ReplaysExactlyFromSeed) {
  ChaosSoakConfig cfg = small_soak(1, 1);
  sweep::ScenarioSpec spec{0, sweep::derive_seed(cfg.master_seed, 0)};
  ChaosScenarioResult a = run_chaos_scenario(cfg, spec);
  ChaosScenarioResult b = run_chaos_scenario(cfg, spec);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.degraded_reroutes, b.degraded_reroutes);
  EXPECT_EQ(a.requeued, b.requeued);
  EXPECT_EQ(a.reports_lost, b.reports_lost);
}

TEST(ChaosSoak, SmallSoakRunsCleanAndExercisesFaults) {
  ChaosSoakReport report = run_chaos_soak(small_soak(8, 2));
  EXPECT_TRUE(report.clean()) << report.summary();
  ASSERT_EQ(report.scenarios.size(), 8u);
  std::size_t injected = 0, failovers = 0;
  for (const auto& s : report.scenarios) {
    injected += s.failures_injected;
    failovers += s.failovers;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(failovers, 0u);
}

TEST(ChaosSoak, BitIdenticalAcrossThreadCounts) {
  ChaosSoakReport serial = run_chaos_soak(small_soak(6, 1));
  ChaosSoakReport parallel = run_chaos_soak(small_soak(6, 4));
  ASSERT_EQ(serial.scenarios.size(), parallel.scenarios.size());
  for (std::size_t i = 0; i < serial.scenarios.size(); ++i) {
    const auto& a = serial.scenarios[i];
    const auto& b = parallel.scenarios[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.failures_injected, b.failures_injected);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.degraded_reroutes, b.degraded_reroutes);
    EXPECT_EQ(a.requeued, b.requeued);
    EXPECT_EQ(a.watchdog_trips, b.watchdog_trips);
    EXPECT_EQ(a.reports_lost, b.reports_lost);
    EXPECT_EQ(a.reports_buffered, b.reports_buffered);
    EXPECT_EQ(a.probes_routed, b.probes_routed);
    EXPECT_EQ(a.unreachable_global_reroute, b.unreachable_global_reroute);
    EXPECT_EQ(a.unreachable_spider, b.unreachable_spider);
    EXPECT_EQ(a.unreachable_backup_rules, b.unreachable_backup_rules);
  }
}

TEST(ChaosSoak, ReachabilityRaceProbesEveryStrategy) {
  // The post-recovery race routes the same host pairs with all three
  // non-ShareBackup strategies over the end-state network; any invalid
  // or dead path would surface as a violation. ShareBackup's whole
  // point is that the end-state is fully repaired at small fault rates,
  // so reachability stays perfect for every strategy here.
  ChaosSoakConfig cfg = small_soak(4, 1);
  cfg.reachability_probes = 16;
  ChaosSoakReport report = run_chaos_soak(cfg);
  EXPECT_TRUE(report.clean()) << report.summary();
  for (const auto& s : report.scenarios) {
    EXPECT_EQ(s.probes_routed, 16u);
    EXPECT_EQ(s.unreachable_global_reroute, 0u);
    EXPECT_EQ(s.unreachable_spider, 0u);
    EXPECT_EQ(s.unreachable_backup_rules, 0u);
  }
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("reachability race"), std::string::npos);

  // Disabling the race zeroes the tallies without touching the rest of
  // the scenario (the probe rng stream is separate from the fault
  // plan's).
  cfg.reachability_probes = 0;
  ChaosSoakReport quiet = run_chaos_soak(cfg);
  ASSERT_EQ(quiet.scenarios.size(), report.scenarios.size());
  for (std::size_t i = 0; i < quiet.scenarios.size(); ++i) {
    EXPECT_EQ(quiet.scenarios[i].probes_routed, 0u);
    EXPECT_EQ(quiet.scenarios[i].failures_injected,
              report.scenarios[i].failures_injected);
    EXPECT_EQ(quiet.scenarios[i].failovers, report.scenarios[i].failovers);
  }
}

}  // namespace
}  // namespace sbk::faultinject
