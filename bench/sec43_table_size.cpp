// Experiment E9 — §4.3: size of the combined failure-group routing table
// stored on every edge-group switch for live impersonation:
// k/2 in-bound + k^2/4 VLAN-tagged out-bound entries; 1056 at k=64,
// within commodity TCAM capacity. Extended with the pre-installed
// protection state the SDN baselines need for the same coverage:
// SPIDER detours (3k^3 fabric-wide, 3k on the worst switch) and van
// Adrichem per-destination backup rules ((5/8)k^4 fabric-wide, k^2/2
// per switch) — the per-switch column is the TCAM-relevant one.
#include <cstdio>

#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "routing/two_level.hpp"

using namespace sbk;

int main() {
  bench::banner("E9 / §4.3 — combined routing table sizes",
                "Combined edge failure-group table: k/2 in-bound + k^2/4 "
                "out-bound entries. Paper: 1056 entries at k=64 (65k hosts).");
  std::printf("%-5s %10s %10s %12s %12s %10s\n", "k", "hosts", "in-bound",
              "out-bound", "combined", "formula");
  for (int k : {4, 8, 16, 24, 32, 48, 64}) {
    routing::TwoLevelTableBuilder b(k);
    routing::TwoLevelTable t = b.combined_edge_table(0);
    std::size_t inbound = 0;
    std::size_t outbound = 0;
    for (const auto& e : t.suffix()) {
      if (e.vlan == routing::kNoVlan) ++inbound; else ++outbound;
    }
    std::size_t formula = static_cast<std::size_t>(k / 2 + k * k / 4);
    std::printf("%-5d %10d %10zu %12zu %12zu %10zu\n", k, k * k * k / 4,
                inbound, outbound, t.size(), formula);
    bench::csv_row({std::to_string(k), std::to_string(k * k * k / 4),
                    std::to_string(inbound), std::to_string(outbound),
                    std::to_string(t.size())});
  }

  bench::banner("E9b — pre-installed protection state per strategy",
                "Whole-fabric and worst-single-switch table entries each "
                "protection scheme pre-installs (rack-level hosts). "
                "ShareBackup's entries sit on idle backups; SPIDER/backup-"
                "rules consume live-switch TCAM.");
  std::printf("%-5s %-16s %16s %16s\n", "k", "scheme", "fabric-entries",
              "per-switch-max");
  for (int k : {8, 16, 32, 64}) {
    const cost::ProtectionTableFootprint rows[] = {
        cost::sharebackup_table_footprint(k, 1),
        cost::spider_table_footprint(k),
        cost::backup_rules_table_footprint(k),
        cost::reactive_table_footprint("ecmp+global-reroute"),
        cost::reactive_table_footprint("f10"),
    };
    for (const auto& f : rows) {
      std::printf("%-5d %-16s %16lld %16lld\n", k, f.scheme.c_str(),
                  f.protection_entries, f.per_switch_max);
      bench::csv_row({std::to_string(k), f.scheme,
                      std::to_string(f.protection_entries),
                      std::to_string(f.per_switch_max)});
    }
  }
  return 0;
}
