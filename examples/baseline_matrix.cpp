// Head-to-head protection-baseline comparison: races ShareBackup, F10,
// ECMP + global reroute, SPIDER-protect, and precomputed backup rules
// through identical failure churn and an identical coflow replay, then
// reports recovery latency, residual packet loss, CCT slowdown, and
// pre-installed table footprint per strategy.
//
//   baseline_matrix [scenarios] [master_seed] [k] [backups] [threads]
//                   [--csv=out.csv] [--flows=N] [--switch-failures=N]
//                   [--link-failures=N]
//
// Defaults: 8 scenarios, seed 1, k=8, 1 backup per group, auto threads,
// 64 probe flows per scenario, 1 switch + 2 link failures per scenario.
// The run is deterministic in its arguments (thread count only changes
// wall-clock), so a committed CSV re-generates bit-identically.
// Exits non-zero when any strategy returned an invalid or dead path —
// the router-invariant gate CI hangs off.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/comparison_matrix.hpp"
#include "util/cli.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "baseline_matrix: %s\n", error.c_str());
  }
  std::fprintf(stderr,
               "usage: baseline_matrix [scenarios] [master_seed] [k]"
               " [backups] [threads]\n"
               "                       [--csv=out.csv] [--flows=N]\n"
               "                       [--switch-failures=N]"
               " [--link-failures=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const sbk::cli::ParseResult args = sbk::cli::parse_args(
      argc, argv,
      {{"csv", true}, {"flows", true}, {"switch-failures", true},
       {"link-failures", true}},
      /*max_positional=*/5);
  if (!args.ok()) return usage(args.error);

  sbk::baselines::MatrixConfig cfg;
  auto positional = [&args](std::size_t i, long long fallback) {
    return args.positional.size() > i ? sbk::cli::parse_int(args.positional[i])
                                      : std::optional<long long>(fallback);
  };
  const auto scenarios = positional(0, 8);
  const auto seed = positional(1, 1);
  const auto k = positional(2, 8);
  const auto backups = positional(3, 1);
  const auto threads = positional(4, 0);
  if (!scenarios || !seed || !k || !backups || !threads) {
    return usage("positional arguments must be integers");
  }
  cfg.scenarios = static_cast<std::size_t>(*scenarios);
  cfg.master_seed = static_cast<std::uint64_t>(*seed);
  cfg.k = static_cast<int>(*k);
  cfg.backups_per_group = static_cast<int>(*backups);
  cfg.threads = static_cast<std::size_t>(*threads);
  auto flag_int = [&args](const char* name, std::size_t& slot) {
    if (auto v = args.value_of(name)) {
      const auto n = sbk::cli::parse_int(*v);
      if (!n || *n <= 0) return false;
      slot = static_cast<std::size_t>(*n);
    }
    return true;
  };
  std::size_t switch_failures = 1, link_failures = 2;
  if (!flag_int("flows", cfg.flows_per_scenario)) {
    return usage("--flows wants a positive integer");
  }
  if (!flag_int("switch-failures", switch_failures)) {
    return usage("--switch-failures wants a positive integer");
  }
  if (!flag_int("link-failures", link_failures)) {
    return usage("--link-failures wants a positive integer");
  }
  cfg.switch_failures = static_cast<int>(switch_failures);
  cfg.link_failures = static_cast<int>(link_failures);

  std::cout << "comparing 5 protection strategies over " << cfg.scenarios
            << " churn scenarios (seed " << cfg.master_seed << ", k=" << cfg.k
            << ", n=" << cfg.backups_per_group << ", "
            << cfg.flows_per_scenario << " probes, " << cfg.switch_failures
            << " switch + " << cfg.link_failures
            << " link failures each) + coflow replay...\n";
  const sbk::baselines::ComparisonMatrix matrix =
      sbk::baselines::run_comparison_matrix(cfg);
  std::cout << sbk::baselines::matrix_summary(matrix);

  if (auto csv_path = args.value_of("csv")) {
    std::ofstream out(*csv_path);
    sbk::baselines::write_matrix_csv(matrix, out);
    if (!out.good()) {
      std::cerr << "failed to write " << *csv_path << "\n";
      return 2;
    }
    std::cout << "wrote " << matrix.rows.size() << " strategy rows to "
              << *csv_path << "\n";
  }
  return matrix.violations == 0 ? 0 : 1;
}
