#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace sbk::sim {

void EventQueue::schedule_at(Seconds at, Callback fn) {
  SBK_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  SBK_EXPECTS(fn != nullptr);
  heap_.push_back(Entry{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_in(Seconds delay, Callback fn) {
  SBK_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.time;
  obs::ScopedSpan span(recorder_, "queue", "dispatch", now_);
  e.fn();
  return true;
}

void EventQueue::run_until(Seconds until) {
  while (!heap_.empty() && heap_.front().time <= until) step();
  now_ = std::max(now_, until);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace sbk::sim
