// Minimal JSON string escaping shared by every exporter (metrics,
// recovery tracer, flight recorder). Keeping it in one place is what
// guarantees a metric/span/trace name containing quotes, backslashes, or
// control characters can never corrupt an exported document.
#pragma once

#include <string>
#include <string_view>

namespace sbk {

/// Escapes `s` for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, and control characters (< 0x20)
/// become \n/\r/\t or \u00XX. The result does NOT include the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace sbk
