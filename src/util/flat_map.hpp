// Open-addressed hash map from 64-bit keys to values, stored in two flat
// parallel arrays (keys, values) with linear probing — the cache-line
// friendly replacement for std::unordered_map on routing hot paths.
//
// Why not unordered_map: libstdc++'s node-based buckets cost one heap
// allocation and at least one dependent pointer chase per entry. The
// router caches (EpochPathCache, NeighborLinkCache) are hit once per
// route() call during failure storms, so at k=48/64 sweep scale those
// chases dominate the lookup. A flat table probes consecutive slots of
// one array instead, and clearing for epoch invalidation is a memset-
// class pass that keeps the allocation.
//
// Contract: keys must not equal kEmptyKey (~0). Every key produced by
// util::pack_pair_key satisfies this — it would require both packed ids
// to be 0xFFFFFFFF, which fits_u32 admits but no dense NodeId space
// reaches. Insertion order is irrelevant to callers (lookup-only maps);
// there is deliberately no iteration API.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace sbk::util {

/// Minimal flat hash map: find / find_or_emplace / clear. Grows by
/// doubling at 70% load; capacity is a power of two so the probe mask is
/// a single AND. Values are move-relocated on growth.
template <typename V>
class FlatKeyMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  /// Pointer to the value for `key`, or nullptr if absent. Never grows.
  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    if (size_ == 0) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = probe_start(key, mask);; i = (i + 1) & mask) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kEmptyKey) return nullptr;
    }
  }

  /// The value for `key`, default-inserting via `make()` (called only on
  /// miss). References stay valid until the next insertion.
  template <typename Make>
  V& find_or_emplace(std::uint64_t key, Make&& make) {
    SBK_EXPECTS_MSG(key != kEmptyKey, "FlatKeyMap: reserved key");
    if ((size_ + 1) * 10 >= keys_.size() * 7) grow();
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = probe_start(key, mask);; i = (i + 1) & mask) {
      if (keys_[i] == key) return values_[i];
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        values_[i] = make();
        ++size_;
        return values_[i];
      }
    }
  }

  /// Empties the map but keeps the table allocation (epoch invalidation
  /// happens often; reallocating each time would defeat the cache).
  void clear() noexcept {
    if (size_ == 0) return;
    keys_.assign(keys_.size(), kEmptyKey);
    // Values are left constructed-but-stale; slots are dead until their
    // key is re-claimed, at which point find_or_emplace overwrites.
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  /// splitmix64 finalizer: pack_pair_key output is strongly structured
  /// (host indices in both halves), so probe starts must be mixed or
  /// consecutive pairs would pile into runs.
  [[nodiscard]] static std::size_t probe_start(std::uint64_t key,
                                               std::size_t mask) noexcept {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31)) & mask;
  }

  void grow() {
    const std::size_t new_cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_cap, kEmptyKey);
    values_.clear();
    values_.resize(new_cap);
    const std::size_t mask = new_cap - 1;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] == kEmptyKey) continue;
      std::size_t i = probe_start(old_keys[s], mask);
      while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
      keys_[i] = old_keys[s];
      values_[i] = std::move(old_values[s]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
};

}  // namespace sbk::util
