// Fixed-size thread pool used by the scenario-sweep engine (src/sweep)
// to fan independent simulations out across cores. Deliberately simple:
// one shared FIFO queue, no work stealing — sweep tasks are coarse
// (whole simulations), so queue contention is negligible and a simpler
// pool is easier to prove race-free under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbk {

/// A fixed set of worker threads draining a shared task queue.
///
/// Semantics:
///   * submit() enqueues a task; workers run tasks in FIFO order.
///   * wait_idle() blocks until the queue is empty and no task is
///     executing.
///   * The destructor drains all pending tasks, then joins the workers
///     (shutdown never drops submitted work).
///   * Tasks must not throw — callers that need exception propagation
///     (e.g. sweep::SweepRunner) wrap their work and capture the
///     exception themselves.
class ThreadPool {
 public:
  /// Spawns `threads` workers. Requires threads > 0.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Requires a non-null task; must not be called
  /// during/after destruction.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Hardware concurrency, clamped to at least 1 (the standard allows
  /// hardware_concurrency() to return 0 when unknown).
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sbk
