#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace sbk::obs {

namespace {
// Tolerance for cadence-boundary comparisons (fluid-sim event times carry
// ~1e-12 of float drift; a boundary that lands "exactly" on an event must
// still be taken).
constexpr Seconds kTickEps = 1e-9;
}  // namespace

TelemetrySampler::TelemetrySampler(Seconds interval, bool enabled)
    : enabled_(enabled), interval_(interval) {
  SBK_EXPECTS(interval > 0.0);
}

void TelemetrySampler::add_probe(std::string name, Probe probe) {
  if (!enabled_) return;
  SBK_EXPECTS(probe != nullptr);
  SBK_EXPECTS_MSG(times_.empty(), "register probes before sampling starts");
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  columns_.emplace_back();
}

void TelemetrySampler::take_sample(Seconds at) {
  times_.push_back(at);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    columns_[i].push_back(probes_[i]());
  }
}

void TelemetrySampler::start(Seconds at) {
  if (!enabled_ || started_) return;
  started_ = true;
  origin_ = at;
  next_tick_ = 1;
  take_sample(at);
}

void TelemetrySampler::sample_now(Seconds at) {
  if (!enabled_) return;
  if (!started_) {
    start(at);
    return;
  }
  take_sample(at);
  // Re-anchor the cadence past this ad-hoc sample so advance_to does not
  // immediately duplicate it.
  while (origin_ + static_cast<double>(next_tick_) * interval_ <=
         at + kTickEps) {
    ++next_tick_;
  }
}

void TelemetrySampler::advance_to(Seconds now) {
  if (!enabled_) return;
  if (!started_) {
    start(0.0);
  }
  for (;;) {
    // Exact multiples of the cadence (origin + tick * interval): no
    // accumulated floating-point drift, so the times column is
    // bit-stable across runs and thread counts.
    const Seconds boundary =
        origin_ + static_cast<double>(next_tick_) * interval_;
    if (boundary > now + kTickEps) break;
    take_sample(boundary);
    ++next_tick_;
  }
}

void TelemetrySampler::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  std::vector<std::string> header{"time"};
  header.insert(header.end(), names_.begin(), names_.end());
  csv.row(header);
  for (std::size_t r = 0; r < times_.size(); ++r) {
    std::vector<std::string> row{CsvWriter::num(times_[r])};
    for (const std::vector<double>& col : columns_) {
      row.push_back(CsvWriter::num(col[r]));
    }
    csv.row(row);
  }
}

void TelemetrySampler::write_downsampled_csv(std::ostream& out,
                                             Seconds bucket_width) const {
  SBK_EXPECTS(bucket_width > 0.0);
  CsvWriter csv(out);
  std::vector<std::string> header{"time"};
  for (const std::string& n : names_) {
    header.push_back(n + ".min");
    header.push_back(n + ".mean");
    header.push_back(n + ".max");
  }
  csv.row(header);

  std::size_t r = 0;
  while (r < times_.size()) {
    const auto bucket =
        static_cast<std::int64_t>(std::floor(times_[r] / bucket_width));
    std::size_t end = r;
    while (end < times_.size() &&
           static_cast<std::int64_t>(
               std::floor(times_[end] / bucket_width)) == bucket) {
      ++end;
    }
    std::vector<std::string> row{
        CsvWriter::num(static_cast<double>(bucket) * bucket_width)};
    for (const std::vector<double>& col : columns_) {
      double lo = col[r], hi = col[r], sum = 0.0;
      for (std::size_t i = r; i < end; ++i) {
        lo = std::min(lo, col[i]);
        hi = std::max(hi, col[i]);
        sum += col[i];
      }
      row.push_back(CsvWriter::num(lo));
      row.push_back(CsvWriter::num(sum / static_cast<double>(end - r)));
      row.push_back(CsvWriter::num(hi));
    }
    csv.row(row);
    r = end;
  }
}

void TelemetryTable::append(std::size_t scenario,
                            const TelemetrySampler& sampler) {
  if (!enabled_) return;
  if (names_.empty() && !sampler.series_names().empty()) {
    names_ = sampler.series_names();
    columns_.assign(names_.size(), {});
  }
  if (sampler.rows() == 0) return;
  SBK_EXPECTS_MSG(sampler.series_names() == names_,
                  "all merged samplers must expose identical series");
  for (std::size_t r = 0; r < sampler.rows(); ++r) {
    scenario_.push_back(scenario);
    times_.push_back(sampler.times()[r]);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(sampler.column(c)[r]);
    }
  }
}

void TelemetryTable::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  std::vector<std::string> header{"scenario", "time"};
  header.insert(header.end(), names_.begin(), names_.end());
  csv.row(header);
  for (std::size_t r = 0; r < times_.size(); ++r) {
    std::vector<std::string> row{CsvWriter::num(scenario_[r]),
                                 CsvWriter::num(times_[r])};
    for (const std::vector<double>& col : columns_) {
      row.push_back(CsvWriter::num(col[r]));
    }
    csv.row(row);
  }
}

}  // namespace sbk::obs
