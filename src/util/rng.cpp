#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sbk {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SBK_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  SBK_EXPECTS(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  SBK_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  SBK_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double rate) {
  SBK_EXPECTS(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  SBK_EXPECTS(xm > 0.0 && alpha > 0.0);
  // Inverse-CDF sampling: U in (0,1], X = xm / U^{1/alpha}.
  double u = 1.0 - uniform_real(0.0, 1.0);  // avoid exactly 0
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  SBK_EXPECTS(sigma >= 0.0);
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  SBK_EXPECTS(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  SBK_EXPECTS_MSG(total > 0.0, "weights must contain a positive entry");
  double x = uniform_real(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    SBK_EXPECTS(weights[i] >= 0.0);
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: x == total
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  SBK_EXPECTS(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine at the
  // scales this library deals with (thousands of devices).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace sbk
