// Lightweight observability: a registry of named counters, gauges, and
// latency recorders that the simulators and the control plane report
// through. Design goals, in order:
//   1. Near-zero cost when disabled — every instrument keeps a pointer to
//      its registry's enabled flag and records behind a single branch;
//      components that hold no registry at all (the default) pay nothing.
//   2. Deterministic aggregation — instruments are stored in insertion
//      order, and merge() walks the other registry in that order, so
//      merging per-scenario registries in scenario order yields the same
//      registry regardless of how many sweep workers produced them.
//   3. Reuse of the existing stats substrate — latency instruments are
//      util/stats.hpp Summary accumulators (percentile queries, merge in
//      insertion order) with an on-demand fixed-width Histogram view.
//
// Registries are neither copyable nor movable: instruments hand out
// stable references into the registry, so its address must not change.
// Store registries in a std::deque (reference-stable) when a dynamic
// collection is needed — see sweep::SweepRunner::run_with_metrics.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace sbk::obs {

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (*enabled_) value_ += n;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Last-written scalar (pool sizes, queue depths, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (*enabled_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
};

/// Latency (or any duration) distribution backed by a Summary; a bucketed
/// Histogram view is materialized on demand from the retained samples.
class LatencyHistogram {
 public:
  void record(Seconds s) {
    if (*enabled_) summary_.add(s);
  }
  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }
  /// Fixed-width histogram over the recorded range (see util/stats.hpp).
  /// Requires at least one recorded sample and bins >= 1.
  [[nodiscard]] Histogram histogram(std::size_t bins = 10) const;

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const bool* enabled) noexcept
      : enabled_(enabled) {}
  const bool* enabled_;
  Summary summary_;
};

/// Insertion-ordered collection of named instruments. Lookup by name
/// creates the instrument on first use; the returned reference stays
/// valid for the registry's lifetime (instruments live in deques).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  /// Toggling applies to all instruments already handed out (they share
  /// the registry's flag). Recorded values are retained.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& latency(std::string_view name);

  /// Read-only lookups; nullptr when the instrument was never created.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* find_latency(
      std::string_view name) const;

  /// Instrument names in insertion order.
  [[nodiscard]] const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const noexcept {
    return gauge_names_;
  }
  [[nodiscard]] const std::vector<std::string>& latency_names() const noexcept {
    return latency_names_;
  }

  /// Folds `other` into this registry: counters sum, gauges take the
  /// other's value (last merge wins), latency summaries append the
  /// other's samples in their insertion order. Missing instruments are
  /// created in the other's insertion order, so a fixed merge order
  /// (e.g. sweep scenario order) produces a registry whose layout and
  /// contents are independent of thread scheduling. A disabled target
  /// ignores the merge entirely.
  void merge(const MetricsRegistry& other);

  /// `kind,name,count,sum,mean,min,max,p50,p99` rows (RFC 4180 quoting
  /// via util/csv.hpp). Counters fill count; gauges fill sum; latencies
  /// fill every column.
  void write_csv(std::ostream& out) const;
  /// One JSON object: {"counters":{...},"gauges":{...},"latencies":{...}}.
  void write_json(std::ostream& out) const;

 private:
  bool enabled_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyHistogram> latencies_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> latency_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> latency_index_;
};

}  // namespace sbk::obs
