// Model of the small circuit switches ShareBackup inserts between
// adjacent layers (§3). Electrically these are crosspoint or 2D-MEMS
// switches; we model each as a nonblocking any-to-any crossbar over its
// physical ports with a configurable partial matching.
//
// Port budget per switch (paper notation: a (k/2+n+2) x (k/2+n+2)
// crossbar): on the south (lower-layer) side k/2 regular + n backup
// ports, on the north (upper-layer) side the same, plus 2 side ports
// that chain the k/2 circuit switches of a pod layer into a ring for
// offline diagnosis (Fig. 4).
//
// Reconfiguration latency constants are the ones the paper cites:
// 70 ns for electrical crosspoint switches (XFabric) and 40 us for
// 2D-MEMS optical switches (§5.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace sbk::sharebackup {

/// Implementation technology; selects the reconfiguration latency and
/// the per-port cost used by the cost model.
enum class CircuitTechnology : std::uint8_t {
  kElectricalCrosspoint,  ///< 70 ns reconfiguration, $3/port
  kOpticalMems2D,         ///< 40 us reconfiguration, $10/port
};

[[nodiscard]] constexpr Seconds reconfiguration_latency(
    CircuitTechnology tech) noexcept {
  return tech == CircuitTechnology::kElectricalCrosspoint
             ? nanoseconds(70)
             : microseconds(40);
}

/// Port classification.
enum class PortClass : std::uint8_t {
  kSouthRegular,
  kSouthBackup,
  kNorthRegular,
  kNorthBackup,
  kSideLeft,
  kSideRight,
};

[[nodiscard]] constexpr bool is_side(PortClass c) noexcept {
  return c == PortClass::kSideLeft || c == PortClass::kSideRight;
}

/// What a port's external cable is plugged into.
struct Attachment {
  enum class Kind : std::uint8_t { kNone, kDeviceInterface, kSidePeer };
  Kind kind = Kind::kNone;
  /// kDeviceInterface: the physical device uid + which of the device's
  /// interfaces this cable serves (e.g. an edge switch's m-th uplink).
  std::uint32_t device = 0;
  int interface_index = 0;
  /// kSidePeer: the neighboring circuit switch in the ring + its port.
  int peer_cs = -1;
  int peer_port = -1;
};

/// One circuit switch. Ports are dense indices; the matching is a
/// partial involution without fixed points over them.
class CircuitSwitch {
 public:
  /// Symmetric backup ports on both sides.
  CircuitSwitch(std::string name, int regular_per_side, int backups_per_side);
  /// Asymmetric backup ports (non-uniform failure groups, §6: the two
  /// layers joined by this switch may provision different n).
  CircuitSwitch(std::string name, int regular_per_side, int south_backups,
                int north_backups);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int port_count() const noexcept {
    return static_cast<int>(class_.size());
  }
  [[nodiscard]] int regular_per_side() const noexcept { return regular_; }
  [[nodiscard]] int south_backups() const noexcept { return south_backups_; }
  [[nodiscard]] int north_backups() const noexcept { return north_backups_; }

  /// Port index of a given class + slot (slot ignored for side ports).
  [[nodiscard]] int port(PortClass cls, int slot = 0) const;
  [[nodiscard]] PortClass port_class(int port) const;
  [[nodiscard]] int port_slot(int port) const;

  // --- external cabling (fixed at build time) ----------------------------
  void attach_device(int port, std::uint32_t device, int interface_index);
  void attach_side(int port, int peer_cs, int peer_port);
  [[nodiscard]] const Attachment& attachment(int port) const;
  /// Port attached to the given device's cable, if any.
  [[nodiscard]] std::optional<int> port_of_device(std::uint32_t device) const;

  // --- matching (reconfigurable) ------------------------------------------
  /// Connects two free, distinct ports. Counts one reconfiguration.
  void connect(int a, int b);
  /// Tears down the circuit at `port` (no-op allowed? no: port must be
  /// matched). Counts one reconfiguration.
  void disconnect(int port);
  [[nodiscard]] std::optional<int> peer(int port) const;
  [[nodiscard]] bool is_matched(int port) const { return peer(port).has_value(); }

  /// Number of connect/disconnect operations performed so far.
  [[nodiscard]] std::size_t reconfigurations() const noexcept {
    return reconfigurations_;
  }
  [[nodiscard]] std::size_t active_circuits() const;

  /// Verifies the matching is a partial involution without fixed points.
  [[nodiscard]] bool matching_is_consistent() const;

 private:
  std::string name_;
  int regular_;
  int south_backups_;
  int north_backups_;
  std::vector<PortClass> class_;
  std::vector<int> slot_;
  std::vector<Attachment> attach_;
  std::vector<int> match_;  // -1 = free
  std::size_t reconfigurations_ = 0;
};

}  // namespace sbk::sharebackup
