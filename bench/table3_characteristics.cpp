// Experiment E6 — Table 3: performance characteristics of the compared
// architectures, measured (not asserted) from the simulator:
//
//   * bandwidth loss:   aggregate all-to-all max-min throughput in the
//                       failed state vs healthy;
//   * path dilation:    hop counts of recovered paths vs healthy;
//   * upstream repair:  does any flow's path deviate from its healthy
//                       path at a switch NOT adjacent to the failure?
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "bench_workload.hpp"
#include "control/controller.hpp"
#include "routing/ecmp.hpp"
#include "routing/f10.hpp"
#include "routing/generic_ecmp.hpp"
#include "routing/global_reroute.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/max_min.hpp"
#include "topo/one_to_one.hpp"

using namespace sbk;

namespace {

struct Characteristics {
  double throughput_ratio = 1.0;   // failed / healthy
  double max_dilation_hops = 0.0;  // extra hops vs healthy, worst flow
  bool upstream_repair = false;
  std::size_t unreachable = 0;
};

double aggregate_throughput(const topo::FatTree& ft,
                            const std::vector<net::Path>& paths) {
  std::vector<sim::Demand> demands;
  for (const net::Path& p : paths) {
    if (!p.empty()) demands.push_back(sim::Demand{p.directed_links(ft.network())});
  }
  auto rates = sim::max_min_rates(ft.network(), demands);
  double total = 0.0;
  for (double r : rates) total += r;
  return total;
}

std::vector<net::Path> route_all_pairs(const topo::FatTree& ft,
                                       routing::Router& router) {
  std::vector<net::Path> out;
  std::uint64_t id = 0;
  for (int i = 0; i < ft.host_count(); ++i) {
    for (int j = 0; j < ft.host_count(); ++j) {
      if (i == j) continue;
      out.push_back(
          router.route(ft.network(), ft.host(i), ft.host(j), id++, nullptr));
    }
  }
  return out;
}

/// First node where the two paths diverge, if any.
bool deviates_upstream(const net::Network& net, const net::Path& before,
                       const net::Path& after, net::NodeId failed_node) {
  if (after.empty() || before.nodes == after.nodes) return false;
  std::size_t i = 0;
  while (i < before.nodes.size() && i < after.nodes.size() &&
         before.nodes[i] == after.nodes[i]) {
    ++i;
  }
  if (i == 0) return true;  // diverged at the very source
  net::NodeId pivot = after.nodes[i - 1];  // last common node, which chose
  // Adjacent to the failure => local decision, not upstream repair.
  return !net.find_link(pivot, failed_node).has_value();
}

Characteristics measure(topo::FatTree& ft, routing::Router& router,
                        net::NodeId failed_node) {
  Characteristics ch;
  auto before = route_all_pairs(ft, router);
  double base = aggregate_throughput(ft, before);
  ft.network().fail_node(failed_node);
  auto after = route_all_pairs(ft, router);
  ch.throughput_ratio = aggregate_throughput(ft, after) / base;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].empty()) continue;
    if (after[i].empty()) {
      // Skip pairs that touch the failed element's dead hosts.
      ++ch.unreachable;
      continue;
    }
    ch.max_dilation_hops = std::max(
        ch.max_dilation_hops,
        static_cast<double>(after[i].hops()) -
            static_cast<double>(before[i].hops()));
    if (deviates_upstream(ft.network(), before[i], after[i], failed_node)) {
      ch.upstream_repair = true;
    }
  }
  ft.network().clear_failures();
  return ch;
}

void print_row(const char* arch, const Characteristics& ch) {
  std::printf("%-14s | %14s | %11s | %15s\n", arch,
              ch.throughput_ratio > 0.9999 ? "none" :
                  bench::fmt_pct(1.0 - ch.throughput_ratio).c_str(),
              ch.max_dilation_hops <= 0.0 ? "none"
                  : ("+" + bench::fmt(ch.max_dilation_hops, 2) + " hops").c_str(),
              ch.upstream_repair ? "required" : "not required");
  bench::csv_row({arch, bench::fmt(1.0 - ch.throughput_ratio),
                  bench::fmt(ch.max_dilation_hops),
                  ch.upstream_repair ? "yes" : "no"});
}

}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 8));
  bench::banner("E6 / Table 3 — performance characteristics, measured",
                "Single aggregation-switch failure on a k=" +
                    std::to_string(k) +
                    " rack fat-tree; all-to-all max-min throughput.");

  std::printf("%-14s | %14s | %11s | %15s\n", "architecture",
              "bandwidth loss", "dilation", "upstream repair");
  std::printf("---------------+----------------+-------------+---------------"
              "-\n");

  {  // fat-tree: ECMP + global optimal rerouting of affected flows.
    topo::FatTree ft(bench::paper_fat_tree(k));
    routing::EcmpWithGlobalRerouteRouter router(ft, 2);
    print_row("fat-tree", measure(ft, router, ft.agg(0, 0)));
  }
  {  // F10 local rerouting on the AB tree.
    topo::FatTree ft(bench::paper_fat_tree(k, topo::Wiring::kAb));
    routing::F10Router router(ft, 2);
    print_row("F10", measure(ft, router, ft.agg(0, 0)));
  }
  {  // 1:1 backup: shadow activation also restores everything — at 4x
     // the network's cost (see E4/E5).
    topo::OneToOneBackup arch(bench::paper_fat_tree(k));
    const topo::FatTree& ft = arch.fat_tree();
    routing::GenericEcmpRouter router(2);

    auto route_pairs = [&] {
      std::vector<net::Path> out;
      std::uint64_t id = 0;
      for (int i = 0; i < ft.host_count(); ++i) {
        for (int j = 0; j < ft.host_count(); ++j) {
          if (i != j) {
            out.push_back(router.route(arch.network(), ft.host(i),
                                       ft.host(j), id++, nullptr));
          }
        }
      }
      return out;
    };
    auto before = route_pairs();
    double base = aggregate_throughput(ft, before);
    net::NodeId victim = ft.agg(0, 0);
    arch.network().fail_node(victim);
    net::NodeId shadow = arch.activate_shadow(victim);

    // The 1:1 failover is transparent: traffic that addressed the failed
    // switch now flows through its shadow over the mesh — the path is
    // the same modulo the substituted hop. Build `after` by substitution
    // and verify it is live (which is exactly what the mesh guarantees).
    auto after = before;
    for (net::Path& p : after) {
      for (std::size_t i = 0; i < p.nodes.size(); ++i) {
        if (p.nodes[i] != victim) continue;
        p.nodes[i] = shadow;
        p.links[i - 1] =
            *arch.network().find_link(p.nodes[i - 1], shadow);
        p.links[i] = *arch.network().find_link(shadow, p.nodes[i + 1]);
      }
      if (!net::is_live_path(arch.network(), p)) p = net::Path{};
    }
    Characteristics ch;
    ch.throughput_ratio = aggregate_throughput(ft, after) / base;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (after[i].empty()) {
        ch.upstream_repair = true;  // substitution failed: would reroute
        continue;
      }
      ch.max_dilation_hops = std::max(
          ch.max_dilation_hops, static_cast<double>(after[i].hops()) -
                                    static_cast<double>(before[i].hops()));
    }
    print_row("1:1 backup", ch);
  }
  {  // ShareBackup: recover first, then measure — topology is identical.
    sharebackup::FabricParams fp;
    fp.fat_tree = bench::paper_fat_tree(k);
    sharebackup::Fabric fabric(fp);
    control::Controller ctrl(fabric, control::ControllerConfig{});
    topo::FatTree& ft = fabric.fat_tree();
    routing::EcmpWithGlobalRerouteRouter router(ft, 2);

    auto before = route_all_pairs(ft, router);
    double base = aggregate_throughput(ft, before);
    topo::SwitchPosition pos{topo::Layer::kAgg, 0, 0};
    ft.network().fail_node(fabric.node_at(pos));
    bool ok = ctrl.on_switch_failure(pos).recovered;
    auto after = route_all_pairs(ft, router);
    Characteristics ch;
    ch.throughput_ratio = aggregate_throughput(ft, after) / base;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (after[i].nodes != before[i].nodes) ch.upstream_repair = true;
      ch.max_dilation_hops = std::max(
          ch.max_dilation_hops, static_cast<double>(after[i].hops()) -
                                    static_cast<double>(before[i].hops()));
    }
    print_row(ok ? "ShareBackup" : "ShareBackup(!)", ch);
  }

  std::printf(
      "\nPaper's Table 3: ShareBackup is the only architecture with no\n"
      "bandwidth loss, no path dilation, and no upstream repair. Fat-tree\n"
      "loses bandwidth and repairs upstream; F10 loses bandwidth and\n"
      "dilates paths (but repairs locally).\n");
  return 0;
}
