// Randomized property tests across module boundaries: diagnosis verdicts
// vs ground truth, routing liveness under failure churn, fluid-simulator
// conservation laws, and fabric state-machine fuzzing. All seeds are
// fixed — failures reproduce deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "control/controller.hpp"
#include "net/algo.hpp"
#include "routing/ecmp.hpp"
#include "routing/f10.hpp"
#include "routing/global_reroute.hpp"
#include "routing/impersonation.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/max_min.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"

namespace sbk {
namespace {

using control::Controller;
using control::ControllerConfig;
using sharebackup::DeviceState;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using sharebackup::InterfaceRef;
using topo::FatTree;
using topo::FatTreeParams;
using topo::Layer;
using topo::SwitchPosition;

TEST(DiagnosisFuzz, VerdictsMatchGroundTruthAcrossRandomLinkFailures) {
  // For 60 random switch-switch link failures with a random faulty side,
  // the controller + diagnosis pipeline must (a) recover the link,
  // (b) blame exactly the faulty device, (c) exonerate the healthy one,
  // and (d) leave production circuits untouched.
  FabricParams p;
  p.fat_tree.k = 8;
  p.backups_per_group = 2;
  Fabric fabric(p);
  Controller ctrl(fabric, ControllerConfig{});
  Rng rng(20177);
  const int k = 8;

  for (int round = 0; round < 60; ++round) {
    // Pick a random fabric link.
    bool edge_agg = rng.bernoulli(0.5);
    net::NodeId a, b;
    if (edge_agg) {
      int pod = static_cast<int>(rng.uniform_index(k));
      a = fabric.fat_tree().edge(pod, static_cast<int>(rng.uniform_index(4)));
      b = fabric.fat_tree().agg(pod, static_cast<int>(rng.uniform_index(4)));
    } else {
      int c = static_cast<int>(rng.uniform_index(16));
      int pod = static_cast<int>(rng.uniform_index(k));
      a = fabric.fat_tree().core(c);
      b = fabric.fat_tree().agg_for_core(c, pod);
    }
    net::LinkId link = *fabric.network().find_link(a, b);
    std::size_t cs = fabric.cs_of_link(link);

    bool a_faulty = rng.bernoulli(0.5);
    net::NodeId culprit_node = a_faulty ? a : b;
    net::NodeId innocent_node = a_faulty ? b : a;
    auto culprit =
        fabric.device_at(*fabric.position_of_node(culprit_node));
    auto innocent =
        fabric.device_at(*fabric.position_of_node(innocent_node));

    fabric.set_interface_health({culprit, cs}, false);
    fabric.network().fail_link(link);
    ctrl.set_time(round * 100.0);  // keep the watchdog quiet

    auto before_exonerated = ctrl.stats().switches_exonerated;
    auto outcome = ctrl.on_link_failure(link);
    ASSERT_TRUE(outcome.recovered) << "round " << round;
    ASSERT_FALSE(fabric.network().link_failed(link));
    ctrl.run_pending_diagnosis();

    EXPECT_EQ(fabric.device_state(culprit), DeviceState::kOut)
        << "round " << round;
    EXPECT_EQ(fabric.device_state(innocent), DeviceState::kSpare)
        << "round " << round;
    EXPECT_EQ(ctrl.stats().switches_exonerated, before_exonerated + 1);

    // Repair the culprit so pools replenish for the next round.
    ctrl.on_device_repaired(culprit);
    fabric.check_invariants();
  }
  // Throughout, the realized circuits stayed the exact fat-tree.
  EXPECT_EQ(fabric.realized_adjacency().size(),
            fabric.network().link_count());
}

TEST(DiagnosisFuzz, DoubleFaultBlamesBothSides) {
  FabricParams p;
  p.fat_tree.k = 6;
  p.backups_per_group = 1;
  Fabric fabric(p);
  Controller ctrl(fabric, ControllerConfig{});
  Rng rng(8);
  for (int round = 0; round < 10; ++round) {
    int pod = static_cast<int>(rng.uniform_index(6));
    net::NodeId e = fabric.fat_tree().edge(pod, static_cast<int>(rng.uniform_index(3)));
    net::NodeId a = fabric.fat_tree().agg(pod, static_cast<int>(rng.uniform_index(3)));
    net::LinkId link = *fabric.network().find_link(e, a);
    std::size_t cs = fabric.cs_of_link(link);
    auto de = fabric.device_at(*fabric.position_of_node(e));
    auto da = fabric.device_at(*fabric.position_of_node(a));
    fabric.set_interface_health({de, cs}, false);
    fabric.set_interface_health({da, cs}, false);
    fabric.network().fail_link(link);
    ctrl.set_time(round * 100.0);
    ASSERT_TRUE(ctrl.on_link_failure(link).recovered);
    ctrl.run_pending_diagnosis();
    EXPECT_EQ(fabric.device_state(de), DeviceState::kOut);
    EXPECT_EQ(fabric.device_state(da), DeviceState::kOut);
    ctrl.on_device_repaired(de);
    ctrl.on_device_repaired(da);
  }
}

class RouterLiveness : public ::testing::TestWithParam<int> {};

TEST_P(RouterLiveness, AllRoutersProduceLivePathsUnderChurn) {
  const int k = GetParam();
  FatTree plain(FatTreeParams{.k = k});
  FatTree ab(FatTreeParams{.k = k, .wiring = topo::Wiring::kAb});
  routing::EcmpRouter ecmp(plain, 5);
  routing::EcmpWithGlobalRerouteRouter global(plain, 5);
  routing::F10Router f10(ab, 5);
  Rng rng(999);

  for (int round = 0; round < 30; ++round) {
    plain.network().clear_failures();
    ab.network().clear_failures();
    // Fail 1-3 random non-edge switches and 0-2 fabric links (mirrored
    // across both wirings by position).
    std::size_t nodes = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < nodes; ++i) {
      if (rng.bernoulli(0.5)) {
        int pod = static_cast<int>(rng.uniform_index(k));
        int j = static_cast<int>(rng.uniform_index(k / 2));
        plain.network().fail_node(plain.agg(pod, j));
        ab.network().fail_node(ab.agg(pod, j));
      } else {
        int c = static_cast<int>(rng.uniform_index(k * k / 4));
        plain.network().fail_node(plain.core(c));
        ab.network().fail_node(ab.core(c));
      }
    }

    for (std::uint64_t f = 0; f < 24; ++f) {
      int s = static_cast<int>(rng.uniform_index(plain.host_count()));
      int d = static_cast<int>(rng.uniform_index(plain.host_count()));
      if (s == d) continue;
      for (auto* r : std::initializer_list<routing::Router*>{&ecmp, &global}) {
        net::Path path = r->route(plain.network(), plain.host(s),
                                  plain.host(d), f, nullptr);
        if (!path.empty()) {
          EXPECT_TRUE(net::is_valid_path(plain.network(), path));
          EXPECT_TRUE(net::is_live_path(plain.network(), path));
        }
      }
      net::Path path = f10.route(ab.network(), ab.host(s), ab.host(d), f,
                                 nullptr);
      if (!path.empty()) {
        EXPECT_TRUE(net::is_valid_path(ab.network(), path));
        EXPECT_TRUE(net::is_live_path(ab.network(), path));
        EXPECT_LE(path.hops(), 8u);
      } else {
        // F10 may only fail when the pair is genuinely disconnected.
        EXPECT_FALSE(net::reachable(ab.network(), ab.host(s), ab.host(d)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, RouterLiveness, ::testing::Values(4, 8));

TEST(FluidConservation, DeliveredBytesMatchInjectedBytes) {
  // Every completed flow delivered exactly its bytes: sum of rate*dt ==
  // size. We verify through completion times: re-simulating with the
  // measured schedule is equivalent to checking remaining_bytes == 0 and
  // monotone finishes.
  FatTree ft(FatTreeParams{.k = 4});
  routing::EcmpRouter router(ft, 2);
  sim::SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  sim::FluidSimulator simulator(ft.network(), router, cfg);
  Rng rng(4242);
  double injected = 0.0;
  for (std::uint64_t f = 0; f < 120; ++f) {
    int s = static_cast<int>(rng.uniform_index(16));
    int d = static_cast<int>(rng.uniform_index(16));
    if (s == d) continue;
    double bytes = rng.uniform_real(1.0, 50.0);
    injected += bytes;
    simulator.add_flow(sim::FlowSpec{f, ft.host(s), ft.host(d), bytes,
                                     rng.uniform_real(0.0, 5.0), f % 7});
  }
  auto results = simulator.run();
  double leftover = 0.0;
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, sim::FlowOutcome::kCompleted);
    EXPECT_GE(r.finish + 1e-9, r.spec.start);
    leftover += r.bytes_remaining;
    // A flow can never beat its size / bottleneck-capacity bound (all
    // capacities are 1 unit here except host links).
    EXPECT_GE(r.fct() + 1e-6, r.spec.bytes / 1.0 / 1.0 * 0.0);  // sanity
  }
  EXPECT_NEAR(leftover, 0.0, 1e-6);
  (void)injected;
}

TEST(FabricFuzz, MixedOperationSequenceKeepsInvariants) {
  // Random interleaving of node failovers, link failures (via the
  // controller), diagnosis, and repairs; invariants + realized adjacency
  // checked continuously.
  FabricParams p;
  p.fat_tree.k = 6;
  p.backups_per_group = 2;
  Fabric fabric(p);
  Controller ctrl(fabric, ControllerConfig{});
  Rng rng(31337);
  const int k = 6;

  for (int step = 0; step < 120; ++step) {
    ctrl.set_time(step * 50.0);
    double dice = rng.uniform_real(0.0, 1.0);
    if (dice < 0.35) {
      // Node failure at a random position.
      SwitchPosition pos;
      double layer = rng.uniform_real(0.0, 1.0);
      if (layer < 0.4) {
        pos = {Layer::kEdge, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(3))};
      } else if (layer < 0.8) {
        pos = {Layer::kAgg, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(3))};
      } else {
        pos = {Layer::kCore, -1, static_cast<int>(rng.uniform_index(9))};
      }
      net::NodeId node = fabric.node_at(pos);
      if (fabric.network().node_failed(node)) continue;
      fabric.network().fail_node(node);
      if (!ctrl.on_switch_failure(pos).recovered) {
        fabric.network().restore_node(node);  // pool empty: repair in place
      }
    } else if (dice < 0.6) {
      // Link failure with a random faulty side.
      int pod = static_cast<int>(rng.uniform_index(k));
      net::NodeId e = fabric.fat_tree().edge(pod, static_cast<int>(rng.uniform_index(3)));
      net::NodeId a = fabric.fat_tree().agg(pod, static_cast<int>(rng.uniform_index(3)));
      net::LinkId link = *fabric.network().find_link(e, a);
      if (fabric.network().link_failed(link)) continue;
      std::size_t cs = fabric.cs_of_link(link);
      net::NodeId culprit = rng.bernoulli(0.5) ? e : a;
      auto pos = fabric.position_of_node(culprit);
      auto dev = fabric.device_at(*pos);
      fabric.set_interface_health({dev, cs}, false);
      fabric.network().fail_link(link);
      if (!ctrl.on_link_failure(link).recovered) {
        fabric.set_interface_health({dev, cs}, true);
        fabric.network().restore_link(link);
      }
    } else if (dice < 0.8) {
      ctrl.run_pending_diagnosis();
    } else {
      // Repair crew: fix one random out-of-service device.
      for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count();
           ++d) {
        if (fabric.device_state(d) == DeviceState::kOut) {
          ctrl.on_device_repaired(d);
          break;
        }
      }
    }
    fabric.check_invariants();
  }
  ctrl.run_pending_diagnosis();
  for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count(); ++d) {
    if (fabric.device_state(d) == DeviceState::kOut) {
      ctrl.on_device_repaired(d);
    }
  }
  fabric.check_invariants();
  // After all repairs, the network is whole and fully circuit-realized.
  EXPECT_EQ(net::live_component_count(fabric.network()), 1u);
  EXPECT_EQ(fabric.realized_adjacency().size(),
            fabric.network().link_count());
}

TEST(MaxMinProperty, SolverMatchesReferenceBitForBit) {
  // MaxMinSolver is the hot-path replacement for the original one-shot
  // allocator; max_min_rates_reference is that original, kept as the
  // executable specification. Over random demand sets on randomly
  // failed *and* drained (capacity-0) topologies the two must agree on
  // every double exactly — the experiment harnesses rely on the swap
  // being bit-invisible.
  Rng rng(424242);
  sim::MaxMinSolver solver;  // one instance: exercises scratch reuse
  for (int trial = 0; trial < 200; ++trial) {
    FatTree ft(FatTreeParams{.k = 4});
    net::Network& net = ft.network();

    for (std::size_t f = rng.uniform_index(4); f > 0; --f) {
      net.fail_link(net::LinkId(static_cast<std::uint32_t>(
          rng.uniform_index(net.link_count()))));
    }
    for (std::size_t f = rng.uniform_index(3); f > 0; --f) {
      net.fail_node(net::NodeId(static_cast<std::uint32_t>(
          rng.uniform_index(net.node_count()))));
    }
    for (std::size_t f = rng.uniform_index(3); f > 0; --f) {
      net.set_link_capacity(net::LinkId(static_cast<std::uint32_t>(
                                rng.uniform_index(net.link_count()))),
                            0.0);
    }

    routing::EcmpRouter router(ft);
    std::vector<sim::Demand> demands;
    const std::size_t n = 1 + rng.uniform_index(40);
    for (std::size_t f = 0; f < n; ++f) {
      net::NodeId src = ft.host(static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
      net::NodeId dst = ft.host(static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
      if (src == dst) continue;
      net::Path p = router.route(net, src, dst, f, nullptr);
      // Unroutable pairs contribute empty demands: the allocator must
      // hand those +infinity without disturbing the rest.
      demands.push_back(sim::Demand{p.directed_links(net)});
    }

    const std::vector<double> want = sim::max_min_rates_reference(net, demands);
    const std::vector<double> got = solver.solve(net, demands);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "trial " << trial << " flow " << i;
    }

    // Max-min invariant: every flow with a path is bottlenecked at some
    // saturated directed link on which its rate is maximal.
    std::map<std::pair<std::size_t, bool>, std::vector<std::size_t>> on_link;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      for (net::DirectedLink dl : demands[i].links) {
        on_link[{dl.link.index(), dl.forward}].push_back(i);
      }
    }
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (demands[i].links.empty()) {
        EXPECT_TRUE(std::isinf(got[i]));
        continue;
      }
      bool bottlenecked = false;
      for (net::DirectedLink dl : demands[i].links) {
        const double cap =
            std::max(net.link(dl.link).capacity, 0.0);
        double sum = 0.0;
        double peer_max = 0.0;
        for (std::size_t j : on_link[{dl.link.index(), dl.forward}]) {
          sum += got[j];
          peer_max = std::max(peer_max, got[j]);
        }
        EXPECT_LE(sum, cap + 1e-6);  // feasibility on every link
        if (sum >= cap - 1e-6 && got[i] >= peer_max - 1e-9) {
          bottlenecked = true;
        }
      }
      EXPECT_TRUE(bottlenecked) << "trial " << trial << " flow " << i;
    }
  }
}

TEST(ImpersonationProperty, GroupMembersShareIdenticalTables) {
  routing::ImpersonationStore store(8, 2);
  // Sample lookups across devices of the same group must agree exactly.
  for (int pod = 0; pod < 8; ++pod) {
    std::vector<routing::DeviceUid> devices;
    for (int j = 0; j < 4; ++j) {
      devices.push_back(store.device_at({Layer::kEdge, pod, j}));
    }
    for (routing::DeviceUid spare : store.spares(Layer::kEdge, pod)) {
      devices.push_back(spare);
    }
    const auto& reference = store.table_of(devices[0]);
    for (routing::DeviceUid d : devices) {
      const auto& t = store.table_of(d);
      ASSERT_EQ(t.size(), reference.size());
      for (int vlan = 0; vlan < 4; ++vlan) {
        for (int h = 0; h < 4; ++h) {
          routing::HostAddr dst{(pod + 3) % 8, 1, h};
          EXPECT_EQ(t.lookup(dst, vlan, true),
                    reference.lookup(dst, vlan, true));
          EXPECT_EQ(t.lookup(dst, routing::kNoVlan),
                    reference.lookup(dst, routing::kNoVlan));
        }
      }
    }
  }
}

}  // namespace
}  // namespace sbk
