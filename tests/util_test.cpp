// Unit tests for src/util: contracts, RNG, statistics, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/flat_map.hpp"
#include "util/keys.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace sbk {
namespace {

TEST(PackPairKey, DistinctPairsGetDistinctKeys) {
  // The adversarial aliasing cases the naive shift-or packing gets
  // wrong: (1, 2^32) vs (2, 0) collide when the low word bleeds.
  EXPECT_NE(util::pack_pair_key(0u, 1u), util::pack_pair_key(1u, 0u));
  EXPECT_NE(util::pack_pair_key(7u, 9u), util::pack_pair_key(9u, 7u));
  EXPECT_EQ(util::pack_pair_key(3u, 4u),
            (std::uint64_t{3} << 32) | std::uint64_t{4});
  // Full u32 range round-trips without truncation.
  const std::uint64_t key = util::pack_pair_key(0xFFFF'FFFFu, 0xFFFF'FFFEu);
  EXPECT_EQ(key >> 32, 0xFFFF'FFFFull);
  EXPECT_EQ(key & 0xFFFF'FFFFull, 0xFFFF'FFFEull);
}

TEST(PackPairKey, RejectsOperandsWiderThan32Bits) {
  // A std::size_t circuit-switch id of 2^32 + 5 would silently alias
  // with (device + 1, 5) under the naive packing; the checked version
  // refuses instead.
  const std::size_t huge = (std::size_t{1} << 32) + 5;
  EXPECT_THROW((void)util::pack_pair_key(std::size_t{1}, huge),
               ContractViolation);
  EXPECT_THROW((void)util::pack_pair_key(huge, std::size_t{0}),
               ContractViolation);
  EXPECT_NO_THROW((void)util::pack_pair_key(std::size_t{1}, std::size_t{5}));
}

TEST(PackPairKey, RejectsNegativeSignedOperands) {
  // Sign extension would smear a negative id across both words.
  EXPECT_THROW((void)util::pack_pair_key(-1, 0), ContractViolation);
  EXPECT_THROW((void)util::pack_pair_key(0, -2), ContractViolation);
  EXPECT_EQ(util::pack_pair_key(1, 2), util::pack_pair_key(1u, 2u));
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "12", "--csv=out.csv", "34", "--top=5"};
  auto r = cli::parse_args(5, const_cast<char**>(argv),
                           {{"csv", true}, {"top", true}}, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.positional.size(), 2u);
  EXPECT_EQ(r.positional[0], "12");
  EXPECT_EQ(r.positional[1], "34");
  EXPECT_EQ(r.value_of("csv").value_or(""), "out.csv");
  EXPECT_EQ(r.value_of("top").value_or(""), "5");
  EXPECT_FALSE(r.value_of("absent").has_value());
}

TEST(Cli, RejectsUnknownFlagsAndMissingValues) {
  {
    const char* argv[] = {"prog", "--bogus=1"};
    auto r = cli::parse_args(2, const_cast<char**>(argv), {{"csv", true}}, 4);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("--bogus"), std::string::npos);
  }
  {
    const char* argv[] = {"prog", "--csv"};
    auto r = cli::parse_args(2, const_cast<char**>(argv), {{"csv", true}}, 4);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("requires a value"), std::string::npos);
  }
  {
    const char* argv[] = {"prog", "a", "b"};
    auto r = cli::parse_args(3, const_cast<char**>(argv), {}, 1);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("extra argument"), std::string::npos);
  }
}

TEST(Cli, ParseIntAndDoubleRejectPartialTokens) {
  EXPECT_EQ(cli::parse_int("42").value_or(-1), 42);
  EXPECT_FALSE(cli::parse_int("42x").has_value());
  EXPECT_FALSE(cli::parse_int("").has_value());
  EXPECT_DOUBLE_EQ(cli::parse_double("2.5").value_or(-1.0), 2.5);
  EXPECT_FALSE(cli::parse_double("2.5GB").has_value());
}

TEST(Assert, ExpectsThrowsContractViolation) {
  EXPECT_THROW(SBK_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(SBK_EXPECTS(1 == 1));
}

TEST(Assert, MessageNamesExpressionAndLocation) {
  try {
    SBK_EXPECTS_MSG(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("extra context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, DeterministicAcrossInstancesWithSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(7);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);

  auto partial = rng.sample_without_replacement(100, 5);
  EXPECT_EQ(partial.size(), 5u);
  std::sort(partial.begin(), partial.end());
  EXPECT_TRUE(std::adjacent_find(partial.begin(), partial.end()) ==
              partial.end());
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(3);
  double xm = 2.0;
  int above_10x = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.pareto(xm, 1.1);
    EXPECT_GE(v, xm);
    if (v > 10 * xm) ++above_10x;
  }
  // Pareto(alpha=1.1): P(X > 10 xm) = 10^-1.1 ~ 7.9%.
  EXPECT_GT(above_10x, 400);
  EXPECT_LT(above_10x, 1600);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(9);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(Rng, PreconditionsEnforced) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 4), ContractViolation);
  EXPECT_THROW((void)rng.uniform_index(0), ContractViolation);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               ContractViolation);
}

TEST(Summary, BasicMoments) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add_all({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(Summary, EmptyQueriesThrow) {
  Summary s;
  EXPECT_THROW((void)s.mean(), ContractViolation);
  EXPECT_THROW((void)s.percentile(50), ContractViolation);
}

TEST(Cdf, CoversMinAndMaxWithMonotoneFractions) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  auto cdf = empirical_cdf(xs, 10);
  ASSERT_EQ(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Summary, MergeAppendsSamplesInOrder) {
  Summary a;
  a.add_all({1.0, 3.0});
  Summary b;
  b.add_all({2.0, 4.0});
  a.merge(b);
  EXPECT_EQ(a.samples(), (std::vector<double>{1.0, 3.0, 2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.median(), 2.5);
  a.merge(Summary{});  // merging an empty accumulator is a no-op
  EXPECT_EQ(a.count(), 4u);
}

TEST(Cdf, SingleSampleCollapsesToOneStep) {
  auto cdf = empirical_cdf({3.5}, 10);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 3.5);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0);
}

TEST(Summary, SingleSamplePercentileIsTheSample) {
  // Regression: the interpolated rank formula degenerates at n == 1
  // (rank span of zero); every percentile of one sample is that sample.
  Summary s;
  s.add(7.25);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.25);
  EXPECT_DOUBLE_EQ(s.median(), 7.25);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.25);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.25);
}

TEST(Cdf, PercentileReadsBackOffTheCurve) {
  auto cdf = empirical_cdf({10.0, 20.0, 30.0, 40.0}, 10);
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 0), 10.0);
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 100), 40.0);
  // F(10)=0.25, F(20)=0.5: p=37.5 interpolates halfway between them.
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 37.5), 15.0);
  // Below the first point's fraction there is nothing to bracket.
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 10), 10.0);
}

TEST(Cdf, PercentileOfSingleSampleCdfIsTheSample) {
  // Regression: a one-sample CDF has a single point at F = 1, so the
  // two-point interpolation has no bracketing pair; every percentile
  // must return the sample instead of reading past the curve.
  auto cdf = empirical_cdf({3.5}, 10);
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 0), 3.5);
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 50), 3.5);
  EXPECT_DOUBLE_EQ(cdf_percentile(cdf, 100), 3.5);
  EXPECT_THROW((void)cdf_percentile({}, 50), ContractViolation);
}

TEST(Csv, NumExactRoundTripsFullPrecision) {
  // num() compresses to 6 significant digits for human-facing tables;
  // num_exact() must round-trip the exact double for outputs that are
  // re-parsed and compared (recovery timelines vs. traces).
  const double v = 0.01225007;
  EXPECT_EQ(CsvWriter::num(v), "0.0122501");  // lossy by design
  EXPECT_EQ(std::stod(CsvWriter::num_exact(v)), v);
  EXPECT_EQ(CsvWriter::num_exact(3.0), "3");
}

TEST(Cdf, RejectsFewerThanTwoMaxPoints) {
  EXPECT_THROW((void)empirical_cdf({1.0, 2.0}, 1), ContractViolation);
  EXPECT_THROW((void)empirical_cdf({1.0, 2.0}, 0), ContractViolation);
}

TEST(Histogram, RejectsBadBoundsBeforeDerivingWidth) {
  // Regression: the width used to be computed in the member-init list
  // before the preconditions ran, yielding inf/NaN widths on bad input
  // instead of a clean contract violation.
  EXPECT_THROW(Histogram(0.0, 10.0, 0), ContractViolation);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(7.0, 2.0, 4), ContractViolation);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(42.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, NumFormatsIntegersWithoutDecimalNoise) {
  EXPECT_EQ(CsvWriter::num(3.0), "3");
  EXPECT_EQ(CsvWriter::num(3.25), "3.25");
  EXPECT_EQ(CsvWriter::num(std::size_t{17}), "17");
}

TEST(FlatKeyMap, FindMissReturnsNullAndEmplaceInserts) {
  util::FlatKeyMap<int> m;
  EXPECT_EQ(m.find(7), nullptr);  // empty map: no probe table yet
  int& v = m.find_or_emplace(7, [] { return 42; });
  EXPECT_EQ(v, 42);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 42);
  EXPECT_EQ(m.size(), 1u);
  // Second emplace with the same key must NOT call the factory.
  bool called = false;
  int& again = m.find_or_emplace(7, [&called] {
    called = true;
    return -1;
  });
  EXPECT_EQ(again, 42);
  EXPECT_FALSE(called);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatKeyMap, SurvivesGrowthAndStructuredKeys) {
  // pack_pair_key output is highly structured (small ints in each half);
  // insert a few thousand such keys to push through several growth
  // doublings and verify every value survives relocation.
  util::FlatKeyMap<std::uint64_t> m;
  for (std::uint32_t a = 0; a < 64; ++a) {
    for (std::uint32_t b = 0; b < 64; ++b) {
      const std::uint64_t key = util::pack_pair_key(a, b);
      m.find_or_emplace(key, [a, b] {
        return static_cast<std::uint64_t>(a) * 1000 + b;
      });
    }
  }
  EXPECT_EQ(m.size(), 64u * 64u);
  for (std::uint32_t a = 0; a < 64; ++a) {
    for (std::uint32_t b = 0; b < 64; ++b) {
      auto* v = m.find(util::pack_pair_key(a, b));
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, static_cast<std::uint64_t>(a) * 1000 + b);
    }
  }
}

TEST(FlatKeyMap, ClearEmptiesButAllowsReuse) {
  util::FlatKeyMap<std::string> m;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    m.find_or_emplace(k, [k] { return std::to_string(k); });
  }
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(50), nullptr);
  std::string& v = m.find_or_emplace(50, [] { return std::string("fresh"); });
  EXPECT_EQ(v, "fresh");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatKeyMap, RejectsReservedKey) {
  util::FlatKeyMap<int> m;
  EXPECT_THROW(m.find_or_emplace(util::FlatKeyMap<int>::kEmptyKey,
                                 [] { return 0; }),
               ContractViolation);
}

TEST(FlatKeyMap, RefReadsValueWhileGenerationUnchanged) {
  util::FlatKeyMap<int> m;
  auto ref = m.find_or_emplace_ref(7, [] { return 42; });
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(*ref, 42);
  *ref = 43;  // writable through the ref
  EXPECT_EQ(*m.find(7), 43);
  // Insertions that do NOT trigger growth leave the ref usable (the
  // initial table holds 16 slots; 2 entries stay under the 70% load
  // threshold).
  m.find_or_emplace(8, [] { return 0; });
  EXPECT_EQ(m.generation(), 1u);  // only the initial 0 -> 16 growth
  EXPECT_EQ(*ref, 43);
}

TEST(FlatKeyMap, RefThrowsAfterRehash) {
  util::FlatKeyMap<int> m;
  auto ref = m.find_or_emplace_ref(1, [] { return 10; });
  const std::uint64_t gen = m.generation();
  // Push past the 70% load factor of the initial 16-slot table so the
  // map grows and relocates every value.
  for (std::uint64_t k = 2; k <= 20; ++k) {
    m.find_or_emplace(k, [] { return 0; });
  }
  ASSERT_GT(m.generation(), gen);
  EXPECT_THROW((void)*ref, ContractViolation);
  EXPECT_THROW((void)ref.get(), ContractViolation);
  // A fresh ref to the same key works again.
  auto fresh = m.find_ref(1);
  ASSERT_TRUE(fresh.valid());
  EXPECT_EQ(*fresh, 10);
}

TEST(FlatKeyMap, RefThrowsAfterClear) {
  util::FlatKeyMap<int> m;
  auto ref = m.find_or_emplace_ref(5, [] { return 99; });
  m.clear();
  EXPECT_THROW((void)*ref, ContractViolation);
  EXPECT_FALSE(m.find_ref(5).valid());  // absent key -> invalid ref
}

TEST(FlatKeyMap, EmptyRefThrowsOnDereference) {
  util::FlatKeyMap<int>::Ref ref;
  EXPECT_FALSE(ref.valid());
  EXPECT_THROW((void)*ref, ContractViolation);
}

TEST(Time, UnitHelpers) {
  EXPECT_DOUBLE_EQ(milliseconds(3), 0.003);
  EXPECT_DOUBLE_EQ(microseconds(40), 4e-5);
  EXPECT_DOUBLE_EQ(nanoseconds(70), 7e-8);
  EXPECT_DOUBLE_EQ(minutes(5), 300.0);
}

}  // namespace
}  // namespace sbk
