// The assembled ShareBackup control plane: failure detector + controller
// + routing-table mirror + (optional) controller cluster, wired over one
// discrete-event queue. This is the component a deployment would run;
// the pieces remain independently usable and tested.
//
// Event flow (all on the shared EventQueue):
//   keep-alive miss ──> node-failure report ──┐
//   link-probe miss ──> link-failure report ──┤ (control channel may
//                                             │  lose/delay reports via
//                                             │  the fault hook; reports
//                                             │  arriving while no
//                                             │  primary controller is
//                                             │  up are buffered and
//                                             │  replayed to the newly
//                                             │  elected primary)
//                                   controller acts: failover /
//                                   dual-replace / host policy
//                                             │
//                       diagnosis scheduled after `diagnosis_delay`
//                       (strictly background, §4.2) — including for
//                       diagnoses queued by retried parked recoveries
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "control/controller.hpp"
#include "control/controller_cluster.hpp"
#include "control/failure_detector.hpp"
#include "control/table_manager.hpp"
#include "sim/event_queue.hpp"

namespace sbk::control {

struct ControlPlaneConfig {
  ControllerConfig controller;
  DetectorConfig detector;
  /// Controllers in the replicated cluster; 0 disables replication (a
  /// single, never-failing controller).
  std::size_t cluster_members = 3;
  ClusterConfig cluster;
  /// Delay before a queued offline diagnosis runs (it is background
  /// work; the paper only requires it off the critical path).
  Seconds diagnosis_delay = 1.0;
  /// Mirror failovers into an ImpersonationStore (§4.3 tables).
  bool manage_tables = true;
  /// Buffer failure reports that arrive while the cluster has no usable
  /// primary and replay them once an election completes, instead of
  /// dropping them (switches persist unacknowledged reports and re-send
  /// to the new primary). Disable to get the historical drop behavior.
  bool buffer_reports_during_election = true;
};

/// Everything §4 describes, assembled and self-driving.
class ControlPlane {
 public:
  ControlPlane(sharebackup::Fabric& fabric, sim::EventQueue& queue,
               ControlPlaneConfig config);

  /// Starts watching every switch and every link until `horizon`.
  void start(Seconds horizon);

  // --- component access -------------------------------------------------------
  [[nodiscard]] Controller& controller() noexcept { return controller_; }
  [[nodiscard]] const Controller& controller() const noexcept {
    return controller_;
  }
  [[nodiscard]] FailureDetector& detector() noexcept { return detector_; }
  [[nodiscard]] ControllerCluster* cluster() noexcept {
    return cluster_ ? &*cluster_ : nullptr;
  }
  [[nodiscard]] const TableManager* tables() const noexcept {
    return tables_ ? &*tables_ : nullptr;
  }

  /// Reports dropped because no primary controller was available (only
  /// with buffer_reports_during_election disabled, or without a cluster
  /// to buffer for).
  [[nodiscard]] std::size_t reports_dropped() const noexcept {
    return reports_dropped_;
  }
  /// Reports lost on the control channel by the fault hook.
  [[nodiscard]] std::size_t reports_lost() const noexcept {
    return reports_lost_;
  }
  /// Reports buffered while the cluster had no primary.
  [[nodiscard]] std::size_t reports_buffered() const noexcept {
    return reports_buffered_;
  }
  /// Buffered reports replayed to a newly elected primary.
  [[nodiscard]] std::size_t reports_replayed() const noexcept {
    return reports_replayed_;
  }

  /// Observer hook: called after every handled failure event.
  using RecoveryObserver =
      std::function<void(const RecoveryOutcome&, Seconds)>;
  void on_recovery(RecoveryObserver cb) { observer_ = std::move(cb); }

  /// Fault-injection surface for the switch->controller report channel.
  /// Called once per report; the return value decides its fate:
  /// nullopt = lost (never arrives; the detector's report_retry_interval
  /// is the recovery mechanism), 0 = delivered immediately, d > 0 =
  /// delivered after an extra delay of d seconds (delays reorder
  /// reports relative to each other). Default: every report delivered
  /// immediately.
  using ReportFaultHook = std::function<std::optional<Seconds>(
      bool is_link, std::uint64_t element, Seconds at)>;
  void set_report_fault_hook(ReportFaultHook hook) {
    report_fault_ = std::move(hook);
  }

  /// Wires one tracer through the detector (detection spans) and the
  /// controller (control-path + background spans) so both report into
  /// the same incidents. Pass nullptr to detach; must outlive `this`.
  void attach_tracer(obs::RecoveryTracer* tracer) noexcept {
    detector_.attach_tracer(tracer);
    controller_.attach_tracer(tracer);
  }
  /// Wires one registry through the detector and controller counters.
  void attach_metrics(obs::MetricsRegistry* metrics) {
    detector_.attach_metrics(metrics);
    controller_.attach_metrics(metrics);
  }
  /// Wires one flight recorder through the controller (control-path
  /// spans) and the report channel (lost/delayed/buffered/replayed
  /// instants). Pass nullptr to detach; must outlive `this`.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
    controller_.attach_recorder(recorder);
  }

 private:
  /// One failure report in flight or buffered (exactly one id is set).
  struct Report {
    std::optional<net::NodeId> node;
    std::optional<net::LinkId> link;
  };

  [[nodiscard]] bool controller_available() const;
  /// Applies the report fault hook, then delivers (possibly later).
  void deliver_report(Report r, Seconds t);
  /// Hands an arrived report to the controller, or buffers/drops it
  /// while the cluster is headless.
  void handle_report(const Report& r, Seconds t);
  void process_report(const Report& r, Seconds t);
  void schedule_diagnosis_if_pending();
  void replay_buffered(Seconds t);

  sharebackup::Fabric* fabric_;
  sim::EventQueue* queue_;
  ControlPlaneConfig config_;
  Controller controller_;
  FailureDetector detector_;
  std::optional<ControllerCluster> cluster_;
  std::optional<TableManager> tables_;
  RecoveryObserver observer_;
  ReportFaultHook report_fault_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::deque<Report> election_buffer_;
  std::size_t reports_dropped_ = 0;
  std::size_t reports_lost_ = 0;
  std::size_t reports_buffered_ = 0;
  std::size_t reports_replayed_ = 0;
};

}  // namespace sbk::control
