// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects, I.8 Ensures). Violations throw sbk::ContractViolation so
// tests can assert on them; they are never compiled out, because this
// library is a research artifact where correctness beats the last cycle.
#pragma once

#include <stdexcept>
#include <string>

namespace sbk {

/// Thrown when a precondition, postcondition, or internal invariant is
/// violated. Carries the failed expression and source location.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg);
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace sbk

/// Precondition: argument/state requirements at function entry.
#define SBK_EXPECTS(expr)                                                \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sbk::detail::contract_fail("Precondition", #expr, __FILE__,      \
                                   __LINE__, "");                        \
  } while (0)

/// Precondition with an explanatory message.
#define SBK_EXPECTS_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sbk::detail::contract_fail("Precondition", #expr, __FILE__,      \
                                   __LINE__, (msg));                     \
  } while (0)

/// Postcondition / invariant checked mid-function.
#define SBK_ENSURES(expr)                                                \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sbk::detail::contract_fail("Postcondition", #expr, __FILE__,     \
                                   __LINE__, "");                        \
  } while (0)

/// Internal invariant that indicates a library bug if it fires.
#define SBK_ASSERT(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sbk::detail::contract_fail("Invariant", #expr, __FILE__,         \
                                   __LINE__, "");                        \
  } while (0)

#define SBK_ASSERT_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sbk::detail::contract_fail("Invariant", #expr, __FILE__,         \
                                   __LINE__, (msg));                     \
  } while (0)

/// Marks unreachable control flow.
#define SBK_UNREACHABLE(msg)                                             \
  ::sbk::detail::contract_fail("Unreachable", "false", __FILE__,         \
                               __LINE__, (msg))
