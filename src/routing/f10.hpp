// F10-style local rerouting (Liu et al., NSDI'13), the paper's second
// baseline (§2.2). Routing is ECMP in normal operation. Under failures,
// decisions stay local to the switch adjacent to the failure:
//
//   * upward hops simply pick among the live uplinks (a purely local
//     choice, same as fat-tree);
//   * a broken downward hop is patched with F10's 3-hop detour: the
//     switch pushes the packet one level down to a sibling's child, back
//     up through an alternate parent, and down the originally intended
//     level — lengthening the path by 2 hops. The AB wiring guarantees an
//     alternate parent reaching a *different* aggregation switch of the
//     destination pod exists, which plain fat-tree wiring does not.
//
// The router expects a fat-tree built with Wiring::kAb; it also operates
// on plain wiring but will find fewer detours (and returns empty paths
// when none exists), mirroring reality.
//
// The greedy probe loops resolve neighbor links through a memoized
// find_link keyed on Network::structure_version() (liveness is still
// checked per call), so reroute storms cost hash lookups instead of
// adjacency-list scans. Instances are not thread-safe (see
// sweep::SweepRunner's scenario-private router contract).
#pragma once

#include "routing/path_cache.hpp"
#include "routing/router.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

class F10Router final : public Router {
 public:
  explicit F10Router(const topo::FatTree& ft, std::uint64_t salt = 0)
      : ft_(&ft), salt_(salt) {}

  [[nodiscard]] net::Path route(const net::Network& net, net::NodeId src,
                                net::NodeId dst, std::uint64_t flow_id,
                                const LinkLoads* loads) override;

  [[nodiscard]] const char* name() const noexcept override { return "f10"; }

 private:
  const topo::FatTree* ft_;
  std::uint64_t salt_;
  NeighborLinkCache links_;
};

}  // namespace sbk::routing
