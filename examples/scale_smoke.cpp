// Datacenter-scale smoke gate for the incremental max-min path.
//
//   scale_smoke [k] [--storm-pods=N] [--per-pod=N]
//               [--max-rss-mb=X] [--max-seconds=X] [--skip-ab] [--json=out]
//
// Two phases:
//   1. A/B identity (k=8): the same pod-local capacity-storm scenario is
//      simulated with the incremental allocator off and on; every
//      FlowResult must match bit-for-bit. --skip-ab disables the phase.
//   2. Scale storm (default k=48, 27,648 hosts): builds the fat-tree,
//      routes pod-local hotspot flows, and drives a drain/restore storm
//      through FluidSimulator with the incremental allocator. Peak RSS
//      (getrusage) and wall time are measured and, when --max-rss-mb /
//      --max-seconds are given, gated.
//
// A JSON summary goes to stdout (and to --json=FILE when given); the
// exit code is 0 only when the A/B phase matched and every gate held,
// so check.sh --scale-smoke can fail CI on a memory or time regression.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "routing/ecmp.hpp"
#include "sim/fluid_sim.hpp"
#include "topo/fat_tree.hpp"
#include "util/cli.hpp"
#include "util/rss.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "scale_smoke: %s\n", error.c_str());
  }
  std::fprintf(stderr,
               "usage: scale_smoke [k] [--storm-pods=N] [--per-pod=N]\n"
               "                   [--max-rss-mb=X] [--max-seconds=X]\n"
               "                   [--skip-ab] [--json=out.json]\n");
  return 2;
}

/// Pod-local hotspot storm scenario: `per_pod` flows out of each storm
/// pod's first host, plus one capacity drain/restore pair per storm pod
/// on that host's uplink. Returns the simulated FlowResults.
std::vector<sbk::sim::FlowResult> run_storm(sbk::topo::FatTree& ft,
                                            sbk::routing::EcmpRouter& router,
                                            int storm_pods, int per_pod,
                                            bool incremental) {
  namespace sim = sbk::sim;
  namespace net = sbk::net;
  const int hosts_per_pod = ft.host_count() / ft.pods();
  sim::SimConfig cfg;
  cfg.incremental_max_min = incremental;
  sim::FluidSimulator simulator(ft.network(), router, cfg);
  std::uint64_t id = 0;
  for (int p = 0; p < storm_pods; ++p) {
    const net::NodeId src = ft.host(p * hosts_per_pod);
    for (int f = 0; f < per_pod; ++f) {
      sim::FlowSpec fs;
      fs.id = id++;
      fs.src = src;
      fs.dst = ft.host(p * hosts_per_pod + 1 + f % (hosts_per_pod - 1));
      fs.bytes = 1.0;
      fs.start = 0.0;
      fs.coflow = static_cast<sim::CoflowId>(p);
      simulator.add_flow(fs);
    }
    const net::LinkId up =
        *ft.network().find_link(src, ft.edge_of_host(src));
    const double cap = ft.network().link(up).capacity;
    simulator.at(1.0 + p, [up](net::Network& n) {
      n.set_link_capacity(up, 0.25);
    });
    simulator.at(1.5 + p, [up, cap](net::Network& n) {
      n.set_link_capacity(up, cap);
    });
  }
  return simulator.run();
}

/// Phase 1: bit-identical FlowResults with the allocator off and on.
bool ab_identity_holds(std::string& detail) {
  sbk::topo::FatTree ft(sbk::topo::FatTreeParams{.k = 8});
  sbk::routing::EcmpRouter router(ft);
  const auto full = run_storm(ft, router, /*storm_pods=*/8, /*per_pod=*/12,
                              /*incremental=*/false);
  const auto incr = run_storm(ft, router, /*storm_pods=*/8, /*per_pod=*/12,
                              /*incremental=*/true);
  if (full.size() != incr.size()) {
    detail = "result count mismatch";
    return false;
  }
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i].spec.id != incr[i].spec.id ||
        full[i].outcome != incr[i].outcome ||
        full[i].finish != incr[i].finish ||
        full[i].bytes_remaining != incr[i].bytes_remaining) {
      std::ostringstream os;
      os << "flow " << full[i].spec.id << " diverges (finish "
         << full[i].finish << " vs " << incr[i].finish << ")";
      detail = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const sbk::cli::ParseResult args = sbk::cli::parse_args(
      argc, argv,
      {{"storm-pods", true},
       {"per-pod", true},
       {"max-rss-mb", true},
       {"max-seconds", true},
       {"skip-ab", false},
       {"json", true}},
      /*max_positional=*/1);
  if (!args.ok()) return usage(args.error);

  long long k = 48;
  if (!args.positional.empty()) {
    const auto parsed = sbk::cli::parse_int(args.positional[0]);
    if (!parsed || *parsed < 4 || *parsed % 2 != 0) {
      return usage("k must be an even integer >= 4");
    }
    k = *parsed;
  }
  auto int_flag = [&args](const char* name, long long fallback)
      -> std::optional<long long> {
    const auto text = args.value_of(name);
    if (!text) return fallback;
    return sbk::cli::parse_int(*text);
  };
  auto double_flag = [&args](const char* name, double fallback)
      -> std::optional<double> {
    const auto text = args.value_of(name);
    if (!text) return fallback;
    return sbk::cli::parse_double(*text);
  };
  const auto storm_pods = int_flag("storm-pods", 12);
  const auto per_pod = int_flag("per-pod", 32);
  const auto max_rss_mb = double_flag("max-rss-mb", 0.0);   // 0 = no gate
  const auto max_seconds = double_flag("max-seconds", 0.0); // 0 = no gate
  if (!storm_pods || !per_pod || !max_rss_mb || !max_seconds) {
    return usage("flag values must be numeric");
  }
  if (*storm_pods < 1 || *storm_pods > k || *per_pod < 1) {
    return usage("--storm-pods must be in [1, k] and --per-pod >= 1");
  }

  // Phase 1: A/B identity at small scale.
  bool ab_ok = true;
  std::string ab_detail;
  if (!args.has("skip-ab")) {
    ab_ok = ab_identity_holds(ab_detail);
    if (!ab_ok) {
      std::fprintf(stderr, "scale_smoke: A/B identity FAILED: %s\n",
                   ab_detail.c_str());
    }
  }

  // Phase 2: the scale storm, timed end to end (build + route + sim —
  // that is the cost a sweep pays per scenario).
  const auto t0 = std::chrono::steady_clock::now();
  sbk::topo::FatTree ft(
      sbk::topo::FatTreeParams{.k = static_cast<int>(k)});
  sbk::routing::EcmpRouter router(ft);
  const auto results =
      run_storm(ft, router, static_cast<int>(*storm_pods),
                static_cast<int>(*per_pod), /*incremental=*/true);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rss_mb = sbk::util::peak_rss_mb();

  std::size_t finished = 0;
  for (const auto& r : results) {
    if (r.outcome == sbk::sim::FlowOutcome::kCompleted) ++finished;
  }

  const bool rss_ok = *max_rss_mb <= 0.0 || rss_mb <= *max_rss_mb;
  const bool time_ok = *max_seconds <= 0.0 || wall_seconds <= *max_seconds;
  const bool pass = ab_ok && rss_ok && time_ok &&
                    finished == results.size() && !results.empty();

  std::ostringstream json;
  json << "{\"k\":" << k << ",\"hosts\":" << ft.host_count()
       << ",\"links\":" << ft.network().link_count()
       << ",\"flows\":" << results.size() << ",\"finished\":" << finished
       << ",\"storm_events\":" << 2 * *storm_pods
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"peak_rss_mb\":" << rss_mb
       << ",\"ab_identical\":" << (ab_ok ? "true" : "false")
       << ",\"gate_max_rss_mb\":" << *max_rss_mb
       << ",\"gate_max_seconds\":" << *max_seconds
       << ",\"pass\":" << (pass ? "true" : "false") << "}";
  std::cout << json.str() << "\n";
  if (const auto path = args.value_of("json")) {
    std::ofstream out(*path);
    out << json.str() << "\n";
  }

  if (!rss_ok) {
    std::fprintf(stderr,
                 "scale_smoke: peak RSS %.1f MB exceeds budget %.1f MB\n",
                 rss_mb, *max_rss_mb);
  }
  if (!time_ok) {
    std::fprintf(stderr,
                 "scale_smoke: wall time %.2f s exceeds budget %.2f s\n",
                 wall_seconds, *max_seconds);
  }
  return pass ? 0 : 1;
}
