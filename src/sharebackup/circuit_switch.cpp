#include "sharebackup/circuit_switch.hpp"

#include <algorithm>

namespace sbk::sharebackup {

CircuitSwitch::CircuitSwitch(std::string name, int regular_per_side,
                             int backups_per_side)
    : CircuitSwitch(std::move(name), regular_per_side, backups_per_side,
                    backups_per_side) {}

CircuitSwitch::CircuitSwitch(std::string name, int regular_per_side,
                             int south_backups, int north_backups)
    : name_(std::move(name)), regular_(regular_per_side),
      south_backups_(south_backups), north_backups_(north_backups) {
  SBK_EXPECTS(regular_ > 0);
  SBK_EXPECTS(south_backups_ >= 0 && north_backups_ >= 0);
  auto add = [this](PortClass cls, int slot) {
    class_.push_back(cls);
    slot_.push_back(slot);
  };
  for (int s = 0; s < regular_; ++s) add(PortClass::kSouthRegular, s);
  for (int s = 0; s < south_backups_; ++s) add(PortClass::kSouthBackup, s);
  for (int s = 0; s < regular_; ++s) add(PortClass::kNorthRegular, s);
  for (int s = 0; s < north_backups_; ++s) add(PortClass::kNorthBackup, s);
  add(PortClass::kSideLeft, 0);
  add(PortClass::kSideRight, 0);
  attach_.resize(class_.size());
  match_.assign(class_.size(), -1);
}

int CircuitSwitch::port(PortClass cls, int slot) const {
  switch (cls) {
    case PortClass::kSouthRegular:
      SBK_EXPECTS(slot >= 0 && slot < regular_);
      return slot;
    case PortClass::kSouthBackup:
      SBK_EXPECTS(slot >= 0 && slot < south_backups_);
      return regular_ + slot;
    case PortClass::kNorthRegular:
      SBK_EXPECTS(slot >= 0 && slot < regular_);
      return regular_ + south_backups_ + slot;
    case PortClass::kNorthBackup:
      SBK_EXPECTS(slot >= 0 && slot < north_backups_);
      return 2 * regular_ + south_backups_ + slot;
    case PortClass::kSideLeft:
      return 2 * regular_ + south_backups_ + north_backups_;
    case PortClass::kSideRight:
      return 2 * regular_ + south_backups_ + north_backups_ + 1;
  }
  SBK_UNREACHABLE("bad port class");
  return -1;
}

PortClass CircuitSwitch::port_class(int p) const {
  SBK_EXPECTS(p >= 0 && p < port_count());
  return class_[static_cast<std::size_t>(p)];
}

int CircuitSwitch::port_slot(int p) const {
  SBK_EXPECTS(p >= 0 && p < port_count());
  return slot_[static_cast<std::size_t>(p)];
}

void CircuitSwitch::attach_device(int p, std::uint32_t device,
                                  int interface_index) {
  SBK_EXPECTS(p >= 0 && p < port_count());
  SBK_EXPECTS_MSG(!is_side(class_[static_cast<std::size_t>(p)]),
                  "side ports carry ring cables, not device cables");
  Attachment& a = attach_[static_cast<std::size_t>(p)];
  SBK_EXPECTS_MSG(a.kind == Attachment::Kind::kNone,
                  "port already cabled");
  a.kind = Attachment::Kind::kDeviceInterface;
  a.device = device;
  a.interface_index = interface_index;
}

void CircuitSwitch::attach_side(int p, int peer_cs, int peer_port) {
  SBK_EXPECTS(p >= 0 && p < port_count());
  SBK_EXPECTS_MSG(is_side(class_[static_cast<std::size_t>(p)]),
                  "only side ports carry ring cables");
  Attachment& a = attach_[static_cast<std::size_t>(p)];
  SBK_EXPECTS_MSG(a.kind == Attachment::Kind::kNone, "port already cabled");
  a.kind = Attachment::Kind::kSidePeer;
  a.peer_cs = peer_cs;
  a.peer_port = peer_port;
}

const Attachment& CircuitSwitch::attachment(int p) const {
  SBK_EXPECTS(p >= 0 && p < port_count());
  return attach_[static_cast<std::size_t>(p)];
}

std::optional<int> CircuitSwitch::port_of_device(std::uint32_t device) const {
  for (int p = 0; p < port_count(); ++p) {
    const Attachment& a = attach_[static_cast<std::size_t>(p)];
    if (a.kind == Attachment::Kind::kDeviceInterface && a.device == device) {
      return p;
    }
  }
  return std::nullopt;
}

void CircuitSwitch::connect(int a, int b) {
  SBK_EXPECTS(a >= 0 && a < port_count() && b >= 0 && b < port_count());
  SBK_EXPECTS_MSG(a != b, "cannot loop a port back to itself");
  SBK_EXPECTS_MSG(match_[static_cast<std::size_t>(a)] == -1 &&
                      match_[static_cast<std::size_t>(b)] == -1,
                  "both ports must be free");
  match_[static_cast<std::size_t>(a)] = b;
  match_[static_cast<std::size_t>(b)] = a;
  ++reconfigurations_;
}

void CircuitSwitch::disconnect(int p) {
  SBK_EXPECTS(p >= 0 && p < port_count());
  int q = match_[static_cast<std::size_t>(p)];
  SBK_EXPECTS_MSG(q != -1, "port is not matched");
  match_[static_cast<std::size_t>(p)] = -1;
  match_[static_cast<std::size_t>(q)] = -1;
  ++reconfigurations_;
}

std::optional<int> CircuitSwitch::peer(int p) const {
  SBK_EXPECTS(p >= 0 && p < port_count());
  int q = match_[static_cast<std::size_t>(p)];
  if (q == -1) return std::nullopt;
  return q;
}

std::size_t CircuitSwitch::active_circuits() const {
  std::size_t matched = static_cast<std::size_t>(
      std::count_if(match_.begin(), match_.end(),
                    [](int m) { return m != -1; }));
  return matched / 2;
}

bool CircuitSwitch::matching_is_consistent() const {
  for (int p = 0; p < port_count(); ++p) {
    int q = match_[static_cast<std::size_t>(p)];
    if (q == -1) continue;
    if (q == p) return false;
    if (q < 0 || q >= port_count()) return false;
    if (match_[static_cast<std::size_t>(q)] != p) return false;
  }
  return true;
}

}  // namespace sbk::sharebackup
