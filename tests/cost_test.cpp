// Tests for the Table 2 / Figure 5 cost model, including the paper's
// headline numbers and a cross-validation of the closed forms against the
// structural census of a built Fabric.
#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "sharebackup/fabric.hpp"
#include "util/assert.hpp"

namespace sbk::cost {
namespace {

TEST(CostModel, FatTreeClosedForm) {
  PriceSet p = PriceSet::electrical();
  CostBreakdown c = fat_tree_cost(4, p);
  // k=4: 1.25*64 = 80 ports, 32 links.
  EXPECT_DOUBLE_EQ(c.packet_ports, 80 * 60.0);
  EXPECT_DOUBLE_EQ(c.links, 32 * 81.0);
  EXPECT_DOUBLE_EQ(c.circuit_ports, 0.0);
}

TEST(CostModel, PaperHeadlineNumbersK48N1) {
  // §5.2: at k=48, n=1 the additional cost of ShareBackup is 6.7% of the
  // fat-tree with copper (E-DC) and 13.3% with fiber (O-DC); Aspen Tree
  // costs 6.5x and 3.2x as much as ShareBackup's additional cost.
  const int k = 48;
  {
    PriceSet p = PriceSet::electrical();
    auto base = fat_tree_cost(k, p);
    auto sb = sharebackup_additional(k, 1, p);
    auto aspen = aspen_additional(k, p);
    EXPECT_NEAR(relative_additional(sb, base), 0.067, 0.001);
    EXPECT_NEAR(aspen.total() / sb.total(), 6.5, 0.05);
  }
  {
    PriceSet p = PriceSet::optical();
    auto base = fat_tree_cost(k, p);
    auto sb = sharebackup_additional(k, 1, p);
    auto aspen = aspen_additional(k, p);
    EXPECT_NEAR(relative_additional(sb, base), 0.133, 0.001);
    EXPECT_NEAR(aspen.total() / sb.total(), 3.2, 0.05);
  }
}

TEST(CostModel, OneToOneBackupIsFourTimesFatTree) {
  // §5.2: "the cost of 1:1 backup is 4x that of fat-tree" — i.e. the
  // additional cost is 3x the base, but with doubled port counts the
  // b-term is 15/4 k^3: additional/base is 3x when c is ignored; with
  // links it lands between 3x and 4x. Verify the b-term ratio exactly.
  PriceSet p = PriceSet::electrical();
  p.link_c = 0.0;  // isolate switch-port cost
  auto base = fat_tree_cost(16, p);
  auto extra = one_to_one_additional(16, p);
  EXPECT_DOUBLE_EQ(extra.total() / base.total(), 3.0);
}

TEST(CostModel, ShareBackupAlwaysCheapestAdditionAtSmallN) {
  for (int k : {8, 16, 24, 32, 48, 64}) {
    for (Medium m : {Medium::kElectrical, Medium::kOptical}) {
      PriceSet p = PriceSet::for_medium(m);
      double sb = sharebackup_additional(k, 1, p).total();
      double aspen = aspen_additional(k, p).total();
      double one2one = one_to_one_additional(k, p).total();
      EXPECT_LT(sb, aspen) << "k=" << k;
      EXPECT_LT(aspen, one2one) << "k=" << k;
    }
  }
}

TEST(CostModel, RelativeCostDecreasesWithScaleForFixedN) {
  // Figure 5's shape: ShareBackup's relative additional cost shrinks as
  // the network scales (amortized backups), while 1:1 stays flat-ish.
  auto curves = cost_curves({8, 16, 32, 64}, Medium::kElectrical);
  ASSERT_EQ(curves.size(), 4u);
  for (std::size_t i = 1; i < curves.size(); ++i) {
    EXPECT_LT(curves[i].sharebackup_n1, curves[i - 1].sharebackup_n1);
    EXPECT_LT(curves[i].sharebackup_n4, curves[i - 1].sharebackup_n4);
  }
  // Host counts are k^3/4.
  EXPECT_EQ(curves[3].hosts, 64LL * 64 * 64 / 4);
  // n=4 costs more than n=1 at the same k.
  for (const auto& pt : curves) {
    EXPECT_GT(pt.sharebackup_n4, pt.sharebackup_n1);
  }
}

TEST(CostModel, EvenN4CanBeatAspenAtScale) {
  // §5.2: "Even if n is increased to 4 ... ShareBackup is still cheaper
  // than Aspen Tree" (at k=48).
  PriceSet p = PriceSet::electrical();
  EXPECT_LT(sharebackup_additional(48, 4, p).total(),
            aspen_additional(48, p).total());
}

TEST(CostModel, BackupRatioAndScalability) {
  // §5.1 and §5.3 headline parameters.
  EXPECT_NEAR(backup_ratio(48, 1), 0.0417, 0.0001);
  EXPECT_NEAR(backup_ratio(58, 1), 0.0345, 0.0001);
  EXPECT_NEAR(backup_ratio(48, 4), 0.167, 0.001);
  // 32-port 2D MEMS: k/2 + n + 2 = 32 with n=1 -> k = 58.
  EXPECT_EQ(max_k_for_ports(32, 1), 58);
  // k=58 fat-tree has over 48k hosts.
  EXPECT_GT(58 * 58 * 58 / 4, 48000);
  // k=48 with 32-port switches allows n = 6 (25% backup ratio).
  EXPECT_GE(max_k_for_ports(32, 6), 48);
  EXPECT_LT(max_k_for_ports(32, 7), 48);
  EXPECT_NEAR(backup_ratio(48, 6), 0.25, 1e-9);
}

TEST(CostModel, CountsMatchBuiltFabricCensus) {
  // Closed forms vs the actual constructed architecture.
  for (int k : {4, 6, 8}) {
    for (int n : {1, 2}) {
      sharebackup::FabricParams fp;
      fp.fat_tree.k = k;
      fp.backups_per_group = n;
      sharebackup::Fabric fabric(fp);
      auto census = fabric.census();
      auto counts = sharebackup_counts(k, n);
      EXPECT_EQ(static_cast<long long>(census.backup_switches),
                counts.backup_switches);
      EXPECT_EQ(static_cast<long long>(census.circuit_switches),
                counts.circuit_switches);
      // Cable ends = 2x whole-link equivalents.
      EXPECT_DOUBLE_EQ(static_cast<double>(census.backup_device_cables),
                       2.0 * counts.extra_cables);
    }
  }
}

TEST(CostModel, ProtectionTableFootprintClosedForms) {
  // k=8, n=1: 20 backups x (4 + 16) = 400 impersonation entries;
  // SPIDER 3k^3 = 1536 with 3k = 24 at the busiest switch; backup rules
  // (5/8)k^4 = 2560 with k^2/2 = 32 per switch; reactive schemes
  // pre-install nothing.
  auto sb = sharebackup_table_footprint(8, 1);
  EXPECT_EQ(sb.protection_entries, 400);
  EXPECT_EQ(sb.per_switch_max, 20);
  auto sp = spider_table_footprint(8);
  EXPECT_EQ(sp.protection_entries, 1536);
  EXPECT_EQ(sp.per_switch_max, 24);
  auto br = backup_rules_table_footprint(8);
  EXPECT_EQ(br.protection_entries, 2560);
  EXPECT_EQ(br.per_switch_max, 32);
  auto re = reactive_table_footprint("ecmp+global-reroute");
  EXPECT_EQ(re.protection_entries, 0);
  EXPECT_EQ(re.per_switch_max, 0);
  EXPECT_EQ(re.scheme, "ecmp+global-reroute");
  // Doubling n doubles only ShareBackup's total (more backups, same
  // per-device table).
  EXPECT_EQ(sharebackup_table_footprint(8, 2).protection_entries, 800);
  EXPECT_EQ(sharebackup_table_footprint(8, 2).per_switch_max, 20);
}

TEST(CostModel, InvalidParametersRejected) {
  PriceSet p = PriceSet::electrical();
  EXPECT_THROW((void)fat_tree_cost(5, p), sbk::ContractViolation);
  EXPECT_THROW((void)sharebackup_additional(4, -1, p),
               sbk::ContractViolation);
  EXPECT_THROW((void)max_k_for_ports(3, 1), sbk::ContractViolation);
}

}  // namespace
}  // namespace sbk::cost
