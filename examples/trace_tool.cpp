// Trace tool: generate, inspect, and replay coflow traces in the
// library's text format (aligned with the public coflow-benchmark
// layout), so externally produced traces can drive the simulators.
//
//   $ ./build/examples/trace_tool gen  /tmp/trace.txt --racks=32 --coflows=50
//   $ ./build/examples/trace_tool info /tmp/trace.txt
//   $ ./build/examples/trace_tool run  /tmp/trace.txt --k=8
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "routing/ecmp.hpp"
#include "sim/fluid_sim.hpp"
#include "topo/fat_tree.hpp"
#include "util/stats.hpp"
#include "workload/coflow_gen.hpp"
#include "workload/trace_io.hpp"

using namespace sbk;

namespace {

long long parse_arg(int argc, char** argv, const std::string& key,
                    long long fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

int cmd_gen(const std::string& path, int argc, char** argv) {
  workload::CoflowWorkloadParams wp;
  wp.racks = static_cast<int>(parse_arg(argc, argv, "racks", 32));
  wp.coflows = static_cast<std::size_t>(parse_arg(argc, argv, "coflows", 50));
  wp.duration = static_cast<double>(parse_arg(argc, argv, "duration", 60));
  Rng rng(static_cast<std::uint64_t>(parse_arg(argc, argv, "seed", 1)));
  auto trace = workload::generate_coflows(wp, rng);
  workload::save_trace(path, wp.racks, trace);
  std::printf("wrote %zu coflows over %d racks to %s\n", trace.size(),
              wp.racks, path.c_str());
  return 0;
}

int cmd_info(const std::string& path) {
  workload::ParsedTrace parsed = workload::load_trace(path);
  Summary widths, bytes, arrivals;
  for (const auto& c : parsed.coflows) {
    widths.add(static_cast<double>(c.width()));
    bytes.add(c.total_bytes());
    arrivals.add(c.arrival);
  }
  std::printf("trace %s: %d racks, %zu coflows\n", path.c_str(),
              parsed.racks, parsed.coflows.size());
  if (parsed.coflows.empty()) return 0;
  std::printf("  arrival span: %.2fs .. %.2fs\n", arrivals.min(),
              arrivals.max());
  std::printf("  width (flows): p50 %.0f, p90 %.0f, max %.0f\n",
              widths.median(), widths.percentile(90), widths.max());
  std::printf("  bytes: p50 %.2f MB, p90 %.2f MB, max %.2f GB, total "
              "%.2f GB\n",
              bytes.median() / 1e6, bytes.percentile(90) / 1e6,
              bytes.max() / 1e9, bytes.sum() / 1e9);
  return 0;
}

int cmd_run(const std::string& path, int argc, char** argv) {
  workload::ParsedTrace parsed = workload::load_trace(path);
  const int k = static_cast<int>(parse_arg(argc, argv, "k", 8));
  topo::FatTreeParams ftp{.k = k};
  ftp.hosts_per_edge = 1;
  ftp.host_link_capacity = 10.0 * (k / 2);
  topo::FatTree ft(ftp);
  if (parsed.racks > ft.host_count()) {
    std::fprintf(stderr,
                 "trace has %d racks but a k=%d rack-level fat-tree only has "
                 "%d; pass a larger --k\n",
                 parsed.racks, k, ft.host_count());
    return 1;
  }
  auto flows = workload::expand_to_flows(ft, parsed.coflows);
  routing::EcmpRouter router(ft, 1);
  sim::SimConfig cfg;
  cfg.unit_bytes_per_second = 1.25e9;
  sim::FluidSimulator simulator(ft.network(), router, cfg);
  simulator.add_flows(flows);
  auto results = simulator.run();

  Summary cct;
  std::size_t incomplete = 0;
  for (const auto& c : sim::aggregate_coflows(results)) {
    if (c.all_completed) {
      cct.add(c.cct());
    } else {
      ++incomplete;
    }
  }
  std::printf("replayed %zu flows on a k=%d rack fat-tree (ECMP, 10:1)\n",
              flows.size(), k);
  std::printf("  CCT: p50 %.3fs, p90 %.3fs, p99 %.3fs, max %.3fs; "
              "incomplete coflows: %zu\n",
              cct.median(), cct.percentile(90), cct.percentile(99),
              cct.max(), incomplete);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s gen|info|run <trace-file> [--racks= --coflows= "
                 "--duration= --seed= --k=]\n",
                 argv[0]);
    return 2;
  }
  std::string cmd = argv[1];
  std::string path = argv[2];
  try {
    if (cmd == "gen") return cmd_gen(path, argc, argv);
    if (cmd == "info") return cmd_info(path);
    if (cmd == "run") return cmd_run(path, argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
