#include "obs/recovery_tracer.hpp"

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace sbk::obs {

std::string element_for_node(std::string_view node_name) {
  return "node:" + std::string(node_name);
}

std::string element_for_link(std::string_view name_a,
                             std::string_view name_b) {
  return "link:" + std::string(name_a) + "-" + std::string(name_b);
}

const RecoverySpan* RecoveryIncident::span(std::string_view stage) const {
  for (const RecoverySpan& s : spans) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

std::size_t RecoveryTracer::note_injection(std::string element, Seconds at) {
  if (!enabled_) return kNoIncident;
  // A re-failure before recovery supersedes the open incident; the old
  // one stays in the log, unclosed, as the record of a failed recovery.
  open_by_element_.erase(element);
  RecoveryIncident inc;
  inc.id = incidents_.size();
  inc.element = element;
  inc.injected_at = at;
  inc.spans.push_back(RecoverySpan{"injection", at, at});
  incidents_.push_back(std::move(inc));
  open_by_element_.emplace(std::move(element), incidents_.back().id);
  return incidents_.back().id;
}

std::size_t RecoveryTracer::ensure_incident(std::string_view element,
                                            Seconds fallback_injected_at) {
  if (!enabled_) return kNoIncident;
  auto it = open_by_element_.find(std::string(element));
  if (it != open_by_element_.end()) return it->second;
  return note_injection(std::string(element), fallback_injected_at);
}

void RecoveryTracer::add_span(std::size_t incident, std::string_view stage,
                              Seconds start, Seconds end) {
  if (!enabled_ || incident == kNoIncident) return;
  SBK_EXPECTS(incident < incidents_.size());
  SBK_EXPECTS_MSG(end >= start, "spans must not run backwards");
  incidents_[incident].spans.push_back(
      RecoverySpan{std::string(stage), start, end});
}

void RecoveryTracer::close_incident(std::size_t incident, Seconds at) {
  if (!enabled_ || incident == kNoIncident) return;
  SBK_EXPECTS(incident < incidents_.size());
  RecoveryIncident& inc = incidents_[incident];
  if (inc.closed) return;
  inc.closed = true;
  inc.recovered_at = at;
  auto it = open_by_element_.find(inc.element);
  if (it != open_by_element_.end() && it->second == incident) {
    open_by_element_.erase(it);
  }
}

Seconds RecoveryTracer::injected_at(std::size_t incident) const {
  SBK_EXPECTS(incident < incidents_.size());
  return incidents_[incident].injected_at;
}

bool RecoveryTracer::spans_monotone(const RecoveryIncident& incident,
                                    Seconds eps) {
  Seconds prev_start = -std::numeric_limits<Seconds>::infinity();
  for (const RecoverySpan& s : incident.spans) {
    if (s.end < s.start - eps) return false;
    if (s.start < prev_start - eps) return false;
    prev_start = s.start;
  }
  return true;
}

bool RecoveryTracer::all_spans_monotone(Seconds eps) const {
  for (const RecoveryIncident& inc : incidents_) {
    if (!spans_monotone(inc, eps)) return false;
  }
  return true;
}

void RecoveryTracer::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"incident", "element", "injected_at", "recovered_at", "stage",
           "start", "end", "duration"});
  for (const RecoveryIncident& inc : incidents_) {
    // Times use the exact round-trip form: this CSV is re-parsed and
    // cross-checked against flight-recorder traces (sbk_trace check),
    // where 6-digit rounding would show up as phantom mismatches.
    const std::string recovered =
        inc.closed ? CsvWriter::num_exact(inc.recovered_at) : std::string{};
    for (const RecoverySpan& s : inc.spans) {
      csv.row({CsvWriter::num(inc.id), inc.element,
               CsvWriter::num_exact(inc.injected_at), recovered, s.stage,
               CsvWriter::num_exact(s.start), CsvWriter::num_exact(s.end),
               CsvWriter::num_exact(s.duration())});
    }
  }
}

void RecoveryTracer::write_json(std::ostream& out) const {
  out << "[";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const RecoveryIncident& inc = incidents_[i];
    if (i > 0) out << ",";
    out << "{\"incident\":" << inc.id << ",\"element\":\""
        << json_escape(inc.element)
        << "\",\"injected_at\":" << CsvWriter::num_exact(inc.injected_at);
    if (inc.closed) {
      out << ",\"recovered_at\":" << CsvWriter::num_exact(inc.recovered_at);
    }
    out << ",\"spans\":[";
    for (std::size_t j = 0; j < inc.spans.size(); ++j) {
      const RecoverySpan& s = inc.spans[j];
      if (j > 0) out << ",";
      out << "{\"stage\":\"" << json_escape(s.stage)
          << "\",\"start\":" << CsvWriter::num_exact(s.start)
          << ",\"end\":" << CsvWriter::num_exact(s.end) << "}";
    }
    out << "]}";
  }
  out << "]";
}

}  // namespace sbk::obs
