// Experiment E9 — §4.3: size of the combined failure-group routing table
// stored on every edge-group switch for live impersonation:
// k/2 in-bound + k^2/4 VLAN-tagged out-bound entries; 1056 at k=64,
// within commodity TCAM capacity.
#include <cstdio>

#include "bench_util.hpp"
#include "routing/two_level.hpp"

using namespace sbk;

int main() {
  bench::banner("E9 / §4.3 — combined routing table sizes",
                "Combined edge failure-group table: k/2 in-bound + k^2/4 "
                "out-bound entries. Paper: 1056 entries at k=64 (65k hosts).");
  std::printf("%-5s %10s %10s %12s %12s %10s\n", "k", "hosts", "in-bound",
              "out-bound", "combined", "formula");
  for (int k : {4, 8, 16, 24, 32, 48, 64}) {
    routing::TwoLevelTableBuilder b(k);
    routing::TwoLevelTable t = b.combined_edge_table(0);
    std::size_t inbound = 0;
    std::size_t outbound = 0;
    for (const auto& e : t.suffix()) {
      if (e.vlan == routing::kNoVlan) ++inbound; else ++outbound;
    }
    std::size_t formula = static_cast<std::size_t>(k / 2 + k * k / 4);
    std::printf("%-5d %10d %10zu %12zu %12zu %10zu\n", k, k * k * k / 4,
                inbound, outbound, t.size(), formula);
    bench::csv_row({std::to_string(k), std::to_string(k * k * k / 4),
                    std::to_string(inbound), std::to_string(outbound),
                    std::to_string(t.size())});
  }
  return 0;
}
