// Tests for the synthetic coflow workload generator and trace I/O.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "workload/coflow_gen.hpp"
#include "workload/trace_io.hpp"

namespace sbk::workload {
namespace {

CoflowWorkloadParams small_params() {
  CoflowWorkloadParams p;
  p.racks = 16;
  p.coflows = 100;
  p.duration = 60.0;
  return p;
}

TEST(Generator, ProducesRequestedCountSortedByArrival) {
  Rng rng(11);
  auto trace = generate_coflows(small_params(), rng);
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].arrival, trace[i].arrival);
  }
  for (const CoflowSpec& c : trace) {
    EXPECT_GE(c.arrival, 0.0);
    EXPECT_LT(c.arrival, 60.0);
    EXPECT_FALSE(c.mapper_racks.empty());
    EXPECT_FALSE(c.reducers.empty());
  }
}

TEST(Generator, RacksInRangeAndDistinct) {
  Rng rng(12);
  auto trace = generate_coflows(small_params(), rng);
  for (const CoflowSpec& c : trace) {
    std::set<int> mappers(c.mapper_racks.begin(), c.mapper_racks.end());
    EXPECT_EQ(mappers.size(), c.mapper_racks.size());
    for (int m : c.mapper_racks) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, 16);
    }
    std::set<int> reducers;
    for (const auto& r : c.reducers) {
      EXPECT_TRUE(reducers.insert(r.rack).second);
      EXPECT_GT(r.bytes, 0.0);
    }
  }
}

TEST(Generator, DeterministicForSeed) {
  Rng a(77), b(77);
  auto t1 = generate_coflows(small_params(), a);
  auto t2 = generate_coflows(small_params(), b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].arrival, t2[i].arrival);
    EXPECT_EQ(t1[i].mapper_racks, t2[i].mapper_racks);
    EXPECT_EQ(t1[i].total_bytes(), t2[i].total_bytes());
  }
}

TEST(Generator, HeavyTailInBytesAndMostlyNarrowWidths) {
  // The FB-trace shape: most coflows small/narrow, bytes dominated by a
  // few big ones.
  Rng rng(13);
  CoflowWorkloadParams p;
  p.racks = 128;
  p.coflows = 500;
  p.duration = 300.0;
  auto trace = generate_coflows(p, rng);

  std::vector<double> sizes;
  std::size_t narrow = 0;
  for (const CoflowSpec& c : trace) {
    sizes.push_back(c.total_bytes());
    if (c.width() <= 16) ++narrow;
  }
  EXPECT_GT(narrow, trace.size() / 3);  // plenty of narrow coflows

  std::sort(sizes.begin(), sizes.end());
  double total = 0.0, top10 = 0.0;
  for (double s : sizes) total += s;
  for (std::size_t i = sizes.size() - sizes.size() / 10; i < sizes.size(); ++i)
    top10 += sizes[i];
  EXPECT_GT(top10 / total, 0.5);  // top 10% of coflows carry most bytes
}

TEST(Expand, FlowsMatchCoflowStructure) {
  topo::FatTreeParams ftp{.k = 4};
  ftp.hosts_per_edge = 1;  // rack-level hosts: 8 racks
  topo::FatTree ft(ftp);

  CoflowSpec c;
  c.id = 3;
  c.arrival = 1.5;
  c.mapper_racks = {0, 1, 2};
  c.reducers = {{5, 300.0}, {1, 600.0}};
  auto flows = expand_to_flows(ft, {c}, /*first_flow_id=*/100);

  // Reducer 5: 3 remote mappers; reducer 1: mapper 1 is local (skipped).
  ASSERT_EQ(flows.size(), 5u);
  double to5 = 0.0, to1 = 0.0;
  for (const auto& f : flows) {
    EXPECT_EQ(f.coflow, 3u);
    EXPECT_EQ(f.start, 1.5);
    if (f.dst == ft.host(5)) to5 += f.bytes;
    if (f.dst == ft.host(1)) to1 += f.bytes;
  }
  EXPECT_NEAR(to5, 300.0, 1e-9);
  // Reducer 1 loses the co-located mapper's share: 600 * 2/3.
  EXPECT_NEAR(to1, 400.0, 1e-9);
  // Ids sequential from 100.
  EXPECT_EQ(flows.front().id, 100u);
  EXPECT_EQ(flows.back().id, 104u);
}

TEST(Partition, FiltersAndShiftsArrivals) {
  std::vector<CoflowSpec> trace(3);
  trace[0].arrival = 10.0;
  trace[1].arrival = 70.0;
  trace[2].arrival = 130.0;
  auto part = partition(trace, 60.0, 120.0);
  ASSERT_EQ(part.size(), 1u);
  EXPECT_DOUBLE_EQ(part[0].arrival, 10.0);
}

TEST(TraceIo, RoundTripsThroughText) {
  Rng rng(19);
  CoflowWorkloadParams p = small_params();
  p.coflows = 20;
  auto trace = generate_coflows(p, rng);

  std::stringstream buf;
  write_trace(buf, p.racks, trace);
  ParsedTrace parsed = read_trace(buf);

  EXPECT_EQ(parsed.racks, p.racks);
  ASSERT_EQ(parsed.coflows.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed.coflows[i].id, trace[i].id);
    EXPECT_NEAR(parsed.coflows[i].arrival, trace[i].arrival, 1e-3);
    EXPECT_EQ(parsed.coflows[i].mapper_racks, trace[i].mapper_racks);
    ASSERT_EQ(parsed.coflows[i].reducers.size(), trace[i].reducers.size());
    for (std::size_t r = 0; r < trace[i].reducers.size(); ++r) {
      EXPECT_EQ(parsed.coflows[i].reducers[r].rack,
                trace[i].reducers[r].rack);
      EXPECT_NEAR(parsed.coflows[i].reducers[r].bytes,
                  trace[i].reducers[r].bytes,
                  trace[i].reducers[r].bytes * 1e-6 + 1.0);
    }
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  auto expect_throw = [](const std::string& text) {
    std::stringstream buf(text);
    EXPECT_THROW((void)read_trace(buf), std::runtime_error) << text;
  };
  expect_throw("");                          // no header
  expect_throw("abc def\n");                 // bad header
  expect_throw("0 1\n");                     // zero racks
  expect_throw("4 1\n0 0 1\n");              // missing mapper list
  expect_throw("4 1\n0 0 1 9 1 0:1.0\n");    // mapper out of range
  expect_throw("4 1\n0 0 1 0 1 0;1.0\n");    // reducer missing colon
  expect_throw("4 1\n0 0 1 0 1 7:1.0\n");    // reducer out of range
  expect_throw("4 1\n0 -5 1 0 1 0:1.0\n");   // negative arrival
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream buf("4 1\n# comment\n\n0 1500 2 0 1 1 3:2.5\n");
  ParsedTrace parsed = read_trace(buf);
  ASSERT_EQ(parsed.coflows.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.coflows[0].arrival, 1.5);
  ASSERT_EQ(parsed.coflows[0].reducers.size(), 1u);
  EXPECT_EQ(parsed.coflows[0].reducers[0].rack, 3);
  EXPECT_DOUBLE_EQ(parsed.coflows[0].reducers[0].bytes, 2.5e6);
}

}  // namespace
}  // namespace sbk::workload
