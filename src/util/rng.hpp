// Deterministic random number generation. Every stochastic component in
// the library takes an explicit Rng so experiments are reproducible from a
// single seed recorded in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/assert.hpp"

namespace sbk {

/// Seeded pseudo-random source wrapping std::mt19937_64 with convenience
/// draws used throughout the library. Copyable; copies evolve
/// independently, which is useful for replaying a scenario.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability p of true. Requires 0 <= p <= 1.
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate). Requires
  /// rate > 0.
  [[nodiscard]] double exponential(double rate);

  /// Pareto variate with scale xm > 0 and shape alpha > 0 (heavy-tailed;
  /// used for coflow sizes).
  [[nodiscard]] double pareto(double xm, double alpha);

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Draws an index from a discrete distribution given non-negative
  /// weights; at least one weight must be positive.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Samples k distinct indices from [0, n) without replacement
  /// (k <= n); order is random.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// Shuffles a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sbk
