// The ShareBackup fabric (§3): a plain-wired fat-tree whose adjacent
// layers are joined through small circuit switches, with n shared backup
// switches per failure group.
//
// Modeling choices (see DESIGN.md):
//   * The packet Network contains one node per *logical position* (hosts,
//     edge/agg/core slots). Physical devices — including backups — are
//     tracked by the fabric, not as graph nodes; a failover re-points the
//     circuits of a position from the failed device to a spare, after
//     which the position node is healthy again with its original links.
//     This matches the paper exactly: the backup impersonates the failed
//     switch, and the packet topology after recovery is indistinguishable
//     from the pre-failure topology.
//   * Circuit switches carry fixed cables to physical devices; the
//     reconfigurable state is the per-switch port matching.
//   * Default matchings realize the fat-tree adjacency:
//       layer 1 (host-edge):  straight-through (south j <-> north j);
//       layer 2 (edge-agg):   rotation by the switch index m
//                             (south e <-> north (e+m) mod k/2), which
//                             yields the complete bipartite pod wiring;
//       layer 3 (agg-core):   straight-through, with the m-th switch of a
//                             pod serving the cores ≡ m (mod k/2).
//   * Interface health is ground truth for fault injection and offline
//     diagnosis: an interface is the (device, circuit switch) cable end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sharebackup/circuit_switch.hpp"
#include "sharebackup/device.hpp"
#include "topo/fat_tree.hpp"
#include "topo/position.hpp"
#include "util/keys.hpp"
#include "util/time.hpp"

namespace sbk::sharebackup {

using topo::Layer;
using topo::SwitchPosition;

struct FabricParams {
  topo::FatTreeParams fat_tree;  ///< wiring must be Wiring::kPlain
  int backups_per_group = 1;     ///< the paper's n
  /// Non-uniform failure groups (§6: "more backup on critical devices,
  /// less on unimportant ones"): per-layer overrides of n; -1 means use
  /// backups_per_group. Circuit switches are sized for the largest n in
  /// the layers they serve.
  int backups_edge = -1;
  int backups_agg = -1;
  int backups_core = -1;
  CircuitTechnology technology = CircuitTechnology::kElectricalCrosspoint;

  [[nodiscard]] int backups_for(Layer layer) const {
    switch (layer) {
      case Layer::kEdge: return backups_edge >= 0 ? backups_edge : backups_per_group;
      case Layer::kAgg: return backups_agg >= 0 ? backups_agg : backups_per_group;
      case Layer::kCore: return backups_core >= 0 ? backups_core : backups_per_group;
    }
    return backups_per_group;
  }
};

/// Identifies one device interface (= one cable end at a circuit switch).
struct InterfaceRef {
  DeviceUid device = kNoDeviceUid;
  std::size_t cs = 0;  ///< global circuit-switch index

  friend constexpr bool operator==(InterfaceRef, InterfaceRef) noexcept =
      default;
};

class Fabric {
 public:
  explicit Fabric(const FabricParams& params);

  // --- topology access ----------------------------------------------------
  [[nodiscard]] const topo::FatTree& fat_tree() const noexcept { return ft_; }
  [[nodiscard]] topo::FatTree& fat_tree() noexcept { return ft_; }
  [[nodiscard]] const net::Network& network() const noexcept {
    return ft_.network();
  }
  [[nodiscard]] net::Network& network() noexcept { return ft_.network(); }
  [[nodiscard]] int k() const noexcept { return ft_.k(); }
  [[nodiscard]] int half_k() const noexcept { return ft_.half_k(); }
  [[nodiscard]] int n() const noexcept { return params_.backups_per_group; }
  [[nodiscard]] CircuitTechnology technology() const noexcept {
    return params_.technology;
  }

  // --- positions and devices ------------------------------------------------
  [[nodiscard]] net::NodeId node_at(SwitchPosition pos) const;
  [[nodiscard]] std::optional<SwitchPosition> position_of_node(
      net::NodeId node) const;
  [[nodiscard]] DeviceUid device_at(SwitchPosition pos) const;
  [[nodiscard]] const PhysicalDevice& device(DeviceUid uid) const;
  [[nodiscard]] DeviceState device_state(DeviceUid uid) const;
  [[nodiscard]] std::vector<DeviceUid> spares(Layer layer, int group) const;
  [[nodiscard]] std::size_t switch_device_count() const noexcept {
    return switch_devices_;
  }
  /// Position currently served by an in-service device.
  [[nodiscard]] std::optional<SwitchPosition> position_of_device(
      DeviceUid uid) const;
  /// Physical device representing a host node (hosts never fail over).
  [[nodiscard]] DeviceUid device_of_host(net::NodeId host) const;

  // --- circuit switches ---------------------------------------------------
  [[nodiscard]] std::size_t circuit_switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] const CircuitSwitch& circuit_switch(std::size_t idx) const;
  [[nodiscard]] CircuitSwitch& circuit_switch(std::size_t idx);
  /// Global index of circuit switch CS_{cs_layer, pod, m}; cs_layer is the
  /// paper's l in {1,2,3}. For layer 1, m ranges over hosts_per_edge; for
  /// layers 2-3 over k/2.
  [[nodiscard]] std::size_t cs_index(int cs_layer, int pod, int m) const;
  /// Circuit switches a device is cabled to, with its port on each.
  struct DevicePort {
    std::size_t cs;
    int port;
  };
  [[nodiscard]] const std::vector<DevicePort>& ports_of_device(
      DeviceUid uid) const;

  // --- interface health (ground truth for fault injection) -----------------
  [[nodiscard]] bool interface_healthy(InterfaceRef iface) const;
  void set_interface_health(InterfaceRef iface, bool healthy);
  /// Heals every interface of a device (models repair).
  void heal_device(DeviceUid uid);
  /// True iff every interface of the device is healthy. The controller
  /// verifies a replacement with this after reconfiguration: a spare can
  /// be dead-on-arrival, in which case the failover must cascade to the
  /// next spare instead of declaring the position recovered.
  [[nodiscard]] bool device_interfaces_healthy(DeviceUid uid) const;

  // --- failover -------------------------------------------------------------
  struct FailoverReport {
    SwitchPosition position;
    DeviceUid failed_device = kNoDeviceUid;
    DeviceUid replacement = kNoDeviceUid;
    /// Circuit switches whose matching changed (reconfigured in parallel).
    std::size_t circuit_switches_touched = 0;
    /// Physical-layer latency of the reconfiguration (per technology; the
    /// switches reconfigure concurrently).
    Seconds reconfiguration_latency = 0.0;
  };

  /// Replaces the device at `pos` with a spare of its failure group.
  /// Rewrites the circuit matchings and marks the position node healthy
  /// (its links are served by fresh hardware). Returns nullopt when the
  /// group's pool is exhausted. The replaced device becomes kOut.
  [[nodiscard]] std::optional<FailoverReport> fail_over(SwitchPosition pos);

  /// Puts an out-of-service device back into the spare pool (after repair
  /// or exoneration) — the paper's "replaced switches become backups".
  /// Idempotent: returning a device that is already a spare is a no-op,
  /// so a retried/duplicated control command cannot corrupt the pool.
  void return_to_pool(DeviceUid uid);

  /// Counters fabric.{failovers,circuit_reconfigurations,pool_returns}
  /// and gauge fabric.spare_pool (total spares across groups, seeded at
  /// attach time and tracked incrementally). Pass nullptr to detach. The
  /// registry must outlive the fabric.
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Spares currently pooled across all failure groups (the telemetry
  /// backup-pool-occupancy probe).
  [[nodiscard]] std::size_t total_spares() const;

  /// Instants for failovers / pool returns plus a "fabric.spare_pool"
  /// counter track, timestamped with set_trace_time() (the fabric has no
  /// clock of its own; the controller forwards its own time through
  /// set_time()). Pass nullptr to detach; must outlive the fabric.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  void set_trace_time(Seconds now) noexcept { trace_now_ = now; }

  // --- circuit tracing / probing (offline diagnosis support) ---------------
  /// Follows the circuit starting at `port` of switch `cs` through
  /// matchings and side-ring cables until it terminates at a device
  /// interface or dead-ends. Bounded by the ring length.
  [[nodiscard]] std::optional<InterfaceRef> trace_circuit(std::size_t cs,
                                                          int port) const;
  /// True iff a test message injected at `from` comes back on the circuit
  /// — i.e. the circuit terminates at some interface and both end
  /// interfaces are healthy. `from` must be matched.
  [[nodiscard]] bool probe(InterfaceRef from) const;
  /// The device's port on the given circuit switch (it must be cabled).
  [[nodiscard]] int device_port_on(DeviceUid uid, std::size_t cs) const;
  /// The circuit switch through which a packet-layer link is realized
  /// (derived structurally from the endpoints' positions).
  [[nodiscard]] std::size_t cs_of_link(net::LinkId link) const;

  // --- structural census (validated against the Table 2 formulas) ----------
  struct Census {
    std::size_t backup_switches = 0;
    std::size_t circuit_switches = 0;
    std::size_t circuit_switch_physical_ports = 0;
    std::size_t backup_device_cables = 0;  ///< backup-switch-to-CS cables
    std::size_t failure_groups = 0;
  };
  [[nodiscard]] Census census() const;

  /// Packet-layer adjacency realized by the current circuit matchings:
  /// pairs of Network nodes whose positions' devices are circuit-joined.
  /// In any consistent state this equals the fat-tree link set (property
  /// test).
  [[nodiscard]] std::vector<std::pair<net::NodeId, net::NodeId>>
  realized_adjacency() const;

  /// Cross-checks internal invariants (matching consistency, assignment
  /// bijectivity, spare accounting). Throws ContractViolation on breakage.
  void check_invariants() const;

 private:
  struct Group {
    Layer layer;
    int id;
    std::vector<DeviceUid> assigned;  ///< by slot
    std::vector<DeviceUid> spare;
    std::vector<DeviceUid> out;
    std::vector<std::size_t> circuit_switches;  ///< all CS the group touches
  };

  void build_devices();
  void build_circuit_switches();
  void wire_defaults();
  [[nodiscard]] Group& group(Layer layer, int id);
  [[nodiscard]] const Group& group(Layer layer, int id) const;
  [[nodiscard]] DeviceUid new_device(bool is_host, Layer layer, int group,
                                     std::string name);
  void register_port(DeviceUid dev, std::size_t cs, int port);
  // iface.cs is a std::size_t: packing it unmasked into the low word
  // would let a cs >= 2^32 bleed into the device word and alias another
  // interface's health entry, so the checked pack is load-bearing here.
  [[nodiscard]] static std::uint64_t iface_key(InterfaceRef iface) {
    return util::pack_pair_key(iface.device, iface.cs);
  }

  FabricParams params_;
  topo::FatTree ft_;
  std::vector<PhysicalDevice> devices_;
  std::vector<DeviceState> device_state_;
  std::vector<std::vector<DevicePort>> device_ports_;
  std::vector<Group> edge_groups_;
  std::vector<Group> agg_groups_;
  std::vector<Group> core_groups_;
  std::vector<CircuitSwitch> switches_;
  std::size_t cs_layer1_per_pod_ = 0;
  /// Per-cabled-port unhealthy flags, parallel to device_ports_ (same
  /// outer and inner indexing). Probing storms during recovery hit this
  /// once per cable end, so it is flat; devices hold a handful of ports
  /// and a linear cs scan stays in one cache line.
  std::vector<std::vector<std::uint8_t>> iface_unhealthy_;
  /// Marks on (device, cs) pairs with no cable between them — reachable
  /// through the public API, vanishingly rare in practice (fault
  /// injectors mark cabled ends). Linear scan, usually empty.
  std::vector<std::uint64_t> uncabled_unhealthy_;
  std::size_t switch_devices_ = 0;
  /// Host device uid per global host index (hosts attach to layer-1 CS).
  std::vector<DeviceUid> host_device_;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_reconfigurations_ = nullptr;
  obs::Counter* m_pool_returns_ = nullptr;
  obs::Gauge* m_spare_pool_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  Seconds trace_now_ = 0.0;
};

}  // namespace sbk::sharebackup
