// Strongly-typed identifiers for network elements. Wrapping the raw index
// prevents the classic bug of passing a link id where a node id is
// expected (Core Guidelines I.4: make interfaces precisely typed).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace sbk::net {

namespace detail {
/// CRTP-free tagged index. Tag makes distinct id types incompatible.
template <typename Tag>
class TaggedId {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();

  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr auto operator<=>(TaggedId, TaggedId) noexcept = default;

 private:
  value_type value_ = kInvalid;
};
}  // namespace detail

struct NodeTag {};
struct LinkTag {};

/// Identifies a node (host, packet switch, or circuit switch) in a Network.
using NodeId = detail::TaggedId<NodeTag>;
/// Identifies an undirected link in a Network.
using LinkId = detail::TaggedId<LinkTag>;

}  // namespace sbk::net

template <>
struct std::hash<sbk::net::NodeId> {
  std::size_t operator()(sbk::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<sbk::net::LinkId> {
  std::size_t operator()(sbk::net::LinkId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
