// Property suite for IncrementalMaxMin: the dirty-component re-solver
// must be bit-identical to the full-fabric reference oracle under every
// interleaving of arrivals, completions, capacity drains/restores, and
// failure flips — and the equality must survive any sweep thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/path.hpp"
#include "routing/ecmp.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/incremental_max_min.hpp"
#include "sim/max_min.hpp"
#include "sweep/sweep.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"

namespace sbk {
namespace {

using sim::IncrementalMaxMin;

/// One alive flow in the churn driver. `live` stays in admission order
/// (erase is order-preserving), matching the allocator's seq ordering.
struct LiveFlow {
  IncrementalMaxMin::FlowSlot slot = IncrementalMaxMin::kNoSlot;
  std::vector<net::DirectedLink> links;
};

/// Runs `steps` random churn events against one incremental allocator,
/// asserting after every event that each alive flow's rate equals the
/// reference oracle's output exactly. Returns all rates produced (used
/// by the sweep-invariance test as the scenario fingerprint).
std::vector<double> churn_trial(std::uint64_t seed, std::size_t steps) {
  Rng rng(seed);
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  net::Network& net = ft.network();
  routing::EcmpRouter router(ft);

  IncrementalMaxMin inc;
  inc.bind(net);

  std::vector<LiveFlow> live;
  std::vector<std::pair<net::LinkId, double>> drained;
  std::vector<net::LinkId> failed;
  std::uint64_t next_flow_id = 0;
  std::vector<double> fingerprint;

  for (std::size_t s = 0; s < steps; ++s) {
    switch (rng.uniform_index(6)) {
      case 0:
      case 1:
      case 2: {  // arrival (weighted up to keep the population non-trivial)
        const net::NodeId src = ft.host(static_cast<int>(
            rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
        const net::NodeId dst = ft.host(static_cast<int>(
            rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
        if (src == dst) break;
        net::Path p = router.route(net, src, dst, next_flow_id++, nullptr);
        // Unroutable pairs become link-less flows: must get +inf.
        LiveFlow lf;
        lf.links = p.directed_links(net);
        lf.slot = inc.add_flow(lf.links);
        live.push_back(std::move(lf));
        break;
      }
      case 3: {  // completion
        if (live.empty()) break;
        const std::size_t victim = rng.uniform_index(live.size());
        inc.remove_flow(live[victim].slot);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        break;
      }
      case 4: {  // capacity drain, or restore of a previous drain
        if (!drained.empty() && rng.uniform_index(2) == 0) {
          const auto [id, cap] = drained.back();
          drained.pop_back();
          net.set_link_capacity(id, cap);
        } else {
          const net::LinkId id(static_cast<std::uint32_t>(
              rng.uniform_index(net.link_count())));
          drained.emplace_back(id, net.link(id).capacity);
          net.set_link_capacity(id, 0.0);
        }
        inc.note_topology_change();
        break;
      }
      case 5: {  // failure flip: affects routing of future arrivals only
        if (!failed.empty() && rng.uniform_index(2) == 0) {
          net.restore_link(failed.back());
          failed.pop_back();
        } else {
          const net::LinkId id(static_cast<std::uint32_t>(
              rng.uniform_index(net.link_count())));
          if (net.link_failed(id)) break;
          net.fail_link(id);
          failed.push_back(id);
        }
        // Failed flags are not allocation inputs; the capacity diff must
        // see nothing here. Calling it anyway proves that.
        inc.note_topology_change();
        break;
      }
    }

    inc.solve();

    std::vector<sim::Demand> demands;
    demands.reserve(live.size());
    for (const LiveFlow& lf : live) demands.push_back(sim::Demand{lf.links});
    const std::vector<double> want = sim::max_min_rates_reference(net, demands);
    for (std::size_t i = 0; i < live.size(); ++i) {
      const double got = inc.rate(live[i].slot);
      if (std::isinf(want[i])) {
        EXPECT_TRUE(std::isinf(got)) << "seed " << seed << " step " << s;
      } else {
        EXPECT_EQ(got, want[i]) << "seed " << seed << " step " << s
                                << " flow " << i;
      }
      fingerprint.push_back(got);
    }
  }
  return fingerprint;
}

TEST(IncrementalMaxMin, RandomChurnMatchesReferenceBitForBit) {
  // 200 independent trials of ~40 events each; every intermediate state
  // is checked against the oracle, so one trial exercises dozens of
  // dirty-component closures over arrivals, completions, drains,
  // restores, and (allocation-invisible) failure flips.
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    churn_trial(/*seed=*/0x5b0 + trial * 7919, /*steps=*/40);
  }
}

TEST(IncrementalMaxMin, ChurnFingerprintIndependentOfSweepThreads) {
  // The churn trial embedded in a SweepRunner must produce identical
  // doubles at 1, 4, and 8 threads: scenario seeds are derived from
  // (master_seed, index), never from scheduling.
  constexpr std::size_t kScenarios = 12;
  auto run_at = [](std::size_t threads) {
    sweep::SweepRunner runner(sweep::SweepConfig{.master_seed = 99,
                                                 .threads = threads});
    return runner.run(kScenarios, [](const sweep::ScenarioSpec& spec) {
      return churn_trial(spec.seed, /*steps=*/25);
    });
  };
  const auto t1 = run_at(1);
  const auto t4 = run_at(4);
  const auto t8 = run_at(8);
  ASSERT_EQ(t1.size(), kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "scenario " << i;
    EXPECT_EQ(t1[i], t8[i]) << "scenario " << i;
  }
}

TEST(IncrementalMaxMin, PodLocalChurnResolvesOnlyThatPodsComponent) {
  // Pod-local traffic never crosses core links, so each pod is its own
  // connected component: removing a pod-0 flow must re-solve pod 0
  // alone, and pod-1 rates must not even be recomputed.
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  net::Network& net = ft.network();
  routing::EcmpRouter router(ft);
  IncrementalMaxMin inc;
  inc.bind(net);

  // k=4: 4 hosts per pod; hosts 0..3 are pod 0, 4..7 pod 1. All flows
  // of a pod share their source host's uplink (the same *directed*
  // slot — sharing just a cable in opposite directions does not couple
  // allocations), so each pod forms exactly one component.
  std::vector<IncrementalMaxMin::FlowSlot> pod0, pod1;
  std::uint64_t id = 0;
  auto add_pair = [&](int a, int b) {
    net::Path p = router.route(net, ft.host(a), ft.host(b), id++, nullptr);
    EXPECT_FALSE(p.empty());
    return inc.add_flow(p.directed_links(net));
  };
  for (int i = 1; i < 4; ++i) {
    pod0.push_back(add_pair(0, i));
    pod1.push_back(add_pair(4, 4 + i));
  }
  inc.solve();
  const std::size_t solves_before = inc.solves();
  std::vector<double> pod1_rates;
  for (auto s : pod1) pod1_rates.push_back(inc.rate(s));

  inc.remove_flow(pod0.back());
  pod0.pop_back();
  inc.solve();
  EXPECT_EQ(inc.solves(), solves_before + 1);
  // Only pod 0's surviving flows were in the dirty component.
  EXPECT_EQ(inc.last_dirty_flows(), pod0.size());
  for (std::size_t i = 0; i < pod1.size(); ++i) {
    EXPECT_EQ(inc.rate(pod1[i]), pod1_rates[i]);
  }
}

/// Builds the identical scenario twice and diffs the FlowResults of the
/// incremental and full-resolve FluidSimulator configurations.
void expect_fluidsim_ab_identical(bool reroute_on_path_failure) {
  auto run = [reroute_on_path_failure](bool incremental) {
    topo::FatTree ft(topo::FatTreeParams{.k = 4});
    net::Network& net = ft.network();
    routing::EcmpRouter router(ft);
    sim::SimConfig cfg;
    cfg.incremental_max_min = incremental;
    cfg.reroute_on_path_failure = reroute_on_path_failure;
    sim::FluidSimulator simlr(net, router, cfg);

    Rng rng(2024);
    std::uint64_t id = 0;
    for (int i = 0; i < 60; ++i) {
      sim::FlowSpec f;
      f.id = id++;
      f.src = ft.host(static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
      f.dst = ft.host(static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(ft.host_count()))));
      f.bytes = 1e6 + rng.uniform_real(0.0, 5e7);
      f.start = rng.uniform_real(0.0, 0.05);
      f.coflow = static_cast<sim::CoflowId>(i / 6);
      simlr.add_flow(f);
    }
    // Failure/repair storm mid-run: kills paths (reroute or stall), then
    // brings them back (resume), then drains and restores capacity.
    const net::LinkId l0(3), l1(9);
    simlr.at(0.01, [l0, l1](net::Network& n) {
      n.fail_link(l0);
      n.fail_link(l1);
    });
    simlr.at(0.03, [l0, l1](net::Network& n) {
      n.restore_link(l0);
      n.restore_link(l1);
    });
    simlr.at(0.04, [l0](net::Network& n) { n.set_link_capacity(l0, 0.25); });
    simlr.at(0.06, [l0](net::Network& n) { n.set_link_capacity(l0, 1.0); });
    return simlr.run();
  };

  const auto full = run(false);
  const auto incr = run(true);
  ASSERT_EQ(full.size(), incr.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].spec.id, incr[i].spec.id);
    EXPECT_EQ(full[i].outcome, incr[i].outcome) << "flow " << i;
    EXPECT_EQ(full[i].finish, incr[i].finish) << "flow " << i;
    EXPECT_EQ(full[i].bytes_remaining, incr[i].bytes_remaining)
        << "flow " << i;
    EXPECT_EQ(full[i].reroutes, incr[i].reroutes) << "flow " << i;
  }
}

TEST(IncrementalMaxMin, FluidSimRerouteModeMatchesFullResolve) {
  expect_fluidsim_ab_identical(/*reroute_on_path_failure=*/true);
}

TEST(IncrementalMaxMin, FluidSimStallResumeModeMatchesFullResolve) {
  expect_fluidsim_ab_identical(/*reroute_on_path_failure=*/false);
}

}  // namespace
}  // namespace sbk
