// Process peak-RSS measurement for the memory gates (scale_smoke,
// service_soak). One helper so the ru_maxrss unit quirk is handled in
// exactly one place: Linux reports it in kilobytes, macOS/BSD in bytes
// — a naive /1024 is off by 1024x on Darwin and would make an RSS gate
// trivially pass (or fail) there.
#pragma once

namespace sbk::util {

/// Peak resident set size of the calling process in MiB (getrusage;
/// platform units normalized). Returns 0.0 where getrusage is
/// unavailable.
[[nodiscard]] double peak_rss_mb();

}  // namespace sbk::util
