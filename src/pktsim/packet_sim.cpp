#include "pktsim/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "net/path.hpp"
#include "util/assert.hpp"

namespace sbk::pktsim {

namespace {

using net::DirectedLink;
using net::Network;
using sim::FlowOutcome;
using sim::FlowResult;
using sim::FlowSpec;

using PathVec = std::vector<DirectedLink>;
using PathRef = std::shared_ptr<const PathVec>;

/// Dense slot for a directed link.
std::size_t slot_of(DirectedLink dl) {
  return dl.link.index() * 2 + (dl.forward ? 0 : 1);
}

struct Packet {
  std::size_t flow = 0;
  std::int64_t seq = 0;     ///< data: segment index; ack: cumulative seq
  bool is_ack = false;
  int size_bytes = 0;
  std::size_t hop = 0;      ///< index into `path`
  PathRef path;             ///< forward (data) or reverse (ack) links
  Seconds sent_at = 0.0;    ///< data only: for RTT sampling (first tx)
  bool retransmitted = false;
  bool ecn_marked = false;  ///< congestion-experienced (data) / echo (ack)
};

}  // namespace

struct PacketSimulator::Impl {
  Impl(Network& n, routing::Router& r, PktSimConfig c, PktSimStats& s)
      : net(&n), router(&r), cfg(c), stats(&s),
        busy_until(n.link_count() * 2, 0.0) {}

  Network* net;
  routing::Router* router;
  PktSimConfig cfg;
  PktSimStats* stats;
  sim::EventQueue queue;
  obs::FlightRecorder* recorder = nullptr;
  std::vector<double> busy_until;  ///< per directed link slot

  struct Flow {
    FlowSpec spec;
    PathRef fwd;
    PathRef rev;
    std::int64_t total_segments = 0;
    // Sender state.
    std::int64_t next_seq = 0;
    std::int64_t highest_acked = -1;
    double cwnd = 1.0;
    double ssthresh = 1e9;
    int dup_acks = 0;
    /// NewReno-style recovery: while highest_acked < recover_until, each
    /// partial ACK immediately retransmits the next hole (without this,
    /// every loss in a multi-loss window costs a full RTO).
    std::int64_t recover_until = -1;
    std::uint64_t rto_generation = 0;
    bool rto_armed = false;
    Seconds rto = 0.0;
    Seconds srtt = -1.0;
    /// RTT sampling (Karn): time one un-retransmitted segment at a time.
    std::int64_t timed_seq = -1;
    Seconds timed_sent = 0.0;
    /// DCTCP: EWMA of marked-ACK fraction and once-per-window cut gate.
    double dctcp_alpha = 0.0;
    std::int64_t ecn_cut_until = -1;  ///< no cut until acks pass this seq
    /// Receiver side: was the last delivered data packet CE-marked?
    bool echo_ce = false;
    std::size_t timeouts = 0;
    std::size_t reroutes = 0;
    // Receiver state.
    std::int64_t expected = 0;  ///< next in-order segment awaited
    std::set<std::int64_t> out_of_order;
    // Lifecycle.
    bool started = false;
    bool done = false;
    Seconds finish = 0.0;
  };
  std::vector<Flow> flows;
  std::vector<std::pair<Seconds, std::function<void(Network&)>>> actions;
  /// Latest scheduled topology change; after it has passed, a flow that
  /// still cannot resolve a path is permanently stalled (stops retrying,
  /// so the run terminates).
  Seconds last_action_time = -1.0;

  [[nodiscard]] double link_rate(DirectedLink dl) const {
    return net->link(dl.link).capacity * cfg.unit_bytes_per_second;
  }

  // --- routing ------------------------------------------------------------

  /// (Re)resolves a flow's path; returns false if unreachable now.
  bool resolve_path(Flow& f) {
    net::Path p = router->route(*net, f.spec.src, f.spec.dst, f.spec.id,
                                nullptr);
    if (p.empty()) return false;
    auto fwd = std::make_shared<PathVec>(p.directed_links(*net));
    auto rev = std::make_shared<PathVec>();
    rev->reserve(fwd->size());
    for (auto it = fwd->rbegin(); it != fwd->rend(); ++it) {
      rev->push_back(DirectedLink{it->link, !it->forward});
    }
    f.fwd = std::move(fwd);
    f.rev = std::move(rev);
    return true;
  }

  // --- link layer -----------------------------------------------------------

  /// Enqueues `pkt` on its current hop's link; drops on overflow or dead
  /// elements. FIFO occupancy is implied by the busy horizon.
  void transmit(Packet pkt) {
    DirectedLink dl = (*pkt.path)[pkt.hop];
    if (net->link_failed(dl.link) || net->node_failed(net->tail(dl))) {
      ++stats->drops_dead_element;
      return;
    }
    double rate = link_rate(dl);
    Seconds now = queue.now();
    std::size_t s = slot_of(dl);
    double backlog_bytes = std::max(0.0, (busy_until[s] - now) * rate);
    if (backlog_bytes + pkt.size_bytes >
        static_cast<double>(cfg.queue_capacity_bytes)) {
      ++stats->drops_queue_overflow;
      return;
    }
    if (cfg.ecn_enabled && !pkt.is_ack &&
        backlog_bytes > static_cast<double>(cfg.ecn_threshold_bytes)) {
      if (!pkt.ecn_marked) ++stats->ecn_marks;
      pkt.ecn_marked = true;
    }
    Seconds depart = std::max(busy_until[s], now) + pkt.size_bytes / rate;
    busy_until[s] = depart;
    Seconds arrive = depart + cfg.propagation_delay;
    queue.schedule_at(arrive, [this, pkt = std::move(pkt)]() mutable {
      receive(std::move(pkt));
    });
  }

  /// Packet arrives at the head node of its current hop.
  void receive(Packet pkt) {
    DirectedLink dl = (*pkt.path)[pkt.hop];
    net::NodeId node = net->head(dl);
    if (net->node_failed(node) || net->link_failed(dl.link)) {
      ++stats->drops_dead_element;
      return;
    }
    if (pkt.hop + 1 < pkt.path->size()) {
      ++pkt.hop;
      transmit(std::move(pkt));
      return;
    }
    // Delivered to the end host.
    Flow& f = flows[pkt.flow];
    if (pkt.is_ack) {
      on_ack(f, pkt.seq, pkt.ecn_marked);
    } else {
      on_data(f, pkt);
    }
  }

  // --- receiver -------------------------------------------------------------

  void on_data(Flow& f, const Packet& pkt) {
    f.echo_ce = pkt.ecn_marked;
    if (pkt.seq == f.expected) {
      ++f.expected;
      while (!f.out_of_order.empty() &&
             *f.out_of_order.begin() == f.expected) {
        f.out_of_order.erase(f.out_of_order.begin());
        ++f.expected;
      }
    } else if (pkt.seq > f.expected) {
      f.out_of_order.insert(pkt.seq);
    }  // else: duplicate of already-delivered data
    send_ack(f);
  }

  void send_ack(Flow& f) {
    if (f.done || !f.rev) return;
    Packet ack;
    ack.flow = static_cast<std::size_t>(&f - flows.data());
    ack.seq = f.expected - 1;  // cumulative: highest in-order segment
    ack.is_ack = true;
    ack.size_bytes = cfg.header_bytes;
    ack.ecn_marked = f.echo_ce;
    ack.hop = 0;
    ack.path = f.rev;
    ++stats->acks_sent;
    transmit(std::move(ack));
  }

  // --- sender ---------------------------------------------------------------

  void send_segment(Flow& f, std::int64_t seq, bool retx) {
    Packet pkt;
    pkt.flow = static_cast<std::size_t>(&f - flows.data());
    pkt.seq = seq;
    pkt.size_bytes = cfg.mss_bytes + cfg.header_bytes;
    pkt.hop = 0;
    pkt.path = f.fwd;
    pkt.sent_at = queue.now();
    pkt.retransmitted = retx;
    ++stats->data_packets_sent;
    if (retx) {
      // Karn's rule: retransmission poisons any in-flight RTT sample.
      f.timed_seq = -1;
    } else if (f.timed_seq < 0) {
      f.timed_seq = seq;
      f.timed_sent = queue.now();
    }
    arm_rto(f);
    transmit(std::move(pkt));
  }

  void send_window(Flow& f) {
    while (!f.done && f.next_seq < f.total_segments &&
           static_cast<double>(f.next_seq - f.highest_acked - 1) < f.cwnd) {
      send_segment(f, f.next_seq, /*retx=*/false);
      ++f.next_seq;
    }
  }

  void on_ack(Flow& f, std::int64_t ack_seq, bool ce_echo = false) {
    if (f.done) return;
    if (cfg.ecn_enabled) {
      // DCTCP: EWMA of the marked fraction; cut at most once per window.
      f.dctcp_alpha = (1.0 - cfg.dctcp_g) * f.dctcp_alpha +
                      cfg.dctcp_g * (ce_echo ? 1.0 : 0.0);
      if (ce_echo && ack_seq > f.ecn_cut_until) {
        f.cwnd = std::max(2.0, f.cwnd * (1.0 - f.dctcp_alpha / 2.0));
        f.ssthresh = f.cwnd;
        f.ecn_cut_until = f.next_seq - 1;
        ++stats->ecn_window_cuts;
      }
    }
    if (ack_seq > f.highest_acked) {
      // Fresh cumulative ACK.
      std::int64_t newly = ack_seq - f.highest_acked;
      f.highest_acked = ack_seq;
      f.dup_acks = 0;
      if (f.timed_seq >= 0 && ack_seq >= f.timed_seq) {
        Seconds sample = queue.now() - f.timed_sent;
        f.srtt = f.srtt < 0.0 ? sample : 0.875 * f.srtt + 0.125 * sample;
        f.timed_seq = -1;
      }
      if (f.highest_acked >= f.total_segments - 1) {
        f.done = true;
        f.finish = queue.now();
        disarm_rto(f);
        return;
      }
      // Restart the retransmission timer for the next unacked segment.
      disarm_rto(f);
      if (f.highest_acked < f.recover_until) {
        // Partial ACK during recovery: retransmit the next hole now and
        // hold the window steady.
        send_segment(f, f.highest_acked + 1, /*retx=*/true);
        return;
      }
      f.recover_until = -1;
      // Congestion window growth.
      for (std::int64_t i = 0; i < newly; ++i) {
        if (f.cwnd < f.ssthresh) {
          f.cwnd += 1.0;  // slow start
        } else {
          f.cwnd += 1.0 / f.cwnd;  // congestion avoidance
        }
      }
      arm_rto(f);
      send_window(f);
      return;
    }
    // Duplicate ACK.
    ++f.dup_acks;
    if (f.dup_acks == 3) {
      ++stats->fast_retransmits;
      if (recorder != nullptr) {
        recorder->instant("pktsim", "fast_retransmit", queue.now());
      }
      f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
      f.cwnd = f.ssthresh;
      f.recover_until = f.next_seq - 1;
      send_segment(f, f.highest_acked + 1, /*retx=*/true);
    }
  }

  // --- retransmission timer ---------------------------------------------------

  Seconds current_rto(const Flow& f) const {
    if (f.rto > 0.0) return f.rto;
    Seconds base = f.srtt > 0.0 ? 2.0 * f.srtt : cfg.min_rto;
    return std::max(base, cfg.min_rto);
  }

  void arm_rto(Flow& f) {
    if (f.rto_armed || f.done) return;
    f.rto_armed = true;
    std::uint64_t gen = ++f.rto_generation;
    std::size_t idx = static_cast<std::size_t>(&f - flows.data());
    queue.schedule_in(current_rto(f), [this, idx, gen] {
      Flow& flow = flows[idx];
      if (flow.done || flow.rto_generation != gen) return;
      flow.rto_armed = false;
      on_timeout(flow);
    });
  }

  void disarm_rto(Flow& f) {
    ++f.rto_generation;  // invalidates the pending timer
    f.rto_armed = false;
    f.rto = 0.0;  // next arm uses the fresh base RTO
  }

  void on_timeout(Flow& f) {
    ++stats->timeouts;
    ++f.timeouts;
    if (recorder != nullptr && recorder->enabled()) {
      recorder->instant("pktsim", "timeout", queue.now(),
                        "flow#" + std::to_string(f.spec.id));
    }
    f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
    f.cwnd = 1.0;
    f.dup_acks = 0;
    f.recover_until = f.next_seq - 1;
    // Exponential backoff, capped.
    f.rto = std::min(current_rto(f) * 2.0, cfg.max_rto);
    // The path may be dead: ask the control plane for a fresh one. (This
    // models rerouting convergence: until routing offers a live path the
    // flow keeps backing off.)
    PathRef old = f.fwd;
    if (resolve_path(f)) {
      if (!old || *f.fwd != *old) {
        ++f.reroutes;
        ++stats->reroutes;
        if (recorder != nullptr && recorder->enabled()) {
          recorder->instant("pktsim", "reroute", queue.now(),
                            "flow#" + std::to_string(f.spec.id));
        }
      }
      send_segment(f, f.highest_acked + 1, /*retx=*/true);
    } else if (queue.now() <= last_action_time) {
      arm_rto(f);  // keep backing off: the network may still heal
    } else {
      f.fwd = nullptr;  // permanently unreachable: give up
      f.rev = nullptr;
    }
  }

  // --- lifecycle ----------------------------------------------------------------

  void start_flow(std::size_t idx) {
    Flow& f = flows[idx];
    f.started = true;
    if (f.spec.src == f.spec.dst || f.total_segments == 0) {
      f.done = true;
      f.finish = queue.now();
      return;
    }
    f.cwnd = cfg.initial_cwnd;
    if (!resolve_path(f)) {
      // Unreachable at start: behave like a connect-retry loop while the
      // network may still change.
      if (queue.now() <= last_action_time) arm_rto(f);
      return;
    }
    send_window(f);
  }
};

PacketSimulator::PacketSimulator(Network& net, routing::Router& router,
                                 PktSimConfig cfg)
    : impl_(std::make_unique<Impl>(net, router, cfg, stats_)) {
  SBK_EXPECTS(cfg.unit_bytes_per_second > 0.0);
  SBK_EXPECTS(cfg.mss_bytes > 0 && cfg.header_bytes >= 0);
  SBK_EXPECTS(cfg.initial_cwnd >= 1.0);
  SBK_EXPECTS(cfg.min_rto > 0.0 && cfg.max_rto >= cfg.min_rto);
}

PacketSimulator::~PacketSimulator() = default;

void PacketSimulator::attach_recorder(obs::FlightRecorder* recorder) noexcept {
  impl_->recorder = recorder;
}

void PacketSimulator::add_flow(const sim::FlowSpec& flow) {
  SBK_EXPECTS(flow.bytes >= 0.0);
  SBK_EXPECTS(flow.start >= 0.0);
  Impl::Flow f;
  f.spec = flow;
  f.total_segments = static_cast<std::int64_t>(
      std::ceil(flow.bytes / impl_->cfg.mss_bytes));
  impl_->flows.push_back(std::move(f));
}

void PacketSimulator::add_flows(std::span<const sim::FlowSpec> flows) {
  for (const auto& f : flows) add_flow(f);
}

void PacketSimulator::at(Seconds when,
                         std::function<void(net::Network&)> action) {
  SBK_EXPECTS(when >= 0.0);
  impl_->actions.emplace_back(when, std::move(action));
}

std::vector<sim::FlowResult> PacketSimulator::run() {
  Impl& im = *impl_;
  for (const auto& [when, fn] : im.actions) {
    im.last_action_time = std::max(im.last_action_time, when);
  }
  for (std::size_t i = 0; i < im.flows.size(); ++i) {
    im.queue.schedule_at(im.flows[i].spec.start,
                         [&im, i] { im.start_flow(i); });
  }
  for (auto& [when, fn] : im.actions) {
    im.queue.schedule_at(when, [&im, action = std::move(fn)] {
      if (im.recorder != nullptr) {
        im.recorder->instant("pktsim", "topology_action", im.queue.now());
      }
      action(*im.net);
    });
  }
  im.queue.run_until(im.cfg.horizon);

  std::vector<sim::FlowResult> results;
  results.reserve(im.flows.size());
  for (const Impl::Flow& f : im.flows) {
    sim::FlowResult r;
    r.spec = f.spec;
    r.path_hops = f.fwd ? f.fwd->size() : 0;
    r.reroutes = f.reroutes;
    if (f.done) {
      r.outcome = FlowOutcome::kCompleted;
      r.finish = f.finish;
    } else {
      r.outcome = f.fwd == nullptr ? FlowOutcome::kStalledForever
                                   : FlowOutcome::kUnfinished;
      r.bytes_remaining =
          std::max(0.0, f.spec.bytes -
                            static_cast<double>(f.highest_acked + 1) *
                                im.cfg.mss_bytes);
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const sim::FlowResult& a, const sim::FlowResult& b) {
              return a.spec.id < b.spec.id;
            });
  return results;
}

}  // namespace sbk::pktsim
