#include "routing/ecmp.hpp"

#include "routing/fat_tree_paths.hpp"
#include "util/assert.hpp"

namespace sbk::routing {

net::Path EcmpRouter::route(const net::Network& net, net::NodeId src,
                            net::NodeId dst, std::uint64_t flow_id,
                            const LinkLoads* /*loads*/) {
  SBK_EXPECTS_MSG(&net == &ft_->network(),
                  "router is bound to a different network instance");
  const EpochPathCache::Ref entry = cache_.lookup(net, src, dst, [&] {
    return candidate_paths(*ft_, src, dst, /*live_only=*/true);
  });
  const std::vector<net::Path>& candidates = *entry;
  if (candidates.empty()) return {};
  std::uint64_t h = mix64(flow_id ^ mix64(salt_));
  return candidates[h % candidates.size()];
}

}  // namespace sbk::routing
