// Experiment E11 — §4.1 operationally: a day-in-the-life run of the
// assembled control plane (keep-alive + link-probe detection, replicated
// controllers, table mirroring, background diagnosis, parked-recovery
// retry) under a compressed failure storm, reporting the distribution of
// *measured* outage durations per failure — the operational quantity the
// paper's recovery-latency argument (§5.3) is about.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "control/control_plane.hpp"
#include "net/algo.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace sbk;

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 8));
  const auto horizon =
      static_cast<double>(bench::arg_int(argc, argv, "seconds", 120));
  const auto mean_gap_ms =
      static_cast<double>(bench::arg_int(argc, argv, "gap-ms", 2000));

  bench::banner("E11 / §4.1 — operational control-plane run",
                "k=" + std::to_string(k) + " fabric, n=2; " +
                    std::to_string(static_cast<int>(horizon)) +
                    " s with a failure every ~" +
                    std::to_string(static_cast<int>(mean_gap_ms)) +
                    " ms; 1 ms probes; measured outage = injection to "
                    "position restored.");

  sharebackup::FabricParams fp;
  fp.fat_tree.k = k;
  fp.backups_per_group = 2;
  sharebackup::Fabric fabric(fp);
  sim::EventQueue q;
  control::ControlPlaneConfig cfg;
  cfg.detector.probe_interval = milliseconds(1);
  cfg.diagnosis_delay = 0.2;
  control::ControlPlane plane(fabric, q, cfg);
  plane.start(horizon);

  // Outage bookkeeping: injection time per node, closed at recovery.
  std::unordered_map<net::NodeId, Seconds> open_outages;
  Summary outage_ms;
  plane.on_recovery([&](const control::RecoveryOutcome& out, Seconds t) {
    if (!out.recovered) return;
    for (const auto& fo : out.failovers) {
      net::NodeId node = fabric.node_at(fo.position);
      auto it = open_outages.find(node);
      if (it != open_outages.end()) {
        outage_ms.add((t + out.control_latency - it->second) * 1e3);
        open_outages.erase(it);
      }
    }
  });

  Rng rng(1234);
  Seconds t = 0.5;
  std::size_t injected = 0;
  const int half = k / 2;
  while (t < horizon - 5.0) {
    t += rng.exponential(1000.0 / mean_gap_ms);
    topo::SwitchPosition pos;
    double layer = rng.uniform_real(0.0, 1.0);
    if (layer < 0.4) {
      pos = {topo::Layer::kEdge, static_cast<int>(rng.uniform_index(k)),
             static_cast<int>(rng.uniform_index(half))};
    } else if (layer < 0.8) {
      pos = {topo::Layer::kAgg, static_cast<int>(rng.uniform_index(k)),
             static_cast<int>(rng.uniform_index(half))};
    } else {
      pos = {topo::Layer::kCore, -1,
             static_cast<int>(rng.uniform_index(half * half))};
    }
    ++injected;
    q.schedule_at(t, [&fabric, &open_outages, pos, &q] {
      net::NodeId node = fabric.node_at(pos);
      if (fabric.network().node_failed(node)) return;
      fabric.network().fail_node(node);
      open_outages[node] = q.now();
    });
    // Repair crew sweeps 10 s after each event.
    q.schedule_at(t + 10.0, [&fabric, &plane] {
      for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count();
           ++d) {
        if (fabric.device_state(d) == sharebackup::DeviceState::kOut) {
          plane.controller().on_device_repaired(d);
        }
      }
    });
  }
  q.run();
  plane.controller().run_pending_diagnosis();

  const auto& stats = plane.controller().stats();
  std::printf("injected ~%zu failure events\n", injected);
  std::printf("failovers: %zu | transient pool exhaustions: %zu | pending "
              "at end: %zu\n",
              stats.failovers, stats.recoveries_failed_pool_exhausted,
              plane.controller().pending_recoveries());
  if (!outage_ms.empty()) {
    std::printf("measured outage per failure (injection -> restored):\n");
    std::printf("  n=%zu  mean=%.2f ms  p50=%.2f ms  p99=%.2f ms  "
                "max=%.2f ms\n",
                outage_ms.count(), outage_ms.mean(), outage_ms.median(),
                outage_ms.percentile(99), outage_ms.max());
    bench::csv_row({"outage-ms", bench::fmt(outage_ms.mean()),
                    bench::fmt(outage_ms.median()),
                    bench::fmt(outage_ms.percentile(99)),
                    bench::fmt(outage_ms.max())});
  }
  std::printf("network whole at end: %s (failed nodes: %zu)\n",
              net::live_component_count(fabric.network()) == 1 ? "yes" : "no",
              fabric.network().failed_node_count());
  std::printf(
      "\nReading: with 1 ms probes and 3-miss detection, the fabric\n"
      "restores each failed position within a few ms (p99 includes the\n"
      "rare parked recoveries that waited for a repair). Compare §5.3's\n"
      "component model in bench/sec53_recovery_latency.\n");
  return 0;
}
