// HDR-style log-bucketed streaming histogram (the SLO engine's latency
// substrate). Where util::Summary buffers every sample and sorts on
// demand, LogHistogram decomposes a value into (octave, sub-bucket) via
// frexp and increments a fixed-size count array:
//
//   * record() is O(1), allocation-free after the first sample, and
//     noexcept — safe on the service hot path.
//   * Memory is bounded at kBucketCount uint64 counts (~16 KB) no
//     matter how many samples arrive.
//   * merge() adds bucket counts element-wise and folds count/min/max —
//     every piece of state is an exact associative/commutative fold, so
//     merging per-scenario histograms in any grouping yields the same
//     histogram. There is deliberately NO stored floating-point sum
//     (double addition is not associative); mean() is derived from the
//     bucket counts instead.
//   * quantile() walks the cumulative counts and returns the bucket's
//     geometric midpoint clamped to [min, max] — relative error is
//     bounded by the sub-bucket width (2^-kSubBucketBits ~ 3%), and the
//     answer is a pure function of the bucket counts, so it is
//     bit-identical across producer-thread counts.
//
// Values are non-negative seconds. Anything below ~0.47 ns (including
// zero and negatives, which are clamped) lands in the underflow bucket;
// anything at or above 2^32 s saturates into the top bucket. min()/
// max() always report the exact observed extremes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbk::obs::slo {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave,
  /// i.e. quantiles are exact to within ~3.1% relative error.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Smallest distinguishable magnitude: 2^kFloorExp seconds (~0.47 ns).
  /// frexp exponents below this collapse into the underflow bucket 0.
  static constexpr int kFloorExp = -31;
  /// Largest tracked exponent: values >= 2^32 s saturate into the top
  /// bucket (no virtual-time span in this repo comes anywhere close).
  static constexpr int kCeilExp = 32;
  static constexpr std::uint32_t kOctaves =
      static_cast<std::uint32_t>(kCeilExp - kFloorExp);
  static constexpr std::uint32_t kBucketCount = 1 + kOctaves * kSubBuckets;

  void record(double v) noexcept { record_n(v, 1); }
  void record_n(double v, std::uint64_t n) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Exact observed extremes (0 when empty).
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Bucket-derived mean: sum(count_b * representative_b) / count. Exact
  /// to the sub-bucket width; a pure function of the counts, so it
  /// survives merge() unchanged regardless of merge grouping.
  [[nodiscard]] double mean() const noexcept;

  /// q in [0, 1]. Returns the representative of the bucket holding the
  /// ceil(q * count)-th sample (rank order), clamped to [min, max].
  /// quantile(0) == min(), quantile(1) == max(), both exact.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double percentile(double p) const noexcept {
    return quantile(p / 100.0);
  }

  /// Exact element-wise fold of the other histogram's state.
  void merge(const LogHistogram& other);
  void clear() noexcept;

  /// Bytes held by the bucket array (0 until the first record — empty
  /// histograms in wide registries cost nothing).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return counts_.capacity() * sizeof(std::uint64_t);
  }

  /// Canonical rendering: count, exact min/max, p50/p99/p999, and an
  /// FNV-1a hash over the (bucket, count) pairs. Two histograms with
  /// identical bucket state fingerprint identically.
  [[nodiscard]] std::string fingerprint() const;

  // --- bucket geometry (exposed for exporters and tests) ---------------------
  [[nodiscard]] static std::uint32_t bucket_of(double v) noexcept;
  /// Inclusive lower bound of bucket `idx` (bucket 0 starts at 0).
  [[nodiscard]] static double bucket_lower(std::uint32_t idx) noexcept;
  /// Exclusive upper bound of bucket `idx`.
  [[nodiscard]] static double bucket_upper(std::uint32_t idx) noexcept;
  /// Deterministic representative value: the geometric midpoint of the
  /// bucket bounds (the lower bound for the underflow bucket).
  [[nodiscard]] static double bucket_representative(std::uint32_t idx) noexcept;

  /// Visits (bucket index, count) for every non-empty bucket in index
  /// order. `fn` is invoked as fn(std::uint32_t, std::uint64_t).
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::uint32_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] != 0) fn(i, counts_[i]);
    }
  }

 private:
  void ensure_buckets();

  std::vector<std::uint64_t> counts_;  ///< empty until the first record
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sbk::obs::slo
