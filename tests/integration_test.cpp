// End-to-end integration tests: coflow workloads driven through the fluid
// simulator on the compared architectures, exercising the paper's core
// claims — rerouting loses bandwidth and inflates CCT; ShareBackup's
// hardware replacement does not (Table 3) — plus the full
// detect->recover->diagnose pipeline against the fabric.
#include <gtest/gtest.h>

#include <memory>

#include "control/controller.hpp"
#include "control/failure_detector.hpp"
#include "net/algo.hpp"
#include "routing/ecmp.hpp"
#include "routing/f10.hpp"
#include "routing/global_reroute.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/fluid_sim.hpp"
#include "util/stats.hpp"
#include "workload/coflow_gen.hpp"

namespace sbk {
namespace {

using control::Controller;
using control::ControllerConfig;
using net::NodeId;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using sim::FlowOutcome;
using sim::FlowSpec;
using sim::FluidSimulator;
using sim::SimConfig;
using topo::FatTree;
using topo::FatTreeParams;
using topo::Layer;
using topo::SwitchPosition;
using topo::Wiring;

/// Rack-level fat-tree (1 aggregate host per edge), 4:1 oversubscribed to
/// keep the fabric loaded and simulation small.
FatTreeParams rack_params(int k, Wiring wiring = Wiring::kPlain) {
  FatTreeParams p{.k = k, .wiring = wiring};
  p.hosts_per_edge = 1;
  p.host_link_capacity = 4.0 * (k / 2);
  return p;
}

std::vector<FlowSpec> small_workload(const FatTree& ft, std::uint64_t seed,
                                     std::size_t coflows = 40) {
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 60.0;
  wp.reducer_bytes_cap = 2e9;
  Rng rng(seed);
  auto trace = workload::generate_coflows(wp, rng);
  return workload::expand_to_flows(ft, trace);
}

double total_cct(const std::vector<sim::FlowResult>& results) {
  double total = 0.0;
  for (const auto& c : sim::aggregate_coflows(results)) {
    EXPECT_TRUE(c.all_completed);
    total += c.cct();
  }
  return total;
}

TEST(Integration, WorkloadCompletesOnHealthyFatTree) {
  FatTree ft(rack_params(8));
  routing::EcmpRouter router(ft, 1);
  FluidSimulator sim(ft.network(), router, SimConfig{});
  auto flows = small_workload(ft, 42);
  ASSERT_GT(flows.size(), 100u);
  sim.add_flows(flows);
  auto results = sim.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, FlowOutcome::kCompleted);
    EXPECT_GE(r.finish, r.spec.start);
  }
}

/// A hotspot shuffle that saturates pod 0's uplinks: every pod-0 rack
/// sends one large flow to a rack in each of 4 remote pods (16 flows,
/// matching pod 0's total up-capacity). Losing one aggregation switch
/// removes 1/4 of that capacity, so rerouting must inflate CCT by ~4/3.
std::vector<FlowSpec> hotspot_workload(const FatTree& ft) {
  std::vector<FlowSpec> flows;
  std::uint64_t id = 0;
  const int half = ft.half_k();
  for (int src = 0; src < half; ++src) {
    for (int p = 1; p <= 4; ++p) {
      FlowSpec f;
      f.id = id++;
      f.src = ft.host(src);                 // pod 0 racks
      f.dst = ft.host(p * half + (src + p) % half);
      f.bytes = 1e9;
      f.start = 0.0;
      f.coflow = static_cast<sim::CoflowId>(src);
      flows.push_back(f);
    }
  }
  return flows;
}

TEST(Integration, FailureWithReroutingInflatesCct) {
  // Same hotspot shuffle, three runs: healthy; with a pre-existing agg
  // failure and global-optimal rerouting; and the failure with
  // ShareBackup (which restores the topology before traffic starts).
  // Paper claim: rerouting costs CCT; replacement does not.
  double healthy_cct = 0.0;
  {
    FatTree ft(rack_params(8));
    routing::MinCongestionRouter router(ft, 3);
    FluidSimulator sim(ft.network(), router, SimConfig{});
    sim.add_flows(hotspot_workload(ft));
    healthy_cct = total_cct(sim.run());
  }

  double degraded_cct = 0.0;
  {
    FatTree ft(rack_params(8));
    routing::MinCongestionRouter router(ft, 3);
    ft.network().fail_node(ft.agg(0, 0));  // final state after failure
    FluidSimulator sim(ft.network(), router, SimConfig{});
    sim.add_flows(hotspot_workload(ft));
    degraded_cct = total_cct(sim.run());
  }

  double sharebackup_cct = 0.0;
  {
    FabricParams fabp;
    fabp.fat_tree = rack_params(8);
    Fabric fabric(fabp);
    Controller ctrl(fabric, ControllerConfig{});
    // The failure happened and was recovered before the trace window (a
    // few ms of recovery against a 60 s trace).
    SwitchPosition pos{Layer::kAgg, 0, 0};
    fabric.network().fail_node(fabric.node_at(pos));
    ASSERT_TRUE(ctrl.on_switch_failure(pos).recovered);

    routing::MinCongestionRouter router(fabric.fat_tree(), 3);
    FluidSimulator sim(fabric.network(), router, SimConfig{});
    sim.add_flows(hotspot_workload(fabric.fat_tree()));
    sharebackup_cct = total_cct(sim.run());
  }

  // Bandwidth loss shows up as aggregate CCT inflation (~4/3 here)...
  EXPECT_GT(degraded_cct, healthy_cct * 1.1);
  // ...while ShareBackup is bit-for-bit the healthy network.
  EXPECT_NEAR(sharebackup_cct, healthy_cct, healthy_cct * 1e-9);
}

TEST(Integration, MidTraceFailureStallsOnlyBrieflyUnderShareBackup) {
  FabricParams fabp;
  fabp.fat_tree = rack_params(8);
  Fabric fabric(fabp);
  Controller ctrl(fabric, ControllerConfig{});

  routing::EcmpRouter router(fabric.fat_tree(), 5);
  SimConfig cfg;
  cfg.reroute_on_path_failure = false;  // ShareBackup never re-routes
  FluidSimulator sim(fabric.network(), router, cfg);
  auto flows = small_workload(fabric.fat_tree(), 11);
  sim.add_flows(flows);

  // Mid-trace: an edge switch dies; recovery completes one control-path
  // latency later (~ms), restoring every affected path unchanged.
  SwitchPosition pos{Layer::kEdge, 2, 1};
  NodeId victim = fabric.node_at(pos);
  Seconds recovery_delay = ctrl.end_to_end_recovery_latency();
  sim.at(20.0, [victim](net::Network& net) { net.fail_node(victim); });
  sim.at(20.0 + recovery_delay, [&](net::Network&) {
    auto out = ctrl.on_switch_failure(pos);
    ASSERT_TRUE(out.recovered);
  });

  auto results = sim.run();
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, FlowOutcome::kCompleted) << "flow " << r.spec.id;
    EXPECT_EQ(r.reroutes, 0u);  // paths pinned throughout
  }
}

TEST(Integration, Table3NoPathDilationForShareBackupButF10Dilates) {
  // F10 under a failure uses longer paths (path dilation); ShareBackup
  // restores the topology so hop counts are unchanged.
  FatTree ab(rack_params(8, Wiring::kAb));
  routing::F10Router f10(ab, 2);
  ab.network().fail_node(ab.agg(1, 1));
  std::size_t dilated = 0;
  std::size_t total = 0;
  for (std::uint64_t f = 0; f < 64; ++f) {
    net::Path p = f10.route(ab.network(), ab.host(0), ab.host(4 + f % 4),
                            f, nullptr);
    if (p.empty()) continue;
    ++total;
    if (p.hops() > 6) ++dilated;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(dilated, 0u);

  // ShareBackup: after recovery every path has the healthy hop count.
  FabricParams fabp;
  fabp.fat_tree = rack_params(8);
  Fabric fabric(fabp);
  Controller ctrl(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kAgg, 1, 1};
  fabric.network().fail_node(fabric.node_at(pos));
  ASSERT_TRUE(ctrl.on_switch_failure(pos).recovered);
  routing::EcmpRouter ecmp(fabric.fat_tree(), 2);
  for (std::uint64_t f = 0; f < 64; ++f) {
    net::Path p = ecmp.route(fabric.network(), fabric.fat_tree().host(0),
                             fabric.fat_tree().host(4 + f % 4), f, nullptr);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.hops(), 6u);
  }
}

TEST(Integration, Table3BandwidthLossMeasuredByAllToAllThroughput) {
  // Aggregate max-min throughput of an all-to-all: fat-tree loses
  // bandwidth under a failure; ShareBackup does not.
  auto all_to_all_throughput = [](const FatTree& ft,
                                  routing::Router& router) {
    std::vector<sim::Demand> demands;
    std::uint64_t id = 0;
    for (int i = 0; i < ft.host_count(); ++i) {
      for (int j = 0; j < ft.host_count(); ++j) {
        if (i == j) continue;
        net::Path p = router.route(ft.network(), ft.host(i), ft.host(j),
                                   id++, nullptr);
        if (p.empty()) continue;
        demands.push_back(sim::Demand{p.directed_links(ft.network())});
      }
    }
    auto rates = sim::max_min_rates(ft.network(), demands);
    double total = 0.0;
    for (double r : rates) total += r;
    return total;
  };

  FatTree healthy(rack_params(4));
  routing::EcmpRouter r1(healthy, 4);
  double base = all_to_all_throughput(healthy, r1);

  FatTree failed(rack_params(4));
  routing::MinCongestionRouter r2(failed, 4);
  failed.network().fail_node(failed.agg(0, 0));
  double degraded = all_to_all_throughput(failed, r2);
  EXPECT_LT(degraded, base * 0.995);

  FabricParams fabp;
  fabp.fat_tree = rack_params(4);
  Fabric fabric(fabp);
  Controller ctrl(fabric, ControllerConfig{});
  SwitchPosition pos{Layer::kAgg, 0, 0};
  fabric.network().fail_node(fabric.node_at(pos));
  ASSERT_TRUE(ctrl.on_switch_failure(pos).recovered);
  routing::EcmpRouter r3(fabric.fat_tree(), 4);
  double recovered = all_to_all_throughput(fabric.fat_tree(), r3);
  EXPECT_NEAR(recovered, base, base * 1e-9);
}

TEST(Integration, DetectRecoverDiagnoseFullPipeline) {
  // Keep-alive detection -> controller failover -> link probe detection
  // -> dual replacement -> offline diagnosis -> pool replenished.
  FabricParams fabp;
  fabp.fat_tree.k = 6;
  fabp.backups_per_group = 1;
  Fabric fabric(fabp);
  ControllerConfig ccfg;
  Controller ctrl(fabric, ccfg);
  sim::EventQueue q;
  control::DetectorConfig dcfg;
  control::FailureDetector det(q, fabric.network(), dcfg);

  det.on_node_failure([&](NodeId node, Seconds) {
    auto pos = fabric.position_of_node(node);
    ASSERT_TRUE(pos.has_value());
    EXPECT_TRUE(ctrl.on_switch_failure(*pos).recovered);
  });
  det.on_link_failure([&](net::LinkId link, Seconds) {
    EXPECT_TRUE(ctrl.on_link_failure(link).recovered);
  });

  // Watch everything.
  for (NodeId sw : fabric.fat_tree().all_switches()) {
    det.watch_node(sw, 0.2);
  }
  net::NodeId edge = fabric.fat_tree().edge(0, 0);
  net::NodeId agg = fabric.fat_tree().agg(0, 2);
  net::LinkId link = *fabric.network().find_link(edge, agg);
  det.watch_link(link, 0.2);

  // Inject: a core dies at 10 ms; the edge-agg link dies at 50 ms from a
  // faulty edge-side interface.
  NodeId core = fabric.fat_tree().core(3);
  q.schedule_at(0.010, [&] { fabric.network().fail_node(core); });
  q.schedule_at(0.050, [&] {
    std::size_t cs = fabric.cs_of_link(link);
    auto edge_dev = fabric.device_at(*fabric.position_of_node(edge));
    fabric.set_interface_health({edge_dev, cs}, false);
    fabric.network().fail_link(link);
  });
  q.run();

  // Both failures recovered at the packet layer.
  EXPECT_FALSE(fabric.network().node_failed(core));
  EXPECT_FALSE(fabric.network().link_failed(link));
  EXPECT_EQ(net::live_component_count(fabric.network()), 1u);

  // Diagnosis exonerates the agg device, leaving only true casualties out.
  ctrl.run_pending_diagnosis();
  EXPECT_EQ(ctrl.stats().switches_exonerated, 1u);
  EXPECT_EQ(ctrl.stats().switches_confirmed_faulty, 1u);
  EXPECT_EQ(fabric.spares(Layer::kAgg, 0).size(), 1u);
  fabric.check_invariants();
}

TEST(Integration, CapacityNIndependentLinkFailuresPerGroup) {
  // §5.1: each failure group tolerates n independent link failures (after
  // diagnosis frees the healthy side each time).
  FabricParams fabp;
  fabp.fat_tree.k = 6;
  fabp.backups_per_group = 2;
  Fabric fabric(fabp);
  Controller ctrl(fabric, ControllerConfig{});

  // Two sequential link failures rooted at pod-0 edges (faulty edge side),
  // diagnosed between events.
  for (int round = 0; round < 2; ++round) {
    net::NodeId edge = fabric.fat_tree().edge(0, round);
    net::NodeId agg = fabric.fat_tree().agg(0, round);
    net::LinkId link = *fabric.network().find_link(edge, agg);
    std::size_t cs = fabric.cs_of_link(link);
    auto edge_dev = fabric.device_at(*fabric.position_of_node(edge));
    fabric.set_interface_health({edge_dev, cs}, false);
    fabric.network().fail_link(link);
    ASSERT_TRUE(ctrl.on_link_failure(link).recovered) << round;
    ctrl.run_pending_diagnosis();
  }
  // Two edge backups consumed; agg pool refilled by exoneration.
  EXPECT_TRUE(fabric.spares(Layer::kEdge, 0).empty());
  EXPECT_EQ(fabric.spares(Layer::kAgg, 0).size(), 2u);
  EXPECT_EQ(ctrl.stats().switches_confirmed_faulty, 2u);
  fabric.check_invariants();
}

}  // namespace
}  // namespace sbk
