#include "sim/event_queue.hpp"

#include <utility>

namespace sbk::sim {

void EventQueue::schedule_at(Seconds at, Callback fn) {
  SBK_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  SBK_EXPECTS(fn != nullptr);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Seconds delay, Callback fn) {
  SBK_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move via const_cast is the standard
  // idiom-free workaround — copy the callback instead to stay clean.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.time;
  e.fn();
  return true;
}

void EventQueue::run_until(Seconds until) {
  while (!heap_.empty() && heap_.top().time <= until) step();
  now_ = std::max(now_, until);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace sbk::sim
