// The logically centralized ShareBackup network controller (§4).
//
// Responsibilities implemented here:
//   * node-failure recovery: allocate a backup from the failure group and
//     reconfigure the group's circuit switches (§4.1);
//   * link-failure recovery: replace the switches on *both* sides
//     immediately, then queue offline diagnosis to exonerate the healthy
//     one and return it to the pool (§4.1-4.2);
//   * host-link policy: hosts cannot be probed offline, so the edge
//     switch is assumed at fault; if the failure persists after the
//     replacement, the switch is redressed healthy and the host flagged
//     for troubleshooting (§4.2);
//   * circuit-switch watchdog: a burst of link-failure reports localized
//     to one circuit switch stops automatic recovery and requests human
//     intervention (§5.1);
//   * recovery-latency accounting (§5.3): detection + notification +
//     processing + circuit reconfiguration.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/diagnosis.hpp"
#include "control/table_manager.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_tracer.hpp"
#include "sharebackup/fabric.hpp"
#include "util/time.hpp"

namespace sbk::control {

struct ControllerConfig {
  /// Keep-alive / link-probe interval (same as F10 and Aspen Tree, §5.3).
  Seconds probe_interval = milliseconds(1);
  /// Consecutive misses before a failure is declared.
  int miss_threshold = 3;
  /// One-way switch-to-controller report latency ("sub-ms with an
  /// efficient kernel-module implementation", §5.3).
  Seconds report_latency = microseconds(100);
  /// Controller decision time per failure event.
  Seconds processing_latency = microseconds(50);
  /// One-way controller-to-circuit-switch command latency.
  Seconds command_latency = microseconds(100);
  /// Link-failure reports attributable to one circuit switch within the
  /// window before recovery halts and humans are paged (§5.1).
  std::size_t watchdog_threshold = 4;
  Seconds watchdog_window = 1.0;

  // --- reconfiguration-command reliability -------------------------------
  /// Re-sends of a reconfiguration command after the first attempt before
  /// the controller stops waiting on hardware and degrades to rerouting.
  int command_max_retries = 4;
  /// Latency charged for a command whose ack never arrives.
  Seconds command_timeout = milliseconds(1);
  /// Retry backoff: starts at the initial value, doubles per retry, and
  /// is capped (capped exponential backoff).
  Seconds retry_backoff_initial = microseconds(200);
  Seconds retry_backoff_cap = milliseconds(2);
  /// Upstream forwarding-rule updates charged to a degraded recovery (the
  /// §5.3 global-reroute path taken when no backup can be installed).
  int degraded_rule_updates = 2;
};

/// Outcome of delivering one reconfiguration command to the failure
/// group's circuit switches. The default control channel always acks;
/// fault injection substitutes the other statuses.
enum class CommandStatus {
  kAck,             ///< delivered, applied, ack received
  kNack,            ///< rejected by the circuit switch; not applied
  kTimeoutLost,     ///< lost in flight; not applied, no ack
  kTimeoutApplied,  ///< applied, but the ack was lost
};

/// What the controller did about one failure event.
struct RecoveryOutcome {
  bool recovered = false;
  /// Failovers executed (2 for a switch-switch link failure).
  std::vector<sharebackup::Fabric::FailoverReport> failovers;
  /// Report arrival to circuits reconfigured (excludes detection time;
  /// see RecoveryLatencyModel for end-to-end numbers). Includes retry
  /// penalties when the command channel misbehaved.
  Seconds control_latency = 0.0;
  /// The failure could not be recovered by backup hardware (pool empty
  /// or command retries spent) and traffic falls back to the global
  /// reroute path; the element stays failed and is parked for a hardware
  /// re-attempt when a pool refills.
  bool degraded = false;
  /// Post-detection latency of the degraded reroute (0 when !degraded).
  Seconds degraded_latency = 0.0;
  /// Command re-sends plus dead-on-arrival backup cascades spent here.
  std::size_t retries = 0;
  std::string detail;
};

/// One entry of the controller's append-only audit trail: everything an
/// operator needs to reconstruct what the control plane did and when.
struct AuditEntry {
  Seconds at = 0.0;
  std::string event;   ///< e.g. "failover", "diagnosis", "repair"
  std::string detail;  ///< human-readable specifics
};

/// Aggregate controller statistics.
struct ControllerStats {
  std::size_t node_failures_handled = 0;
  std::size_t link_failures_handled = 0;
  std::size_t host_link_failures_handled = 0;
  std::size_t failovers = 0;
  std::size_t recoveries_failed_pool_exhausted = 0;
  std::size_t diagnoses_run = 0;
  std::size_t switches_exonerated = 0;
  std::size_t switches_confirmed_faulty = 0;
  std::size_t hosts_flagged = 0;
  std::size_t watchdog_trips = 0;
  /// Command re-sends (NACK / timeout) plus dead-on-arrival cascades.
  std::size_t retries = 0;
  /// Backups that were dead on arrival and cascaded to the next spare.
  std::size_t doa_backups = 0;
  /// Recoveries abandoned because command retries were spent.
  std::size_t retries_exhausted = 0;
  /// Failures degraded to the global-reroute path (pool empty or
  /// retries spent); these stay parked for a hardware re-attempt.
  std::size_t degraded_reroutes = 0;
  /// Parked failures re-queued for recovery (pool refill, watchdog ack).
  std::size_t requeued = 0;
};

class Controller {
 public:
  Controller(sharebackup::Fabric& fabric, ControllerConfig config);

  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

  // --- failure handling ------------------------------------------------------
  /// Handles a detected switch (node) failure at `pos`. The caller (the
  /// failure detector or a test) must already have failed the position's
  /// node in the Network; recovery restores it.
  RecoveryOutcome on_switch_failure(sharebackup::SwitchPosition pos);

  /// Handles a detected link failure. For switch-switch links both
  /// endpoints are replaced and diagnosis is queued; for host-edge links
  /// only the edge switch is replaced, with the host-policy fallback.
  RecoveryOutcome on_link_failure(net::LinkId link);

  // --- background work --------------------------------------------------------
  /// Runs queued offline diagnoses; exonerated devices return to their
  /// pools. Returns the number processed. `queued_before` restricts the
  /// pass to jobs queued strictly earlier (the ControlPlane uses it so
  /// every job waits its full diagnosis_delay in the background — a
  /// drain must not sweep up work queued this very instant by a retried
  /// recovery); the default processes everything, including jobs queued
  /// by the pass's own pool-refill retries.
  std::size_t run_pending_diagnosis(
      Seconds queued_before = std::numeric_limits<Seconds>::infinity());
  [[nodiscard]] std::size_t pending_diagnosis() const noexcept {
    return diagnosis_queue_.size();
  }

  /// A technician repaired a confirmed-faulty device: heal its interfaces
  /// and return it to the pool as a backup (the paper keeps roles fluid).
  void on_device_repaired(sharebackup::DeviceUid dev);

  /// Failures that could not be recovered (pool exhausted) are parked and
  /// automatically retried whenever a device returns to a pool. The
  /// listener fires for each retried recovery so the caller (e.g.
  /// ControlPlane) can re-arm detectors and notify observers.
  using RetryListener = std::function<void(
      const RecoveryOutcome&, std::optional<net::NodeId> node,
      std::optional<net::LinkId> link)>;
  void set_retry_listener(RetryListener listener) {
    retry_listener_ = std::move(listener);
  }
  [[nodiscard]] std::size_t pending_recoveries() const noexcept {
    return pending_nodes_.size() + pending_links_.size();
  }
  [[nodiscard]] const std::vector<sharebackup::SwitchPosition>&
  pending_node_recoveries() const noexcept {
    return pending_nodes_;
  }
  [[nodiscard]] const std::vector<net::LinkId>& pending_link_recoveries()
      const noexcept {
    return pending_links_;
  }
  /// Re-attempts parked recoveries now. Normally retries fire
  /// automatically on pool returns / watchdog acknowledgment; the chaos
  /// soak's operator tick also drives this directly.
  void retry_parked() { retry_pending(); }

  /// Fault-injection surface for the controller->circuit-switch command
  /// channel: called once per (position, attempt) and returns what
  /// happened to that command. Commands are idempotent, so a re-send
  /// after kTimeoutApplied is acked without a second reconfiguration.
  /// Default (no hook): every command acks on the first attempt.
  using CommandFaultHook =
      std::function<CommandStatus(sharebackup::SwitchPosition pos,
                                  int attempt)>;
  void set_command_fault_hook(CommandFaultHook hook) {
    command_fault_ = std::move(hook);
  }

  /// Deterministic state handoff at a cluster failover (§5.1): the new
  /// primary adopts the dead primary's in-flight work — parked
  /// recoveries, queued offline diagnoses, the tripped-watchdog flag
  /// plus its link-report window, and the faulty-device incident map —
  /// so no accepted failure report is lost across the transition and no
  /// reconfiguration runs twice (commands are idempotent and
  /// park_node/park_link deduplicate). The dead controller is left with
  /// no in-flight state; it must not act again under its old term.
  void adopt_in_flight_from(Controller& dead);

  // --- watchdog / status -------------------------------------------------------
  [[nodiscard]] bool human_intervention_required() const noexcept {
    return watchdog_tripped_;
  }
  /// Clears the watchdog after manual service (e.g. circuit switch
  /// rebooted and re-synced from the controller) and re-attempts the
  /// failures parked while recovery was halted.
  void acknowledge_intervention();

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& flagged_hosts() const noexcept {
    return flagged_hosts_;
  }
  /// Append-only operations log (timestamps from set_time()).
  [[nodiscard]] const std::vector<AuditEntry>& audit_log() const noexcept {
    return audit_;
  }
  /// Bounds the in-memory audit trail for always-on service use: once
  /// the log exceeds `limit` entries the oldest are shed in blocks
  /// (amortized O(1)) and counted in audit_dropped(). 0 (the default)
  /// keeps every entry — single-run harness behavior.
  void set_audit_limit(std::size_t limit) noexcept { audit_limit_ = limit; }
  [[nodiscard]] std::size_t audit_dropped() const noexcept {
    return audit_dropped_;
  }

  /// End-to-end recovery latency for one failure under this config:
  /// detection (worst-case probe misses) + report + processing + command
  /// + circuit reconfiguration.
  [[nodiscard]] Seconds end_to_end_recovery_latency() const;

  /// Advances the watchdog's notion of time (reports are timestamped with
  /// it). Tests and the control-plane simulation drive this. The fabric's
  /// trace clock follows so its failover/pool instants carry the same
  /// timestamps.
  void set_time(Seconds now) noexcept {
    now_ = now;
    fabric_->set_trace_time(now);
  }

  /// Attaches the §4.3 routing-table mirror: every failover / pool
  /// return the controller performs is reflected in the manager's
  /// ImpersonationStore, keeping preloaded-table assignment in sync with
  /// the physical devices. Optional; pass nullptr to detach. The manager
  /// must outlive the controller.
  void attach_table_manager(TableManager* tables) noexcept {
    tables_ = tables;
  }

  /// Recovery-timeline spans per incident: "notification" (report
  /// arrival), "decision", "command", "reconfiguration",
  /// "table_activation" (when a table manager is attached), with
  /// trailing "diagnosis" / "restore" background spans. Incidents are
  /// correlated with the detector's through the canonical obs element
  /// names. Pass nullptr to detach; must outlive the controller.
  void attach_tracer(obs::RecoveryTracer* tracer) noexcept {
    tracer_ = tracer;
  }
  /// Counters controller.{failovers,diagnoses,watchdog_trips,
  /// pool_exhausted,retries,degraded_reroutes,requeued} and latency
  /// histograms controller.{control_latency,degraded_latency}.
  /// Pass nullptr to detach. The registry must outlive the controller.
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Wall-clock-timed spans around failure handling and diagnosis
  /// passes, plus instants for degraded recoveries and watchdog trips
  /// (sim timestamps from set_time()). Pass nullptr to detach; the
  /// recorder must outlive the controller.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  struct PendingDiagnosis {
    sharebackup::DeviceUid a;
    sharebackup::DeviceUid b;
    std::size_t cs;
    /// Tracer incident the diagnosed link failure belongs to.
    std::size_t incident = obs::RecoveryTracer::kNoIncident;
    /// When the job was queued (run_pending_diagnosis cutoff).
    Seconds queued_at = 0.0;
  };

  /// Result of pushing one reconfiguration command through the (possibly
  /// faulty) command channel, retries and DOA cascades included.
  struct CommandOutcome {
    /// The verified-healthy failover, absent on pool/retry exhaustion.
    std::optional<sharebackup::Fabric::FailoverReport> report;
    /// Failovers whose replacement was dead on arrival (each consumed a
    /// spare and reconfigured circuits before cascading onward).
    std::vector<sharebackup::Fabric::FailoverReport> doa_cascade;
    Seconds retry_penalty = 0.0;
    std::size_t retries = 0;
    bool retries_exhausted = false;
    bool pool_exhausted = false;
  };
  [[nodiscard]] CommandOutcome execute_failover(
      sharebackup::SwitchPosition pos);
  /// Folds a CommandOutcome's retries and DOA-cascade failovers into the
  /// stats, metrics, table mirror and the RecoveryOutcome.
  void account_command(const CommandOutcome& co, RecoveryOutcome& outcome);
  /// Marks an unrecoverable failure as degraded to the global-reroute
  /// path (latency model, counters, tracer span, audit).
  void degrade(RecoveryOutcome& outcome, const std::string& element,
               const char* cause);
  [[nodiscard]] Seconds degraded_reroute_latency() const;

  void note_link_report_for_watchdog(std::size_t cs, net::LinkId link);
  [[nodiscard]] Seconds control_path_latency() const;

  /// Records the control-path spans for a completed failover on
  /// `element` starting at now_ and closes the incident at the
  /// reconfiguration end. `command_penalty` stretches the command span
  /// by the retry penalty actually paid. Returns the incident
  /// (kNoIncident when no tracer is attached) so background work can
  /// append to it.
  std::size_t trace_recovery(const std::string& element,
                             Seconds command_penalty = 0.0);

  void mirror_failover(const sharebackup::Fabric::FailoverReport& report);
  void mirror_return(sharebackup::DeviceUid dev);
  void park_node(sharebackup::SwitchPosition pos);
  void park_link(net::LinkId link);
  void audit(std::string event, std::string detail);
  /// Re-attempts parked recoveries after a pool replenishment.
  void retry_pending();

  sharebackup::Fabric* fabric_;
  ControllerConfig config_;
  DiagnosisEngine engine_;
  TableManager* tables_ = nullptr;
  std::deque<PendingDiagnosis> diagnosis_queue_;
  std::vector<sharebackup::SwitchPosition> pending_nodes_;
  std::vector<net::LinkId> pending_links_;
  RetryListener retry_listener_;
  bool retrying_ = false;
  /// Set by a re-entrant retry_pending() trigger (pool refill or
  /// watchdog ack landing while a pass runs); the outer pass re-sweeps.
  bool retry_again_ = false;
  CommandFaultHook command_fault_;
  /// (report time, circuit switch, link): the watchdog counts *distinct*
  /// sick links per circuit switch, so re-transmitted reports of one
  /// link cannot trip it.
  struct LinkReport {
    Seconds at;
    std::size_t cs;
    net::LinkId link;
  };
  std::vector<LinkReport> recent_link_reports_;
  std::vector<net::NodeId> flagged_hosts_;
  std::vector<AuditEntry> audit_;
  std::size_t audit_limit_ = 0;  ///< 0 = unbounded
  std::size_t audit_dropped_ = 0;
  ControllerStats stats_;
  bool watchdog_tripped_ = false;
  Seconds now_ = 0.0;
  obs::RecoveryTracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  /// Incident to attach a "restore" span to when a confirmed-faulty
  /// device comes back via on_device_repaired().
  std::unordered_map<sharebackup::DeviceUid, std::size_t>
      incident_of_faulty_;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_diagnoses_ = nullptr;
  obs::Counter* m_watchdog_trips_ = nullptr;
  obs::Counter* m_pool_exhausted_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_requeued_ = nullptr;
  obs::LatencyHistogram* m_control_latency_ = nullptr;
  obs::LatencyHistogram* m_degraded_latency_ = nullptr;
};

}  // namespace sbk::control
