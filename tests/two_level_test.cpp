// Tests for the two-level routing tables and the VLAN-based live
// impersonation machinery (§4.3): table sizes, forwarding correctness,
// and — the crucial property — forwarding invariance under failovers.
#include <gtest/gtest.h>

#include "routing/impersonation.hpp"
#include "routing/two_level.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sbk::routing {
namespace {

TEST(TwoLevelTable, PrefixPrecedesSuffixAndLongestMatchWins) {
  TwoLevelTable t;
  t.add_prefix(kNoVlan, 2, -1, -1, 10);
  t.add_prefix(kNoVlan, 2, 1, -1, 11);
  t.add_suffix(kNoVlan, 0, 99);

  EXPECT_EQ(t.lookup(HostAddr{2, 1, 0}, kNoVlan), 11);  // longest prefix
  EXPECT_EQ(t.lookup(HostAddr{2, 0, 0}, kNoVlan), 10);
  EXPECT_EQ(t.lookup(HostAddr{3, 0, 0}, kNoVlan), 99);  // suffix fallback
  EXPECT_EQ(t.lookup(HostAddr{3, 0, 1}, kNoVlan), std::nullopt);
}

TEST(TwoLevelTable, VlanGatingAndRequireTagMatch) {
  TwoLevelTable t;
  t.add_suffix(kNoVlan, 0, 1);  // in-bound style (untagged)
  t.add_suffix(2, 0, 7);        // out-bound style, VLAN 2

  // Untagged lookup never sees tagged entries.
  EXPECT_EQ(t.lookup(HostAddr{0, 0, 0}, kNoVlan), 1);
  // Tagged lookup with require_tag_match skips untagged entries.
  EXPECT_EQ(t.lookup(HostAddr{0, 0, 0}, 2, /*require_tag_match=*/true), 7);
  EXPECT_EQ(t.lookup(HostAddr{0, 0, 0}, 3, /*require_tag_match=*/true),
            std::nullopt);
}

TEST(TwoLevelTable, RejectsDegenerateEntries) {
  TwoLevelTable t;
  EXPECT_THROW(t.add_prefix(kNoVlan, -1, -1, -1, 1), sbk::ContractViolation);
  EXPECT_THROW(t.add_suffix(kNoVlan, 0, -1), sbk::ContractViolation);
}

TEST(TableBuilder, SizesMatchPaperFormulas) {
  for (int k : {4, 8, 16, 48, 64}) {
    TwoLevelTableBuilder b(k);
    const int half = k / 2;
    EXPECT_EQ(b.edge_table(0, 0).size(), static_cast<std::size_t>(k));
    EXPECT_EQ(b.agg_table(0).size(), static_cast<std::size_t>(k));
    EXPECT_EQ(b.core_table().size(), static_cast<std::size_t>(k));
    // Combined edge table: k/2 in-bound + k^2/4 out-bound (§4.3).
    TwoLevelTable combined = b.combined_edge_table(0);
    EXPECT_EQ(combined.size(), static_cast<std::size_t>(half + half * half));
  }
}

TEST(TableBuilder, CombinedTableAtK64Holds1056Entries) {
  // The paper's headline TCAM number: 1056 entries for k = 64.
  TwoLevelTableBuilder b(64);
  EXPECT_EQ(b.combined_edge_table(0).size(), 1056u);
}

TEST(TableBuilder, CombinedEqualsMergeOfEdgeTables) {
  TwoLevelTableBuilder b(8);
  TwoLevelTable merged;
  for (int e = 0; e < 4; ++e) merged.merge(b.edge_table(2, e));
  TwoLevelTable combined = b.combined_edge_table(2);
  EXPECT_EQ(merged.size(), combined.size());
  // Same lookups on a sample of keys.
  for (int vlan = 0; vlan < 4; ++vlan) {
    for (int h = 0; h < 4; ++h) {
      EXPECT_EQ(merged.lookup(HostAddr{0, 0, h}, vlan, true),
                combined.lookup(HostAddr{0, 0, h}, vlan, true));
      EXPECT_EQ(merged.lookup(HostAddr{0, 0, h}, kNoVlan),
                combined.lookup(HostAddr{0, 0, h}, kNoVlan));
    }
  }
}

class ForwardingAllPairs : public ::testing::TestWithParam<int> {};

TEST_P(ForwardingAllPairs, EveryHostPairDeliversWithCorrectHopCount) {
  const int k = GetParam();
  const int half = k / 2;
  ImpersonationStore store(k, /*n_backups=*/1);
  ForwardingSim sim(store);
  for (int sp = 0; sp < k; ++sp) {
    for (int se = 0; se < half; ++se) {
      for (int sh = 0; sh < half; ++sh) {
        for (int dp = 0; dp < k; ++dp) {
          for (int de = 0; de < half; ++de) {
            for (int dh = 0; dh < half; ++dh) {
              HostAddr src{sp, se, sh};
              HostAddr dst{dp, de, dh};
              if (src == dst) continue;
              ForwardingTrace t = sim.walk(src, dst);
              ASSERT_TRUE(t.delivered)
                  << sp << ',' << se << ',' << sh << " -> " << dp << ','
                  << de << ',' << dh;
              if (sp != dp) {
                EXPECT_EQ(t.switch_hops(), 5u);
              } else {
                // Intra-pod traffic turns around at an agg; intra-edge
                // traffic also bounces via an agg in this model (§4.3
                // keeps only k/2 shared in-bound entries).
                EXPECT_EQ(t.switch_hops(), 3u);
              }
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, ForwardingAllPairs, ::testing::Values(4, 6));

TEST(Impersonation, FailoverPreservesForwardingExactly) {
  const int k = 6;
  const int half = k / 2;
  ImpersonationStore store(k, 2);
  ForwardingSim sim(store);

  // Record baseline traces for a sample of pairs.
  std::vector<std::pair<HostAddr, HostAddr>> pairs;
  for (int i = 0; i < half; ++i) {
    pairs.push_back({{0, i, 0}, {3, (i + 1) % half, 2}});
    pairs.push_back({{2, 0, i}, {2, 2, (i + 2) % half}});
    pairs.push_back({{5, i, i}, {1, 0, 0}});
  }
  std::vector<std::vector<SwitchPosition>> baseline;
  for (auto& [s, d] : pairs) {
    ForwardingTrace t = sim.walk(s, d);
    ASSERT_TRUE(t.delivered);
    baseline.push_back(t.positions);
  }

  // Fail over a mix of positions.
  ASSERT_TRUE(store.fail_over({Layer::kEdge, 0, 1}).has_value());
  ASSERT_TRUE(store.fail_over({Layer::kAgg, 3, 0}).has_value());
  ASSERT_TRUE(store.fail_over({Layer::kCore, -1, 4}).has_value());
  ASSERT_TRUE(store.fail_over({Layer::kEdge, 2, 2}).has_value());

  // Forwarding must be unchanged at the position level: same positions,
  // same hop counts, delivery everywhere.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ForwardingTrace t = sim.walk(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(t.delivered);
    EXPECT_EQ(t.positions, baseline[i]) << "pair " << i;
  }
}

TEST(Impersonation, ReplacementDeviceServesPositionWithGroupTable) {
  ImpersonationStore store(8, 1);
  SwitchPosition pos{Layer::kEdge, 2, 1};
  DeviceUid before = store.device_at(pos);
  auto failover = store.fail_over(pos);
  ASSERT_TRUE(failover.has_value());
  EXPECT_EQ(failover->failed, before);
  DeviceUid after = store.device_at(pos);
  EXPECT_NE(after, before);
  // Both devices hold the *same* combined table object semantics.
  EXPECT_EQ(store.table_of(before).size(), store.table_of(after).size());
  EXPECT_EQ(store.layer_of(after), Layer::kEdge);
}

TEST(Impersonation, PoolExhaustionAndReturn) {
  ImpersonationStore store(4, 1);
  SwitchPosition a{Layer::kAgg, 0, 0};
  SwitchPosition b{Layer::kAgg, 0, 1};
  auto f1 = store.fail_over(a);
  ASSERT_TRUE(f1.has_value());
  EXPECT_FALSE(store.fail_over(b).has_value());  // pool exhausted (n=1)
  store.return_to_pool(f1->failed);
  EXPECT_TRUE(store.fail_over(b).has_value());   // repaired device reused
}

TEST(Impersonation, CoreGroupFailoverUsesOwnGroupSpares) {
  const int k = 8;
  ImpersonationStore store(k, 1);
  // Cores 1, 5, 9, 13 are group 1 (k/2 = 4).
  auto spares_before = store.spares(Layer::kCore, 1);
  ASSERT_EQ(spares_before.size(), 1u);
  auto f = store.fail_over({Layer::kCore, -1, 9});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->replacement, spares_before[0]);
  EXPECT_TRUE(store.spares(Layer::kCore, 1).empty());
  EXPECT_EQ(store.spares(Layer::kCore, 0).size(), 1u);  // untouched
}

TEST(Impersonation, RandomizedFailoverChurnKeepsAllPairsDelivering) {
  const int k = 4;
  const int half = k / 2;
  ImpersonationStore store(k, 2);
  ForwardingSim sim(store);
  sbk::Rng rng(2024);

  std::vector<SwitchPosition> positions;
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      positions.push_back({Layer::kEdge, pod, j});
      positions.push_back({Layer::kAgg, pod, j});
    }
  }
  for (int c = 0; c < half * half; ++c) {
    positions.push_back({Layer::kCore, -1, c});
  }

  std::vector<DeviceUid> replaced;
  for (int round = 0; round < 40; ++round) {
    if (!replaced.empty() && rng.bernoulli(0.5)) {
      std::size_t i = rng.uniform_index(replaced.size());
      store.return_to_pool(replaced[i]);
      replaced.erase(replaced.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      auto pos = positions[rng.uniform_index(positions.size())];
      if (auto f = store.fail_over(pos)) replaced.push_back(f->failed);
    }
    // Spot-check delivery across pods each round.
    ForwardingTrace t = sim.walk(HostAddr{0, 0, 0}, HostAddr{3, 1, 1});
    ASSERT_TRUE(t.delivered) << "round " << round;
    ForwardingTrace u = sim.walk(HostAddr{2, 1, 0}, HostAddr{2, 0, 1});
    ASSERT_TRUE(u.delivered) << "round " << round;
  }
}

}  // namespace
}  // namespace sbk::routing
