#include "sharebackup/leaf_spine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::sharebackup {

namespace {
std::string ls_cs_name(int layer, int a, int b, int m) {
  return "LCS[" + std::to_string(layer) + ',' + std::to_string(a) + ',' +
         std::to_string(b) + ',' + std::to_string(m) + ']';
}
}  // namespace

LeafSpineFabric::LeafSpineFabric(const LeafSpineParams& params)
    : params_(params) {
  const int L = params_.leaves;
  const int S = params_.spines;
  const int H = params_.hosts_per_leaf;
  const int G = params_.group_size;
  const int n = params_.backups_per_group;
  SBK_EXPECTS_MSG(L > 0 && S > 0 && H > 0 && G > 0 && n >= 0,
                  "leaf-spine parameters must be positive");
  SBK_EXPECTS_MSG(L % G == 0 && S % G == 0,
                  "leaves and spines must partition into groups of G");

  // --- packet network: positions ------------------------------------------
  for (int i = 0; i < L; ++i) {
    leaves_.push_back(net_.add_node(net::NodeKind::kEdgeSwitch,
                                    "LEAF" + std::to_string(i), i / G, i % G));
  }
  for (int i = 0; i < S; ++i) {
    spines_.push_back(net_.add_node(net::NodeKind::kCoreSwitch,
                                    "SPINE" + std::to_string(i), -1, i));
  }
  for (int i = 0; i < L * H; ++i) {
    hosts_.push_back(
        net_.add_node(net::NodeKind::kHost, "LH" + std::to_string(i),
                      (i / H) / G, i));
  }
  for (int i = 0; i < L * H; ++i) {
    net_.add_link(hosts_[static_cast<std::size_t>(i)],
                  leaves_[static_cast<std::size_t>(i / H)],
                  params_.host_link_capacity);
  }
  for (int l = 0; l < L; ++l) {
    for (int s = 0; s < S; ++s) {
      net_.add_link(leaves_[static_cast<std::size_t>(l)],
                    spines_[static_cast<std::size_t>(s)],
                    params_.fabric_link_capacity);
    }
  }

  // --- devices ----------------------------------------------------------------
  auto build_groups = [&](LsTier tier, int count, const char* tag,
                          std::vector<Group>& out) {
    for (int g = 0; g < count / G; ++g) {
      Group grp;
      grp.tier = tier;
      grp.id = g;
      for (int s = 0; s < G; ++s) {
        grp.assigned.push_back(new_device(
            std::string("LS-") + tag + '-' + std::to_string(g) + '-' +
            std::to_string(s)));
      }
      for (int b = 0; b < n; ++b) {
        DeviceUid uid = new_device(std::string("LS-BS-") + tag + '-' +
                                   std::to_string(g) + '-' +
                                   std::to_string(b));
        device_state_[uid] = DeviceState::kSpare;
        grp.spare.push_back(uid);
      }
      out.push_back(std::move(grp));
    }
  };
  build_groups(LsTier::kLeaf, L, "leaf", leaf_groups_);
  build_groups(LsTier::kSpine, S, "spine", spine_groups_);
  for (int i = 0; i < L * H; ++i) {
    host_device_.push_back(new_device("LSHOST-" + std::to_string(i)));
  }

  // --- circuit switches ----------------------------------------------------
  // Layer 1: per leaf group, H switches (host slot m of each member).
  const int leaf_grp_count = L / G;
  const int spine_grp_count = S / G;
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    for (int m = 0; m < H; ++m) {
      switches_.emplace_back(ls_cs_name(1, lg, 0, m), G, n, n);
    }
  }
  // Layer 2: per (leaf group, spine group) pair, G switches.
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    for (int sg = 0; sg < spine_grp_count; ++sg) {
      for (int m = 0; m < G; ++m) {
        switches_.emplace_back(ls_cs_name(2, lg, sg, m), G, n, n);
      }
    }
  }

  // Interface indexing: leaf device — 0..H-1 down, H..H+S-1 up
  // (uplink index = sg*G + m); spine device — one interface per leaf
  // group column it meets, index = lg*G + m.
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    Group& grp = leaf_groups_[static_cast<std::size_t>(lg)];
    for (int m = 0; m < H; ++m) {
      std::size_t cs = cs_layer1(lg, m);
      for (int a = 0; a < G; ++a) {
        int leaf_index = lg * G + a;
        int host_index = leaf_index * H + m;
        attach(cs, PortClass::kSouthRegular, a,
               host_device_[static_cast<std::size_t>(host_index)], 0);
        attach(cs, PortClass::kNorthRegular, a,
               grp.assigned[static_cast<std::size_t>(a)], m);
      }
      for (int b = 0; b < n; ++b) {
        attach(cs, PortClass::kNorthBackup, b,
               grp.spare[static_cast<std::size_t>(b)], m);
      }
    }
  }
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    Group& lgrp = leaf_groups_[static_cast<std::size_t>(lg)];
    for (int sg = 0; sg < spine_grp_count; ++sg) {
      Group& sgrp = spine_groups_[static_cast<std::size_t>(sg)];
      for (int m = 0; m < G; ++m) {
        std::size_t cs = cs_layer2(lg, sg, m);
        for (int a = 0; a < G; ++a) {
          attach(cs, PortClass::kSouthRegular, a,
                 lgrp.assigned[static_cast<std::size_t>(a)],
                 H + sg * G + m);
        }
        for (int b = 0; b < n; ++b) {
          attach(cs, PortClass::kSouthBackup, b,
                 lgrp.spare[static_cast<std::size_t>(b)], H + sg * G + m);
        }
        for (int a = 0; a < G; ++a) {
          attach(cs, PortClass::kNorthRegular, a,
                 sgrp.assigned[static_cast<std::size_t>(a)], lg * G + m);
        }
        for (int b = 0; b < n; ++b) {
          attach(cs, PortClass::kNorthBackup, b,
                 sgrp.spare[static_cast<std::size_t>(b)], lg * G + m);
        }
      }
    }
  }

  // Side rings: layer-1 rows per leaf group; layer-2 rows per group pair.
  auto chain = [&](std::size_t base, int count) {
    if (count < 2) return;
    for (int m = 0; m < count; ++m) {
      CircuitSwitch& a = switches_[base + static_cast<std::size_t>(m)];
      CircuitSwitch& b =
          switches_[base + static_cast<std::size_t>((m + 1) % count)];
      int right = a.port(PortClass::kSideRight);
      int left = b.port(PortClass::kSideLeft);
      a.attach_side(right,
                    static_cast<int>(base + static_cast<std::size_t>(
                                                (m + 1) % count)),
                    left);
      b.attach_side(left, static_cast<int>(base + static_cast<std::size_t>(m)),
                    right);
    }
  };
  for (int lg = 0; lg < leaf_grp_count; ++lg) chain(cs_layer1(lg, 0), H);
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    for (int sg = 0; sg < spine_grp_count; ++sg) {
      chain(cs_layer2(lg, sg, 0), G);
    }
  }

  // --- default matchings ------------------------------------------------------
  for (int lg = 0; lg < leaf_grp_count; ++lg) {
    for (int m = 0; m < H; ++m) {
      CircuitSwitch& sw = switches_[cs_layer1(lg, m)];
      for (int a = 0; a < G; ++a) {
        sw.connect(sw.port(PortClass::kSouthRegular, a),
                   sw.port(PortClass::kNorthRegular, a));
      }
    }
    for (int sg = 0; sg < spine_grp_count; ++sg) {
      for (int m = 0; m < G; ++m) {
        CircuitSwitch& sw = switches_[cs_layer2(lg, sg, m)];
        for (int a = 0; a < G; ++a) {
          sw.connect(sw.port(PortClass::kSouthRegular, a),
                     sw.port(PortClass::kNorthRegular, (a + m) % G));
        }
      }
    }
  }
  check_invariants();
}

DeviceUid LeafSpineFabric::new_device(std::string name) {
  DeviceUid uid = static_cast<DeviceUid>(device_name_.size());
  device_name_.push_back(std::move(name));
  device_state_.push_back(DeviceState::kInService);
  device_ports_.emplace_back();
  return uid;
}

void LeafSpineFabric::attach(std::size_t cs, PortClass cls, int slot,
                             DeviceUid dev, int iface) {
  CircuitSwitch& sw = switches_[cs];
  int port = sw.port(cls, slot);
  sw.attach_device(port, dev, iface);
  device_ports_[dev].push_back(DevicePort{cs, port});
}

std::size_t LeafSpineFabric::cs_layer1(int leaf_group, int m) const {
  SBK_EXPECTS(leaf_group >= 0 &&
              leaf_group < params_.leaves / params_.group_size);
  SBK_EXPECTS(m >= 0 && m < params_.hosts_per_leaf);
  return static_cast<std::size_t>(leaf_group) * params_.hosts_per_leaf + m;
}

std::size_t LeafSpineFabric::cs_layer2(int leaf_group, int spine_group,
                                       int m) const {
  const int leaf_grp_count = params_.leaves / params_.group_size;
  const int spine_grp_count = params_.spines / params_.group_size;
  SBK_EXPECTS(leaf_group >= 0 && leaf_group < leaf_grp_count);
  SBK_EXPECTS(spine_group >= 0 && spine_group < spine_grp_count);
  SBK_EXPECTS(m >= 0 && m < params_.group_size);
  std::size_t layer1 = static_cast<std::size_t>(leaf_grp_count) *
                       params_.hosts_per_leaf;
  return layer1 +
         (static_cast<std::size_t>(leaf_group) * spine_grp_count +
          spine_group) *
             params_.group_size +
         m;
}

net::NodeId LeafSpineFabric::host(int i) const {
  SBK_EXPECTS(i >= 0 && i < host_count());
  return hosts_[static_cast<std::size_t>(i)];
}

net::NodeId LeafSpineFabric::leaf(int i) const {
  SBK_EXPECTS(i >= 0 && i < params_.leaves);
  return leaves_[static_cast<std::size_t>(i)];
}

net::NodeId LeafSpineFabric::spine(int i) const {
  SBK_EXPECTS(i >= 0 && i < params_.spines);
  return spines_[static_cast<std::size_t>(i)];
}

net::NodeId LeafSpineFabric::node_at(LsPosition pos) const {
  return pos.tier == LsTier::kLeaf ? leaf(pos.index) : spine(pos.index);
}

int LeafSpineFabric::group_of(LsPosition pos) const {
  return pos.index / params_.group_size;
}

LeafSpineFabric::Group& LeafSpineFabric::group(LsTier tier, int id) {
  auto& groups = tier == LsTier::kLeaf ? leaf_groups_ : spine_groups_;
  SBK_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < groups.size());
  return groups[static_cast<std::size_t>(id)];
}

const LeafSpineFabric::Group& LeafSpineFabric::group(LsTier tier,
                                                     int id) const {
  return const_cast<LeafSpineFabric*>(this)->group(tier, id);
}

DeviceUid LeafSpineFabric::device_at(LsPosition pos) const {
  const Group& g = group(pos.tier, group_of(pos));
  return g.assigned[static_cast<std::size_t>(pos.index % params_.group_size)];
}

DeviceState LeafSpineFabric::device_state(DeviceUid uid) const {
  SBK_EXPECTS(uid < device_state_.size());
  return device_state_[uid];
}

std::vector<DeviceUid> LeafSpineFabric::spares(LsTier tier, int grp) const {
  return group(tier, grp).spare;
}

int LeafSpineFabric::device_port_on(DeviceUid uid, std::size_t cs) const {
  for (const DevicePort& dp : device_ports_[uid]) {
    if (dp.cs == cs) return dp.port;
  }
  SBK_EXPECTS_MSG(false, "device is not cabled to that circuit switch");
  return -1;
}

std::optional<LeafSpineFabric::FailoverReport> LeafSpineFabric::fail_over(
    LsPosition pos) {
  Group& g = group(pos.tier, group_of(pos));
  if (g.spare.empty()) return std::nullopt;
  std::size_t slot = static_cast<std::size_t>(pos.index % params_.group_size);
  DeviceUid failed = g.assigned[slot];
  DeviceUid spare = g.spare.front();
  g.spare.erase(g.spare.begin());

  FailoverReport report;
  report.position = pos;
  report.failed_device = failed;
  report.replacement = spare;
  for (const DevicePort& dp : device_ports_[failed]) {
    CircuitSwitch& sw = switches_[dp.cs];
    std::optional<int> peer = sw.peer(dp.port);
    if (!peer.has_value()) continue;
    int spare_port = device_port_on(spare, dp.cs);
    SBK_ASSERT(!sw.is_matched(spare_port));
    sw.disconnect(dp.port);
    sw.connect(spare_port, *peer);
    ++report.circuit_switches_touched;
  }
  report.reconfiguration_latency =
      reconfiguration_latency(params_.technology);
  g.assigned[slot] = spare;
  g.out.push_back(failed);
  device_state_[failed] = DeviceState::kOut;
  device_state_[spare] = DeviceState::kInService;
  net_.restore_node(node_at(pos));
  return report;
}

void LeafSpineFabric::return_to_pool(DeviceUid uid) {
  SBK_EXPECTS(uid < device_state_.size());
  SBK_EXPECTS(device_state_[uid] == DeviceState::kOut);
  auto try_groups = [&](std::vector<Group>& groups) {
    for (Group& g : groups) {
      auto it = std::find(g.out.begin(), g.out.end(), uid);
      if (it != g.out.end()) {
        g.out.erase(it);
        g.spare.push_back(uid);
        device_state_[uid] = DeviceState::kSpare;
        return true;
      }
    }
    return false;
  };
  bool returned = try_groups(leaf_groups_) || try_groups(spine_groups_);
  SBK_ENSURES(returned);
}

const CircuitSwitch& LeafSpineFabric::circuit_switch(std::size_t idx) const {
  SBK_EXPECTS(idx < switches_.size());
  return switches_[idx];
}

std::vector<std::pair<net::NodeId, net::NodeId>>
LeafSpineFabric::realized_adjacency() const {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  auto node_of_device = [&](DeviceUid uid) -> std::optional<net::NodeId> {
    if (!host_device_.empty() && uid >= host_device_.front()) {
      return hosts_[uid - host_device_.front()];
    }
    if (device_state_[uid] != DeviceState::kInService) return std::nullopt;
    for (const auto& groups : {&leaf_groups_, &spine_groups_}) {
      for (const Group& g : *groups) {
        for (std::size_t slot = 0; slot < g.assigned.size(); ++slot) {
          if (g.assigned[slot] != uid) continue;
          int index = g.id * params_.group_size + static_cast<int>(slot);
          return g.tier == LsTier::kLeaf ? leaf(index) : spine(index);
        }
      }
    }
    return std::nullopt;
  };
  for (const CircuitSwitch& sw : switches_) {
    for (int p = 0; p < sw.port_count(); ++p) {
      std::optional<int> q = sw.peer(p);
      if (!q.has_value() || *q < p) continue;
      const Attachment& pa = sw.attachment(p);
      const Attachment& qa = sw.attachment(*q);
      if (pa.kind != Attachment::Kind::kDeviceInterface ||
          qa.kind != Attachment::Kind::kDeviceInterface) {
        continue;
      }
      auto a = node_of_device(pa.device);
      auto b = node_of_device(qa.device);
      if (a.has_value() && b.has_value()) out.emplace_back(*a, *b);
    }
  }
  return out;
}

void LeafSpineFabric::check_invariants() const {
  for (const CircuitSwitch& sw : switches_) {
    SBK_ENSURES(sw.matching_is_consistent());
  }
  auto check = [&](const std::vector<Group>& groups) {
    for (const Group& g : groups) {
      SBK_ENSURES(g.assigned.size() ==
                  static_cast<std::size_t>(params_.group_size));
      for (DeviceUid uid : g.assigned) {
        SBK_ENSURES(device_state_[uid] == DeviceState::kInService);
      }
      for (DeviceUid uid : g.spare) {
        SBK_ENSURES(device_state_[uid] == DeviceState::kSpare);
        for (const DevicePort& dp : device_ports_[uid]) {
          SBK_ENSURES(!switches_[dp.cs].is_matched(dp.port));
        }
      }
      SBK_ENSURES(g.spare.size() + g.out.size() ==
                  static_cast<std::size_t>(params_.backups_per_group));
    }
  };
  check(leaf_groups_);
  check(spine_groups_);
}

LeafSpineFabric::Census LeafSpineFabric::census() const {
  Census c;
  c.circuit_switches = switches_.size();
  c.failure_groups = leaf_groups_.size() + spine_groups_.size();
  c.backup_switches =
      c.failure_groups * static_cast<std::size_t>(params_.backups_per_group);
  return c;
}

}  // namespace sbk::sharebackup
