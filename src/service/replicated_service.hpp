// Live controller-cluster failover inside the always-on service
// (ROADMAP item 2, paper §5.1): the service drives a small cluster of
// Controller replicas instead of exactly one. Failure reports fan out
// to every live member; only the elected primary's dispatch touches the
// shared Fabric. When the primary dies mid-stream the service performs
// a deterministic state handoff and keeps going.
//
// Architecture (delta over ControllerService — see its header for the
// watermark/ingress machinery, which is inherited unchanged):
//
//     IngressQueue batch ──► on_batch_begin(start)
//                              │  cluster sim run_until(start):
//                              │  heartbeats, miss counting, elections
//                              │  complete *before* the batch; a
//                              │  finished election seats the new
//                              │  primary, hands off in-flight state,
//                              │  and replays the headless buffer
//                              ▼
//                            per-message dispatch
//                              │  kControllerCrash/Repair: applied to
//                              │  the cluster at dispatch time
//                              │  reports/ops: term guard → primary,
//                              │  or headless buffer
//                              ▼
//                            acting primary's Controller
//
// Determinism: the cluster runs on a private discrete-event queue in
// *virtual* time, advanced only from the service loop (batch begins and
// the final sweep). Crash/repair events are ServiceMessages, so they
// occupy a position in the same total (at, seq) admission order as the
// reports; every election, handoff, buffer replay and headless window
// is therefore a pure function of the message schedule, and
// fingerprints stay bit-identical across inline/1/4/8 producer threads.
//
// Failover protocol:
//   * Term guard — a (member, term) lease is captured at each batch
//     start; every dispatch validates it. A crash earlier in the same
//     batch invalidates the lease, and subsequent messages are rejected
//     (stale_rejections) and buffered rather than applied by a dead
//     primary.
//   * Headless buffer — reports, sick probes and operator commands that
//     arrive with no usable primary are buffered in admission order
//     (this lifts ControlPlane's election buffer into the IngressQueue
//     path). Healthy probe results are pure telemetry and are counted
//     immediately. The buffer replays, in order, the moment a primary
//     is seated (election win or a blip-repair of the stale primary).
//   * Handoff — a newly elected primary adopts the dead primary's
//     in-flight state (Controller::adopt_in_flight_from): parked
//     recoveries, queued diagnoses, watchdog window. Reconfiguration
//     commands are idempotent, so a command the dead primary already
//     applied is acked without a second reconfiguration — nothing is
//     acted on twice (asserted per seq).
//   * Replica durability — Controller objects model replicated state
//     machines: a "crash" removes the member from the cluster (it
//     cannot act; its term is stale), and a repaired member resumes
//     from its surviving state. State *transfer* happens only when
//     leadership moves to a different member.
//
// Invariants (asserted here and in the chaos soak): processed ==
// accepted across failovers; no seq dispatched twice; every bounded
// headless window (total-cluster-death windows excluded — they last
// until an operator repair by design) is <= ClusterConfig::
// election_bound(); kind counters + headless_backlog() == processed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "control/controller.hpp"
#include "control/controller_cluster.hpp"
#include "service/controller_service.hpp"
#include "sim/event_queue.hpp"

namespace sbk::service {

struct ReplicatedServiceConfig {
  ServiceConfig service;
  /// Election machinery: member count, heartbeat cadence, miss
  /// threshold, election duration (all in virtual seconds — scale them
  /// with the stream's time_scale).
  control::ClusterConfig cluster;
  /// Per-replica controller configuration.
  control::ControllerConfig controller;
  /// Bounded audit trail per replica (0 = unbounded).
  std::size_t audit_limit = 0;
};

namespace detail {
/// Base-from-member holder: the replicas must exist before the
/// ControllerService base is constructed (it takes the initial acting
/// controller by reference).
struct ReplicaBank {
  ReplicaBank(sharebackup::Fabric& fabric,
              const ReplicatedServiceConfig& config);
  std::vector<std::unique_ptr<control::Controller>> replicas;
};
}  // namespace detail

class ReplicatedControllerService : private detail::ReplicaBank,
                                    public ControllerService {
 public:
  explicit ReplicatedControllerService(sharebackup::Fabric& fabric,
                                       ReplicatedServiceConfig config = {});

  [[nodiscard]] const control::ControllerCluster& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas.size();
  }
  [[nodiscard]] control::Controller& replica(std::size_t i) {
    return *replicas[i];
  }
  [[nodiscard]] const control::Controller& replica(std::size_t i) const {
    return *replicas[i];
  }
  /// Cluster member currently acting as primary-facing controller (the
  /// last seated leader; survives until the next handoff even if dead).
  [[nodiscard]] std::size_t acting_member() const noexcept {
    return acting_;
  }
  /// Reports/ops still waiting in the headless buffer (nonzero after a
  /// drain only when the whole cluster died and nobody repaired it).
  [[nodiscard]] std::size_t headless_backlog() const noexcept {
    return buffer_.size();
  }
  /// Failure-relevant messages observed by member `i` while it was
  /// alive (the fan-out a fresh primary's state is reconstructed from).
  [[nodiscard]] std::uint64_t reports_seen(std::size_t i) const {
    return reports_seen_[i];
  }
  /// Per-window headless bound the soak asserts against.
  [[nodiscard]] Seconds election_bound() const noexcept {
    return rconfig_.cluster.election_bound();
  }

 protected:
  void on_batch_begin(Seconds start) override;
  void handle_message(const ServiceMessage& msg, Seconds start) override;
  void final_sweep() override;
  void publish_metrics() override;
  void fill_health(obs::slo::HealthSnapshot& snap) const override;

 private:
  struct Lease {
    std::size_t member = 0;
    std::size_t term = 0;
  };

  void seat_primary(std::size_t member, std::size_t term, Seconds at);
  void apply_crash(const ServiceMessage& msg, Seconds at);
  void apply_repair(const ServiceMessage& msg, Seconds at);
  void dispatch_to_primary(const ServiceMessage& msg, Seconds start);
  void replay_buffer(Seconds at);
  void open_headless_window(Seconds at);
  void close_headless_window(Seconds at);
  [[nodiscard]] bool lease_valid() const;
  [[nodiscard]] std::optional<Lease> capture_lease() const;
  [[nodiscard]] std::optional<std::size_t> highest_live_member() const;
  [[nodiscard]] bool any_member_alive() const;

  ReplicatedServiceConfig rconfig_;
  sim::EventQueue sim_;
  control::ControllerCluster cluster_;
  std::size_t acting_;
  std::optional<Lease> lease_;
  std::vector<ServiceMessage> buffer_;
  std::vector<std::uint64_t> reports_seen_;
  /// Exactly-once guard: seq -> already dispatched to a controller.
  std::vector<bool> acted_;
  std::optional<Seconds> headless_since_;
  bool window_total_death_ = false;
};

}  // namespace sbk::service
