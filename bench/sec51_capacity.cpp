// Experiment E7 — §5.1: capacity to handle failures.
//
//   * Backup ratios n/(k/2) vs the ~0.01% switch failure rate;
//   * Monte-Carlo estimate of how often a failure group sees more than n
//     concurrent switch failures, with the paper's reliability numbers:
//     99.99% device availability, failures lasting a few minutes;
//   * link-failure capacity: n independent link failures per group
//     (up to kn links rooted at n switches), demonstrated on the fabric.
//
// The Monte-Carlo cells run through sweep::SweepRunner: each cell's
// simulated horizon is split into independent shards with their own
// derived RNG streams, so the years of simulated time spread across
// cores while staying bit-identical to --threads=1 / SBK_THREADS=1.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "control/controller.hpp"
#include "cost/cost_model.hpp"
#include "sharebackup/fabric.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

using namespace sbk;

namespace {

/// Simulates one failure group of `members` switches for `horizon`
/// seconds: each switch fails independently (exponential inter-failure
/// times tuned so availability = 99.99% with MTTR = 5 min) and repairs
/// after MTTR. Returns the fraction of time more than n members are down
/// simultaneously, plus the count of overflow episodes.
struct GroupSim {
  double overflow_time = 0.0;
  std::size_t overflow_episodes = 0;
  std::size_t failures = 0;

  bool operator==(const GroupSim&) const = default;

  void merge(const GroupSim& other) {
    overflow_time += other.overflow_time;
    overflow_episodes += other.overflow_episodes;
    failures += other.failures;
  }
};

GroupSim simulate_group(int members, int n, Seconds horizon, Rng& rng) {
  const Seconds mttr = minutes(5);
  const double unavailability = 1e-4;                 // 99.99% availability
  const Seconds mtbf = mttr / unavailability - mttr;  // ~833 hours

  // Event-free simulation: draw each member's alternating up/down
  // timeline and sweep the merged change points.
  std::vector<std::pair<Seconds, int>> changes;  // (time, +1 down / -1 up)
  for (int m = 0; m < members; ++m) {
    Seconds t = 0.0;
    while (t < horizon) {
      t += rng.exponential(1.0 / mtbf);
      if (t >= horizon) break;
      changes.push_back({t, +1});
      Seconds up = std::min(t + mttr, horizon);
      changes.push_back({up, -1});
      t = up;
    }
  }
  std::sort(changes.begin(), changes.end());
  GroupSim out;
  int down = 0;
  Seconds last = 0.0;
  bool in_overflow = false;
  for (auto [t, delta] : changes) {
    if (down > n) out.overflow_time += t - last;
    down += delta;
    if (delta > 0) ++out.failures;
    if (down > n && !in_overflow) {
      in_overflow = true;
      ++out.overflow_episodes;
    }
    if (down <= n) in_overflow = false;
    last = t;
  }
  return out;
}

struct Cell {
  int k;
  int n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto years =
      static_cast<double>(bench::arg_int(argc, argv, "years", 25));
  const auto threads =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "threads", 0));
  bench::banner("E7 / §5.1 — capacity to handle failures",
                "Backup ratios; Monte-Carlo group-overflow probability "
                "(99.99% availability, 5-minute repairs); kn link capacity.");

  std::printf("Backup ratios (vs ~0.01%% switch failure rate):\n");
  std::printf("%-5s %-4s %12s %14s\n", "k", "n", "ratio", "vs 0.01%");
  for (auto [k, n] : {std::pair{16, 1}, {48, 1}, {48, 4}, {58, 1}, {48, 6}}) {
    double ratio = cost::backup_ratio(k, n);
    std::printf("%-5d %-4d %11.2f%% %13.0fx\n", k, n, ratio * 100,
                ratio / 1e-4);
    bench::csv_row({"ratio", std::to_string(k), std::to_string(n),
                    bench::fmt(ratio)});
  }

  std::printf("\nMonte-Carlo: fraction of time a k/2-member failure group "
              "has more than n\nconcurrent switch failures (simulated %.0f "
              "years per cell):\n", years);
  std::printf("%-5s %-8s %14s %16s %12s\n", "k", "n", "P[overflow]",
              "episodes/year", "fails/year");

  // Sweep layout: each (k, n) cell is sharded into independent slices of
  // the simulated horizon; scenario i covers shard i % kShards of cell
  // i / kShards. Sharding trades a negligible edge effect (an outage
  // spanning a shard boundary is counted once per shard) for even
  // per-task granularity across cores.
  const std::vector<Cell> cells{{16, 0}, {16, 1}, {16, 2},
                                {48, 0}, {48, 1}, {48, 2}};
  constexpr std::size_t kShards = 8;
  const Seconds horizon = years * 365.25 * 24 * 3600;
  const Seconds shard_horizon = horizon / static_cast<double>(kShards);

  auto scenario_fn = [&](const sweep::ScenarioSpec& spec) {
    const Cell& cell = cells[spec.index / kShards];
    Rng rng = spec.rng();
    return simulate_group(cell.k / 2, cell.n, shard_horizon, rng);
  };

  sweep::SweepRunner runner({.master_seed = 31, .threads = threads});
  auto t0 = std::chrono::steady_clock::now();
  auto shards = runner.run(cells.size() * kShards, scenario_fn);
  double parallel_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (std::size_t c = 0; c < cells.size(); ++c) {
    GroupSim g;
    for (std::size_t s = 0; s < kShards; ++s) g.merge(shards[c * kShards + s]);
    std::printf("%-5d %-8d %14.3g %16.4f %12.1f\n", cells[c].k, cells[c].n,
                g.overflow_time / horizon,
                static_cast<double>(g.overflow_episodes) / years,
                static_cast<double>(g.failures) / years);
    bench::csv_row({"overflow", std::to_string(cells[c].k),
                    std::to_string(cells[c].n),
                    bench::fmt(g.overflow_time / horizon, 6),
                    bench::fmt(static_cast<double>(g.overflow_episodes) /
                               years)});
  }
  std::printf("(n=1 already pushes group overflow to ~zero: concurrent "
              "same-group failures\nwithin a 5-minute repair window are "
              "vanishingly rare.)\n");

  if (runner.threads() > 1) {
    sweep::SweepRunner reference({.master_seed = 31, .threads = 1});
    t0 = std::chrono::steady_clock::now();
    auto ref_shards = reference.run(cells.size() * kShards, scenario_fn);
    double serial_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("sweep: %zu shards, threads=%zu: %.2fs; threads=1: %.2fs; "
                "speedup %.2fx; parallel==serial: %s\n",
                shards.size(), runner.threads(), parallel_s, serial_s,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
                shards == ref_shards ? "yes" : "NO (determinism bug)");
    bench::csv_row({"sweep-speedup", std::to_string(runner.threads()),
                    bench::fmt(serial_s), bench::fmt(parallel_s),
                    bench::fmt(parallel_s > 0.0 ? serial_s / parallel_s : 0.0)});
  }

  // --- link-failure capacity on the real fabric -------------------------
  std::printf("\nLink-failure capacity (k=8, n=2): a group absorbs n "
              "independent link\nfailure events; each can root up to k "
              "failed links at one switch:\n");
  sharebackup::FabricParams fp;
  fp.fat_tree.k = 8;
  fp.backups_per_group = 2;
  sharebackup::Fabric fabric(fp);
  control::Controller ctrl(fabric, control::ControllerConfig{});

  // Edge switch (0,0) loses ALL its uplinks at once (k/2 links, one
  // faulty switch): a single backup absorbs the whole event, because the
  // controller re-probes each reported link before consuming backups.
  net::NodeId sick_edge = fabric.fat_tree().edge(0, 0);
  auto edge_dev = fabric.device_at(*fabric.position_of_node(sick_edge));
  std::vector<net::LinkId> sick_links;
  for (int a = 0; a < 4; ++a) {
    net::LinkId l = *fabric.network().find_link(sick_edge,
                                                fabric.fat_tree().agg(0, a));
    fabric.set_interface_health({edge_dev, fabric.cs_of_link(l)}, false);
    fabric.network().fail_link(l);
    sick_links.push_back(l);
  }
  std::size_t recovered_links = 0;
  for (net::LinkId l : sick_links) {
    if (ctrl.on_link_failure(l).recovered) ++recovered_links;
  }
  ctrl.run_pending_diagnosis();
  std::printf("  %zu/4 uplink failures of one sick edge switch recovered; "
              "backups consumed:\n  edge group: %zu, agg group: %zu "
              "(diagnosis returned every healthy agg)\n",
              recovered_links,
              2 - fabric.spares(topo::Layer::kEdge, 0).size(),
              2 - fabric.spares(topo::Layer::kAgg, 0).size());
  bench::csv_row({"link-capacity", std::to_string(recovered_links),
                  std::to_string(2 - fabric.spares(topo::Layer::kEdge, 0).size()),
                  std::to_string(2 - fabric.spares(topo::Layer::kAgg, 0).size())});
  return 0;
}
