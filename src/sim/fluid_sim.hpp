// Event-driven flow-level ("fluid") network simulator with max-min fair
// bandwidth sharing — the evaluation vehicle for the paper's Figure 1
// experiments. Flows are fluid streams pinned to a path; on every
// arrival, completion, or topology change the max-min allocation is
// recomputed and the next event horizon derived.
//
// Failure recovery policies plug in two ways:
//   * the Router decides paths (rerouting baselines);
//   * scheduled actions mutate the Network mid-run (failure injection and
//     ShareBackup's hardware replacement, which restores links so that
//     rerouted == original paths).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "routing/router.hpp"
#include "sim/flow.hpp"
#include "sim/incremental_max_min.hpp"
#include "sim/max_min.hpp"
#include "util/time.hpp"

namespace sbk::sim {

/// How link bandwidth is shared among competing flows.
enum class AllocationModel {
  /// Global max-min fairness by progressive filling: flows reclaim any
  /// bandwidth left over by flows bottlenecked elsewhere. Models ideal
  /// congestion control.
  kMaxMinFair,
  /// Per-link equal share: a flow's rate is min over its links of
  /// capacity / flow-count. Flows do NOT reclaim residual bandwidth —
  /// the standard pessimistic approximation of TCP under static ECMP
  /// hashing, where collisions with bursts cut rates that are never
  /// recovered within a flow's lifetime. This is the model that exposes
  /// the paper's heavy CCT-slowdown tail (§2.2).
  kPerLinkEqualShare,
};

struct SimConfig {
  /// Bytes per second carried by one capacity unit (default: 1 unit =
  /// 1 Gbps = 125 MB/s).
  double unit_bytes_per_second = 125e6;
  AllocationModel allocation = AllocationModel::kMaxMinFair;
  /// When a flow's path dies, ask the router for a new one (rerouting
  /// architectures). If false, flows stall until a topology action brings
  /// their path back (used to model blackholes).
  bool reroute_on_path_failure = true;
  /// Stop simulating at this time; unfinished flows are reported as such.
  Seconds horizon = 1e18;
  /// A flow is complete when its remaining volume drops below this many
  /// bytes (absorbs floating-point drift).
  double completion_epsilon_bytes = 0.5;
  /// Under kMaxMinFair, maintain per-link flow membership between events
  /// and re-solve only the connected component an event dirtied
  /// (IncrementalMaxMin) instead of the whole fabric. Bit-identical to
  /// the full re-solve (property-tested); disable only to benchmark the
  /// monolithic path or to bisect a suspected divergence.
  bool incremental_max_min = true;
};

class FluidSimulator {
 public:
  /// The simulator mutates `net` only through scheduled actions supplied
  /// by the caller; it never fails/repairs elements on its own.
  FluidSimulator(net::Network& net, routing::Router& router, SimConfig cfg);

  /// Registers flows before run(). Flow ids must be unique.
  void add_flows(std::span<const FlowSpec> flows);
  void add_flow(const FlowSpec& flow);

  /// Schedules a topology mutation (failure injection, repair,
  /// ShareBackup failover, ...) at absolute time `when`. After it runs,
  /// active flows with dead paths are rerouted (per config) and stalled
  /// flows retried.
  void at(Seconds when, std::function<void(net::Network&)> action);

  /// Runs to completion (all flows done/stalled and no actions pending,
  /// or the horizon). Returns per-flow results ordered by flow id.
  [[nodiscard]] std::vector<FlowResult> run();

  /// Number of allocation recomputations performed by the last run()
  /// (exposed for the micro-benchmarks). Events that leave the active
  /// demand set, link capacities, and failure state untouched reuse the
  /// previous allocation instead of recomputing (see DESIGN.md).
  [[nodiscard]] std::size_t allocation_rounds() const noexcept {
    return allocation_rounds_;
  }
  /// Events whose allocation was reused because rates_dirty_ stayed
  /// clear (the recompute-skip fast path).
  [[nodiscard]] std::size_t recompute_skips() const noexcept {
    return recompute_skips_;
  }

  /// Counters fluidsim.{events,allocation_rounds,recompute_skips,
  /// reroutes,flows_completed,flows_stalled}, flushed once when run()
  /// finishes. The hot loop keeps plain size_t tallies either way, so an
  /// unattached simulator is byte-for-byte the same code path. Pass
  /// nullptr to detach. The registry must outlive the simulator.
  void attach_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Structured trace events: wall-clock-timed spans around max-min
  /// solves and route computations, instants for topology actions and
  /// reroutes. nullptr (the default) keeps the hot loop to a single
  /// pointer test per event. The recorder must outlive the simulator.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Fixed-cadence time-series sampling, driven from simulation time (the
  /// sampler's cadence boundaries are visited as the run loop crosses
  /// them, so sampling is deterministic). Register probes — e.g. the
  /// active_flow_count/link_utilization accessors below — before run().
  void attach_telemetry(obs::TelemetrySampler* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  // --- telemetry probe accessors (valid mid-run, cheap to call) ---------
  [[nodiscard]] std::size_t active_flow_count() const noexcept {
    return active_.size();
  }
  /// Mean rate (capacity units/s) over active flows; 0 when none.
  [[nodiscard]] double mean_active_rate() const;
  /// Mean / max utilization (allocated rate / capacity, per direction)
  /// over the directed links currently carrying at least one active flow.
  /// Both are 0 when nothing is flowing.
  [[nodiscard]] double link_utilization_mean() const;
  [[nodiscard]] double link_utilization_max() const;

 private:
  struct FlowState {
    FlowSpec spec;
    double remaining_bytes = 0.0;
    net::Path path;
    std::vector<net::DirectedLink> dlinks;
    double rate = 0.0;  // capacity units / second
    Seconds finish = 0.0;
    bool active = false;
    bool stalled = false;
    bool done = false;
    std::size_t reroutes = 0;
    /// Registration in the incremental allocator while active.
    IncrementalMaxMin::FlowSlot alloc_slot = IncrementalMaxMin::kNoSlot;
  };
  struct Action {
    Seconds when;
    std::function<void(net::Network&)> fn;
  };

  void admit(std::size_t idx, Seconds now);
  void try_route(std::size_t idx, Seconds now, bool is_reroute);
  void finish_flow(std::size_t idx, Seconds now);
  void recompute_rates(Seconds now);
  void handle_topology_change(Seconds now);
  void fill_directed_utilization(std::vector<double>& used) const;

  net::Network* net_;
  routing::Router* router_;
  SimConfig cfg_;
  std::vector<FlowState> flows_;
  std::vector<Action> actions_;
  routing::LinkLoads loads_;
  std::vector<std::size_t> active_;
  std::size_t allocation_rounds_ = 0;
  std::size_t recompute_skips_ = 0;
  std::size_t events_processed_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::TelemetrySampler* telemetry_ = nullptr;
  bool ran_ = false;
  /// Set by every event that can change the allocation (arrival,
  /// completion, topology action); cleared after recompute_rates().
  /// While false, the previous rates are provably still valid and
  /// recomputation is skipped.
  bool rates_dirty_ = true;
  [[nodiscard]] bool use_incremental() const noexcept {
    return cfg_.allocation == AllocationModel::kMaxMinFair &&
           cfg_.incremental_max_min;
  }
  MaxMinSolver solver_;        // scratch reused across allocation events
  std::vector<double> rates_;  // scratch: per-active-flow solver output
  IncrementalMaxMin inc_;      // cross-event state (incremental mode)
};

}  // namespace sbk::sim
