// Scenario-sweep engine demo: a Monte-Carlo failure-impact study in the
// style of survivability analyses (thousands of sampled failure states
// per topology), fanned out across cores by sweep::SweepRunner.
//
// Each scenario draws a random set of fabric failures from its own
// deterministic RNG stream (seed derived from (master_seed, index) via
// splitmix64) and measures the fraction of routed flows it touches. The
// demo runs the sweep twice — threads=1 and the configured parallelism —
// and shows that the results are bit-identical while the wall clock
// shrinks with the core count.
//
//   $ ./build/examples/sweep_demo
//   $ SBK_THREADS=4 ./build/examples/sweep_demo
#include <chrono>
#include <cstdio>

#include "routing/ecmp.hpp"
#include "sim/failure_analysis.hpp"
#include "sweep/sweep.hpp"
#include "topo/fat_tree.hpp"
#include "util/stats.hpp"
#include "workload/coflow_gen.hpp"

using namespace sbk;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  // Shared read-only scenario inputs: topology, workload, healthy routes.
  topo::FatTree ft(topo::FatTreeParams{.k = 8, .hosts_per_edge = 1});

  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = 150;
  wp.duration = 60.0;
  Rng workload_rng(1);
  auto flows =
      workload::expand_to_flows(ft, workload::generate_coflows(wp, workload_rng));

  routing::EcmpRouter router(ft);
  auto snapshot = sim::route_snapshot(ft.network(), router, flows);
  std::printf("sweep_demo: %zu flows routed over a k=8 fat-tree\n",
              snapshot.size());

  // One scenario = one sampled failure state: 1-4 fabric link failures
  // plus one switch failure, drawn from the scenario's private stream.
  const std::size_t scenarios = 4000;
  auto scenario = [&](const sweep::ScenarioSpec& spec) {
    Rng rng = spec.rng();
    sim::FailureSet failures =
        sim::random_fabric_link_failures(ft.network(), 1 + spec.index % 4, rng);
    sim::FailureSet switches = sim::random_switch_failures(ft.network(), 1, rng);
    failures.nodes = switches.nodes;
    sim::ImpactResult impact = sim::measure_impact(snapshot, failures);
    return std::vector<double>{impact.flow_fraction()};
  };

  sweep::SweepRunner serial({.master_seed = 42, .threads = 1});
  auto t0 = std::chrono::steady_clock::now();
  Summary reference = serial.run_summary(scenarios, scenario);
  double serial_s = seconds_since(t0);

  sweep::SweepRunner parallel({.master_seed = 42});  // SBK_THREADS / hardware
  t0 = std::chrono::steady_clock::now();
  Summary result = parallel.run_summary(scenarios, scenario);
  double parallel_s = seconds_since(t0);

  std::printf("%zu scenarios: threads=1 %.3fs, threads=%zu %.3fs "
              "(speedup %.2fx)\n",
              scenarios, serial_s, parallel.threads(), parallel_s,
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  std::printf("parallel result bit-identical to serial: %s\n",
              result.samples() == reference.samples() ? "yes" : "NO (bug!)");

  std::printf("\naffected-flow fraction over %zu sampled failure states:\n",
              result.count());
  std::printf("  mean=%.4f  p50=%.4f  p90=%.4f  p99=%.4f  max=%.4f\n",
              result.mean(), result.percentile(50), result.percentile(90),
              result.percentile(99), result.max());
  std::printf("\nempirical CDF (10 points):\n");
  for (const auto& pt : empirical_cdf(result.samples(), 10)) {
    std::printf("  F(%.4f) = %.3f\n", pt.value, pt.fraction);
  }
  return 0;
}
