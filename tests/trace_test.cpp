// Tests for the flight recorder and time-series telemetry: ring-buffer
// overwrite semantics, disabled no-op guarantees, deterministic sweep
// merging, the Perfetto JSON round trip, exact-cadence sampling, and —
// the load-bearing property — bit-identical traced output at any sweep
// thread count (wall-clock fields excluded, as the one declared
// nondeterministic channel).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "faultinject/chaos_soak.hpp"
#include "net/algo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_load.hpp"
#include "routing/router.hpp"
#include "sim/fluid_sim.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::obs {
namespace {

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingOverwritesOldestAndCountsDrops) {
  FlightRecorder rec(/*enabled=*/true, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    rec.instant("t", name, static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, with the two earliest events shed.
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e5");
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  FlightRecorder rec(/*enabled=*/false, /*capacity=*/4);
  rec.instant("t", "a", 1.0);
  rec.complete("t", "b", 1.0, 2.0);
  rec.counter("t", "c", 1.0, 3.0);
  { ScopedSpan span(&rec, "t", "scoped", 1.0); }
  { ScopedSpan span(nullptr, "t", "detached", 1.0); }
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, ScopedSpanRecordsOnScopeExit) {
  FlightRecorder rec;
  {
    ScopedSpan span(&rec, "phase", "solve", 2.0);
    span.set_end(2.5);
    span.set_detail("iter=3");
    EXPECT_EQ(rec.size(), 0u);  // nothing until the scope closes
  }
  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].category, "phase");
  EXPECT_EQ(events[0].name, "solve");
  EXPECT_DOUBLE_EQ(events[0].ts, 2.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.5);
  EXPECT_EQ(events[0].detail, "iter=3");
  EXPECT_GE(events[0].wall_us, 0.0);  // a wall clock was actually read
}

TEST(FlightRecorder, MergeAssignsTracksInScenarioOrder) {
  FlightRecorder a, b, merged;
  a.instant("t", "from_a", 1.0);
  b.instant("t", "from_b", 2.0);
  b.counter("t", "depth", 2.5, 7.0);
  merged.merge(a, 0);
  merged.merge(b, 1);
  std::vector<TraceEvent> events = merged.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].track, 0u);
  EXPECT_EQ(events[0].name, "from_a");
  EXPECT_EQ(events[1].track, 1u);
  EXPECT_EQ(events[2].track, 1u);
  EXPECT_DOUBLE_EQ(events[2].value, 7.0);
}

TEST(FlightRecorder, TraceJsonRoundTripsThroughLoader) {
  FlightRecorder rec;
  rec.instant("control", "degraded", 0.125, "link:E[0,0]-A[0,1]");
  rec.complete("fluidsim", "max_min_solve", 0.25, 0.3125, 17.5,
               "needs \"quotes\", commas");
  rec.counter("fabric", "spare_pool", 0.5, 9.0);

  std::ostringstream out;
  rec.write_trace_json(out);
  std::vector<TraceEvent> back = load_trace_json(out.str());
  ASSERT_EQ(back.size(), 3u);

  EXPECT_EQ(back[0].phase, TracePhase::kInstant);
  EXPECT_EQ(back[0].category, "control");
  EXPECT_EQ(back[0].name, "degraded");
  EXPECT_NEAR(back[0].ts, 0.125, 1e-12);
  EXPECT_EQ(back[0].detail, "link:E[0,0]-A[0,1]");

  EXPECT_EQ(back[1].phase, TracePhase::kComplete);
  EXPECT_NEAR(back[1].ts, 0.25, 1e-12);
  EXPECT_NEAR(back[1].dur, 0.0625, 1e-12);
  EXPECT_DOUBLE_EQ(back[1].wall_us, 17.5);
  EXPECT_EQ(back[1].detail, "needs \"quotes\", commas");

  EXPECT_EQ(back[2].phase, TracePhase::kCounter);
  EXPECT_DOUBLE_EQ(back[2].value, 9.0);
}

// --- telemetry sampler -------------------------------------------------------

TEST(Telemetry, SamplesExactCadenceBoundaries) {
  double state = 0.0;
  TelemetrySampler sampler(0.25);
  sampler.add_probe("state", [&state] { return state; });
  sampler.start(0.0);
  state = 1.0;
  sampler.advance_to(0.6);   // boundaries 0.25, 0.5
  state = 2.0;
  sampler.advance_to(1.0);   // boundaries 0.75, 1.0 (inclusive)
  ASSERT_EQ(sampler.rows(), 5u);
  // Exact multiples — no accumulated drift.
  EXPECT_DOUBLE_EQ(sampler.times()[1], 0.25);
  EXPECT_DOUBLE_EQ(sampler.times()[4], 1.0);
  const std::vector<double>& col = sampler.column(0);
  EXPECT_DOUBLE_EQ(col[0], 0.0);
  EXPECT_DOUBLE_EQ(col[2], 1.0);
  EXPECT_DOUBLE_EQ(col[4], 2.0);
}

TEST(Telemetry, SampleNowReanchorsWithoutDuplicates) {
  TelemetrySampler sampler(0.5);
  sampler.add_probe("one", [] { return 1.0; });
  sampler.start(0.0);
  sampler.sample_now(0.3);   // ad-hoc sample between boundaries
  sampler.sample_now(0.5);   // lands exactly on a boundary
  sampler.advance_to(1.0);   // must not re-take 0.5
  std::vector<double> expected{0.0, 0.3, 0.5, 1.0};
  ASSERT_EQ(sampler.rows(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(sampler.times()[i], expected[i]) << "row " << i;
  }
}

TEST(Telemetry, DisabledSamplerIsANoOp) {
  TelemetrySampler sampler(0.1, /*enabled=*/false);
  sampler.add_probe("x", [] { return 1.0; });
  sampler.start(0.0);
  sampler.advance_to(5.0);
  sampler.sample_now(2.0);
  EXPECT_EQ(sampler.rows(), 0u);
  EXPECT_TRUE(sampler.series_names().empty());
}

TEST(Telemetry, DownsampledCsvEmitsMinMeanMaxPerBucket) {
  double state = 0.0;
  TelemetrySampler sampler(0.25);
  sampler.add_probe("v", [&state] { return state; });
  for (double t : {0.0, 0.25, 0.5, 0.75}) {
    state = t * 4.0;  // 0, 1, 2, 3
    sampler.sample_now(t);
  }
  std::ostringstream out;
  sampler.write_downsampled_csv(out, 0.5);
  std::istringstream lines(out.str());
  std::string header, row0, row1;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row0));
  ASSERT_TRUE(std::getline(lines, row1));
  EXPECT_EQ(header, "time,v.min,v.mean,v.max");
  EXPECT_EQ(row0, "0,0,0.5,1");   // bucket [0, 0.5): samples 0, 1
  EXPECT_EQ(row1, "0.5,2,2.5,3");  // bucket [0.5, 1): samples 2, 3
}

TEST(Telemetry, TableMergesSamplersInScenarioOrder) {
  TelemetryTable table;
  for (std::size_t scenario = 0; scenario < 2; ++scenario) {
    TelemetrySampler s(1.0);
    s.add_probe("depth", [scenario] { return static_cast<double>(scenario); });
    s.start(0.0);
    s.advance_to(1.0);
    table.append(scenario, s);
  }
  EXPECT_EQ(table.rows(), 4u);
  std::ostringstream out;
  table.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "scenario,time,depth");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "0,0,0");
}

// --- fluid-sim integration ---------------------------------------------------

struct ShortestRouter final : routing::Router {
  net::Path route(const net::Network& net, net::NodeId src, net::NodeId dst,
                  std::uint64_t, const routing::LinkLoads*) override {
    return net::shortest_path(net, src, dst);
  }
  const char* name() const noexcept override { return "shortest"; }
};

TEST(Telemetry, FluidSimReportsUtilizationAndFlowCount) {
  topo::FatTree ft(topo::FatTreeParams{.k = 4});
  ShortestRouter router;
  sim::SimConfig cfg;
  cfg.unit_bytes_per_second = 1.0;
  sim::FluidSimulator fluid(ft.network(), router, cfg);
  // Two flows sharing the source NIC: done at t=10 and t=15.
  fluid.add_flow(sim::FlowSpec{1, ft.host(0), ft.host(8), 10.0, 0.0});
  fluid.add_flow(sim::FlowSpec{2, ft.host(0), ft.host(12), 5.0, 0.0});

  FlightRecorder recorder;
  TelemetrySampler sampler(1.0);
  sampler.add_probe("flows", [&fluid] {
    return static_cast<double>(fluid.active_flow_count());
  });
  sampler.add_probe("util_max", [&fluid] {
    return fluid.link_utilization_max();
  });
  fluid.attach_recorder(&recorder);
  fluid.attach_telemetry(&sampler);
  (void)fluid.run();

  ASSERT_GE(sampler.rows(), 3u);
  const std::vector<double>& flows = sampler.column(0);
  const std::vector<double>& util = sampler.column(1);
  // Samples see the state *before* same-instant events, so row 0 (t=0)
  // predates the arrivals; from t=1 both flows saturate the shared NIC.
  EXPECT_DOUBLE_EQ(flows[0], 0.0);
  EXPECT_DOUBLE_EQ(flows[1], 2.0);
  EXPECT_DOUBLE_EQ(util[1], 1.0);
  // The flow count only ever decreases as flows complete.
  for (std::size_t i = 2; i < flows.size(); ++i) {
    EXPECT_LE(flows[i], flows[i - 1]);
  }

  // The recorder captured the solver's self-profiling spans.
  std::size_t solves = 0;
  for (const TraceEvent& e : recorder.events()) {
    if (e.category == "fluidsim" && e.name == "max_min_solve") ++solves;
  }
  EXPECT_GE(solves, 2u);  // at least one solve per flow completion
}

// --- thread-count invariance (the sweep determinism contract) ---------------

/// Serializes every event field EXCEPT wall_us, the declared
/// nondeterministic channel.
std::string deterministic_fingerprint(const FlightRecorder& rec) {
  std::ostringstream os;
  for (const TraceEvent& e : rec.events()) {
    os << static_cast<char>(e.phase) << '|' << e.track << '|' << e.category
       << '|' << e.name << '|' << e.ts << '|' << e.dur << '|' << e.value
       << '|' << e.detail << '\n';
  }
  return os.str();
}

TEST(TracedSweep, OutputIndependentOfThreadCount) {
  auto run = [](std::size_t threads) {
    faultinject::ChaosSoakConfig cfg;
    cfg.scenarios = 4;
    cfg.master_seed = 7;
    cfg.threads = threads;
    cfg.obs.trace = true;
    FlightRecorder trace(/*enabled=*/true,
                         cfg.obs.trace_capacity * cfg.scenarios);
    TelemetryTable telemetry;
    faultinject::ChaosSoakReport report =
        run_chaos_soak(cfg, trace, telemetry);
    EXPECT_TRUE(report.clean());
    std::ostringstream tel;
    telemetry.write_csv(tel);
    return std::make_pair(deterministic_fingerprint(trace), tel.str());
  };
  const auto serial = run(1);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_NE(serial.second.find("net.live_link_frac"), std::string::npos);
  const auto four = run(4);
  const auto eight = run(8);
  // Bit-identical trace content (minus wall clocks) and telemetry CSV.
  EXPECT_EQ(serial.first, four.first);
  EXPECT_EQ(serial.first, eight.first);
  EXPECT_EQ(serial.second, four.second);
  EXPECT_EQ(serial.second, eight.second);
}

}  // namespace
}  // namespace sbk::obs
