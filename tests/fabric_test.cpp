// Property and unit tests for the ShareBackup fabric: wiring invariants
// (§3 / Fig. 3), failover mechanics, circuit tracing, and the structural
// census behind the Table 2 cost terms.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/algo.hpp"
#include "sharebackup/fabric.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sbk::sharebackup {
namespace {

FabricParams params(int k, int n) {
  FabricParams p;
  p.fat_tree.k = k;
  p.backups_per_group = n;
  return p;
}

/// Sorted (min,max) node-id pairs of the fat-tree's links.
std::vector<std::pair<std::uint32_t, std::uint32_t>> link_pairs(
    const net::Network& net) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    const net::Link& l = net.link(net::LinkId(
        static_cast<net::LinkId::value_type>(i)));
    out.emplace_back(std::min(l.a.value(), l.b.value()),
                     std::max(l.a.value(), l.b.value()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> realized_pairs(
    const Fabric& fabric) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (auto [a, b] : fabric.realized_adjacency()) {
    out.emplace_back(std::min(a.value(), b.value()),
                     std::max(a.value(), b.value()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class FabricWiring : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FabricWiring, DefaultCircuitsRealizeExactlyTheFatTree) {
  auto [k, n] = GetParam();
  Fabric fabric(params(k, n));
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
}

TEST_P(FabricWiring, FailureGroupMembersShareCircuitSwitchesWithOneLinkEach) {
  auto [k, n] = GetParam();
  Fabric fabric(params(k, n));
  const int half = k / 2;

  // For every failure group: every member device (in-service and spare
  // alike) is cabled once to every circuit switch of the group's span.
  auto check_layer = [&](topo::Layer layer, int groups) {
    for (int g = 0; g < groups; ++g) {
      std::vector<DeviceUid> members;
      for (int slot = 0; slot < half; ++slot) {
        topo::SwitchPosition pos{layer, layer == topo::Layer::kCore ? -1 : g,
                                 layer == topo::Layer::kCore
                                     ? slot * half + g
                                     : slot};
        members.push_back(fabric.device_at(pos));
      }
      auto spares = fabric.spares(layer, g);
      members.insert(members.end(), spares.begin(), spares.end());

      // All members must attach the same multiset of circuit switches.
      std::vector<std::size_t> reference;
      for (const auto& dp : fabric.ports_of_device(members[0])) {
        reference.push_back(dp.cs);
      }
      std::sort(reference.begin(), reference.end());
      EXPECT_TRUE(std::adjacent_find(reference.begin(), reference.end()) ==
                  reference.end())
          << "device cabled twice to one circuit switch";
      for (DeviceUid m : members) {
        std::vector<std::size_t> mine;
        for (const auto& dp : fabric.ports_of_device(m)) mine.push_back(dp.cs);
        std::sort(mine.begin(), mine.end());
        EXPECT_EQ(mine, reference);
      }
    }
  };
  check_layer(topo::Layer::kEdge, k);
  check_layer(topo::Layer::kAgg, k);
  check_layer(topo::Layer::kCore, half);
}

TEST_P(FabricWiring, CensusMatchesPaperFormulas) {
  auto [k, n] = GetParam();
  Fabric fabric(params(k, n));
  Fabric::Census c = fabric.census();
  const int half = k / 2;
  // 5k/2 failure groups, n backups each (§5.2).
  EXPECT_EQ(c.failure_groups, static_cast<std::size_t>(5 * k / 2));
  EXPECT_EQ(c.backup_switches, static_cast<std::size_t>(5 * k * n / 2));
  // 3 sets of k/2 circuit switches per pod.
  EXPECT_EQ(c.circuit_switches, static_cast<std::size_t>(3 * k * half));
  // Physical ports: 2*(k/2+n) device ports + 2 side ports per switch.
  EXPECT_EQ(c.circuit_switch_physical_ports,
            c.circuit_switches * static_cast<std::size_t>(k + 2 * n + 2));
  // Each backup edge/agg switch runs k cables, each backup core k; total
  // 5/2 k^2 n cable ends = 5/4 k^2 n whole-link equivalents (§5.2).
  EXPECT_EQ(c.backup_device_cables,
            static_cast<std::size_t>(5 * k * k * n / 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FabricWiring,
                         ::testing::Values(std::pair{4, 1}, std::pair{6, 1},
                                           std::pair{6, 2}, std::pair{8, 3}));

TEST(Fabric, RejectsAbWiring) {
  FabricParams p = params(4, 1);
  p.fat_tree.wiring = topo::Wiring::kAb;
  EXPECT_THROW(Fabric{p}, sbk::ContractViolation);
}

TEST(Fabric, FailoverRestoresNodeAndPreservesAdjacency) {
  Fabric fabric(params(6, 1));
  topo::SwitchPosition pos{topo::Layer::kAgg, 2, 1};
  net::NodeId node = fabric.node_at(pos);
  DeviceUid before = fabric.device_at(pos);

  fabric.network().fail_node(node);
  auto baseline = link_pairs(fabric.network());

  auto report = fabric.fail_over(pos);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->failed_device, before);
  EXPECT_NE(report->replacement, before);
  EXPECT_FALSE(fabric.network().node_failed(node));
  EXPECT_EQ(fabric.device_state(before), DeviceState::kOut);
  EXPECT_EQ(fabric.device_state(report->replacement),
            DeviceState::kInService);

  // The packet topology is unchanged and fully realized by circuits.
  EXPECT_EQ(link_pairs(fabric.network()), baseline);
  EXPECT_EQ(realized_pairs(fabric), baseline);
  fabric.check_invariants();

  // An agg switch touches layer-2 and layer-3 circuit switches: k/2 each.
  EXPECT_EQ(report->circuit_switches_touched, 6u);
}

TEST(Fabric, FailoverTouchesExpectedCircuitSwitchCountsPerLayer) {
  Fabric fabric(params(6, 1));
  auto edge = fabric.fail_over({topo::Layer::kEdge, 0, 0});
  ASSERT_TRUE(edge.has_value());
  // hosts_per_edge (=3) layer-1 switches + k/2 (=3) layer-2 switches.
  EXPECT_EQ(edge->circuit_switches_touched, 6u);
  auto core = fabric.fail_over({topo::Layer::kCore, -1, 4});
  ASSERT_TRUE(core.has_value());
  // One layer-3 switch per pod.
  EXPECT_EQ(core->circuit_switches_touched, 6u);
  fabric.check_invariants();
}

TEST(Fabric, PoolExhaustionReturnsNullopt) {
  Fabric fabric(params(4, 1));
  ASSERT_TRUE(fabric.fail_over({topo::Layer::kEdge, 0, 0}).has_value());
  EXPECT_FALSE(fabric.fail_over({topo::Layer::kEdge, 0, 1}).has_value());
  // Other groups unaffected.
  EXPECT_TRUE(fabric.fail_over({topo::Layer::kEdge, 1, 0}).has_value());
}

TEST(Fabric, RepairedDeviceRejoinsPoolAndServesAgain) {
  Fabric fabric(params(4, 1));
  topo::SwitchPosition a{topo::Layer::kCore, -1, 0};
  topo::SwitchPosition b{topo::Layer::kCore, -1, 2};  // same group (0 mod 2)
  auto f1 = fabric.fail_over(a);
  ASSERT_TRUE(f1.has_value());
  EXPECT_FALSE(fabric.fail_over(b).has_value());
  fabric.return_to_pool(f1->failed_device);
  auto f2 = fabric.fail_over(b);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->replacement, f1->failed_device);
  fabric.check_invariants();
  // And the topology is still exactly the fat-tree.
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
}

TEST(Fabric, ChainedFailoversAcrossLayersKeepNetworkConnected) {
  Fabric fabric(params(6, 2));
  sbk::Rng rng(99);
  std::vector<topo::SwitchPosition> positions;
  for (int pod = 0; pod < 6; ++pod) {
    for (int j = 0; j < 3; ++j) {
      positions.push_back({topo::Layer::kEdge, pod, j});
      positions.push_back({topo::Layer::kAgg, pod, j});
    }
  }
  for (int c = 0; c < 9; ++c) positions.push_back({topo::Layer::kCore, -1, c});

  std::vector<DeviceUid> out;
  for (int round = 0; round < 60; ++round) {
    if (!out.empty() && rng.bernoulli(0.4)) {
      std::size_t i = rng.uniform_index(out.size());
      fabric.return_to_pool(out[i]);
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      auto pos = positions[rng.uniform_index(positions.size())];
      net::NodeId node = fabric.node_at(pos);
      fabric.network().fail_node(node);
      auto r = fabric.fail_over(pos);
      if (r.has_value()) {
        out.push_back(r->failed_device);
      } else {
        fabric.network().restore_node(node);  // unrecoverable: undo
      }
    }
  }
  fabric.check_invariants();
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
  EXPECT_EQ(net::live_component_count(fabric.network()), 1u);
}

TEST(Fabric, CsOfLinkIdentifiesTheRealizingSwitch) {
  Fabric fabric(params(6, 1));
  const net::Network& net = fabric.network();
  // Every link's claimed circuit switch actually holds a matched circuit
  // between the two endpoint devices.
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    net::LinkId link(static_cast<net::LinkId::value_type>(i));
    std::size_t cs = fabric.cs_of_link(link);
    const net::Link& l = net.link(link);
    auto dev_of = [&](net::NodeId node) {
      if (net.node(node).kind == net::NodeKind::kHost) {
        return fabric.device_of_host(node);
      }
      return fabric.device_at(*fabric.position_of_node(node));
    };
    DeviceUid da = dev_of(l.a);
    DeviceUid db = dev_of(l.b);
    const CircuitSwitch& sw = fabric.circuit_switch(cs);
    auto pa = sw.port_of_device(da);
    auto pb = sw.port_of_device(db);
    ASSERT_TRUE(pa.has_value() && pb.has_value()) << sw.name();
    EXPECT_EQ(sw.peer(*pa), *pb) << sw.name();
  }
}

TEST(Fabric, TraceCircuitFollowsRingCables) {
  Fabric fabric(params(6, 1));
  // Take an offline pair: fail over edge (0,0); its device's ports are
  // now free; connect one through the ring and trace.
  auto r = fabric.fail_over({topo::Layer::kEdge, 0, 0});
  ASSERT_TRUE(r.has_value());
  DeviceUid dev = r->failed_device;

  std::size_t cs = fabric.cs_index(2, 0, 0);
  std::size_t cs_next = fabric.cs_index(2, 0, 1);
  CircuitSwitch& sw = fabric.circuit_switch(cs);
  CircuitSwitch& nsw = fabric.circuit_switch(cs_next);

  int p = fabric.device_port_on(dev, cs);
  int side = sw.port(PortClass::kSideRight);
  int nside = nsw.port(PortClass::kSideLeft);
  int target = fabric.device_port_on(dev, cs_next);
  ASSERT_FALSE(sw.is_matched(p));
  ASSERT_FALSE(nsw.is_matched(target));

  sw.connect(p, side);
  nsw.connect(nside, target);
  auto endpoint = fabric.trace_circuit(cs, p);
  ASSERT_TRUE(endpoint.has_value());
  EXPECT_EQ(endpoint->device, dev);
  EXPECT_EQ(endpoint->cs, cs_next);

  // Probe semantics: healthy by default, broken when either end is bad.
  EXPECT_TRUE(fabric.probe(InterfaceRef{dev, cs}));
  fabric.set_interface_health(InterfaceRef{dev, cs_next}, false);
  EXPECT_FALSE(fabric.probe(InterfaceRef{dev, cs}));
  fabric.heal_device(dev);
  EXPECT_TRUE(fabric.probe(InterfaceRef{dev, cs}));

  sw.disconnect(p);
  nsw.disconnect(nside);
}

TEST(Fabric, TraceCircuitDeadEnds) {
  Fabric fabric(params(4, 1));
  auto r = fabric.fail_over({topo::Layer::kAgg, 0, 0});
  ASSERT_TRUE(r.has_value());
  DeviceUid dev = r->failed_device;
  std::size_t cs = fabric.cs_index(3, 0, 0);
  int p = fabric.device_port_on(dev, cs);
  // Unmatched port: open circuit.
  EXPECT_FALSE(fabric.trace_circuit(cs, p).has_value());
  EXPECT_FALSE(fabric.probe(InterfaceRef{dev, cs}));
}

TEST(Fabric, RackModeBuildsWithSingleLayer1Switch) {
  FabricParams p = params(4, 1);
  p.fat_tree.hosts_per_edge = 1;
  p.fat_tree.host_link_capacity = 20.0;
  Fabric fabric(p);
  // Layer-1: 1 per pod; layers 2-3: k/2 = 2 per pod.
  EXPECT_EQ(fabric.circuit_switch_count(),
            static_cast<std::size_t>(4 * (1 + 2 + 2)));
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
  auto r = fabric.fail_over({topo::Layer::kEdge, 0, 0});
  ASSERT_TRUE(r.has_value());
  // 1 layer-1 + 2 layer-2 switches.
  EXPECT_EQ(r->circuit_switches_touched, 3u);
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
}

TEST(Fabric, NonUniformBackupProvisioning) {
  // §6: more backup on critical devices, less on unimportant ones. Give
  // edge groups 2 backups (a dead edge kills a rack), aggs 1, cores 0.
  FabricParams p = params(6, 1);
  p.backups_edge = 2;
  p.backups_agg = 1;
  p.backups_core = 0;
  Fabric fabric(p);
  EXPECT_EQ(fabric.spares(topo::Layer::kEdge, 0).size(), 2u);
  EXPECT_EQ(fabric.spares(topo::Layer::kAgg, 0).size(), 1u);
  EXPECT_TRUE(fabric.spares(topo::Layer::kCore, 0).empty());

  // Default wiring still realizes the exact fat-tree.
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
  fabric.check_invariants();

  // Edge group absorbs two failures; core groups none.
  EXPECT_TRUE(fabric.fail_over({topo::Layer::kEdge, 0, 0}).has_value());
  EXPECT_TRUE(fabric.fail_over({topo::Layer::kEdge, 0, 1}).has_value());
  EXPECT_FALSE(fabric.fail_over({topo::Layer::kEdge, 0, 2}).has_value());
  EXPECT_FALSE(fabric.fail_over({topo::Layer::kCore, -1, 0}).has_value());
  fabric.check_invariants();
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));

  // Census reflects the asymmetric pools: k*(2+1) + (k/2)*0 backups.
  EXPECT_EQ(fabric.census().backup_switches, static_cast<std::size_t>(6 * 3));
}

TEST(Fabric, AsymmetricCircuitSwitchPortBudget) {
  FabricParams p = params(4, 1);
  p.backups_edge = 3;
  p.backups_agg = 1;
  p.backups_core = 0;
  Fabric fabric(p);
  // Layer-2 switches: south (edge side) 3 backups, north (agg side) 1.
  const CircuitSwitch& l2 = fabric.circuit_switch(fabric.cs_index(2, 0, 0));
  EXPECT_EQ(l2.south_backups(), 3);
  EXPECT_EQ(l2.north_backups(), 1);
  EXPECT_EQ(l2.port_count(), 2 * 2 + 3 + 1 + 2);
  // Layer-3: south (agg) 1, north (core) 0.
  const CircuitSwitch& l3 = fabric.circuit_switch(fabric.cs_index(3, 0, 0));
  EXPECT_EQ(l3.south_backups(), 1);
  EXPECT_EQ(l3.north_backups(), 0);
}

TEST(Fabric, ScaleSweepK16EveryPositionFailsOverAndReturns) {
  // Production-scale smoke: k=16 (320 switch positions, 384 circuit
  // switches). Every position fails over once and the replaced device is
  // repaired back; invariants and realized adjacency hold throughout
  // spot-checks and at the end.
  Fabric fabric(params(16, 1));
  const int k = 16;
  std::vector<topo::SwitchPosition> positions;
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < 8; ++j) {
      positions.push_back({topo::Layer::kEdge, pod, j});
      positions.push_back({topo::Layer::kAgg, pod, j});
    }
  }
  for (int c = 0; c < 64; ++c) positions.push_back({topo::Layer::kCore, -1, c});
  ASSERT_EQ(positions.size(), 320u);

  std::size_t i = 0;
  for (const auto& pos : positions) {
    fabric.network().fail_node(fabric.node_at(pos));
    auto r = fabric.fail_over(pos);
    ASSERT_TRUE(r.has_value());
    fabric.return_to_pool(r->failed_device);
    if (++i % 64 == 0) fabric.check_invariants();
  }
  fabric.check_invariants();
  EXPECT_EQ(realized_pairs(fabric), link_pairs(fabric.network()));
  EXPECT_EQ(net::live_component_count(fabric.network()), 1u);
}

TEST(Fabric, PositionDeviceRoundTrip) {
  Fabric fabric(params(6, 1));
  for (int pod = 0; pod < 6; ++pod) {
    for (int j = 0; j < 3; ++j) {
      for (topo::Layer layer : {topo::Layer::kEdge, topo::Layer::kAgg}) {
        topo::SwitchPosition pos{layer, pod, j};
        DeviceUid dev = fabric.device_at(pos);
        auto back = fabric.position_of_device(dev);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, pos);
      }
    }
  }
  for (int c = 0; c < 9; ++c) {
    topo::SwitchPosition pos{topo::Layer::kCore, -1, c};
    auto back = fabric.position_of_device(fabric.device_at(pos));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, pos);
  }
  // Spares serve no position.
  auto spares = fabric.spares(topo::Layer::kEdge, 0);
  ASSERT_FALSE(spares.empty());
  EXPECT_FALSE(fabric.position_of_device(spares[0]).has_value());
}

TEST(Fabric, InterfaceHealthRejectsOutOfRangeCircuitSwitchIds) {
  // The interface-health map keys on (device, cs) packed into 64 bits.
  // cs is a std::size_t: before the checked packing, a cs of 2^32 + 5
  // silently aliased (device + 1, 5) and flipped the health of an
  // unrelated device's interface. Now it is a contract violation.
  Fabric fabric(params(4, 1));
  const InterfaceRef adversarial{DeviceUid{1},
                                 (std::size_t{1} << 32) + 5};
  EXPECT_THROW(fabric.set_interface_health(adversarial, false),
               ContractViolation);
  EXPECT_THROW((void)fabric.interface_healthy(adversarial),
               ContractViolation);
  // In-range ids keep working and stay isolated per device.
  const InterfaceRef fine{DeviceUid{1}, 0};
  fabric.set_interface_health(fine, false);
  EXPECT_FALSE(fabric.interface_healthy(fine));
  EXPECT_TRUE(fabric.interface_healthy(InterfaceRef{DeviceUid{2}, 0}));
  fabric.set_interface_health(fine, true);
  EXPECT_TRUE(fabric.interface_healthy(fine));
}

}  // namespace
}  // namespace sbk::sharebackup
