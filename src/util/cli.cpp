#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace sbk::cli {

std::optional<std::string> ParseResult::value_of(
    std::string_view name) const {
  std::optional<std::string> out;
  for (const ParsedFlag& f : flags) {
    if (f.name == name) out = f.value;
  }
  return out;
}

bool ParseResult::has(std::string_view name) const {
  for (const ParsedFlag& f : flags) {
    if (f.name == name) return true;
  }
  return false;
}

ParseResult parse_args(int argc, const char* const* argv,
                       const std::vector<FlagSpec>& specs,
                       std::size_t max_positional) {
  ParseResult out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (out.positional.size() >= max_positional) {
        out.error = "unexpected extra argument '" + std::string(arg) + "'";
        return out;
      }
      out.positional.emplace_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string_view name =
        arg.substr(2, eq == std::string_view::npos ? eq : eq - 2);
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& s : specs) {
      if (s.name == name) { spec = &s; break; }
    }
    if (spec == nullptr) {
      out.error = "unknown flag '--" + std::string(name) + "'";
      return out;
    }
    if (spec->requires_value) {
      if (eq == std::string_view::npos || eq + 1 == arg.size()) {
        out.error = "flag '--" + std::string(name) +
                    "' requires a value: --" + std::string(name) + "=<value>";
        return out;
      }
      out.flags.push_back({std::string(name), std::string(arg.substr(eq + 1))});
    } else {
      if (eq != std::string_view::npos) {
        out.error = "flag '--" + std::string(name) + "' takes no value";
        return out;
      }
      out.flags.push_back({std::string(name), ""});
    }
  }
  return out;
}

std::optional<long long> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

}  // namespace sbk::cli
