// Tests for the controller <-> routing-table mirror (§4.3 operational
// glue): every controller-driven recovery keeps the ImpersonationStore's
// device assignment in lockstep with the fabric, and position-level
// forwarding is invariant across arbitrary recovery sequences.
#include <gtest/gtest.h>

#include "control/controller.hpp"
#include "control/table_manager.hpp"
#include "routing/impersonation.hpp"
#include "util/rng.hpp"

namespace sbk::control {
namespace {

using sharebackup::DeviceState;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using sharebackup::InterfaceRef;
using topo::Layer;
using topo::SwitchPosition;

FabricParams fp(int k, int n) {
  FabricParams p;
  p.fat_tree.k = k;
  p.backups_per_group = n;
  return p;
}

TEST(TableManager, InitialMirrorMatchesFabric) {
  Fabric fabric(fp(6, 2));
  TableManager tables(fabric);
  tables.check_mirrored(fabric);
  // The mirrored device of an in-service fabric device serves the same
  // position in the store.
  SwitchPosition pos{Layer::kAgg, 3, 1};
  EXPECT_EQ(tables.store_device(fabric.device_at(pos)),
            tables.store().device_at(pos));
}

TEST(TableManager, ControllerFailoverKeepsMirror) {
  Fabric fabric(fp(6, 1));
  TableManager tables(fabric);
  Controller ctrl(fabric, ControllerConfig{});
  ctrl.attach_table_manager(&tables);

  SwitchPosition pos{Layer::kEdge, 1, 2};
  fabric.network().fail_node(fabric.node_at(pos));
  ASSERT_TRUE(ctrl.on_switch_failure(pos).recovered);
  tables.check_mirrored(fabric);

  // The replacement's preloaded table is the pod's combined edge table.
  auto dev = tables.store().device_at(pos);
  EXPECT_EQ(tables.store().table_of(dev).size(),
            static_cast<std::size_t>(3 + 9));  // k/2 + k^2/4 for k=6
}

TEST(TableManager, LinkRecoveryAndDiagnosisKeepMirror) {
  Fabric fabric(fp(6, 1));
  TableManager tables(fabric);
  Controller ctrl(fabric, ControllerConfig{});
  ctrl.attach_table_manager(&tables);

  net::NodeId edge = fabric.fat_tree().edge(2, 0);
  net::NodeId agg = fabric.fat_tree().agg(2, 1);
  net::LinkId link = *fabric.network().find_link(edge, agg);
  std::size_t cs = fabric.cs_of_link(link);
  auto agg_dev = fabric.device_at(*fabric.position_of_node(agg));
  fabric.set_interface_health(InterfaceRef{agg_dev, cs}, false);
  fabric.network().fail_link(link);

  ASSERT_TRUE(ctrl.on_link_failure(link).recovered);
  tables.check_mirrored(fabric);
  ctrl.run_pending_diagnosis();  // exonerates the edge device
  tables.check_mirrored(fabric);
  ctrl.on_device_repaired(agg_dev);
  tables.check_mirrored(fabric);
  // Pools full again in both worlds.
  EXPECT_EQ(fabric.spares(Layer::kAgg, 2).size(), 1u);
  EXPECT_EQ(tables.store().spares(Layer::kAgg, 2).size(), 1u);
}

TEST(TableManager, ForwardingInvariantUnderControllerChurn) {
  const int k = 6;
  Fabric fabric(fp(k, 2));
  TableManager tables(fabric);
  Controller ctrl(fabric, ControllerConfig{});
  ctrl.attach_table_manager(&tables);
  routing::ForwardingSim fsim(tables.store());

  std::vector<std::pair<routing::HostAddr, routing::HostAddr>> pairs = {
      {{0, 0, 0}, {5, 2, 1}}, {{3, 1, 2}, {3, 2, 0}}, {{1, 0, 0}, {4, 1, 1}}};
  std::vector<std::vector<SwitchPosition>> baseline;
  for (auto& [s, d] : pairs) {
    auto t = fsim.walk(s, d);
    ASSERT_TRUE(t.delivered);
    baseline.push_back(t.positions);
  }

  Rng rng(606);
  std::vector<sharebackup::DeviceUid> out;
  for (int step = 0; step < 60; ++step) {
    ctrl.set_time(step * 10.0);
    if (!out.empty() && rng.bernoulli(0.4)) {
      ctrl.on_device_repaired(out.back());
      out.pop_back();
    } else {
      SwitchPosition pos;
      double layer = rng.uniform_real(0.0, 1.0);
      if (layer < 0.4) {
        pos = {Layer::kEdge, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(3))};
      } else if (layer < 0.8) {
        pos = {Layer::kAgg, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(3))};
      } else {
        pos = {Layer::kCore, -1, static_cast<int>(rng.uniform_index(9))};
      }
      net::NodeId node = fabric.node_at(pos);
      if (fabric.network().node_failed(node)) continue;
      fabric.network().fail_node(node);
      auto o = ctrl.on_switch_failure(pos);
      if (o.recovered) {
        out.push_back(o.failovers[0].failed_device);
      } else {
        fabric.network().restore_node(node);
      }
    }
    tables.check_mirrored(fabric);
    // Forwarding at the position level is bit-for-bit unchanged.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      auto t = fsim.walk(pairs[i].first, pairs[i].second);
      ASSERT_TRUE(t.delivered) << "step " << step;
      EXPECT_EQ(t.positions, baseline[i]) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace sbk::control
