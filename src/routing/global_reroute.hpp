// The paper's fat-tree baseline under failures: "global optimal
// rerouting" (§2.2). Affected flows are re-placed with full knowledge of
// the network: among all live shortest paths, pick the one minimizing the
// maximum flow count on any directed link, breaking ties by total load
// then by hash. This is the strongest realistic rerouting a centralized
// fat-tree control plane can do without splitting flows.
#pragma once

#include "routing/router.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

class MinCongestionRouter final : public Router {
 public:
  explicit MinCongestionRouter(const topo::FatTree& ft,
                               std::uint64_t salt = 0)
      : ft_(&ft), salt_(salt) {}

  [[nodiscard]] net::Path route(const net::Network& net, net::NodeId src,
                                net::NodeId dst, std::uint64_t flow_id,
                                const LinkLoads* loads) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "global-optimal";
  }

 private:
  const topo::FatTree* ft_;
  std::uint64_t salt_;
};

/// The complete fat-tree baseline of §2.2: ECMP in normal operation, with
/// *affected flows only* re-placed by the global optimizer when their
/// ECMP path is dead. Unaffected flows keep exactly the path they would
/// have in the healthy network, so CCT slowdowns isolate the failure's
/// effect (as the paper's "final state after failures" methodology does).
class EcmpWithGlobalRerouteRouter final : public Router {
 public:
  explicit EcmpWithGlobalRerouteRouter(const topo::FatTree& ft,
                                       std::uint64_t salt = 0)
      : ft_(&ft), salt_(salt), optimizer_(ft, salt) {}

  [[nodiscard]] net::Path route(const net::Network& net, net::NodeId src,
                                net::NodeId dst, std::uint64_t flow_id,
                                const LinkLoads* loads) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "ecmp+global-reroute";
  }

 private:
  const topo::FatTree* ft_;
  std::uint64_t salt_;
  MinCongestionRouter optimizer_;
};

}  // namespace sbk::routing
