#include "sim/max_min.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/assert.hpp"

namespace sbk::sim {

namespace {
/// Dense slot for a directed link.
std::size_t slot(net::DirectedLink dl) {
  return dl.link.index() * 2 + (dl.forward ? 0 : 1);
}
}  // namespace

std::vector<double> max_min_rates(const net::Network& net,
                                  const std::vector<Demand>& demands) {
  const std::size_t n = demands.size();
  std::vector<double> rate(n, std::numeric_limits<double>::infinity());
  if (n == 0) return rate;

  // Build the link occupancy structures only for links actually used.
  struct LinkState {
    double residual = 0.0;      // capacity minus frozen flows' rates
    std::size_t unfrozen = 0;   // flows not yet fixed
    std::vector<std::size_t> flows;
  };
  std::unordered_map<std::size_t, LinkState> links;
  for (std::size_t f = 0; f < n; ++f) {
    for (net::DirectedLink dl : demands[f].links) {
      LinkState& ls = links[slot(dl)];
      if (ls.flows.empty()) {
        // A failed/drained link carries capacity 0 (or, defensively, a
        // negative value): its demands freeze at rate 0 in the first
        // progressive-filling round below. Aborting here would kill a
        // whole failure sweep because one flow crossed a dead link.
        ls.residual = std::max(net.link(dl.link).capacity, 0.0);
      }
      ls.flows.push_back(f);
      ++ls.unfrozen;
    }
  }

  std::vector<bool> frozen(n, false);
  std::size_t remaining = 0;
  for (std::size_t f = 0; f < n; ++f) {
    if (!demands[f].links.empty()) ++remaining;
    // Pathless demands keep rate = +inf; the fluid simulator treats them
    // as instantaneous.
  }

  while (remaining > 0) {
    // Find the bottleneck: the smallest fair share among links that still
    // carry unfrozen flows.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (const auto& [s, ls] : links) {
      if (ls.unfrozen == 0) continue;
      double share = ls.residual / static_cast<double>(ls.unfrozen);
      bottleneck_share = std::min(bottleneck_share, share);
    }
    SBK_ASSERT_MSG(bottleneck_share < std::numeric_limits<double>::infinity(),
                   "unfrozen flows must sit on at least one link");
    bottleneck_share = std::max(bottleneck_share, 0.0);

    // Freeze every unfrozen flow crossing a bottleneck link at that share.
    // (Several links can bottleneck simultaneously at the same share.)
    std::vector<std::size_t> to_freeze;
    for (const auto& [s, ls] : links) {
      if (ls.unfrozen == 0) continue;
      double share = ls.residual / static_cast<double>(ls.unfrozen);
      if (share <= bottleneck_share * (1.0 + 1e-12) + 1e-15) {
        for (std::size_t f : ls.flows) {
          if (!frozen[f]) to_freeze.push_back(f);
        }
      }
    }
    SBK_ASSERT(!to_freeze.empty());
    std::sort(to_freeze.begin(), to_freeze.end());
    to_freeze.erase(std::unique(to_freeze.begin(), to_freeze.end()),
                    to_freeze.end());

    for (std::size_t f : to_freeze) {
      frozen[f] = true;
      rate[f] = bottleneck_share;
      --remaining;
      for (net::DirectedLink dl : demands[f].links) {
        LinkState& ls = links[slot(dl)];
        ls.residual -= bottleneck_share;
        if (ls.residual < 0.0) ls.residual = 0.0;  // absorb fp noise
        --ls.unfrozen;
      }
    }
  }
  return rate;
}

}  // namespace sbk::sim
