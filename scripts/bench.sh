#!/usr/bin/env bash
# Perf-regression harness: build the Release tree, run the micro_perf
# google-benchmark suite with JSON output, write BENCH_micro.json at the
# repo root, and compare it against the baseline committed at HEAD.
#
# Usage: scripts/bench.sh [--no-compare] [build-dir]
#
#   --no-compare   Just refresh BENCH_micro.json; skip the baseline diff
#                  (use when intentionally re-baselining: run, inspect,
#                  then commit the new BENCH_micro.json).
#
# Environment:
#   BENCH_TOLERANCE   Allowed fractional slowdown before a benchmark is
#                     flagged as a regression (default 0.30 — generous,
#                     because CI boxes and laptops are noisy).
#   BENCH_MIN_TIME    --benchmark_min_time value (default 0.1).
#
# Exit status is non-zero if any benchmark present in both the baseline
# and the fresh run slowed down by more than BENCH_TOLERANCE.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=1
if [ "${1:-}" = "--no-compare" ]; then
  COMPARE=0
  shift
fi

BUILD="${1:-build-bench}"
TOL="${BENCH_TOLERANCE:-0.30}"
MIN_TIME="${BENCH_MIN_TIME:-0.1}"

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target micro_perf

"$BUILD"/bench/micro_perf \
  --benchmark_format=json \
  --benchmark_min_time="$MIN_TIME" \
  >BENCH_micro.json.new

if [ "$COMPARE" = 1 ]; then
  if ! git show HEAD:BENCH_micro.json >BENCH_micro.json.base 2>/dev/null; then
    echo "bench.sh: no committed BENCH_micro.json baseline at HEAD;" \
         "skipping comparison" >&2
    rm -f BENCH_micro.json.base
    COMPARE=0
  fi
fi

STATUS=0
if [ "$COMPARE" = 1 ]; then
  python3 - "$TOL" BENCH_micro.json.base BENCH_micro.json.new <<'EOF' || STATUS=$?
import json, sys

tol = float(sys.argv[1])
with open(sys.argv[2]) as f:
    base = {b["name"]: b for b in json.load(f)["benchmarks"]}
with open(sys.argv[3]) as f:
    fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}

regressions = []
for name, b in fresh.items():
    old = base.get(name)
    if old is None:
        print(f"  new       {name}: {b['real_time']:.0f} {b['time_unit']}")
        continue
    ratio = b["real_time"] / old["real_time"] if old["real_time"] else 1.0
    tag = "ok"
    if ratio > 1.0 + tol:
        tag = "REGRESSED"
        regressions.append((name, ratio))
    elif ratio < 1.0 / (1.0 + tol):
        tag = "improved"
    print(f"  {tag:9s} {name}: {old['real_time']:.0f} -> "
          f"{b['real_time']:.0f} {b['time_unit']} ({ratio:.2f}x)")
for name in base:
    if name not in fresh:
        print(f"  missing   {name}: present in baseline, absent in run")

if regressions:
    print(f"bench.sh: {len(regressions)} benchmark(s) regressed beyond "
          f"{tol:.0%} tolerance:", file=sys.stderr)
    for name, ratio in regressions:
        print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    sys.exit(1)
print("bench.sh: no regressions beyond tolerance")
EOF
  rm -f BENCH_micro.json.base
fi

# Disabled-observability overhead gate: the same fluid-sim workload with
# a disabled recorder and sampler attached must stay within the
# regression tolerance of the untouched run (the hooks are supposed to
# cost one branch each).
python3 - "$TOL" BENCH_micro.json.new <<'EOF' || STATUS=$?
import json, sys

tol = float(sys.argv[1])
with open(sys.argv[2]) as f:
    fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}
ref = fresh.get("BM_FluidSimCoflowTrace/60")
dis = fresh.get("BM_FlightRecorderDisabled/60")
if ref is None or dis is None:
    print("bench.sh: recorder-overhead pair not present; skipping gate")
    sys.exit(0)
ratio = dis["real_time"] / ref["real_time"] if ref["real_time"] else 1.0
print(f"bench.sh: disabled-recorder overhead {ratio:.2f}x of baseline "
      f"workload (tolerance {1.0 + tol:.2f}x)")
if ratio > 1.0 + tol:
    print("bench.sh: disabled flight recorder adds measurable overhead",
          file=sys.stderr)
    sys.exit(1)
EOF

mv BENCH_micro.json.new BENCH_micro.json
exit "$STATUS"
