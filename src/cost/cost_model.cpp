#include "cost/cost_model.hpp"

#include "util/assert.hpp"

namespace sbk::cost {

namespace {
double cube(int k) { return static_cast<double>(k) * k * k; }
double square(int k) { return static_cast<double>(k) * k; }

void check_k(int k) {
  SBK_EXPECTS_MSG(k >= 4 && k % 2 == 0, "k must be even and >= 4");
}
}  // namespace

CostBreakdown fat_tree_cost(int k, const PriceSet& p) {
  check_k(k);
  CostBreakdown c;
  c.packet_ports = 1.25 * cube(k) * p.packet_port_b;
  c.links = 0.5 * cube(k) * p.link_c;
  return c;
}

CostBreakdown sharebackup_additional(int k, int n, const PriceSet& p) {
  check_k(k);
  SBK_EXPECTS(n >= 0);
  CostBreakdown c;
  c.circuit_ports =
      1.5 * square(k) * (k / 2.0 + n + 2.0) * p.circuit_port_a;
  c.packet_ports = 2.5 * square(k) * n * p.packet_port_b;
  c.links = 1.25 * square(k) * n * p.link_c;
  return c;
}

CostBreakdown aspen_additional(int k, const PriceSet& p) {
  check_k(k);
  CostBreakdown c;
  c.packet_ports = 0.5 * cube(k) * p.packet_port_b;
  c.links = 0.25 * cube(k) * p.link_c;
  return c;
}

CostBreakdown one_to_one_additional(int k, const PriceSet& p) {
  check_k(k);
  CostBreakdown c;
  c.packet_ports = 3.75 * cube(k) * p.packet_port_b;
  c.links = 1.5 * cube(k) * p.link_c;
  return c;
}

double relative_additional(const CostBreakdown& additional,
                           const CostBreakdown& fat_tree) {
  SBK_EXPECTS(fat_tree.total() > 0.0);
  return additional.total() / fat_tree.total();
}

ShareBackupCounts sharebackup_counts(int k, int n) {
  check_k(k);
  ShareBackupCounts counts;
  // k edge groups + k agg groups + k/2 core groups, n backups each.
  counts.backup_switches = static_cast<long long>(5LL * k * n) / 2;
  // 3 sets of k/2 circuit switches per pod.
  counts.circuit_switches = static_cast<long long>(3LL * k * k) / 2;
  counts.priced_circuit_ports =
      counts.circuit_switches * static_cast<long long>(k / 2 + n + 2);
  // Each backup switch has k ports, each cabled to a circuit switch with
  // half a link's worth of hardware.
  counts.extra_cables = 1.25 * square(k) * n;
  return counts;
}

std::vector<CostCurvePoint> cost_curves(const std::vector<int>& ks,
                                        Medium medium) {
  PriceSet p = PriceSet::for_medium(medium);
  std::vector<CostCurvePoint> out;
  out.reserve(ks.size());
  for (int k : ks) {
    CostBreakdown base = fat_tree_cost(k, p);
    CostCurvePoint pt;
    pt.k = k;
    pt.hosts = static_cast<long long>(k) * k * k / 4;
    pt.sharebackup_n1 =
        relative_additional(sharebackup_additional(k, 1, p), base);
    pt.sharebackup_n4 =
        relative_additional(sharebackup_additional(k, 4, p), base);
    pt.aspen = relative_additional(aspen_additional(k, p), base);
    pt.one_to_one = relative_additional(one_to_one_additional(k, p), base);
    out.push_back(pt);
  }
  return out;
}

ProtectionTableFootprint sharebackup_table_footprint(int k, int n) {
  check_k(k);
  SBK_EXPECTS(n >= 0);
  ProtectionTableFootprint f;
  f.scheme = "sharebackup";
  const long long per_backup = static_cast<long long>(k) / 2 +
                               static_cast<long long>(k) * k / 4;
  f.protection_entries = (5LL * k * n / 2) * per_backup;
  f.per_switch_max = n > 0 ? per_backup : 0;
  return f;
}

ProtectionTableFootprint spider_table_footprint(int k) {
  check_k(k);
  ProtectionTableFootprint f;
  f.scheme = "spider-protect";
  // 3 entries per direction of each of the k^3/2 switch-switch links.
  f.protection_entries = 3LL * k * k * k;
  // Worst device: an agg switch detects failures on its k/2 down-links
  // and k/2 up-links (1 group entry each) and serves as intermediate
  // for detours of its neighbors' k incident links (2 entries each):
  // k + 2k = 3k entries.
  f.per_switch_max = 3LL * k;
  return f;
}

ProtectionTableFootprint backup_rules_table_footprint(int k) {
  check_k(k);
  ProtectionTableFootprint f;
  f.scheme = "backup-rules";
  // One uncompressed backup next-hop per destination at every switch:
  // (5/4)k^2 switches x k^2/2 destinations.
  const long long destinations = static_cast<long long>(k) * k / 2;
  f.protection_entries = (5LL * k * k / 4) * destinations;
  f.per_switch_max = destinations;
  return f;
}

ProtectionTableFootprint reactive_table_footprint(const std::string& scheme) {
  ProtectionTableFootprint f;
  f.scheme = scheme;
  return f;
}

double backup_ratio(int k, int n) {
  check_k(k);
  return static_cast<double>(n) / (k / 2.0);
}

int max_k_for_ports(int ports, int n) {
  SBK_EXPECTS(ports > n + 2);
  // k/2 + n + 2 <= ports  =>  k <= 2*(ports - n - 2)
  int k = 2 * (ports - n - 2);
  return k;
}

}  // namespace sbk::cost
