// Ablation A3 — the value of offline diagnosis (§4.2/§5.1): replay a
// sequence of link failures (each rooted at one genuinely faulty
// interface) and compare backup-pool consumption with and without the
// background diagnosis that exonerates the healthy side.
//
// Without diagnosis every link failure permanently consumes TWO backups
// (both endpoints replaced); with it, only the faulty side's backup
// stays consumed, doubling the number of link failures a group can ride
// out — the paper's "n independent link failures per failure group".
#include <cstdio>

#include "bench_util.hpp"
#include "control/controller.hpp"
#include "sharebackup/fabric.hpp"
#include "util/rng.hpp"

using namespace sbk;

namespace {

struct Outcome {
  std::size_t link_failures_attempted = 0;
  std::size_t recovered = 0;
  std::size_t first_exhaustion = 0;  ///< failure # at first pool miss
};

Outcome replay(bool with_diagnosis, int k, int n, std::size_t events,
               std::uint64_t seed) {
  sharebackup::FabricParams p;
  p.fat_tree.k = k;
  p.backups_per_group = n;
  sharebackup::Fabric fabric(p);
  control::Controller ctrl(fabric, control::ControllerConfig{});
  Rng rng(seed);
  Outcome out;

  for (std::size_t e = 0; e < events; ++e) {
    ++out.link_failures_attempted;
    // A random edge-agg link fails; the faulty side alternates randomly.
    int pod = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k)));
    int ei = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
    int ai = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(k / 2)));
    net::NodeId edge = fabric.fat_tree().edge(pod, ei);
    net::NodeId agg = fabric.fat_tree().agg(pod, ai);
    net::LinkId link = *fabric.network().find_link(edge, agg);
    std::size_t cs = fabric.cs_of_link(link);
    bool edge_faulty = rng.bernoulli(0.5);
    net::NodeId culprit = edge_faulty ? edge : agg;
    auto dev = fabric.device_at(*fabric.position_of_node(culprit));
    fabric.set_interface_health({dev, cs}, false);
    fabric.network().fail_link(link);

    ctrl.set_time(static_cast<Seconds>(e) * 60.0);  // one per minute
    auto result = ctrl.on_link_failure(link);
    if (result.recovered) {
      ++out.recovered;
    } else if (out.first_exhaustion == 0) {
      out.first_exhaustion = e + 1;
    }
    if (!result.recovered) {
      // Clean up the unrecoverable failure so later events stand alone.
      fabric.set_interface_health({dev, cs}, true);
      fabric.network().restore_link(link);
    }
    if (with_diagnosis) {
      ctrl.run_pending_diagnosis();
      // The confirmed-faulty device is repaired off the critical path and
      // becomes a backup again; without diagnosis everything stays out.
      for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count();
           ++d) {
        if (fabric.device_state(d) == sharebackup::DeviceState::kOut) {
          ctrl.on_device_repaired(d);
        }
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(bench::arg_int(argc, argv, "k", 8));
  const int n = static_cast<int>(bench::arg_int(argc, argv, "n", 1));
  const auto events =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "events", 40));

  bench::banner("A3 / ablation — offline diagnosis on/off",
                "Sequence of link failures, each rooted at one faulty "
                "interface (k=" + std::to_string(k) + ", n=" +
                    std::to_string(n) + ").");

  std::printf("%-36s %10s %11s %18s\n", "configuration", "events",
              "recovered", "first exhaustion");
  for (bool with_diagnosis : {true, false}) {
    const char* label = with_diagnosis
                            ? "diagnosis + background repair"
                            : "no diagnosis (suspects stay out)";
    Outcome o = replay(with_diagnosis, k, n, events, 42);
    std::string exhaustion =
        o.first_exhaustion == 0
            ? std::string("never")
            : "event " + std::to_string(o.first_exhaustion);
    std::printf("%-36s %10zu %11zu %18s\n", label,
                o.link_failures_attempted, o.recovered, exhaustion.c_str());
    bench::csv_row({label, std::to_string(o.link_failures_attempted),
                    std::to_string(o.recovered),
                    std::to_string(o.first_exhaustion)});
  }

  std::printf(
      "\nReading: with diagnosis (and the repair loop it enables) the pool\n"
      "replenishes and every link failure recovers. Without it, each\n"
      "event permanently burns two backups — the pool dies after ~n\n"
      "events per touched group, and recovery starts failing almost\n"
      "immediately.\n");
  return 0;
}
