#include "control/control_plane.hpp"

#include "util/assert.hpp"

namespace sbk::control {

ControlPlane::ControlPlane(sharebackup::Fabric& fabric,
                           sim::EventQueue& queue, ControlPlaneConfig config)
    : fabric_(&fabric), queue_(&queue), config_(config),
      controller_(fabric, config.controller),
      detector_(queue, fabric.network(), config.detector) {
  if (config_.cluster_members > 0) {
    ClusterConfig cc = config_.cluster;
    cc.members = config_.cluster_members;
    cluster_.emplace(queue, cc);
    cluster_->on_election([this](std::size_t, std::size_t, Seconds at) {
      // Failure reports that arrived while headless reach the newly
      // elected primary now.
      replay_buffered(at);
    });
  }
  if (config_.manage_tables) {
    tables_.emplace(fabric);
    controller_.attach_table_manager(&*tables_);
  }

  controller_.set_retry_listener(
      [this](const RecoveryOutcome& out, std::optional<net::NodeId> node,
             std::optional<net::LinkId> link) {
        if (out.recovered) {
          if (node.has_value()) detector_.rearm_node(*node);
          if (link.has_value()) detector_.rearm_link(*link);
        }
        // A retried link recovery queues diagnosis exactly like a fresh
        // one; without this the exoneration that would refill the pool
        // never runs.
        schedule_diagnosis_if_pending();
        if (observer_) observer_(out, queue_->now());
      });

  detector_.on_node_failure([this](net::NodeId node, Seconds t) {
    deliver_report(Report{node, std::nullopt}, t);
  });
  detector_.on_link_failure([this](net::LinkId link, Seconds t) {
    deliver_report(Report{std::nullopt, link}, t);
  });
}

bool ControlPlane::controller_available() const {
  return !cluster_.has_value() || cluster_->available();
}

void ControlPlane::deliver_report(Report r, Seconds t) {
  if (report_fault_) {
    std::uint64_t element = r.node.has_value()
                                ? static_cast<std::uint64_t>(r.node->value())
                                : static_cast<std::uint64_t>(r.link->value());
    std::optional<Seconds> delay =
        report_fault_(r.link.has_value(), element, t);
    if (!delay.has_value()) {
      // Lost on the control channel. The detector's
      // report_retry_interval (when configured) re-sends later.
      ++reports_lost_;
      if (recorder_ != nullptr) {
        recorder_->instant("control", "report_lost", t);
      }
      return;
    }
    if (*delay > 0.0) {
      if (recorder_ != nullptr) {
        recorder_->instant("control", "report_delayed", t);
      }
      queue_->schedule_in(*delay, [this, r] {
        handle_report(r, queue_->now());
      });
      return;
    }
  }
  handle_report(r, t);
}

void ControlPlane::handle_report(const Report& r, Seconds t) {
  if (!controller_available()) {
    if (cluster_.has_value() && config_.buffer_reports_during_election) {
      election_buffer_.push_back(r);
      ++reports_buffered_;
      if (recorder_ != nullptr) {
        recorder_->instant("control", "report_buffered", t);
      }
    } else {
      ++reports_dropped_;
      if (recorder_ != nullptr) {
        recorder_->instant("control", "report_dropped", t);
      }
    }
    return;
  }
  process_report(r, t);
}

void ControlPlane::process_report(const Report& r, Seconds t) {
  controller_.set_time(t);
  if (r.node.has_value()) {
    auto pos = fabric_->position_of_node(*r.node);
    SBK_ASSERT_MSG(pos.has_value(), "hosts are not watched for keep-alives");
    RecoveryOutcome out = controller_.on_switch_failure(*pos);
    if (out.recovered) detector_.rearm_node(*r.node);
    schedule_diagnosis_if_pending();
    if (observer_) observer_(out, t);
  } else {
    RecoveryOutcome out = controller_.on_link_failure(*r.link);
    if (out.recovered) detector_.rearm_link(*r.link);
    schedule_diagnosis_if_pending();
    if (observer_) observer_(out, t);
  }
}

void ControlPlane::schedule_diagnosis_if_pending() {
  if (controller_.pending_diagnosis() == 0) return;
  queue_->schedule_in(config_.diagnosis_delay, [this] {
    // Background work must not carry the stale detection timestamp:
    // audit entries and diagnosis/restore spans are stamped with the
    // controller clock. Running with an empty queue is a no-op, so
    // over-scheduling (one event per report) is harmless.
    controller_.set_time(queue_->now());
    // Only jobs that have aged a full diagnosis_delay run in this pass.
    // Drains are over-scheduled (one per report), so without the cutoff
    // a drain from an earlier report could sweep up a job queued this
    // very instant by a retried recovery, denying it its background
    // delay (and breaking span monotonicity for its incident).
    controller_.run_pending_diagnosis(queue_->now() -
                                      config_.diagnosis_delay + 1e-9);
  });
}

void ControlPlane::replay_buffered(Seconds t) {
  while (!election_buffer_.empty() && controller_available()) {
    Report r = election_buffer_.front();
    election_buffer_.pop_front();
    ++reports_replayed_;
    if (recorder_ != nullptr) {
      recorder_->instant("control", "report_replayed", t);
    }
    process_report(r, t);
  }
}

void ControlPlane::start(Seconds horizon) {
  for (net::NodeId sw : fabric_->fat_tree().all_switches()) {
    detector_.watch_node(sw, horizon);
  }
  for (std::size_t i = 0; i < fabric_->network().link_count(); ++i) {
    detector_.watch_link(
        net::LinkId(static_cast<net::LinkId::value_type>(i)), horizon);
  }
  if (cluster_.has_value()) cluster_->start(horizon);
}

}  // namespace sbk::control
