#include "topo/fat_tree.hpp"

#include "util/assert.hpp"

namespace sbk::topo {

std::string edge_name(int pod, int j) {
  return "E[" + std::to_string(pod) + ',' + std::to_string(j) + ']';
}
std::string agg_name(int pod, int j) {
  return "A[" + std::to_string(pod) + ',' + std::to_string(j) + ']';
}
std::string core_name(int c) { return "C" + std::to_string(c); }
std::string host_name(int global_index) {
  return "H" + std::to_string(global_index);
}

FatTree::FatTree(const FatTreeParams& params) : params_(params) {
  SBK_EXPECTS_MSG(params_.k >= 4 && params_.k % 2 == 0,
                  "fat-tree parameter k must be even and >= 4");
  if (params_.hosts_per_edge == 0) params_.hosts_per_edge = params_.k / 2;
  SBK_EXPECTS(params_.hosts_per_edge > 0);
  SBK_EXPECTS(params_.host_link_capacity > 0.0);
  SBK_EXPECTS(params_.edge_agg_capacity > 0.0);
  SBK_EXPECTS(params_.agg_core_capacity > 0.0);
  build();
}

void FatTree::build() {
  const int k = params_.k;
  const int half = k / 2;

  // Size the whole graph up front: every node/link count and degree is a
  // closed-form function of k, so the Network lays its adjacency arena
  // out exactly once (no relocation during the build).
  const std::size_t n_switches = static_cast<std::size_t>(k) * half * 2 +
                                 static_cast<std::size_t>(half) * half;
  const std::size_t n_hosts =
      static_cast<std::size_t>(k) * half * params_.hosts_per_edge;
  const std::size_t n_links =
      n_hosts + static_cast<std::size_t>(k) * half * half * 2;
  net_.reserve(n_switches + n_hosts, n_links);

  host_index_of_node_.assign(
      static_cast<std::size_t>(k * half * params_.hosts_per_edge +
                               k * k + half * half),
      -1);

  // Switches first so their ids are compact and layer-contiguous.
  edges_.reserve(static_cast<std::size_t>(k) * half);
  aggs_.reserve(static_cast<std::size_t>(k) * half);
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      edges_.push_back(
          net_.add_node(net::NodeKind::kEdgeSwitch, edge_name(pod, j), pod, j));
    }
  }
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      aggs_.push_back(
          net_.add_node(net::NodeKind::kAggSwitch, agg_name(pod, j), pod, j));
    }
  }
  cores_.reserve(static_cast<std::size_t>(half) * half);
  for (int c = 0; c < half * half; ++c) {
    cores_.push_back(
        net_.add_node(net::NodeKind::kCoreSwitch, core_name(c), -1, c));
  }

  // Hosts.
  hosts_.reserve(static_cast<std::size_t>(host_count()));
  int global = 0;
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      for (int h = 0; h < params_.hosts_per_edge; ++h) {
        net::NodeId id =
            net_.add_node(net::NodeKind::kHost, host_name(global), pod, global);
        hosts_.push_back(id);
        if (id.index() >= host_index_of_node_.size()) {
          host_index_of_node_.resize(id.index() + 1, -1);
        }
        host_index_of_node_[id.index()] = global;
        ++global;
      }
    }
  }

  // Exact per-node adjacency blocks (see Network::reserve_degree).
  const auto edge_degree =
      static_cast<std::uint32_t>(half + params_.hosts_per_edge);
  for (net::NodeId e : edges_) net_.reserve_degree(e, edge_degree);
  for (net::NodeId a : aggs_) {
    net_.reserve_degree(a, static_cast<std::uint32_t>(k));
  }
  for (net::NodeId c : cores_) {
    net_.reserve_degree(c, static_cast<std::uint32_t>(k));
  }
  for (net::NodeId h : hosts_) net_.reserve_degree(h, 1);

  // Host - edge links.
  global = 0;
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      for (int h = 0; h < params_.hosts_per_edge; ++h) {
        net_.add_link(hosts_[static_cast<std::size_t>(global)], edge(pod, j),
                      params_.host_link_capacity);
        ++global;
      }
    }
  }

  // Edge - agg: complete bipartite within each pod.
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        net_.add_link(edge(pod, e), agg(pod, a), params_.edge_agg_capacity);
      }
    }
  }

  // Agg - core wiring.
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      for (int c : cores_of_agg(pod, j)) {
        net_.add_link(agg(pod, j), core(c), params_.agg_core_capacity);
      }
    }
  }
}

net::NodeId FatTree::edge(int pod, int j) const {
  SBK_EXPECTS(pod >= 0 && pod < pods() && j >= 0 && j < half_k());
  return edges_[static_cast<std::size_t>(pod) * half_k() + j];
}

net::NodeId FatTree::agg(int pod, int j) const {
  SBK_EXPECTS(pod >= 0 && pod < pods() && j >= 0 && j < half_k());
  return aggs_[static_cast<std::size_t>(pod) * half_k() + j];
}

net::NodeId FatTree::core(int c) const {
  SBK_EXPECTS(c >= 0 && c < core_count());
  return cores_[static_cast<std::size_t>(c)];
}

net::NodeId FatTree::host(int pod, int j, int h) const {
  SBK_EXPECTS(pod >= 0 && pod < pods() && j >= 0 && j < half_k());
  SBK_EXPECTS(h >= 0 && h < hosts_per_edge());
  int global = (pod * half_k() + j) * hosts_per_edge() + h;
  return hosts_[static_cast<std::size_t>(global)];
}

net::NodeId FatTree::host(int global_index) const {
  SBK_EXPECTS(global_index >= 0 && global_index < host_count());
  return hosts_[static_cast<std::size_t>(global_index)];
}

int FatTree::host_global_index(net::NodeId h) const {
  SBK_EXPECTS(h.index() < host_index_of_node_.size());
  int idx = host_index_of_node_[h.index()];
  SBK_EXPECTS_MSG(idx >= 0, "node is not a host of this fat-tree");
  return idx;
}

std::vector<net::NodeId> FatTree::all_switches() const {
  std::vector<net::NodeId> out;
  out.reserve(edges_.size() + aggs_.size() + cores_.size());
  out.insert(out.end(), edges_.begin(), edges_.end());
  out.insert(out.end(), aggs_.begin(), aggs_.end());
  out.insert(out.end(), cores_.begin(), cores_.end());
  return out;
}

int FatTree::pod_of(net::NodeId node) const {
  int pod = net_.node(node).pod;
  SBK_EXPECTS_MSG(pod >= 0, "node is not inside a pod");
  return pod;
}

int FatTree::index_of(net::NodeId node) const {
  const net::Node& n = net_.node(node);
  SBK_EXPECTS(n.kind == net::NodeKind::kEdgeSwitch ||
              n.kind == net::NodeKind::kAggSwitch);
  return n.index;
}

net::NodeId FatTree::edge_of_host(net::NodeId h) const {
  int global = host_global_index(h);
  int per_pod = half_k() * hosts_per_edge();
  int pod = global / per_pod;
  int j = (global % per_pod) / hosts_per_edge();
  return edge(pod, j);
}

net::NodeId FatTree::agg_for_core(int core_index, int pod) const {
  SBK_EXPECTS(core_index >= 0 && core_index < core_count());
  SBK_EXPECTS(pod >= 0 && pod < pods());
  const int half = half_k();
  const int row = core_index / half;
  const int col = core_index % half;
  bool transpose = (params_.wiring == Wiring::kAb) && (pod % 2 == 1);
  return agg(pod, transpose ? col : row);
}

std::vector<int> FatTree::cores_of_agg(int pod, int j) const {
  SBK_EXPECTS(pod >= 0 && pod < pods() && j >= 0 && j < half_k());
  const int half = half_k();
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(half));
  bool transpose = (params_.wiring == Wiring::kAb) && (pod % 2 == 1);
  for (int i = 0; i < half; ++i) {
    // Plain (type A): row j -> cores j*half + i.
    // Transposed (type B): column j -> cores i*half + j.
    out.push_back(transpose ? i * half + j : j * half + i);
  }
  return out;
}

net::LinkId FatTree::host_link(net::NodeId h) const {
  net::NodeId e = edge_of_host(h);
  auto link = net_.find_link(h, e);
  SBK_ASSERT(link.has_value());
  return *link;
}

}  // namespace sbk::topo
