// Sharable backup beyond fat-tree (§6): a leaf-spine fabric with
// per-tier failure groups. Kills a leaf (an entire rack's uplink) and a
// spine, recovers both from shared backups, and shows the topology is
// bit-for-bit restored.
//
//   $ ./build/examples/leaf_spine_demo
#include <cstdio>

#include "net/algo.hpp"
#include "routing/generic_ecmp.hpp"
#include "sharebackup/leaf_spine.hpp"

using namespace sbk;
using sharebackup::LeafSpineFabric;
using sharebackup::LeafSpineParams;
using sharebackup::LsPosition;
using sharebackup::LsTier;

int main() {
  LeafSpineParams params;
  params.leaves = 8;
  params.spines = 4;
  params.hosts_per_leaf = 4;
  params.group_size = 4;        // 2 leaf groups + 1 spine group
  params.backups_per_group = 1;
  LeafSpineFabric fabric(params);

  auto census = fabric.census();
  std::printf("Leaf-spine ShareBackup: %d leaves, %d spines, %d hosts\n",
              params.leaves, params.spines, fabric.host_count());
  std::printf("  %zu failure groups (size %d), %zu backup switches, %zu "
              "circuit switches\n\n",
              census.failure_groups, params.group_size,
              census.backup_switches, census.circuit_switches);

  routing::GenericEcmpRouter router(1);
  net::NodeId src = fabric.host(0);          // rack of leaf 0
  net::NodeId dst = fabric.host(31);         // rack of leaf 7
  net::Path before = router.route(fabric.network(), src, dst, 7, nullptr);
  std::printf("baseline path: %s\n\n",
              net::to_string(fabric.network(), before).c_str());

  // A leaf dies: in a plain leaf-spine its whole rack goes dark.
  LsPosition leaf_pos{LsTier::kLeaf, 0};
  fabric.network().fail_node(fabric.node_at(leaf_pos));
  std::printf("LEAF0 down: rack reachable? %s\n",
              net::reachable(fabric.network(), src, dst) ? "yes" : "no");
  auto r1 = fabric.fail_over(leaf_pos);
  std::printf("failover -> backup (%zu circuit switches reconfigured): "
              "rack reachable? %s\n",
              r1->circuit_switches_touched,
              net::reachable(fabric.network(), src, dst) ? "yes" : "no");

  // A spine dies: bandwidth loss in a plain leaf-spine; here, none.
  LsPosition spine_pos{LsTier::kSpine, 2};
  fabric.network().fail_node(fabric.node_at(spine_pos));
  auto r2 = fabric.fail_over(spine_pos);
  std::printf("SPINE2 down -> backup (%zu circuit switches): shortest "
              "paths per host pair = %zu (of %d spines)\n",
              r2->circuit_switches_touched,
              net::all_shortest_paths(fabric.network(), src, dst).size(),
              params.spines);

  fabric.check_invariants();
  std::printf("\ninvariants OK; realized circuits == leaf-spine links: %s\n",
              fabric.realized_adjacency().size() ==
                      fabric.network().link_count()
                  ? "yes"
                  : "no");
  std::printf("\nThe same building blocks (failure groups + circuit layers +"
              "\nshared backups) carry over from fat-tree — §6's claim.\n");
  return 0;
}
