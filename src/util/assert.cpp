#include "util/assert.hpp"

#include <sstream>

namespace sbk {

namespace {
std::string format_message(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg)
    : std::logic_error(format_message(kind, expr, file, line, msg)) {}

namespace detail {
void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  throw ContractViolation(kind, expr, file, line, msg);
}
}  // namespace detail

}  // namespace sbk
