// Flow and coflow descriptions consumed by the fluid simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/ids.hpp"
#include "util/time.hpp"

namespace sbk::sim {

using FlowId = std::uint64_t;
using CoflowId = std::uint64_t;
inline constexpr CoflowId kNoCoflow = std::numeric_limits<CoflowId>::max();

/// An application-level flow: `bytes` from `src` host to `dst` host,
/// released at `start`. Flows belonging to the same coflow share a
/// CoflowId; CCT is derived from their completions.
struct FlowSpec {
  FlowId id = 0;
  net::NodeId src;
  net::NodeId dst;
  double bytes = 0.0;
  Seconds start = 0.0;
  CoflowId coflow = kNoCoflow;
};

/// Terminal state of a simulated flow.
enum class FlowOutcome : std::uint8_t {
  kCompleted,
  kStalledForever,  ///< unreachable at simulation end (no route)
  kUnfinished,      ///< still transferring when the horizon was reached
};

/// Per-flow simulation result.
struct FlowResult {
  FlowSpec spec;
  FlowOutcome outcome = FlowOutcome::kUnfinished;
  Seconds finish = 0.0;          ///< valid iff outcome == kCompleted
  double bytes_remaining = 0.0;  ///< 0 iff completed
  std::size_t path_hops = 0;     ///< hops of the last path used (0 if none)
  std::size_t reroutes = 0;      ///< times the flow was re-pathed

  /// Flow completion time (lifetime).
  [[nodiscard]] Seconds fct() const noexcept { return finish - spec.start; }
};

/// Coflow-level aggregation of flow results.
struct CoflowResult {
  CoflowId id = kNoCoflow;
  std::size_t flow_count = 0;
  std::size_t completed = 0;
  Seconds arrival = 0.0;  ///< earliest flow start
  Seconds finish = 0.0;   ///< latest flow completion (iff all completed)
  bool all_completed = false;

  /// Coflow completion time: lifetime of the most long-lived flow
  /// (paper §2.2). Valid iff all_completed.
  [[nodiscard]] Seconds cct() const noexcept { return finish - arrival; }
};

/// Groups flow results into per-coflow records (flows without a coflow id
/// are skipped).
[[nodiscard]] std::vector<CoflowResult> aggregate_coflows(
    const std::vector<FlowResult>& flows);

}  // namespace sbk::sim
