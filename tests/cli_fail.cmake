# Runtime-failure CLI test driver: runs ${EXE} with ${ARGS} and fails
# unless the tool exits non-zero AND prints the diagnostic substring
# ${MATCH} (unlike cli_reject.cmake, which demands a usage message —
# runtime failures such as an empty or truncated input file must explain
# what is wrong with the file, not reprint the flag syntax). Invoked via
# `cmake -DEXE=... -DARGS=... -DMATCH=... -P cli_fail.cmake`.
if(NOT DEFINED EXE)
  message(FATAL_ERROR "cli_fail.cmake needs -DEXE=<binary>")
endif()
if(NOT DEFINED MATCH)
  message(FATAL_ERROR "cli_fail.cmake needs -DMATCH=<expected substring>")
endif()
execute_process(
  COMMAND ${EXE} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "expected a non-zero exit for args [${ARGS}], got success.\n"
    "stdout: ${out}\nstderr: ${err}")
endif()
string(FIND "${out}${err}" "${MATCH}" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "failed on args [${ARGS}] without the expected diagnostic "
    "\"${MATCH}\".\nstdout: ${out}\nstderr: ${err}")
endif()
