// Experiment E5 — Figure 5: additional cost of ShareBackup (n=1, n=4),
// Aspen Tree, and 1:1 backup relative to fat-tree, across network scales,
// for electrical and optical data centers. Expected shape: 1:1 >> Aspen
// >> ShareBackup, with ShareBackup's relative cost shrinking as k grows.
#include <cstdio>

#include "bench_util.hpp"
#include "cost/cost_model.hpp"

using namespace sbk;
using namespace sbk::cost;

int main() {
  bench::banner("E5 / Figure 5 — additional cost relative to fat-tree",
                "Series: ShareBackup n=1, n=4; Aspen Tree; 1:1 backup. "
                "x-axis: k (hosts = k^3/4).");
  std::vector<int> ks{8, 16, 24, 32, 40, 48, 56, 64};
  for (Medium m : {Medium::kElectrical, Medium::kOptical}) {
    const char* label = m == Medium::kElectrical ? "E-DC" : "O-DC";
    std::printf("\n--- %s ---\n", label);
    std::printf("%-4s %9s %14s %14s %12s %12s\n", "k", "hosts", "SB(n=1)",
                "SB(n=4)", "Aspen", "1:1");
    for (const CostCurvePoint& pt : cost_curves(ks, m)) {
      std::printf("%-4d %9lld %13.1f%% %13.1f%% %11.1f%% %11.1f%%\n", pt.k,
                  pt.hosts, pt.sharebackup_n1 * 100, pt.sharebackup_n4 * 100,
                  pt.aspen * 100, pt.one_to_one * 100);
      bench::csv_row({label, std::to_string(pt.k), std::to_string(pt.hosts),
                      bench::fmt(pt.sharebackup_n1),
                      bench::fmt(pt.sharebackup_n4), bench::fmt(pt.aspen),
                      bench::fmt(pt.one_to_one)});
    }
  }
  std::printf("\nScalability (§5.3): with 32-port 2D-MEMS circuit switches "
              "(k/2+n+2 <= 32):\n");
  for (int n : {1, 2, 4, 6}) {
    int k = max_k_for_ports(32, n);
    std::printf("  n=%d -> max k=%d (%d hosts), backup ratio %s\n", n, k,
                k * k * k / 4, bench::fmt_pct(backup_ratio(k, n), 2).c_str());
  }
  return 0;
}
