// Generic discrete-event queue used by the control-plane simulation.
// (The fluid flow simulator keeps its own specialized loop; see
// fluid_sim.hpp.) Events at equal timestamps fire in insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sbk::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Records a wall-clock-timed "queue"/"dispatch" span per step() (the
  /// span's sim timestamp is the event's fire time). nullptr detaches;
  /// the recorder must outlive the queue.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Schedules `fn` at absolute time `at` (must not precede now()).
  void schedule_at(Seconds at, Callback fn);
  /// Schedules `fn` `delay` seconds from now.
  void schedule_in(Seconds delay, Callback fn);

  [[nodiscard]] Seconds now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs the earliest event; returns false if the queue is empty.
  bool step();
  /// Runs events until the queue drains or `until` is passed (events with
  /// time > until stay queued; now() advances to at most `until`).
  void run_until(Seconds until);
  /// Drains the queue completely (caller must guarantee termination).
  void run();

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Raw binary heap (push_heap/pop_heap) rather than std::priority_queue:
  // top() is const there, which forces a copy of the std::function payload
  // on every step. Owning the vector lets us move entries out.
  std::vector<Entry> heap_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace sbk::sim
