#include "control/controller_cluster.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::control {

ControllerCluster::ControllerCluster(sim::EventQueue& queue,
                                     ClusterConfig config)
    : queue_(&queue), config_(config), alive_(config.members, true) {
  SBK_EXPECTS(config_.members >= 1);
  SBK_EXPECTS(config_.heartbeat_interval > 0.0);
  SBK_EXPECTS(config_.miss_threshold >= 1);
  // Highest id wins elections; the initial primary is the highest id.
  primary_ = config_.members - 1;
}

bool ControllerCluster::any_alive() const {
  return std::any_of(alive_.begin(), alive_.end(),
                     [](bool a) { return a; });
}

void ControllerCluster::schedule_tick_if_idle() {
  if (tick_scheduled_) return;
  Seconds next = queue_->now() + config_.heartbeat_interval;
  if (next <= horizon_) {
    tick_scheduled_ = true;
    queue_->schedule_at(next, [this] { heartbeat_tick(); });
  }
}

void ControllerCluster::start(Seconds horizon) {
  horizon_ = horizon;
  schedule_tick_if_idle();
}

void ControllerCluster::track_availability() {
  bool avail = available();
  if (!avail && !unavailable_since_.has_value()) {
    unavailable_since_ = queue_->now();
  } else if (avail && unavailable_since_.has_value()) {
    downtime_ += queue_->now() - *unavailable_since_;
    unavailable_since_.reset();
  }
}

void ControllerCluster::heartbeat_tick() {
  // A fully dead cluster heartbeats nothing and elects nobody; the
  // chain stops and repair_member restarts it.
  if (!any_alive()) {
    tick_scheduled_ = false;
    return;
  }
  if (!election_in_progress_) {
    bool primary_ok =
        primary_.has_value() && alive_[*primary_];
    if (primary_ok) {
      primary_misses_ = 0;
    } else {
      ++primary_misses_;
      if (primary_misses_ >= config_.miss_threshold) start_election();
    }
  }
  Seconds next = queue_->now() + config_.heartbeat_interval;
  if (next <= horizon_) {
    queue_->schedule_at(next, [this] { heartbeat_tick(); });
  } else {
    tick_scheduled_ = false;
  }
}

void ControllerCluster::start_election() {
  if (election_in_progress_) return;
  election_in_progress_ = true;
  primary_.reset();
  track_availability();
  queue_->schedule_in(config_.election_duration,
                      [this] { finish_election(); });
}

void ControllerCluster::finish_election() {
  election_in_progress_ = false;
  primary_misses_ = 0;
  // Highest live id wins. Every member died mid-election: the election
  // aborts without a winner and without consuming a term — terms only
  // advance when some live member can claim one.
  primary_.reset();
  for (std::size_t i = alive_.size(); i-- > 0;) {
    if (alive_[i]) {
      primary_ = i;
      break;
    }
  }
  track_availability();
  if (primary_.has_value()) {
    ++term_;
    SBK_LOG_INFO("cluster", "term " << term_ << ": controller " << *primary_
                                    << " elected primary");
    if (election_cb_) election_cb_(*primary_, term_, queue_->now());
  } else {
    SBK_LOG_WARN("cluster",
                 "election aborted: no live controllers (term stays "
                     << term_ << ")");
  }
}

void ControllerCluster::fail_member(std::size_t id) {
  SBK_EXPECTS(id < alive_.size());
  alive_[id] = false;
  // Mid-election deaths need no special casing: finish_election()
  // re-reads alive_ at completion, so a dying candidate — even the
  // would-be winner — is skipped for the highest surviving member, and
  // a death that leaves nobody alive aborts the election without
  // consuming a term. The heartbeat chain keeps ticking while anyone
  // is alive, so a freshly elected primary that dies immediately is
  // re-detected within miss_threshold intervals and the election
  // restarts rather than deadlocking availability (regression tests:
  // Cluster.*MidElection* in control_test.cpp).
  track_availability();
}

void ControllerCluster::repair_member(std::size_t id) {
  SBK_EXPECTS(id < alive_.size());
  alive_[id] = true;
  // Reviving the member the (stale) primary_ pointer still names makes
  // the cluster available again without an election — the primary came
  // back before the misses gave up on it. The open unavailability
  // window must close here, or the next transition charges the whole
  // healthy span as downtime.
  track_availability();
  // A repaired member rejoins as a follower and resumes heartbeating.
  // If the chain died with the cluster, restart it; the revived ticks
  // miss the (dead or absent) primary and call an election, which the
  // repaired member can win — total cluster death is survivable.
  schedule_tick_if_idle();
}

std::optional<std::size_t> ControllerCluster::primary() const {
  if (primary_.has_value() && alive_[*primary_]) return primary_;
  return std::nullopt;
}

bool ControllerCluster::member_alive(std::size_t id) const {
  SBK_EXPECTS(id < alive_.size());
  return alive_[id];
}

}  // namespace sbk::control
