// Max-min fair bandwidth allocation by progressive filling (the classic
// water-filling algorithm). Given a set of flows, each pinned to a path
// of directed link uses, computes the unique max-min fair rate vector
// subject to directed link capacities.
//
// The allocation runs on every fluid-simulator event, so the solver is
// built for reuse: MaxMinSolver keeps dense flat scratch arrays indexed
// by directed-link slot (no hashing on the hot path) and recycles them
// across calls. See DESIGN.md ("MaxMinSolver data layout").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"

namespace sbk::sim {

/// One demand: the directed links a flow occupies. An empty set of links
/// (src == dst at the fluid level) receives an infinite rate and should
/// be filtered by the caller.
struct Demand {
  std::vector<net::DirectedLink> links;
};

/// Reusable progressive-filling solver. One instance amortizes its
/// scratch buffers over many calls — the fluid simulator owns one and
/// calls it on every allocation event.
///
/// Two call styles:
///   * batch: solve(net, demands) — drop-in for max_min_rates();
///   * incremental: begin(net); add_demand(links)...; solve_into(rates)
///     — avoids materializing Demand copies; the spans must stay valid
///     until solve_into returns.
///
/// Postconditions (verified by tests, identical to the reference
/// allocator bit for bit):
///  * no directed link's total allocated rate exceeds its capacity
///    (within floating tolerance);
///  * the vector is max-min: each flow is bottlenecked at some saturated
///    link where its rate is maximal among the link's flows;
///  * a failed/drained (capacity-0) link freezes its flows at rate 0;
///  * pathless demands receive +infinity.
class MaxMinSolver {
 public:
  MaxMinSolver() = default;

  void begin(const net::Network& net, std::size_t expected_demands = 0);
  void add_demand(std::span<const net::DirectedLink> links);
  void solve_into(std::vector<double>& rates_out);

  [[nodiscard]] std::vector<double> solve(const net::Network& net,
                                          const std::vector<Demand>& demands);

 private:
  /// Dense slot for a directed link.
  [[nodiscard]] static std::size_t slot(net::DirectedLink dl) noexcept {
    return dl.link.index() * 2 + (dl.forward ? 0 : 1);
  }

  const net::Network* net_ = nullptr;

  // Per-call demand set: spans into caller-owned storage.
  std::vector<std::span<const net::DirectedLink>> demands_;

  // Slot -> compact touched-link index, stamped per call so the arrays
  // never need clearing (slot_index_[s] is valid iff slot_stamp_[s] ==
  // stamp_). Sized 2 * link_count lazily.
  std::vector<std::uint32_t> slot_index_;
  std::vector<std::uint64_t> slot_stamp_;
  std::uint64_t stamp_ = 0;

  // Per touched directed link, by compact index.
  std::vector<double> residual_;         // capacity minus frozen rates
  std::vector<std::uint32_t> unfrozen_;  // flows not yet fixed
  std::vector<std::uint32_t> flow_offset_;  // CSR offsets into link_flows_
  std::vector<std::uint32_t> link_flows_;   // CSR payload: flow indices

  // Progressive-filling worklists.
  std::vector<std::uint32_t> active_links_;  // touched links, unfrozen > 0
  std::vector<std::uint32_t> to_freeze_;
  std::vector<std::uint8_t> frozen_;
};

/// One-shot convenience wrapper over MaxMinSolver (constructs a solver
/// per call; hot paths should hold a MaxMinSolver instead).
[[nodiscard]] std::vector<double> max_min_rates(
    const net::Network& net, const std::vector<Demand>& demands);

/// The original one-shot allocator, kept as the executable specification
/// for MaxMinSolver. Test-only: the randomized property suite checks the
/// solver reproduces this function's output bit for bit on random demand
/// sets over failed/drained topologies. Do not call from hot paths.
[[nodiscard]] std::vector<double> max_min_rates_reference(
    const net::Network& net, const std::vector<Demand>& demands);

}  // namespace sbk::sim
