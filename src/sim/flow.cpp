#include "sim/flow.hpp"

#include <algorithm>

namespace sbk::sim {

namespace {
void fold_flow(CoflowResult& c, const FlowResult& f) {
  if (c.flow_count == 0) {
    c.id = f.spec.coflow;
    c.arrival = f.spec.start;
  }
  ++c.flow_count;
  c.arrival = std::min(c.arrival, f.spec.start);
  if (f.outcome == FlowOutcome::kCompleted) {
    ++c.completed;
    c.finish = std::max(c.finish, f.finish);
  }
}
}  // namespace

std::vector<CoflowResult> aggregate_coflows(
    const std::vector<FlowResult>& flows) {
  // Every workload generator in the repo numbers coflows densely from 0,
  // so aggregation is a flat vector indexed by id. Sparse or adversarial
  // id spaces (max id far beyond the tagged-flow count) fall back to
  // sort-and-scan grouping — either way, no hashing.
  CoflowId max_id = 0;
  std::size_t tagged = 0;
  for (const FlowResult& f : flows) {
    if (f.spec.coflow == kNoCoflow) continue;
    ++tagged;
    max_id = std::max(max_id, f.spec.coflow);
  }
  std::vector<CoflowResult> out;
  if (tagged == 0) return out;

  if (max_id < tagged * 2 + 1024) {
    std::vector<CoflowResult> slots(static_cast<std::size_t>(max_id) + 1);
    for (const FlowResult& f : flows) {
      if (f.spec.coflow == kNoCoflow) continue;
      fold_flow(slots[f.spec.coflow], f);
    }
    out.reserve(tagged);
    for (CoflowResult& c : slots) {
      if (c.flow_count == 0) continue;
      c.all_completed = (c.completed == c.flow_count);
      out.push_back(c);  // slot order == ascending id: already sorted
    }
    out.shrink_to_fit();
    return out;
  }

  std::vector<std::size_t> order;
  order.reserve(tagged);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].spec.coflow != kNoCoflow) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&flows](std::size_t a, std::size_t b) {
              return flows[a].spec.coflow < flows[b].spec.coflow;
            });
  for (std::size_t i = 0; i < order.size();) {
    const CoflowId id = flows[order[i]].spec.coflow;
    CoflowResult c;
    for (; i < order.size() && flows[order[i]].spec.coflow == id; ++i) {
      fold_flow(c, flows[order[i]]);
    }
    c.all_completed = (c.completed == c.flow_count);
    out.push_back(c);
  }
  return out;
}

}  // namespace sbk::sim
