// The 1:1 backup architecture the paper's introduction describes (and
// Table 2 prices): "switches can keep a hot spare; hosts are multi-homed
// to the primary and the backup switches; and every link between two
// primary switches is duplicated by a mesh amongst them and their
// shadows."
//
// Construction on a k-ary fat-tree:
//   * every switch S gets a shadow S';
//   * every switch-switch link (a, b) becomes the 4-link mesh
//     {(a,b), (a,b'), (a',b), (a',b')};
//   * every host attaches to its edge switch and to its shadow.
// Shadows are powered off in normal operation (modeled as failed nodes,
// so routing ignores them). When a switch dies, its shadow is activated:
// because of the mesh, the shadow has a live link to every neighbor (or
// neighbor's active shadow), so bandwidth is fully restored with no path
// dilation — at the cost Table 2 shows (multiple times the fat-tree).
//
// Census note: the paper prices 1:1 backup with the coarse assumption
// "twice the switches at twice the per-switch cost" (additional port
// term 15/4 k^3 b). The literal construction adds 13/4 k^3 switch ports
// (hosts do not mesh, so edge switches grow to 3k/2 ports, not 2k); the
// ~7% gap is the paper's rounding of the strawman, kept as-is in
// cost::one_to_one_additional. This module reports the construction's
// exact census for comparison.
#pragma once

#include <optional>
#include <vector>

#include "topo/fat_tree.hpp"

namespace sbk::topo {

class OneToOneBackup {
 public:
  /// Builds the doubled network. `params.wiring` must be plain.
  explicit OneToOneBackup(const FatTreeParams& params);

  [[nodiscard]] const FatTree& fat_tree() const noexcept { return ft_; }
  [[nodiscard]] net::Network& network() noexcept { return ft_.network(); }
  [[nodiscard]] const net::Network& network() const noexcept {
    return ft_.network();
  }

  /// The shadow of a primary switch (and vice versa).
  [[nodiscard]] net::NodeId shadow_of(net::NodeId primary) const;
  [[nodiscard]] bool is_shadow(net::NodeId node) const;

  /// Activates the shadow of a failed primary: the shadow node is
  /// restored (powered on) and takes over. The primary must currently be
  /// failed. Returns the shadow id.
  net::NodeId activate_shadow(net::NodeId primary);

  /// Powers the repaired primary back up as the standby for its slot
  /// (roles swap, like ShareBackup's no-switch-back policy).
  void stand_down(net::NodeId repaired_primary);

  /// Active switch currently serving a slot (primary or its shadow).
  [[nodiscard]] net::NodeId active_of(net::NodeId primary) const;

  struct Census {
    std::size_t extra_switches = 0;
    std::size_t extra_switch_ports = 0;  ///< construction-exact
    std::size_t extra_fabric_links = 0;  ///< switch-switch cables added
    std::size_t extra_host_links = 0;
  };
  [[nodiscard]] Census census() const;

 private:
  // All three role maps are dense vectors over the node index space
  // (invalid NodeId = no entry): the doubled network's ids are
  // contiguous, so there is nothing to hash.
  FatTree ft_;
  std::vector<net::NodeId> shadow_;             // by primary node index
  std::vector<net::NodeId> primary_of_shadow_;  // by shadow node index
  std::vector<net::NodeId> active_;             // by primary node index
  Census census_;
};

}  // namespace sbk::topo
