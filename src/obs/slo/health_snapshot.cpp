#include "obs/slo/health_snapshot.hpp"

#include <iomanip>
#include <sstream>

namespace sbk::obs::slo {

namespace {

/// Minimal JSON / Prometheus-label string escape (names here are plain
/// identifiers; this guards the odd metric name with a quote or slash).
[[nodiscard]] std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_health_json(std::ostream& os, const HealthSnapshot& snap) {
  os << std::setprecision(17);
  os << "{\"track\":" << snap.track << ",\"sequence\":" << snap.sequence
     << ",\"at\":" << snap.at << ",\"queue_depth\":" << snap.queue_depth
     << ",\"backpressure\":" << (snap.backpressure ? "true" : "false")
     << ",\"accepted\":" << snap.accepted
     << ",\"processed\":" << snap.processed
     << ",\"dropped_overflow\":" << snap.dropped_overflow
     << ",\"shed_probes\":" << snap.shed_probes
     << ",\"batches\":" << snap.batches
     << ",\"replicated\":" << (snap.replicated ? "true" : "false")
     << ",\"cluster_term\":" << snap.cluster_term
     << ",\"acting_member\":" << snap.acting_member
     << ",\"cluster_available\":" << (snap.cluster_available ? "true" : "false")
     << ",\"headless_backlog\":" << snap.headless_backlog
     << ",\"headless_seconds\":" << snap.headless_seconds
     << ",\"spare_pool\":" << snap.spare_pool
     << ",\"live_link_frac\":" << snap.live_link_frac << ",\"histograms\":[";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HealthHistogramStat& h = snap.histograms[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << escaped(h.name) << "\",\"count\":" << h.count
       << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99
       << ",\"p999\":" << h.p999 << ",\"max\":" << h.max << "}";
  }
  os << "],\"objectives\":[";
  for (std::size_t i = 0; i < snap.objectives.size(); ++i) {
    const HealthObjectiveStat& o = snap.objectives[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << escaped(o.name) << "\",\"good\":" << o.good
       << ",\"bad\":" << o.bad << ",\"breaches\":" << o.breaches
       << ",\"clears\":" << o.clears << ",\"attainment\":" << o.attainment
       << ",\"breached\":" << (o.breached ? "true" : "false") << "}";
  }
  os << "]}";
}

void write_health_prometheus(std::ostream& os, const HealthSnapshot& snap) {
  os << std::setprecision(17);
  auto gauge = [&os](const char* name, const char* help, double v) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << v << "\n";
  };
  auto counter = [&os](const char* name, const char* help, std::uint64_t v) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << v << "\n";
  };
  gauge("sbk_snapshot_virtual_seconds",
        "Virtual time this snapshot represents", snap.at);
  gauge("sbk_service_queue_depth", "Ingress queue depth at the snapshot",
        static_cast<double>(snap.queue_depth));
  gauge("sbk_service_backpressure", "1 while backpressure is asserted",
        snap.backpressure ? 1.0 : 0.0);
  counter("sbk_service_accepted_total", "Messages admitted to the ingress",
          snap.accepted);
  counter("sbk_service_processed_total", "Messages dispatched in batches",
          snap.processed);
  counter("sbk_service_dropped_overflow_total",
          "Messages dropped on ingress overflow", snap.dropped_overflow);
  counter("sbk_service_shed_probes_total",
          "Healthy probes shed under backpressure", snap.shed_probes);
  counter("sbk_service_batches_total", "Batches dispatched", snap.batches);
  gauge("sbk_cluster_replicated", "1 when a controller cluster is embedded",
        snap.replicated ? 1.0 : 0.0);
  gauge("sbk_cluster_term", "Current election term",
        static_cast<double>(snap.cluster_term));
  gauge("sbk_cluster_acting_member", "Member id of the acting primary",
        static_cast<double>(snap.acting_member));
  gauge("sbk_cluster_available", "1 while a usable primary is seated",
        snap.cluster_available ? 1.0 : 0.0);
  gauge("sbk_cluster_headless_backlog",
        "Reports buffered while no primary is usable",
        static_cast<double>(snap.headless_backlog));
  gauge("sbk_cluster_headless_seconds_total",
        "Cumulative virtual seconds without a usable primary",
        snap.headless_seconds);
  gauge("sbk_fabric_spare_pool", "Healthy spare switches remaining",
        static_cast<double>(snap.spare_pool));
  gauge("sbk_net_live_link_fraction", "Fraction of links currently healthy",
        snap.live_link_frac);

  if (!snap.histograms.empty()) {
    os << "# HELP sbk_latency_seconds "
          "Streaming latency quantiles per metric\n";
    os << "# TYPE sbk_latency_seconds gauge\n";
    for (const HealthHistogramStat& h : snap.histograms) {
      const std::string label = escaped(h.name);
      os << "sbk_latency_seconds{metric=\"" << label
         << "\",quantile=\"0.5\"} " << h.p50 << "\n";
      os << "sbk_latency_seconds{metric=\"" << label
         << "\",quantile=\"0.99\"} " << h.p99 << "\n";
      os << "sbk_latency_seconds{metric=\"" << label
         << "\",quantile=\"0.999\"} " << h.p999 << "\n";
      os << "sbk_latency_seconds{metric=\"" << label << "\",quantile=\"1\"} "
         << h.max << "\n";
    }
    os << "# HELP sbk_latency_count Samples recorded per metric\n";
    os << "# TYPE sbk_latency_count counter\n";
    for (const HealthHistogramStat& h : snap.histograms) {
      os << "sbk_latency_count{metric=\"" << escaped(h.name) << "\"} "
         << h.count << "\n";
    }
  }
  if (!snap.objectives.empty()) {
    os << "# HELP sbk_slo_attainment Fraction of events meeting the SLO\n";
    os << "# TYPE sbk_slo_attainment gauge\n";
    for (const HealthObjectiveStat& o : snap.objectives) {
      os << "sbk_slo_attainment{objective=\"" << escaped(o.name) << "\"} "
         << o.attainment << "\n";
    }
    os << "# HELP sbk_slo_breached 1 while the objective is in breach\n";
    os << "# TYPE sbk_slo_breached gauge\n";
    for (const HealthObjectiveStat& o : snap.objectives) {
      os << "sbk_slo_breached{objective=\"" << escaped(o.name) << "\"} "
         << (o.breached ? 1 : 0) << "\n";
    }
    os << "# HELP sbk_slo_breaches_total Breach alerts fired\n";
    os << "# TYPE sbk_slo_breaches_total counter\n";
    for (const HealthObjectiveStat& o : snap.objectives) {
      os << "sbk_slo_breaches_total{objective=\"" << escaped(o.name) << "\"} "
         << o.breaches << "\n";
    }
  }
}

void HealthLog::append(const HealthLog& other, std::uint32_t track) {
  for (const HealthSnapshot& snap : other.snapshots_) {
    snapshots_.push_back(snap);
    snapshots_.back().track = track;
  }
}

void HealthLog::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    if (i != 0) os << ",\n";
    write_health_json(os, snapshots_[i]);
  }
  os << "\n]\n";
}

std::string HealthLog::fingerprint() const {
  std::ostringstream os;
  for (const HealthSnapshot& snap : snapshots_) {
    write_health_json(os, snap);
    os << "\n";
  }
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : os.str()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  std::ostringstream fp;
  fp << "snapshots=" << snapshots_.size() << ";h=" << std::hex << hash;
  return fp.str();
}

}  // namespace sbk::obs::slo
