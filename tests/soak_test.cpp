// Soak test: one minute of simulated operations on a k=8 fabric with the
// complete control plane (keep-alive + link-probe detection, replicated
// controllers, table mirroring, background diagnosis) under a compressed
// failure storm — node failures, interface-rooted link failures, and a
// repair crew. Ends with the network whole and every invariant intact.
#include <gtest/gtest.h>

#include "control/control_plane.hpp"
#include "net/algo.hpp"
#include "util/rng.hpp"

namespace sbk {
namespace {

using control::ControlPlane;
using control::ControlPlaneConfig;
using sharebackup::DeviceState;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using topo::Layer;

TEST(Soak, OneMinuteFailureStormFullControlPlane) {
  FabricParams fp;
  fp.fat_tree.k = 8;
  fp.backups_per_group = 2;
  Fabric fabric(fp);
  sim::EventQueue q;

  ControlPlaneConfig cfg;
  cfg.detector.probe_interval = milliseconds(50);  // coarse: soak scale
  cfg.detector.miss_threshold = 2;
  cfg.diagnosis_delay = 0.5;
  ControlPlane plane(fabric, q, cfg);

  const Seconds horizon = 60.0;
  plane.start(horizon);

  std::size_t recoveries = 0;
  plane.on_recovery([&](const control::RecoveryOutcome& out, Seconds) {
    if (out.recovered && !out.failovers.empty()) ++recoveries;
  });

  // Failure storm: every ~2 s something breaks; repairs follow 5 s later.
  Rng rng(777);
  const int k = 8;
  Seconds t = 1.0;
  std::size_t injected = 0;
  while (t < horizon - 10.0) {
    t += rng.exponential(0.5);  // mean 2 s between events
    ++injected;
    if (rng.bernoulli(0.6)) {
      // Node failure at a random position.
      topo::SwitchPosition pos;
      double layer = rng.uniform_real(0.0, 1.0);
      if (layer < 0.4) {
        pos = {Layer::kEdge, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(4))};
      } else if (layer < 0.8) {
        pos = {Layer::kAgg, static_cast<int>(rng.uniform_index(k)),
               static_cast<int>(rng.uniform_index(4))};
      } else {
        pos = {Layer::kCore, -1, static_cast<int>(rng.uniform_index(16))};
      }
      q.schedule_at(t, [&fabric, pos] {
        net::NodeId node = fabric.node_at(pos);
        if (!fabric.network().node_failed(node)) {
          fabric.network().fail_node(node);
        }
      });
    } else {
      // Link failure rooted at a random endpoint interface.
      int pod = static_cast<int>(rng.uniform_index(k));
      int e = static_cast<int>(rng.uniform_index(4));
      int a = static_cast<int>(rng.uniform_index(4));
      bool edge_side = rng.bernoulli(0.5);
      q.schedule_at(t, [&fabric, pod, e, a, edge_side] {
        net::NodeId en = fabric.fat_tree().edge(pod, e);
        net::NodeId an = fabric.fat_tree().agg(pod, a);
        auto link = fabric.network().find_link(en, an);
        if (fabric.network().link_failed(*link)) return;
        std::size_t cs = fabric.cs_of_link(*link);
        net::NodeId culprit = edge_side ? en : an;
        auto pos = fabric.position_of_node(culprit);
        if (fabric.network().node_failed(culprit)) return;
        fabric.set_interface_health({fabric.device_at(*pos), cs}, false);
        fabric.network().fail_link(*link);
      });
    }
    // Repair crew pass 5 s later: fix every out-of-service device.
    q.schedule_at(t + 5.0, [&fabric, &plane] {
      for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count();
           ++d) {
        if (fabric.device_state(d) == DeviceState::kOut) {
          plane.controller().on_device_repaired(d);
        }
      }
    });
  }

  q.run();

  // Drain any last diagnosis and repairs.
  plane.controller().run_pending_diagnosis();
  for (sharebackup::DeviceUid d = 0; d < fabric.switch_device_count(); ++d) {
    if (fabric.device_state(d) == DeviceState::kOut) {
      plane.controller().on_device_repaired(d);
    }
  }

  // The storm actually happened and was handled. Transient pool
  // exhaustion is legitimate under this intensity; what matters is that
  // every parked recovery was retried once repairs replenished the pools.
  EXPECT_GT(injected, 15u);
  EXPECT_GT(recoveries, 10u);
  EXPECT_EQ(plane.reports_dropped(), 0u);
  EXPECT_EQ(plane.controller().pending_recoveries(), 0u);

  // End state: whole, consistent, mirrored.
  fabric.check_invariants();
  EXPECT_EQ(fabric.network().failed_node_count(), 0u);
  EXPECT_EQ(fabric.network().failed_link_count(), 0u);
  EXPECT_EQ(net::live_component_count(fabric.network()), 1u);
  EXPECT_EQ(fabric.realized_adjacency().size(),
            fabric.network().link_count());
  ASSERT_NE(plane.tables(), nullptr);
  plane.tables()->check_mirrored(fabric);
}

}  // namespace
}  // namespace sbk
