// Per-incident recovery timeline tracing (§5.3 made measurable). The
// paper's end-to-end claim is about a pipeline — failure injection →
// detection → controller notification → decision → circuit
// reconfiguration → table activation, with offline diagnosis and restore
// trailing in the background — and the tracer records what the simulated
// pipeline actually did as ordered spans, one incident per failed
// element, so experiments can validate measured timelines against the
// recovery_latency.hpp component model instead of trusting it.
//
// Lifecycle: an injector (test, example, failure storm) opens an
// incident with note_injection(); components that only observe an
// element mid-pipeline correlate through ensure_incident(), which
// reuses the open incident for that element or opens one at a fallback
// timestamp. Spans are half-open intervals [start, end] in simulation
// seconds; a point-in-time event is a zero-length span. close_incident()
// marks the element recovered; trailing background spans (diagnosis,
// restore) may still be appended afterwards, and a new failure of the
// same element opens a fresh incident.
#pragma once

#include <cstddef>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace sbk::obs {

/// Canonical element names, shared by everything that correlates spans
/// (detector, controller, injectors). Keep these in sync or incidents
/// split.
[[nodiscard]] std::string element_for_node(std::string_view node_name);
[[nodiscard]] std::string element_for_link(std::string_view name_a,
                                           std::string_view name_b);

struct RecoverySpan {
  std::string stage;  ///< "injection", "detection", "notification", ...
  Seconds start = 0.0;
  Seconds end = 0.0;
  [[nodiscard]] Seconds duration() const noexcept { return end - start; }
};

struct RecoveryIncident {
  std::size_t id = 0;
  std::string element;
  Seconds injected_at = 0.0;
  /// Set by close_incident(); negative while the element is unrecovered.
  Seconds recovered_at = -1.0;
  bool closed = false;
  std::vector<RecoverySpan> spans;

  [[nodiscard]] const RecoverySpan* span(std::string_view stage) const;
};

class RecoveryTracer {
 public:
  static constexpr std::size_t kNoIncident =
      std::numeric_limits<std::size_t>::max();

  explicit RecoveryTracer(bool enabled = true) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Opens a new incident for `element` at injection time `at`, closing
  /// over any still-open incident for the same element (a re-failure
  /// before recovery is a new incident). Records an "injection" point
  /// span. Returns kNoIncident when disabled.
  std::size_t note_injection(std::string element, Seconds at);

  /// The open incident for `element`, or a fresh one injected at
  /// `fallback_injected_at` when the injector did not announce itself
  /// (e.g. a failure storm driving the network directly). Returns
  /// kNoIncident when disabled.
  std::size_t ensure_incident(std::string_view element,
                              Seconds fallback_injected_at);

  /// Appends a span; no-op for kNoIncident / disabled tracer.
  void add_span(std::size_t incident, std::string_view stage, Seconds start,
                Seconds end);

  /// Marks the incident's element recovered at `at`. Idempotent.
  void close_incident(std::size_t incident, Seconds at);

  [[nodiscard]] Seconds injected_at(std::size_t incident) const;
  [[nodiscard]] const std::vector<RecoveryIncident>& incidents()
      const noexcept {
    return incidents_;
  }

  /// True iff spans, in recorded order, never run backwards: every span
  /// has end >= start and starts no earlier than the previous span's
  /// start (stages overlap only at boundaries in the modeled pipeline,
  /// but background spans may attach later at larger timestamps).
  [[nodiscard]] static bool spans_monotone(const RecoveryIncident& incident,
                                           Seconds eps = 1e-9);

  /// True iff every recorded incident satisfies spans_monotone — the
  /// end-of-run invariant the chaos soak asserts over whole schedules.
  [[nodiscard]] bool all_spans_monotone(Seconds eps = 1e-9) const;

  /// One row per span:
  /// incident,element,injected_at,recovered_at,stage,start,end,duration
  /// (recovered_at empty while the incident is open).
  void write_csv(std::ostream& out) const;
  /// JSON array of incidents with nested span arrays.
  void write_json(std::ostream& out) const;

 private:
  bool enabled_;
  std::vector<RecoveryIncident> incidents_;
  std::unordered_map<std::string, std::size_t> open_by_element_;
};

}  // namespace sbk::obs
