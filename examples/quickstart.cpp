// Quickstart: build a ShareBackup fabric, kill a switch, watch a backup
// take its place through circuit reconfiguration, and verify the network
// is whole again — the library's core loop in ~80 lines.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "control/controller.hpp"
#include "net/algo.hpp"
#include "sharebackup/fabric.hpp"

using namespace sbk;

int main() {
  // A k=6 fat-tree (54 hosts) with n=1 shared backup per failure group.
  sharebackup::FabricParams params;
  params.fat_tree.k = 6;
  params.backups_per_group = 1;
  params.technology = sharebackup::CircuitTechnology::kElectricalCrosspoint;
  sharebackup::Fabric fabric(params);

  auto census = fabric.census();
  std::printf("ShareBackup fabric: k=%d, n=%d\n", fabric.k(), fabric.n());
  std::printf("  %d hosts, %zu packet switches (%zu of them backups)\n",
              fabric.fat_tree().host_count(), fabric.switch_device_count(),
              census.backup_switches);
  std::printf("  %zu circuit switches across %zu failure groups\n\n",
              census.circuit_switches, census.failure_groups);

  control::Controller controller(fabric, control::ControllerConfig{});

  // Aggregation switch (pod 2, index 1) dies.
  topo::SwitchPosition pos{topo::Layer::kAgg, 2, 1};
  net::NodeId node = fabric.node_at(pos);
  std::printf("Failing %s (served by %s)...\n",
              fabric.network().node(node).name.c_str(),
              fabric.device(fabric.device_at(pos)).name.c_str());
  fabric.network().fail_node(node);
  std::printf("  network now has %zu failed node(s); connected components: "
              "%zu\n",
              fabric.network().failed_node_count(),
              net::live_component_count(fabric.network()));

  // The controller allocates a backup and reconfigures the circuits.
  control::RecoveryOutcome outcome = controller.on_switch_failure(pos);
  if (!outcome.recovered) {
    std::printf("recovery failed: %s\n", outcome.detail.c_str());
    return 1;
  }
  const auto& report = outcome.failovers.front();
  std::printf("\nRecovered: %s -> %s\n",
              fabric.device(report.failed_device).name.c_str(),
              fabric.device(report.replacement).name.c_str());
  std::printf("  %zu circuit switches reconfigured in parallel "
              "(%.0f ns each)\n",
              report.circuit_switches_touched,
              report.reconfiguration_latency * 1e9);
  std::printf("  control-path latency: %.0f us; end-to-end (incl. "
              "detection): %.2f ms\n",
              outcome.control_latency * 1e6,
              controller.end_to_end_recovery_latency() * 1e3);

  std::printf("  failed node restored: %s; components: %zu\n",
              fabric.network().node_failed(node) ? "no" : "yes",
              net::live_component_count(fabric.network()));

  // The realized circuits again form exactly the fat-tree adjacency.
  fabric.check_invariants();
  std::printf("  realized circuit adjacency matches the fat-tree: %s\n",
              fabric.realized_adjacency().size() ==
                      fabric.network().link_count()
                  ? "yes"
                  : "no");

  // The pulled switch is repaired later and becomes the group's backup.
  controller.on_device_repaired(report.failed_device);
  std::printf("\nRepaired %s; it is now the group's spare "
              "(roles stay fluid, no switch-back).\n",
              fabric.device(report.failed_device).name.c_str());
  return 0;
}
