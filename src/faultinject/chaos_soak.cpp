#include "faultinject/chaos_soak.hpp"

#include <exception>
#include <sstream>

#include "control/control_plane.hpp"
#include "obs/recovery_tracer.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/event_queue.hpp"

namespace sbk::faultinject {

ChaosScenarioResult run_chaos_scenario(const ChaosSoakConfig& config,
                                       const sweep::ScenarioSpec& spec) {
  ChaosScenarioResult result;
  result.seed = spec.seed;

  sharebackup::FabricParams fp;
  fp.fat_tree.k = config.k;
  fp.backups_per_group = config.backups_per_group;
  sharebackup::Fabric fabric(fp);

  sim::EventQueue queue;
  control::ControlPlaneConfig pc;
  pc.cluster_members = config.cluster_members;
  pc.diagnosis_delay = config.diagnosis_delay;
  pc.detector.report_retry_interval = config.report_retry_interval;
  control::ControlPlane plane(fabric, queue, pc);
  obs::RecoveryTracer tracer;
  plane.attach_tracer(&tracer);

  FaultPlan fault_plan =
      FaultPlan::generate(fabric, config.plan, spec.seed);
  ChaosInjector injector(fabric, plane, queue, fault_plan);
  plane.start(config.plan.horizon);
  injector.arm();

  try {
    queue.run();
  } catch (const std::exception& e) {
    result.violations.push_back(std::string("exception during run: ") +
                                e.what());
  }

  for (std::string& v : injector.verify(&tracer)) {
    result.violations.push_back(std::move(v));
  }

  result.failures_injected = injector.stats().switch_failures_injected +
                             injector.stats().link_failures_injected;
  const control::ControllerStats& cs = plane.controller().stats();
  result.failovers = cs.failovers;
  result.retries = cs.retries;
  result.degraded_reroutes = cs.degraded_reroutes;
  result.requeued = cs.requeued;
  result.watchdog_trips = cs.watchdog_trips;
  result.reports_lost = plane.reports_lost();
  result.reports_buffered = plane.reports_buffered();
  return result;
}

ChaosSoakReport run_chaos_soak(const ChaosSoakConfig& config) {
  sweep::SweepConfig sc;
  sc.master_seed = config.master_seed;
  sc.threads = config.threads;
  sweep::SweepRunner runner(sc);
  ChaosSoakReport report;
  report.scenarios =
      runner.run(config.scenarios, [&config](const sweep::ScenarioSpec& s) {
        return run_chaos_scenario(config, s);
      });
  return report;
}

std::size_t ChaosSoakReport::total_violations() const {
  std::size_t n = 0;
  for (const ChaosScenarioResult& s : scenarios) n += s.violations.size();
  return n;
}

std::string ChaosSoakReport::summary() const {
  std::size_t injected = 0, failovers = 0, retries = 0, degraded = 0,
              requeued = 0, trips = 0, lost = 0, buffered = 0;
  for (const ChaosScenarioResult& s : scenarios) {
    injected += s.failures_injected;
    failovers += s.failovers;
    retries += s.retries;
    degraded += s.degraded_reroutes;
    requeued += s.requeued;
    trips += s.watchdog_trips;
    lost += s.reports_lost;
    buffered += s.reports_buffered;
  }
  std::ostringstream os;
  os << "chaos soak: " << scenarios.size() << " scenarios, " << injected
     << " failures injected, " << failovers << " failovers, " << retries
     << " command retries, " << degraded << " degraded reroutes, "
     << requeued << " requeues, " << trips << " watchdog trips, " << lost
     << " reports lost, " << buffered << " reports buffered\n";
  if (clean()) {
    os << "invariants: CLEAN (0 violations)\n";
  } else {
    os << "invariants: " << total_violations() << " VIOLATION(S)\n";
    for (const ChaosScenarioResult& s : scenarios) {
      for (const std::string& v : s.violations) {
        os << "  [seed " << s.seed << "] " << v << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace sbk::faultinject
