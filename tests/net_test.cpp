// Unit tests for src/net: graph construction, failure state, link
// surgery, paths, and search algorithms.
#include <gtest/gtest.h>

#include "net/algo.hpp"
#include "net/network.hpp"
#include "net/path.hpp"
#include "util/assert.hpp"

namespace sbk::net {
namespace {

Network diamond() {
  // a - b - d and a - c - d (two disjoint 2-hop paths).
  Network net;
  NodeId a = net.add_node(NodeKind::kEdgeSwitch, "a");
  NodeId b = net.add_node(NodeKind::kAggSwitch, "b");
  NodeId c = net.add_node(NodeKind::kAggSwitch, "c");
  NodeId d = net.add_node(NodeKind::kEdgeSwitch, "d");
  net.add_link(a, b, 1.0);
  net.add_link(b, d, 1.0);
  net.add_link(a, c, 1.0);
  net.add_link(c, d, 1.0);
  return net;
}

TEST(Network, ConstructionBasics) {
  Network net = diamond();
  EXPECT_EQ(net.node_count(), 4u);
  EXPECT_EQ(net.link_count(), 4u);
  EXPECT_EQ(net.node(NodeId(0)).name, "a");
  EXPECT_EQ(net.adjacent(NodeId(0)).size(), 2u);
  EXPECT_TRUE(net.find_link(NodeId(0), NodeId(1)).has_value());
  EXPECT_FALSE(net.find_link(NodeId(0), NodeId(3)).has_value());
}

TEST(Network, RejectsSelfLoopsAndBadCapacity) {
  Network net;
  NodeId a = net.add_node(NodeKind::kHost, "a");
  NodeId b = net.add_node(NodeKind::kHost, "b");
  EXPECT_THROW(net.add_link(a, a, 1.0), ContractViolation);
  EXPECT_THROW(net.add_link(a, b, 0.0), ContractViolation);
  EXPECT_THROW(net.add_link(a, b, -1.0), ContractViolation);
}

TEST(Network, DirectedLinkOrientation) {
  Network net = diamond();
  LinkId ab = *net.find_link(NodeId(0), NodeId(1));
  DirectedLink fwd = net.directed(ab, NodeId(0));
  EXPECT_EQ(net.tail(fwd), NodeId(0));
  EXPECT_EQ(net.head(fwd), NodeId(1));
  DirectedLink rev = net.directed(ab, NodeId(1));
  EXPECT_EQ(net.tail(rev), NodeId(1));
  EXPECT_EQ(net.head(rev), NodeId(0));
  EXPECT_THROW((void)net.directed(ab, NodeId(3)), ContractViolation);
}

TEST(Network, FailureFlagsAndCounters) {
  Network net = diamond();
  LinkId ab = *net.find_link(NodeId(0), NodeId(1));
  EXPECT_TRUE(net.usable(ab));
  net.fail_link(ab);
  net.fail_link(ab);  // idempotent
  EXPECT_EQ(net.failed_link_count(), 1u);
  EXPECT_FALSE(net.usable(ab));
  net.restore_link(ab);
  EXPECT_EQ(net.failed_link_count(), 0u);

  net.fail_node(NodeId(1));
  EXPECT_EQ(net.failed_node_count(), 1u);
  EXPECT_FALSE(net.usable(ab));  // endpoint down makes link unusable
  net.clear_failures();
  EXPECT_EQ(net.failed_node_count(), 0u);
  EXPECT_TRUE(net.usable(ab));
}

TEST(Network, TopologyAndStructureVersionEpochs) {
  Network net = diamond();
  LinkId ab = *net.find_link(NodeId(0), NodeId(1));
  const std::uint64_t s0 = net.structure_version();

  // Every routing-relevant mutation bumps topology_version...
  std::uint64_t t = net.topology_version();
  net.fail_link(ab);
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();
  net.fail_link(ab);  // idempotent: no state change, no bump
  EXPECT_EQ(net.topology_version(), t);
  net.restore_link(ab);
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();
  net.restore_link(ab);  // already live: no bump
  EXPECT_EQ(net.topology_version(), t);

  net.fail_node(NodeId(1));
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();
  net.fail_node(NodeId(1));
  EXPECT_EQ(net.topology_version(), t);
  net.restore_node(NodeId(1));
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();

  net.clear_failures();  // nothing failed: no bump
  EXPECT_EQ(net.topology_version(), t);
  net.fail_link(ab);
  net.clear_failures();
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();

  net.set_link_capacity(ab, 2.0);
  EXPECT_GT(net.topology_version(), t);
  t = net.topology_version();
  net.set_link_capacity(ab, 2.0);  // unchanged capacity: no bump
  EXPECT_EQ(net.topology_version(), t);
  t = net.topology_version();

  // ...but only wiring changes bump structure_version, so structural
  // caches survive failure/capacity churn.
  EXPECT_EQ(net.structure_version(), s0);
  net.retarget_link(ab, NodeId(1), NodeId(3));
  EXPECT_GT(net.topology_version(), t);
  EXPECT_GT(net.structure_version(), s0);
  const std::uint64_t s1 = net.structure_version();
  t = net.topology_version();
  net.add_link(NodeId(1), NodeId(2), 1.0);
  EXPECT_GT(net.topology_version(), t);
  EXPECT_GT(net.structure_version(), s1);
}

TEST(Network, RetargetLinkMovesEndpointAndAdjacency) {
  Network net = diamond();
  NodeId a(0), b(1), c(2);
  LinkId ab = *net.find_link(a, b);
  net.retarget_link(ab, b, NodeId(3));
  EXPECT_FALSE(net.find_link(a, b).has_value());
  EXPECT_TRUE(net.find_link(a, NodeId(3)).has_value());
  // Peer adjacency updated too.
  bool found = false;
  for (const Adjacency& adj : net.adjacent(a)) {
    if (adj.link == ab) {
      EXPECT_EQ(adj.peer, NodeId(3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(net.retarget_link(ab, b, c), ContractViolation);  // b no longer endpoint
}

TEST(Path, ValidityChecks) {
  Network net = diamond();
  NodeId a(0), b(1), d(3);
  LinkId ab = *net.find_link(a, b);
  LinkId bd = *net.find_link(b, d);
  Path good{{a, b, d}, {ab, bd}};
  EXPECT_TRUE(is_valid_path(net, good));
  EXPECT_EQ(good.hops(), 2u);
  EXPECT_EQ(good.src(), a);
  EXPECT_EQ(good.dst(), d);

  Path wrong_link{{a, b, d}, {bd, ab}};
  EXPECT_FALSE(is_valid_path(net, wrong_link));
  Path size_mismatch{{a, b}, {ab, bd}};
  EXPECT_FALSE(is_valid_path(net, size_mismatch));
  Path repeated{{a, b, a}, {ab, ab}};
  EXPECT_FALSE(is_valid_path(net, repeated));
  EXPECT_TRUE(is_valid_path(net, Path{}));
}

TEST(Path, WalksMayRevisitNodesButPathsMayNot) {
  // a - b - a is a valid walk (bounce) but not a simple path.
  Network net = diamond();
  NodeId a(0), b(1);
  LinkId ab = *net.find_link(a, b);
  Path bounce{{a, b, a}, {ab, ab}};
  EXPECT_TRUE(is_valid_walk(net, bounce));
  EXPECT_FALSE(is_valid_path(net, bounce));
  // Mismatched links invalidate walks too.
  Path wrong{{a, b, a}, {ab, *net.find_link(NodeId(1), NodeId(3))}};
  EXPECT_FALSE(is_valid_walk(net, wrong));
}

TEST(Path, LivenessTracksFailures) {
  Network net = diamond();
  NodeId a(0), b(1), d(3);
  Path p{{a, b, d},
         {*net.find_link(a, b), *net.find_link(b, d)}};
  EXPECT_TRUE(is_live_path(net, p));
  net.fail_node(b);
  EXPECT_FALSE(is_live_path(net, p));
  net.restore_node(b);
  net.fail_link(p.links[1]);
  EXPECT_FALSE(is_live_path(net, p));
}

TEST(Path, DirectedLinksFollowTraversalOrder) {
  Network net = diamond();
  NodeId a(0), b(1), d(3);
  Path p{{a, b, d}, {*net.find_link(a, b), *net.find_link(b, d)}};
  auto dls = p.directed_links(net);
  ASSERT_EQ(dls.size(), 2u);
  EXPECT_EQ(net.tail(dls[0]), a);
  EXPECT_EQ(net.head(dls[0]), b);
  EXPECT_EQ(net.tail(dls[1]), b);
  EXPECT_EQ(net.head(dls[1]), d);
}

TEST(Algo, BfsDistances) {
  Network net = diamond();
  auto dist = bfs_distances(net, NodeId(0));
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(Algo, ShortestPathAvoidsFailures) {
  Network net = diamond();
  NodeId a(0), b(1), d(3);
  Path p = shortest_path(net, a, d);
  EXPECT_EQ(p.hops(), 2u);
  net.fail_node(b);
  Path q = shortest_path(net, a, d);
  EXPECT_EQ(q.hops(), 2u);
  EXPECT_FALSE(path_uses_node(q, b));
  net.fail_node(NodeId(2));
  EXPECT_TRUE(shortest_path(net, a, d).empty());
}

TEST(Algo, AllShortestPathsEnumeratesBoth) {
  Network net = diamond();
  auto paths = all_shortest_paths(net, NodeId(0), NodeId(3));
  EXPECT_EQ(paths.size(), 2u);
  for (const Path& p : paths) {
    EXPECT_TRUE(is_valid_path(net, p));
    EXPECT_EQ(p.hops(), 2u);
  }
}

TEST(Algo, HostsDoNotTransit) {
  // a - h - b where h is a host: no path a->b through h.
  Network net;
  NodeId a = net.add_node(NodeKind::kEdgeSwitch, "a");
  NodeId h = net.add_node(NodeKind::kHost, "h");
  NodeId b = net.add_node(NodeKind::kEdgeSwitch, "b");
  net.add_link(a, h, 1.0);
  net.add_link(h, b, 1.0);
  EXPECT_TRUE(shortest_path(net, a, b).empty());
  // But a host endpoint is reachable.
  EXPECT_EQ(shortest_path(net, a, h).hops(), 1u);
  // And with the restriction lifted, transit works.
  TraversalOptions opts;
  opts.hosts_are_endpoints_only = false;
  EXPECT_EQ(shortest_path(net, a, b, opts).hops(), 2u);
}

TEST(Algo, LiveComponentCount) {
  Network net = diamond();
  EXPECT_EQ(live_component_count(net), 1u);
  net.fail_node(NodeId(1));
  net.fail_node(NodeId(2));
  EXPECT_EQ(live_component_count(net), 2u);  // a and d separated
}

TEST(Algo, SelfPathsAndUnreachable) {
  Network net = diamond();
  Path self = shortest_path(net, NodeId(0), NodeId(0));
  EXPECT_EQ(self.nodes.size(), 1u);
  EXPECT_EQ(self.hops(), 0u);
  EXPECT_TRUE(reachable(net, NodeId(0), NodeId(3)));
  net.fail_node(NodeId(3));
  EXPECT_FALSE(reachable(net, NodeId(0), NodeId(3)));
}

}  // namespace
}  // namespace sbk::net
