// k-ary fat-tree builder (Al-Fares et al., SIGCOMM'08) with optional
// F10-style AB wiring (Liu et al., NSDI'13) between the aggregation and
// core layers.
//
// Structure of a k-ary fat-tree:
//   * k pods; each pod has k/2 edge switches and k/2 aggregation switches;
//   * (k/2)^2 core switches;
//   * edge j in a pod connects to every aggregation switch in the pod;
//   * plain wiring: aggregation switch j (in every pod) connects to the
//     k/2 cores j*(k/2) .. j*(k/2)+k/2-1 ("row j");
//   * AB wiring: pods alternate type A (plain) and type B (transpose:
//     aggregation j connects to cores i*(k/2)+j, i.e. "column j"), which
//     is what gives F10 its local rerouting options;
//   * each edge switch serves hosts_per_edge hosts (k/2 in the canonical
//     fat-tree; 1 when hosts model whole racks, as in the paper's §2.2
//     experiments on rack-level traffic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"

namespace sbk::topo {

/// Agg-core wiring scheme.
enum class Wiring : std::uint8_t {
  kPlain,  ///< canonical fat-tree
  kAb,     ///< F10 AB tree: odd pods use transposed core wiring
};

/// Build-time parameters. `k` must be even and >= 4.
struct FatTreeParams {
  int k = 4;
  Wiring wiring = Wiring::kPlain;
  /// Hosts attached to each edge switch; defaults to k/2 when 0.
  int hosts_per_edge = 0;
  /// Capacity of host-edge links. Setting this above
  /// edge_capacity * (k/2) models an oversubscribed edge when
  /// hosts_per_edge == 1 (rack-aggregate hosts), e.g. 10:1 in the paper.
  double host_link_capacity = 1.0;
  /// Capacity of edge-agg links.
  double edge_agg_capacity = 1.0;
  /// Capacity of agg-core links.
  double agg_core_capacity = 1.0;
};

/// An immutable-topology fat-tree over a mutable-failure-state Network.
/// Provides the index <-> NodeId maps every other module needs.
class FatTree {
 public:
  explicit FatTree(const FatTreeParams& params);

  [[nodiscard]] const FatTreeParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] int k() const noexcept { return params_.k; }
  [[nodiscard]] int half_k() const noexcept { return params_.k / 2; }
  [[nodiscard]] int pods() const noexcept { return params_.k; }
  [[nodiscard]] int hosts_per_edge() const noexcept {
    return params_.hosts_per_edge;
  }
  [[nodiscard]] int core_count() const noexcept {
    return half_k() * half_k();
  }
  [[nodiscard]] int host_count() const noexcept {
    return pods() * half_k() * hosts_per_edge();
  }

  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] const net::Network& network() const noexcept { return net_; }

  // --- id lookups ---------------------------------------------------------
  [[nodiscard]] net::NodeId edge(int pod, int j) const;
  [[nodiscard]] net::NodeId agg(int pod, int j) const;
  [[nodiscard]] net::NodeId core(int c) const;
  /// Host `h` of edge switch `j` in `pod`, h in [0, hosts_per_edge).
  [[nodiscard]] net::NodeId host(int pod, int j, int h) const;
  /// Host by global index in [0, host_count()).
  [[nodiscard]] net::NodeId host(int global_index) const;
  [[nodiscard]] int host_global_index(net::NodeId host) const;

  [[nodiscard]] const std::vector<net::NodeId>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& cores() const noexcept {
    return cores_;
  }
  /// All edge (resp. agg) switches, pod-major then index order.
  [[nodiscard]] const std::vector<net::NodeId>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& aggs() const noexcept {
    return aggs_;
  }
  /// Every switch (edge, agg, core), in that order.
  [[nodiscard]] std::vector<net::NodeId> all_switches() const;

  // --- structural queries ---------------------------------------------------
  /// Pod of a host/edge/agg node (precondition: node is in a pod).
  [[nodiscard]] int pod_of(net::NodeId node) const;
  /// In-pod index of an edge/agg switch.
  [[nodiscard]] int index_of(net::NodeId node) const;
  /// Edge switch a host attaches to.
  [[nodiscard]] net::NodeId edge_of_host(net::NodeId host) const;
  /// The aggregation switch adjacent to `core` inside `pod` (by wiring).
  [[nodiscard]] net::NodeId agg_for_core(int core_index, int pod) const;
  /// Core indices adjacent to aggregation switch (pod, j), ascending.
  [[nodiscard]] std::vector<int> cores_of_agg(int pod, int j) const;

  /// Link between a host and its edge switch.
  [[nodiscard]] net::LinkId host_link(net::NodeId host) const;

 private:
  void build();

  FatTreeParams params_;
  net::Network net_;
  std::vector<net::NodeId> hosts_;         // global host index
  std::vector<net::NodeId> edges_;         // pod * k/2 + j
  std::vector<net::NodeId> aggs_;          // pod * k/2 + j
  std::vector<net::NodeId> cores_;         // core index
  std::vector<int> host_index_of_node_;    // NodeId.index -> global host idx
};

/// Human-readable switch names used by the builders, e.g. "E[2,1]".
[[nodiscard]] std::string edge_name(int pod, int j);
[[nodiscard]] std::string agg_name(int pod, int j);
[[nodiscard]] std::string core_name(int c);
[[nodiscard]] std::string host_name(int global_index);

}  // namespace sbk::topo
