// Experiment E4 — Table 2: cost equations of fat-tree, ShareBackup,
// Aspen Tree, and 1:1 backup, evaluated with the paper's market prices
// for electrical (E-DC) and optical (O-DC) data centers.
#include <cstdio>

#include "bench_util.hpp"
#include "cost/cost_model.hpp"

using namespace sbk;
using namespace sbk::cost;

namespace {

void print_medium(Medium medium, const char* label) {
  PriceSet p = PriceSet::for_medium(medium);
  std::printf("\n--- %s (a=$%.0f/circuit port, b=$%.0f/packet port, "
              "c=$%.0f/link) ---\n",
              label, p.circuit_port_a, p.packet_port_b, p.link_c);
  std::printf("%-6s %-4s %16s %18s %16s %16s\n", "k", "n", "fat-tree ($)",
              "ShareBackup(+$)", "AspenTree(+$)", "1:1 backup(+$)");
  for (int k : {16, 32, 48, 64}) {
    for (int n : {1, 4}) {
      CostBreakdown base = fat_tree_cost(k, p);
      CostBreakdown sb = sharebackup_additional(k, n, p);
      CostBreakdown aspen = aspen_additional(k, p);
      CostBreakdown one = one_to_one_additional(k, p);
      std::printf("%-6d %-4d %16.0f %18.0f %16.0f %16.0f\n", k, n,
                  base.total(), sb.total(), aspen.total(), one.total());
      bench::csv_row({label, std::to_string(k), std::to_string(n),
                      bench::fmt(base.total(), 10), bench::fmt(sb.total(), 10),
                      bench::fmt(aspen.total(), 10),
                      bench::fmt(one.total(), 10)});
    }
  }
}

}  // namespace

int main() {
  bench::banner("E4 / Table 2 — architecture cost model",
                "Cost equations evaluated with the paper's market prices. "
                "Check: k=48, n=1 gives ShareBackup +6.7% (E-DC) and "
                "+13.3% (O-DC) over fat-tree.");
  print_medium(Medium::kElectrical, "E-DC");
  print_medium(Medium::kOptical, "O-DC");

  std::printf("\nHeadline ratios (k=48, n=1):\n");
  for (Medium m : {Medium::kElectrical, Medium::kOptical}) {
    PriceSet p = PriceSet::for_medium(m);
    auto base = fat_tree_cost(48, p);
    auto sb = sharebackup_additional(48, 1, p);
    auto aspen = aspen_additional(48, p);
    std::printf("  %s: ShareBackup additional = %s of fat-tree; "
                "Aspen additional = %.1fx ShareBackup's\n",
                m == Medium::kElectrical ? "E-DC" : "O-DC",
                bench::fmt_pct(relative_additional(sb, base), 1).c_str(),
                aspen.total() / sb.total());
  }
  std::printf("\nStructural counts behind the ShareBackup terms (k=48, n=1):\n");
  auto counts = sharebackup_counts(48, 1);
  std::printf("  backup switches: %lld (= 5/2 kn), circuit switches: %lld "
              "(= 3/2 k^2),\n  priced circuit ports: %lld "
              "(= 3/2 k^2 (k/2+n+2)), extra cables: %.0f (= 5/4 k^2 n)\n",
              counts.backup_switches, counts.circuit_switches,
              counts.priced_circuit_ports, counts.extra_cables);
  return 0;
}
