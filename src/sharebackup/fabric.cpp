#include "sharebackup/fabric.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::sharebackup {

namespace {
std::string cs_name(int cs_layer, int pod, int m) {
  return "CS[" + std::to_string(cs_layer) + ',' + std::to_string(pod) + ',' +
         std::to_string(m) + ']';
}
}  // namespace

Fabric::Fabric(const FabricParams& params)
    : params_(params), ft_(params.fat_tree) {
  SBK_EXPECTS_MSG(params_.fat_tree.wiring == topo::Wiring::kPlain,
                  "ShareBackup builds on the plain-wired fat-tree");
  SBK_EXPECTS(params_.backups_per_group >= 0);
  build_devices();
  build_circuit_switches();
  wire_defaults();
  check_invariants();
}

DeviceUid Fabric::new_device(bool is_host, Layer layer, int grp,
                             std::string name) {
  DeviceUid uid = static_cast<DeviceUid>(devices_.size());
  devices_.push_back(PhysicalDevice{uid, is_host, layer, grp, std::move(name)});
  device_state_.push_back(DeviceState::kInService);
  device_ports_.emplace_back();
  iface_unhealthy_.emplace_back();
  if (!is_host) ++switch_devices_;
  return uid;
}

void Fabric::build_devices() {
  const int k = ft_.k();
  const int half = ft_.half_k();

  auto build_group = [&](Layer layer, int id, const char* tag) {
    const int n = params_.backups_for(layer);
    Group g;
    g.layer = layer;
    g.id = id;
    for (int s = 0; s < half; ++s) {
      DeviceUid uid = new_device(false, layer, id,
                                 std::string("SW-") + tag + '-' +
                                     std::to_string(id) + '-' +
                                     std::to_string(s));
      g.assigned.push_back(uid);
    }
    for (int b = 0; b < n; ++b) {
      DeviceUid uid = new_device(false, layer, id,
                                 std::string("BS-") + tag + '-' +
                                     std::to_string(id) + '-' +
                                     std::to_string(b));
      device_state_[uid] = DeviceState::kSpare;
      g.spare.push_back(uid);
    }
    return g;
  };

  for (int pod = 0; pod < k; ++pod) {
    edge_groups_.push_back(build_group(Layer::kEdge, pod, "edge"));
  }
  for (int pod = 0; pod < k; ++pod) {
    agg_groups_.push_back(build_group(Layer::kAgg, pod, "agg"));
  }
  for (int u = 0; u < half; ++u) {
    core_groups_.push_back(build_group(Layer::kCore, u, "core"));
  }

  // Hosts as (non-replaceable) devices so layer-1 cables have endpoints.
  host_device_.reserve(static_cast<std::size_t>(ft_.host_count()));
  for (int h = 0; h < ft_.host_count(); ++h) {
    host_device_.push_back(
        new_device(true, Layer::kEdge, -1, "HOST-" + std::to_string(h)));
  }
}

std::size_t Fabric::cs_index(int cs_layer, int pod, int m) const {
  const int k = ft_.k();
  const int half = ft_.half_k();
  const int hpe = static_cast<int>(cs_layer1_per_pod_);
  SBK_EXPECTS(pod >= 0 && pod < k);
  switch (cs_layer) {
    case 1:
      SBK_EXPECTS(m >= 0 && m < hpe);
      return static_cast<std::size_t>(pod) * hpe + m;
    case 2:
      SBK_EXPECTS(m >= 0 && m < half);
      return static_cast<std::size_t>(k) * hpe +
             static_cast<std::size_t>(pod) * half + m;
    case 3:
      SBK_EXPECTS(m >= 0 && m < half);
      return static_cast<std::size_t>(k) * hpe +
             static_cast<std::size_t>(k) * half +
             static_cast<std::size_t>(pod) * half + m;
    default:
      SBK_UNREACHABLE("circuit-switch layer must be 1, 2, or 3");
  }
}

void Fabric::register_port(DeviceUid dev, std::size_t cs, int port) {
  device_ports_[dev].push_back(DevicePort{cs, port});
  iface_unhealthy_[dev].push_back(0);
}

void Fabric::build_circuit_switches() {
  const int k = ft_.k();
  const int half = ft_.half_k();
  const int hpe = ft_.hosts_per_edge();
  const int n_edge = params_.backups_for(Layer::kEdge);
  const int n_agg = params_.backups_for(Layer::kAgg);
  const int n_core = params_.backups_for(Layer::kCore);
  cs_layer1_per_pod_ = static_cast<std::size_t>(hpe);

  // Interface index conventions per device:
  //   edge:  0..hpe-1 down (one per layer-1 CS), hpe..hpe+half-1 up;
  //   agg:   0..half-1 down, half..k-1 up;
  //   core:  0..k-1, one per pod;
  //   host:  0 (single NIC).
  switches_.reserve(static_cast<std::size_t>(k) * (hpe + 2 * half));
  for (int pod = 0; pod < k; ++pod) {
    for (int m = 0; m < hpe; ++m) {
      // South side: hosts (no backups exist, ports kept for symmetry).
      switches_.emplace_back(cs_name(1, pod, m), half, n_edge, n_edge);
    }
  }
  for (int pod = 0; pod < k; ++pod) {
    for (int m = 0; m < half; ++m) {
      switches_.emplace_back(cs_name(2, pod, m), half, n_edge, n_agg);
    }
  }
  for (int pod = 0; pod < k; ++pod) {
    for (int m = 0; m < half; ++m) {
      switches_.emplace_back(cs_name(3, pod, m), half, n_agg, n_core);
    }
  }

  auto attach = [&](std::size_t cs, PortClass cls, int slot, DeviceUid dev,
                    int iface) {
    CircuitSwitch& sw = switches_[cs];
    int port = sw.port(cls, slot);
    sw.attach_device(port, dev, iface);
    register_port(dev, cs, port);
  };

  for (int pod = 0; pod < k; ++pod) {
    Group& eg = edge_groups_[static_cast<std::size_t>(pod)];
    Group& ag = agg_groups_[static_cast<std::size_t>(pod)];

    // Layer 1: hosts (south) <-> edge switches (north).
    for (int m = 0; m < hpe; ++m) {
      std::size_t cs = cs_index(1, pod, m);
      eg.circuit_switches.push_back(cs);
      for (int j = 0; j < half; ++j) {
        int host_global = (pod * half + j) * hpe + m;
        attach(cs, PortClass::kSouthRegular, j,
               host_device_[static_cast<std::size_t>(host_global)], 0);
        attach(cs, PortClass::kNorthRegular, j, eg.assigned[static_cast<std::size_t>(j)], m);
      }
      for (int b = 0; b < n_edge; ++b) {
        attach(cs, PortClass::kNorthBackup, b, eg.spare[static_cast<std::size_t>(b)], m);
      }
      // South backup ports stay uncabled: there are no backup hosts.
    }

    // Layer 2: edges (south) <-> aggs (north).
    for (int m = 0; m < half; ++m) {
      std::size_t cs = cs_index(2, pod, m);
      eg.circuit_switches.push_back(cs);
      ag.circuit_switches.push_back(cs);
      for (int e = 0; e < half; ++e) {
        attach(cs, PortClass::kSouthRegular, e, eg.assigned[static_cast<std::size_t>(e)],
               hpe + m);
      }
      for (int b = 0; b < n_edge; ++b) {
        attach(cs, PortClass::kSouthBackup, b, eg.spare[static_cast<std::size_t>(b)],
               hpe + m);
      }
      for (int a = 0; a < half; ++a) {
        attach(cs, PortClass::kNorthRegular, a, ag.assigned[static_cast<std::size_t>(a)], m);
      }
      for (int b = 0; b < n_agg; ++b) {
        attach(cs, PortClass::kNorthBackup, b, ag.spare[static_cast<std::size_t>(b)], m);
      }
    }

    // Layer 3: aggs (south) <-> cores (north). The m-th switch serves the
    // core failure group m (cores ≡ m mod k/2).
    for (int m = 0; m < half; ++m) {
      std::size_t cs = cs_index(3, pod, m);
      ag.circuit_switches.push_back(cs);
      Group& cg = core_groups_[static_cast<std::size_t>(m)];
      cg.circuit_switches.push_back(cs);
      for (int a = 0; a < half; ++a) {
        attach(cs, PortClass::kSouthRegular, a, ag.assigned[static_cast<std::size_t>(a)],
               half + m);
      }
      for (int b = 0; b < n_agg; ++b) {
        attach(cs, PortClass::kSouthBackup, b, ag.spare[static_cast<std::size_t>(b)],
               half + m);
      }
      for (int r = 0; r < half; ++r) {
        attach(cs, PortClass::kNorthRegular, r, cg.assigned[static_cast<std::size_t>(r)],
               pod);
      }
      for (int b = 0; b < n_core; ++b) {
        attach(cs, PortClass::kNorthBackup, b, cg.spare[static_cast<std::size_t>(b)],
               pod);
      }
    }
  }

  // Side-port rings: chain the circuit switches of each (layer, pod).
  auto chain = [&](int cs_layer, int pod, int count) {
    if (count < 2) return;  // a ring needs at least two members
    for (int m = 0; m < count; ++m) {
      std::size_t a = cs_index(cs_layer, pod, m);
      std::size_t b = cs_index(cs_layer, pod, (m + 1) % count);
      int right = switches_[a].port(PortClass::kSideRight);
      int left = switches_[b].port(PortClass::kSideLeft);
      switches_[a].attach_side(right, static_cast<int>(b), left);
      switches_[b].attach_side(left, static_cast<int>(a), right);
    }
  };
  for (int pod = 0; pod < k; ++pod) {
    chain(1, pod, hpe);
    chain(2, pod, half);
    chain(3, pod, half);
  }
}

void Fabric::wire_defaults() {
  const int k = ft_.k();
  const int half = ft_.half_k();
  const int hpe = ft_.hosts_per_edge();

  for (int pod = 0; pod < k; ++pod) {
    for (int m = 0; m < hpe; ++m) {
      CircuitSwitch& sw = switches_[cs_index(1, pod, m)];
      for (int j = 0; j < half; ++j) {
        sw.connect(sw.port(PortClass::kSouthRegular, j),
                   sw.port(PortClass::kNorthRegular, j));
      }
    }
    for (int m = 0; m < half; ++m) {
      CircuitSwitch& sw = switches_[cs_index(2, pod, m)];
      for (int e = 0; e < half; ++e) {
        // Rotation by m realizes the complete bipartite pod wiring.
        sw.connect(sw.port(PortClass::kSouthRegular, e),
                   sw.port(PortClass::kNorthRegular, (e + m) % half));
      }
    }
    for (int m = 0; m < half; ++m) {
      CircuitSwitch& sw = switches_[cs_index(3, pod, m)];
      for (int a = 0; a < half; ++a) {
        sw.connect(sw.port(PortClass::kSouthRegular, a),
                   sw.port(PortClass::kNorthRegular, a));
      }
    }
  }
}

net::NodeId Fabric::node_at(SwitchPosition pos) const {
  switch (pos.layer) {
    case Layer::kEdge: return ft_.edge(pos.pod, pos.index);
    case Layer::kAgg: return ft_.agg(pos.pod, pos.index);
    case Layer::kCore: return ft_.core(pos.index);
  }
  SBK_UNREACHABLE("bad layer");
}

std::optional<SwitchPosition> Fabric::position_of_node(
    net::NodeId node) const {
  const net::Node& n = network().node(node);
  switch (n.kind) {
    case net::NodeKind::kEdgeSwitch:
      return SwitchPosition{Layer::kEdge, n.pod, n.index};
    case net::NodeKind::kAggSwitch:
      return SwitchPosition{Layer::kAgg, n.pod, n.index};
    case net::NodeKind::kCoreSwitch:
      return SwitchPosition{Layer::kCore, -1, n.index};
    case net::NodeKind::kHost:
      return std::nullopt;
  }
  SBK_UNREACHABLE("bad node kind");
}

Fabric::Group& Fabric::group(Layer layer, int id) {
  switch (layer) {
    case Layer::kEdge:
      SBK_EXPECTS(id >= 0 &&
                  static_cast<std::size_t>(id) < edge_groups_.size());
      return edge_groups_[static_cast<std::size_t>(id)];
    case Layer::kAgg:
      SBK_EXPECTS(id >= 0 &&
                  static_cast<std::size_t>(id) < agg_groups_.size());
      return agg_groups_[static_cast<std::size_t>(id)];
    case Layer::kCore:
      SBK_EXPECTS(id >= 0 &&
                  static_cast<std::size_t>(id) < core_groups_.size());
      return core_groups_[static_cast<std::size_t>(id)];
  }
  SBK_UNREACHABLE("bad layer");
}

const Fabric::Group& Fabric::group(Layer layer, int id) const {
  return const_cast<Fabric*>(this)->group(layer, id);
}

DeviceUid Fabric::device_at(SwitchPosition pos) const {
  const Group& g = group(pos.layer, topo::failure_group_of(k(), pos));
  return g.assigned[static_cast<std::size_t>(topo::group_slot_of(k(), pos))];
}

const PhysicalDevice& Fabric::device(DeviceUid uid) const {
  SBK_EXPECTS(uid < devices_.size());
  return devices_[uid];
}

DeviceState Fabric::device_state(DeviceUid uid) const {
  SBK_EXPECTS(uid < device_state_.size());
  return device_state_[uid];
}

std::vector<DeviceUid> Fabric::spares(Layer layer, int grp) const {
  return group(layer, grp).spare;
}

std::optional<SwitchPosition> Fabric::position_of_device(
    DeviceUid uid) const {
  SBK_EXPECTS(uid < devices_.size());
  const PhysicalDevice& d = devices_[uid];
  if (d.is_host || device_state_[uid] != DeviceState::kInService) {
    return std::nullopt;
  }
  const Group& g = group(d.layer, d.group);
  for (std::size_t slot = 0; slot < g.assigned.size(); ++slot) {
    if (g.assigned[slot] != uid) continue;
    switch (d.layer) {
      case Layer::kEdge:
      case Layer::kAgg:
        return SwitchPosition{d.layer, d.group, static_cast<int>(slot)};
      case Layer::kCore:
        return SwitchPosition{d.layer, -1,
                              static_cast<int>(slot) * half_k() + d.group};
    }
  }
  return std::nullopt;
}

DeviceUid Fabric::device_of_host(net::NodeId host) const {
  int global = ft_.host_global_index(host);
  return host_device_[static_cast<std::size_t>(global)];
}

const CircuitSwitch& Fabric::circuit_switch(std::size_t idx) const {
  SBK_EXPECTS(idx < switches_.size());
  return switches_[idx];
}

CircuitSwitch& Fabric::circuit_switch(std::size_t idx) {
  SBK_EXPECTS(idx < switches_.size());
  return switches_[idx];
}

const std::vector<Fabric::DevicePort>& Fabric::ports_of_device(
    DeviceUid uid) const {
  SBK_EXPECTS(uid < device_ports_.size());
  return device_ports_[uid];
}

bool Fabric::interface_healthy(InterfaceRef iface) const {
  // iface_key's checked pack is still the contract gate for oversized
  // cs values (see the header note), even though the flat storage no
  // longer consumes the key for cabled ports.
  const std::uint64_t key = iface_key(iface);
  if (iface.device < device_ports_.size()) {
    const std::vector<DevicePort>& ports = device_ports_[iface.device];
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (ports[i].cs == iface.cs) return !iface_unhealthy_[iface.device][i];
    }
  }
  return std::find(uncabled_unhealthy_.begin(), uncabled_unhealthy_.end(),
                   key) == uncabled_unhealthy_.end();
}

void Fabric::set_interface_health(InterfaceRef iface, bool healthy) {
  SBK_EXPECTS(iface.device < devices_.size());
  SBK_EXPECTS(iface.cs < switches_.size());
  const std::vector<DevicePort>& ports = device_ports_[iface.device];
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].cs == iface.cs) {
      iface_unhealthy_[iface.device][i] = healthy ? 0 : 1;
      return;
    }
  }
  const std::uint64_t key = iface_key(iface);
  auto it = std::find(uncabled_unhealthy_.begin(), uncabled_unhealthy_.end(),
                      key);
  if (healthy) {
    if (it != uncabled_unhealthy_.end()) uncabled_unhealthy_.erase(it);
  } else if (it == uncabled_unhealthy_.end()) {
    uncabled_unhealthy_.push_back(key);
  }
}

void Fabric::heal_device(DeviceUid uid) {
  for (const DevicePort& dp : ports_of_device(uid)) {
    set_interface_health(InterfaceRef{uid, dp.cs}, true);
  }
}

bool Fabric::device_interfaces_healthy(DeviceUid uid) const {
  for (const DevicePort& dp : ports_of_device(uid)) {
    if (!interface_healthy(InterfaceRef{uid, dp.cs})) return false;
  }
  return true;
}

std::size_t Fabric::total_spares() const {
  std::size_t total = 0;
  for (const std::vector<Group>* groups :
       {&edge_groups_, &agg_groups_, &core_groups_}) {
    for (const Group& g : *groups) total += g.spare.size();
  }
  return total;
}

void Fabric::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_failovers_ = m_reconfigurations_ = m_pool_returns_ = nullptr;
    m_spare_pool_ = nullptr;
    return;
  }
  m_failovers_ = &metrics->counter("fabric.failovers");
  m_reconfigurations_ = &metrics->counter("fabric.circuit_reconfigurations");
  m_pool_returns_ = &metrics->counter("fabric.pool_returns");
  m_spare_pool_ = &metrics->gauge("fabric.spare_pool");
  m_spare_pool_->set(static_cast<double>(total_spares()));
}

std::optional<Fabric::FailoverReport> Fabric::fail_over(SwitchPosition pos) {
  Group& g = group(pos.layer, topo::failure_group_of(k(), pos));
  if (g.spare.empty()) return std::nullopt;
  std::size_t slot = static_cast<std::size_t>(topo::group_slot_of(k(), pos));
  DeviceUid failed = g.assigned[slot];
  DeviceUid spare = g.spare.front();
  g.spare.erase(g.spare.begin());

  FailoverReport report;
  report.position = pos;
  report.failed_device = failed;
  report.replacement = spare;

  for (const DevicePort& dp : device_ports_[failed]) {
    CircuitSwitch& sw = switches_[dp.cs];
    std::optional<int> peer = sw.peer(dp.port);
    if (!peer.has_value()) continue;
    int spare_port = device_port_on(spare, dp.cs);
    SBK_ASSERT_MSG(!sw.is_matched(spare_port),
                   "spare device ports must be idle before failover");
    sw.disconnect(dp.port);
    sw.connect(spare_port, *peer);
    ++report.circuit_switches_touched;
  }
  report.reconfiguration_latency =
      reconfiguration_latency(params_.technology);

  g.assigned[slot] = spare;
  g.out.push_back(failed);
  device_state_[failed] = DeviceState::kOut;
  device_state_[spare] = DeviceState::kInService;

  // The position is now served by healthy hardware: bring its node back.
  network().restore_node(node_at(pos));
  if (m_failovers_) m_failovers_->add();
  if (m_reconfigurations_) {
    m_reconfigurations_->add(report.circuit_switches_touched);
  }
  if (m_spare_pool_) m_spare_pool_->set(static_cast<double>(total_spares()));
  if (recorder_ != nullptr && recorder_->enabled()) {
    recorder_->instant("fabric", "failover", trace_now_,
                       devices_[failed].name + " -> " + devices_[spare].name);
    recorder_->counter("fabric", "spare_pool", trace_now_,
                       static_cast<double>(total_spares()));
  }
  SBK_LOG_INFO("fabric", "failover at " << devices_[failed].name << " -> "
                                        << devices_[spare].name << " ("
                                        << report.circuit_switches_touched
                                        << " circuit switches)");
  return report;
}

void Fabric::return_to_pool(DeviceUid uid) {
  SBK_EXPECTS(uid < devices_.size());
  if (device_state_[uid] == DeviceState::kSpare) return;  // idempotent
  SBK_EXPECTS_MSG(device_state_[uid] == DeviceState::kOut,
                  "only out-of-service devices can return to the pool");
  Group& g = group(devices_[uid].layer, devices_[uid].group);
  auto it = std::find(g.out.begin(), g.out.end(), uid);
  SBK_ASSERT(it != g.out.end());
  g.out.erase(it);
  g.spare.push_back(uid);
  device_state_[uid] = DeviceState::kSpare;
  if (m_pool_returns_) m_pool_returns_->add();
  if (m_spare_pool_) m_spare_pool_->set(static_cast<double>(total_spares()));
  if (recorder_ != nullptr && recorder_->enabled()) {
    recorder_->instant("fabric", "pool_return", trace_now_,
                       devices_[uid].name);
    recorder_->counter("fabric", "spare_pool", trace_now_,
                       static_cast<double>(total_spares()));
  }
}

int Fabric::device_port_on(DeviceUid uid, std::size_t cs) const {
  for (const DevicePort& dp : ports_of_device(uid)) {
    if (dp.cs == cs) return dp.port;
  }
  SBK_EXPECTS_MSG(false, "device is not cabled to that circuit switch");
  return -1;
}

std::size_t Fabric::cs_of_link(net::LinkId link) const {
  const net::Link& l = network().link(link);
  const net::Node& na = network().node(l.a);
  const net::Node& nb = network().node(l.b);
  const int half = half_k();
  const int hpe = ft_.hosts_per_edge();

  auto kinds = [&](net::NodeKind x, net::NodeKind y) {
    return (na.kind == x && nb.kind == y) || (na.kind == y && nb.kind == x);
  };
  if (kinds(net::NodeKind::kHost, net::NodeKind::kEdgeSwitch)) {
    const net::Node& host = na.kind == net::NodeKind::kHost ? na : nb;
    int global = host.index;
    return cs_index(1, global / (half * hpe), global % hpe);
  }
  if (kinds(net::NodeKind::kEdgeSwitch, net::NodeKind::kAggSwitch)) {
    const net::Node& e = na.kind == net::NodeKind::kEdgeSwitch ? na : nb;
    const net::Node& a = na.kind == net::NodeKind::kAggSwitch ? na : nb;
    SBK_ASSERT(e.pod == a.pod);
    // Rotation wiring: CS m joins edge e to agg (e+m) mod k/2.
    return cs_index(2, e.pod, (a.index - e.index + half) % half);
  }
  if (kinds(net::NodeKind::kAggSwitch, net::NodeKind::kCoreSwitch)) {
    const net::Node& a = na.kind == net::NodeKind::kAggSwitch ? na : nb;
    const net::Node& c = na.kind == net::NodeKind::kCoreSwitch ? na : nb;
    // Core c sits behind the (c mod k/2)-th layer-3 switch of each pod.
    return cs_index(3, a.pod, c.index % half);
  }
  SBK_EXPECTS_MSG(false, "link is not realized through a circuit switch");
  return 0;
}

std::optional<InterfaceRef> Fabric::trace_circuit(std::size_t cs,
                                                  int port) const {
  SBK_EXPECTS(cs < switches_.size());
  // Bounded walk: a circuit can cross each ring switch at most once.
  std::size_t budget = 2 * switches_.size() + 4;
  std::size_t cur_cs = cs;
  int cur_port = port;
  while (budget-- > 0) {
    const CircuitSwitch& sw = switches_[cur_cs];
    std::optional<int> matched = sw.peer(cur_port);
    if (!matched.has_value()) return std::nullopt;  // open circuit
    const Attachment& a = sw.attachment(*matched);
    switch (a.kind) {
      case Attachment::Kind::kDeviceInterface:
        return InterfaceRef{a.device, cur_cs};
      case Attachment::Kind::kSidePeer:
        cur_cs = static_cast<std::size_t>(a.peer_cs);
        cur_port = a.peer_port;
        break;  // entered the neighbor switch; follow its matching
      case Attachment::Kind::kNone:
        return std::nullopt;  // matched into an uncabled port
    }
  }
  return std::nullopt;  // cycle with no device endpoint
}

bool Fabric::probe(InterfaceRef from) const {
  int port = device_port_on(from.device, from.cs);
  std::optional<InterfaceRef> far = trace_circuit(from.cs, port);
  if (!far.has_value()) return false;
  return interface_healthy(from) && interface_healthy(*far);
}

Fabric::Census Fabric::census() const {
  Census c;
  c.circuit_switches = switches_.size();
  for (const CircuitSwitch& sw : switches_) {
    c.circuit_switch_physical_ports += static_cast<std::size_t>(sw.port_count());
  }
  c.failure_groups =
      edge_groups_.size() + agg_groups_.size() + core_groups_.size();
  // Structural census counts devices *built* as backups (names "BS-..."),
  // independent of the current role rotation.
  for (const PhysicalDevice& d : devices_) {
    if (!d.is_host && d.name.rfind("BS-", 0) == 0) {
      ++c.backup_switches;
      c.backup_device_cables += device_ports_[d.uid].size();
    }
  }
  return c;
}

std::vector<std::pair<net::NodeId, net::NodeId>> Fabric::realized_adjacency()
    const {
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  auto node_of_device = [this](DeviceUid uid) -> std::optional<net::NodeId> {
    const PhysicalDevice& d = devices_[uid];
    if (d.is_host) {
      // Host uids are contiguous in global host order.
      SBK_ASSERT(!host_device_.empty() && uid >= host_device_.front());
      return ft_.host(static_cast<int>(uid - host_device_.front()));
    }
    std::optional<SwitchPosition> pos = position_of_device(uid);
    if (!pos.has_value()) return std::nullopt;
    return node_at(*pos);
  };

  for (const CircuitSwitch& sw : switches_) {
    for (int p = 0; p < sw.port_count(); ++p) {
      std::optional<int> q = sw.peer(p);
      if (!q.has_value() || *q < p) continue;  // count each circuit once
      const Attachment& pa = sw.attachment(p);
      const Attachment& qa = sw.attachment(*q);
      if (pa.kind != Attachment::Kind::kDeviceInterface ||
          qa.kind != Attachment::Kind::kDeviceInterface) {
        continue;  // diagnosis circuits through side ports are not links
      }
      std::optional<net::NodeId> a = node_of_device(pa.device);
      std::optional<net::NodeId> b = node_of_device(qa.device);
      if (a.has_value() && b.has_value()) out.emplace_back(*a, *b);
    }
  }
  return out;
}

void Fabric::check_invariants() const {
  for (const CircuitSwitch& sw : switches_) {
    SBK_ENSURES(sw.matching_is_consistent());
  }
  auto check_group = [this](const Group& g) {
    SBK_ENSURES(g.assigned.size() ==
                static_cast<std::size_t>(half_k()));
    for (DeviceUid uid : g.assigned) {
      SBK_ENSURES(device_state_[uid] == DeviceState::kInService);
    }
    for (DeviceUid uid : g.spare) {
      SBK_ENSURES(device_state_[uid] == DeviceState::kSpare);
      // Spare devices must hold no live circuits.
      for (const DevicePort& dp : device_ports_[uid]) {
        SBK_ENSURES(!switches_[dp.cs].is_matched(dp.port));
      }
    }
    for (DeviceUid uid : g.out) {
      SBK_ENSURES(device_state_[uid] == DeviceState::kOut);
    }
    SBK_ENSURES(g.spare.size() + g.out.size() ==
                static_cast<std::size_t>(params_.backups_for(g.layer)));
  };
  for (const Group& g : edge_groups_) check_group(g);
  for (const Group& g : agg_groups_) check_group(g);
  for (const Group& g : core_groups_) check_group(g);
}

}  // namespace sbk::sharebackup
