#include "obs/flight_recorder.hpp"

#include <chrono>
#include <utility>

#include "obs/recovery_tracer.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace sbk::obs {

FlightRecorder::FlightRecorder(bool enabled, std::size_t capacity)
    : enabled_(enabled), capacity_(capacity) {
  SBK_EXPECTS(capacity >= 1);
}

double FlightRecorder::wall_now_us() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::micro>(
             clock::now().time_since_epoch())
      .count();
}

void FlightRecorder::push(TraceEvent&& e) {
  // The reserve runs once: after it, recording never reallocates (the
  // "preallocated" contract — deferred to first use so disabled or
  // never-used recorders cost nothing but their own footprint).
  if (ring_.capacity() < capacity_) ring_.reserve(capacity_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  // Full: overwrite the oldest event and advance the wrap point.
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

void FlightRecorder::instant(std::string_view category, std::string_view name,
                             Seconds at, std::string_view detail) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TracePhase::kInstant;
  e.category = category;
  e.name = name;
  e.ts = at;
  e.detail = detail;
  push(std::move(e));
}

void FlightRecorder::complete(std::string_view category, std::string_view name,
                              Seconds start, Seconds end, double wall_us,
                              std::string_view detail) {
  if (!enabled_) return;
  SBK_EXPECTS_MSG(end >= start, "spans must not run backwards");
  TraceEvent e;
  e.phase = TracePhase::kComplete;
  e.category = category;
  e.name = name;
  e.ts = start;
  e.dur = end - start;
  e.wall_us = wall_us;
  e.detail = detail;
  push(std::move(e));
}

void FlightRecorder::counter(std::string_view category, std::string_view name,
                             Seconds at, double value) {
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TracePhase::kCounter;
  e.category = category;
  e.name = name;
  e.ts = at;
  e.value = value;
  push(std::move(e));
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void FlightRecorder::merge(const FlightRecorder& other, std::uint32_t track) {
  if (!enabled_) return;
  for (TraceEvent e : other.events()) {
    e.track = track;
    push(std::move(e));
  }
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void FlightRecorder::write_trace_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\""
        << static_cast<char>(e.phase) << "\",\"pid\":" << e.track
        << ",\"tid\":0,\"ts\":" << CsvWriter::num_exact(e.ts * 1e6);
    if (e.phase == TracePhase::kComplete) {
      out << ",\"dur\":" << CsvWriter::num_exact(e.dur * 1e6);
    }
    if (e.phase == TracePhase::kInstant) {
      out << ",\"s\":\"g\"";  // global-scope instant: visible at any zoom
    }
    out << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, const std::string& value) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"" << key << "\":" << value;
    };
    if (e.phase == TracePhase::kCounter) {
      arg("value", CsvWriter::num_exact(e.value));
    }
    if (e.wall_us >= 0.0) arg("wall_us", CsvWriter::num(e.wall_us));
    if (!e.detail.empty()) {
      std::string quoted = "\"";
      quoted += json_escape(e.detail);
      quoted += "\"";
      arg("detail", quoted);
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

void FlightRecorder::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"track", "phase", "category", "name", "ts", "dur", "value",
           "wall_us", "detail"});
  for (const TraceEvent& e : events()) {
    csv.row({CsvWriter::num(static_cast<std::size_t>(e.track)),
             std::string(1, static_cast<char>(e.phase)), e.category, e.name,
             CsvWriter::num_exact(e.ts), CsvWriter::num_exact(e.dur),
             CsvWriter::num_exact(e.value),
             e.wall_us >= 0.0 ? CsvWriter::num(e.wall_us) : std::string{},
             e.detail});
  }
}

ScopedSpan::ScopedSpan(FlightRecorder* recorder, std::string_view category,
                       std::string_view name, Seconds at)
    : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                           : nullptr) {
  if (recorder_ == nullptr) return;
  category_ = category;
  name_ = name;
  sim_start_ = at;
  sim_end_ = at;
  wall_start_us_ = FlightRecorder::wall_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  recorder_->complete(category_, name_, sim_start_, sim_end_,
                      FlightRecorder::wall_now_us() - wall_start_us_,
                      detail_);
}

void export_recovery_spans(const RecoveryTracer& tracer,
                           FlightRecorder& recorder) {
  for (const RecoveryIncident& inc : tracer.incidents()) {
    const std::string detail =
        inc.element + "#" + std::to_string(inc.id);
    for (const RecoverySpan& s : inc.spans) {
      recorder.complete("recovery", s.stage, s.start, s.end, -1.0, detail);
    }
    if (inc.closed) {
      recorder.instant("recovery", "recovered", inc.recovered_at, detail);
    }
  }
}

}  // namespace sbk::obs
