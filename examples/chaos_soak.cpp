// Chaos soak driver: randomized control-plane fault schedules across
// many seeds, with end-of-run robustness invariants checked per
// scenario. Exits non-zero when any invariant is violated, so CI can
// gate on it.
//
//   chaos_soak [scenarios] [master_seed] [k] [backups] [threads]
//
// Defaults: 200 scenarios, seed 1, k=4 fat-tree, 1 backup per group,
// auto threads. A failing seed reproduces exactly with
// run_chaos_scenario (see src/faultinject/chaos_soak.hpp).
#include <cstdlib>
#include <iostream>
#include <string>

#include "faultinject/chaos_soak.hpp"

int main(int argc, char** argv) {
  sbk::faultinject::ChaosSoakConfig cfg;
  auto arg = [&](int i, long fallback) {
    return argc > i ? std::strtol(argv[i], nullptr, 10) : fallback;
  };
  cfg.scenarios = static_cast<std::size_t>(arg(1, 200));
  cfg.master_seed = static_cast<std::uint64_t>(arg(2, 1));
  cfg.k = static_cast<int>(arg(3, 4));
  cfg.backups_per_group = static_cast<int>(arg(4, 1));
  cfg.threads = static_cast<std::size_t>(arg(5, 0));

  std::cout << "running " << cfg.scenarios << " chaos scenarios (seed "
            << cfg.master_seed << ", k=" << cfg.k << ", n="
            << cfg.backups_per_group << ")...\n";
  sbk::faultinject::ChaosSoakReport report =
      sbk::faultinject::run_chaos_soak(cfg);
  std::cout << report.summary();
  return report.clean() ? 0 : 1;
}
