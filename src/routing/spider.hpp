// SPIDER-style proactive protection (Cascone et al., see PAPERS.md):
// every flow follows a per-(src, dst) primary path chosen on the
// *healthy* structural topology, and every protected element carries a
// pre-installed local detour. When the switch upstream of a failed
// element detects the failure, it flips a data-plane state machine and
// forwards along the detour with zero controller involvement — the
// recovery-latency model charges detection plus a local state
// transition, with rule_updates = 0 (see control/recovery_latency.hpp).
//
// A detour runs from the detecting switch to a *merge point*: the
// downstream primary node the structural wiring can reach in the fewest
// hops while avoiding the failed element (ties resolved toward the
// latest merge point, which skips the largest primary segment). This is
// SPIDER's detour-to-merge-point construction; computing it on the
// structural wiring models rules installed before any failure.
//
// Coverage limits modeled faithfully:
//   * Detours ignore failure flags (they are installed in advance). If
//     a second failure hits the detour itself, or the detour collides
//     with the remaining primary (the spliced forwarding state would
//     loop), the flow is lost — SPIDER protects against the failures
//     its rules anticipate, not arbitrary combinations.
//   * The detour budget (`max_detour_hops`) bounds pre-installed rule
//     depth. In plain-wired fat-trees an aggregation switch that dies
//     *downstream* of the core has no merge point within 4 hops (the
//     destination pod is only re-enterable through a different core
//     row, 6+ hops away), so those flows stall until repair — the
//     honest cost of purely local failover without bounce-back.
//   * A dead destination (or a host whose only link died) is
//     unrecoverable.
//
// The primary candidate sets live in a structure-epoch EpochPathCache
// (identical sets to EcmpWithGlobalRerouteRouter's front-end, so
// unaffected flows take exactly the same paths as the reactive
// baselines — the comparison isolates the protection mechanism).
#pragma once

#include <cstdint>

#include "routing/path_cache.hpp"
#include "routing/router.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

class SpiderProtectRouter final : public Router {
 public:
  /// `salt` varies the primary hash across repetitions;
  /// `max_detour_hops` bounds the pre-installed detour length (4 covers
  /// every single-element failure detected *upstream* of the core in a
  /// fat-tree; see the coverage notes above).
  explicit SpiderProtectRouter(const topo::FatTree& ft,
                               std::uint64_t salt = 0,
                               int max_detour_hops = 4)
      : ft_(&ft),
        salt_(salt),
        max_detour_hops_(max_detour_hops),
        structural_(EpochSource::kStructure) {}

  [[nodiscard]] net::Path route(const net::Network& net, net::NodeId src,
                                net::NodeId dst, std::uint64_t flow_id,
                                const LinkLoads* loads) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "spider-protect";
  }

  /// Failovers taken (detour activations) since construction.
  [[nodiscard]] std::size_t failovers() const noexcept { return failovers_; }
  /// Failovers with no usable pre-installed detour — no merge point in
  /// budget, the detour itself dead, or a splice that would loop. The
  /// flow is lost (SPIDER's coverage limit).
  [[nodiscard]] std::size_t detour_misses() const noexcept {
    return detour_misses_;
  }

 private:
  const topo::FatTree* ft_;
  std::uint64_t salt_;
  int max_detour_hops_;
  EpochPathCache structural_;
  std::size_t failovers_ = 0;
  std::size_t detour_misses_ = 0;
};

}  // namespace sbk::routing
