// Sharable backup beyond fat-tree (§6): "most data center network
// architectures have symmetric structures. Sharable backup is thus
// readily applicable to these networks, with different plans for
// partitioning failure groups."
//
// This module applies the ShareBackup building block to a two-tier
// leaf-spine (folded Clos) network:
//
//   * L leaf switches, S spine switches, complete bipartite between
//     them; H hosts per leaf;
//   * leaves are partitioned into groups of G, spines into groups of G;
//     each group shares n backup switches;
//   * layer-1 circuit switches sit between hosts and each leaf group
//     (H switches per group; straight-through wiring), exactly the
//     fat-tree building block of Fig. 3(a);
//   * layer-2 circuit switches sit on each (leaf-group x spine-group)
//     pair: G switches with the rotational wiring of Fig. 3(b), giving
//     every leaf one link to every spine;
//   * side ports chain each circuit-switch row into a ring, as in the
//     fat-tree fabric.
//
// Failover semantics are identical to sharebackup::Fabric: network nodes
// are logical positions; a failover re-points the failed device's
// circuits at a spare and restores the position.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "sharebackup/circuit_switch.hpp"
#include "sharebackup/device.hpp"
#include "util/time.hpp"

namespace sbk::sharebackup {

struct LeafSpineParams {
  int leaves = 8;
  int spines = 4;
  int hosts_per_leaf = 4;
  int group_size = 4;        ///< G: leaves/spines per failure group
  int backups_per_group = 1; ///< n
  double host_link_capacity = 1.0;
  double fabric_link_capacity = 1.0;
  CircuitTechnology technology = CircuitTechnology::kElectricalCrosspoint;
};

/// Which tier a leaf-spine position lives on.
enum class LsTier : std::uint8_t { kLeaf, kSpine };

/// A logical position: tier + global switch index.
struct LsPosition {
  LsTier tier = LsTier::kLeaf;
  int index = 0;

  friend constexpr bool operator==(LsPosition, LsPosition) noexcept = default;
};

class LeafSpineFabric {
 public:
  explicit LeafSpineFabric(const LeafSpineParams& params);

  [[nodiscard]] const LeafSpineParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] const net::Network& network() const noexcept { return net_; }

  [[nodiscard]] net::NodeId host(int i) const;
  [[nodiscard]] net::NodeId leaf(int i) const;
  [[nodiscard]] net::NodeId spine(int i) const;
  [[nodiscard]] int host_count() const noexcept {
    return params_.leaves * params_.hosts_per_leaf;
  }
  [[nodiscard]] net::NodeId node_at(LsPosition pos) const;

  // --- devices ---------------------------------------------------------------
  [[nodiscard]] DeviceUid device_at(LsPosition pos) const;
  [[nodiscard]] DeviceState device_state(DeviceUid uid) const;
  [[nodiscard]] std::vector<DeviceUid> spares(LsTier tier, int group) const;
  [[nodiscard]] int group_of(LsPosition pos) const;

  // --- failover ----------------------------------------------------------------
  struct FailoverReport {
    LsPosition position;
    DeviceUid failed_device = kNoDeviceUid;
    DeviceUid replacement = kNoDeviceUid;
    std::size_t circuit_switches_touched = 0;
    Seconds reconfiguration_latency = 0.0;
  };
  [[nodiscard]] std::optional<FailoverReport> fail_over(LsPosition pos);
  void return_to_pool(DeviceUid uid);

  // --- structure -------------------------------------------------------------
  [[nodiscard]] std::size_t circuit_switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] const CircuitSwitch& circuit_switch(std::size_t idx) const;
  /// Packet adjacency realized by the current matchings (must equal the
  /// leaf-spine link set in any consistent state).
  [[nodiscard]] std::vector<std::pair<net::NodeId, net::NodeId>>
  realized_adjacency() const;
  void check_invariants() const;

  struct Census {
    std::size_t backup_switches = 0;
    std::size_t circuit_switches = 0;
    std::size_t failure_groups = 0;
  };
  [[nodiscard]] Census census() const;

 private:
  struct Group {
    LsTier tier;
    int id;
    std::vector<DeviceUid> assigned;
    std::vector<DeviceUid> spare;
    std::vector<DeviceUid> out;
  };
  struct DevicePort {
    std::size_t cs;
    int port;
  };

  [[nodiscard]] Group& group(LsTier tier, int id);
  [[nodiscard]] const Group& group(LsTier tier, int id) const;
  [[nodiscard]] DeviceUid new_device(std::string name);
  void attach(std::size_t cs, PortClass cls, int slot, DeviceUid dev,
              int iface);
  [[nodiscard]] std::size_t cs_layer1(int leaf_group, int m) const;
  [[nodiscard]] std::size_t cs_layer2(int leaf_group, int spine_group,
                                      int m) const;
  [[nodiscard]] int device_port_on(DeviceUid uid, std::size_t cs) const;

  LeafSpineParams params_;
  net::Network net_;
  std::vector<net::NodeId> hosts_;
  std::vector<net::NodeId> leaves_;
  std::vector<net::NodeId> spines_;
  std::vector<Group> leaf_groups_;
  std::vector<Group> spine_groups_;
  std::vector<CircuitSwitch> switches_;
  std::vector<std::vector<DevicePort>> device_ports_;
  std::vector<DeviceState> device_state_;
  std::vector<std::string> device_name_;
  std::vector<DeviceUid> host_device_;
};

}  // namespace sbk::sharebackup
