// Tests for the live SLO engine (obs/slo): LogHistogram bucket
// geometry, quantile error bounds, and merge associativity /
// thread-count invariance; SloMonitor burn-rate breach/clear semantics,
// windowing, incident linking, and scenario-ordered merge; health
// snapshot serialization (JSON + Prometheus text exposition) and the
// HealthLog fingerprint; plus the observability satellites this PR
// rides along — flight-recorder ring-wrap export order, export during
// an open ScopedSpan, counter saturation, mismatched-set registry
// merge, the bounded latency reservoir, and end-to-end SLO determinism
// through the controller service.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "faultinject/fault_plan.hpp"
#include "faultinject/report_stream.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_tracer.hpp"
#include "obs/slo/health_snapshot.hpp"
#include "obs/slo/log_histogram.hpp"
#include "obs/slo/slo_monitor.hpp"
#include "service/controller_service.hpp"
#include "service/replicated_service.hpp"
#include "sharebackup/fabric.hpp"
#include "util/rng.hpp"

namespace sbk::obs::slo {
namespace {

// --- LogHistogram ------------------------------------------------------------

TEST(LogHistogram, BucketGeometryRoundTrips) {
  const double values[] = {1e-9,  3.7e-8, 1e-6, 4.2e-4, 0.001, 0.25,
                           0.5,   0.75,   1.0,  1.5,    123.456, 1e6};
  for (double v : values) {
    const std::uint32_t idx = LogHistogram::bucket_of(v);
    ASSERT_LT(idx, LogHistogram::kBucketCount) << v;
    EXPECT_LE(LogHistogram::bucket_lower(idx), v) << v;
    EXPECT_LT(v, LogHistogram::bucket_upper(idx)) << v;
    const double rep = LogHistogram::bucket_representative(idx);
    EXPECT_GE(rep, LogHistogram::bucket_lower(idx)) << v;
    EXPECT_LE(rep, LogHistogram::bucket_upper(idx)) << v;
  }
  // Zero, negatives, and sub-floor magnitudes collapse into the
  // underflow bucket; huge values saturate into the top bucket.
  EXPECT_EQ(LogHistogram::bucket_of(0.0), 0u);
  EXPECT_EQ(LogHistogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(LogHistogram::bucket_of(1e-12), 0u);
  EXPECT_EQ(LogHistogram::bucket_of(1e10), LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, QuantileEndpointsAreExactExtremes) {
  LogHistogram h;
  h.record(0.003);
  h.record(0.017);
  h.record(0.0009);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0009);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.017);
  EXPECT_DOUBLE_EQ(h.min(), 0.0009);
  EXPECT_DOUBLE_EQ(h.max(), 0.017);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LogHistogram, QuantilesWithinSubBucketRelativeError) {
  // Log-uniform spread over 6 decades: the adversarial shape for a
  // log-bucketed histogram. Every quantile must land within the
  // sub-bucket width (2^-5 ~ 3.2%) of the exact order statistic.
  Rng rng(42);
  std::vector<double> samples;
  LogHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, rng.uniform_real(-6.0, 0.0));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[std::min(rank, samples.size()) - 1];
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.033) << "q=" << q;
  }
  const double exact_mean =
      std::accumulate(samples.begin(), samples.end(), 0.0) /
      static_cast<double>(samples.size());
  EXPECT_NEAR(h.mean(), exact_mean, exact_mean * 0.033);
}

TEST(LogHistogram, MergeIsAssociativeAndMatchesInline) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(rng.uniform_real(1e-6, 10.0));
  }
  LogHistogram inline_hist;
  LogHistogram parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    inline_hist.record(samples[i]);
    parts[i % 3].record(samples[i]);
  }
  // (a + b) + c
  LogHistogram left;
  left.merge(parts[0]);
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  LogHistogram bc;
  bc.merge(parts[1]);
  bc.merge(parts[2]);
  LogHistogram right;
  right.merge(parts[0]);
  right.merge(bc);
  EXPECT_EQ(left.fingerprint(), right.fingerprint());
  EXPECT_EQ(left.fingerprint(), inline_hist.fingerprint());
  EXPECT_EQ(left.count(), inline_hist.count());
  EXPECT_DOUBLE_EQ(left.min(), inline_hist.min());
  EXPECT_DOUBLE_EQ(left.max(), inline_hist.max());
}

TEST(LogHistogram, MergeInvariantAcrossProducerCounts) {
  // Property: round-robin the same sample stream over k histograms and
  // fold them in index order — the result is bit-identical for every k
  // (the thread-count-invariance property the service relies on).
  Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 4096; ++i) {
    samples.push_back(rng.lognormal(-5.3, 0.8));
  }
  std::string baseline;
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}, std::size_t{13}}) {
    std::vector<LogHistogram> shards(k);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      shards[i % k].record(samples[i]);
    }
    LogHistogram merged;
    for (const LogHistogram& s : shards) merged.merge(s);
    if (baseline.empty()) {
      baseline = merged.fingerprint();
    } else {
      EXPECT_EQ(merged.fingerprint(), baseline) << "k=" << k;
    }
  }
}

TEST(LogHistogram, RecordNClearAndBoundedMemory) {
  LogHistogram h;
  EXPECT_EQ(h.memory_bytes(), 0u);  // nothing allocated until first record
  h.record_n(0.01, 1000);
  h.record_n(0.02, 0);  // n = 0 is a no-op
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.max(), 0.01);
  EXPECT_EQ(h.memory_bytes(),
            LogHistogram::kBucketCount * sizeof(std::uint64_t));
  // A million more records cannot grow it: fixed bucket array.
  for (int i = 0; i < 1000; ++i) h.record_n(static_cast<double>(i), 1000);
  EXPECT_EQ(h.memory_bytes(),
            LogHistogram::kBucketCount * sizeof(std::uint64_t));
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// --- SloMonitor --------------------------------------------------------------

SloObjectiveConfig rate_objective() {
  SloObjectiveConfig cfg;
  cfg.name = "errors";
  cfg.kind = ObjectiveKind::kRate;
  cfg.budget = 0.01;  // 1% error budget
  cfg.window = 1.0;
  cfg.steps = 10;
  cfg.short_steps = 2;
  cfg.burn_factor = 2.0;  // breach at >= 2% bad in both windows
  cfg.clear_factor = 1.0;
  cfg.min_events = 10;
  return cfg;
}

TEST(SloMonitor, QuietStreamRaisesNoAlerts) {
  SloMonitor mon;
  mon.add_objective(rate_objective());
  for (int i = 0; i < 1000; ++i) {
    mon.record_good(0, static_cast<double>(i) * 0.01);
  }
  mon.finish(10.0);
  EXPECT_TRUE(mon.alerts().empty());
  EXPECT_EQ(mon.breach_count(0), 0u);
  EXPECT_FALSE(mon.breached(0));
  EXPECT_DOUBLE_EQ(mon.attainment(0), 1.0);
}

TEST(SloMonitor, BurnBreachFiresThenClears) {
  SloMonitor mon;
  mon.add_objective(rate_objective());
  // Healthy first second: 100 good events.
  for (int i = 0; i < 100; ++i) {
    mon.record_good(0, static_cast<double>(i) * 0.01);
  }
  // Outage burst at t=1.0..1.1: all bad. Short window (0.2s) burns at
  // ~50/budget, long window well above the factor too.
  for (int i = 0; i < 50; ++i) {
    mon.record_bad(0, 1.0 + static_cast<double>(i) * 0.002);
  }
  // At 1.2 the short window still holds the burst, so the breach is
  // open; one more step and the bad events age out of it.
  mon.advance_to(1.2);
  ASSERT_FALSE(mon.alerts().empty());
  EXPECT_TRUE(mon.alerts().front().breach);
  EXPECT_TRUE(mon.breached(0));
  EXPECT_EQ(mon.breach_count(0), 1u);
  // The breach boundary trails the burst by at most one step.
  EXPECT_LE(mon.alerts().front().at, 1.2 + 1e-12);

  // Recovery: good events resume; the short window drains and clears.
  for (int i = 0; i < 100; ++i) {
    mon.record_good(0, 1.3 + static_cast<double>(i) * 0.01);
  }
  mon.advance_to(3.0);
  EXPECT_FALSE(mon.breached(0));
  EXPECT_EQ(mon.clear_count(0), 1u);
  ASSERT_EQ(mon.alerts().size(), 2u);
  EXPECT_FALSE(mon.alerts().back().breach);
  EXPECT_GT(mon.alerts().back().at, mon.alerts().front().at);
  EXPECT_EQ(mon.good_total(0), 200u);
  EXPECT_EQ(mon.bad_total(0), 50u);
}

TEST(SloMonitor, MinEventsGuardSuppressesTinySamples) {
  SloMonitor mon;
  SloObjectiveConfig cfg = rate_objective();
  cfg.min_events = 50;
  mon.add_objective(cfg);
  // 5 bad out of 5: 100% bad, but far below min_events.
  for (int i = 0; i < 5; ++i) {
    mon.record_bad(0, static_cast<double>(i) * 0.01);
  }
  mon.finish(2.0);
  EXPECT_TRUE(mon.alerts().empty());
  EXPECT_EQ(mon.breach_count(0), 0u);
}

TEST(SloMonitor, LatencyObjectiveJudgesThreshold) {
  SloMonitor mon;
  SloObjectiveConfig cfg;
  cfg.name = "latency";
  cfg.kind = ObjectiveKind::kLatency;
  cfg.threshold = 0.010;
  cfg.budget = 0.1;
  cfg.window = 1.0;
  cfg.steps = 10;
  cfg.min_events = 4;
  mon.add_objective(cfg);
  mon.record_latency(0, 0.1, 0.005);  // under threshold: good
  mon.record_latency(0, 0.2, 0.009);
  mon.record_latency(0, 0.3, 0.050);  // over: bad
  mon.record_latency(0, 0.4, 0.005);
  mon.finish(1.0);
  EXPECT_EQ(mon.good_total(0), 3u);
  EXPECT_EQ(mon.bad_total(0), 1u);
  EXPECT_DOUBLE_EQ(mon.attainment(0), 0.75);
}

TEST(SloMonitor, FinishFlushesPendingClearAndEmitsAttainment) {
  FlightRecorder rec(/*enabled=*/true);
  SloMonitor mon;
  mon.add_objective(rate_objective());
  mon.attach_recorder(&rec);
  for (int i = 0; i < 100; ++i) {
    mon.record_good(0, static_cast<double>(i) * 0.001);
  }
  for (int i = 0; i < 50; ++i) {
    mon.record_bad(0, 0.5 + static_cast<double>(i) * 0.001);
  }
  // finish() must advance a full window past the last event so the
  // breach opened by the burst clears before the run ends.
  mon.finish(0.6);
  EXPECT_EQ(mon.breach_count(0), 1u);
  EXPECT_EQ(mon.clear_count(0), 1u);
  EXPECT_FALSE(mon.breached(0));

  std::size_t breaches = 0, clears = 0, attainments = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.category != "slo") continue;
    if (e.name == "slo_breach") ++breaches;
    if (e.name == "slo_clear") ++clears;
    if (e.name == "slo_attainment") ++attainments;
  }
  EXPECT_EQ(breaches, 1u);
  EXPECT_EQ(clears, 1u);
  EXPECT_EQ(attainments, 1u);  // one per objective
}

TEST(SloMonitor, BreachLinksOverlappingIncidents) {
  RecoveryTracer tracer;
  const std::size_t open_inc = tracer.note_injection("node:X", 1.95);
  const std::size_t closed_far = tracer.note_injection("node:Y", 0.1);
  tracer.close_incident(closed_far, 0.2);
  SloMonitor mon;
  mon.add_objective(rate_objective());
  mon.attach_tracer(&tracer);
  for (int i = 0; i < 100; ++i) {
    mon.record_good(0, 1.5 + static_cast<double>(i) * 0.001);
  }
  for (int i = 0; i < 50; ++i) {
    mon.record_bad(0, 2.0 + static_cast<double>(i) * 0.001);
  }
  mon.advance_to(2.2);
  ASSERT_FALSE(mon.alerts().empty());
  const SloAlert& breach = mon.alerts().front();
  ASSERT_TRUE(breach.breach);
  // The still-open node:X incident overlaps the long window behind the
  // breach boundary; node:Y closed well before that window opened.
  EXPECT_NE(std::find(breach.incidents.begin(), breach.incidents.end(),
                      open_inc),
            breach.incidents.end());
  EXPECT_EQ(std::find(breach.incidents.begin(), breach.incidents.end(),
                      closed_far),
            breach.incidents.end());
}

TEST(SloMonitor, CloneConfigCopiesObjectivesZeroesState) {
  SloMonitor mon;
  mon.add_objective(rate_objective());
  mon.record_bad(0, 0.1);
  SloMonitor clone = mon.clone_config();
  EXPECT_EQ(clone.objective_count(), 1u);
  EXPECT_EQ(clone.objective(0).name, "errors");
  EXPECT_EQ(clone.bad_total(0), 0u);
  EXPECT_TRUE(clone.alerts().empty());
}

TEST(SloMonitor, MergeAppendsTimelinesWithTracksAndFoldsTotals) {
  SloMonitor proto;
  proto.add_objective(rate_objective());

  auto run_scenario = [&proto](double bad_at) {
    SloMonitor m = proto.clone_config();
    for (int i = 0; i < 100; ++i) {
      m.record_good(0, static_cast<double>(i) * 0.001);
    }
    for (int i = 0; i < 50; ++i) {
      m.record_bad(0, bad_at + static_cast<double>(i) * 0.001);
    }
    m.finish(bad_at + 0.1);
    return m;
  };
  SloMonitor a = run_scenario(0.5);
  SloMonitor b = run_scenario(0.8);

  SloMonitor merged = proto.clone_config();
  merged.merge(a, 0);
  merged.merge(b, 1);
  EXPECT_EQ(merged.good_total(0), 200u);
  EXPECT_EQ(merged.bad_total(0), 100u);
  EXPECT_EQ(merged.breach_count(0), a.breach_count(0) + b.breach_count(0));
  ASSERT_EQ(merged.alerts().size(), a.alerts().size() + b.alerts().size());
  EXPECT_EQ(merged.alerts().front().track, 0u);
  EXPECT_EQ(merged.alerts().back().track, 1u);

  // Scenario-ordered merge is deterministic: same inputs, same
  // fingerprint.
  SloMonitor merged2 = proto.clone_config();
  merged2.merge(run_scenario(0.5), 0);
  merged2.merge(run_scenario(0.8), 1);
  EXPECT_EQ(merged.fingerprint(), merged2.fingerprint());
}

// --- HealthSnapshot / HealthLog ----------------------------------------------

HealthSnapshot sample_snapshot() {
  HealthSnapshot snap;
  snap.sequence = 3;
  snap.at = 1.25;
  snap.queue_depth = 17;
  snap.backpressure = true;
  snap.accepted = 1000;
  snap.processed = 983;
  snap.shed_probes = 12;
  snap.batches = 40;
  snap.replicated = true;
  snap.cluster_term = 2;
  snap.acting_member = 1;
  snap.headless_backlog = 5;
  snap.spare_pool = 8;
  snap.live_link_frac = 0.97;
  HealthHistogramStat hs;
  hs.name = "decision_latency";
  hs.count = 983;
  hs.p50 = 0.004;
  hs.p99 = 0.012;
  hs.p999 = 0.02;
  hs.max = 0.03;
  snap.histograms.push_back(hs);
  HealthObjectiveStat os;
  os.name = "service_availability";
  os.good = 950;
  os.bad = 33;
  os.breaches = 1;
  os.clears = 1;
  os.attainment = 0.966;
  snap.objectives.push_back(os);
  return snap;
}

TEST(HealthSnapshot, JsonIsOneLinePerSnapshot) {
  std::ostringstream os;
  write_health_json(os, sample_snapshot());
  const std::string json = os.str();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":17"), std::string::npos);
  EXPECT_NE(json.find("\"backpressure\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cluster_term\":2"), std::string::npos);
  EXPECT_NE(json.find("\"decision_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"service_availability\""), std::string::npos);
}

TEST(HealthSnapshot, PrometheusExpositionHasTypedFamilies) {
  std::ostringstream os;
  write_health_prometheus(os, sample_snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE sbk_service_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sbk_service_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sbk_service_queue_depth 17"), std::string::npos);
  EXPECT_NE(
      text.find("sbk_latency_seconds{metric=\"decision_latency\","
                "quantile=\"0.99\"} 0.012"),
      std::string::npos);
  EXPECT_NE(
      text.find("sbk_slo_breaches_total{objective=\"service_availability\"}"
                " 1"),
      std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_TRUE(line.compare(0, 4, "sbk_") == 0) << line;
  }
}

TEST(HealthLog, AppendSetsTrackAndFingerprintIsDeterministic) {
  HealthLog a;
  a.add(sample_snapshot());
  HealthLog b;
  HealthSnapshot other = sample_snapshot();
  other.sequence = 0;
  other.queue_depth = 99;
  b.add(other);

  HealthLog merged;
  merged.append(a, 0);
  merged.append(b, 1);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.snapshots()[0].track, 0u);
  EXPECT_EQ(merged.snapshots()[1].track, 1u);

  HealthLog merged2;
  merged2.append(a, 0);
  merged2.append(b, 1);
  EXPECT_EQ(merged.fingerprint(), merged2.fingerprint());

  HealthLog reordered;
  reordered.append(b, 0);
  reordered.append(a, 1);
  EXPECT_NE(merged.fingerprint(), reordered.fingerprint());

  std::ostringstream os;
  merged.write_json(os);
  EXPECT_NE(os.str().find("\"queue_depth\":99"), std::string::npos);
}

// --- flight recorder regressions ---------------------------------------------

TEST(FlightRecorder, WrappedExportIsOldestFirst) {
  FlightRecorder rec(/*enabled=*/true, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    rec.instant("t", "e" + std::to_string(i), static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(i + 2));
    if (i > 0) {
      EXPECT_GE(events[i].ts, events[i - 1].ts);
    }
  }
  // The JSON export walks the same oldest-first order.
  std::ostringstream os;
  rec.write_trace_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("e0"), std::string::npos);
  EXPECT_LT(json.find("e2"), json.find("e5"));
}

TEST(FlightRecorder, ExportDuringOpenScopedSpanIsConsistent) {
  FlightRecorder rec(/*enabled=*/true, /*capacity=*/8);
  rec.instant("t", "before", 0.0);
  {
    ScopedSpan span(&rec, "t", "open_span", 1.0);
    span.set_end(2.0);
    // Mid-span export: the span records only at scope exit, so the
    // snapshot holds everything recorded so far and nothing half-built.
    const std::vector<TraceEvent> mid = rec.events();
    ASSERT_EQ(mid.size(), 1u);
    EXPECT_EQ(mid[0].name, "before");
    // Exporting must not perturb what the span eventually records.
    std::ostringstream os;
    rec.write_trace_json(os);
  }
  const std::vector<TraceEvent> after = rec.events();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].name, "open_span");
  EXPECT_DOUBLE_EQ(after[1].ts, 1.0);
  EXPECT_DOUBLE_EQ(after[1].dur, 1.0);
}

// --- metrics satellites ------------------------------------------------------

TEST(Metrics, CounterSaturatesInsteadOfWrapping) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  const std::uint64_t max = ~std::uint64_t{0};
  c.add(max - 5);
  EXPECT_EQ(c.value(), max - 5);
  c.add(3);
  EXPECT_EQ(c.value(), max - 2);
  c.add(10);  // would wrap: pins at max instead
  EXPECT_EQ(c.value(), max);
  c.add(1);  // stays pinned
  EXPECT_EQ(c.value(), max);
}

TEST(Metrics, MergeWithMismatchedInstrumentSetsTakesTheUnion) {
  MetricsRegistry a;
  a.counter("shared").add(2);
  a.counter("only_a").add(7);
  a.latency("lat_a").record(0.5);

  MetricsRegistry b;
  b.counter("shared").add(3);
  b.counter("only_b").add(11);
  b.gauge("depth_b").set(4.0);
  b.latency("lat_b").record(1.5);

  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 5u);
  EXPECT_EQ(a.counter("only_a").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 11u);
  EXPECT_DOUBLE_EQ(a.gauge("depth_b").value(), 4.0);
  ASSERT_NE(a.find_latency("lat_b"), nullptr);
  EXPECT_EQ(a.find_latency("lat_b")->count(), 1u);
  EXPECT_EQ(a.find_latency("lat_a")->count(), 1u);
  // Missing instruments were created in b's insertion order, after a's.
  ASSERT_EQ(a.counter_names().size(), 3u);
  EXPECT_EQ(a.counter_names()[0], "shared");
  EXPECT_EQ(a.counter_names()[1], "only_a");
  EXPECT_EQ(a.counter_names()[2], "only_b");
}

TEST(Metrics, LatencyReservoirStaysBoundedOverAMillionSamples) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.latency("rt");
  Rng rng(99);
  const std::size_t n = 1'000'000;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform_real(0.001, 0.010);
    sum += v;
    h.record(v);
  }
  // Exact scalars survive decimation untouched.
  EXPECT_EQ(h.count(), n);
  EXPECT_NEAR(h.sum(), sum, sum * 1e-12);
  EXPECT_GE(h.min(), 0.001);
  EXPECT_LE(h.max(), 0.010);
  // The reservoir is bounded by the cap (fixed memory budget), the
  // stride is a power of two, and percentiles stay sane.
  EXPECT_LE(h.summary().count(), LatencyHistogram::kDefaultSampleCap);
  EXPECT_LE(h.memory_bytes(),
            2 * LatencyHistogram::kDefaultSampleCap * sizeof(double));
  EXPECT_GE(h.stride(), 64u);
  EXPECT_EQ(h.stride() & (h.stride() - 1), 0u);
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 0.004);
  EXPECT_LT(p50, 0.007);

  // A tighter cap compacts immediately and keeps the bound.
  h.set_sample_cap(256);
  EXPECT_LE(h.summary().count(), 256u);
}

// --- end-to-end: SLO engine through the service ------------------------------

std::vector<service::ServiceMessage> crash_stream(int repeats) {
  faultinject::FaultPlanConfig pcfg;
  pcfg.switch_failures = 8;
  pcfg.link_failures = 12;
  pcfg.cluster_scenario = faultinject::ClusterScenario::kPrimaryCrash;
  pcfg.cluster_members = 3;
  sharebackup::Fabric fabric(sharebackup::FabricParams{
      .fat_tree = {.k = 4}, .backups_per_group = 1});
  const faultinject::FaultPlan plan =
      faultinject::FaultPlan::generate(fabric, pcfg, 11);
  faultinject::ReportStreamConfig rcfg;
  rcfg.repeats = repeats;
  rcfg.resends = 2;
  rcfg.time_scale = 0.02;
  return faultinject::build_report_stream(plan, rcfg);
}

TEST(ServiceSlo, DisabledEngineLeavesFingerprintSloFree) {
  const std::vector<service::ServiceMessage> stream = crash_stream(4);
  sharebackup::Fabric fabric(sharebackup::FabricParams{
      .fat_tree = {.k = 4}, .backups_per_group = 1});
  control::Controller controller(fabric, control::ControllerConfig{});
  service::ControllerService svc(fabric, controller, {});
  svc.run_inline(stream);
  EXPECT_EQ(svc.fingerprint().find("slo="), std::string::npos);
  EXPECT_TRUE(svc.slo_monitor().alerts().empty());
  EXPECT_TRUE(svc.health_log().empty());
  // The pull hook still answers (with empty objective tables).
  const HealthSnapshot snap = svc.health_snapshot();
  EXPECT_EQ(snap.processed, svc.ingress_stats().processed);
  EXPECT_TRUE(snap.objectives.empty());
}

TEST(ServiceSlo, ReplicatedCrashBreachesAvailabilityAndClears) {
  const std::vector<service::ServiceMessage> stream = crash_stream(8);
  service::ReplicatedServiceConfig rcfg;
  rcfg.service.slo.enabled = true;
  rcfg.cluster.members = 3;
  rcfg.cluster.heartbeat_interval = 0.01 * 0.02;
  rcfg.cluster.miss_threshold = 3;
  rcfg.cluster.election_duration = 0.005 * 0.02;

  auto run = [&] {
    sharebackup::Fabric fabric(sharebackup::FabricParams{
        .fat_tree = {.k = 4}, .backups_per_group = 1});
    service::ReplicatedControllerService svc(fabric, rcfg);
    svc.run_inline(stream);
    return svc.fingerprint();
  };

  sharebackup::Fabric fabric(sharebackup::FabricParams{
      .fat_tree = {.k = 4}, .backups_per_group = 1});
  service::ReplicatedControllerService svc(fabric, rcfg);
  svc.run_inline(stream);

  const SloMonitor& mon = svc.slo_monitor();
  const std::size_t avail = service::ControllerService::kSloAvailability;
  EXPECT_GE(mon.breach_count(avail), 1u);
  EXPECT_EQ(mon.clear_count(avail), mon.breach_count(avail));
  EXPECT_FALSE(mon.breached(avail));
  EXPECT_GT(mon.bad_total(avail), 0u);  // the headless window was seen
  EXPECT_EQ(mon.breach_count(service::ControllerService::kSloLoss), 0u);
  EXPECT_FALSE(svc.health_log().empty());
  const HealthSnapshot& last = svc.health_log().back();
  EXPECT_TRUE(last.replicated);
  EXPECT_EQ(last.headless_backlog, 0u);

  // The whole engine is deterministic: identical runs, identical
  // fingerprints (which cover the alert timeline and snapshot log).
  EXPECT_EQ(run(), run());
  EXPECT_EQ(run(), svc.fingerprint());
}

}  // namespace
}  // namespace sbk::obs::slo
