// Periodic full-state health snapshots of the always-on service: queue
// depth and backpressure, cluster term/primary/headless state, fabric
// spare-pool depth, live-link fraction, every LogHistogram's quantiles
// and every SLO objective's attainment — one struct per sample, taken
// at deterministic virtual-time boundaries (the first batch at or after
// each multiple of the snapshot interval) and serialized to JSON or
// Prometheus text-exposition format on demand via the service's pull
// hook. HealthLog collects the samples of one run; append(other, track)
// concatenates per-scenario logs in scenario order so merged snapshot
// timelines are bit-identical at any producer/thread count.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sbk::obs::slo {

struct HealthHistogramStat {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

struct HealthObjectiveStat {
  std::string name;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  std::uint64_t breaches = 0;
  std::uint64_t clears = 0;
  double attainment = 1.0;
  bool breached = false;
};

struct HealthSnapshot {
  std::uint32_t track = 0;     ///< scenario index, assigned by append()
  std::uint64_t sequence = 0;  ///< per-run sample number, from 0
  Seconds at = 0.0;            ///< virtual time the sample represents
  // --- service ingress -------------------------------------------------------
  std::size_t queue_depth = 0;
  bool backpressure = false;
  std::uint64_t accepted = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t shed_probes = 0;
  std::uint64_t batches = 0;
  // --- controller cluster (defaults describe the single-controller
  // service: always available, no term) --------------------------------------
  bool replicated = false;
  std::size_t cluster_term = 0;
  int acting_member = -1;
  bool cluster_available = true;
  std::size_t headless_backlog = 0;
  double headless_seconds = 0.0;
  // --- fabric / network ------------------------------------------------------
  std::size_t spare_pool = 0;
  double live_link_frac = 1.0;
  // --- distributions + objectives --------------------------------------------
  std::vector<HealthHistogramStat> histograms;
  std::vector<HealthObjectiveStat> objectives;
};

/// One JSON object (single line) per snapshot.
void write_health_json(std::ostream& os, const HealthSnapshot& snap);

/// Prometheus text-exposition rendering of one snapshot: # TYPE
/// comments, sbk_-prefixed families, histogram quantiles and SLO
/// attainment as labeled series.
void write_health_prometheus(std::ostream& os, const HealthSnapshot& snap);

/// The snapshot timeline of one run (or, after append(), of a whole
/// sweep in scenario order).
class HealthLog {
 public:
  void add(HealthSnapshot snap) { snapshots_.push_back(std::move(snap)); }
  [[nodiscard]] const std::vector<HealthSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return snapshots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return snapshots_.empty(); }
  [[nodiscard]] const HealthSnapshot& back() const { return snapshots_.back(); }

  /// Scenario-ordered merge: appends the other log's snapshots with
  /// `track` set (their per-run sequence numbers are preserved).
  void append(const HealthLog& other, std::uint32_t track);

  /// JSON array of every snapshot, one element per line.
  void write_json(std::ostream& os) const;

  /// Canonical rendering of the full timeline; bit-identical across
  /// producer/thread counts for the same virtual-time schedule.
  [[nodiscard]] std::string fingerprint() const;

 private:
  std::vector<HealthSnapshot> snapshots_;
};

}  // namespace sbk::obs::slo
