#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::net {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kEdgeSwitch: return "edge";
    case NodeKind::kAggSwitch: return "agg";
    case NodeKind::kCoreSwitch: return "core";
  }
  return "?";
}

bool is_switch(NodeKind kind) noexcept { return kind != NodeKind::kHost; }

NodeId Network::add_node(NodeKind kind, std::string name, std::int32_t pod,
                         std::int32_t index) {
  nodes_.push_back(Node{kind, std::move(name), pod, index, false});
  adjacency_.emplace_back();
  return NodeId(static_cast<NodeId::value_type>(nodes_.size() - 1));
}

LinkId Network::add_link(NodeId a, NodeId b, double capacity) {
  SBK_EXPECTS(a.valid() && a.index() < nodes_.size());
  SBK_EXPECTS(b.valid() && b.index() < nodes_.size());
  SBK_EXPECTS_MSG(a != b, "self-loops are not meaningful links");
  SBK_EXPECTS(capacity > 0.0);
  links_.push_back(Link{a, b, capacity, false});
  auto id = LinkId(static_cast<LinkId::value_type>(links_.size() - 1));
  adjacency_[a.index()].push_back({id, b});
  adjacency_[b.index()].push_back({id, a});
  ++topo_version_;
  ++structure_version_;
  return id;
}

void Network::set_link_capacity(LinkId id, double capacity) {
  SBK_EXPECTS(capacity >= 0.0);
  Link& l = mutable_link(id);
  if (l.capacity != capacity) {
    l.capacity = capacity;
    ++topo_version_;
  }
}

const Node& Network::node(NodeId id) const {
  SBK_EXPECTS(id.valid() && id.index() < nodes_.size());
  return nodes_[id.index()];
}

const Link& Network::link(LinkId id) const {
  SBK_EXPECTS(id.valid() && id.index() < links_.size());
  return links_[id.index()];
}

Node& Network::mutable_node(NodeId id) {
  SBK_EXPECTS(id.valid() && id.index() < nodes_.size());
  return nodes_[id.index()];
}

Link& Network::mutable_link(LinkId id) {
  SBK_EXPECTS(id.valid() && id.index() < links_.size());
  return links_[id.index()];
}

std::span<const Adjacency> Network::adjacent(NodeId id) const {
  SBK_EXPECTS(id.valid() && id.index() < adjacency_.size());
  return adjacency_[id.index()];
}

NodeId Network::head(DirectedLink dl) const {
  const Link& l = link(dl.link);
  return dl.forward ? l.b : l.a;
}

NodeId Network::tail(DirectedLink dl) const {
  const Link& l = link(dl.link);
  return dl.forward ? l.a : l.b;
}

std::optional<LinkId> Network::find_link(NodeId a, NodeId b) const {
  for (const Adjacency& adj : adjacent(a)) {
    if (adj.peer == b) return adj.link;
  }
  return std::nullopt;
}

DirectedLink Network::directed(LinkId id, NodeId from) const {
  const Link& l = link(id);
  SBK_EXPECTS_MSG(from == l.a || from == l.b,
                  "`from` must be an endpoint of the link");
  return DirectedLink{id, from == l.a};
}

std::vector<NodeId> Network::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind)
      out.push_back(NodeId(static_cast<NodeId::value_type>(i)));
  }
  return out;
}

std::size_t Network::count_of_kind(NodeKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [kind](const Node& n) { return n.kind == kind; }));
}

void Network::fail_node(NodeId id) {
  Node& n = mutable_node(id);
  if (!n.failed) {
    n.failed = true;
    ++failed_nodes_;
    ++topo_version_;
  }
}

void Network::restore_node(NodeId id) {
  Node& n = mutable_node(id);
  if (n.failed) {
    n.failed = false;
    --failed_nodes_;
    ++topo_version_;
  }
}

void Network::fail_link(LinkId id) {
  Link& l = mutable_link(id);
  if (!l.failed) {
    l.failed = true;
    ++failed_links_;
    ++topo_version_;
  }
}

void Network::restore_link(LinkId id) {
  Link& l = mutable_link(id);
  if (l.failed) {
    l.failed = false;
    --failed_links_;
    ++topo_version_;
  }
}

bool Network::usable(LinkId id) const {
  const Link& l = link(id);
  return !l.failed && !node(l.a).failed && !node(l.b).failed;
}

void Network::clear_failures() {
  if (failed_nodes_ > 0 || failed_links_ > 0) ++topo_version_;
  for (Node& n : nodes_) n.failed = false;
  for (Link& l : links_) l.failed = false;
  failed_nodes_ = 0;
  failed_links_ = 0;
}

void Network::retarget_link(LinkId id, NodeId from, NodeId to) {
  Link& l = mutable_link(id);
  SBK_EXPECTS_MSG(from == l.a || from == l.b,
                  "`from` must be a current endpoint");
  SBK_EXPECTS_MSG(to != l.a && to != l.b, "`to` is already an endpoint");
  SBK_EXPECTS(to.valid() && to.index() < nodes_.size());

  // Remove the adjacency entry at `from`, add one at `to`.
  auto& from_adj = adjacency_[from.index()];
  auto it = std::find_if(from_adj.begin(), from_adj.end(),
                         [id](const Adjacency& a) { return a.link == id; });
  SBK_ASSERT(it != from_adj.end());
  NodeId other = it->peer;
  from_adj.erase(it);
  adjacency_[to.index()].push_back({id, other});

  // Fix the peer's adjacency entry to point at the new endpoint.
  auto& other_adj = adjacency_[other.index()];
  auto oit = std::find_if(other_adj.begin(), other_adj.end(),
                          [id](const Adjacency& a) { return a.link == id; });
  SBK_ASSERT(oit != other_adj.end());
  oit->peer = to;

  if (l.a == from) l.a = to; else l.b = to;
  ++topo_version_;
  ++structure_version_;
}

}  // namespace sbk::net
