// Shared experiment setup for the Figure 1 reproductions: the paper maps
// the Facebook coflow trace (150 racks, 10:1 oversubscribed) onto a
// similar-sized k=16 fat-tree (128 racks) with the same edge
// oversubscription, routed with ECMP.
#pragma once

#include <vector>

#include "sim/flow.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"
#include "workload/coflow_gen.hpp"

namespace sbk::bench {

inline topo::FatTreeParams paper_fat_tree(
    int k = 16, topo::Wiring wiring = topo::Wiring::kPlain) {
  topo::FatTreeParams p{.k = k, .wiring = wiring};
  p.hosts_per_edge = 1;  // one rack-aggregate host per edge switch
  // 10:1 oversubscription at the edge: rack NIC = 10x uplink budget.
  p.host_link_capacity = 10.0 * (k / 2);
  return p;
}

inline workload::CoflowWorkloadParams paper_workload(int racks,
                                                     std::size_t coflows,
                                                     Seconds duration) {
  workload::CoflowWorkloadParams wp;
  wp.racks = racks;
  wp.coflows = coflows;
  wp.duration = duration;
  return wp;
}

inline std::vector<sim::FlowSpec> make_flows(const topo::FatTree& ft,
                                             std::size_t coflows,
                                             Seconds duration,
                                             std::uint64_t seed) {
  Rng rng(seed);
  auto trace =
      workload::generate_coflows(paper_workload(ft.host_count(), coflows,
                                                duration),
                                 rng);
  return workload::expand_to_flows(ft, trace);
}

}  // namespace sbk::bench
