// Physical device identities shared by the ShareBackup fabrics (fat-tree
// and leaf-spine): uid handles and lifecycle states.
#pragma once

#include <cstdint>
#include <string>

#include "topo/position.hpp"

namespace sbk::sharebackup {

using DeviceUid = std::uint32_t;
inline constexpr DeviceUid kNoDeviceUid = static_cast<DeviceUid>(-1);

/// A physical box: a packet switch (possibly a backup) or a host.
struct PhysicalDevice {
  DeviceUid uid = kNoDeviceUid;
  bool is_host = false;
  topo::Layer layer = topo::Layer::kEdge;  ///< meaningless for hosts
  int group = -1;                          ///< failure group id; -1 for hosts
  std::string name;
};

/// Where a physical device currently stands.
enum class DeviceState : std::uint8_t {
  kInService,  ///< serving a position
  kSpare,      ///< idle backup, available for failover
  kOut,        ///< failed / taken offline, awaiting repair or exoneration
};

}  // namespace sbk::sharebackup
