// Binds a FaultPlan to one live simulation: schedules the plan's
// failures on the event queue, installs the control-channel fault hooks
// on the ControlPlane and Controller, simulates the background services
// the paper assumes exist (a repair crew returning confirmed-faulty
// hardware, an operator servicing tripped watchdogs), and checks the
// end-of-run robustness invariants.
//
// Invariants checked by verify():
//   1. Every injected failure is either recovered (element healthy) or
//      explicitly parked by the controller for a hardware re-attempt —
//      nothing is silently lost. A parked failure must have a cause: an
//      exhausted backup pool on (one of) its failure group(s), or a
//      currently tripped watchdog holding recovery for humans.
//   2. No failure report was dropped (buffering must cover elections).
//   3. Offline diagnosis drained (background work cannot leak).
//   4. The fabric's internal invariants hold (circuit matchings, pool
//      accounting, device states).
//   5. Forwarding is correct under whatever failover state the chaos
//      run produced: sampled host pairs route on valid, live paths.
//   6. Recovery-timeline spans are monotone for every incident (when a
//      tracer is supplied).
#pragma once

#include <string>
#include <vector>

#include "control/control_plane.hpp"
#include "faultinject/fault_plan.hpp"
#include "obs/recovery_tracer.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sbk::faultinject {

class ChaosInjector {
 public:
  /// All four references must outlive the injector and the queue run.
  ChaosInjector(sharebackup::Fabric& fabric, control::ControlPlane& plane,
                sim::EventQueue& queue, const FaultPlan& plan);

  /// Installs hooks and schedules every planned event. Call once, before
  /// running the queue (and after ControlPlane::start so detectors are
  /// armed for the whole horizon).
  void arm();

  /// What the injector actually did (plans can be partially skipped when
  /// a victim is already failed at its scheduled time).
  struct Stats {
    std::size_t switch_failures_injected = 0;
    std::size_t link_failures_injected = 0;
    std::size_t injections_skipped = 0;
    std::size_t doa_interfaces_broken = 0;
    std::size_t reports_lost = 0;
    std::size_t reports_delayed = 0;
    std::size_t commands_perturbed = 0;
    std::size_t controller_crashes = 0;
    std::size_t devices_repaired = 0;
    std::size_t watchdog_services = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

  /// Runs the end-of-run invariant checks (see file comment) and returns
  /// one human-readable string per violation; empty means clean. Call
  /// after the event queue has drained.
  [[nodiscard]] std::vector<std::string> verify(
      const obs::RecoveryTracer* tracer = nullptr) const;

 private:
  [[nodiscard]] bool faults_active() const;
  void inject_switch_failure(const SwitchFailureEvent& ev);
  void inject_link_failure(const LinkFailureEvent& ev);
  void crash_controller(const ControllerCrashEvent& ev);
  void repair_tick();
  void operator_tick();
  /// Settle-tail sweep: service any tripped watchdog and re-drive parked
  /// recoveries against the now-clean channels.
  void final_sweep();

  void record_node(net::NodeId node);
  void record_link(net::LinkId link);
  [[nodiscard]] bool node_parked(net::NodeId node) const;
  [[nodiscard]] bool link_parked(net::LinkId link) const;
  /// A parked element is excused iff a pool it needs is empty or the
  /// watchdog currently holds recovery.
  [[nodiscard]] bool parked_node_excused(net::NodeId node) const;
  [[nodiscard]] bool parked_link_excused(net::LinkId link) const;
  [[nodiscard]] bool group_pool_empty(net::NodeId node) const;

  sharebackup::Fabric* fabric_;
  control::ControlPlane* plane_;
  sim::EventQueue* queue_;
  const FaultPlan* plan_;
  Rng report_rng_;
  Rng command_rng_;
  Stats stats_;
  bool armed_ = false;
  /// Distinct elements actually failed by this injector (verify targets).
  std::vector<net::NodeId> injected_nodes_;
  std::vector<net::LinkId> injected_links_;
  /// Closed set of switch-device uids (positions + initial spares); the
  /// repair crew scans it for out-of-service hardware.
  std::vector<sharebackup::DeviceUid> switch_devices_;
};

}  // namespace sbk::faultinject
