// Synthetic coflow workload generator calibrated to the shape of the
// Facebook coflow benchmark the paper replays (Chowdhury & Stoica's
// coflow-benchmark: 526 coflows of rack-aggregated shuffle traffic from a
// 150-rack, 10:1 oversubscribed MapReduce cluster).
//
// We do not possess the proprietary trace, so we synthesize coflows with
// the published structural properties (see DESIGN.md §6):
//   * a coflow is an M x R shuffle: M mapper racks send to R reducer
//     racks; every reducer receives its shuffle volume spread evenly over
//     the M mappers;
//   * widths (M, R) are heavy-tailed: most coflows are narrow, a few
//     span a large fraction of the cluster;
//   * per-reducer volume is heavy-tailed (Pareto): most coflows are
//     small, a few huge coflows dominate total bytes;
//   * arrivals are Poisson over the trace duration.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/flow.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace sbk::workload {

/// One rack-level coflow: a shuffle from mapper racks to reducer racks.
struct CoflowSpec {
  sim::CoflowId id = 0;
  Seconds arrival = 0.0;
  std::vector<int> mapper_racks;
  struct Reducer {
    int rack = 0;
    double bytes = 0.0;  ///< total shuffle volume received by this reducer
  };
  std::vector<Reducer> reducers;

  [[nodiscard]] std::size_t width() const noexcept {
    return mapper_racks.size() * reducers.size();
  }
  [[nodiscard]] double total_bytes() const noexcept;
};

/// Generator knobs. Defaults reproduce the benchmark's shape on a
/// 128-rack (k=16) network.
struct CoflowWorkloadParams {
  int racks = 128;
  std::size_t coflows = 250;
  Seconds duration = 300.0;  ///< arrival window (5 minutes, as in §2.2)
  /// Mapper/reducer counts: 1 + lognormal, clamped to `racks`.
  double width_lognorm_mu = 0.7;
  double width_lognorm_sigma = 1.3;
  /// Per-reducer shuffle volume: Pareto(xm, alpha), clamped below `cap`.
  double reducer_bytes_xm = 5e6;      ///< 5 MB scale
  double reducer_bytes_alpha = 1.05;  ///< heavy tail
  double reducer_bytes_cap = 5e10;    ///< 50 GB per reducer cap
};

/// Deterministically generates a coflow trace from `rng`.
[[nodiscard]] std::vector<CoflowSpec> generate_coflows(
    const CoflowWorkloadParams& params, Rng& rng);

/// Expands rack-level coflows into host-to-host flows on `ft`, mapping
/// rack r to host r (requires hosts_per_edge == 1 style rack hosts or at
/// least ft.host_count() >= racks). Mapper->reducer pairs in the same
/// rack carry no fabric traffic and are skipped. Flow ids are assigned
/// sequentially from `first_flow_id`.
[[nodiscard]] std::vector<sim::FlowSpec> expand_to_flows(
    const topo::FatTree& ft, const std::vector<CoflowSpec>& coflows,
    sim::FlowId first_flow_id = 0);

/// Coflows whose arrival lies in [from, to) — the paper's 5-minute trace
/// partitions. Arrivals are shifted so the partition starts at 0.
[[nodiscard]] std::vector<CoflowSpec> partition(
    const std::vector<CoflowSpec>& trace, Seconds from, Seconds to);

}  // namespace sbk::workload
