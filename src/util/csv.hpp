// Tiny CSV emitter used by the benchmark harnesses so every figure/table
// is reproducible both as console output and as a machine-readable file.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sbk {

/// Streams rows of comma-separated values with correct quoting. The writer
/// does not own the stream; keep the stream alive while writing.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; fields containing commas, quotes, or newlines are
  /// quoted per RFC 4180.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats doubles compactly (6 significant digits) for
  /// human-facing experiment tables.
  [[nodiscard]] static std::string num(double v);
  /// Shortest representation that round-trips the exact double — for
  /// outputs that are re-parsed and compared (e.g. recovery timelines
  /// cross-checked against flight-recorder traces).
  [[nodiscard]] static std::string num_exact(double v);
  [[nodiscard]] static std::string num(std::size_t v);
  [[nodiscard]] static std::string num(long long v);
  [[nodiscard]] static std::string num(int v);

 private:
  static std::string escape(std::string_view field);
  std::ostream* out_;
};

}  // namespace sbk
