// The logically centralized ShareBackup network controller (§4).
//
// Responsibilities implemented here:
//   * node-failure recovery: allocate a backup from the failure group and
//     reconfigure the group's circuit switches (§4.1);
//   * link-failure recovery: replace the switches on *both* sides
//     immediately, then queue offline diagnosis to exonerate the healthy
//     one and return it to the pool (§4.1-4.2);
//   * host-link policy: hosts cannot be probed offline, so the edge
//     switch is assumed at fault; if the failure persists after the
//     replacement, the switch is redressed healthy and the host flagged
//     for troubleshooting (§4.2);
//   * circuit-switch watchdog: a burst of link-failure reports localized
//     to one circuit switch stops automatic recovery and requests human
//     intervention (§5.1);
//   * recovery-latency accounting (§5.3): detection + notification +
//     processing + circuit reconfiguration.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/diagnosis.hpp"
#include "control/table_manager.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_tracer.hpp"
#include "sharebackup/fabric.hpp"
#include "util/time.hpp"

namespace sbk::control {

struct ControllerConfig {
  /// Keep-alive / link-probe interval (same as F10 and Aspen Tree, §5.3).
  Seconds probe_interval = milliseconds(1);
  /// Consecutive misses before a failure is declared.
  int miss_threshold = 3;
  /// One-way switch-to-controller report latency ("sub-ms with an
  /// efficient kernel-module implementation", §5.3).
  Seconds report_latency = microseconds(100);
  /// Controller decision time per failure event.
  Seconds processing_latency = microseconds(50);
  /// One-way controller-to-circuit-switch command latency.
  Seconds command_latency = microseconds(100);
  /// Link-failure reports attributable to one circuit switch within the
  /// window before recovery halts and humans are paged (§5.1).
  std::size_t watchdog_threshold = 4;
  Seconds watchdog_window = 1.0;
};

/// What the controller did about one failure event.
struct RecoveryOutcome {
  bool recovered = false;
  /// Failovers executed (2 for a switch-switch link failure).
  std::vector<sharebackup::Fabric::FailoverReport> failovers;
  /// Report arrival to circuits reconfigured (excludes detection time;
  /// see RecoveryLatencyModel for end-to-end numbers).
  Seconds control_latency = 0.0;
  std::string detail;
};

/// One entry of the controller's append-only audit trail: everything an
/// operator needs to reconstruct what the control plane did and when.
struct AuditEntry {
  Seconds at = 0.0;
  std::string event;   ///< e.g. "failover", "diagnosis", "repair"
  std::string detail;  ///< human-readable specifics
};

/// Aggregate controller statistics.
struct ControllerStats {
  std::size_t node_failures_handled = 0;
  std::size_t link_failures_handled = 0;
  std::size_t host_link_failures_handled = 0;
  std::size_t failovers = 0;
  std::size_t recoveries_failed_pool_exhausted = 0;
  std::size_t diagnoses_run = 0;
  std::size_t switches_exonerated = 0;
  std::size_t switches_confirmed_faulty = 0;
  std::size_t hosts_flagged = 0;
  std::size_t watchdog_trips = 0;
};

class Controller {
 public:
  Controller(sharebackup::Fabric& fabric, ControllerConfig config);

  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

  // --- failure handling ------------------------------------------------------
  /// Handles a detected switch (node) failure at `pos`. The caller (the
  /// failure detector or a test) must already have failed the position's
  /// node in the Network; recovery restores it.
  RecoveryOutcome on_switch_failure(sharebackup::SwitchPosition pos);

  /// Handles a detected link failure. For switch-switch links both
  /// endpoints are replaced and diagnosis is queued; for host-edge links
  /// only the edge switch is replaced, with the host-policy fallback.
  RecoveryOutcome on_link_failure(net::LinkId link);

  // --- background work --------------------------------------------------------
  /// Runs all queued offline diagnoses; exonerated devices return to
  /// their pools. Returns the number processed.
  std::size_t run_pending_diagnosis();
  [[nodiscard]] std::size_t pending_diagnosis() const noexcept {
    return diagnosis_queue_.size();
  }

  /// A technician repaired a confirmed-faulty device: heal its interfaces
  /// and return it to the pool as a backup (the paper keeps roles fluid).
  void on_device_repaired(sharebackup::DeviceUid dev);

  /// Failures that could not be recovered (pool exhausted) are parked and
  /// automatically retried whenever a device returns to a pool. The
  /// listener fires for each retried recovery so the caller (e.g.
  /// ControlPlane) can re-arm detectors and notify observers.
  using RetryListener = std::function<void(
      const RecoveryOutcome&, std::optional<net::NodeId> node,
      std::optional<net::LinkId> link)>;
  void set_retry_listener(RetryListener listener) {
    retry_listener_ = std::move(listener);
  }
  [[nodiscard]] std::size_t pending_recoveries() const noexcept {
    return pending_nodes_.size() + pending_links_.size();
  }

  // --- watchdog / status -------------------------------------------------------
  [[nodiscard]] bool human_intervention_required() const noexcept {
    return watchdog_tripped_;
  }
  /// Clears the watchdog after manual service (e.g. circuit switch
  /// rebooted and re-synced from the controller).
  void acknowledge_intervention() noexcept { watchdog_tripped_ = false; }

  [[nodiscard]] const ControllerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& flagged_hosts() const noexcept {
    return flagged_hosts_;
  }
  /// Append-only operations log (timestamps from set_time()).
  [[nodiscard]] const std::vector<AuditEntry>& audit_log() const noexcept {
    return audit_;
  }

  /// End-to-end recovery latency for one failure under this config:
  /// detection (worst-case probe misses) + report + processing + command
  /// + circuit reconfiguration.
  [[nodiscard]] Seconds end_to_end_recovery_latency() const;

  /// Advances the watchdog's notion of time (reports are timestamped with
  /// it). Tests and the control-plane simulation drive this.
  void set_time(Seconds now) noexcept { now_ = now; }

  /// Attaches the §4.3 routing-table mirror: every failover / pool
  /// return the controller performs is reflected in the manager's
  /// ImpersonationStore, keeping preloaded-table assignment in sync with
  /// the physical devices. Optional; pass nullptr to detach. The manager
  /// must outlive the controller.
  void attach_table_manager(TableManager* tables) noexcept {
    tables_ = tables;
  }

  /// Recovery-timeline spans per incident: "notification" (report
  /// arrival), "decision", "command", "reconfiguration",
  /// "table_activation" (when a table manager is attached), with
  /// trailing "diagnosis" / "restore" background spans. Incidents are
  /// correlated with the detector's through the canonical obs element
  /// names. Pass nullptr to detach; must outlive the controller.
  void attach_tracer(obs::RecoveryTracer* tracer) noexcept {
    tracer_ = tracer;
  }
  /// Counters controller.{failovers,diagnoses,watchdog_trips,
  /// pool_exhausted} and latency histogram controller.control_latency.
  /// Pass nullptr to detach. The registry must outlive the controller.
  void attach_metrics(obs::MetricsRegistry* metrics);

 private:
  struct PendingDiagnosis {
    sharebackup::DeviceUid a;
    sharebackup::DeviceUid b;
    std::size_t cs;
    /// Tracer incident the diagnosed link failure belongs to.
    std::size_t incident = obs::RecoveryTracer::kNoIncident;
  };

  void note_link_report_for_watchdog(std::size_t cs);
  [[nodiscard]] Seconds control_path_latency() const;

  /// Records the control-path spans for a completed failover on
  /// `element` starting at now_ and closes the incident at the
  /// reconfiguration end. Returns the incident (kNoIncident when no
  /// tracer is attached) so background work can append to it.
  std::size_t trace_recovery(const std::string& element);

  void mirror_failover(const sharebackup::Fabric::FailoverReport& report);
  void mirror_return(sharebackup::DeviceUid dev);
  void park_node(sharebackup::SwitchPosition pos);
  void park_link(net::LinkId link);
  void audit(std::string event, std::string detail);
  /// Re-attempts parked recoveries after a pool replenishment.
  void retry_pending();

  sharebackup::Fabric* fabric_;
  ControllerConfig config_;
  DiagnosisEngine engine_;
  TableManager* tables_ = nullptr;
  std::deque<PendingDiagnosis> diagnosis_queue_;
  std::vector<sharebackup::SwitchPosition> pending_nodes_;
  std::vector<net::LinkId> pending_links_;
  RetryListener retry_listener_;
  bool retrying_ = false;
  std::vector<std::pair<Seconds, std::size_t>> recent_link_reports_;
  std::vector<net::NodeId> flagged_hosts_;
  std::vector<AuditEntry> audit_;
  ControllerStats stats_;
  bool watchdog_tripped_ = false;
  Seconds now_ = 0.0;
  obs::RecoveryTracer* tracer_ = nullptr;
  /// Incident to attach a "restore" span to when a confirmed-faulty
  /// device comes back via on_device_repaired().
  std::unordered_map<sharebackup::DeviceUid, std::size_t>
      incident_of_faulty_;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_diagnoses_ = nullptr;
  obs::Counter* m_watchdog_trips_ = nullptr;
  obs::Counter* m_pool_exhausted_ = nullptr;
  obs::LatencyHistogram* m_control_latency_ = nullptr;
};

}  // namespace sbk::control
