#include "util/log.hpp"

#include <iostream>

namespace sbk {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

bool g_capture = false;
std::string g_buffer;
}  // namespace

LogLevel Log::level_ = LogLevel::kWarn;

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  std::ostringstream os;
  os << '[' << level_name(level) << "] [" << component << "] " << message
     << '\n';
  if (g_capture) {
    g_buffer += os.str();
  } else {
    std::cerr << os.str();
  }
}

void Log::capture(bool on) {
  g_capture = on;
  if (on) g_buffer.clear();
}

std::string Log::captured() { return g_buffer; }

}  // namespace sbk
