// Tests for the assembled control plane: detection-to-recovery wiring,
// background diagnosis scheduling, table mirroring, cluster gating, and
// repeated-failure handling at one position (re-armed detectors).
#include <gtest/gtest.h>

#include "control/control_plane.hpp"
#include "net/algo.hpp"

namespace sbk::control {
namespace {

using sharebackup::DeviceState;
using sharebackup::Fabric;
using sharebackup::FabricParams;
using sharebackup::InterfaceRef;
using topo::Layer;
using topo::SwitchPosition;

FabricParams fp(int k, int n) {
  FabricParams p;
  p.fat_tree.k = k;
  p.backups_per_group = n;
  return p;
}

TEST(ControlPlane, NodeFailureRecoversEndToEnd) {
  Fabric fabric(fp(6, 1));
  sim::EventQueue q;
  ControlPlane plane(fabric, q, ControlPlaneConfig{});
  plane.start(0.1);

  net::NodeId victim = fabric.fat_tree().core(3);
  Seconds recovered_at = -1.0;
  plane.on_recovery([&](const RecoveryOutcome& out, Seconds t) {
    if (out.recovered) recovered_at = t;
  });
  q.schedule_at(0.010, [&] { fabric.network().fail_node(victim); });
  q.run();
  EXPECT_GT(recovered_at, 0.010);
  EXPECT_LT(recovered_at, 0.020);
  EXPECT_FALSE(fabric.network().node_failed(victim));
}

TEST(ControlPlane, LinkFailureDiagnosedInBackground) {
  Fabric fabric(fp(6, 1));
  sim::EventQueue q;
  ControlPlaneConfig cfg;
  cfg.diagnosis_delay = 0.05;
  ControlPlane plane(fabric, q, cfg);
  plane.start(0.5);

  net::NodeId edge = fabric.fat_tree().edge(1, 0);
  net::NodeId agg = fabric.fat_tree().agg(1, 1);
  net::LinkId link = *fabric.network().find_link(edge, agg);
  std::size_t cs = fabric.cs_of_link(link);
  q.schedule_at(0.02, [&] {
    auto dev = fabric.device_at(*fabric.position_of_node(edge));
    fabric.set_interface_health({dev, cs}, false);
    fabric.network().fail_link(link);
  });
  q.run();
  EXPECT_FALSE(fabric.network().link_failed(link));
  // Diagnosis ran via the scheduled background job: the agg side is back
  // in its pool, the faulty edge device is out.
  EXPECT_EQ(plane.controller().pending_diagnosis(), 0u);
  EXPECT_EQ(plane.controller().stats().switches_exonerated, 1u);
  EXPECT_EQ(fabric.spares(Layer::kAgg, 1).size(), 1u);
  // Tables mirrored throughout.
  ASSERT_NE(plane.tables(), nullptr);
  plane.tables()->check_mirrored(fabric);
}

TEST(ControlPlane, RepeatedFailuresAtSamePositionAreReDetected) {
  // Position fails, recovers, and the *replacement* fails later: the
  // re-armed keep-alive detector must catch the second failure too.
  Fabric fabric(fp(6, 2));
  sim::EventQueue q;
  ControlPlane plane(fabric, q, ControlPlaneConfig{});
  plane.start(0.2);

  SwitchPosition pos{Layer::kAgg, 0, 0};
  net::NodeId node = fabric.node_at(pos);
  int recoveries = 0;
  plane.on_recovery([&](const RecoveryOutcome& out, Seconds) {
    if (out.recovered && !out.failovers.empty()) ++recoveries;
  });
  q.schedule_at(0.010, [&] { fabric.network().fail_node(node); });
  q.schedule_at(0.100, [&] { fabric.network().fail_node(node); });
  q.run();
  EXPECT_EQ(recoveries, 2);
  EXPECT_TRUE(fabric.spares(Layer::kAgg, 0).empty());
  EXPECT_FALSE(fabric.network().node_failed(node));
}

TEST(ControlPlane, ReportsDroppedWhileClusterHasNoPrimary) {
  // Historical drop behavior, now opt-in: with buffering disabled a
  // report that arrives while the cluster is headless is lost.
  Fabric fabric(fp(4, 1));
  sim::EventQueue q;
  ControlPlaneConfig cfg;
  cfg.cluster_members = 2;
  cfg.buffer_reports_during_election = false;
  // Make elections slow so the outage window is wide.
  cfg.cluster.election_duration = 0.050;
  ControlPlane plane(fabric, q, cfg);
  plane.start(0.5);

  // Kill every controller, then a switch while headless.
  q.schedule_at(0.01, [&] {
    plane.cluster()->fail_member(0);
    plane.cluster()->fail_member(1);
  });
  net::NodeId victim = fabric.fat_tree().core(0);
  q.schedule_at(0.05, [&] { fabric.network().fail_node(victim); });
  q.run();
  EXPECT_GE(plane.reports_dropped(), 1u);
  EXPECT_EQ(plane.reports_buffered(), 0u);
  EXPECT_TRUE(fabric.network().node_failed(victim));  // nobody recovered it
  EXPECT_EQ(plane.controller().stats().failovers, 0u);
}

TEST(ControlPlane, ReportsBufferedDuringElectionReplayToNewPrimary) {
  // Default behavior: a report that lands in an election window is
  // buffered and replayed once the new primary is elected.
  Fabric fabric(fp(4, 1));
  sim::EventQueue q;
  ControlPlaneConfig cfg;
  cfg.cluster_members = 2;
  cfg.cluster.election_duration = 0.050;
  ControlPlane plane(fabric, q, cfg);
  plane.start(0.5);

  // Kill only the primary: member 0 stays alive and wins the election.
  q.schedule_at(0.01, [&] { plane.cluster()->fail_member(1); });
  net::NodeId victim = fabric.fat_tree().core(0);
  Seconds recovered_at = -1.0;
  plane.on_recovery([&](const RecoveryOutcome& out, Seconds t) {
    if (out.recovered && !out.failovers.empty()) recovered_at = t;
  });
  q.schedule_at(0.015, [&] { fabric.network().fail_node(victim); });
  q.run();
  EXPECT_EQ(plane.reports_dropped(), 0u);
  EXPECT_GE(plane.reports_buffered(), 1u);
  EXPECT_GE(plane.reports_replayed(), 1u);
  EXPECT_FALSE(fabric.network().node_failed(victim));
  EXPECT_EQ(plane.controller().stats().failovers, 1u);
  // Recovery happened at the election-completion timestamp, not before.
  EXPECT_GT(recovered_at, 0.015);
}

TEST(ControlPlane, TotalClusterDeathBuffersUntilMemberRepaired) {
  // The satellite regression: every controller dies, a network failure
  // arrives while headless, then one member is repaired. The repaired
  // member must restart heartbeats, win an election, and receive the
  // buffered report — the failure recovers and available() is true.
  Fabric fabric(fp(4, 1));
  sim::EventQueue q;
  ControlPlaneConfig cfg;
  cfg.cluster_members = 3;
  ControlPlane plane(fabric, q, cfg);
  plane.start(1.0);

  q.schedule_at(0.01, [&] {
    plane.cluster()->fail_member(0);
    plane.cluster()->fail_member(1);
    plane.cluster()->fail_member(2);
  });
  net::NodeId victim = fabric.fat_tree().core(1);
  q.schedule_at(0.05, [&] { fabric.network().fail_node(victim); });
  q.schedule_at(0.30, [&] { plane.cluster()->repair_member(0); });
  q.run();
  EXPECT_TRUE(plane.cluster()->available());
  EXPECT_EQ(plane.cluster()->primary(), std::optional<std::size_t>(0));
  EXPECT_EQ(plane.reports_dropped(), 0u);
  EXPECT_GE(plane.reports_buffered(), 1u);
  EXPECT_GE(plane.reports_replayed(), 1u);
  EXPECT_FALSE(fabric.network().node_failed(victim));
  EXPECT_EQ(plane.controller().stats().failovers, 1u);
}

TEST(ControlPlane, SingleControllerModeWorksWithoutCluster) {
  Fabric fabric(fp(4, 1));
  sim::EventQueue q;
  ControlPlaneConfig cfg;
  cfg.cluster_members = 0;
  cfg.manage_tables = false;
  ControlPlane plane(fabric, q, cfg);
  EXPECT_EQ(plane.cluster(), nullptr);
  EXPECT_EQ(plane.tables(), nullptr);
  plane.start(0.1);
  net::NodeId victim = fabric.fat_tree().edge(0, 0);
  q.schedule_at(0.01, [&] { fabric.network().fail_node(victim); });
  q.run();
  EXPECT_FALSE(fabric.network().node_failed(victim));
  EXPECT_EQ(plane.controller().stats().failovers, 1u);
}

}  // namespace
}  // namespace sbk::control
