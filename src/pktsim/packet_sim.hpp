// Packet-level network simulator — the class of simulator the paper's
// §2.2 failure study actually runs ("we run the coflow trace ... on
// packet-level simulators of the fat-tree and F10 networks").
//
// Model:
//   * store-and-forward output-queued switches over the same
//     net::Network; each directed link has a serialization rate
//     (capacity x unit bytes/s), a fixed propagation delay, and a
//     drop-tail FIFO whose occupancy is implied by the link's
//     work-conserving busy horizon;
//   * source routing: each flow is pinned to a path obtained from a
//     routing::Router, re-queried after timeouts (modeling rerouting
//     convergence);
//   * a TCP-Reno-like transport per flow: slow start, AIMD congestion
//     avoidance, triple-duplicate-ACK fast retransmit, and RTO with
//     exponential backoff and a configurable floor. The RTO floor is
//     what turns transient congestion and blackholes into the
//     orders-of-magnitude CCT inflation the paper reports — an effect
//     fluid rate-sharing models structurally cannot reproduce (see
//     sim::AllocationModel and the E3 ablation).
//
// The simulator reuses sim::FlowSpec / sim::FlowResult so coflow
// aggregation and the benchmark harnesses work across both engines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "routing/router.hpp"
#include "sim/event_queue.hpp"
#include "sim/flow.hpp"
#include "util/time.hpp"

namespace sbk::pktsim {

struct PktSimConfig {
  /// Bytes per second carried by one capacity unit (1 unit = 1 Gbps).
  double unit_bytes_per_second = 125e6;
  /// Per-hop propagation delay.
  Seconds propagation_delay = microseconds(1);
  /// Drop-tail queue capacity per directed link, in bytes (~100 MTU).
  std::size_t queue_capacity_bytes = 150000;
  /// TCP segment payload / header sizes.
  int mss_bytes = 1460;
  int header_bytes = 40;
  /// Initial window and RTO floor (the classic 200 ms minimum RTO is the
  /// tail-latency villain of data center transport; set lower to model
  /// DC-tuned stacks).
  double initial_cwnd = 10.0;
  Seconds min_rto = milliseconds(200);
  Seconds max_rto = 10.0;
  /// DCTCP-style ECN: packets are marked when their link's backlog
  /// exceeds `ecn_threshold_bytes` at enqueue; receivers echo marks in
  /// ACKs; senders keep an EWMA of the marked fraction (gain `dctcp_g`)
  /// and scale cwnd by (1 - alpha/2) once per window of marked feedback.
  /// Keeps queues shallow and largely avoids drops/timeouts under
  /// congestion (but cannot help with blackholes — see the tests).
  bool ecn_enabled = false;
  std::size_t ecn_threshold_bytes = 30000;  ///< ~20 MTU
  double dctcp_g = 1.0 / 16.0;
  /// Stop simulating at this time; unfinished flows reported as such.
  Seconds horizon = 1e18;
};

/// Aggregate transport/network counters.
struct PktSimStats {
  std::size_t data_packets_sent = 0;
  std::size_t acks_sent = 0;
  std::size_t drops_queue_overflow = 0;
  std::size_t drops_dead_element = 0;
  std::size_t fast_retransmits = 0;
  std::size_t timeouts = 0;
  std::size_t reroutes = 0;
  std::size_t ecn_marks = 0;
  std::size_t ecn_window_cuts = 0;
};

class PacketSimulator {
 public:
  PacketSimulator(net::Network& net, routing::Router& router,
                  PktSimConfig cfg);
  ~PacketSimulator();

  PacketSimulator(const PacketSimulator&) = delete;
  PacketSimulator& operator=(const PacketSimulator&) = delete;

  void add_flow(const sim::FlowSpec& flow);
  void add_flows(std::span<const sim::FlowSpec> flows);

  /// Schedules a topology mutation (failure/repair) at `when`. Packets
  /// crossing a dead element are dropped; transports recover via
  /// retransmission and re-routing.
  void at(Seconds when, std::function<void(net::Network&)> action);

  /// Runs to completion (or the horizon); results ordered by flow id.
  [[nodiscard]] std::vector<sim::FlowResult> run();

  [[nodiscard]] const PktSimStats& stats() const noexcept { return stats_; }

  /// Instants for transport-level incidents (timeouts, fast retransmits,
  /// reroutes) and topology actions, timestamped with the internal event
  /// queue's clock. Pass nullptr to detach; the recorder must outlive
  /// the simulator.
  void attach_recorder(obs::FlightRecorder* recorder) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  PktSimStats stats_;
};

}  // namespace sbk::pktsim
