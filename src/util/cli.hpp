// Strict command-line parsing shared by the example CLIs. The previous
// hand-rolled loops silently ignored unknown flags and parsed garbage
// numerics as 0 via strtol — a mistyped `--sceanrios=...` or a stray
// argument would run a soak with defaults and report success. Here every
// flag must be declared, every declared value-flag must carry a
// non-empty value, and numerics must consume their whole token;
// violations produce an error for the caller to print alongside its
// usage text before exiting non-zero.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbk::cli {

/// One accepted `--name` flag. `requires_value` flags take the form
/// `--name=value`; bare flags reject any attached value.
struct FlagSpec {
  std::string_view name;  ///< without the leading "--"
  bool requires_value = true;
};

struct ParsedFlag {
  std::string name;
  std::string value;  ///< empty for bare flags
};

/// Result of parse_args: either ok() with flags/positionals, or an
/// error message describing the first rejected argument.
struct ParseResult {
  std::vector<ParsedFlag> flags;
  std::vector<std::string> positional;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
  /// Last value of a flag, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> value_of(
      std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;
};

/// Parses argv[1..argc). Arguments starting with "--" must match a spec;
/// anything else is positional. `max_positional` bounds the positional
/// count (excess is an error, catching forgotten `--` prefixes).
[[nodiscard]] ParseResult parse_args(int argc, const char* const* argv,
                                     const std::vector<FlagSpec>& specs,
                                     std::size_t max_positional = 64);

/// Whole-token numeric conversions: "12x", "", and out-of-range values
/// yield nullopt instead of a silent prefix parse.
[[nodiscard]] std::optional<long long> parse_int(std::string_view text);
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

}  // namespace sbk::cli
