// Trace analyzer CLI for flight-recorder exports.
//
//   sbk_trace summary   trace.json [--top=N]
//   sbk_trace service   trace.json
//   sbk_trace incidents trace.json [--telemetry=t.csv] [--window=seconds]
//   sbk_trace slo       trace.json
//   sbk_trace check     trace.json [--timeline=timeline.csv]
//
// `summary` aggregates spans by (category, name) and prints the top
// groups by cumulative wall-clock time (simulated time when no wall
// clock was recorded), with per-group wall-time percentiles.
//
// `service` digests the "service" category a ControllerService records:
// batch spans (count, size-weighted virtual service time), queue-depth
// counter samples, sampled decision latencies (p50/p99), backpressure
// on/off edges with total asserted virtual time, and overflow/shed
// instants.
//
// `incidents` reconstructs recovery incidents from the "recovery" spans
// (exported from a RecoveryTracer) and prints each incident's stage
// timeline; with --telemetry it also prints how each telemetry series
// moved in a window around the incident — the paper's
// utilization-dips-then-restores picture, per incident.
//
// `slo` digests the "slo" category an SloMonitor records: the burn-rate
// alert timeline (every slo_breach/slo_clear instant with its burn
// rates and any linked recovery incidents, per track) and the final
// per-objective attainment from the slo_attainment instants the
// monitor's finish() emits.
//
// `check` validates the file: it must parse as trace_event JSON (the
// loader enforces the schema), recovery spans must be monotone within
// each incident, and with --timeline every RecoveryTracer CSV row must
// have a matching trace span — the recovery timeline survives the
// export round trip. Exits non-zero on any failure, so CI can gate on
// it.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace_load.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using sbk::obs::TraceEvent;
using sbk::obs::TracePhase;

namespace {

struct Options {
  std::string command;
  std::string trace_path;
  std::string telemetry_path;
  std::string timeline_path;
  std::size_t top = 10;
  double window = 0.05;
};

int usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "sbk_trace: %s\n", error.c_str());
  std::fprintf(stderr,
               "usage: sbk_trace summary   <trace.json> [--top=N]\n"
               "       sbk_trace service   <trace.json>\n"
               "       sbk_trace incidents <trace.json> [--telemetry=t.csv]"
               " [--window=seconds]\n"
               "       sbk_trace slo       <trace.json>\n"
               "       sbk_trace check     <trace.json>"
               " [--timeline=timeline.csv]\n");
  return 2;
}

std::vector<TraceEvent> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  // Distinguish the two common half-written exports up front: a
  // zero-byte file (the writer died before flushing anything) and a
  // file cut off mid-JSON. The parser's raw byte-offset error means
  // little without this context.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
    throw std::runtime_error(
        path + " is empty - not a trace export (was the recorder enabled"
               " and the writer flushed?)");
  }
  std::istringstream stream(text);
  try {
    return sbk::obs::load_trace_json(stream);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": truncated or malformed trace: " +
                             e.what());
  }
}

/// Pulls `key=<value>` out of a ';'-separated detail string ("" when
/// absent).
std::string detail_field(const std::string& detail, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < detail.size()) {
    std::size_t end = detail.find(';', pos);
    if (end == std::string::npos) end = detail.size();
    if (detail.compare(pos, needle.size(), needle) == 0) {
      return detail.substr(pos + needle.size(), end - pos - needle.size());
    }
    pos = end + 1;
  }
  return "";
}

// --- summary -----------------------------------------------------------------

struct SpanGroup {
  std::size_t count = 0;
  double wall_us_sum = 0.0;
  double sim_sum = 0.0;
  std::vector<double> wall_us;
};

int cmd_summary(const Options& opt) {
  std::vector<TraceEvent> events = load(opt.trace_path);
  std::map<std::pair<std::string, std::string>, SpanGroup> groups;
  std::size_t spans = 0, instants = 0, counters = 0;
  std::set<std::uint32_t> tracks;
  for (const TraceEvent& e : events) {
    tracks.insert(e.track);
    if (e.phase == TracePhase::kInstant) { ++instants; continue; }
    if (e.phase == TracePhase::kCounter) { ++counters; continue; }
    ++spans;
    SpanGroup& g = groups[{e.category, e.name}];
    ++g.count;
    g.sim_sum += e.dur;
    if (e.wall_us >= 0.0) {
      g.wall_us_sum += e.wall_us;
      g.wall_us.push_back(e.wall_us);
    }
  }
  std::printf("%zu events (%zu spans, %zu instants, %zu counters) on %zu "
              "track(s)\n\n",
              events.size(), spans, instants, counters, tracks.size());

  std::vector<std::pair<std::pair<std::string, std::string>, SpanGroup>>
      sorted(groups.begin(), groups.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.wall_us_sum != b.second.wall_us_sum) {
      return a.second.wall_us_sum > b.second.wall_us_sum;
    }
    return a.second.sim_sum > b.second.sim_sum;
  });
  std::printf("top span groups by cumulative wall time:\n");
  std::printf("  %-32s %10s %12s %12s %12s\n", "category/name", "count",
              "wall ms", "p50 us", "p99 us");
  std::size_t shown = 0;
  for (const auto& [key, g] : sorted) {
    if (shown++ >= opt.top) break;
    double p50 = 0.0, p99 = 0.0;
    if (!g.wall_us.empty()) {
      // cdf_percentile handles the single-sample case by returning the
      // sample itself for every percentile.
      std::vector<sbk::CdfPoint> cdf = sbk::empirical_cdf(g.wall_us);
      p50 = sbk::cdf_percentile(cdf, 50.0);
      p99 = sbk::cdf_percentile(cdf, 99.0);
    }
    std::printf("  %-32s %10zu %12.3f %12.2f %12.2f\n",
                (key.first + "/" + key.second).c_str(), g.count,
                g.wall_us_sum / 1e3, p50, p99);
  }
  return 0;
}

// --- service -----------------------------------------------------------------

int cmd_service(const Options& opt) {
  std::vector<TraceEvent> events = load(opt.trace_path);
  std::size_t batches = 0;
  double batch_sim_sum = 0.0;
  double span_lo = 0.0, span_hi = 0.0;
  bool have_span = false;
  std::vector<double> depth_samples;
  std::vector<double> latency_us;
  std::size_t overflow_drops = 0, probe_sheds = 0, drains = 0;
  // Failover digest (replicated service only; all zero for the
  // single-controller service).
  std::size_t crashes = 0, repairs = 0, failovers = 0;
  std::vector<double> headless_windows;
  // Backpressure edges come in (on, off) pairs in virtual-time order;
  // a trailing unmatched "on" is closed at the last service event.
  std::size_t bp_on = 0;
  double bp_time = 0.0, bp_since = 0.0;
  bool bp_open = false;
  for (const TraceEvent& e : events) {
    if (e.category != "service") continue;
    if (!have_span) { span_lo = span_hi = e.ts; have_span = true; }
    span_lo = std::min(span_lo, e.ts);
    span_hi = std::max(span_hi, e.ts + e.dur);
    if (e.phase == TracePhase::kComplete && e.name == "batch") {
      ++batches;
      batch_sim_sum += e.dur;
    } else if (e.phase == TracePhase::kCounter) {
      if (e.name == "queue_depth") depth_samples.push_back(e.value);
      if (e.name == "decision_latency_us") latency_us.push_back(e.value);
      if (e.name == "headless_window_s") headless_windows.push_back(e.value);
    } else if (e.phase == TracePhase::kInstant) {
      if (e.name == "overflow_drop") ++overflow_drops;
      if (e.name == "probe_shed") ++probe_sheds;
      if (e.name == "drained") ++drains;
      if (e.name == "controller_crash") ++crashes;
      if (e.name == "controller_repair") ++repairs;
      if (e.name == "failover") ++failovers;
      if (e.name == "backpressure_on") {
        ++bp_on;
        bp_open = true;
        bp_since = e.ts;
      }
      if (e.name == "backpressure_off" && bp_open) {
        bp_time += e.ts - bp_since;
        bp_open = false;
      }
    }
  }
  if (!have_span) {
    std::printf("no \"service\" events in %s\n", opt.trace_path.c_str());
    return 1;
  }
  if (bp_open) bp_time += span_hi - bp_since;

  std::printf("service trace over %.6f virtual seconds\n", span_hi - span_lo);
  std::printf("  batches              %10zu  (%.3f virtual ms in service)\n",
              batches, batch_sim_sum * 1e3);
  if (!depth_samples.empty()) {
    double peak = 0.0, sum = 0.0;
    for (double d : depth_samples) {
      peak = std::max(peak, d);
      sum += d;
    }
    std::printf("  queue depth          %10zu samples  mean %.1f  peak %.0f\n",
                depth_samples.size(), sum / depth_samples.size(), peak);
  }
  if (!latency_us.empty()) {
    std::vector<sbk::CdfPoint> cdf = sbk::empirical_cdf(latency_us);
    std::printf("  decision latency     %10zu samples  p50 %.1f us"
                "  p99 %.1f us\n",
                latency_us.size(), sbk::cdf_percentile(cdf, 50.0),
                sbk::cdf_percentile(cdf, 99.0));
  }
  std::printf("  backpressure         %10zu engagement(s), %.3f virtual ms"
              " asserted\n",
              bp_on, bp_time * 1e3);
  std::printf("  overflow drops       %10zu\n", overflow_drops);
  std::printf("  probes shed          %10zu\n", probe_sheds);
  std::printf("  drain completions    %10zu\n", drains);
  if (crashes + repairs + failovers + headless_windows.size() > 0) {
    double headless_sum = 0.0, headless_max = 0.0;
    for (double w : headless_windows) {
      headless_sum += w;
      headless_max = std::max(headless_max, w);
    }
    std::printf("  controller crashes   %10zu\n", crashes);
    std::printf("  controller repairs   %10zu\n", repairs);
    std::printf("  failovers            %10zu\n", failovers);
    std::printf("  headless windows     %10zu  total %.3f virtual ms"
                "  max %.3f ms\n",
                headless_windows.size(), headless_sum * 1e3,
                headless_max * 1e3);
  }
  return 0;
}

// --- incidents ---------------------------------------------------------------

struct Incident {
  std::uint32_t track = 0;
  std::string detail;  ///< element#id
  std::vector<const TraceEvent*> stages;
  double injected = 0.0;
  double recovered = -1.0;
};

std::vector<Incident> collect_incidents(const std::vector<TraceEvent>& events) {
  std::map<std::pair<std::uint32_t, std::string>, Incident> by_key;
  for (const TraceEvent& e : events) {
    if (e.category != "recovery" || e.detail.empty()) continue;
    Incident& inc = by_key[{e.track, e.detail}];
    inc.track = e.track;
    inc.detail = e.detail;
    if (e.phase == TracePhase::kInstant && e.name == "recovered") {
      inc.recovered = e.ts;
    } else if (e.phase == TracePhase::kComplete) {
      inc.stages.push_back(&e);
    }
  }
  std::vector<Incident> out;
  for (auto& [key, inc] : by_key) {
    if (inc.stages.empty()) continue;
    std::stable_sort(inc.stages.begin(), inc.stages.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts < b->ts;
                     });
    inc.injected = inc.stages.front()->ts;
    out.push_back(std::move(inc));
  }
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    if (a.track != b.track) return a.track < b.track;
    return a.injected < b.injected;
  });
  return out;
}

struct Telemetry {
  std::vector<std::string> series;          ///< column names after time
  std::vector<std::size_t> scenario;
  std::vector<double> time;
  std::vector<std::vector<double>> columns;  ///< per series
};

Telemetry load_telemetry(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  Telemetry t;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty telemetry CSV");
  std::vector<std::string> header = sbk::obs::split_csv_line(line);
  if (header.size() < 3 || header[0] != "scenario" || header[1] != "time") {
    throw std::runtime_error("not a merged telemetry CSV (want "
                             "scenario,time,<series...>)");
  }
  t.series.assign(header.begin() + 2, header.end());
  t.columns.resize(t.series.size());
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = sbk::obs::split_csv_line(line);
    if (f.size() != header.size()) {
      throw std::runtime_error("ragged telemetry CSV row");
    }
    t.scenario.push_back(static_cast<std::size_t>(std::stoull(f[0])));
    t.time.push_back(std::stod(f[1]));
    for (std::size_t c = 0; c < t.series.size(); ++c) {
      t.columns[c].push_back(std::stod(f[c + 2]));
    }
  }
  return t;
}

int cmd_incidents(const Options& opt) {
  std::vector<TraceEvent> events = load(opt.trace_path);
  std::vector<Incident> incidents = collect_incidents(events);
  Telemetry telemetry;
  bool have_telemetry = false;
  if (!opt.telemetry_path.empty()) {
    telemetry = load_telemetry(opt.telemetry_path);
    have_telemetry = true;
  }
  std::printf("%zu recovery incident(s)\n", incidents.size());
  for (const Incident& inc : incidents) {
    if (inc.recovered >= 0.0) {
      std::printf("\n[track %u] %s  injected %.6fs  recovered in %.3f ms\n",
                  inc.track, inc.detail.c_str(), inc.injected,
                  (inc.recovered - inc.injected) * 1e3);
    } else {
      std::printf("\n[track %u] %s  injected %.6fs  still open\n", inc.track,
                  inc.detail.c_str(), inc.injected);
    }
    for (const TraceEvent* s : inc.stages) {
      std::printf("    %-20s %.6fs  +%.3f ms\n", s->name.c_str(), s->ts,
                  s->dur * 1e3);
    }
    if (!have_telemetry) continue;
    // Telemetry window around the incident: the track is the scenario
    // index, so the two outputs of one traced sweep line up directly.
    const double lo = inc.injected - opt.window;
    const double hi =
        (inc.recovered >= 0.0 ? inc.recovered : inc.injected) + opt.window;
    for (std::size_t c = 0; c < telemetry.series.size(); ++c) {
      double mn = 0.0, mx = 0.0, first = 0.0, last = 0.0;
      std::size_t n = 0;
      for (std::size_t r = 0; r < telemetry.time.size(); ++r) {
        if (telemetry.scenario[r] != inc.track) continue;
        if (telemetry.time[r] < lo || telemetry.time[r] > hi) continue;
        const double v = telemetry.columns[c][r];
        if (n == 0) { mn = mx = first = v; }
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        last = v;
        ++n;
      }
      if (n == 0) continue;
      std::printf("    ~ %-28s %zu samples in +/-%.0fms window: "
                  "first %.4f  min %.4f  max %.4f  last %.4f\n",
                  telemetry.series[c].c_str(), n, opt.window * 1e3, first,
                  mn, mx, last);
    }
  }
  return 0;
}

// --- slo ---------------------------------------------------------------------

int cmd_slo(const Options& opt) {
  std::vector<TraceEvent> events = load(opt.trace_path);
  // Alert timeline: breach/clear instants in (track, time) order — the
  // recorder already merges scenarios in scenario order, so a stable
  // sort by track keeps each track's virtual-time ordering intact.
  std::vector<const TraceEvent*> alerts;
  std::vector<const TraceEvent*> attainments;
  for (const TraceEvent& e : events) {
    if (e.category != "slo" || e.phase != TracePhase::kInstant) continue;
    if (e.name == "slo_breach" || e.name == "slo_clear") {
      alerts.push_back(&e);
    } else if (e.name == "slo_attainment") {
      attainments.push_back(&e);
    }
  }
  if (alerts.empty() && attainments.empty()) {
    std::printf("no \"slo\" events in %s (was the SLO engine enabled?)\n",
                opt.trace_path.c_str());
    return 1;
  }
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->track < b->track;
                   });

  std::printf("%zu burn-rate alert(s)\n", alerts.size());
  for (const TraceEvent* e : alerts) {
    const std::string objective = detail_field(e->detail, "objective");
    const std::string burn_long = detail_field(e->detail, "burn_long");
    const std::string burn_short = detail_field(e->detail, "burn_short");
    const std::string incidents = detail_field(e->detail, "incidents");
    std::printf("  [track %3u] %-10s %-24s at %.6fs  burn long %s short %s",
                e->track, e->name == "slo_breach" ? "BREACH" : "clear",
                objective.c_str(), e->ts, burn_long.c_str(),
                burn_short.c_str());
    if (!incidents.empty()) {
      std::printf("  incidents %s", incidents.c_str());
    }
    std::printf("\n");
  }

  // Per-objective attainment: one slo_attainment instant per objective
  // per run; aggregate good/bad across tracks so a sweep digests to one
  // row per objective.
  struct Attain {
    double good = 0.0, bad = 0.0;
    double breaches = 0.0, clears = 0.0;
    std::size_t runs = 0;
  };
  std::map<std::string, Attain> per_objective;
  for (const TraceEvent* e : attainments) {
    Attain& a = per_objective[detail_field(e->detail, "objective")];
    a.good += std::atof(detail_field(e->detail, "good").c_str());
    a.bad += std::atof(detail_field(e->detail, "bad").c_str());
    a.breaches += std::atof(detail_field(e->detail, "breaches").c_str());
    a.clears += std::atof(detail_field(e->detail, "clears").c_str());
    ++a.runs;
  }
  if (!per_objective.empty()) {
    std::printf("\nper-objective attainment:\n");
    std::printf("  %-24s %12s %12s %12s %10s %10s\n", "objective", "good",
                "bad", "attainment", "breaches", "clears");
    for (const auto& [name, a] : per_objective) {
      const double total = a.good + a.bad;
      std::printf("  %-24s %12.0f %12.0f %12.6f %10.0f %10.0f\n",
                  name.c_str(), a.good, a.bad,
                  total > 0.0 ? a.good / total : 1.0, a.breaches, a.clears);
    }
  }
  return 0;
}

// --- check -------------------------------------------------------------------

struct TimelineRow {
  std::string element;
  std::size_t incident = 0;
  std::string stage;
  double start = 0.0;
  double end = 0.0;
};

std::vector<TimelineRow> load_timeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<TimelineRow> rows;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty timeline CSV");
  std::vector<std::string> header = sbk::obs::split_csv_line(line);
  auto col = [&header, &path](const char* name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    throw std::runtime_error(path + ": missing column " + name);
  };
  const std::size_t c_inc = col("incident"), c_elem = col("element"),
                    c_stage = col("stage"), c_start = col("start"),
                    c_end = col("end");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = sbk::obs::split_csv_line(line);
    TimelineRow r;
    r.incident = static_cast<std::size_t>(std::stoull(f[c_inc]));
    r.element = f[c_elem];
    r.stage = f[c_stage];
    r.start = std::stod(f[c_start]);
    r.end = std::stod(f[c_end]);
    rows.push_back(std::move(r));
  }
  return rows;
}

int cmd_check(const Options& opt) {
  int failures = 0;
  auto expect = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::printf("CHECK FAILED: %s\n", what.c_str());
      ++failures;
    }
  };

  std::vector<TraceEvent> events = load(opt.trace_path);  // throws on schema
  std::printf("parsed %zu trace event(s)\n", events.size());
  for (const TraceEvent& e : events) {
    expect(e.dur >= 0.0, "span duration is non-negative");
    expect(!e.name.empty(), "every event is named");
    if (failures > 0) break;  // one representative failure is enough
  }

  std::vector<Incident> incidents = collect_incidents(events);
  for (const Incident& inc : incidents) {
    double prev_start = -1e300;
    for (const TraceEvent* s : inc.stages) {
      expect(s->ts >= prev_start - 1e-9,
             inc.detail + ": recovery spans are monotone");
      prev_start = s->ts;
    }
    if (inc.recovered >= 0.0) {
      expect(inc.recovered >= inc.injected - 1e-9,
             inc.detail + ": recovery does not precede injection");
    }
  }
  std::printf("%zu recovery incident(s) monotone\n", incidents.size());

  if (!opt.timeline_path.empty()) {
    // Cross-check: every RecoveryTracer CSV row must appear in the trace
    // as a "recovery" span with the same stage and timestamps. (Ring
    // overflow could evict spans; the check demands a lossless export.)
    std::vector<TimelineRow> rows = load_timeline(opt.timeline_path);
    std::size_t matched = 0;
    for (const TimelineRow& r : rows) {
      const std::string detail =
          r.element + "#" + std::to_string(r.incident);
      bool found = false;
      for (const TraceEvent& e : events) {
        if (e.phase != TracePhase::kComplete || e.category != "recovery") {
          continue;
        }
        if (e.name != r.stage || e.detail != detail) continue;
        if (std::fabs(e.ts - r.start) > 1e-9) continue;
        if (std::fabs((e.ts + e.dur) - r.end) > 1e-9) continue;
        found = true;
        break;
      }
      expect(found, "timeline row present in trace: " + detail + " " +
                        r.stage);
      if (found) ++matched;
    }
    std::printf("timeline cross-check: %zu/%zu row(s) matched\n", matched,
                rows.size());
  }

  if (failures == 0) std::printf("trace check: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const sbk::cli::ParseResult args = sbk::cli::parse_args(
      argc, argv,
      {{"telemetry", true}, {"timeline", true}, {"top", true},
       {"window", true}},
      /*max_positional=*/2);
  if (!args.ok()) return usage(args.error);

  Options opt;
  opt.telemetry_path = args.value_of("telemetry").value_or("");
  opt.timeline_path = args.value_of("timeline").value_or("");
  if (auto top = args.value_of("top")) {
    const auto n = sbk::cli::parse_int(*top);
    if (!n || *n < 0) return usage("--top wants a non-negative integer");
    opt.top = static_cast<std::size_t>(*n);
  }
  if (auto window = args.value_of("window")) {
    const auto w = sbk::cli::parse_double(*window);
    if (!w) return usage("--window wants a number of seconds");
    opt.window = *w;
  }
  if (args.positional.size() < 2) return usage();
  opt.command = args.positional[0];
  opt.trace_path = args.positional[1];
  try {
    if (opt.command == "summary") return cmd_summary(opt);
    if (opt.command == "service") return cmd_service(opt);
    if (opt.command == "incidents") return cmd_incidents(opt);
    if (opt.command == "slo") return cmd_slo(opt);
    if (opt.command == "check") return cmd_check(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbk_trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
