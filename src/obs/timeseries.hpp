// Time-series telemetry: named probes sampled on a fixed simulation-time
// cadence into columnar series. The paper's core claim — ShareBackup
// recovers with no path change and no bandwidth loss, rerouting pays
// path dilation — is a claim about how link utilization and flow rates
// evolve AROUND a failure, which run-level counters cannot show; this
// module records the evolution itself.
//
// Determinism contract: sample times are exact multiples of the cadence
// (computed as start + tick * interval, never accumulated), probe values
// are pure functions of simulator state, and per-scenario samplers merge
// into a TelemetryTable in scenario order — so the merged CSV is
// bit-identical at any sweep thread count. Wall-clock never enters a
// sample.
//
// Disabled samplers record nothing and register no probes' side effects;
// components hold a pointer and pass nullptr to detach, keeping the
// disabled-mode hot paths byte-for-byte unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sbk::obs {

class TelemetrySampler {
 public:
  explicit TelemetrySampler(Seconds interval, bool enabled = true);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] Seconds interval() const noexcept { return interval_; }

  /// A probe reads one scalar from live simulator state. Probes must be
  /// pure reads: they are invoked at every sample tick.
  using Probe = std::function<double()>;

  /// Registers a named series; insertion order fixes the column order.
  /// Must be called before the first sample (columns are rectangular).
  void add_probe(std::string name, Probe probe);

  /// Takes the run's first sample at `at` and anchors the cadence there.
  void start(Seconds at);

  /// Samples every cadence boundary in (last boundary, now]. Simulator
  /// state is piecewise-constant between events, so sampling a boundary
  /// that fell inside the just-elapsed interval with the CURRENT state
  /// is exact — hosts call this once per event with the event time.
  void advance_to(Seconds now);

  /// One immediate sample at `at` (implicitly starts the cadence).
  void sample_now(Seconds at);

  [[nodiscard]] std::size_t rows() const noexcept { return times_.size(); }
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  [[nodiscard]] const std::vector<double>& column(std::size_t i) const {
    return columns_[i];
  }

  /// `time,<series...>` rows at full resolution.
  void write_csv(std::ostream& out) const;

  /// Downsampled export: fixed-width buckets of `bucket_width` seconds,
  /// one row per non-empty bucket with min/mean/max columns per series
  /// (`time` is the bucket start).
  void write_downsampled_csv(std::ostream& out, Seconds bucket_width) const;

 private:
  void take_sample(Seconds at);

  bool enabled_;
  Seconds interval_;
  bool started_ = false;
  Seconds origin_ = 0.0;
  std::uint64_t next_tick_ = 0;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<double> times_;
  std::vector<std::vector<double>> columns_;
};

/// Scenario-tagged union of per-scenario samplers — the telemetry
/// counterpart of MetricsRegistry::merge. append() in scenario order
/// yields a table (and CSV) independent of sweep thread count. All
/// appended samplers must expose the same series, in the same order (they
/// are built by the same scenario body, so this holds by construction).
class TelemetryTable {
 public:
  explicit TelemetryTable(bool enabled = true) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void append(std::size_t scenario, const TelemetrySampler& sampler);

  [[nodiscard]] std::size_t rows() const noexcept { return scenario_.size(); }
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return names_;
  }

  /// `scenario,time,<series...>` rows.
  void write_csv(std::ostream& out) const;

 private:
  bool enabled_;
  std::vector<std::string> names_;
  std::vector<std::size_t> scenario_;
  std::vector<double> times_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace sbk::obs
