// Cost explorer: interactive-style CLI over the Table 2 cost model.
// Prints the full cost breakdown for a given (k, n) and both media, the
// relative overhead versus the rerouting alternatives, and the
// scalability envelope for a given circuit-switch port budget.
//
//   $ ./build/examples/cost_explorer --k=48 --n=2 --ports=32
#include <cstdio>
#include <string>

#include "cost/cost_model.hpp"

using namespace sbk::cost;

namespace {
long long parse_arg(int argc, char** argv, const std::string& key,
                    long long fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

void print_breakdown(const char* name, const CostBreakdown& c) {
  std::printf("  %-22s circuit ports $%12.0f | packet ports $%12.0f | "
              "links $%12.0f | total $%13.0f\n",
              name, c.circuit_ports, c.packet_ports, c.links, c.total());
}
}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(parse_arg(argc, argv, "k", 48));
  const int n = static_cast<int>(parse_arg(argc, argv, "n", 1));
  const int ports = static_cast<int>(parse_arg(argc, argv, "ports", 32));

  std::printf("ShareBackup cost explorer: k=%d, n=%d  (%d hosts, backup "
              "ratio %.2f%%)\n\n",
              k, n, k * k * k / 4, backup_ratio(k, n) * 100);

  for (Medium m : {Medium::kElectrical, Medium::kOptical}) {
    PriceSet p = PriceSet::for_medium(m);
    std::printf("%s data center (a=$%.0f, b=$%.0f, c=$%.0f):\n",
                m == Medium::kElectrical ? "Electrical (copper DAC)"
                                         : "Optical (fiber)",
                p.circuit_port_a, p.packet_port_b, p.link_c);
    CostBreakdown base = fat_tree_cost(k, p);
    CostBreakdown sb = sharebackup_additional(k, n, p);
    CostBreakdown aspen = aspen_additional(k, p);
    CostBreakdown one = one_to_one_additional(k, p);
    print_breakdown("fat-tree (base)", base);
    print_breakdown("ShareBackup (+)", sb);
    print_breakdown("Aspen Tree (+)", aspen);
    print_breakdown("1:1 backup (+)", one);
    std::printf("  => ShareBackup adds %.1f%% to the fat-tree; Aspen adds "
                "%.1f%% (%.1fx more); 1:1 adds %.1f%%\n\n",
                relative_additional(sb, base) * 100,
                relative_additional(aspen, base) * 100,
                aspen.total() / sb.total(),
                relative_additional(one, base) * 100);
  }

  auto counts = sharebackup_counts(k, n);
  std::printf("Hardware added by ShareBackup:\n");
  std::printf("  %lld backup switches across %d failure groups\n",
              counts.backup_switches, 5 * k / 2);
  std::printf("  %lld circuit switches, dimension %d x %d\n",
              counts.circuit_switches, k / 2 + n + 2, k / 2 + n + 2);
  std::printf("  %.0f whole-link cable equivalents\n\n", counts.extra_cables);

  std::printf("Scalability with %d-port circuit switches (k/2+n+2 <= %d):\n",
              ports, ports);
  for (int nn = 1; nn <= 6; ++nn) {
    int max_k = max_k_for_ports(ports, nn);
    if (max_k < 4) break;
    std::printf("  n=%d -> up to k=%d (%d hosts), backup ratio %.2f%%\n", nn,
                max_k, max_k * max_k * max_k / 4,
                backup_ratio(max_k, nn) * 100);
  }
  return 0;
}
