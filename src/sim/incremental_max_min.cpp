#include "sim/incremental_max_min.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sbk::sim {

void IncrementalMaxMin::bind(const net::Network& net) {
  net_ = &net;
  flows_.clear();
  free_flows_.clear();
  alive_ = 0;
  next_seq_ = 0;
  members_.clear();
  free_members_.clear();
  link_head_.assign(net.link_count() * 2, kNoMember);
  cap_snapshot_.resize(net.link_count());
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    cap_snapshot_[i] =
        net.link(net::LinkId(static_cast<std::uint32_t>(i))).capacity;
  }
  dirty_slots_.clear();
  dirty_flows_.clear();
  slot_dirty_.assign(link_head_.size(), 0);
  flow_dirty_.clear();
  slot_seen_.assign(link_head_.size(), 0);
  flow_seen_.clear();
  seen_stamp_ = 0;
  solves_ = 0;
  last_dirty_flows_ = 0;
  total_resolved_flows_ = 0;
}

void IncrementalMaxMin::ensure_link_arrays() {
  // Structural surgery (add_link) mid-run grows the slot universe; the
  // new links' flows arrive through add_flow, so growing lazily here is
  // enough.
  const std::size_t slots = net_->link_count() * 2;
  if (link_head_.size() >= slots) return;
  link_head_.resize(slots, kNoMember);
  slot_dirty_.resize(slots, 0);
  slot_seen_.resize(slots, 0);
  const std::size_t old_links = cap_snapshot_.size();
  cap_snapshot_.resize(net_->link_count());
  for (std::size_t i = old_links; i < cap_snapshot_.size(); ++i) {
    cap_snapshot_[i] =
        net_->link(net::LinkId(static_cast<std::uint32_t>(i))).capacity;
  }
}

void IncrementalMaxMin::mark_slot_dirty(std::size_t s) {
  if (!slot_dirty_[s]) {
    slot_dirty_[s] = 1;
    dirty_slots_.push_back(static_cast<std::uint32_t>(s));
  }
}

void IncrementalMaxMin::mark_flow_dirty(FlowSlot f) {
  if (!flow_dirty_[f]) {
    flow_dirty_[f] = 1;
    dirty_flows_.push_back(f);
  }
}

IncrementalMaxMin::FlowSlot IncrementalMaxMin::add_flow(
    std::span<const net::DirectedLink> links) {
  SBK_EXPECTS_MSG(net_ != nullptr, "bind() must precede add_flow()");
  ensure_link_arrays();

  FlowSlot f;
  if (!free_flows_.empty()) {
    f = free_flows_.back();
    free_flows_.pop_back();
  } else {
    f = static_cast<FlowSlot>(flows_.size());
    flows_.emplace_back();
    flow_dirty_.push_back(0);
    flow_seen_.push_back(0);
  }
  FlowRec& rec = flows_[f];
  rec.links.assign(links.begin(), links.end());
  rec.members.clear();
  rec.rate = std::numeric_limits<double>::infinity();
  rec.seq = next_seq_++;
  rec.alive = true;
  ++alive_;

  for (net::DirectedLink dl : rec.links) {
    const std::size_t s = link_slot(dl);
    std::uint32_t m;
    if (!free_members_.empty()) {
      m = free_members_.back();
      free_members_.pop_back();
    } else {
      m = static_cast<std::uint32_t>(members_.size());
      members_.emplace_back();
    }
    Member& mem = members_[m];
    mem.flow = f;
    mem.slot = static_cast<std::uint32_t>(s);
    mem.prev = kNoMember;
    mem.next = link_head_[s];
    if (mem.next != kNoMember) members_[mem.next].prev = m;
    link_head_[s] = m;
    rec.members.push_back(m);
  }

  if (rec.links.empty()) return f;  // +inf already; touches no component
  mark_flow_dirty(f);
  return f;
}

void IncrementalMaxMin::remove_flow(FlowSlot slot) {
  SBK_EXPECTS(slot < flows_.size());
  FlowRec& rec = flows_[slot];
  SBK_EXPECTS_MSG(rec.alive, "double remove of a flow slot");

  for (std::uint32_t m : rec.members) {
    Member& mem = members_[m];
    // The survivors on this link gain the departed flow's share: their
    // component must re-solve.
    mark_slot_dirty(mem.slot);
    if (mem.prev != kNoMember) {
      members_[mem.prev].next = mem.next;
    } else {
      link_head_[mem.slot] = mem.next;
    }
    if (mem.next != kNoMember) members_[mem.next].prev = mem.prev;
    free_members_.push_back(m);
  }
  rec.members.clear();
  rec.links.clear();
  rec.alive = false;
  // A queued dirty mark on this flow is skipped at solve() via `alive`.
  --alive_;
  free_flows_.push_back(slot);
}

void IncrementalMaxMin::note_topology_change() {
  SBK_EXPECTS_MSG(net_ != nullptr, "bind() must precede note_topology_change");
  ensure_link_arrays();
  for (std::size_t i = 0; i < cap_snapshot_.size(); ++i) {
    const double cap =
        net_->link(net::LinkId(static_cast<std::uint32_t>(i))).capacity;
    if (cap != cap_snapshot_[i]) {
      cap_snapshot_[i] = cap;
      mark_slot_dirty(i * 2);
      mark_slot_dirty(i * 2 + 1);
    }
  }
}

void IncrementalMaxMin::solve() {
  if (dirty_slots_.empty() && dirty_flows_.empty()) return;

  // Close the dirty seeds to full components: alternate expanding flows
  // (over their links) and links (over their membership chains) until
  // the frontier drains.
  ++seen_stamp_;
  comp_flows_.clear();
  bfs_slots_.clear();

  auto visit_slot = [this](std::size_t s) {
    if (slot_seen_[s] == seen_stamp_) return;
    slot_seen_[s] = seen_stamp_;
    bfs_slots_.push_back(static_cast<std::uint32_t>(s));
  };
  auto visit_flow = [this](FlowSlot f) {
    if (flow_seen_[f] == seen_stamp_) return;
    flow_seen_[f] = seen_stamp_;
    comp_flows_.push_back(f);
  };

  for (std::uint32_t s : dirty_slots_) {
    slot_dirty_[s] = 0;
    visit_slot(s);
  }
  for (FlowSlot f : dirty_flows_) {
    flow_dirty_[f] = 0;
    if (flows_[f].alive) visit_flow(f);
  }
  dirty_slots_.clear();
  dirty_flows_.clear();

  std::size_t next_flow = 0;
  std::size_t next_slot = 0;
  while (next_flow < comp_flows_.size() || next_slot < bfs_slots_.size()) {
    while (next_flow < comp_flows_.size()) {
      const FlowRec& rec = flows_[comp_flows_[next_flow++]];
      for (net::DirectedLink dl : rec.links) visit_slot(link_slot(dl));
    }
    while (next_slot < bfs_slots_.size()) {
      for (std::uint32_t m = link_head_[bfs_slots_[next_slot++]];
           m != kNoMember; m = members_[m].next) {
        visit_flow(members_[m].flow);
      }
    }
  }

  if (comp_flows_.empty()) return;  // e.g. a drained link carrying no flow

  // Deterministic sub-solve order: admission sequence, the same relative
  // order a monolithic driver would present these demands in.
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [this](FlowSlot a, FlowSlot b) {
              return flows_[a].seq < flows_[b].seq;
            });

  solver_.begin(*net_, comp_flows_.size());
  for (FlowSlot f : comp_flows_) solver_.add_demand(flows_[f].links);
  solver_.solve_into(sub_rates_);
  for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
    flows_[comp_flows_[i]].rate = sub_rates_[i];
  }

  ++solves_;
  last_dirty_flows_ = comp_flows_.size();
  total_resolved_flows_ += comp_flows_.size();
}

}  // namespace sbk::sim
