#include "obs/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace sbk::obs {

namespace {

// Lookup-or-create over one instrument family. The deque keeps element
// addresses stable across growth, which is what lets the registry hand
// out long-lived references. `make` constructs the instrument (it runs
// inside a MetricsRegistry member, where the private constructors are
// accessible).
template <typename T, typename Make>
T& intern(std::string_view name, std::deque<T>& items,
          std::vector<std::string>& names,
          std::unordered_map<std::string, std::size_t>& index, Make make) {
  auto it = index.find(std::string(name));
  if (it != index.end()) return items[it->second];
  items.push_back(make());
  names.emplace_back(name);
  index.emplace(names.back(), items.size() - 1);
  return items.back();
}

template <typename T>
const T* find(std::string_view name, const std::deque<T>& items,
              const std::unordered_map<std::string, std::size_t>& index) {
  auto it = index.find(std::string(name));
  return it == index.end() ? nullptr : &items[it->second];
}

}  // namespace

Histogram LatencyHistogram::histogram(std::size_t bins) const {
  SBK_EXPECTS(bins >= 1);
  SBK_EXPECTS_MSG(!empty(), "histogram view requires at least one sample");
  double lo = min_;
  double hi = max_;
  if (hi <= lo) hi = lo + 1.0;  // degenerate range: one occupied bucket
  Histogram h(lo, hi, bins);
  for (double x : summary_.samples()) h.add(x);
  return h;
}

std::size_t LatencyHistogram::memory_bytes() const noexcept {
  return summary_.samples().capacity() * sizeof(double);
}

void LatencyHistogram::set_sample_cap(std::size_t cap) {
  SBK_EXPECTS(cap >= 2);
  cap_ = cap;
  while (summary_.count() >= cap_) compact();
}

void LatencyHistogram::compact() {
  const std::vector<double>& src = summary_.samples();
  Summary halved;
  for (std::size_t i = 0; i < src.size(); i += 2) halved.add(src[i]);
  summary_ = std::move(halved);
  stride_ *= 2;
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  summary_.merge(other.summary_);
  // Keep the slower of the two decimation schedules so a merged
  // instrument never retains more densely than either source did.
  if (other.stride_ > stride_) stride_ = other.stride_;
  while (summary_.count() >= cap_) compact();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return intern(name, counters_, counter_names_, counter_index_,
                [this] { return Counter(&enabled_); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return intern(name, gauges_, gauge_names_, gauge_index_,
                [this] { return Gauge(&enabled_); });
}

LatencyHistogram& MetricsRegistry::latency(std::string_view name) {
  return intern(name, latencies_, latency_names_, latency_index_,
                [this] { return LatencyHistogram(&enabled_); });
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find(name, counters_, counter_index_);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find(name, gauges_, gauge_index_);
}

const LatencyHistogram* MetricsRegistry::find_latency(
    std::string_view name) const {
  return find(name, latencies_, latency_index_);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (!enabled_) return;
  for (std::size_t i = 0; i < other.counter_names_.size(); ++i) {
    counter(other.counter_names_[i]).add(other.counters_[i].value_);
  }
  for (std::size_t i = 0; i < other.gauge_names_.size(); ++i) {
    gauge(other.gauge_names_[i]).value_ = other.gauges_[i].value_;
  }
  for (std::size_t i = 0; i < other.latency_names_.size(); ++i) {
    latency(other.latency_names_[i]).merge_from(other.latencies_[i]);
  }
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"kind", "name", "count", "sum", "mean", "min", "max", "p50",
           "p99"});
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    csv.row({"counter", counter_names_[i],
             CsvWriter::num(static_cast<std::size_t>(counters_[i].value())),
             "", "", "", "", "", ""});
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    csv.row({"gauge", gauge_names_[i], "",
             CsvWriter::num(gauges_[i].value()), "", "", "", "", ""});
  }
  for (std::size_t i = 0; i < latency_names_.size(); ++i) {
    const LatencyHistogram& l = latencies_[i];
    if (l.empty()) {
      csv.row({"latency", latency_names_[i], "0", "", "", "", "", "", ""});
      continue;
    }
    csv.row({"latency", latency_names_[i],
             CsvWriter::num(static_cast<std::size_t>(l.count())),
             CsvWriter::num(l.sum()), CsvWriter::num(l.mean()),
             CsvWriter::num(l.min()), CsvWriter::num(l.max()),
             CsvWriter::num(l.percentile(50.0)),
             CsvWriter::num(l.percentile(99.0))});
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(counter_names_[i])
        << "\":" << counters_[i].value();
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(gauge_names_[i])
        << "\":" << CsvWriter::num(gauges_[i].value());
  }
  out << "},\"latencies\":{";
  for (std::size_t i = 0; i < latency_names_.size(); ++i) {
    if (i > 0) out << ",";
    const LatencyHistogram& l = latencies_[i];
    out << "\"" << json_escape(latency_names_[i]) << "\":{\"count\":"
        << l.count();
    if (!l.empty()) {
      out << ",\"sum\":" << CsvWriter::num(l.sum())
          << ",\"mean\":" << CsvWriter::num(l.mean())
          << ",\"min\":" << CsvWriter::num(l.min())
          << ",\"max\":" << CsvWriter::num(l.max())
          << ",\"p50\":" << CsvWriter::num(l.percentile(50.0))
          << ",\"p99\":" << CsvWriter::num(l.percentile(99.0));
    }
    out << "}";
  }
  out << "}}";
}

}  // namespace sbk::obs
