// Failure drill: a narrated end-to-end operational scenario against the
// full control plane — keep-alive detection, link probing, dual
// replacement, offline diagnosis over the circuit-switch side rings,
// exoneration, host troubleshooting, watchdog, and controller failover.
//
//   $ ./build/examples/failure_drill
#include <cstdio>

#include "control/controller.hpp"
#include "control/controller_cluster.hpp"
#include "control/failure_detector.hpp"
#include "net/algo.hpp"
#include "sharebackup/fabric.hpp"

using namespace sbk;

namespace {
void say(const char* msg) { std::printf("%s\n", msg); }
}  // namespace

int main() {
  sharebackup::FabricParams params;
  params.fat_tree.k = 6;
  params.backups_per_group = 2;
  sharebackup::Fabric fabric(params);
  control::Controller controller(fabric, control::ControllerConfig{});
  sim::EventQueue queue;
  control::FailureDetector detector(queue, fabric.network(),
                                    control::DetectorConfig{});
  control::ControllerCluster cluster(queue, control::ClusterConfig{});

  std::printf("=== ShareBackup failure drill (k=6, n=2) ===\n\n");

  // Wire detection into the controller, gated on cluster availability.
  detector.on_node_failure([&](net::NodeId node, Seconds t) {
    if (!cluster.available()) return;
    auto pos = fabric.position_of_node(node);
    controller.set_time(t);
    auto out = controller.on_switch_failure(*pos);
    std::printf("[%7.4fs] node failure at %s -> %s\n", t,
                fabric.network().node(node).name.c_str(),
                out.detail.c_str());
  });
  detector.on_link_failure([&](net::LinkId link, Seconds t) {
    if (!cluster.available()) return;
    controller.set_time(t);
    auto out = controller.on_link_failure(link);
    std::printf("[%7.4fs] link failure report -> %s\n", t,
                out.detail.c_str());
  });

  const Seconds horizon = 1.0;
  for (net::NodeId sw : fabric.fat_tree().all_switches()) {
    detector.watch_node(sw, horizon);
  }
  for (std::size_t i = 0; i < fabric.network().link_count(); ++i) {
    detector.watch_link(net::LinkId(static_cast<net::LinkId::value_type>(i)),
                        horizon);
  }
  cluster.start(horizon);

  say("Act 1 — a core switch dies (keep-alive detection).");
  net::NodeId core = fabric.fat_tree().core(4);
  queue.schedule_at(0.010, [&] { fabric.network().fail_node(core); });

  say("Act 2 — an edge-agg link fails; the faulty side is the edge "
      "switch's\n         interface. Both sides are replaced instantly; "
      "diagnosis runs offline.");
  net::NodeId edge = fabric.fat_tree().edge(1, 0);
  net::NodeId agg = fabric.fat_tree().agg(1, 2);
  net::LinkId link = *fabric.network().find_link(edge, agg);
  queue.schedule_at(0.100, [&] {
    auto dev = fabric.device_at(*fabric.position_of_node(edge));
    fabric.set_interface_health({dev, fabric.cs_of_link(link)}, false);
    fabric.network().fail_link(link);
  });

  say("Act 3 — a host NIC dies; per policy the edge switch is replaced "
      "first,\n         then redressed when the failure persists.");
  net::NodeId host = fabric.fat_tree().host(3, 1, 2);
  net::LinkId host_link = fabric.fat_tree().host_link(host);
  queue.schedule_at(0.200, [&] {
    auto hdev = fabric.device_of_host(host);
    fabric.set_interface_health({hdev, fabric.cs_of_link(host_link)}, false);
    fabric.network().fail_link(host_link);
  });

  say("Act 4 — the primary controller crashes; a replica takes over.\n");
  queue.schedule_at(0.300, [&] { cluster.fail_member(*cluster.primary()); });
  cluster.on_election([](std::size_t id, std::size_t term, Seconds t) {
    std::printf("[%7.4fs] controller %zu elected primary (term %zu)\n", t,
                id, term);
  });

  queue.run();

  std::printf("\n--- background diagnosis ---\n");
  std::size_t jobs = controller.run_pending_diagnosis();
  std::printf("ran %zu diagnosis job(s): %zu switch(es) exonerated, %zu "
              "confirmed faulty\n",
              jobs, controller.stats().switches_exonerated,
              controller.stats().switches_confirmed_faulty);
  for (net::NodeId h : controller.flagged_hosts()) {
    std::printf("host flagged for troubleshooting: %s\n",
                fabric.network().node(h).name.c_str());
  }

  std::printf("\n--- end state ---\n");
  std::printf("failovers: %zu | node failures handled: %zu | link: %zu | "
              "host-link: %zu\n",
              controller.stats().failovers,
              controller.stats().node_failures_handled,
              controller.stats().link_failures_handled,
              controller.stats().host_link_failures_handled);
  std::printf("network connected: %s (failed links remaining: %zu — the "
              "broken host NIC)\n",
              net::live_component_count(fabric.network()) == 1 ? "yes" : "no",
              fabric.network().failed_link_count());
  fabric.check_invariants();
  std::printf("fabric invariants: OK\n");

  // Technicians repair the pulled hardware; it rejoins as backups.
  std::printf("\n--- repair crew ---\n");
  for (sharebackup::DeviceUid dev = 0;
       dev < fabric.switch_device_count(); ++dev) {
    if (fabric.device_state(dev) == sharebackup::DeviceState::kOut) {
      controller.on_device_repaired(dev);
      std::printf("repaired %s -> returned to its group's backup pool\n",
                  fabric.device(dev).name.c_str());
    }
  }
  fabric.check_invariants();
  std::printf("all groups back to full backup strength.\n");

  std::printf("\n--- controller audit trail ---\n");
  for (const auto& entry : controller.audit_log()) {
    std::printf("[%7.4fs] %-13s %s\n", entry.at, entry.event.c_str(),
                entry.detail.c_str());
  }
  return 0;
}
