#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace sbk {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double Summary::mean() const {
  SBK_EXPECTS(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  SBK_EXPECTS(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  SBK_EXPECTS(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::percentile(double p) const {
  SBK_EXPECTS(!samples_.empty());
  SBK_EXPECTS(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points) {
  SBK_EXPECTS(max_points >= 2);
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  std::size_t n = samples.size();
  if (n == 1) {
    // A one-sample distribution collapses to a single step at F = 1.
    cdf.push_back({samples.front(), 1.0});
    return cdf;
  }
  // With max_points >= 2 and n >= 2, points >= 2 always holds here.
  std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Evenly spaced ranks, always including the min and the max sample.
    std::size_t rank = (i * (n - 1)) / (points - 1);
    cdf.push_back({samples[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

double cdf_percentile(const std::vector<CdfPoint>& cdf, double p) {
  SBK_EXPECTS(!cdf.empty());
  SBK_EXPECTS(p >= 0.0 && p <= 100.0);
  // A single-point CDF (one underlying sample) has no bracketing pair to
  // interpolate between: every percentile is that sample.
  if (cdf.size() == 1) return cdf.front().value;
  const double f = p / 100.0;
  if (f <= cdf.front().fraction) return cdf.front().value;
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    if (f <= cdf[i].fraction) {
      const CdfPoint& a = cdf[i - 1];
      const CdfPoint& b = cdf[i];
      const double span = b.fraction - a.fraction;
      if (span <= 0.0) return b.value;  // repeated fraction: step function
      const double t = (f - a.fraction) / span;
      return a.value + t * (b.value - a.value);
    }
  }
  return cdf.back().value;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  // Validate before deriving anything: computing the width first would
  // turn bins == 0 or hi <= lo into an inf/NaN width instead of a clean
  // contract violation.
  SBK_EXPECTS(bins > 0);
  SBK_EXPECTS(hi > lo);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto raw = static_cast<long long>(std::floor((x - lo_) / width_));
  long long clamped =
      std::clamp<long long>(raw, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  SBK_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  SBK_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

}  // namespace sbk
