// Lightweight observability: a registry of named counters, gauges, and
// latency recorders that the simulators and the control plane report
// through. Design goals, in order:
//   1. Near-zero cost when disabled — every instrument keeps a pointer to
//      its registry's enabled flag and records behind a single branch;
//      components that hold no registry at all (the default) pay nothing.
//   2. Deterministic aggregation — instruments are stored in insertion
//      order, and merge() walks the other registry in that order, so
//      merging per-scenario registries in scenario order yields the same
//      registry regardless of how many sweep workers produced them.
//   3. Bounded memory — latency instruments keep exact count/sum/min/max
//      scalars plus a capped, deterministically decimated sample
//      reservoir (util/stats.hpp Summary) for percentile queries and the
//      on-demand fixed-width Histogram view. Hot paths that need tighter
//      bounds and exact mergeable quantiles use obs/slo/LogHistogram
//      instead.
//
// Registries are neither copyable nor movable: instruments hand out
// stable references into the registry, so its address must not change.
// Store registries in a std::deque (reference-stable) when a dynamic
// collection is needed — see sweep::SweepRunner::run_with_metrics.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace sbk::obs {

class MetricsRegistry;

/// Monotonically increasing event count. Saturates at uint64 max
/// instead of wrapping: a counter that has been incremented past the
/// representable range pins there (still monotone) rather than
/// silently restarting from a small value.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (*enabled_) {
      const std::uint64_t next = value_ + n;
      value_ = next < value_ ? ~std::uint64_t{0} : next;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Last-written scalar (pool sizes, queue depths, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (*enabled_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
};

/// Latency (or any duration) distribution. count/sum/min/max are exact
/// scalars; percentile queries run over a bounded, deterministically
/// decimated sample reservoir: every stride-th sample is retained, and
/// when the reservoir reaches the cap it is halved (every other
/// retained sample kept) and the stride doubled. Memory is therefore
/// bounded at `sample_cap` doubles no matter how many samples arrive,
/// while small recordings (below the cap) keep every sample and answer
/// percentiles exactly. The decimation schedule depends only on the
/// record sequence, never on wall time, so merged registries stay
/// bit-identical across thread counts.
class LatencyHistogram {
 public:
  /// Default reservoir bound (doubles retained, 64 KB).
  static constexpr std::size_t kDefaultSampleCap = 8192;

  void record(Seconds s) {
    if (!*enabled_) return;
    if (count_ == 0 || s < min_) min_ = s;
    if (count_ == 0 || s > max_) max_ = s;
    ++count_;
    sum_ += s;
    if (tick_ == 0) {
      summary_.add(s);
      if (summary_.count() >= cap_) compact();
    }
    if (++tick_ >= stride_) tick_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Percentile over the retained reservoir (exact below the cap).
  [[nodiscard]] double percentile(double p) const {
    return summary_.percentile(p);
  }

  /// The retained reservoir. NOTE: once decimation has kicked in its
  /// count is smaller than count() — use the exact accessors above for
  /// totals, the reservoir only answers distribution-shape queries.
  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }
  /// Current decimation stride (1 until the cap is first reached).
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }
  /// Bytes held by the reservoir (retained samples only; a percentile
  /// query transiently materializes a sorted copy of the same size).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  /// Adjusts the reservoir bound (>= 2); compacts immediately if the
  /// retained set already exceeds it.
  void set_sample_cap(std::size_t cap);

  /// Fixed-width histogram over the recorded range (see util/stats.hpp).
  /// Requires at least one recorded sample and bins >= 1.
  [[nodiscard]] Histogram histogram(std::size_t bins = 10) const;

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const bool* enabled) noexcept
      : enabled_(enabled) {}
  void compact();
  void merge_from(const LatencyHistogram& other);

  const bool* enabled_;
  Summary summary_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t stride_ = 1;
  std::uint64_t tick_ = 0;
  std::size_t cap_ = kDefaultSampleCap;
};

/// Insertion-ordered collection of named instruments. Lookup by name
/// creates the instrument on first use; the returned reference stays
/// valid for the registry's lifetime (instruments live in deques).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  /// Toggling applies to all instruments already handed out (they share
  /// the registry's flag). Recorded values are retained.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& latency(std::string_view name);

  /// Read-only lookups; nullptr when the instrument was never created.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* find_latency(
      std::string_view name) const;

  /// Instrument names in insertion order.
  [[nodiscard]] const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const noexcept {
    return gauge_names_;
  }
  [[nodiscard]] const std::vector<std::string>& latency_names() const noexcept {
    return latency_names_;
  }

  /// Folds `other` into this registry: counters sum, gauges take the
  /// other's value (last merge wins), latency summaries append the
  /// other's samples in their insertion order. Missing instruments are
  /// created in the other's insertion order, so a fixed merge order
  /// (e.g. sweep scenario order) produces a registry whose layout and
  /// contents are independent of thread scheduling. A disabled target
  /// ignores the merge entirely.
  void merge(const MetricsRegistry& other);

  /// `kind,name,count,sum,mean,min,max,p50,p99` rows (RFC 4180 quoting
  /// via util/csv.hpp). Counters fill count; gauges fill sum; latencies
  /// fill every column.
  void write_csv(std::ostream& out) const;
  /// One JSON object: {"counters":{...},"gauges":{...},"latencies":{...}}.
  void write_json(std::ostream& out) const;

 private:
  bool enabled_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyHistogram> latencies_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> latency_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> latency_index_;
};

}  // namespace sbk::obs
