#include "control/controller.hpp"

#include <algorithm>

#include "control/recovery_latency.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::control {

using sharebackup::DeviceState;
using sharebackup::DeviceUid;
using sharebackup::Fabric;
using sharebackup::InterfaceRef;
using sharebackup::SwitchPosition;

Controller::Controller(Fabric& fabric, ControllerConfig config)
    : fabric_(&fabric), config_(config), engine_(fabric) {
  SBK_EXPECTS(config_.probe_interval > 0.0);
  SBK_EXPECTS(config_.miss_threshold >= 1);
  SBK_EXPECTS(config_.watchdog_threshold >= 1);
  SBK_EXPECTS(config_.command_max_retries >= 0);
  SBK_EXPECTS(config_.command_timeout >= 0.0);
  SBK_EXPECTS(config_.retry_backoff_initial >= 0.0);
  SBK_EXPECTS(config_.retry_backoff_cap >= config_.retry_backoff_initial);
  SBK_EXPECTS(config_.degraded_rule_updates >= 0);
}

void Controller::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_failovers_ = m_diagnoses_ = m_watchdog_trips_ = nullptr;
    m_pool_exhausted_ = m_retries_ = m_degraded_ = m_requeued_ = nullptr;
    m_control_latency_ = m_degraded_latency_ = nullptr;
    return;
  }
  m_failovers_ = &metrics->counter("controller.failovers");
  m_diagnoses_ = &metrics->counter("controller.diagnoses");
  m_watchdog_trips_ = &metrics->counter("controller.watchdog_trips");
  m_pool_exhausted_ = &metrics->counter("controller.pool_exhausted");
  m_retries_ = &metrics->counter("controller.retries");
  m_degraded_ = &metrics->counter("controller.degraded_reroutes");
  m_requeued_ = &metrics->counter("controller.requeued");
  m_control_latency_ = &metrics->latency("controller.control_latency");
  m_degraded_latency_ = &metrics->latency("controller.degraded_latency");
}

std::size_t Controller::trace_recovery(const std::string& element,
                                       Seconds command_penalty) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return obs::RecoveryTracer::kNoIncident;
  }
  std::size_t inc = tracer_->ensure_incident(element, now_);
  Seconds report_done = now_ + config_.report_latency;
  tracer_->add_span(inc, "notification", now_, report_done);
  Seconds decided = report_done + config_.processing_latency;
  tracer_->add_span(inc, "decision", report_done, decided);
  Seconds commanded = decided + config_.command_latency + command_penalty;
  tracer_->add_span(inc, "command", decided, commanded);
  Seconds reconfigured =
      commanded + sharebackup::reconfiguration_latency(fabric_->technology());
  tracer_->add_span(inc, "reconfiguration", commanded, reconfigured);
  if (tables_ != nullptr) {
    // Backup tables are preloaded (§4.3); activation is a profile change
    // that completes with the circuit reset — a point event on the
    // timeline.
    tracer_->add_span(inc, "table_activation", reconfigured, reconfigured);
  }
  tracer_->close_incident(inc, reconfigured);
  return inc;
}

Seconds Controller::control_path_latency() const {
  return config_.report_latency + config_.processing_latency +
         config_.command_latency +
         sharebackup::reconfiguration_latency(fabric_->technology());
}

Seconds Controller::end_to_end_recovery_latency() const {
  // Worst-case detection: the element dies right after a probe, and
  // miss_threshold consecutive probes must be missed.
  Seconds detection =
      static_cast<double>(config_.miss_threshold) * config_.probe_interval;
  return detection + control_path_latency();
}

Seconds Controller::degraded_reroute_latency() const {
  LatencyModelParams p;
  p.probe_interval = config_.probe_interval;
  p.miss_threshold = config_.miss_threshold;
  p.control_channel_one_way = config_.report_latency;
  p.controller_processing = config_.processing_latency;
  LatencyBreakdown b =
      global_reroute_latency(p, config_.degraded_rule_updates);
  // Detection already happened by the time recovery degrades; charge
  // only the post-detection reroute pipeline.
  return b.total() - b.detection;
}

Controller::CommandOutcome Controller::execute_failover(
    sharebackup::SwitchPosition pos) {
  CommandOutcome co;
  Seconds backoff = config_.retry_backoff_initial;
  bool applied = false;
  for (int attempt = 0; attempt <= config_.command_max_retries; ++attempt) {
    CommandStatus st = command_fault_ ? command_fault_(pos, attempt)
                                      : CommandStatus::kAck;
    bool applies = st == CommandStatus::kAck ||
                   st == CommandStatus::kTimeoutApplied;
    if (applies && !applied) {
      // The command reached the circuit switches: swap in spares until
      // one is verified alive (a dead-on-arrival backup cascades to the
      // next spare; the DOA unit goes out of service like any casualty).
      std::optional<Fabric::FailoverReport> rep = fabric_->fail_over(pos);
      if (!rep.has_value()) {
        co.pool_exhausted = true;
        return co;
      }
      while (!fabric_->device_interfaces_healthy(rep->replacement)) {
        co.doa_cascade.push_back(*rep);
        ++co.retries;
        ++stats_.doa_backups;
        audit("doa-backup", fabric_->device(rep->replacement).name +
                                " dead on arrival; cascading to next spare");
        fabric_->network().fail_node(fabric_->node_at(pos));
        rep = fabric_->fail_over(pos);
        if (!rep.has_value()) {
          co.pool_exhausted = true;
          return co;
        }
      }
      applied = true;
      co.report = rep;
    }
    if (st == CommandStatus::kAck) {
      // Commands are idempotent: an ack for a re-sent command after a
      // lost ack confirms the reconfiguration already in effect.
      return co;
    }
    // No ack this round: charge the penalty, back off, re-send.
    ++co.retries;
    co.retry_penalty += st == CommandStatus::kNack
                            ? 2.0 * config_.command_latency
                            : config_.command_timeout;
    if (attempt < config_.command_max_retries) {
      co.retry_penalty += backoff;
      backoff = std::min(2.0 * backoff, config_.retry_backoff_cap);
    }
  }
  if (applied) {
    // Retries spent, but the reconfiguration is physically in effect
    // (every ack was lost): the position is recovered; keep the result.
    audit("command-unacked",
          "reconfiguration applied but never acknowledged");
    return co;
  }
  co.retries_exhausted = true;
  return co;
}

void Controller::account_command(const CommandOutcome& co,
                                 RecoveryOutcome& outcome) {
  stats_.retries += co.retries;
  if (m_retries_ && co.retries > 0) m_retries_->add(co.retries);
  outcome.retries += co.retries;
  for (const Fabric::FailoverReport& rep : co.doa_cascade) {
    ++stats_.failovers;
    if (m_failovers_) m_failovers_->add();
    mirror_failover(rep);
    outcome.failovers.push_back(rep);
  }
}

void Controller::degrade(RecoveryOutcome& outcome, const std::string& element,
                         const char* cause) {
  ++stats_.degraded_reroutes;
  if (m_degraded_) m_degraded_->add();
  outcome.degraded = true;
  outcome.recovered = false;
  outcome.degraded_latency = degraded_reroute_latency();
  if (m_degraded_latency_) {
    m_degraded_latency_->record(outcome.degraded_latency);
  }
  outcome.detail = std::string(cause) + "; degraded to global reroute";
  audit("degraded", element + ": " + cause);
  if (recorder_ != nullptr) {
    recorder_->instant("control", "degraded", now_, element);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The incident stays open: the element is routed around, not
    // recovered; a later hardware re-attempt closes it.
    std::size_t inc = tracer_->ensure_incident(element, now_);
    tracer_->add_span(inc, "degraded_reroute", now_,
                      now_ + outcome.degraded_latency);
  }
}

void Controller::mirror_failover(
    const sharebackup::Fabric::FailoverReport& report) {
  if (tables_ != nullptr) tables_->on_fail_over(report);
}

void Controller::mirror_return(DeviceUid dev) {
  if (tables_ != nullptr) tables_->on_return_to_pool(dev);
}

void Controller::audit(std::string event, std::string detail) {
  audit_.push_back(AuditEntry{now_, std::move(event), std::move(detail)});
  // Amortized O(1) trim: let the log run to twice the limit, then shed
  // the oldest block in one move.
  if (audit_limit_ != 0 && audit_.size() >= 2 * audit_limit_) {
    const std::size_t drop = audit_.size() - audit_limit_;
    audit_.erase(audit_.begin(),
                 audit_.begin() + static_cast<std::ptrdiff_t>(drop));
    audit_dropped_ += drop;
  }
}

void Controller::park_node(SwitchPosition pos) {
  if (std::find(pending_nodes_.begin(), pending_nodes_.end(), pos) ==
      pending_nodes_.end()) {
    pending_nodes_.push_back(pos);
  }
}

void Controller::park_link(net::LinkId link) {
  if (std::find(pending_links_.begin(), pending_links_.end(), link) ==
      pending_links_.end()) {
    pending_links_.push_back(link);
  }
}

void Controller::retry_pending() {
  if (retrying_) {
    // Re-entrant trigger (a retried recovery replenished a pool itself,
    // or a watchdog ack landed mid-pass): the outer pass must make
    // another sweep, or commands parked back during this pass would sit
    // out a refill they are now entitled to.
    retry_again_ = true;
    return;
  }
  retrying_ = true;
  do {
    retry_again_ = false;
    std::vector<SwitchPosition> nodes = std::move(pending_nodes_);
    pending_nodes_.clear();
    std::vector<net::LinkId> links = std::move(pending_links_);
    pending_links_.clear();

    for (SwitchPosition pos : nodes) {
      if (!fabric_->network().node_failed(fabric_->node_at(pos))) continue;
      ++stats_.requeued;
      if (m_requeued_) m_requeued_->add();
      RecoveryOutcome out = on_switch_failure(pos);
      if (retry_listener_) {
        retry_listener_(out, fabric_->node_at(pos), std::nullopt);
      }
    }
    for (net::LinkId link : links) {
      if (!fabric_->network().link_failed(link)) continue;
      ++stats_.requeued;
      if (m_requeued_) m_requeued_->add();
      RecoveryOutcome out = on_link_failure(link);
      if (retry_listener_) retry_listener_(out, std::nullopt, link);
    }
    // Terminates: a re-run happens only when a nested trigger fired
    // during this pass, and each re-run either consumes spares or parks
    // everything back without firing another trigger.
  } while (retry_again_ &&
           (!pending_nodes_.empty() || !pending_links_.empty()));
  retry_again_ = false;
  retrying_ = false;
}

void Controller::adopt_in_flight_from(Controller& dead) {
  if (&dead == this) return;
  const std::size_t adopted = dead.pending_nodes_.size() +
                              dead.pending_links_.size() +
                              dead.diagnosis_queue_.size();
  // Parked recoveries survive the failover; the dedupe in
  // park_node/park_link makes a double handoff (or a report the new
  // primary already parked itself) harmless.
  for (SwitchPosition pos : dead.pending_nodes_) park_node(pos);
  for (net::LinkId link : dead.pending_links_) park_link(link);
  dead.pending_nodes_.clear();
  dead.pending_links_.clear();
  // Offline-diagnosis jobs keep their queue positions and cutoff times;
  // incident ids stay valid when both controllers share one tracer (the
  // replicated service attaches the same observers to every replica).
  for (PendingDiagnosis& job : dead.diagnosis_queue_) {
    diagnosis_queue_.push_back(job);
  }
  dead.diagnosis_queue_.clear();
  // A tripped watchdog is a cluster-wide operational fact: the circuit
  // switch still needs human service no matter which controller leads.
  // The report window merges so the burst that was building at the dead
  // primary can still trip the watchdog here.
  if (dead.watchdog_tripped_) watchdog_tripped_ = true;
  recent_link_reports_.insert(recent_link_reports_.end(),
                              dead.recent_link_reports_.begin(),
                              dead.recent_link_reports_.end());
  std::stable_sort(recent_link_reports_.begin(), recent_link_reports_.end(),
                   [](const LinkReport& a, const LinkReport& b) {
                     return a.at < b.at;
                   });
  dead.recent_link_reports_.clear();
  dead.watchdog_tripped_ = false;
  for (const auto& [uid, incident] : dead.incident_of_faulty_) {
    incident_of_faulty_.emplace(uid, incident);
  }
  dead.incident_of_faulty_.clear();
  audit("handoff", "adopted " + std::to_string(adopted) +
                       " in-flight commands from failed primary");
}

void Controller::acknowledge_intervention() {
  watchdog_tripped_ = false;
  // Start the watchdog window fresh: the serviced circuit switch's old
  // report burst must not immediately re-trip it.
  recent_link_reports_.clear();
  // Failures parked while recovery was halted get their turn now.
  retry_pending();
}

RecoveryOutcome Controller::on_switch_failure(SwitchPosition pos) {
  obs::ScopedSpan span(recorder_, "control", "switch_failure", now_);
  RecoveryOutcome outcome;
  ++stats_.node_failures_handled;
  if (watchdog_tripped_) {
    // Parked, not lost: the failure is re-attempted when the operator
    // acknowledges the intervention.
    park_node(pos);
    outcome.detail = "watchdog tripped: awaiting human intervention";
    return outcome;
  }
  // Stale-report guard: keep-alives race recovery, so a report may
  // arrive for a position that is already served by healthy hardware.
  // A second failover would burn a backup for nothing.
  if (!fabric_->network().node_failed(fabric_->node_at(pos))) {
    outcome.recovered = true;
    outcome.detail = "stale report: position already healthy";
    return outcome;
  }
  std::string element = obs::element_for_node(
      fabric_->network().node(fabric_->node_at(pos)).name);
  CommandOutcome co = execute_failover(pos);
  account_command(co, outcome);
  if (!co.report.has_value()) {
    if (co.pool_exhausted) {
      ++stats_.recoveries_failed_pool_exhausted;
      if (m_pool_exhausted_) m_pool_exhausted_->add();
    } else {
      ++stats_.retries_exhausted;
    }
    park_node(pos);
    degrade(outcome, element,
            co.pool_exhausted ? "backup pool exhausted for failure group"
                              : "reconfiguration command retries exhausted");
    return outcome;
  }
  const Fabric::FailoverReport& report = *co.report;
  ++stats_.failovers;
  if (m_failovers_) m_failovers_->add();
  mirror_failover(report);
  audit("failover", fabric_->device(report.failed_device).name + " -> " +
                        fabric_->device(report.replacement).name);
  outcome.recovered = true;
  outcome.failovers.push_back(report);
  outcome.control_latency = control_path_latency() + co.retry_penalty;
  outcome.detail = "switch replaced by backup";
  if (m_control_latency_) m_control_latency_->record(outcome.control_latency);
  trace_recovery(element, co.retry_penalty);
  return outcome;
}

void Controller::note_link_report_for_watchdog(std::size_t cs,
                                               net::LinkId link) {
  // One entry per link: a re-transmitted report (detector re-reports,
  // retried recoveries) refreshes the timestamp instead of inflating the
  // count — the §5.1 signature is many *distinct* links at one switch.
  std::erase_if(recent_link_reports_,
                [link](const LinkReport& r) { return r.link == link; });
  recent_link_reports_.push_back(LinkReport{now_, cs, link});
  // Evict reports that fell out of the window, then count this switch's.
  Seconds cutoff = now_ - config_.watchdog_window;
  std::erase_if(recent_link_reports_,
                [cutoff](const LinkReport& r) { return r.at < cutoff; });
  std::size_t count = static_cast<std::size_t>(
      std::count_if(recent_link_reports_.begin(), recent_link_reports_.end(),
                    [cs](const LinkReport& r) { return r.cs == cs; }));
  if (count >= config_.watchdog_threshold && !watchdog_tripped_) {
    watchdog_tripped_ = true;
    ++stats_.watchdog_trips;
    if (m_watchdog_trips_) m_watchdog_trips_->add();
    if (recorder_ != nullptr) {
      recorder_->instant("control", "watchdog_trip", now_,
                         fabric_->circuit_switch(cs).name());
    }
    SBK_LOG_WARN("controller",
                 "suspected circuit switch failure at "
                     << fabric_->circuit_switch(cs).name() << " (" << count
                     << " link reports in window); requesting human "
                        "intervention");
  }
}

RecoveryOutcome Controller::on_link_failure(net::LinkId link) {
  obs::ScopedSpan span(recorder_, "control", "link_failure", now_);
  RecoveryOutcome outcome;
  const net::Network& net = fabric_->network();
  const net::Link& l = net.link(link);
  std::size_t cs = fabric_->cs_of_link(link);
  note_link_report_for_watchdog(cs, link);
  if (watchdog_tripped_) {
    // Parked, not lost: re-attempted on acknowledge_intervention().
    park_link(link);
    outcome.detail = "watchdog tripped: awaiting human intervention";
    return outcome;
  }

  std::optional<SwitchPosition> pos_a = fabric_->position_of_node(l.a);
  std::optional<SwitchPosition> pos_b = fabric_->position_of_node(l.b);
  std::string element =
      obs::element_for_link(net.node(l.a).name, net.node(l.b).name);

  // Re-probe before acting: an earlier recovery may already have fixed
  // this link — e.g. one sick switch rooting several simultaneous link
  // failures is cured by a single replacement (§5.1's "up to kn link
  // failures rooted at n switches" capacity argument).
  auto endpoint_device = [&](net::NodeId node,
                             std::optional<SwitchPosition> pos) {
    return pos.has_value() ? fabric_->device_at(*pos)
                           : fabric_->device_of_host(node);
  };
  bool currently_healthy =
      fabric_->interface_healthy(
          InterfaceRef{endpoint_device(l.a, pos_a), cs}) &&
      fabric_->interface_healthy(
          InterfaceRef{endpoint_device(l.b, pos_b), cs});
  if (!net.link_failed(link)) {
    outcome.recovered = true;
    outcome.detail = "stale report: link already healthy";
    return outcome;
  }
  if (currently_healthy) {
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.control_latency = control_path_latency();
    outcome.detail = "re-probe found link healthy (already repaired)";
    if (m_control_latency_) {
      m_control_latency_->record(outcome.control_latency);
    }
    trace_recovery(element);
    return outcome;
  }

  if (pos_a.has_value() && pos_b.has_value()) {
    // Switch-switch link: replace both sides for fast recovery, then let
    // offline diagnosis sort out blame (§4.1).
    ++stats_.link_failures_handled;
    DeviceUid dev_a = fabric_->device_at(*pos_a);
    DeviceUid dev_b = fabric_->device_at(*pos_b);
    CommandOutcome ca = execute_failover(*pos_a);
    account_command(ca, outcome);
    CommandOutcome cb = execute_failover(*pos_b);
    account_command(cb, outcome);
    if (!ca.report.has_value() || !cb.report.has_value()) {
      // Roll back nothing: a half-recovered link keeps its replacement
      // (harmless — the new switch serves the position fine); but the
      // link cannot be restored without both ends replaced.
      bool pool = ca.pool_exhausted || cb.pool_exhausted;
      if (pool) {
        ++stats_.recoveries_failed_pool_exhausted;
        if (m_pool_exhausted_) m_pool_exhausted_->add();
      } else {
        ++stats_.retries_exhausted;
      }
      std::size_t applied = 0;
      for (const CommandOutcome* c : {&ca, &cb}) {
        if (!c->report.has_value()) continue;
        mirror_failover(*c->report);
        outcome.failovers.push_back(*c->report);
        ++applied;
      }
      stats_.failovers += applied;
      if (m_failovers_ && applied > 0) m_failovers_->add(applied);
      park_link(link);
      degrade(outcome, element,
              pool ? "backup pool exhausted; link not recovered"
                   : "reconfiguration command retries exhausted");
      return outcome;
    }
    stats_.failovers += 2;
    if (m_failovers_) m_failovers_->add(2);
    mirror_failover(*ca.report);
    mirror_failover(*cb.report);
    audit("link-failover",
          fabric_->device(ca.report->failed_device).name + " & " +
              fabric_->device(cb.report->failed_device).name + " replaced");
    outcome.failovers.push_back(*ca.report);
    outcome.failovers.push_back(*cb.report);
    fabric_->network().fail_link(link);  // idempotent if already failed
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.control_latency =
        control_path_latency() + ca.retry_penalty + cb.retry_penalty;
    outcome.detail = "both endpoints replaced; diagnosis queued";
    if (m_control_latency_) {
      m_control_latency_->record(outcome.control_latency);
    }
    diagnosis_queue_.push_back(PendingDiagnosis{
        dev_a, dev_b, cs,
        trace_recovery(element, ca.retry_penalty + cb.retry_penalty),
        now_});
    return outcome;
  }

  // Host-edge link: replace the switch side only (§4.2).
  ++stats_.host_link_failures_handled;
  std::optional<SwitchPosition> sw_pos =
      pos_a.has_value() ? pos_a : pos_b;
  SBK_EXPECTS_MSG(sw_pos.has_value(),
                  "a failed link must touch at least one switch");
  net::NodeId host = pos_a.has_value() ? l.b : l.a;

  DeviceUid old_dev = fabric_->device_at(*sw_pos);
  CommandOutcome ch = execute_failover(*sw_pos);
  account_command(ch, outcome);
  if (!ch.report.has_value()) {
    if (ch.pool_exhausted) {
      ++stats_.recoveries_failed_pool_exhausted;
      if (m_pool_exhausted_) m_pool_exhausted_->add();
    } else {
      ++stats_.retries_exhausted;
    }
    park_link(link);
    degrade(outcome, element,
            ch.pool_exhausted
                ? "backup pool exhausted; host link not recovered"
                : "reconfiguration command retries exhausted");
    return outcome;
  }
  const Fabric::FailoverReport& report = *ch.report;
  ++stats_.failovers;
  if (m_failovers_) m_failovers_->add();
  mirror_failover(report);
  outcome.failovers.push_back(report);

  // Re-test the link with the fresh switch: if the host side is at
  // fault, the failure persists.
  DeviceUid host_dev = fabric_->device_of_host(host);
  bool host_side_healthy =
      fabric_->interface_healthy(InterfaceRef{host_dev, cs});

  if (host_side_healthy) {
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.detail = "edge switch replaced; host link recovered";
    if (m_control_latency_) {
      m_control_latency_->record(control_path_latency() + ch.retry_penalty);
    }
    // The replaced switch is presumed faulty; it can still be diagnosed
    // offline against backups (not against the host).
    diagnosis_queue_.push_back(PendingDiagnosis{
        old_dev, sharebackup::kNoDeviceUid, cs,
        trace_recovery(element, ch.retry_penalty), now_});
  } else {
    // Failure persists: the switch was not the problem. Redress it and
    // flag the host for troubleshooting (§4.2).
    fabric_->return_to_pool(old_dev);
    mirror_return(old_dev);
    ++stats_.switches_exonerated;
    audit("host-flagged",
          fabric_->network().node(host).name + " (switch redressed)");
    retry_pending();
    flagged_hosts_.push_back(host);
    ++stats_.hosts_flagged;
    outcome.recovered = false;
    outcome.detail = "failure persists after replacement: host flagged";
  }
  outcome.control_latency = control_path_latency() + ch.retry_penalty;
  return outcome;
}

std::size_t Controller::run_pending_diagnosis(Seconds queued_before) {
  obs::ScopedSpan span(recorder_, "control", "diagnosis_pass", now_);
  std::size_t processed = 0;
  // Queue times are monotone, so stopping at the first too-new job
  // processes exactly the jobs queued before the cutoff. Jobs queued by
  // this pass's own side effects (an exoneration refills a pool, a
  // parked recovery retries and queues a fresh diagnosis) wait for
  // their own background pass when the caller supplies a cutoff.
  while (!diagnosis_queue_.empty() &&
         diagnosis_queue_.front().queued_at < queued_before) {
    PendingDiagnosis job = diagnosis_queue_.front();
    diagnosis_queue_.pop_front();
    ++processed;
    ++stats_.diagnoses_run;
    if (m_diagnoses_) m_diagnoses_->add();
    if (tracer_ != nullptr && job.incident != obs::RecoveryTracer::kNoIncident) {
      // The engine diagnoses instantaneously; the span marks when the
      // background pass ran, not how long the probing took.
      tracer_->add_span(job.incident, "diagnosis", now_, now_);
    }

    auto handle_verdict = [this, &job](const SuspectVerdict& v) {
      if (v.device == sharebackup::kNoDeviceUid) return;
      if (v.healthy) {
        fabric_->return_to_pool(v.device);
        mirror_return(v.device);
        ++stats_.switches_exonerated;
        audit("diagnosis", fabric_->device(v.device).name + " exonerated");
        if (tracer_ != nullptr &&
            job.incident != obs::RecoveryTracer::kNoIncident) {
          tracer_->add_span(job.incident, "restore", now_, now_);
        }
      } else {
        ++stats_.switches_confirmed_faulty;
        audit("diagnosis",
              fabric_->device(v.device).name + " confirmed faulty");
        if (job.incident != obs::RecoveryTracer::kNoIncident) {
          incident_of_faulty_[v.device] = job.incident;
        }
      }
    };

    // A queued suspect may have left the out-of-service list before the
    // background pass ran (repaired by a technician, exonerated by an
    // earlier job, or returned to the pool under chaos): only devices
    // still out can be probed offline.
    auto diagnosable = [this](DeviceUid d) {
      return d != sharebackup::kNoDeviceUid &&
             fabric_->device_state(d) == DeviceState::kOut;
    };
    bool a_ok = diagnosable(job.a);
    bool b_ok = diagnosable(job.b);
    if (a_ok && b_ok) {
      DiagnosisResult r = engine_.diagnose_link(job.a, job.b, job.cs);
      handle_verdict(r.first);
      handle_verdict(r.second);
    } else if (a_ok || b_ok) {
      SuspectVerdict v =
          engine_.diagnose_interface(a_ok ? job.a : job.b, job.cs);
      handle_verdict(v);
    }
    // Neither side still out: nothing left to probe.
  }
  if (processed > 0) retry_pending();
  return processed;
}

void Controller::on_device_repaired(DeviceUid dev) {
  SBK_EXPECTS(fabric_->device_state(dev) == DeviceState::kOut);
  fabric_->heal_device(dev);
  fabric_->return_to_pool(dev);
  mirror_return(dev);
  audit("repair", fabric_->device(dev).name + " healed, back in pool");
  if (auto it = incident_of_faulty_.find(dev);
      it != incident_of_faulty_.end()) {
    if (tracer_ != nullptr) {
      tracer_->add_span(it->second, "restore", now_, now_);
    }
    incident_of_faulty_.erase(it);
  }
  retry_pending();
}

}  // namespace sbk::control
