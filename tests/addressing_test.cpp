// Tests for the Al-Fares dotted address scheme: encode/decode round
// trips, uniqueness, parsing, and agreement with built fat-trees.
#include <gtest/gtest.h>

#include <set>

#include "topo/addressing.hpp"
#include "util/assert.hpp"

namespace sbk::topo {
namespace {

TEST(Address, ToStringAndParseRoundTrip) {
  Address a{10, 3, 7, 2};
  EXPECT_EQ(a.to_string(), "10.3.7.2");
  auto parsed = parse_address("10.3.7.2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(Address, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_address("").has_value());
  EXPECT_FALSE(parse_address("10.1.2").has_value());
  EXPECT_FALSE(parse_address("10.1.2.3.4").has_value());
  EXPECT_FALSE(parse_address("10.1.2.256").has_value());
  EXPECT_FALSE(parse_address("10.-1.2.3").has_value());
  EXPECT_FALSE(parse_address("a.b.c.d").has_value());
  EXPECT_FALSE(parse_address("10.1.2.3x").has_value());
}

class AddressScheme : public ::testing::TestWithParam<int> {};

TEST_P(AddressScheme, AllAddressesUniqueAndDecodeBack) {
  const int k = GetParam();
  const int half = k / 2;
  std::set<std::string> seen;

  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        Address a = host_address(k, pod, e, h);
        EXPECT_TRUE(seen.insert(a.to_string()).second) << a.to_string();
        DecodedAddress d = decode_address(k, a);
        EXPECT_EQ(d.kind, AddressKind::kHost);
        EXPECT_EQ(d.pod, pod);
        EXPECT_EQ(d.index, e);
        EXPECT_EQ(d.host, h);
      }
      Address es = switch_address(k, {Layer::kEdge, pod, e});
      EXPECT_TRUE(seen.insert(es.to_string()).second);
      DecodedAddress de = decode_address(k, es);
      EXPECT_EQ(de.kind, AddressKind::kEdge);
      EXPECT_EQ(de.pod, pod);
      EXPECT_EQ(de.index, e);
      Address as = switch_address(k, {Layer::kAgg, pod, e});
      EXPECT_TRUE(seen.insert(as.to_string()).second);
      DecodedAddress da = decode_address(k, as);
      EXPECT_EQ(da.kind, AddressKind::kAgg);
      EXPECT_EQ(da.index, e);
    }
  }
  for (int c = 0; c < half * half; ++c) {
    Address a = switch_address(k, {Layer::kCore, -1, c});
    EXPECT_TRUE(seen.insert(a.to_string()).second);
    DecodedAddress d = decode_address(k, a);
    EXPECT_EQ(d.kind, AddressKind::kCore);
    EXPECT_EQ(d.index, c);
  }
  // Total distinct addresses: hosts + switches.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(
                             k * half * half + k * half * 2 + half * half));
}

INSTANTIATE_TEST_SUITE_P(Ks, AddressScheme, ::testing::Values(4, 8, 16));

TEST(Address, DecodeRejectsOutOfRangeForms) {
  const int k = 4;
  EXPECT_EQ(decode_address(k, Address{9, 0, 0, 2}).kind,
            AddressKind::kInvalid);
  EXPECT_EQ(decode_address(k, Address{10, 5, 0, 2}).kind,
            AddressKind::kInvalid);  // pod >= k and not the core prefix
  EXPECT_EQ(decode_address(k, Address{10, 4, 3, 1}).kind,
            AddressKind::kInvalid);  // core row out of range
  EXPECT_EQ(decode_address(k, Address{10, 0, 3, 2}).kind,
            AddressKind::kInvalid);  // host on an agg "subnet"
  EXPECT_EQ(decode_address(k, Address{10, 0, 0, 5}).kind,
            AddressKind::kInvalid);  // host index out of range
}

TEST(Address, AgreesWithBuiltFatTree) {
  FatTree ft(FatTreeParams{.k = 6});
  // Paper-style examples.
  EXPECT_EQ(address_of(ft, ft.host(2, 1, 0)).to_string(), "10.2.1.2");
  EXPECT_EQ(address_of(ft, ft.edge(2, 1)).to_string(), "10.2.1.1");
  EXPECT_EQ(address_of(ft, ft.agg(2, 1)).to_string(), "10.2.4.1");
  EXPECT_EQ(address_of(ft, ft.core(4)).to_string(), "10.6.2.2");

  // Round trip through decode for every node.
  for (int g = 0; g < ft.host_count(); ++g) {
    Address a = address_of(ft, ft.host(g));
    DecodedAddress d = decode_address(6, a);
    EXPECT_EQ(d.kind, AddressKind::kHost);
    EXPECT_EQ(ft.host(d.pod, d.index, d.host), ft.host(g));
  }
}

TEST(Address, PreconditionsEnforced) {
  EXPECT_THROW((void)host_address(5, 0, 0, 0), sbk::ContractViolation);
  EXPECT_THROW((void)host_address(4, 4, 0, 0), sbk::ContractViolation);
  EXPECT_THROW((void)host_address(4, 0, 0, 2), sbk::ContractViolation);
  EXPECT_THROW((void)switch_address(4, {Layer::kCore, -1, 4}),
               sbk::ContractViolation);
}

}  // namespace
}  // namespace sbk::topo
