#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace sbk::workload {

namespace {
[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}
}  // namespace

void write_trace(std::ostream& out, int racks,
                 const std::vector<CoflowSpec>& trace) {
  out << racks << ' ' << trace.size() << '\n';
  for (const CoflowSpec& c : trace) {
    out << c.id << ' ' << static_cast<long long>(c.arrival * 1000.0) << ' '
        << c.mapper_racks.size();
    for (int m : c.mapper_racks) out << ' ' << m;
    out << ' ' << c.reducers.size();
    out.precision(9);
    for (const CoflowSpec::Reducer& r : c.reducers) {
      out << ' ' << r.rack << ':' << (r.bytes / 1e6);
    }
    out << '\n';
  }
}

ParsedTrace read_trace(std::istream& in) {
  ParsedTrace parsed;
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(in, line)) parse_error(line_no, "missing header");
  {
    std::istringstream hs(line);
    std::size_t count = 0;
    if (!(hs >> parsed.racks >> count)) parse_error(line_no, "bad header");
    if (parsed.racks <= 0) parse_error(line_no, "racks must be positive");
    parsed.coflows.reserve(count);
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    CoflowSpec c;
    long long arrival_ms = 0;
    std::size_t mappers = 0;
    if (!(ls >> c.id >> arrival_ms >> mappers)) {
      parse_error(line_no, "bad coflow header fields");
    }
    if (arrival_ms < 0) parse_error(line_no, "negative arrival");
    c.arrival = static_cast<Seconds>(arrival_ms) / 1000.0;
    for (std::size_t i = 0; i < mappers; ++i) {
      int m = -1;
      if (!(ls >> m)) parse_error(line_no, "missing mapper rack");
      if (m < 0 || m >= parsed.racks) parse_error(line_no, "mapper rack out of range");
      c.mapper_racks.push_back(m);
    }
    std::size_t reducers = 0;
    if (!(ls >> reducers)) parse_error(line_no, "missing reducer count");
    for (std::size_t i = 0; i < reducers; ++i) {
      std::string field;
      if (!(ls >> field)) parse_error(line_no, "missing reducer field");
      auto colon = field.find(':');
      if (colon == std::string::npos) parse_error(line_no, "reducer missing ':'");
      try {
        int rack = std::stoi(field.substr(0, colon));
        double mb = std::stod(field.substr(colon + 1));
        if (rack < 0 || rack >= parsed.racks) {
          parse_error(line_no, "reducer rack out of range");
        }
        if (mb < 0.0) parse_error(line_no, "negative reducer volume");
        c.reducers.push_back(CoflowSpec::Reducer{rack, mb * 1e6});
      } catch (const std::logic_error&) {
        parse_error(line_no, "malformed reducer field '" + field + "'");
      }
    }
    parsed.coflows.push_back(std::move(c));
  }
  return parsed;
}

void save_trace(const std::string& path, int racks,
                const std::vector<CoflowSpec>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, racks, trace);
}

ParsedTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace sbk::workload
