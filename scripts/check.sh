#!/usr/bin/env bash
# Full local verification: configure, build, run every test, then run
# every experiment harness (the micro-benchmarks in reduced mode).
#
# Usage: scripts/check.sh [--tsan | --asan | --bench-smoke | --chaos-smoke |
#        --trace-smoke | --baselines-smoke | --scale-smoke |
#        --service-smoke | --failover-smoke | --slo-smoke] [build-dir]
#
#   --tsan         Configure a ThreadSanitizer build (-DSBK_SANITIZE=thread,
#                  default dir build-tsan) and run the concurrency-heavy
#                  sweep and service suites under it instead of the full
#                  harness sweep.
#   --asan         Configure an ASan+UBSan build
#                  (-DSBK_SANITIZE=address,undefined, default dir
#                  build-asan) and run the fault-injection and
#                  control-plane suites under it — the chaos paths
#                  exercise the allocation-heavy recovery machinery that
#                  ASan watches best.
#   --bench-smoke  Build the Release tree (default dir build-bench) and run
#                  micro_perf for a handful of iterations per benchmark —
#                  a fast "do the benchmarks still run" check, not a
#                  measurement. For real numbers use scripts/bench.sh.
#   --chaos-smoke  Build examples/chaos_soak and run a fixed-seed 50-
#                  scenario soak (deterministic, ~1 s); exits non-zero on
#                  any invariant violation.
#   --baselines-smoke
#                  Build examples/baseline_matrix and race all five
#                  protection strategies (ShareBackup, F10, ECMP+global
#                  reroute, SPIDER, backup rules) through a small
#                  fixed-seed churn + coflow run, export the comparison
#                  CSV, and validate its schema. baseline_matrix itself
#                  exits non-zero if any strategy ever returned an
#                  invalid or dead path.
#   --scale-smoke  Build examples/scale_smoke (Release) and run the
#                  datacenter-scale gate: first an A/B check that the
#                  incremental max-min allocator reproduces the full
#                  re-solve bit-for-bit, then a k=48 fat-tree failure
#                  storm (27,648 hosts, 3,072 flows) whose peak RSS and
#                  wall time are asserted against committed budgets.
#   --service-smoke
#                  Build examples/service_soak (Release) and run the
#                  always-on controller service gate: a 100k+-report
#                  stream replayed through the ControllerService with
#                  throughput, p99 decision-latency, and peak-RSS
#                  bounds asserted, plus a cross-thread determinism
#                  check (inline / 1 / 8 producer threads must produce
#                  bit-identical fingerprints).
#   --failover-smoke
#                  Build examples/service_soak + sbk_trace (Release) and
#                  run the replicated-service chaos soak across all three
#                  scripted cluster scenarios (primary-crash,
#                  crash-during-election, total-death): zero lost failure
#                  reports across failovers, an empty headless backlog,
#                  every bounded headless window inside the election
#                  bound, and bit-identical fingerprints across
#                  inline/1/8 producer threads. The primary-crash run's
#                  trace is digested with `sbk_trace service` and must
#                  show the failovers. Also runs (reduced) in the default
#                  full-verification matrix.
#   --slo-smoke    Build examples/service_soak + sbk_trace (Release) and
#                  run the live SLO engine gates: a healthy run must
#                  raise zero burn-rate alerts and emit a health
#                  snapshot whose Prometheus text exposition passes a
#                  dependency-free validator; a scripted primary-crash
#                  run must breach the availability objective within one
#                  window of every cluster crash, clear every breach,
#                  stay bit-identical across inline/1/4/8 producers, and
#                  its trace must digest through `sbk_trace slo`. Also
#                  runs (reduced) in the default full-verification
#                  matrix.
#   --trace-smoke  Build examples/failure_drill + sbk_trace, record the
#                  drill into a flight-recorder trace, validate the
#                  Perfetto trace_event JSON against a minimal schema,
#                  and cross-check its recovery spans against the
#                  RecoveryTracer timeline CSV (sbk_trace check exits
#                  non-zero on any mismatch). Also runs in the default
#                  full-verification matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

run_trace_smoke() {
  local BUILD="$1"
  "$BUILD"/examples/failure_drill "$BUILD/recovery_timeline.csv" \
    "$BUILD/drill_trace.json" >/dev/null
  "$BUILD"/examples/sbk_trace check "$BUILD/drill_trace.json" \
    --timeline="$BUILD/recovery_timeline.csv"
  "$BUILD"/examples/sbk_trace summary "$BUILD/drill_trace.json" >/dev/null
  python3 - "$BUILD/drill_trace.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents missing or empty"
for e in events:
    assert {"name", "cat", "ph", "pid", "tid", "ts"} <= e.keys(), \
        f"event missing required keys: {e}"
    assert e["ph"] in ("X", "i", "C"), f"unknown phase: {e}"
    if e["ph"] == "X":
        assert e.get("dur", -1) >= 0, f"span without duration: {e}"
assert any(e["cat"] == "recovery" for e in events), \
    "no recovery spans exported into the trace"
print(f"trace-smoke: Perfetto JSON OK ({len(events)} events)")
EOF
}

run_failover_smoke() {
  local BUILD="$1" REPEATS="$2"
  # The three scripted cluster scenarios; every run asserts the failover
  # gates (nothing lost, empty headless backlog, bounded windows) and
  # cross-thread fingerprint identity with crash messages in the stream.
  local s
  for s in primary-crash crash-during-election total-death; do
    "$BUILD"/examples/service_soak --replicas=3 --scenario="$s" \
      --repeats="$REPEATS" --min-reports=1000 --verify-threads \
      --trace="$BUILD/failover_trace_$s.json" >/dev/null
    echo "failover-smoke: scenario $s clean"
  done
  # The primary-crash trace must carry the failover story end to end.
  local digest
  digest="$("$BUILD"/examples/sbk_trace service \
    "$BUILD/failover_trace_primary-crash.json")"
  echo "$digest"
  echo "$digest" | grep -q "failovers" \
    || { echo "failover-smoke: no failover digest in trace" >&2; exit 1; }
}

run_slo_smoke() {
  local BUILD="$1" REPEATS="$2"
  # Healthy single-controller run: the live engine must stay quiet (the
  # soak itself exits non-zero on a false burn alert via slo_quiet_ok)
  # and the final health snapshot must be a well-formed Prometheus text
  # exposition — validated below without any client library.
  "$BUILD"/examples/service_soak --slo --health="$BUILD/health.prom" \
    >/dev/null
  python3 - "$BUILD/health.prom" <<'EOF'
import re, sys

name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
label_re = re.compile(
    r'\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$')
types = {}
samples = 0
with open(sys.argv[1]) as f:
    for lineno, raw in enumerate(f, 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            assert len(parts) == 4 and name_re.match(parts[2]), \
                f"line {lineno}: malformed HELP: {line}"
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4 and name_re.match(parts[2]), \
                f"line {lineno}: malformed TYPE: {line}"
            assert parts[3] in ("counter", "gauge", "histogram", "summary",
                                "untyped"), \
                f"line {lineno}: unknown type {parts[3]}"
            assert parts[2] not in types, \
                f"line {lineno}: duplicate TYPE for {parts[2]}"
            types[parts[2]] = parts[3]
            continue
        assert not line.startswith("#"), f"line {lineno}: stray comment"
        body, _, value = line.rpartition(" ")
        float(value)  # raises on a malformed sample value
        name, brace, labels = body.partition("{")
        assert name_re.match(name), f"line {lineno}: bad metric name {name}"
        if brace:
            assert label_re.match(brace + labels), \
                f"line {lineno}: malformed labels: {line}"
        family = name
        for t, suffix in (("counter", "_total"), ("counter", "_count")):
            if types.get(family) is None and family.endswith(suffix):
                family = family[: -len(suffix)]
        assert name in types or family in types, \
            f"line {lineno}: sample {name} has no TYPE declaration"
        samples += 1
assert types and samples, "exposition is empty"
assert any(t == "counter" for t in types.values()), "no counters exposed"
assert any(n.startswith("sbk_slo_") for n in types), "no sbk_slo_* families"
print(f"slo-smoke: Prometheus exposition OK "
      f"({len(types)} families, {samples} samples)")
EOF
  # Scripted failover: the soak's own gates assert a breach within one
  # window of every scripted cluster crash (slo_detect_ok), that every
  # breach clears (slo_clear_ok), and — with --verify-threads — that the
  # alert timeline and snapshot log are bit-identical across inline and
  # 1/4/8 producer threads. The trace must digest through `sbk_trace
  # slo` with at least one BREACH row.
  "$BUILD"/examples/service_soak --replicas=3 --scenario=primary-crash \
    --repeats="$REPEATS" --min-reports=1000 --slo --verify-threads \
    --trace="$BUILD/slo_trace.json" >/dev/null
  local digest
  digest="$("$BUILD"/examples/sbk_trace slo "$BUILD/slo_trace.json")"
  echo "$digest" | grep -q "BREACH" \
    || { echo "slo-smoke: no breach rows in slo digest" >&2; exit 1; }
  echo "slo-smoke: alert timeline digested ($(
    echo "$digest" | grep -c "BREACH") breach rows)"
}

TSAN=0
ASAN=0
BENCH_SMOKE=0
CHAOS_SMOKE=0
TRACE_SMOKE=0
BASELINES_SMOKE=0
SCALE_SMOKE=0
SERVICE_SMOKE=0
FAILOVER_SMOKE=0
SLO_SMOKE=0
if [ "${1:-}" = "--tsan" ]; then
  TSAN=1
  shift
elif [ "${1:-}" = "--asan" ]; then
  ASAN=1
  shift
elif [ "${1:-}" = "--bench-smoke" ]; then
  BENCH_SMOKE=1
  shift
elif [ "${1:-}" = "--chaos-smoke" ]; then
  CHAOS_SMOKE=1
  shift
elif [ "${1:-}" = "--trace-smoke" ]; then
  TRACE_SMOKE=1
  shift
elif [ "${1:-}" = "--baselines-smoke" ]; then
  BASELINES_SMOKE=1
  shift
elif [ "${1:-}" = "--scale-smoke" ]; then
  SCALE_SMOKE=1
  shift
elif [ "${1:-}" = "--service-smoke" ]; then
  SERVICE_SMOKE=1
  shift
elif [ "${1:-}" = "--failover-smoke" ]; then
  FAILOVER_SMOKE=1
  shift
elif [ "${1:-}" = "--slo-smoke" ]; then
  SLO_SMOKE=1
  shift
fi

if [ "$SLO_SMOKE" = 1 ]; then
  BUILD="${1:-build-bench}"
  cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" --target service_soak sbk_trace
  run_slo_smoke "$BUILD" 30
  echo "slo-smoke: live SLO engine quiet when healthy, alerting on" \
    "scripted crashes, thread-invariant"
  exit 0
fi

if [ "$FAILOVER_SMOKE" = 1 ]; then
  BUILD="${1:-build-bench}"
  cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" --target service_soak sbk_trace
  run_failover_smoke "$BUILD" 30
  echo "failover-smoke: replicated service survived all cluster scenarios"
  exit 0
fi

if [ "$SERVICE_SMOKE" = 1 ]; then
  BUILD="${1:-build-bench}"
  cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" --target service_soak
  # Gates: >= 100k failure reports processed (the stream carries
  # ~107k), >= 50k messages/s of wall throughput (the Release build
  # sustains several hundred k/s, so this only trips on an
  # order-of-magnitude regression), virtual p99 decision latency under
  # 50 ms (measured ~13 ms with the default saturation knobs), and
  # peak RSS under 256 MB (measured ~26 MB — bounded queues and the
  # capped audit log keep an always-on service flat). --verify-threads
  # re-runs the soak inline and with 1 and 8 producers and fails unless
  # every fingerprint is bit-identical.
  "$BUILD"/examples/service_soak --verify-threads \
    --min-reports=100000 --min-throughput=50000 \
    --max-p99-ms=50 --max-rss-mb=256
  echo "service-smoke: sustained report stream within gates," \
    "bit-identical across thread counts"
  exit 0
fi

if [ "$SCALE_SMOKE" = 1 ]; then
  BUILD="${1:-build-bench}"
  cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" --target scale_smoke
  # Committed budgets: the k=48 storm peaks near 25 MB and well under a
  # second on a developer box (flat CSR adjacency + incremental
  # dirty-component solves), so these bounds only trip on an
  # order-of-magnitude blowup — an accidental return to per-event full
  # re-solves or hashed fabric state — never on machine noise.
  "$BUILD"/examples/scale_smoke 48 --storm-pods=48 --per-pod=64 \
    --max-rss-mb=256 --max-seconds=60
  echo "scale-smoke: k=48 failure storm within memory and time budgets"
  exit 0
fi

if [ "$BASELINES_SMOKE" = 1 ]; then
  BUILD="${1:-build-baselines}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD" --target baseline_matrix
  # Fixed master seed: the matrix is bit-identical across runs and
  # thread counts, so any change here is a real behavior change.
  "$BUILD"/examples/baseline_matrix 4 1 8 1 0 \
    --csv="$BUILD/baseline_matrix.csv"
  python3 - "$BUILD/baseline_matrix.csv" <<'EOF'
import csv, sys

expected_header = ["strategy", "recovery_latency_s", "packet_loss",
                   "cct_slowdown", "table_entries", "table_per_switch",
                   "flows_probed", "flows_lost", "backup_fallback_frac"]
expected_strategies = ["sharebackup", "f10", "ecmp+global-reroute",
                       "spider-protect", "backup-rules"]
with open(sys.argv[1]) as f:
    reader = csv.DictReader(f)
    assert reader.fieldnames == expected_header, \
        f"unexpected header: {reader.fieldnames}"
    rows = list(reader)
assert [r["strategy"] for r in rows] == expected_strategies, \
    f"unexpected strategy rows: {[r['strategy'] for r in rows]}"
for r in rows:
    assert float(r["recovery_latency_s"]) > 0, f"no latency model: {r}"
    assert 0 <= float(r["packet_loss"]) <= 1, f"loss out of range: {r}"
    assert float(r["cct_slowdown"]) >= 1, f"slowdown below 1: {r}"
    assert int(r["flows_lost"]) <= int(r["flows_probed"]), f"bad tally: {r}"
by_name = {r["strategy"]: r for r in rows}
assert float(by_name["sharebackup"]["packet_loss"]) == 0, \
    "ShareBackup must leave no residual blackholes"
for proactive in ("sharebackup", "spider-protect", "backup-rules"):
    assert int(by_name[proactive]["table_entries"]) > 0, \
        f"{proactive} should pre-install table state"
for reactive in ("f10", "ecmp+global-reroute"):
    assert int(by_name[reactive]["table_entries"]) == 0, \
        f"{reactive} pre-installs nothing"
print(f"baselines-smoke: comparison CSV OK ({len(rows)} strategies)")
EOF
  echo "baselines-smoke: 5-strategy matrix clean"
  exit 0
fi

if [ "$TRACE_SMOKE" = 1 ]; then
  BUILD="${1:-build-trace}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD" --target failure_drill sbk_trace
  run_trace_smoke "$BUILD"
  exit 0
fi

if [ "$BENCH_SMOKE" = 1 ]; then
  BUILD="${1:-build-bench}"
  cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" --target micro_perf
  "$BUILD"/bench/micro_perf --benchmark_min_time=0.01
  echo "bench-smoke: micro_perf ran all benchmarks"
  exit 0
fi

if [ "$CHAOS_SMOKE" = 1 ]; then
  BUILD="${1:-build-chaos}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD" --target chaos_soak
  # Fixed master seed: the soak is bit-identical across runs and thread
  # counts, so a violation here is a regression, never flakiness.
  "$BUILD"/examples/chaos_soak 50 1
  echo "chaos-smoke: 50 scenarios clean"
  exit 0
fi

if [ "$ASAN" = 1 ]; then
  BUILD="${1:-build-asan}"
  cmake -B "$BUILD" -G Ninja -DSBK_SANITIZE=address,undefined
  cmake --build "$BUILD" --target faultinject_test control_plane_test
  "$BUILD"/tests/faultinject_test
  "$BUILD"/tests/control_plane_test
  echo "asan: faultinject_test + control_plane_test clean"
  exit 0
fi

if [ "$TSAN" = 1 ]; then
  BUILD="${1:-build-tsan}"
  cmake -B "$BUILD" -G Ninja -DSBK_SANITIZE=thread
  cmake --build "$BUILD" --target sweep_test service_test
  # Run the sweep/thread-pool suite directly: it is the code that owns
  # all cross-thread state, and TSan halts with a non-zero exit on the
  # first data race. The service suite adds the ingress-queue
  # producer/consumer machinery and the replicated-service failover
  # tests (multi-threaded submission across controller crashes).
  "$BUILD"/tests/sweep_test
  "$BUILD"/tests/service_test
  echo "tsan: sweep_test + service_test clean"
  exit 0
fi

BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

# Trace smoke: the failure drill must emit a well-formed recovery
# timeline (it exits non-zero itself when the measured spans disagree
# with the §5.3 latency model), the CSV must parse with monotone spans
# per incident, and the flight-recorder trace must pass the Perfetto
# schema check and match the timeline span-for-span.
run_trace_smoke "$BUILD"
python3 - "$BUILD/recovery_timeline.csv" <<'EOF'
import csv, sys

eps = 1e-9
with open(sys.argv[1]) as f:
    reader = csv.DictReader(f)
    header = reader.fieldnames
    rows = list(reader)

expected = ["incident", "element", "injected_at", "recovered_at",
            "stage", "start", "end", "duration"]
assert header == expected, f"unexpected header: {header}"
assert rows, "timeline CSV has no spans"

prev_start = {}
for row in rows:
    inc = row["incident"]
    start, end = float(row["start"]), float(row["end"])
    assert end >= start - eps, f"span runs backwards: {row}"
    assert start >= prev_start.get(inc, start) - eps, \
        f"spans not monotone in incident {inc}: {row}"
    prev_start[inc] = start
    assert start >= float(row["injected_at"]) - eps, \
        f"span precedes injection: {row}"

stages = {}
for row in rows:
    stages.setdefault(row["incident"], set()).add(row["stage"])
for inc, s in stages.items():
    assert {"injection", "detection"} <= s, \
        f"incident {inc} missing pipeline stages: {sorted(s)}"
print(f"trace-smoke: {len(stages)} incident(s), {len(rows)} spans, "
      "all monotone")
EOF

# Failover smoke (reduced): the replicated service must survive every
# scripted cluster scenario without losing a report, and the trace must
# digest the failovers. The standalone --failover-smoke mode runs the
# same gates at Release scale.
run_failover_smoke "$BUILD" 10

# SLO smoke (reduced): the live engine must stay quiet on a healthy run,
# alert on scripted crashes, and expose a valid Prometheus snapshot. The
# standalone --slo-smoke mode runs the same gates at Release scale.
run_slo_smoke "$BUILD" 10

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "=== $name ==="
  if [ "$name" = micro_perf ]; then
    "$b" --benchmark_min_time=0.05
  else
    "$b"
  fi
done
