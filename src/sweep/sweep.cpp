#include "sweep/sweep.hpp"

#include <cstdlib>

namespace sbk::sweep {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t master_seed,
                          std::uint64_t scenario_index) noexcept {
  // Mix the master first so (master=0, index=i) and (master=i, index=0)
  // land in unrelated streams, then fold the index in and mix again.
  return splitmix64(splitmix64(master_seed) ^
                    (scenario_index * 0x9e3779b97f4a7c15ULL + 1));
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SBK_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return ThreadPool::hardware_threads();
}

SweepRunner::SweepRunner(SweepConfig cfg)
    : cfg_(cfg), threads_(resolve_threads(cfg.threads)) {}

}  // namespace sbk::sweep
