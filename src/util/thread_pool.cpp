#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace sbk {

ThreadPool::ThreadPool(std::size_t threads) {
  SBK_EXPECTS(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SBK_EXPECTS(task != nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    SBK_EXPECTS_MSG(!stop_, "submit on a shutting-down pool");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace sbk
