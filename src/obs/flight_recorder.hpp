// Whole-run event tracing: a low-overhead, preallocated ring buffer of
// structured trace events that any component can record into. Where
// MetricsRegistry answers "how much, in total" and RecoveryTracer
// answers "what happened to this incident", the flight recorder answers
// "what was the system doing, and when" — every event carries a
// simulation timestamp, and phase timers additionally carry the measured
// wall-clock cost, so one recording serves both behavioral debugging
// (open the Perfetto export in chrome://tracing) and self-profiling
// (where does wall time go inside a sweep).
//
// Design goals, in order:
//   1. Near-zero cost when disabled or detached — every recording call
//      is a single branch on the enabled flag before any allocation or
//      clock read; components hold a plain pointer and pass nullptr to
//      detach. Disabled-mode experiment output is bit-identical to a
//      build that never heard of the recorder.
//   2. Bounded memory — the buffer is sized up front (storage is
//      reserved on the first recorded event) and overwrites the OLDEST
//      events once full, so a long run keeps its most recent window and
//      `dropped()` reports exactly how much history was shed.
//   3. Deterministic content — simulation timestamps, names, and values
//      depend only on the scenario; wall-clock fields are the one
//      explicitly nondeterministic channel, and every consumer that
//      compares traces (tests, the sweep merge) excludes them.
//   4. Deterministic merging — sweep workers record into per-scenario
//      recorders that are folded together in scenario order with the
//      scenario index as the Perfetto process id, exactly like
//      MetricsRegistry merging.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace sbk::obs {

class RecoveryTracer;

/// Chrome trace_event phases we emit (the value is the `ph` letter).
enum class TracePhase : char {
  kComplete = 'X',  ///< span with a duration
  kInstant = 'i',   ///< point event
  kCounter = 'C',   ///< sampled numeric value
};

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  /// Perfetto process id; 0 until a merge assigns scenario indices.
  std::uint32_t track = 0;
  std::string category;
  std::string name;
  Seconds ts = 0.0;   ///< simulation time of the event / span start
  Seconds dur = 0.0;  ///< simulation duration (kComplete only)
  double value = 0.0;  ///< payload for kCounter
  /// Measured wall-clock duration in microseconds; negative = not
  /// measured. Excluded from determinism comparisons.
  double wall_us = -1.0;
  std::string detail;  ///< optional free-form annotation
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit FlightRecorder(bool enabled = true,
                          std::size_t capacity = kDefaultCapacity);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten by ring wrap-around (recorded - size).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - ring_.size();
  }

  void instant(std::string_view category, std::string_view name, Seconds at,
               std::string_view detail = {});
  void complete(std::string_view category, std::string_view name,
                Seconds start, Seconds end, double wall_us = -1.0,
                std::string_view detail = {});
  void counter(std::string_view category, std::string_view name, Seconds at,
               double value);

  /// Snapshot in record order (oldest surviving event first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Appends `other`'s events (oldest first) with their track set to
  /// `track` — the deterministic sweep merge. Respects this recorder's
  /// enabled flag and capacity (oldest events are shed as usual).
  void merge(const FlightRecorder& other, std::uint32_t track);

  void clear();

  /// Chrome/Perfetto trace_event JSON ({"traceEvents":[...]}); open the
  /// file in chrome://tracing or ui.perfetto.dev. `ts` is simulation
  /// time in microseconds; measured wall time rides in args.wall_us.
  void write_trace_json(std::ostream& out) const;
  /// One row per event: track,phase,category,name,ts,dur,value,wall_us,
  /// detail (RFC 4180 quoting).
  void write_csv(std::ostream& out) const;

  /// Monotonic wall clock in microseconds (steady_clock).
  [[nodiscard]] static double wall_now_us();

 private:
  void push(TraceEvent&& e);

  bool enabled_;
  std::size_t capacity_;
  /// Storage is reserved to `capacity_` on the first push; once full,
  /// `head_` is the slot holding the oldest event (and the next to be
  /// overwritten).
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
};

/// RAII phase timer: measures the wall-clock time of a scope and records
/// one kComplete event when the scope exits. The simulation interval is
/// [at, at] unless set_end() provides a later simulation end. When the
/// recorder is null or disabled the constructor is a branch and nothing
/// else — no clock read, no strings.
class ScopedSpan {
 public:
  ScopedSpan(FlightRecorder* recorder, std::string_view category,
             std::string_view name, Seconds at);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Extends the span's simulation interval to [at, sim_end].
  void set_end(Seconds sim_end) noexcept { sim_end_ = sim_end; }
  void set_detail(std::string detail) { detail_ = std::move(detail); }

 private:
  FlightRecorder* recorder_;  // nullptr when inactive
  std::string category_;
  std::string name_;
  std::string detail_;
  Seconds sim_start_ = 0.0;
  Seconds sim_end_ = 0.0;
  double wall_start_us_ = 0.0;
};

/// Replays a RecoveryTracer's incidents into `recorder` as "recovery"
/// spans (one kComplete event per stage span, detail "element#incident")
/// so the Perfetto timeline shows the §5.3 pipeline alongside the
/// simulator's own events, and sbk_trace can cross-check the two.
void export_recovery_spans(const RecoveryTracer& tracer,
                           FlightRecorder& recorder);

}  // namespace sbk::obs
