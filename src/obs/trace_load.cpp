#include "obs/trace_load.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sbk::obs {

namespace {

// --- minimal JSON value model -------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonMember = std::pair<std::string, JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<JsonMember> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const JsonMember& m : object) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The recorder only emits \u00XX for control bytes; decode the
          // Latin-1 range and pass anything wider through as '?'.
          out.push_back(code <= 0xFF ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    v.number = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) fail("bad number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double number_or(const JsonValue* v, double fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::string string_or(const JsonValue* v, std::string fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : fallback;
}

}  // namespace

std::vector<TraceEvent> load_trace_json(const std::string& text) {
  JsonValue root = Parser(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("trace JSON: top level is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("trace JSON: missing traceEvents array");
  }
  std::vector<TraceEvent> out;
  out.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("trace JSON: traceEvents entry is not an object");
    }
    const std::string ph = string_or(ev.find("ph"), "");
    if (ph != "X" && ph != "i" && ph != "C") continue;  // foreign metadata
    TraceEvent e;
    e.phase = static_cast<TracePhase>(ph[0]);
    e.track = static_cast<std::uint32_t>(number_or(ev.find("pid"), 0.0));
    e.category = string_or(ev.find("cat"), "");
    e.name = string_or(ev.find("name"), "");
    e.ts = number_or(ev.find("ts"), 0.0) / 1e6;
    e.dur = number_or(ev.find("dur"), 0.0) / 1e6;
    if (const JsonValue* args = ev.find("args");
        args != nullptr && args->kind == JsonValue::Kind::kObject) {
      e.value = number_or(args->find("value"), 0.0);
      e.wall_us = number_or(args->find("wall_us"), -1.0);
      e.detail = string_or(args->find("detail"), "");
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<TraceEvent> load_trace_json(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_trace_json(buf.str());
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace sbk::obs
