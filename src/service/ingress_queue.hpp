// Bounded ingress queue of the controller service, modeled in virtual
// time. This is the deterministic heart of src/service: every admission,
// overflow drop, backpressure transition, batch boundary, and
// decision-latency sample is a pure function of the message schedule
// (the (at, seq)-sorted arrival sequence) and the IngressConfig — never
// of wall-clock scheduling. The threaded ControllerService feeds this
// model a sorted arrival prefix at a wall-clock pace of its choosing;
// the model's outputs are bit-identical no matter how that prefix was
// produced (1 producer thread or 8, paced or flat out).
//
// Queueing semantics (all times virtual):
//   * The queue holds at most `capacity` messages; an arrival that finds
//     it full is dropped and counted (overflow is explicit, never
//     silent).
//   * One logical server drains the queue in FIFO batches of up to
//     `max_batch` messages. A batch can only contain messages that had
//     arrived by its start instant, starts as soon as the server is free
//     and work is waiting, and occupies the server for
//     batch_overhead + n * per_message_cost.
//   * Backpressure asserts when occupancy reaches `high_water` and
//     releases when it falls back to `low_water` (hysteresis). While
//     asserted, healthy probe results — pure telemetry — are shed at
//     admission; failure reports and operator commands are never shed,
//     only overflow-dropped at the hard bound.
//   * A message's decision latency is batch-completion minus arrival:
//     queue wait plus (batched) service time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "service/message.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace sbk::service {

struct IngressConfig {
  /// Hard bound on queued messages; arrivals beyond it are dropped.
  std::size_t capacity = 4096;
  /// Backpressure asserts at >= high_water, releases at <= low_water.
  std::size_t high_water = 3072;
  std::size_t low_water = 1536;
  /// Messages dispatched per batch at most.
  std::size_t max_batch = 64;
  /// Virtual cost of dispatching one batch (scheduling, one table sync).
  Seconds batch_overhead = microseconds(20);
  /// Virtual cost per message inside a batch (the controller decision).
  Seconds per_message_cost = microseconds(50);
};

/// Everything the model counted. All fields are deterministic.
struct IngressStats {
  std::uint64_t offered = 0;           ///< arrivals presented
  std::uint64_t accepted = 0;          ///< admitted into the queue
  std::uint64_t dropped_overflow = 0;  ///< arrivals that found it full
  std::uint64_t shed_probes = 0;       ///< healthy probes shed under backpressure
  std::uint64_t processed = 0;         ///< dispatched inside a batch
  std::uint64_t batches = 0;
  std::size_t peak_depth = 0;          ///< max occupancy ever seen
  std::size_t max_batch_seen = 0;
  std::uint64_t backpressure_engaged = 0;  ///< assert edges
  /// Virtual seconds spent with backpressure asserted.
  Seconds backpressure_time = 0.0;
  /// Server-busy virtual end of the last dispatched batch.
  Seconds last_batch_end = 0.0;
};

class IngressQueue {
 public:
  /// Called once per dispatched batch with the messages in admission
  /// order and the batch's virtual service interval [start, end].
  using BatchFn = std::function<void(const std::vector<ServiceMessage>&,
                                     Seconds start, Seconds end)>;
  /// Called per admission decision that did NOT accept (overflow/shed),
  /// with the rejected message; optional.
  using RejectFn = std::function<void(const ServiceMessage&, bool overflow)>;
  /// Called on every backpressure edge with the virtual transition time;
  /// optional.
  using BackpressureFn = std::function<void(bool asserted, Seconds at)>;

  explicit IngressQueue(IngressConfig config, BatchFn dispatch)
      : config_(config), dispatch_(std::move(dispatch)) {
    SBK_EXPECTS(config_.capacity >= 1);
    SBK_EXPECTS(config_.high_water >= 1 &&
                config_.high_water <= config_.capacity);
    SBK_EXPECTS(config_.low_water < config_.high_water);
    SBK_EXPECTS(config_.max_batch >= 1);
    SBK_EXPECTS(config_.batch_overhead >= 0.0);
    SBK_EXPECTS(config_.per_message_cost >= 0.0);
    SBK_EXPECTS(dispatch_ != nullptr);
  }

  void set_reject_hook(RejectFn hook) { reject_ = std::move(hook); }
  void set_backpressure_hook(BackpressureFn hook) {
    on_backpressure_ = std::move(hook);
  }

  /// Presents one arrival. Arrival keys must be nondecreasing in
  /// (at, seq) across calls — the caller owns the sort. Batches whose
  /// start instant precedes this arrival are dispatched first.
  void offer(const ServiceMessage& msg) {
    SBK_EXPECTS_MSG(
        last_at_ < msg.at || (last_at_ == msg.at && last_seq_ < msg.seq) ||
            stats_.offered == 0,
        "IngressQueue::offer: arrivals must be sorted by (at, seq)");
    last_at_ = msg.at;
    last_seq_ = msg.seq;
    ++stats_.offered;
    advance_to(msg.at);
    if (backpressure_ && msg.kind == MessageKind::kProbeResult &&
        msg.healthy) {
      ++stats_.shed_probes;
      if (reject_) reject_(msg, /*overflow=*/false);
      return;
    }
    if (queue_.size() >= config_.capacity) {
      ++stats_.dropped_overflow;
      if (reject_) reject_(msg, /*overflow=*/true);
      return;
    }
    queue_.push_back(msg);
    ++stats_.accepted;
    stats_.peak_depth = std::max(stats_.peak_depth, queue_.size());
    update_backpressure(msg.at);
  }

  /// Dispatches every remaining queued message (shutdown drain). After
  /// drain() returns, processed == accepted.
  void drain() { advance_to(std::numeric_limits<Seconds>::infinity()); }

  [[nodiscard]] const IngressStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }
  [[nodiscard]] bool backpressure() const noexcept { return backpressure_; }
  /// Per-batch size distribution (Summary over batch sizes).
  [[nodiscard]] const Summary& batch_sizes() const noexcept {
    return batch_sizes_;
  }

 private:
  /// Dispatches every batch whose start instant is <= t. The queue is
  /// FIFO in admission order, and arrivals are offered in sorted order,
  /// so a batch formed at start s contains exactly the longest prefix of
  /// messages with at <= s, capped at max_batch.
  void advance_to(Seconds t) {
    while (!queue_.empty()) {
      const Seconds start = std::max(busy_until_, queue_.front().at);
      if (start > t) break;
      batch_.clear();
      while (!queue_.empty() && batch_.size() < config_.max_batch &&
             queue_.front().at <= start) {
        batch_.push_back(queue_.front());
        queue_.pop_front();
      }
      SBK_ASSERT(!batch_.empty());
      const Seconds end =
          start + config_.batch_overhead +
          static_cast<double>(batch_.size()) * config_.per_message_cost;
      busy_until_ = end;
      ++stats_.batches;
      stats_.processed += batch_.size();
      stats_.max_batch_seen = std::max(stats_.max_batch_seen, batch_.size());
      stats_.last_batch_end = end;
      batch_sizes_.add(static_cast<double>(batch_.size()));
      dispatch_(batch_, start, end);
      update_backpressure(end);
    }
  }

  void update_backpressure(Seconds now) {
    if (!backpressure_ && queue_.size() >= config_.high_water) {
      backpressure_ = true;
      backpressure_since_ = now;
      ++stats_.backpressure_engaged;
      if (on_backpressure_) on_backpressure_(true, now);
    } else if (backpressure_ && queue_.size() <= config_.low_water) {
      backpressure_ = false;
      stats_.backpressure_time += now - backpressure_since_;
      if (on_backpressure_) on_backpressure_(false, now);
    }
  }

  IngressConfig config_;
  BatchFn dispatch_;
  RejectFn reject_;
  BackpressureFn on_backpressure_;
  std::deque<ServiceMessage> queue_;
  std::vector<ServiceMessage> batch_;  ///< reused dispatch scratch
  Seconds busy_until_ = 0.0;
  bool backpressure_ = false;
  Seconds backpressure_since_ = 0.0;
  Seconds last_at_ = -std::numeric_limits<Seconds>::infinity();
  std::uint64_t last_seq_ = 0;
  IngressStats stats_;
  Summary batch_sizes_;
};

}  // namespace sbk::service
