#include "sim/fluid_sim.hpp"

#include <algorithm>
#include <limits>

#include "net/path.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::sim {

namespace {
constexpr Seconds kTimeEps = 1e-12;
}

FluidSimulator::FluidSimulator(net::Network& net, routing::Router& router,
                               SimConfig cfg)
    : net_(&net), router_(&router), cfg_(cfg),
      loads_(net.link_count()) {
  SBK_EXPECTS(cfg_.unit_bytes_per_second > 0.0);
  SBK_EXPECTS(cfg_.horizon > 0.0);
}

void FluidSimulator::add_flow(const FlowSpec& flow) {
  SBK_EXPECTS_MSG(!ran_, "simulator instances are single-shot");
  SBK_EXPECTS(flow.bytes >= 0.0);
  SBK_EXPECTS(flow.start >= 0.0);
  FlowState st;
  st.spec = flow;
  st.remaining_bytes = flow.bytes;
  flows_.push_back(std::move(st));
}

void FluidSimulator::add_flows(std::span<const FlowSpec> flows) {
  for (const FlowSpec& f : flows) add_flow(f);
}

void FluidSimulator::at(Seconds when,
                        std::function<void(net::Network&)> action) {
  SBK_EXPECTS_MSG(!ran_, "simulator instances are single-shot");
  SBK_EXPECTS(when >= 0.0);
  SBK_EXPECTS(action != nullptr);
  actions_.push_back(Action{when, std::move(action)});
}

void FluidSimulator::try_route(std::size_t idx, Seconds now,
                               bool is_reroute) {
  FlowState& f = flows_[idx];
  net::Path path;
  {
    obs::ScopedSpan span(recorder_, "fluidsim", "route", now);
    path = router_->route(*net_, f.spec.src, f.spec.dst, f.spec.id, &loads_);
  }
  if (path.empty()) {
    f.stalled = true;
    f.path = {};
    f.dlinks.clear();
    return;
  }
  f.path = std::move(path);
  f.dlinks = f.path.directed_links(*net_);
  for (net::DirectedLink dl : f.dlinks) loads_.add(dl, 1.0);
  f.stalled = false;
  f.active = true;
  rates_dirty_ = true;
  if (use_incremental()) f.alloc_slot = inc_.add_flow(f.dlinks);
  if (is_reroute) {
    ++f.reroutes;
    if (recorder_ != nullptr && recorder_->enabled()) {
      recorder_->instant("fluidsim", "reroute", now,
                         "flow#" + std::to_string(f.spec.id));
    }
  }
}

void FluidSimulator::admit(std::size_t idx, Seconds now) {
  FlowState& f = flows_[idx];
  if (f.spec.src == f.spec.dst ||
      f.remaining_bytes <= cfg_.completion_epsilon_bytes) {
    // Local or empty transfer: completes immediately at fluid granularity.
    f.path = net::Path{{f.spec.src}, {}};
    f.stalled = false;
    finish_flow(idx, now);
    return;
  }
  try_route(idx, now, /*is_reroute=*/false);
  if (f.active) active_.push_back(idx);
}

void FluidSimulator::finish_flow(std::size_t idx, Seconds now) {
  FlowState& f = flows_[idx];
  // Instantly-completing flows (local / zero-byte) never held links or a
  // slot in the active set, so they leave the allocation untouched.
  if (f.active || !f.dlinks.empty()) rates_dirty_ = true;
  f.done = true;
  f.active = false;
  f.stalled = false;
  f.remaining_bytes = 0.0;
  if (f.alloc_slot != IncrementalMaxMin::kNoSlot) {
    inc_.remove_flow(f.alloc_slot);
    f.alloc_slot = IncrementalMaxMin::kNoSlot;
  }
  for (net::DirectedLink dl : f.dlinks) loads_.add(dl, -1.0);
  f.dlinks.clear();
  f.rate = 0.0;
  f.finish = now;
}

void FluidSimulator::recompute_rates(Seconds now) {
  obs::ScopedSpan span(recorder_, "fluidsim", "max_min_solve", now);
  ++allocation_rounds_;
  rates_dirty_ = false;
  if (cfg_.allocation == AllocationModel::kPerLinkEqualShare) {
    // rate = min over the path of capacity / flow-count. The loads_
    // structure already tracks per-directed-link flow counts.
    for (std::size_t idx : active_) {
      FlowState& f = flows_[idx];
      double rate = std::numeric_limits<double>::infinity();
      for (net::DirectedLink dl : f.dlinks) {
        double share = net_->link(dl.link).capacity /
                       std::max(1.0, loads_.get(dl));
        rate = std::min(rate, share);
      }
      f.rate = rate;
    }
    return;
  }
  if (use_incremental()) {
    // Re-solve only the components dirtied since the last event; every
    // other active flow keeps its previous (still-valid) rate.
    inc_.solve();
    for (std::size_t idx : active_) {
      FlowState& f = flows_[idx];
      f.rate = inc_.rate(f.alloc_slot);
    }
    return;
  }
  // Feed the active flows' pinned links straight into the solver as
  // spans — no per-event Demand materialization — and reuse its scratch
  // arrays (and rates_) across events.
  solver_.begin(*net_, active_.size());
  for (std::size_t idx : active_) {
    solver_.add_demand(flows_[idx].dlinks);
  }
  solver_.solve_into(rates_);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    flows_[active_[i]].rate = rates_[i];
  }
}

void FluidSimulator::fill_directed_utilization(std::vector<double>& used) const {
  used.assign(net_->link_count() * 2, 0.0);
  for (std::size_t idx : active_) {
    const FlowState& f = flows_[idx];
    for (net::DirectedLink dl : f.dlinks) {
      used[dl.link.index() * 2 + (dl.forward ? 0 : 1)] += f.rate;
    }
  }
}

double FluidSimulator::mean_active_rate() const {
  if (active_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t idx : active_) sum += flows_[idx].rate;
  return sum / static_cast<double>(active_.size());
}

double FluidSimulator::link_utilization_mean() const {
  std::vector<double> used;
  fill_directed_utilization(used);
  double sum = 0.0;
  std::size_t loaded = 0;
  for (std::size_t slot = 0; slot < used.size(); ++slot) {
    if (used[slot] <= 0.0) continue;
    const double cap = net_->link(net::LinkId(static_cast<std::uint32_t>(slot / 2))).capacity;
    if (cap <= 0.0) continue;
    sum += used[slot] / cap;
    ++loaded;
  }
  return loaded == 0 ? 0.0 : sum / static_cast<double>(loaded);
}

double FluidSimulator::link_utilization_max() const {
  std::vector<double> used;
  fill_directed_utilization(used);
  double best = 0.0;
  for (std::size_t slot = 0; slot < used.size(); ++slot) {
    if (used[slot] <= 0.0) continue;
    const double cap = net_->link(net::LinkId(static_cast<std::uint32_t>(slot / 2))).capacity;
    if (cap > 0.0) best = std::max(best, used[slot] / cap);
  }
  return best;
}

void FluidSimulator::handle_topology_change(Seconds now) {
  // Handle active flows whose pinned path died: re-route them (rerouting
  // architectures) or stall them on their pinned path (blackhole model —
  // they resume when the path comes back, e.g. after a ShareBackup
  // repair).
  for (std::size_t idx : active_) {
    FlowState& f = flows_[idx];
    if (net::is_live_path(*net_, f.path)) continue;
    for (net::DirectedLink dl : f.dlinks) loads_.add(dl, -1.0);
    f.dlinks.clear();
    f.active = false;
    rates_dirty_ = true;
    if (f.alloc_slot != IncrementalMaxMin::kNoSlot) {
      inc_.remove_flow(f.alloc_slot);
      f.alloc_slot = IncrementalMaxMin::kNoSlot;
    }
    if (cfg_.reroute_on_path_failure) {
      try_route(idx, now, /*is_reroute=*/true);
    } else {
      f.stalled = true;  // keeps f.path pinned
    }
  }
  // Drop de-activated (now stalled) flows from the active set.
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [this](std::size_t idx) {
                                 return !flows_[idx].active;
                               }),
                active_.end());
  // Give stalled flows (including freshly stalled ones) a chance: paths
  // may have come back.
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    FlowState& f = flows_[idx];
    if (!f.stalled || f.done) continue;
    if (f.spec.start > now + kTimeEps) continue;  // not yet arrived
    if (!cfg_.reroute_on_path_failure && !f.path.empty()) {
      // Path-pinned recovery: resume on the original path when live.
      if (net::is_live_path(*net_, f.path)) {
        f.dlinks = f.path.directed_links(*net_);
        for (net::DirectedLink dl : f.dlinks) loads_.add(dl, 1.0);
        f.stalled = false;
        f.active = true;
        rates_dirty_ = true;
        if (use_incremental()) f.alloc_slot = inc_.add_flow(f.dlinks);
        active_.push_back(idx);
      }
      continue;
    }
    try_route(idx, now, /*is_reroute=*/true);
    if (f.active) active_.push_back(idx);
  }
}

std::vector<FlowResult> FluidSimulator::run() {
  SBK_EXPECTS_MSG(!ran_, "simulator instances are single-shot");
  ran_ = true;
  // Bind here, not in the constructor: the capacity snapshot must
  // baseline whatever direct mutations the caller made before run();
  // every later mutation arrives through an action, which re-diffs.
  if (use_incremental()) inc_.bind(*net_);

  // Arrival order by start time (stable on ties by id for determinism).
  std::vector<std::size_t> arrivals(flows_.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) arrivals[i] = i;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (flows_[a].spec.start != flows_[b].spec.start)
                       return flows_[a].spec.start < flows_[b].spec.start;
                     return flows_[a].spec.id < flows_[b].spec.id;
                   });
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& a, const Action& b) {
                     return a.when < b.when;
                   });

  std::size_t next_arrival = 0;
  std::size_t next_action = 0;
  Seconds now = 0.0;
  if (telemetry_ != nullptr) telemetry_->start(0.0);
  const double eps_units =
      cfg_.completion_epsilon_bytes / cfg_.unit_bytes_per_second;

  while (true) {
    bool have_work = !active_.empty() || next_arrival < arrivals.size() ||
                     next_action < actions_.size();
    if (!have_work || now >= cfg_.horizon) break;

    // Next event horizon.
    Seconds t_next = cfg_.horizon;
    if (next_arrival < arrivals.size()) {
      t_next = std::min(t_next, flows_[arrivals[next_arrival]].spec.start);
    }
    if (next_action < actions_.size()) {
      t_next = std::min(t_next, actions_[next_action].when);
    }
    ++events_processed_;
    if (!active_.empty()) {
      if (rates_dirty_) {
        recompute_rates(now);
      } else {
        ++recompute_skips_;
      }
      for (std::size_t idx : active_) {
        const FlowState& f = flows_[idx];
        if (f.rate > 0.0) {
          Seconds t_done =
              now + (f.remaining_bytes / cfg_.unit_bytes_per_second) / f.rate;
          t_next = std::min(t_next, t_done);
        }
      }
    }
    SBK_ASSERT_MSG(t_next >= now - kTimeEps, "time must move forward");
    t_next = std::max(t_next, now);

    // Sample cadence boundaries falling inside (now, t_next] while the
    // rates that governed that interval are still in place.
    if (telemetry_ != nullptr) telemetry_->advance_to(t_next);

    // Advance fluid state.
    Seconds dt = t_next - now;
    if (dt > 0.0 && !active_.empty()) {
      for (std::size_t idx : active_) {
        FlowState& f = flows_[idx];
        f.remaining_bytes -= f.rate * cfg_.unit_bytes_per_second * dt;
      }
    }
    now = t_next;

    // 1) completions due at t_next. This runs before the horizon check:
    // a flow whose remaining volume drains exactly at the horizon has
    // completed at that instant and must not be reported unfinished.
    std::vector<std::size_t> still_active;
    still_active.reserve(active_.size());
    bool any_completion = false;
    for (std::size_t idx : active_) {
      FlowState& f = flows_[idx];
      if (f.remaining_bytes <= cfg_.completion_epsilon_bytes ||
          (f.rate > 0.0 &&
           f.remaining_bytes / cfg_.unit_bytes_per_second <=
               eps_units + f.rate * kTimeEps)) {
        finish_flow(idx, now);
        any_completion = true;
      } else {
        still_active.push_back(idx);
      }
    }
    active_.swap(still_active);
    (void)any_completion;
    if (now >= cfg_.horizon) break;

    // 2) arrivals due now
    while (next_arrival < arrivals.size() &&
           flows_[arrivals[next_arrival]].spec.start <= now + kTimeEps) {
      admit(arrivals[next_arrival], now);
      ++next_arrival;
    }

    // 3) topology actions due now
    bool topo_changed = false;
    const std::uint64_t topo_before = net_->topology_version();
    while (next_action < actions_.size() &&
           actions_[next_action].when <= now + kTimeEps) {
      actions_[next_action].fn(*net_);
      ++next_action;
      topo_changed = true;
      if (recorder_ != nullptr) {
        recorder_->instant("fluidsim", "topology_action", now);
      }
    }
    if (topo_changed) {
      // Capacity edits and failure flips change allocations even when no
      // flow's path membership moves; the epoch counter catches exactly
      // the actions that mutated something (no-op actions stay clean).
      if (net_->topology_version() != topo_before) {
        rates_dirty_ = true;
        if (use_incremental()) inc_.note_topology_change();
      }
      handle_topology_change(now);
    }
  }

  // Collect results.
  std::vector<FlowResult> results;
  results.reserve(flows_.size());
  for (FlowState& f : flows_) {
    FlowResult r;
    r.spec = f.spec;
    r.path_hops = f.path.hops();
    r.reroutes = f.reroutes;
    if (f.done) {
      r.outcome = FlowOutcome::kCompleted;
      r.finish = f.finish;
      r.bytes_remaining = 0.0;
    } else if (f.stalled) {
      r.outcome = FlowOutcome::kStalledForever;
      r.bytes_remaining = f.remaining_bytes;
    } else {
      r.outcome = FlowOutcome::kUnfinished;
      r.bytes_remaining = f.remaining_bytes;
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const FlowResult& a, const FlowResult& b) {
              return a.spec.id < b.spec.id;
            });

  if (metrics_ != nullptr) {
    // One flush per run keeps the event loop identical whether or not a
    // registry is attached (the perf-regression gate on the coflow
    // benchmark depends on this).
    std::size_t reroutes = 0, completed = 0, stalled = 0;
    for (const FlowResult& r : results) {
      reroutes += r.reroutes;
      if (r.outcome == FlowOutcome::kCompleted) ++completed;
      if (r.outcome == FlowOutcome::kStalledForever) ++stalled;
    }
    metrics_->counter("fluidsim.events").add(events_processed_);
    metrics_->counter("fluidsim.allocation_rounds").add(allocation_rounds_);
    metrics_->counter("fluidsim.recompute_skips").add(recompute_skips_);
    metrics_->counter("fluidsim.reroutes").add(reroutes);
    metrics_->counter("fluidsim.flows_completed").add(completed);
    metrics_->counter("fluidsim.flows_stalled").add(stalled);
  }
  return results;
}

}  // namespace sbk::sim
