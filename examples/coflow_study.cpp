// Coflow study: replay a synthetic MapReduce-style coflow trace (the
// paper's §2.2 methodology) on three failure-recovery designs and compare
// coflow completion times when an edge switch — a whole rack's uplink —
// dies mid-trace:
//
//   * fat-tree with global-optimal rerouting of affected flows;
//   * F10's AB tree with local 3-hop rerouting;
//   * ShareBackup, which swaps in a backup switch within milliseconds.
//
//   $ ./build/examples/coflow_study [--coflows=120] [--k=8]
#include <cstdio>
#include <map>
#include <string>

#include "control/controller.hpp"
#include "routing/f10.hpp"
#include "routing/global_reroute.hpp"
#include "sharebackup/fabric.hpp"
#include "sim/fluid_sim.hpp"
#include "util/stats.hpp"
#include "workload/coflow_gen.hpp"

using namespace sbk;

namespace {

long long parse_arg(int argc, char** argv, const std::string& key,
                    long long fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return std::stoll(a.substr(prefix.size()));
  }
  return fallback;
}

topo::FatTreeParams rack_tree(int k, topo::Wiring wiring) {
  topo::FatTreeParams p{.k = k, .wiring = wiring};
  p.hosts_per_edge = 1;                    // rack-aggregate hosts
  p.host_link_capacity = 10.0 * (k / 2);   // 10:1 oversubscription
  return p;
}

std::vector<sim::FlowSpec> make_trace(const topo::FatTree& ft,
                                      std::size_t coflows) {
  workload::CoflowWorkloadParams wp;
  wp.racks = ft.host_count();
  wp.coflows = coflows;
  wp.duration = 120.0;
  wp.reducer_bytes_xm = 5e8;
  Rng rng(2017);
  return workload::expand_to_flows(ft, workload::generate_coflows(wp, rng));
}

struct StudyResult {
  Summary cct;
  std::size_t coflows_done = 0;
  std::size_t coflows_stuck = 0;
};

StudyResult summarize(const std::vector<sim::FlowResult>& results) {
  StudyResult out;
  for (const auto& c : sim::aggregate_coflows(results)) {
    if (c.all_completed) {
      ++out.coflows_done;
      out.cct.add(c.cct());
    } else {
      ++out.coflows_stuck;
    }
  }
  return out;
}

void report(const char* label, const StudyResult& r) {
  std::printf("%-24s coflows done %4zu, stuck %2zu | CCT p50 %7.2fs  "
              "p99 %8.2fs  max %8.2fs\n",
              label, r.coflows_done, r.coflows_stuck,
              r.cct.empty() ? 0.0 : r.cct.median(),
              r.cct.empty() ? 0.0 : r.cct.percentile(99),
              r.cct.empty() ? 0.0 : r.cct.max());
}

}  // namespace

int main(int argc, char** argv) {
  const int k = static_cast<int>(parse_arg(argc, argv, "k", 8));
  const auto coflows =
      static_cast<std::size_t>(parse_arg(argc, argv, "coflows", 120));
  const Seconds fail_at = 30.0;
  const Seconds repair_at = fail_at + 300.0;  // 5-minute outage

  sim::SimConfig cfg;
  cfg.unit_bytes_per_second = 1.25e9;  // 1 unit = 10 Gbps
  cfg.allocation = sim::AllocationModel::kPerLinkEqualShare;

  std::printf("Coflow study: k=%d rack fat-tree, %zu coflows; an edge "
              "switch (= one whole rack)\ndies at t=%.0fs for 5 minutes "
              "(rerouting designs) or until failover (~ms,\nShareBackup).\n\n",
              k, coflows, fail_at);

  // --- healthy reference ----------------------------------------------------
  StudyResult healthy;
  {
    topo::FatTree ft(rack_tree(k, topo::Wiring::kPlain));
    auto flows = make_trace(ft, coflows);
    routing::EcmpWithGlobalRerouteRouter router(ft, 9);
    sim::FluidSimulator s(ft.network(), router, cfg);
    s.add_flows(flows);
    healthy = summarize(s.run());
    report("healthy fat-tree", healthy);
  }

  // --- fat-tree with global rerouting ---------------------------------------
  {
    topo::FatTree ft(rack_tree(k, topo::Wiring::kPlain));
    auto flows = make_trace(ft, coflows);
    routing::EcmpWithGlobalRerouteRouter router(ft, 9);
    sim::FluidSimulator s(ft.network(), router, cfg);
    s.add_flows(flows);
    net::NodeId victim = ft.edge(0, 0);
    s.at(fail_at, [victim](net::Network& n) { n.fail_node(victim); });
    s.at(repair_at, [victim](net::Network& n) { n.restore_node(victim); });
    report("fat-tree + reroute", summarize(s.run()));
  }

  // --- F10 local rerouting ---------------------------------------------------
  {
    topo::FatTree ft(rack_tree(k, topo::Wiring::kAb));
    auto flows = make_trace(ft, coflows);
    routing::F10Router router(ft, 9);
    sim::FluidSimulator s(ft.network(), router, cfg);
    s.add_flows(flows);
    net::NodeId victim = ft.edge(0, 0);
    s.at(fail_at, [victim](net::Network& n) { n.fail_node(victim); });
    s.at(repair_at, [victim](net::Network& n) { n.restore_node(victim); });
    report("F10 + local reroute", summarize(s.run()));
  }

  // --- ShareBackup ------------------------------------------------------------
  {
    sharebackup::FabricParams fp;
    fp.fat_tree = rack_tree(k, topo::Wiring::kPlain);
    sharebackup::Fabric fabric(fp);
    control::Controller ctrl(fabric, control::ControllerConfig{});
    auto flows = make_trace(fabric.fat_tree(), coflows);
    routing::EcmpWithGlobalRerouteRouter router(fabric.fat_tree(), 9);
    sim::SimConfig sb_cfg = cfg;
    sb_cfg.reroute_on_path_failure = false;  // never reroutes: it repairs
    sim::FluidSimulator s(fabric.network(), router, sb_cfg);
    s.add_flows(flows);
    topo::SwitchPosition pos{topo::Layer::kEdge, 0, 0};
    net::NodeId victim = fabric.node_at(pos);
    s.at(fail_at, [victim](net::Network& n) { n.fail_node(victim); });
    s.at(fail_at + ctrl.end_to_end_recovery_latency(),
         [&](net::Network&) { (void)ctrl.on_switch_failure(pos); });
    report("ShareBackup", summarize(s.run()));
  }

  std::printf("\nShareBackup's CCT distribution matches the healthy run: the "
              "failure is\nrepaired by hardware replacement before "
              "applications notice.\n");
  return 0;
}
