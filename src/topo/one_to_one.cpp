#include "topo/one_to_one.hpp"

#include "util/assert.hpp"

namespace sbk::topo {

OneToOneBackup::OneToOneBackup(const FatTreeParams& params) : ft_(params) {
  SBK_EXPECTS_MSG(params.wiring == Wiring::kPlain,
                  "1:1 backup is defined on the plain fat-tree");
  net::Network& net = ft_.network();

  // Snapshot the original structure before we add anything.
  const std::size_t original_links = net.link_count();
  std::vector<net::NodeId> primaries = ft_.all_switches();

  // Shadows are appended after the originals, so the final node universe
  // is originals + one shadow per switch; size the role vectors once.
  const std::size_t final_nodes = net.node_count() + primaries.size();
  shadow_.assign(final_nodes, net::NodeId{});
  primary_of_shadow_.assign(final_nodes, net::NodeId{});
  active_.assign(final_nodes, net::NodeId{});
  for (net::NodeId p : primaries) {
    const net::Node& node = net.node(p);
    net::NodeId s = net.add_node(node.kind, node.name + "'", node.pod,
                                 node.index);
    net.fail_node(s);  // powered off until activation
    shadow_[p.index()] = s;
    primary_of_shadow_[s.index()] = p;
    active_[p.index()] = p;
    ++census_.extra_switches;
  }

  // Mesh every original link; dual-home hosts.
  for (std::size_t i = 0; i < original_links; ++i) {
    net::LinkId id(static_cast<net::LinkId::value_type>(i));
    const net::Link link = net.link(id);  // copy: we mutate the network
    const bool a_host = net.node(link.a).kind == net::NodeKind::kHost;
    const bool b_host = net.node(link.b).kind == net::NodeKind::kHost;
    SBK_ASSERT(!(a_host && b_host));
    if (a_host || b_host) {
      net::NodeId host = a_host ? link.a : link.b;
      net::NodeId sw = a_host ? link.b : link.a;
      net.add_link(host, shadow_[sw.index()], link.capacity);
      ++census_.extra_host_links;
      census_.extra_switch_ports += 1;  // the shadow's host port
      continue;
    }
    net::NodeId as = shadow_[link.a.index()];
    net::NodeId bs = shadow_[link.b.index()];
    net.add_link(link.a, bs, link.capacity);
    net.add_link(as, link.b, link.capacity);
    net.add_link(as, bs, link.capacity);
    census_.extra_fabric_links += 3;
    census_.extra_switch_ports += 6;
  }
}

net::NodeId OneToOneBackup::shadow_of(net::NodeId node) const {
  SBK_EXPECTS(node.index() < shadow_.size());
  if (primary_of_shadow_[node.index()].valid()) {
    return primary_of_shadow_[node.index()];  // a shadow's "shadow": primary
  }
  net::NodeId s = shadow_[node.index()];
  SBK_EXPECTS_MSG(s.valid(), "node has no shadow (is it a host?)");
  return s;
}

bool OneToOneBackup::is_shadow(net::NodeId node) const {
  return node.index() < primary_of_shadow_.size() &&
         primary_of_shadow_[node.index()].valid();
}

net::NodeId OneToOneBackup::activate_shadow(net::NodeId primary) {
  SBK_EXPECTS_MSG(!is_shadow(primary), "pass the primary switch's id");
  net::NodeId current = active_of(primary);
  SBK_EXPECTS_MSG(ft_.network().node_failed(current),
                  "the active switch must have failed before activation");
  net::NodeId standby = current == primary ? shadow_of(primary) : primary;
  SBK_EXPECTS_MSG(ft_.network().node_failed(standby),
                  "standby must be powered off (not already active)");
  ft_.network().restore_node(standby);
  active_[primary.index()] = standby;
  return standby;
}

void OneToOneBackup::stand_down(net::NodeId repaired) {
  // The repaired box stays powered off as the new standby; nothing to do
  // beyond asserting the invariant (it must not be the active one).
  net::NodeId primary = is_shadow(repaired)
                            ? primary_of_shadow_[repaired.index()]
                            : repaired;
  SBK_EXPECTS_MSG(active_of(primary) != repaired,
                  "cannot stand down the active switch");
  SBK_EXPECTS(ft_.network().node_failed(repaired));
}

net::NodeId OneToOneBackup::active_of(net::NodeId primary) const {
  SBK_EXPECTS_MSG(primary.index() < active_.size() &&
                      active_[primary.index()].valid(),
                  "unknown primary switch");
  return active_[primary.index()];
}

OneToOneBackup::Census OneToOneBackup::census() const { return census_; }

}  // namespace sbk::topo
