// Structural enumeration of fat-tree host-to-host paths. Faster and more
// precise than generic graph search: candidate sets follow directly from
// the fat-tree structure (choice of aggregation switch, choice of core).
#pragma once

#include <vector>

#include "net/path.hpp"
#include "topo/fat_tree.hpp"

namespace sbk::routing {

/// All structurally shortest host-to-host paths in `ft`, optionally
/// restricted to paths whose every node and link is currently up.
/// For src == dst returns the single trivial path.
[[nodiscard]] std::vector<net::Path> candidate_paths(
    const topo::FatTree& ft, net::NodeId src, net::NodeId dst,
    bool live_only);

/// Shortest-path hop count between two distinct hosts in a healthy
/// fat-tree: 2 (same edge), 4 (same pod), 6 (inter-pod).
[[nodiscard]] std::size_t structural_hops(const topo::FatTree& ft,
                                          net::NodeId src, net::NodeId dst);

}  // namespace sbk::routing
