// Tests for the always-on controller service (ROADMAP item 2): the
// bounded-ingress queueing model (overflow, backpressure hysteresis,
// batch formation, decision latency) and the ControllerService
// determinism contract — drain exactly-once, and bit-identical stats
// across producer-thread counts.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "faultinject/fault_plan.hpp"
#include "faultinject/report_stream.hpp"
#include "service/controller_service.hpp"
#include "service/ingress_queue.hpp"
#include "service/message.hpp"
#include "sharebackup/fabric.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::service {
namespace {

namespace fi = sbk::faultinject;

ServiceMessage report_at(Seconds at, std::uint64_t seq) {
  ServiceMessage m;
  m.kind = MessageKind::kNodeFailureReport;
  m.at = at;
  m.seq = seq;
  return m;
}

ServiceMessage probe_at(Seconds at, std::uint64_t seq, bool healthy = true) {
  ServiceMessage m;
  m.kind = MessageKind::kProbeResult;
  m.at = at;
  m.seq = seq;
  m.healthy = healthy;
  return m;
}

/// A queue whose server is slow enough that same-instant arrivals pile
/// up: batch of 1, one virtual second per batch.
IngressConfig slow_server(std::size_t capacity, std::size_t high,
                          std::size_t low) {
  IngressConfig c;
  c.capacity = capacity;
  c.high_water = high;
  c.low_water = low;
  c.max_batch = 1;
  c.batch_overhead = 0.5;
  c.per_message_cost = 0.5;
  return c;
}

TEST(IngressQueue, OverflowDropsAreExplicitAndDeterministic) {
  std::size_t dispatched = 0;
  std::vector<bool> reject_overflow;
  IngressQueue q(slow_server(/*capacity=*/4, /*high=*/3, /*low=*/1),
                 [&](const std::vector<ServiceMessage>& batch, Seconds,
                     Seconds) { dispatched += batch.size(); });
  q.set_reject_hook([&](const ServiceMessage&, bool overflow) {
    reject_overflow.push_back(overflow);
  });

  // Ten same-instant failure reports against a capacity-4 queue whose
  // server takes 1s per message: the first is dispatched immediately
  // (server idle at t=0), four are queued, five find the queue full.
  for (std::uint64_t s = 1; s <= 10; ++s) q.offer(report_at(0.0, s));
  EXPECT_EQ(q.stats().offered, 10u);
  EXPECT_EQ(q.stats().accepted, 5u);
  EXPECT_EQ(q.stats().dropped_overflow, 5u);
  EXPECT_EQ(q.stats().peak_depth, 4u);
  ASSERT_EQ(reject_overflow.size(), 5u);
  for (bool overflow : reject_overflow) EXPECT_TRUE(overflow);

  q.drain();
  EXPECT_EQ(q.stats().processed, q.stats().accepted);
  EXPECT_EQ(dispatched, 5u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngressQueue, BackpressureHysteresisShedsOnlyHealthyProbes) {
  std::vector<std::pair<bool, Seconds>> edges;
  IngressQueue q(slow_server(/*capacity=*/16, /*high=*/4, /*low=*/2),
                 [](const std::vector<ServiceMessage>&, Seconds, Seconds) {});
  q.set_backpressure_hook(
      [&](bool asserted, Seconds at) { edges.emplace_back(asserted, at); });

  // Build the queue to the high-water mark with failure reports (the
  // first arrival is served immediately; occupancy then climbs 1..4).
  for (std::uint64_t s = 1; s <= 5; ++s) q.offer(report_at(0.0, s));
  ASSERT_TRUE(q.backpressure());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].first);
  EXPECT_EQ(edges[0].second, 0.0);

  // Under backpressure: healthy probes are shed, sick probes and
  // failure reports are still admitted.
  q.offer(probe_at(0.0, 6, /*healthy=*/true));
  EXPECT_EQ(q.stats().shed_probes, 1u);
  q.offer(probe_at(0.0, 7, /*healthy=*/false));
  q.offer(report_at(0.0, 8));
  EXPECT_EQ(q.stats().accepted, 7u);
  EXPECT_EQ(q.stats().shed_probes, 1u);

  // Let the server work the queue down: by t=5 it has finished five
  // messages (one per second), occupancy 6 -> 2 <= low_water, so the
  // release edge fires mid-drain — and a healthy probe is admitted
  // again.
  q.offer(probe_at(5.0, 9, /*healthy=*/true));
  ASSERT_FALSE(q.backpressure());
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges[1].first);
  EXPECT_EQ(q.stats().shed_probes, 1u);
  EXPECT_EQ(q.stats().backpressure_engaged, 1u);
  EXPECT_GT(q.stats().backpressure_time, 0.0);

  q.drain();
  EXPECT_EQ(q.stats().processed, q.stats().accepted);
}

TEST(IngressQueue, BatchesFormFromArrivedPrefixAndRespectCap) {
  std::vector<std::size_t> batch_sizes;
  std::vector<Seconds> batch_starts;
  IngressConfig c;
  c.capacity = 64;
  c.high_water = 63;
  c.low_water = 1;
  c.max_batch = 3;
  c.batch_overhead = 0.0;
  c.per_message_cost = 1.0;
  IngressQueue q(c, [&](const std::vector<ServiceMessage>& batch,
                        Seconds start, Seconds) {
    batch_sizes.push_back(batch.size());
    batch_starts.push_back(start);
  });

  // Seven messages at t=0: the first batch starts at t=0 with only the
  // queued prefix (1 message, offered one at a time); the rest wait for
  // the server and then leave in max_batch groups.
  for (std::uint64_t s = 1; s <= 7; ++s) q.offer(report_at(0.0, s));
  q.drain();
  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[0], 1u);  // server idle: dispatched on arrival
  EXPECT_EQ(batch_sizes[1], 3u);  // formed while server busy, capped
  EXPECT_EQ(batch_sizes[2], 3u);
  EXPECT_EQ(batch_starts[0], 0.0);
  EXPECT_EQ(batch_starts[1], 1.0);  // when the server freed up
  EXPECT_EQ(batch_starts[2], 4.0);
  EXPECT_EQ(q.stats().max_batch_seen, 3u);
  EXPECT_EQ(q.stats().batches, 3u);
}

TEST(IngressQueue, RejectsUnsortedArrivals) {
  IngressQueue q(slow_server(8, 7, 1),
                 [](const std::vector<ServiceMessage>&, Seconds, Seconds) {});
  q.offer(report_at(1.0, 5));
  EXPECT_THROW(q.offer(report_at(0.5, 6)), ContractViolation);  // time back
  EXPECT_THROW(q.offer(report_at(1.0, 5)), ContractViolation);  // seq tie
}

/// A small but representative stream: failures, resends, probes, and
/// operator cadences over a k=6 fabric, time-compressed enough that
/// queueing actually happens.
std::vector<ServiceMessage> small_stream(const sharebackup::Fabric& fabric) {
  fi::FaultPlanConfig pcfg;
  pcfg.switch_failures = 6;
  pcfg.link_failures = 9;
  pcfg.bursts = 2;
  pcfg.burst_size = 3;
  const fi::FaultPlan plan = fi::FaultPlan::generate(fabric, pcfg, /*seed=*/7);
  fi::ReportStreamConfig scfg;
  scfg.repeats = 6;
  scfg.resends = 2;
  // Dense telemetry: backpressure windows around report bursts are
  // short, so probes must be frequent enough that some land inside one
  // (that is what the shed counter test pins).
  scfg.background_probes = 512;
  scfg.time_scale = 0.02;
  return fi::build_report_stream(plan, scfg);
}

ServiceConfig burst_sized_service() {
  ServiceConfig c;
  // Watermarks sized below the stream's natural burst peak (~8 queued)
  // so backpressure genuinely engages in a test-sized run.
  c.ingress.high_water = 6;
  c.ingress.low_water = 2;
  return c;
}

struct PassOutput {
  std::string fingerprint;
  ServiceStats stats;
  IngressStats ingress;
};

/// One full lifecycle against a fresh fabric/controller; threads <= 0
/// runs inline.
PassOutput run_pass(const std::vector<ServiceMessage>& stream, int threads) {
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  control::Controller controller(fabric, control::ControllerConfig{});
  controller.set_audit_limit(1000);
  ControllerService service(fabric, controller, burst_sized_service());
  if (threads <= 0) {
    service.run_inline(stream);
  } else {
    std::vector<int> ids;
    for (int p = 0; p < threads; ++p) ids.push_back(service.add_producer());
    service.start();
    std::vector<std::thread> workers;
    for (int p = 0; p < threads; ++p) {
      workers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < stream.size();
             i += static_cast<std::size_t>(threads)) {
          service.submit(ids[static_cast<std::size_t>(p)], stream[i]);
        }
        service.finish_producer(ids[static_cast<std::size_t>(p)]);
      });
    }
    for (auto& w : workers) w.join();
    service.drain_and_stop();
  }
  return {service.fingerprint(), service.stats(), service.ingress_stats()};
}

TEST(ControllerService, DrainProcessesEveryAcceptedMessageExactlyOnce) {
  Log::set_level(LogLevel::kError);  // watchdog churn is expected here
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);
  ASSERT_GT(stream.size(), 1000u);

  const PassOutput out = run_pass(stream, /*threads=*/0);
  // Exactly-once: everything admitted was dispatched, nothing remains.
  EXPECT_EQ(out.ingress.processed, out.ingress.accepted);
  EXPECT_EQ(out.ingress.offered, stream.size());
  EXPECT_EQ(out.ingress.accepted + out.ingress.dropped_overflow +
                out.ingress.shed_probes,
            out.ingress.offered);
  // The per-kind dispatch counts partition the processed total.
  EXPECT_EQ(out.stats.node_reports + out.stats.link_reports +
                out.stats.probe_results + out.stats.sick_probes +
                out.stats.operator_commands,
            out.ingress.processed);
  EXPECT_EQ(out.stats.submitted, stream.size());
}

TEST(ControllerService, StatsBitIdenticalAcrossThreadCounts) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);

  const PassOutput inline_pass = run_pass(stream, 0);
  for (int threads : {1, 4, 8}) {
    const PassOutput threaded = run_pass(stream, threads);
    EXPECT_EQ(threaded.fingerprint, inline_pass.fingerprint)
        << "divergence at " << threads << " producer threads";
  }
}

TEST(ControllerService, BackpressureEngagesUnderCompressedBursts) {
  Log::set_level(LogLevel::kError);
  sharebackup::Fabric fabric(
      sharebackup::FabricParams{.fat_tree = {.k = 6}, .backups_per_group = 2});
  const auto stream = small_stream(fabric);
  const PassOutput out = run_pass(stream, 0);
  // The burst-sized watermarks must actually exercise: backpressure
  // engaged, healthy probes were shed, and failure reports never were
  // (sheds + drops stayed below the probe population).
  EXPECT_GT(out.ingress.backpressure_engaged, 0u)
      << "peak depth " << out.ingress.peak_depth;
  EXPECT_GT(out.ingress.shed_probes, 0u);
  EXPECT_EQ(out.ingress.dropped_overflow, 0u);
  EXPECT_EQ(out.stats.node_reports + out.stats.link_reports,
            [&] {
              const auto b = fi::breakdown(stream);
              return static_cast<std::uint64_t>(b.failure_reports);
            }());
}

}  // namespace
}  // namespace sbk::service
