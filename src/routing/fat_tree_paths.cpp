#include "routing/fat_tree_paths.hpp"

#include "util/assert.hpp"

namespace sbk::routing {

namespace {

using net::LinkId;
using net::Network;
using net::NodeId;
using net::Path;

/// Appends a hop to a path under construction; returns false if the hop
/// is unusable and live_only is requested.
bool push_hop(const Network& net, Path& path, NodeId next, bool live_only) {
  NodeId cur = path.nodes.back();
  auto link = net.find_link(cur, next);
  if (!link.has_value()) return false;
  if (live_only && (!net.usable(*link))) return false;
  path.nodes.push_back(next);
  path.links.push_back(*link);
  return true;
}

}  // namespace

std::vector<Path> candidate_paths(const topo::FatTree& ft, NodeId src,
                                  NodeId dst, bool live_only) {
  const Network& net = ft.network();
  std::vector<Path> out;
  if (src == dst) {
    if (!live_only || !net.node_failed(src)) out.push_back(Path{{src}, {}});
    return out;
  }
  if (live_only && (net.node_failed(src) || net.node_failed(dst))) return out;

  const NodeId es = ft.edge_of_host(src);
  const NodeId ed = ft.edge_of_host(dst);
  if (live_only && (net.node_failed(es) || net.node_failed(ed))) return out;

  const int half = ft.half_k();

  if (es == ed) {
    Path p{{src}, {}};
    if (push_hop(net, p, es, live_only) && push_hop(net, p, dst, live_only)) {
      out.push_back(std::move(p));
    }
    return out;
  }

  const int src_pod = ft.pod_of(es);
  const int dst_pod = ft.pod_of(ed);

  if (src_pod == dst_pod) {
    // host -> es -> agg (any of k/2) -> ed -> host
    for (int a = 0; a < half; ++a) {
      NodeId agg = ft.agg(src_pod, a);
      if (live_only && net.node_failed(agg)) continue;
      Path p{{src}, {}};
      if (push_hop(net, p, es, live_only) && push_hop(net, p, agg, live_only) &&
          push_hop(net, p, ed, live_only) && push_hop(net, p, dst, live_only)) {
        out.push_back(std::move(p));
      }
    }
    return out;
  }

  // Inter-pod: host -> es -> agg -> core -> agg' -> ed -> host. The up
  // aggregation choice and the core choice are free ((k/2)^2 paths); the
  // downward aggregation switch is forced by the wiring.
  for (int a = 0; a < half; ++a) {
    NodeId agg_up = ft.agg(src_pod, a);
    if (live_only && net.node_failed(agg_up)) continue;
    for (int c : ft.cores_of_agg(src_pod, a)) {
      NodeId core = ft.core(c);
      if (live_only && net.node_failed(core)) continue;
      NodeId agg_down = ft.agg_for_core(c, dst_pod);
      if (live_only && net.node_failed(agg_down)) continue;
      Path p{{src}, {}};
      if (push_hop(net, p, es, live_only) &&
          push_hop(net, p, agg_up, live_only) &&
          push_hop(net, p, core, live_only) &&
          push_hop(net, p, agg_down, live_only) &&
          push_hop(net, p, ed, live_only) &&
          push_hop(net, p, dst, live_only)) {
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::size_t structural_hops(const topo::FatTree& ft, NodeId src, NodeId dst) {
  SBK_EXPECTS(src != dst);
  const NodeId es = ft.edge_of_host(src);
  const NodeId ed = ft.edge_of_host(dst);
  if (es == ed) return 2;
  if (ft.pod_of(es) == ft.pod_of(ed)) return 4;
  return 6;
}

}  // namespace sbk::routing
