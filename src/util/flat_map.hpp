// Open-addressed hash map from 64-bit keys to values, stored in two flat
// parallel arrays (keys, values) with linear probing — the cache-line
// friendly replacement for std::unordered_map on routing hot paths.
//
// Why not unordered_map: libstdc++'s node-based buckets cost one heap
// allocation and at least one dependent pointer chase per entry. The
// router caches (EpochPathCache, NeighborLinkCache) are hit once per
// route() call during failure storms, so at k=48/64 sweep scale those
// chases dominate the lookup. A flat table probes consecutive slots of
// one array instead, and clearing for epoch invalidation is a memset-
// class pass that keeps the allocation.
//
// Contract: keys must not equal kEmptyKey (~0). Every key produced by
// util::pack_pair_key satisfies this — it would require both packed ids
// to be 0xFFFFFFFF, which fits_u32 admits but no dense NodeId space
// reaches. Insertion order is irrelevant to callers (lookup-only maps);
// there is deliberately no iteration API.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace sbk::util {

/// Minimal flat hash map: find / find_or_emplace / clear. Grows by
/// doubling at 70% load; capacity is a power of two so the probe mask is
/// a single AND. Values are move-relocated on growth.
///
/// Reference validity: raw pointers/references from find / find_or_emplace
/// are invalidated by the next insertion (rehash) or clear(). That
/// "consume immediately" contract used to be enforced by code review
/// only; the generation counter below makes it checkable. find_ref /
/// find_or_emplace_ref return a Ref that captures the map's generation
/// and asserts on dereference after any rehash or clear — use them at
/// call sites that hold a result across other map operations. The
/// counter is maintained unconditionally (one increment per rehash; the
/// check is one u64 compare per Ref deref) — gating the *layout* on
/// NDEBUG would be an ODR trap for mixed-build link lines, and this
/// repo's contracts are never compiled out anyway.
template <typename V>
class FlatKeyMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  /// A checked reference into the map: remembers the generation at
  /// acquisition and asserts it unchanged on every dereference, so a
  /// stale use-after-rehash fails loudly instead of reading a
  /// move-relocated slot.
  class Ref {
   public:
    Ref() noexcept = default;

    [[nodiscard]] bool valid() const noexcept { return map_ != nullptr; }
    // Accessors are deliberately not noexcept: the staleness check
    // throws ContractViolation, which tests catch with EXPECT_THROW.
    [[nodiscard]] V& operator*() const {
      check();
      return *value_;
    }
    [[nodiscard]] V* operator->() const {
      check();
      return value_;
    }
    /// Escape hatch for call sites that consume immediately.
    [[nodiscard]] V* get() const {
      check();
      return value_;
    }

   private:
    friend class FlatKeyMap;
    Ref(V* value, const FlatKeyMap* map) noexcept
        : value_(value), map_(map), generation_(map->generation_) {}
    void check() const {
      SBK_ASSERT_MSG(map_ != nullptr, "FlatKeyMap::Ref: empty ref");
      SBK_ASSERT_MSG(generation_ == map_->generation_,
                     "FlatKeyMap::Ref: stale reference used after a "
                     "rehash/clear of the underlying map");
    }
    V* value_ = nullptr;
    const FlatKeyMap* map_ = nullptr;
    std::uint64_t generation_ = 0;
  };

  /// Bumped by every operation that relocates or invalidates slots
  /// (grow, clear). Refs check against it on dereference.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Pointer to the value for `key`, or nullptr if absent. Never grows.
  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    if (size_ == 0) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = probe_start(key, mask);; i = (i + 1) & mask) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kEmptyKey) return nullptr;
    }
  }

  /// The value for `key`, default-inserting via `make()` (called only on
  /// miss). References stay valid until the next insertion.
  template <typename Make>
  V& find_or_emplace(std::uint64_t key, Make&& make) {
    SBK_EXPECTS_MSG(key != kEmptyKey, "FlatKeyMap: reserved key");
    if ((size_ + 1) * 10 >= keys_.size() * 7) grow();
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = probe_start(key, mask);; i = (i + 1) & mask) {
      if (keys_[i] == key) return values_[i];
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        values_[i] = make();
        ++size_;
        return values_[i];
      }
    }
  }

  /// Checked-reference variants (see Ref). An invalid Ref (valid() ==
  /// false) means the key is absent.
  [[nodiscard]] Ref find_ref(std::uint64_t key) noexcept {
    V* v = find(key);
    return v == nullptr ? Ref{} : Ref{v, this};
  }
  template <typename Make>
  [[nodiscard]] Ref find_or_emplace_ref(std::uint64_t key, Make&& make) {
    return Ref{&find_or_emplace(key, std::forward<Make>(make)), this};
  }

  /// Empties the map but keeps the table allocation (epoch invalidation
  /// happens often; reallocating each time would defeat the cache).
  void clear() noexcept {
    if (size_ == 0) return;
    keys_.assign(keys_.size(), kEmptyKey);
    // Values are left constructed-but-stale; slots are dead until their
    // key is re-claimed, at which point find_or_emplace overwrites.
    size_ = 0;
    ++generation_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  /// splitmix64 finalizer: pack_pair_key output is strongly structured
  /// (host indices in both halves), so probe starts must be mixed or
  /// consecutive pairs would pile into runs.
  [[nodiscard]] static std::size_t probe_start(std::uint64_t key,
                                               std::size_t mask) noexcept {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31)) & mask;
  }

  void grow() {
    ++generation_;  // every outstanding Ref is now stale
    const std::size_t new_cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_cap, kEmptyKey);
    values_.clear();
    values_.resize(new_cap);
    const std::size_t mask = new_cap - 1;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] == kEmptyKey) continue;
      std::size_t i = probe_start(old_keys[s], mask);
      while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
      keys_[i] = old_keys[s];
      values_[i] = std::move(old_values[s]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace sbk::util
