// Max-min fair bandwidth allocation by progressive filling (the classic
// water-filling algorithm). Given a set of flows, each pinned to a path
// of directed link uses, computes the unique max-min fair rate vector
// subject to directed link capacities.
#pragma once

#include <vector>

#include "net/network.hpp"

namespace sbk::sim {

/// One demand: the directed links a flow occupies. An empty set of links
/// (src == dst at the fluid level) receives an infinite rate and should
/// be filtered by the caller.
struct Demand {
  std::vector<net::DirectedLink> links;
};

/// Computes max-min fair rates (capacity units per second) for `demands`
/// over `net`'s current link capacities. Failed links still have their
/// nominal capacity here: callers must not pin flows to dead links.
///
/// Postconditions (verified by tests):
///  * no directed link's total allocated rate exceeds its capacity
///    (within floating tolerance);
///  * the vector is max-min: each flow is bottlenecked at some saturated
///    link where its rate is maximal among the link's flows.
[[nodiscard]] std::vector<double> max_min_rates(
    const net::Network& net, const std::vector<Demand>& demands);

}  // namespace sbk::sim
