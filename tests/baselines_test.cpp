// Tests for the five-strategy protection comparison matrix: schema,
// router invariants, footprint cross-checks, and thread-count
// bit-identity (the acceptance gate the CSV artifact leans on).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "baselines/comparison_matrix.hpp"
#include "cost/cost_model.hpp"

namespace sbk::baselines {
namespace {

MatrixConfig tiny_config(std::size_t threads) {
  MatrixConfig cfg;
  cfg.k = 4;
  cfg.backups_per_group = 1;
  cfg.scenarios = 3;
  cfg.flows_per_scenario = 24;
  cfg.master_seed = 7;
  cfg.threads = threads;
  cfg.cct_coflows = 8;
  cfg.cct_duration = 20.0;
  return cfg;
}

TEST(ComparisonMatrixTest, RowsCoverEveryStrategyWithInvariantsClean) {
  const ComparisonMatrix m = run_comparison_matrix(tiny_config(1));
  EXPECT_EQ(m.violations, 0u);
  ASSERT_EQ(m.rows.size(), kAllStrategies.size());
  for (std::size_t i = 0; i < kAllStrategies.size(); ++i) {
    EXPECT_EQ(m.rows[i].strategy, to_string(kAllStrategies[i]));
    EXPECT_GT(m.rows[i].recovery_latency, 0.0);
    EXPECT_GE(m.rows[i].packet_loss, 0.0);
    EXPECT_LE(m.rows[i].packet_loss, 1.0);
    EXPECT_GE(m.rows[i].cct_slowdown, 1.0);
    EXPECT_EQ(m.rows[i].flows_probed, 3u * 24u);
  }

  // Table footprints in the matrix are exactly the src/cost closed
  // forms (k=4, n=1).
  EXPECT_EQ(m.rows[0].table_entries,
            cost::sharebackup_table_footprint(4, 1).protection_entries);
  EXPECT_EQ(m.rows[1].table_entries, 0);  // F10 is reactive
  EXPECT_EQ(m.rows[2].table_entries, 0);
  EXPECT_EQ(m.rows[3].table_entries,
            cost::spider_table_footprint(4).protection_entries);
  EXPECT_EQ(m.rows[4].table_entries,
            cost::backup_rules_table_footprint(4).protection_entries);

  // ShareBackup's hardware replacement leaves no residual blackholes;
  // reroute strategies may lose flows but never more than SPIDER, whose
  // 4-hop detour budget cannot cover downstream failures.
  EXPECT_DOUBLE_EQ(m.rows[0].packet_loss, 0.0);
  EXPECT_LE(m.rows[2].packet_loss, m.rows[3].packet_loss);
}

TEST(ComparisonMatrixTest, BitIdenticalAcrossThreadCounts) {
  const ComparisonMatrix serial = run_comparison_matrix(tiny_config(1));
  EXPECT_EQ(serial, run_comparison_matrix(tiny_config(4)));
  EXPECT_EQ(serial, run_comparison_matrix(tiny_config(8)));
}

TEST(ComparisonMatrixTest, CsvSchemaIsStable) {
  const ComparisonMatrix m = run_comparison_matrix(tiny_config(0));
  std::ostringstream out;
  write_matrix_csv(m, out);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "strategy,recovery_latency_s,packet_loss,cct_slowdown,"
            "table_entries,table_per_switch,flows_probed,flows_lost,"
            "backup_fallback_frac");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++rows;
    // Every data row has exactly 8 commas (9 fields, none quoted).
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 8)
        << line;
  }
  EXPECT_EQ(rows, kAllStrategies.size());

  const std::string summary = matrix_summary(m);
  for (Strategy s : kAllStrategies) {
    EXPECT_NE(summary.find(to_string(s)), std::string::npos);
  }
}

}  // namespace
}  // namespace sbk::baselines
