#include "util/rss.hpp"

#if defined(_WIN32)
// getrusage is POSIX-only; peak_rss_mb() reports 0.0 on Windows.
#else
#include <sys/resource.h>
#endif

namespace sbk::util {

double peak_rss_mb() {
#if defined(_WIN32)
  return 0.0;
#else
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  // Darwin reports ru_maxrss in bytes.
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux and the BSDs following it report kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
#endif
}

}  // namespace sbk::util
