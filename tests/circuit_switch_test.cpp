// Unit tests for the circuit switch crossbar model.
#include <gtest/gtest.h>

#include "sharebackup/circuit_switch.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sbk::sharebackup {
namespace {

TEST(CircuitSwitch, PortLayoutAndCounts) {
  CircuitSwitch sw("cs", /*regular=*/3, /*backups=*/1);
  // 2*(3+1) device-facing ports + 2 side ports.
  EXPECT_EQ(sw.port_count(), 10);
  EXPECT_EQ(sw.port_class(sw.port(PortClass::kSouthRegular, 2)),
            PortClass::kSouthRegular);
  EXPECT_EQ(sw.port_slot(sw.port(PortClass::kNorthBackup, 0)), 0);
  EXPECT_NE(sw.port(PortClass::kSideLeft), sw.port(PortClass::kSideRight));
  EXPECT_THROW((void)sw.port(PortClass::kSouthRegular, 3),
               sbk::ContractViolation);
  EXPECT_THROW((void)sw.port(PortClass::kSouthBackup, 1),
               sbk::ContractViolation);
}

TEST(CircuitSwitch, MatchingIsInvolutionWithoutFixedPoints) {
  CircuitSwitch sw("cs", 3, 1);
  int s0 = sw.port(PortClass::kSouthRegular, 0);
  int n0 = sw.port(PortClass::kNorthRegular, 0);
  EXPECT_FALSE(sw.is_matched(s0));
  sw.connect(s0, n0);
  EXPECT_EQ(sw.peer(s0), n0);
  EXPECT_EQ(sw.peer(n0), s0);
  EXPECT_TRUE(sw.matching_is_consistent());
  EXPECT_EQ(sw.active_circuits(), 1u);

  EXPECT_THROW(sw.connect(s0, s0), sbk::ContractViolation);  // self-loop
  int n1 = sw.port(PortClass::kNorthRegular, 1);
  EXPECT_THROW(sw.connect(s0, n1), sbk::ContractViolation);  // busy port

  sw.disconnect(s0);
  EXPECT_FALSE(sw.is_matched(n0));
  EXPECT_THROW(sw.disconnect(s0), sbk::ContractViolation);  // already free
}

TEST(CircuitSwitch, AnyToAnyIncludingSameSide) {
  // Crosspoint switches (XFabric) connect any port pair; diagnosis uses
  // same-side circuits.
  CircuitSwitch sw("cs", 3, 1);
  int s0 = sw.port(PortClass::kSouthRegular, 0);
  int s1 = sw.port(PortClass::kSouthRegular, 1);
  sw.connect(s0, s1);
  EXPECT_EQ(sw.peer(s0), s1);
  int side = sw.port(PortClass::kSideLeft);
  int n2 = sw.port(PortClass::kNorthRegular, 2);
  sw.connect(side, n2);
  EXPECT_TRUE(sw.matching_is_consistent());
}

TEST(CircuitSwitch, ReconfigurationCounting) {
  CircuitSwitch sw("cs", 2, 0);
  int s0 = sw.port(PortClass::kSouthRegular, 0);
  int n0 = sw.port(PortClass::kNorthRegular, 0);
  int n1 = sw.port(PortClass::kNorthRegular, 1);
  sw.connect(s0, n0);
  sw.disconnect(s0);
  sw.connect(s0, n1);
  EXPECT_EQ(sw.reconfigurations(), 3u);
}

TEST(CircuitSwitch, AttachmentsAreOneShot) {
  CircuitSwitch sw("cs", 2, 1);
  int s0 = sw.port(PortClass::kSouthRegular, 0);
  sw.attach_device(s0, 42, 7);
  EXPECT_EQ(sw.attachment(s0).device, 42u);
  EXPECT_EQ(sw.attachment(s0).interface_index, 7);
  EXPECT_THROW(sw.attach_device(s0, 43, 0), sbk::ContractViolation);
  EXPECT_EQ(sw.port_of_device(42), s0);
  EXPECT_FALSE(sw.port_of_device(999).has_value());

  int side = sw.port(PortClass::kSideLeft);
  EXPECT_THROW(sw.attach_device(side, 1, 0), sbk::ContractViolation);
  sw.attach_side(side, 3, 9);
  EXPECT_EQ(sw.attachment(side).peer_cs, 3);
  int s1 = sw.port(PortClass::kSouthRegular, 1);
  EXPECT_THROW(sw.attach_side(s1, 1, 1), sbk::ContractViolation);
}

TEST(CircuitTechnology, LatencyConstantsMatchPaper) {
  EXPECT_DOUBLE_EQ(
      reconfiguration_latency(CircuitTechnology::kElectricalCrosspoint),
      sbk::nanoseconds(70));
  EXPECT_DOUBLE_EQ(reconfiguration_latency(CircuitTechnology::kOpticalMems2D),
                   sbk::microseconds(40));
}

}  // namespace
}  // namespace sbk::sharebackup
