// Simulation time. The simulator uses double seconds; helper literals keep
// unit conversions explicit at call sites (Core Guidelines I.23: avoid
// ambiguous raw numbers in interfaces).
#pragma once

namespace sbk {

/// Simulation timestamp / duration in seconds.
using Seconds = double;

constexpr Seconds kNanosecond = 1e-9;
constexpr Seconds kMicrosecond = 1e-6;
constexpr Seconds kMillisecond = 1e-3;
constexpr Seconds kSecond = 1.0;
constexpr Seconds kMinute = 60.0;

[[nodiscard]] constexpr Seconds nanoseconds(double n) { return n * kNanosecond; }
[[nodiscard]] constexpr Seconds microseconds(double n) { return n * kMicrosecond; }
[[nodiscard]] constexpr Seconds milliseconds(double n) { return n * kMillisecond; }
[[nodiscard]] constexpr Seconds minutes(double n) { return n * kMinute; }

}  // namespace sbk
