#include "control/controller.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sbk::control {

using sharebackup::DeviceState;
using sharebackup::DeviceUid;
using sharebackup::Fabric;
using sharebackup::InterfaceRef;
using sharebackup::SwitchPosition;

Controller::Controller(Fabric& fabric, ControllerConfig config)
    : fabric_(&fabric), config_(config), engine_(fabric) {
  SBK_EXPECTS(config_.probe_interval > 0.0);
  SBK_EXPECTS(config_.miss_threshold >= 1);
  SBK_EXPECTS(config_.watchdog_threshold >= 1);
}

void Controller::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_failovers_ = m_diagnoses_ = m_watchdog_trips_ = nullptr;
    m_pool_exhausted_ = nullptr;
    m_control_latency_ = nullptr;
    return;
  }
  m_failovers_ = &metrics->counter("controller.failovers");
  m_diagnoses_ = &metrics->counter("controller.diagnoses");
  m_watchdog_trips_ = &metrics->counter("controller.watchdog_trips");
  m_pool_exhausted_ = &metrics->counter("controller.pool_exhausted");
  m_control_latency_ = &metrics->latency("controller.control_latency");
}

std::size_t Controller::trace_recovery(const std::string& element) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return obs::RecoveryTracer::kNoIncident;
  }
  std::size_t inc = tracer_->ensure_incident(element, now_);
  Seconds report_done = now_ + config_.report_latency;
  tracer_->add_span(inc, "notification", now_, report_done);
  Seconds decided = report_done + config_.processing_latency;
  tracer_->add_span(inc, "decision", report_done, decided);
  Seconds commanded = decided + config_.command_latency;
  tracer_->add_span(inc, "command", decided, commanded);
  Seconds reconfigured =
      commanded + sharebackup::reconfiguration_latency(fabric_->technology());
  tracer_->add_span(inc, "reconfiguration", commanded, reconfigured);
  if (tables_ != nullptr) {
    // Backup tables are preloaded (§4.3); activation is a profile change
    // that completes with the circuit reset — a point event on the
    // timeline.
    tracer_->add_span(inc, "table_activation", reconfigured, reconfigured);
  }
  tracer_->close_incident(inc, reconfigured);
  return inc;
}

Seconds Controller::control_path_latency() const {
  return config_.report_latency + config_.processing_latency +
         config_.command_latency +
         sharebackup::reconfiguration_latency(fabric_->technology());
}

Seconds Controller::end_to_end_recovery_latency() const {
  // Worst-case detection: the element dies right after a probe, and
  // miss_threshold consecutive probes must be missed.
  Seconds detection =
      static_cast<double>(config_.miss_threshold) * config_.probe_interval;
  return detection + control_path_latency();
}

void Controller::mirror_failover(
    const sharebackup::Fabric::FailoverReport& report) {
  if (tables_ != nullptr) tables_->on_fail_over(report);
}

void Controller::mirror_return(DeviceUid dev) {
  if (tables_ != nullptr) tables_->on_return_to_pool(dev);
}

void Controller::audit(std::string event, std::string detail) {
  audit_.push_back(AuditEntry{now_, std::move(event), std::move(detail)});
}

void Controller::park_node(SwitchPosition pos) {
  if (std::find(pending_nodes_.begin(), pending_nodes_.end(), pos) ==
      pending_nodes_.end()) {
    pending_nodes_.push_back(pos);
  }
}

void Controller::park_link(net::LinkId link) {
  if (std::find(pending_links_.begin(), pending_links_.end(), link) ==
      pending_links_.end()) {
    pending_links_.push_back(link);
  }
}

void Controller::retry_pending() {
  if (retrying_) return;  // a retried recovery replenished a pool itself
  retrying_ = true;
  std::vector<SwitchPosition> nodes = std::move(pending_nodes_);
  pending_nodes_.clear();
  std::vector<net::LinkId> links = std::move(pending_links_);
  pending_links_.clear();

  for (SwitchPosition pos : nodes) {
    if (!fabric_->network().node_failed(fabric_->node_at(pos))) continue;
    RecoveryOutcome out = on_switch_failure(pos);
    if (retry_listener_) {
      retry_listener_(out, fabric_->node_at(pos), std::nullopt);
    }
  }
  for (net::LinkId link : links) {
    if (!fabric_->network().link_failed(link)) continue;
    RecoveryOutcome out = on_link_failure(link);
    if (retry_listener_) retry_listener_(out, std::nullopt, link);
  }
  retrying_ = false;
}

RecoveryOutcome Controller::on_switch_failure(SwitchPosition pos) {
  RecoveryOutcome outcome;
  ++stats_.node_failures_handled;
  if (watchdog_tripped_) {
    outcome.detail = "watchdog tripped: awaiting human intervention";
    return outcome;
  }
  // Stale-report guard: keep-alives race recovery, so a report may
  // arrive for a position that is already served by healthy hardware.
  // A second failover would burn a backup for nothing.
  if (!fabric_->network().node_failed(fabric_->node_at(pos))) {
    outcome.recovered = true;
    outcome.detail = "stale report: position already healthy";
    return outcome;
  }
  std::optional<Fabric::FailoverReport> report = fabric_->fail_over(pos);
  if (!report.has_value()) {
    ++stats_.recoveries_failed_pool_exhausted;
    if (m_pool_exhausted_) m_pool_exhausted_->add();
    park_node(pos);
    outcome.detail = "backup pool exhausted for failure group";
    return outcome;
  }
  ++stats_.failovers;
  if (m_failovers_) m_failovers_->add();
  mirror_failover(*report);
  audit("failover", fabric_->device(report->failed_device).name + " -> " +
                        fabric_->device(report->replacement).name);
  outcome.recovered = true;
  outcome.failovers.push_back(*report);
  outcome.control_latency = control_path_latency();
  outcome.detail = "switch replaced by backup";
  if (m_control_latency_) m_control_latency_->record(outcome.control_latency);
  trace_recovery(obs::element_for_node(
      fabric_->network().node(fabric_->node_at(pos)).name));
  return outcome;
}

void Controller::note_link_report_for_watchdog(std::size_t cs) {
  recent_link_reports_.emplace_back(now_, cs);
  // Evict reports that fell out of the window, then count this switch's.
  Seconds cutoff = now_ - config_.watchdog_window;
  std::erase_if(recent_link_reports_,
                [cutoff](const auto& r) { return r.first < cutoff; });
  std::size_t count = static_cast<std::size_t>(
      std::count_if(recent_link_reports_.begin(), recent_link_reports_.end(),
                    [cs](const auto& r) { return r.second == cs; }));
  if (count >= config_.watchdog_threshold && !watchdog_tripped_) {
    watchdog_tripped_ = true;
    ++stats_.watchdog_trips;
    if (m_watchdog_trips_) m_watchdog_trips_->add();
    SBK_LOG_WARN("controller",
                 "suspected circuit switch failure at "
                     << fabric_->circuit_switch(cs).name() << " (" << count
                     << " link reports in window); requesting human "
                        "intervention");
  }
}

RecoveryOutcome Controller::on_link_failure(net::LinkId link) {
  RecoveryOutcome outcome;
  const net::Network& net = fabric_->network();
  const net::Link& l = net.link(link);
  std::size_t cs = fabric_->cs_of_link(link);
  note_link_report_for_watchdog(cs);
  if (watchdog_tripped_) {
    outcome.detail = "watchdog tripped: awaiting human intervention";
    return outcome;
  }

  std::optional<SwitchPosition> pos_a = fabric_->position_of_node(l.a);
  std::optional<SwitchPosition> pos_b = fabric_->position_of_node(l.b);
  std::string element =
      obs::element_for_link(net.node(l.a).name, net.node(l.b).name);

  // Re-probe before acting: an earlier recovery may already have fixed
  // this link — e.g. one sick switch rooting several simultaneous link
  // failures is cured by a single replacement (§5.1's "up to kn link
  // failures rooted at n switches" capacity argument).
  auto endpoint_device = [&](net::NodeId node,
                             std::optional<SwitchPosition> pos) {
    return pos.has_value() ? fabric_->device_at(*pos)
                           : fabric_->device_of_host(node);
  };
  bool currently_healthy =
      fabric_->interface_healthy(
          InterfaceRef{endpoint_device(l.a, pos_a), cs}) &&
      fabric_->interface_healthy(
          InterfaceRef{endpoint_device(l.b, pos_b), cs});
  if (!net.link_failed(link)) {
    outcome.recovered = true;
    outcome.detail = "stale report: link already healthy";
    return outcome;
  }
  if (currently_healthy) {
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.control_latency = control_path_latency();
    outcome.detail = "re-probe found link healthy (already repaired)";
    if (m_control_latency_) {
      m_control_latency_->record(outcome.control_latency);
    }
    trace_recovery(element);
    return outcome;
  }

  if (pos_a.has_value() && pos_b.has_value()) {
    // Switch-switch link: replace both sides for fast recovery, then let
    // offline diagnosis sort out blame (§4.1).
    ++stats_.link_failures_handled;
    DeviceUid dev_a = fabric_->device_at(*pos_a);
    DeviceUid dev_b = fabric_->device_at(*pos_b);
    std::optional<Fabric::FailoverReport> ra = fabric_->fail_over(*pos_a);
    std::optional<Fabric::FailoverReport> rb = fabric_->fail_over(*pos_b);
    if (!ra.has_value() || !rb.has_value()) {
      // Roll back nothing: a half-recovered link keeps its replacement
      // (harmless — the new switch serves the position fine); but the
      // link cannot be restored without both ends replaced.
      ++stats_.recoveries_failed_pool_exhausted;
      if (ra.has_value()) {
        mirror_failover(*ra);
        outcome.failovers.push_back(*ra);
      }
      if (rb.has_value()) {
        mirror_failover(*rb);
        outcome.failovers.push_back(*rb);
      }
      stats_.failovers += outcome.failovers.size();
      if (m_failovers_) m_failovers_->add(outcome.failovers.size());
      if (m_pool_exhausted_) m_pool_exhausted_->add();
      park_link(link);
      outcome.detail = "backup pool exhausted; link not recovered";
      return outcome;
    }
    stats_.failovers += 2;
    if (m_failovers_) m_failovers_->add(2);
    mirror_failover(*ra);
    mirror_failover(*rb);
    audit("link-failover",
          fabric_->device(ra->failed_device).name + " & " +
              fabric_->device(rb->failed_device).name + " replaced");
    outcome.failovers = {*ra, *rb};
    fabric_->network().fail_link(link);  // idempotent if already failed
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.control_latency = control_path_latency();
    outcome.detail = "both endpoints replaced; diagnosis queued";
    if (m_control_latency_) {
      m_control_latency_->record(outcome.control_latency);
    }
    diagnosis_queue_.push_back(
        PendingDiagnosis{dev_a, dev_b, cs, trace_recovery(element)});
    return outcome;
  }

  // Host-edge link: replace the switch side only (§4.2).
  ++stats_.host_link_failures_handled;
  std::optional<SwitchPosition> sw_pos =
      pos_a.has_value() ? pos_a : pos_b;
  SBK_EXPECTS_MSG(sw_pos.has_value(),
                  "a failed link must touch at least one switch");
  net::NodeId host = pos_a.has_value() ? l.b : l.a;

  DeviceUid old_dev = fabric_->device_at(*sw_pos);
  std::optional<Fabric::FailoverReport> report = fabric_->fail_over(*sw_pos);
  if (!report.has_value()) {
    ++stats_.recoveries_failed_pool_exhausted;
    if (m_pool_exhausted_) m_pool_exhausted_->add();
    park_link(link);
    outcome.detail = "backup pool exhausted; host link not recovered";
    return outcome;
  }
  ++stats_.failovers;
  if (m_failovers_) m_failovers_->add();
  mirror_failover(*report);
  outcome.failovers.push_back(*report);

  // Re-test the link with the fresh switch: if the host side is at
  // fault, the failure persists.
  DeviceUid host_dev = fabric_->device_of_host(host);
  bool host_side_healthy =
      fabric_->interface_healthy(InterfaceRef{host_dev, cs});

  if (host_side_healthy) {
    fabric_->network().restore_link(link);
    outcome.recovered = true;
    outcome.detail = "edge switch replaced; host link recovered";
    if (m_control_latency_) m_control_latency_->record(control_path_latency());
    // The replaced switch is presumed faulty; it can still be diagnosed
    // offline against backups (not against the host).
    diagnosis_queue_.push_back(PendingDiagnosis{
        old_dev, sharebackup::kNoDeviceUid, cs, trace_recovery(element)});
  } else {
    // Failure persists: the switch was not the problem. Redress it and
    // flag the host for troubleshooting (§4.2).
    fabric_->return_to_pool(old_dev);
    mirror_return(old_dev);
    ++stats_.switches_exonerated;
    audit("host-flagged",
          fabric_->network().node(host).name + " (switch redressed)");
    retry_pending();
    flagged_hosts_.push_back(host);
    ++stats_.hosts_flagged;
    outcome.recovered = false;
    outcome.detail = "failure persists after replacement: host flagged";
  }
  outcome.control_latency = control_path_latency();
  return outcome;
}

std::size_t Controller::run_pending_diagnosis() {
  std::size_t processed = 0;
  while (!diagnosis_queue_.empty()) {
    PendingDiagnosis job = diagnosis_queue_.front();
    diagnosis_queue_.pop_front();
    ++processed;
    ++stats_.diagnoses_run;
    if (m_diagnoses_) m_diagnoses_->add();
    if (tracer_ != nullptr && job.incident != obs::RecoveryTracer::kNoIncident) {
      // The engine diagnoses instantaneously; the span marks when the
      // background pass ran, not how long the probing took.
      tracer_->add_span(job.incident, "diagnosis", now_, now_);
    }

    auto handle_verdict = [this, &job](const SuspectVerdict& v) {
      if (v.device == sharebackup::kNoDeviceUid) return;
      if (v.healthy) {
        fabric_->return_to_pool(v.device);
        mirror_return(v.device);
        ++stats_.switches_exonerated;
        audit("diagnosis", fabric_->device(v.device).name + " exonerated");
        if (tracer_ != nullptr &&
            job.incident != obs::RecoveryTracer::kNoIncident) {
          tracer_->add_span(job.incident, "restore", now_, now_);
        }
      } else {
        ++stats_.switches_confirmed_faulty;
        audit("diagnosis",
              fabric_->device(v.device).name + " confirmed faulty");
        if (job.incident != obs::RecoveryTracer::kNoIncident) {
          incident_of_faulty_[v.device] = job.incident;
        }
      }
    };

    if (job.b == sharebackup::kNoDeviceUid) {
      SuspectVerdict v = engine_.diagnose_interface(job.a, job.cs);
      handle_verdict(v);
    } else {
      DiagnosisResult r = engine_.diagnose_link(job.a, job.b, job.cs);
      handle_verdict(r.first);
      handle_verdict(r.second);
    }
  }
  if (processed > 0) retry_pending();
  return processed;
}

void Controller::on_device_repaired(DeviceUid dev) {
  SBK_EXPECTS(fabric_->device_state(dev) == DeviceState::kOut);
  fabric_->heal_device(dev);
  fabric_->return_to_pool(dev);
  mirror_return(dev);
  audit("repair", fabric_->device(dev).name + " healed, back in pool");
  if (auto it = incident_of_faulty_.find(dev);
      it != incident_of_faulty_.end()) {
    if (tracer_ != nullptr) {
      tracer_->add_span(it->second, "restore", now_, now_);
    }
    incident_of_faulty_.erase(it);
  }
  retry_pending();
}

}  // namespace sbk::control
