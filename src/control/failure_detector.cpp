#include "control/failure_detector.hpp"

#include "util/assert.hpp"

namespace sbk::control {

FailureDetector::FailureDetector(sim::EventQueue& queue,
                                 const net::Network& net,
                                 DetectorConfig config)
    : queue_(&queue), net_(&net), config_(config) {
  SBK_EXPECTS(config_.probe_interval > 0.0);
  SBK_EXPECTS(config_.miss_threshold >= 1);
  SBK_EXPECTS(config_.phase >= 0.0);
}

void FailureDetector::watch_node(net::NodeId node, Seconds horizon) {
  node_misses_[node] = 0;
  node_reported_[node] = false;
  Seconds first = queue_->now() + config_.phase + config_.probe_interval;
  if (first <= horizon) {
    queue_->schedule_at(first, [this, node, horizon] {
      probe_node(node, horizon);
    });
  }
}

void FailureDetector::watch_link(net::LinkId link, Seconds horizon) {
  link_misses_[link] = 0;
  link_reported_[link] = false;
  Seconds first = queue_->now() + config_.phase + config_.probe_interval;
  if (first <= horizon) {
    queue_->schedule_at(first, [this, link, horizon] {
      probe_link(link, horizon);
    });
  }
}

void FailureDetector::probe_node(net::NodeId node, Seconds horizon) {
  // The keep-alive arrives iff the node is up.
  if (net_->node_failed(node)) {
    int& misses = node_misses_[node];
    ++misses;
    if (misses >= config_.miss_threshold && !node_reported_[node]) {
      node_reported_[node] = true;
      if (node_cb_) node_cb_(node, queue_->now());
    }
  } else {
    node_misses_[node] = 0;
  }
  Seconds next = queue_->now() + config_.probe_interval;
  if (next <= horizon) {
    queue_->schedule_at(next, [this, node, horizon] {
      probe_node(node, horizon);
    });
  }
}

void FailureDetector::probe_link(net::LinkId link, Seconds horizon) {
  // A link probe succeeds iff the link and both endpoints are up. A dead
  // endpoint is detected by the node keep-alives; the link path still
  // fails its probes, but a node-failure report takes precedence at the
  // controller, so we only report when both endpoints are alive.
  const net::Link& l = net_->link(link);
  bool endpoints_up = !net_->node_failed(l.a) && !net_->node_failed(l.b);
  if (net_->link_failed(link) && endpoints_up) {
    int& misses = link_misses_[link];
    ++misses;
    if (misses >= config_.miss_threshold && !link_reported_[link]) {
      link_reported_[link] = true;
      if (link_cb_) link_cb_(link, queue_->now());
    }
  } else if (!net_->link_failed(link)) {
    link_misses_[link] = 0;
  }
  Seconds next = queue_->now() + config_.probe_interval;
  if (next <= horizon) {
    queue_->schedule_at(next, [this, link, horizon] {
      probe_link(link, horizon);
    });
  }
}

void FailureDetector::rearm_node(net::NodeId node) {
  node_misses_[node] = 0;
  node_reported_[node] = false;
}

void FailureDetector::rearm_link(net::LinkId link) {
  link_misses_[link] = 0;
  link_reported_[link] = false;
}

}  // namespace sbk::control
