#include "net/algo.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace sbk::net {

namespace {

/// Whether BFS may expand *through* `node` (not merely end there).
bool can_transit(const Network& net, NodeId node, NodeId src, NodeId dst,
                 const TraversalOptions& opts) {
  const Node& n = net.node(node);
  if (opts.avoid_failures && n.failed) return false;
  if (opts.hosts_are_endpoints_only && n.kind == NodeKind::kHost &&
      node != src && node != dst) {
    return false;
  }
  return true;
}

bool can_use_link(const Network& net, LinkId link,
                  const TraversalOptions& opts) {
  return !opts.avoid_failures || !net.link_failed(link);
}

}  // namespace

std::vector<std::size_t> bfs_distances(const Network& net, NodeId src,
                                       const TraversalOptions& opts) {
  SBK_EXPECTS(src.valid() && src.index() < net.node_count());
  std::vector<std::size_t> dist(net.node_count(), kInvalidDistance);
  if (opts.avoid_failures && net.node_failed(src)) return dist;
  dist[src.index()] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    // A non-transit node (e.g. a host mid-network) gets a distance but is
    // not expanded. We pass src as both endpoints here because transit
    // eligibility of u only depends on u being an endpoint; endpoints were
    // enqueued explicitly.
    if (u != src && !can_transit(net, u, src, src, opts)) continue;
    for (const Adjacency& adj : net.adjacent(u)) {
      if (!can_use_link(net, adj.link, opts)) continue;
      if (opts.avoid_failures && net.node_failed(adj.peer)) continue;
      if (dist[adj.peer.index()] == kInvalidDistance) {
        dist[adj.peer.index()] = dist[u.index()] + 1;
        queue.push_back(adj.peer);
      }
    }
  }
  return dist;
}

Path shortest_path(const Network& net, NodeId src, NodeId dst,
                   const TraversalOptions& opts) {
  SBK_EXPECTS(src.valid() && dst.valid());
  if (src == dst) return Path{{src}, {}};
  if (opts.avoid_failures &&
      (net.node_failed(src) || net.node_failed(dst))) {
    return {};
  }

  // BFS from src with parent pointers; ties resolved by adjacency order
  // (stable because adjacency is append-only).
  std::vector<LinkId> parent_link(net.node_count());
  std::vector<NodeId> parent_node(net.node_count());
  std::vector<std::size_t> dist(net.node_count(), kInvalidDistance);
  dist[src.index()] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    if (u != src && !can_transit(net, u, src, dst, opts)) continue;
    for (const Adjacency& adj : net.adjacent(u)) {
      if (!can_use_link(net, adj.link, opts)) continue;
      if (opts.avoid_failures && net.node_failed(adj.peer)) continue;
      if (dist[adj.peer.index()] == kInvalidDistance) {
        dist[adj.peer.index()] = dist[u.index()] + 1;
        parent_link[adj.peer.index()] = adj.link;
        parent_node[adj.peer.index()] = u;
        queue.push_back(adj.peer);
      }
    }
  }
  if (dist[dst.index()] == kInvalidDistance) return {};

  Path path;
  NodeId cur = dst;
  while (cur != src) {
    path.nodes.push_back(cur);
    path.links.push_back(parent_link[cur.index()]);
    cur = parent_node[cur.index()];
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::vector<Path> all_shortest_paths(const Network& net, NodeId src,
                                     NodeId dst, std::size_t max_paths,
                                     const TraversalOptions& opts) {
  std::vector<Path> out;
  if (opts.avoid_failures &&
      (net.node_failed(src) || net.node_failed(dst))) {
    return out;
  }
  if (src == dst) {
    out.push_back(Path{{src}, {}});
    return out;
  }

  // Distances from dst let us walk only along strictly-decreasing-distance
  // edges from src, enumerating every shortest path via DFS.
  TraversalOptions rev = opts;
  std::vector<std::size_t> dist_to_dst = bfs_distances(net, dst, rev);
  if (dist_to_dst[src.index()] == kInvalidDistance) return out;

  Path partial;
  partial.nodes.push_back(src);

  // Iterative DFS with an explicit stack of adjacency cursors to avoid
  // recursion depth issues on large networks.
  struct Frame {
    NodeId node;
    std::size_t next_adjacent = 0;
  };
  std::vector<Frame> stack{{src, 0}};
  while (!stack.empty() && out.size() < max_paths) {
    Frame& frame = stack.back();
    NodeId u = frame.node;
    if (u == dst) {
      out.push_back(partial);
      stack.pop_back();
      if (!partial.links.empty()) {
        partial.nodes.pop_back();
        partial.links.pop_back();
      }
      continue;
    }
    auto adj = net.adjacent(u);
    bool descended = false;
    while (frame.next_adjacent < adj.size()) {
      const Adjacency& a = adj[frame.next_adjacent++];
      if (!can_use_link(net, a.link, opts)) continue;
      if (opts.avoid_failures && net.node_failed(a.peer)) continue;
      if (a.peer != dst && !can_transit(net, a.peer, src, dst, opts)) continue;
      if (dist_to_dst[a.peer.index()] == kInvalidDistance) continue;
      if (dist_to_dst[a.peer.index()] + 1 != dist_to_dst[u.index()]) continue;
      partial.nodes.push_back(a.peer);
      partial.links.push_back(a.link);
      stack.push_back({a.peer, 0});
      descended = true;
      break;
    }
    if (!descended && frame.next_adjacent >= adj.size()) {
      stack.pop_back();
      if (!partial.links.empty()) {
        partial.nodes.pop_back();
        partial.links.pop_back();
      }
    }
  }
  return out;
}

bool reachable(const Network& net, NodeId src, NodeId dst,
               const TraversalOptions& opts) {
  if (src == dst) return !(opts.avoid_failures && net.node_failed(src));
  return !shortest_path(net, src, dst, opts).empty();
}

std::size_t live_component_count(const Network& net) {
  std::vector<bool> visited(net.node_count(), false);
  std::size_t components = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    NodeId start(static_cast<NodeId::value_type>(i));
    if (visited[i] || net.node_failed(start)) continue;
    ++components;
    std::deque<NodeId> queue{start};
    visited[i] = true;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (const Adjacency& adj : net.adjacent(u)) {
        if (net.link_failed(adj.link) || net.node_failed(adj.peer)) continue;
        if (!visited[adj.peer.index()]) {
          visited[adj.peer.index()] = true;
          queue.push_back(adj.peer);
        }
      }
    }
  }
  return components;
}

}  // namespace sbk::net
